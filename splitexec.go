// Package splitexec is the public API of the split-execution computing
// library, a reproduction of "Performance Models for Split-execution
// Computing Systems" (Humble et al., 2016).
//
// Split-execution computing couples two computational models — here a
// conventional CPU and a D-Wave-style quantum annealing QPU — and pays a
// translation cost at the boundary. The library provides:
//
//   - a three-stage split-execution solver (translate+embed → anneal →
//     post-process) over a simulated QPU (Solver),
//   - analytic performance models of each stage in an ASPEN-compatible
//     DSL, evaluated against machine models (Predictor, the aspen types),
//   - the substrates these require: Chimera hardware graphs, QUBO/Ising
//     problems, minor embedding, annealing and statistics.
//
// # Quick start
//
//	g := splitexec.Cycle(8)
//	problem := splitexec.MaxCut(g, nil)
//	solver := splitexec.NewSolver(splitexec.Config{Seed: 1})
//	sol, err := solver.SolveQUBO(problem)
//	// sol.Binary is the partition, sol.Timing the per-stage cost split.
//
// The deeper sub-APIs are re-exported as type aliases so downstream code can
// use everything through this one import path.
package splitexec

import (
	"time"

	"github.com/splitexec/splitexec/internal/anneal"
	"github.com/splitexec/splitexec/internal/arch"
	"github.com/splitexec/splitexec/internal/aspen"
	"github.com/splitexec/splitexec/internal/control"
	"github.com/splitexec/splitexec/internal/core"
	"github.com/splitexec/splitexec/internal/des"
	"github.com/splitexec/splitexec/internal/dse"
	"github.com/splitexec/splitexec/internal/embed"
	"github.com/splitexec/splitexec/internal/gi"
	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/loadgen"
	"github.com/splitexec/splitexec/internal/machine"
	"github.com/splitexec/splitexec/internal/obs"
	"github.com/splitexec/splitexec/internal/parallel"
	"github.com/splitexec/splitexec/internal/plan"
	"github.com/splitexec/splitexec/internal/qpuserver"
	"github.com/splitexec/splitexec/internal/qubo"
	"github.com/splitexec/splitexec/internal/sched"
	"github.com/splitexec/splitexec/internal/schedule"
	"github.com/splitexec/splitexec/internal/service"
	"github.com/splitexec/splitexec/internal/stats"
	"github.com/splitexec/splitexec/internal/storm"
	"github.com/splitexec/splitexec/internal/workload"
)

// --- core pipeline ----------------------------------------------------------

// Config parameterizes a split-execution solver; see the field docs on the
// aliased type.
type Config = core.Config

// Solver executes QUBO/Ising problems on the modeled CPU+QPU node.
type Solver = core.Solver

// Solution is the result of one solve, including the per-stage Timing.
type Solution = core.Solution

// Timing is the per-phase cost breakdown of a solve.
type Timing = core.Timing

// Predictor evaluates the paper's analytic stage models.
type Predictor = core.Predictor

// StageSeconds is a per-stage analytic prediction.
type StageSeconds = core.StageSeconds

// EmbeddingCache is the off-line embedding lookup table (paper §4).
type EmbeddingCache = core.EmbeddingCache

// NewSolver builds a solver for the given configuration.
func NewSolver(cfg Config) *Solver { return core.NewSolver(cfg) }

// NewPredictor builds an analytic predictor for a hardware node.
func NewPredictor(node Node) *Predictor { return core.NewPredictor(node) }

// NewEmbeddingCache returns an empty off-line embedding cache.
func NewEmbeddingCache() *EmbeddingCache { return core.NewEmbeddingCache() }

// --- problems ---------------------------------------------------------------

// QUBO is a quadratic unconstrained binary optimization instance.
type QUBO = qubo.QUBO

// Ising is a logical Ising model.
type Ising = qubo.Ising

// NewQUBO returns an all-zero QUBO over n binary variables.
func NewQUBO(n int) *QUBO { return qubo.NewQUBO(n) }

// NewIsing returns an all-zero Ising model over n spins.
func NewIsing(n int) *Ising { return qubo.NewIsing(n) }

// ToIsing translates a QUBO to its logical Ising model (paper Eqs. 4–5).
func ToIsing(q *QUBO) *Ising { return qubo.ToIsing(q) }

// MaxCut returns the QUBO encoding maximum cut of g (nil weight = unit).
func MaxCut(g *Graph, weight func(u, v int) float64) *QUBO { return qubo.MaxCut(g, weight) }

// CutValue returns the weight of edges cut by the 0/1 partition b.
func CutValue(g *Graph, weight func(u, v int) float64, b []int8) float64 {
	return qubo.CutValue(g, weight, b)
}

// NumberPartition returns the QUBO for two-way balanced partitioning.
func NumberPartition(values []float64) *QUBO { return qubo.NumberPartition(values) }

// MinVertexCover returns the QUBO for minimum vertex cover with penalty P.
func MinVertexCover(g *Graph, penalty float64) *QUBO { return qubo.MinVertexCover(g, penalty) }

// MaxIndependentSet returns the QUBO for maximum independent set.
func MaxIndependentSet(g *Graph, penalty float64) *QUBO { return qubo.MaxIndependentSet(g, penalty) }

// GraphColoring returns the one-hot QUBO for proper k-coloring.
func GraphColoring(g *Graph, k int, penalty float64) *QUBO { return qubo.GraphColoring(g, k, penalty) }

// --- graphs -----------------------------------------------------------------

// Graph is an undirected simple graph over dense integer vertices.
type Graph = graph.Graph

// Edge is an unordered vertex pair.
type Edge = graph.Edge

// Chimera describes the C(M,N,L) quantum annealer topology.
type Chimera = graph.Chimera

// VertexModel maps logical vertices to hardware chains (a minor embedding).
type VertexModel = graph.VertexModel

// FaultModel describes dead qubits and couplers.
type FaultModel = graph.FaultModel

// NewGraph returns an empty graph with n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// Complete returns K_n.
func Complete(n int) *Graph { return graph.Complete(n) }

// Cycle returns C_n.
func Cycle(n int) *Graph { return graph.Cycle(n) }

// Grid returns the rows×cols lattice graph.
func Grid(rows, cols int) *Graph { return graph.Grid(rows, cols) }

// Path returns P_n.
func Path(n int) *Graph { return graph.Path(n) }

// Star returns the star graph on n vertices (center 0).
func Star(n int) *Graph { return graph.Star(n) }

// Vesuvius is the 512-qubit C(8,8,4) topology.
func Vesuvius() Chimera { return graph.Vesuvius() }

// DW2X is the 1152-qubit C(12,12,4) topology.
func DW2X() Chimera { return graph.DW2X() }

// ValidateMinor checks a minor embedding of g into hw.
func ValidateMinor(g, hw *Graph, vm VertexModel, requireAll bool) error {
	return graph.ValidateMinor(g, hw, vm, requireAll)
}

// --- embedding --------------------------------------------------------------

// EmbedOptions configure the Cai–Macready–Roy heuristic.
type EmbedOptions = embed.Options

// EmbedStats reports embedding search work.
type EmbedStats = embed.Stats

// Embedded couples a hardware Ising program with its vertex model.
type Embedded = embed.Embedded

// FindEmbedding runs the CMR minor-embedding heuristic.
var FindEmbedding = embed.FindEmbedding

// CliqueEmbedding deterministically embeds K_n into a Chimera topology.
var CliqueEmbedding = embed.CliqueEmbedding

// SetParameters maps a logical Ising model onto hardware through a vertex
// model.
var SetParameters = embed.SetParameters

// --- annealing --------------------------------------------------------------

// SamplerOptions configure the annealer substrate.
type SamplerOptions = anneal.SamplerOptions

// SampleSet is a readout ensemble.
type SampleSet = anneal.SampleSet

// CompiledIsing is the flat CSR compilation of an Ising model the annealing
// kernels run on (immutable, safe for concurrent readers).
type CompiledIsing = qubo.Compiled

// CompileIsing flattens an Ising model into its compiled CSR form.
var CompileIsing = qubo.Compile

// Annealer is any single-shot sampler over an Ising program.
type Annealer = anneal.Annealer

// AnnealerReaderFactory is satisfied by annealers that can mint independent
// readers over a shared compiled program for parallel readout.
type AnnealerReaderFactory = anneal.ReaderFactory

// CollectReads runs repeated anneals of an Annealer into a SampleSet.
var CollectReads = anneal.Collect

// CollectReadsParallel fans reads across a bounded worker pool with one
// derived RNG stream per read; results are byte-identical for every worker
// count.
var CollectReadsParallel = anneal.CollectParallel

// Timings holds QPU hardware time constants.
type QPUTimings = anneal.Timings

// DW2Timings returns the paper's DW2 Vesuvius time constants.
func DW2Timings() QPUTimings { return anneal.DW2Timings() }

// RequiredReads returns the Eq. 6 repetition count for accuracy pa at
// single-run success ps.
var RequiredReads = anneal.RequiredReads

// --- machine models -----------------------------------------------------------

// Node is the asymmetric CPU+QPU hardware node.
type Node = machine.Node

// CPU is a conventional multicore socket description.
type CPU = machine.CPU

// QPU is the quantum annealing socket description.
type QPU = machine.QPU

// SimpleNode mirrors the paper's Fig. 5 machine model.
func SimpleNode() Node { return machine.SimpleNode() }

// --- ASPEN DSL --------------------------------------------------------------

// AspenFile is a parsed ASPEN source file.
type AspenFile = aspen.File

// AspenModel is an ASPEN application model.
type AspenModel = aspen.ModelDecl

// AspenMachine is a resolved ASPEN machine model.
type AspenMachine = aspen.MachineSpec

// AspenResult is an application-model evaluation.
type AspenResult = aspen.Result

// AspenEvalOptions configure evaluation.
type AspenEvalOptions = aspen.EvalOptions

// ParseAspen parses ASPEN source.
func ParseAspen(src string) (*AspenFile, error) { return aspen.Parse(src) }

// ParseAspenWithIncludes parses ASPEN source resolving includes against the
// embedded standard library.
func ParseAspenWithIncludes(src string) (*AspenFile, error) {
	return aspen.ParseWithIncludes(src, aspen.StdLoader)
}

// BuildAspenMachine resolves a machine declaration.
func BuildAspenMachine(f *AspenFile, name string) (*AspenMachine, error) {
	return aspen.BuildMachine(f, name)
}

// EvaluateAspen runs an application model against a machine model.
func EvaluateAspen(m *AspenModel, mach *AspenMachine, opts AspenEvalOptions) (*AspenResult, error) {
	return aspen.Evaluate(m, mach, opts)
}

// Stage1Source, Stage2Source and Stage3Source are the paper's application
// model listings (Figs. 6–8).
const (
	Stage1Source = core.Stage1Source
	Stage2Source = core.Stage2Source
	Stage3Source = core.Stage3Source
)

// --- client-server QPU (Fig. 1a deployment) ----------------------------------

// QPUServer serves a simulated QPU over TCP.
type QPUServer = qpuserver.Server

// QPUClient is the host-side handle to a remote QPU; it satisfies the
// solver's device interface, so Config.Device can point at one.
type QPUClient = qpuserver.Client

// NewQPUServer builds a QPU server with the given time constants.
func NewQPUServer(t QPUTimings, opts SamplerOptions) *QPUServer {
	return qpuserver.NewServer(t, opts)
}

// DialQPU connects to a QPU server.
func DialQPU(addr string) (*QPUClient, error) { return qpuserver.Dial(addr) }

// --- concurrent dispatch service (Fig. 1 deployments, live) ------------------

// ServiceOptions configure the concurrent multi-QPU dispatch service:
// Workers hosts multiplex jobs over a Fleet of QPU devices through a
// bounded FIFO queue (Workers=H, Fleet=1 is the shared-resource
// architecture; Fleet=H dedicated-per-node).
type ServiceOptions = service.Options

// SolverService dispatches solve jobs over host workers and a QPU fleet.
type SolverService = service.Service

// ServiceTicket is the handle to one submitted service job.
type ServiceTicket = service.Ticket

// ServiceJobMetrics is the per-job measurement record (queue wait, device
// wait, device occupancy, stage times).
type ServiceJobMetrics = service.JobMetrics

// ServiceReport is the aggregate measurement of a service run (makespan,
// throughput, contention, QPU busy fraction).
type ServiceReport = service.Report

// ServiceClient is the remote handle to a serving solver service.
type ServiceClient = service.Client

// ServiceSolveResponse is one remote solve result with its measured
// per-job service metrics.
type ServiceSolveResponse = service.SolveResponse

// NewService starts a concurrent dispatch service.
func NewService(opts ServiceOptions) (*SolverService, error) { return service.New(opts) }

// DialService connects to a solver service's TCP front-end.
func DialService(addr string) (*ServiceClient, error) { return service.Dial(addr) }

// DialServiceTimeout is DialService with a bound on the dial and every
// subsequent round trip.
func DialServiceTimeout(addr string, timeout time.Duration) (*ServiceClient, error) {
	return service.DialTimeout(addr, timeout)
}

// WrapQPUDevice adapts a simulated annealing device for use in an explicit
// ServiceOptions.Devices fleet or as a Config.Device.
func WrapQPUDevice(dev *anneal.Device) core.QPUDevice { return core.LocalDevice(dev) }

// --- open-system workload engine ----------------------------------------------

// Scenario is one declarative open-system workload experiment: an arrival
// process, a weighted mix of job classes, a deployment topology and a
// horizon — JSON-encodable so scenarios are files, not code.
type Scenario = workload.Scenario

// ScenarioArrival specifies when jobs enter the system (Poisson, uniform,
// closed-loop or recorded trace).
type ScenarioArrival = workload.Arrival

// ScenarioJobClass is one weighted entry of a scenario's workload mix.
type ScenarioJobClass = workload.JobClass

// ScenarioProfile is the JSON form of an arch.JobProfile.
type ScenarioProfile = workload.Profile

// ScenarioSystem is a scenario's deployment topology (Fig. 1 kinds).
type ScenarioSystem = workload.SystemSpec

// ScenarioHorizon bounds a scenario run by job count or duration.
type ScenarioHorizon = workload.Horizon

// ScenarioDuration is a duration that marshals as a human-readable string.
type ScenarioDuration = workload.Duration

// Arrival processes a ScenarioArrival can name. The last three are
// modulated: a compressed diurnal sinusoid, Markov-modulated on/off
// bursts, and a flash crowd multiplying the rate inside a window.
const (
	PoissonArrivals    = workload.Poisson
	UniformArrivals    = workload.Uniform
	ClosedLoopArrivals = workload.ClosedLoop
	TraceArrivals      = workload.Trace
	SinusoidArrivals   = workload.Sinusoid
	BurstArrivals      = workload.Burst
	FlashArrivals      = workload.Flash
)

// ScenarioFaults is a scenario's fault-injection spec: device deaths with
// bounded-retry re-dispatch, Pareto straggler anneals, and per-attempt
// connection drops — all drawn from seed-derived streams so the simulator
// and a live replay realize identical fault schedules.
type ScenarioFaults = workload.FaultSpec

// ScenarioBand is a scenario's acceptance band on the live-vs-simulated
// p99 sojourn ratio, used by the storm corpus runner.
type ScenarioBand = workload.Band

// ExponentialService marks a job class whose profile is scaled by an
// Exp(1) draw per job (preserving phase ratios) — the M/M/c-checkable
// service distribution.
const ExponentialService = workload.Exponential

// DecodeScenario unmarshals and validates a scenario file.
var DecodeScenario = workload.Decode

// WorkloadResult is the aggregate of one simulated scenario run: latency
// distributions, utilization, throughput.
type WorkloadResult = des.Result

// WorkloadSimOptions configure the discrete-event simulator (event log).
type WorkloadSimOptions = des.Options

// SimulateWorkload runs a scenario through the open-system discrete-event
// simulator in virtual time — millions of arrivals in milliseconds, no
// wall-clock sleeping.
var SimulateWorkload = des.Simulate

// MMCResult is an M/M/c steady-state prediction.
type MMCResult = des.AnalyticResult

// AnalyticMMC evaluates the M/M/c queueing formulas (Erlang C).
var AnalyticMMC = des.Analytic

// AnalyticWorkload maps an eligible scenario (Poisson, single exponential
// class, uncontended QPU) onto the M/M/c model.
var AnalyticWorkload = des.AnalyticScenario

// LoadgenOptions select the target service and transport of a live replay.
type LoadgenOptions = loadgen.Options

// LoadgenResult is the measured counterpart of a WorkloadResult.
type LoadgenResult = loadgen.Result

// RunLoadgen replays a scenario against a live dispatch service (in
// process or over TCP) and measures the latency distributions the
// simulator predicts.
var RunLoadgen = loadgen.Run

// StormOptions configure a storm run over a scenario corpus directory.
type StormOptions = storm.Options

// StormReport is the aggregate pass/fail verdict of a storm run.
type StormReport = storm.Report

// StormScenarioResult is one corpus scenario's verdict: DES-predicted and
// live-measured p99, their ratio against the declared band, and the
// conservation ledger (jobs, failures, retries, drops).
type StormScenarioResult = storm.ScenarioResult

// RunStorm replays a stress-scenario corpus through both the simulator and
// a live TCP dispatch service, judging each scenario's live p99 against
// its acceptance band — the `splitexec storm` subcommand's engine.
var RunStorm = storm.Run

// ObsScope bundles one deployment's telemetry — metrics registry, job
// lifecycle trace ring and optional DES-drift alarm. Hand it to
// ServiceOptions.Obs, RouterOptions.Obs or LoadgenOptions.Obs and serve it
// with ServeObs (docs/observability.md).
type ObsScope = obs.Scope

// ObsRegistry is the atomic metrics registry behind an ObsScope.
type ObsRegistry = obs.Registry

// ObsServer is the HTTP admin endpoint (/metrics /healthz /jobz /varz
// /debug/pprof) over an ObsScope.
type ObsServer = obs.Server

// ObsServerOptions configure ServeObs (scope, health checks, jobz bound).
type ObsServerOptions = obs.ServerOptions

// DriftAlarm watches live per-class sojourns against DES-predicted bands.
type DriftAlarm = obs.DriftAlarm

// NewObsScope builds an armed telemetry scope (registry + trace ring).
var NewObsScope = obs.NewScope

// ServeObs starts the HTTP admin endpoint for a telemetry scope.
var ServeObs = obs.Serve

// NewDriftAlarm arms a sojourn drift alarm from per-class predicted bands;
// WorkloadResult.SojournBands bridges a DES prediction into that shape.
var NewDriftAlarm = obs.NewDriftAlarm

// DurationSummary is the shared latency digest (mean/p50/p90/p99/p999/max).
type DurationSummary = stats.DurationSummary

// SummarizeDurations digests a duration sample into a DurationSummary.
var SummarizeDurations = stats.SummarizeDurations

// --- scheduling policies and capacity planning --------------------------------

// SchedulingPolicy names a host-backlog queue discipline shared by the
// simulator and the live dispatch service.
type SchedulingPolicy = sched.Policy

// The supported scheduling policies.
const (
	// FIFOPolicy serves jobs in arrival order (the default).
	FIFOPolicy = sched.FIFO
	// PriorityPolicy serves the highest class priority first.
	PriorityPolicy = sched.Priority
	// ShortestQPUPolicy serves the smallest expected QPU time first.
	ShortestQPUPolicy = sched.ShortestQPU
	// FairSharePolicy serves classes in proportion to their weights.
	FairSharePolicy = sched.FairShare
)

// SchedulingPolicies returns every supported policy, FIFO first.
var SchedulingPolicies = sched.Policies

// ServiceJobClass carries the scheduling attributes of a live-service job.
type ServiceJobClass = service.JobClass

// CapacityTarget is the SLO a planned deployment must meet (p99/mean
// sojourn ceilings, utilization ceilings).
type CapacityTarget = plan.Target

// CapacitySpace is the planner's search space over hosts, deployment kinds
// and scheduling policies.
type CapacitySpace = plan.Space

// CapacityCosts prices candidate configurations (hosts vs QPUs).
type CapacityCosts = plan.Costs

// CapacityPlanOptions configure a planning run.
type CapacityPlanOptions = plan.Options

// CapacityCandidate is one evaluated configuration of a capacity plan.
type CapacityCandidate = plan.Candidate

// CapacityPlan is the planner's outcome: the cheapest satisfying
// configuration, its failing next-cheaper neighbor, and the full evaluated
// frontier.
type CapacityPlan = plan.Plan

// PlanCapacity inverts the performance models into a provisioning decision:
// the cheapest {hosts, fleet, policy} configuration whose simulated
// behavior meets the target SLO under the scenario's workload.
var PlanCapacity = plan.Capacity

// --- architecture comparison (Fig. 1 a/b/c) ----------------------------------

// Architecture identifies one of the paper's Fig. 1 deployments.
type Architecture = arch.Kind

// Fig. 1 architectures.
const (
	AsymmetricMultiprocessor = arch.AsymmetricMultiprocessor
	SharedResource           = arch.SharedResource
	DedicatedPerNode         = arch.DedicatedPerNode
)

// ArchSystem describes a deployment (architecture + host count).
type ArchSystem = arch.System

// JobProfile is the per-job phase cost vector for architecture comparison.
type JobProfile = arch.JobProfile

// ArchComparison is one row of the architecture comparison table.
type ArchComparison = arch.Comparison

// Makespan returns the batch completion time under an architecture.
var Makespan = arch.Makespan

// SimulateArchitecture runs the discrete-event simulation of a batch
// flowing through a deployment (the prediction the live dispatch service
// is validated against).
var SimulateArchitecture = arch.Simulate

// CompareArchitectures evaluates all three Fig. 1 architectures.
var CompareArchitectures = arch.Compare

// --- quantum annealing substrate ---------------------------------------------

// SQAOptions configure the simulated-quantum-annealing (path-integral)
// sampler.
type SQAOptions = anneal.SQAOptions

// --- additional workloads ----------------------------------------------------

// TSP returns the traveling-salesman QUBO over a symmetric distance matrix.
var TSP = qubo.TSP

// TSPPenalty returns a safe constraint penalty for TSP.
var TSPPenalty = qubo.TSPPenalty

// DecodeTour extracts the visiting order from a TSP assignment.
var DecodeTour = qubo.DecodeTour

// SetPacking returns the weighted set-packing QUBO (§2.1 workload).
var SetPacking = qubo.SetPacking

// --- annealing schedules (§2.2 waveform & duration) ---------------------------

// Schedule is a piecewise-linear annealing waveform s(t).
type Schedule = schedule.Schedule

// SchedulePoint is one control point of an annealing waveform.
type SchedulePoint = schedule.Point

// ControlLimits are the pre-defined waveform ranges the control system
// permits.
type ControlLimits = schedule.ControlLimits

// GapModel reduces an instance's internal energy structure to the minimum
// spectral gap and its position.
type GapModel = schedule.GapModel

// TTSResult is one point of an anneal-time TTS sweep.
type TTSResult = schedule.TTSResult

// LinearSchedule returns the standard linear ramp over duration d.
func LinearSchedule(d time.Duration) Schedule { return schedule.Linear(d) }

// ScheduleWithPause returns a ramp holding at fraction `at` for `pause`.
var ScheduleWithPause = schedule.WithPause

// ScheduleWithQuench returns a ramp that quenches from fraction `at`.
var ScheduleWithQuench = schedule.WithQuench

// CustomSchedule builds a waveform from explicit control points.
var CustomSchedule = schedule.Custom

// DW2ScheduleLimits returns DW2-representative control limits.
func DW2ScheduleLimits() ControlLimits { return schedule.DW2Limits() }

// DefaultGapModel returns a generic spin-glass-like gap model.
func DefaultGapModel() GapModel { return schedule.DefaultGap() }

// SuccessProbability returns the Landau-Zener single-run ground-state
// probability of annealing under a schedule across a gap model.
var SuccessProbability = schedule.SuccessProbability

// TTS returns the Eq. 6 time-to-solution at the given per-read costs.
var TTS = schedule.TTS

// SweepTTS evaluates the TTS curve across anneal durations.
var SweepTTS = schedule.SweepTTS

// OptimalAnnealTime minimizes TTS within the hardware control limits.
var OptimalAnnealTime = schedule.OptimalAnnealTime

// EstimateGap builds a GapModel from an Ising instance's classical energy
// spectrum (exhaustive; ≤ ~20 spins) — the bridge from a concrete problem
// to schedule planning.
var EstimateGap = anneal.EstimateGap

// --- electronic control system (§2.2 precision & programming) ----------------

// Controller models the electronic control system programming the QPU.
type Controller = control.Controller

// DAC describes control-line precision (bits and parameter ranges).
type DAC = control.DAC

// ICE models integrated control errors (analog parameter disorder).
type ICE = control.ICE

// ProgramResult reports one programming cycle.
type ProgramResult = control.ProgramResult

// ProgrammingPhase identifies one step of the programming pipeline.
type ProgrammingPhase = control.Phase

// PhaseTime is one entry of the programming time ledger.
type PhaseTime = control.PhaseTime

// CalibrationReport describes one hardware calibration pass.
type CalibrationReport = control.CalibrationReport

// CalibrationOptions parameterize a calibration pass.
type CalibrationOptions = control.CalibrationOptions

// DefaultCalibration returns representative probe times and fault rates.
func DefaultCalibration() CalibrationOptions { return control.DefaultCalibration() }

// NewController returns a controller with the paper's DW2 constants.
func NewController() *Controller { return control.NewController() }

// DW2DAC returns a DW2-representative DAC description.
func DW2DAC() DAC { return control.DW2DAC() }

// DW2ICE returns DW2-representative control-error amplitudes.
func DW2ICE() ICE { return control.DW2ICE() }

// ProgrammingSequence expands QPU timing constants into the per-phase
// programming ledger (the stage-1 ASPEN constants).
var ProgrammingSequence = control.Sequence

// Calibrate sweeps a hardware graph for faults (paper §2.2).
var Calibrate = control.Calibrate

// RequiredBits returns the DAC precision needed for a parameter resolution.
var RequiredBits = control.RequiredBits

// --- graph isomorphism on the QPU (§3.3) --------------------------------------

// GIOptions configure the annealer-backed graph-isomorphism decision.
type GIOptions = gi.Options

// GIResult reports one annealer-backed GI decision.
type GIResult = gi.Result

// GIReduction is a GI instance encoded as a QUBO.
type GIReduction = gi.Reduction

// ReduceGI encodes "is G isomorphic to H?" as a QUBO.
var ReduceGI = gi.Reduce

// AreIsomorphic decides GI with the annealer substrate plus exact
// verification.
var AreIsomorphic = gi.AreIsomorphic

// MatchGraph finds which candidate an input graph is isomorphic to — the
// off-line embedding-table lookup of §3.3/§4.
var MatchGraph = gi.Match

// RelabelGraph returns the image of a graph under a vertex permutation.
var RelabelGraph = gi.Relabel

// VerifyIsomorphism exactly checks a claimed vertex mapping.
var VerifyIsomorphism = gi.VerifyMapping

// --- parallel pre-processing (§4) ---------------------------------------------

// ParallelEmbedOptions configure the multi-seed parallel embedding search.
type ParallelEmbedOptions = parallel.EmbedOptions

// ParallelEmbedResult reports a parallel embedding search.
type ParallelEmbedResult = parallel.EmbedResult

// StageCost is the per-stage time of one job for pipeline analysis.
type StageCost = parallel.StageCost

// PipelineJob is one unit of work for the live pipeline executor.
type PipelineJob = parallel.Job

// FindEmbeddingParallel races CMR restarts across host cores.
var FindEmbeddingParallel = parallel.FindEmbedding

// EmbedBatch embeds many graphs concurrently into the same hardware.
var EmbedBatch = parallel.EmbedBatch

// SequentialMakespan returns the serial batch time.
var SequentialMakespan = parallel.Sequential

// PipelinedMakespan simulates CPU/QPU stage overlap for a batch.
var PipelinedMakespan = parallel.Pipelined

// PipelineSpeedup returns SequentialMakespan/PipelinedMakespan.
var PipelineSpeedup = parallel.Speedup

// RunPipeline executes jobs with genuine goroutine-level stage overlap.
var RunPipeline = parallel.Run

// ForEach runs fn(i) for i in [0, n) on a bounded worker pool, returning
// the error of the lowest failed index. It is the fan-out substrate behind
// the sweep engine and the batch solver.
var ForEach = parallel.ForEach

// DeriveSeed mixes a base seed and an item index into an independent
// per-item RNG seed.
var DeriveSeed = parallel.DeriveSeed

// BatchJob is one problem+configuration pair for SolveBatch.
type BatchJob = core.BatchJob

// BatchResult is one SolveBatch outcome, in input order.
type BatchResult = core.BatchResult

// BatchOptions configure the batch solver fan-out.
type BatchOptions = core.BatchOptions

// SolveBatch runs the full three-stage pipeline for every job on a
// bounded worker pool, one solver per job.
var SolveBatch = core.SolveBatch

// --- design-space exploration --------------------------------------------------

// DSEAxis is one swept model parameter.
type DSEAxis = dse.Axis

// DSETable is an evaluated sweep.
type DSETable = dse.Table

// DSESensitivity is a parameter elasticity at a design point.
type DSESensitivity = dse.Sensitivity

// DSEObjective maps a parameter assignment to a scalar cost.
type DSEObjective = dse.Objective

// DSESeededObjective is a randomized objective drawing from a per-point
// RNG stream the engine derives from (Seed, pointIndex).
type DSESeededObjective = dse.SeededObjective

// SweepOptions configure the parallel exploration engine (worker pool
// size, base seed, progress callback).
type SweepOptions = dse.SweepOptions

// ModelObjective adapts an ASPEN model to a DSE objective.
var ModelObjective = dse.ModelObjective

// SweepModel evaluates an objective over the cartesian product of axes on
// all host cores, returning rows in canonical axis order.
var SweepModel = dse.Sweep

// SweepModelOpt is SweepModel with explicit engine options.
var SweepModelOpt = dse.SweepOpt

// SweepModelSeeded sweeps a randomized objective with reproducible
// per-point RNG streams.
var SweepModelSeeded = dse.SweepSeeded

// Sensitivities ranks parameters by local elasticity.
var Sensitivities = dse.Sensitivities

// SensitivitiesOpt is Sensitivities with explicit engine options.
var SensitivitiesOpt = dse.SensitivitiesOpt

// Crossover locates where one objective overtakes another.
var Crossover = dse.Crossover

// CrossoverOpt is Crossover with explicit engine options.
var CrossoverOpt = dse.CrossoverOpt

// LinSpace returns evenly spaced values (inclusive endpoints).
var LinSpace = dse.LinSpace

// LogSpace returns logarithmically spaced values (inclusive endpoints).
var LogSpace = dse.LogSpace

// --- additional workloads (§1/§2.1) --------------------------------------------

// ILP is a binary integer linear program reduced to QUBO form.
type ILP = qubo.ILP

// Ensemble is the QBoost weak-classifier-selection QUBO.
type Ensemble = qubo.Ensemble

// IntegerLinearProgram builds the QUBO for min c·x subject to Ax = b.
var IntegerLinearProgram = qubo.IntegerLinearProgram

// SafeILPPenalty returns a constraint penalty dominating the objective.
var SafeILPPenalty = qubo.SafeILPPenalty

// WeakClassifierEnsemble builds the QBoost binary-classification QUBO.
var WeakClassifierEnsemble = qubo.WeakClassifierEnsemble

// PBPoly is a pseudo-Boolean polynomial of arbitrary degree.
type PBPoly = qubo.PBPoly

// Quadratized is the 2-local (QUBO) image of a higher-degree polynomial.
type Quadratized = qubo.Quadratized

// Clause3 is a 3-SAT clause.
type Clause3 = qubo.Clause3

// NewPBPoly returns the zero pseudo-Boolean polynomial over n variables.
func NewPBPoly(n int) *PBPoly { return qubo.NewPBPoly(n) }

// Max3SAT encodes MAX-3-SAT as a cubic polynomial; Quadratize it for
// hardware-ready QUBO form.
var Max3SAT = qubo.Max3SAT

// CountSatisfied3 counts satisfied 3-SAT clauses.
var CountSatisfied3 = qubo.CountSatisfied3

// SetCover is the MIN-COVER problem reduced to QUBO with counting variables.
type SetCover = qubo.SetCover

// MinSetCover builds the weighted MIN-COVER QUBO (§2.1 workload).
var MinSetCover = qubo.MinSetCover

// SafeSetCoverPenalty returns a constraint penalty dominating the objective.
var SafeSetCoverPenalty = qubo.SafeSetCoverPenalty

// IsSetCover reports whether chosen set indices cover the universe.
var IsSetCover = qubo.IsSetCover
