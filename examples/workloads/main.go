// Workloads: the problem families the paper's introduction motivates —
// "classification [5], [6], ... MAX-SAT, MIN-COVER, ... binary
// classification, integer linear programming, and set packing" (§1/§2.1) —
// each reduced to QUBO and solved end-to-end on the split-execution system:
// translate → minor-embed → program → anneal → decode.
//
//	go run ./examples/workloads
package main

import (
	"fmt"
	"log"

	splitexec "github.com/splitexec/splitexec"
)

func newSolver(seed int64) *splitexec.Solver {
	return splitexec.NewSolver(splitexec.Config{
		Seed:        seed,
		Accuracy:    0.999,
		SuccessProb: 0.5,
		Embed:       splitexec.EmbedOptions{MaxTries: 40},
	})
}

func main() {
	fmt.Println("== integer linear programming ==")
	// min x0 + 2x1 + 3x2  s.t.  x0 + x1 + x2 = 2.
	c := []float64{1, 2, 3}
	A := [][]float64{{1, 1, 1}}
	b := []float64{2}
	ilp, err := splitexec.IntegerLinearProgram(c, A, b, splitexec.SafeILPPenalty(c))
	if err != nil {
		log.Fatal(err)
	}
	sol, err := newSolver(1).SolveQUBO(ilp.Q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("min {x0+2x1+3x2 : x0+x1+x2=2} → x = %v, objective %.0f, feasible %v\n",
		sol.Binary, objective(c, sol.Binary), feasible(A, b, sol.Binary))

	fmt.Println("\n== MIN-COVER ==")
	sets := [][]int{{0, 1}, {2, 3}, {0, 1, 2, 3}}
	sc, err := splitexec.MinSetCover(4, sets, nil, splitexec.SafeSetCoverPenalty(sets, nil))
	if err != nil {
		log.Fatal(err)
	}
	sol, err = newSolver(7).SolveQUBO(sc.Q)
	if err != nil {
		log.Fatal(err)
	}
	chosen, valid := sc.Decode(sol.Binary)
	fmt.Printf("cover {0..3} with {{0,1},{2,3},{0,1,2,3}} → sets %v, valid %v, weight %.0f\n",
		chosen, valid, weight(chosen))

	fmt.Println("\n== binary classification (QBoost) ==")
	H := [][]float64{
		{1, -1, 1, -1, 1, -1}, // the exact labeler
		{-1, 1, -1, 1, -1, 1}, // its negation
		{1, 1, -1, -1, 1, 1},  // noise
	}
	y := []float64{1, -1, 1, -1, 1, -1}
	ens, err := splitexec.WeakClassifierEnsemble(H, y, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	sol, err = newSolver(3).SolveQUBO(ens.Q)
	if err != nil {
		log.Fatal(err)
	}
	acc, err := ens.TrainingAccuracy(sol.Binary, H, y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected classifiers %v → training accuracy %.0f%%\n", sol.Binary, 100*acc)

	fmt.Println("\n== MAX-3-SAT (cubic penalty, quadratized) ==")
	clauses := []splitexec.Clause3{
		{Var: [3]int{0, 1, 2}},
		{Var: [3]int{0, 1, 3}, Neg: [3]bool{true, false, false}},
		{Var: [3]int{1, 2, 3}, Neg: [3]bool{false, true, true}},
		{Var: [3]int{0, 2, 3}, Neg: [3]bool{true, true, false}},
	}
	poly, err := splitexec.Max3SAT(4, clauses)
	if err != nil {
		log.Fatal(err)
	}
	qz, err := poly.Quadratize(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degree-%d penalty over %d vars lowered to QUBO over %d vars (+%d Rosenberg auxiliaries)\n",
		poly.Degree(), 4, qz.Q.Dim(), qz.Aux)
	sol, err = newSolver(4).SolveQUBO(qz.Q)
	if err != nil {
		log.Fatal(err)
	}
	assignment := qz.Restrict(sol.Binary)
	fmt.Printf("assignment %v satisfies %d/%d clauses\n",
		assignment, splitexec.CountSatisfied3(clauses, assignment), len(clauses))

	fmt.Println("\nevery family pays the same stage-1 toll: the QUBO matrix must still be")
	fmt.Println("minor-embedded and programmed before the QPU sees it — the paper's point.")
}

func weight(chosen []int) float64 { return float64(len(chosen)) }

func objective(c []float64, x []int8) float64 {
	v := 0.0
	for j, cj := range c {
		if j < len(x) && x[j] == 1 {
			v += cj
		}
	}
	return v
}

func feasible(A [][]float64, b []float64, x []int8) bool {
	for i, row := range A {
		s := 0.0
		for j, a := range row {
			if j < len(x) && x[j] == 1 {
				s += a
			}
		}
		if s != b[i] {
			return false
		}
	}
	return true
}
