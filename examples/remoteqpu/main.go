// Remote QPU: run the split-execution pipeline against a quantum server
// reached over TCP — the deployment the paper describes as "a classical
// client requesting a response from a quantum server via a local area
// network interface" (Fig. 1a). The example starts an in-process server on
// the loopback interface, solves through it, and compares the measured
// network cost against the modeled stage times.
//
//	go run ./examples/remoteqpu
package main

import (
	"fmt"
	"log"

	splitexec "github.com/splitexec/splitexec"
	"github.com/splitexec/splitexec/internal/anneal"
	"github.com/splitexec/splitexec/internal/core"
	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/qpuserver"
	"github.com/splitexec/splitexec/internal/qubo"
)

func main() {
	// The "quantum server": a Vesuvius-class QPU behind TCP, enforcing its
	// own topology on incoming programs.
	srv := qpuserver.NewServer(anneal.DW2Timings(), anneal.SamplerOptions{Sweeps: 256})
	srv.Hardware = graph.Vesuvius().Graph()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("quantum server listening on %s (C(8,8,4), 512 qubits)\n\n", addr)

	// The "classical client": a full split-execution solver whose stage 2
	// happens on the other side of the network.
	cli, err := qpuserver.Dial(addr.String())
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	node := splitexec.SimpleNode()
	node.QPU.Topology = graph.Vesuvius()
	solver := core.NewSolver(core.Config{
		Node:   node,
		Seed:   5,
		Device: cli,
	})

	g := graph.Grid(3, 3)
	sol, err := solver.SolveQUBO(qubo.MaxCut(g, nil))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MAX-CUT on a 3x3 grid: cut %v of %d edges (energy %.0f)\n",
		qubo.CutValue(g, nil, sol.Binary), g.Size(), sol.Energy)
	fmt.Println()
	fmt.Println("where the time went:")
	fmt.Printf("  stage 1 (client: translate+embed, server: program): %v\n", sol.Timing.Stage1())
	fmt.Printf("  stage 2 (server: %d anneal reads + readout):         %v\n", sol.Reads, sol.Timing.Stage2())
	fmt.Printf("  stage 3 (client: sort+unembed):                     %v\n", sol.Timing.Stage3())
	fmt.Printf("  network round trips (measured):                     %v\n", cli.NetworkTime())
	fmt.Println()
	fmt.Println("\"networking is not expected to be the dominant cost of [the] hardware")
	fmt.Println(" model\" — §3.1. The measured round-trip cost confirms it: orders of")
	fmt.Println(" magnitude below the embedding + programming time of stage 1.")
}
