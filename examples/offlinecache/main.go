// Offline embedding: the paper's §4 proposes removing the stage-1
// bottleneck by pre-computing embeddings into a lookup table keyed by graph
// isomorphism. This example solves a batch of relabeled (isomorphic)
// problems with and without the cache and reports the stage-1 savings.
//
//	go run ./examples/offlinecache
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	splitexec "github.com/splitexec/splitexec"
)

func main() {
	const batch = 8
	base := splitexec.Cycle(10)
	rng := rand.New(rand.NewSource(3))

	// Build the batch: the same 10-cycle under random vertex relabelings,
	// as arises when many clients submit structurally identical problems.
	problems := make([]*splitexec.Graph, batch)
	for i := range problems {
		perm := rng.Perm(base.Order())
		h := splitexec.NewGraph(base.Order())
		for _, e := range base.Edges() {
			h.AddEdge(perm[e.U], perm[e.V])
		}
		problems[i] = h
	}

	run := func(cache *splitexec.EmbeddingCache) (time.Duration, int) {
		var embedTotal time.Duration
		hits := 0
		for i, g := range problems {
			solver := splitexec.NewSolver(splitexec.Config{
				Seed:     int64(100 + i),
				Cache:    cache,
				Accuracy: 0.9999, // more reads -> near-certain optimum
				Sampler:  splitexec.SamplerOptions{Sweeps: 512},
			})
			sol, err := solver.SolveQUBO(splitexec.MaxCut(g, nil))
			if err != nil {
				log.Fatalf("problem %d: %v", i, err)
			}
			if cut := splitexec.CutValue(g, nil, sol.Binary); cut != 10 {
				log.Fatalf("problem %d: cut %v, want 10", i, cut)
			}
			embedTotal += sol.Timing.EmbedSearch
			if sol.Timing.CacheHit {
				hits++
			}
		}
		return embedTotal, hits
	}

	inline, _ := run(nil)
	cached, hits := run(splitexec.NewEmbeddingCache())

	fmt.Printf("batch of %d isomorphic MAX-CUT instances (all solved optimally)\n\n", batch)
	fmt.Printf("inline embedding (paper's measured design): %v total embed time\n", inline)
	fmt.Printf("offline lookup table (paper's proposal):    %v total embed time, %d/%d cache hits\n",
		cached, hits, batch)
	if cached > 0 {
		fmt.Printf("\nstage-1 embedding work reduced by %.1fx\n", float64(inline)/float64(cached))
	}
	fmt.Println()
	fmt.Println("\"Rather it may be beneficial to use some variant of off-line embedding,")
	fmt.Println(" in which specific input graphs are pre-embedded and stored in a graph")
	fmt.Println(" lookup table.\" — §3.3")
}
