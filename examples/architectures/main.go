// Architectures: compare the three split-execution deployments of the
// paper's Fig. 1 on a workload derived from the stage models — (a) one host
// and one QPU, (b) many hosts sharing a QPU, (c) a QPU on every node — then
// validate the models against the live dispatch service: the same batch is
// replayed through internal/service at Hosts ∈ {1, 4, 8} and the measured
// makespan is printed next to arch.Simulate's prediction.
//
// The punchline follows from the paper's own bottleneck analysis: because
// classical pre-processing dominates each job, adding hosts helps even when
// the single QPU is shared — and the running service agrees with the model
// to within scheduler noise.
//
//	go run ./examples/architectures
package main

import (
	"fmt"
	"log"
	"time"

	splitexec "github.com/splitexec/splitexec"
)

func main() {
	pred := splitexec.NewPredictor(splitexec.SimpleNode())

	fmt.Println("batch of 48 jobs, problem size n = 30, pa = 0.99, ps = 0.7")
	fmt.Println()
	var serviceProfile splitexec.JobProfile
	for _, n := range []int{20, 30, 50} {
		s, err := pred.Predict(n, 0.99, 0.7)
		if err != nil {
			log.Fatal(err)
		}
		init := splitexec.DW2Timings().ProcessorInitialize()
		profile := splitexec.JobProfile{
			PreProcess:  durOf(s.Stage1) - init,
			Network:     10 * time.Microsecond,
			QPUService:  init + durOf(s.Stage2),
			PostProcess: durOf(s.Stage3),
		}
		if n == 30 {
			serviceProfile = profile
		}
		rows, err := splitexec.CompareArchitectures(profile, 48, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("n=%d (pre-process %v/job, QPU service %v/job):\n",
			n, profile.PreProcess.Round(time.Millisecond), profile.QPUService.Round(time.Millisecond))
		for _, r := range rows {
			fmt.Printf("  %-40s makespan %-14v %.2fx\n",
				r.System.Kind, r.Makespan.Round(time.Millisecond), r.Speedup)
		}
		fmt.Println()
	}

	fmt.Println("Because stage 1 (classical embedding) dominates, the shared-resource")
	fmt.Println("design (b) already recovers most of the dedicated design's (c) speedup:")
	fmt.Println("the contended QPU is idle most of the time — the paper's bottleneck")
	fmt.Println("conclusion, restated as an architecture decision.")
	fmt.Println()

	// --- measured vs modeled: the same batch through the live service ----
	// The model-scale phase times are milliseconds-to-seconds; scale the
	// n=30 profile down so the live replay finishes quickly while keeping
	// the phase ratios (and therefore the contention structure) intact.
	const (
		jobs  = 24
		scale = 100
	)
	p := splitexec.JobProfile{
		PreProcess:  serviceProfile.PreProcess / scale,
		Network:     serviceProfile.Network,
		QPUService:  serviceProfile.QPUService / scale,
		PostProcess: serviceProfile.PostProcess / scale,
	}
	fmt.Printf("live dispatch service, %d jobs of the n=30 profile at 1/%d scale\n", jobs, scale)
	fmt.Printf("(pre %v, net %v, QPU %v, post %v per job):\n\n",
		p.PreProcess.Round(time.Microsecond), p.Network,
		p.QPUService.Round(time.Microsecond), p.PostProcess.Round(time.Microsecond))
	fmt.Printf("  %-6s %-36s %-12s %-12s %-8s %s\n",
		"hosts", "architecture", "measured", "predicted", "error", "QPU busy")
	for _, row := range []struct {
		hosts, fleet int
		sys          splitexec.ArchSystem
	}{
		{1, 1, splitexec.ArchSystem{Kind: splitexec.SharedResource, Hosts: 1}},
		{4, 1, splitexec.ArchSystem{Kind: splitexec.SharedResource, Hosts: 4}},
		{8, 1, splitexec.ArchSystem{Kind: splitexec.SharedResource, Hosts: 8}},
		{4, 4, splitexec.ArchSystem{Kind: splitexec.DedicatedPerNode, Hosts: 4}},
		{8, 8, splitexec.ArchSystem{Kind: splitexec.DedicatedPerNode, Hosts: 8}},
	} {
		predicted, err := splitexec.SimulateArchitecture(row.sys, p, jobs)
		if err != nil {
			log.Fatal(err)
		}
		svc, err := splitexec.NewService(splitexec.ServiceOptions{
			Workers:    row.hosts,
			Fleet:      row.fleet,
			QueueDepth: jobs,
		})
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < jobs; i++ {
			if _, err := svc.SubmitProfile(p); err != nil {
				log.Fatal(err)
			}
		}
		rep := svc.Drain()
		errPct := 100 * (float64(rep.Makespan)/float64(predicted) - 1)
		fmt.Printf("  %-6d %-36s %-12v %-12v %-8s %.0f%%\n",
			row.hosts, row.sys.Kind, rep.Makespan.Round(time.Millisecond),
			predicted.Round(time.Millisecond), fmt.Sprintf("%+.1f%%", errPct), 100*rep.QPUBusyFraction)
	}
	fmt.Println("\nThe measured makespans track the discrete-event model: the dispatch")
	fmt.Println("service *is* the system the performance models describe.")
}

func durOf(seconds float64) time.Duration {
	return time.Duration(seconds * float64(time.Second))
}
