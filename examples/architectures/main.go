// Architectures: compare the three split-execution deployments of the
// paper's Fig. 1 on a workload derived from the stage models — (a) one host
// and one QPU, (b) many hosts sharing a QPU, (c) a QPU on every node. The
// punchline follows from the paper's own bottleneck analysis: because the
// classical pre-processing dominates each job, adding hosts helps even when
// the single QPU is shared.
//
//	go run ./examples/architectures
package main

import (
	"fmt"
	"log"
	"time"

	splitexec "github.com/splitexec/splitexec"
)

func main() {
	pred := splitexec.NewPredictor(splitexec.SimpleNode())

	fmt.Println("batch of 48 jobs, problem size n = 30, pa = 0.99, ps = 0.7")
	fmt.Println()
	for _, n := range []int{20, 30, 50} {
		s, err := pred.Predict(n, 0.99, 0.7)
		if err != nil {
			log.Fatal(err)
		}
		init := splitexec.DW2Timings().ProcessorInitialize()
		profile := splitexec.JobProfile{
			PreProcess:  durOf(s.Stage1) - init,
			Network:     10 * time.Microsecond,
			QPUService:  init + durOf(s.Stage2),
			PostProcess: durOf(s.Stage3),
		}
		rows, err := splitexec.CompareArchitectures(profile, 48, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("n=%d (pre-process %v/job, QPU service %v/job):\n",
			n, profile.PreProcess.Round(time.Millisecond), profile.QPUService.Round(time.Millisecond))
		for _, r := range rows {
			fmt.Printf("  %-40s makespan %-14v %.2fx\n",
				r.System.Kind, r.Makespan.Round(time.Millisecond), r.Speedup)
		}
		fmt.Println()
	}

	fmt.Println("Because stage 1 (classical embedding) dominates, the shared-resource")
	fmt.Println("design (b) already recovers most of the dedicated design's (c) speedup:")
	fmt.Println("the contended QPU is idle most of the time — the paper's bottleneck")
	fmt.Println("conclusion, restated as an architecture decision.")
}

func durOf(seconds float64) time.Duration {
	return time.Duration(seconds * float64(time.Second))
}
