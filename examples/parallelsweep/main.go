// Parallel design-space exploration: the same sweep the paper runs
// point-by-point, fanned out across every host core — the §4 direction of
// exploiting "more sophisticated host systems" applied to the exploration
// layer itself.
//
// The example shows both halves of the engine: an analytic sweep of the
// stage-1 model surface, run serially and then on all cores, verifying
// the tables are identical and reporting the wall-clock speedup; then a
// batch of full pipeline solves (real embedding, annealing and
// post-processing) fanned out with SolveBatch, one solver per job.
//
//	go run ./examples/parallelsweep
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	splitexec "github.com/splitexec/splitexec"
	"github.com/splitexec/splitexec/internal/aspen"
	"github.com/splitexec/splitexec/internal/core"
	"github.com/splitexec/splitexec/internal/machine"
)

func main() {
	node := machine.SimpleNode()
	f, err := aspen.Parse(node.ToAspen())
	if err != nil {
		log.Fatal(err)
	}
	spec, err := aspen.BuildMachine(f, node.Name)
	if err != nil {
		log.Fatal(err)
	}
	stage1, _, _, err := core.ParseStageModels()
	if err != nil {
		log.Fatal(err)
	}
	obj := splitexec.ModelObjective(stage1, spec, aspen.EvalOptions{
		HostSocket: node.CPU.Name,
	})

	// -- 1: analytic model sweep, serial vs parallel ---------------------
	axes := []splitexec.DSEAxis{
		{Name: "LPS", Values: splitexec.LinSpace(5, 100, 32)},
		{Name: "M", Values: splitexec.LinSpace(4, 16, 8)},
		{Name: "N", Values: splitexec.LinSpace(4, 16, 8)},
	}
	points := 1
	for _, ax := range axes {
		points *= len(ax.Values)
	}
	fmt.Printf("== %d-point sweep of the stage-1 model (LPS × M × N) ==\n", points)

	start := time.Now()
	serial, err := splitexec.SweepModelOpt(obj, axes, splitexec.SweepOptions{Workers: 1})
	if err != nil {
		log.Fatal(err)
	}
	serialTime := time.Since(start)

	start = time.Now()
	par, err := splitexec.SweepModelOpt(obj, axes, splitexec.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}
	parTime := time.Since(start)

	for i := range serial.Rows {
		if serial.Rows[i].Value != par.Rows[i].Value {
			log.Fatalf("row %d differs: serial %v, parallel %v", i, serial.Rows[i].Value, par.Rows[i].Value)
		}
	}
	fmt.Printf("serial (1 worker):     %v\n", serialTime)
	fmt.Printf("parallel (%d workers): %v\n", runtime.GOMAXPROCS(0), parTime)
	fmt.Printf("tables identical row-for-row; speedup %.1fx\n", float64(serialTime)/float64(parTime))
	best, err := par.ArgMin()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cheapest design point: %.3g s at %v\n\n", best.Value, best.Params)

	// -- 2: full-pipeline batch fan-out ----------------------------------
	const jobs = 16
	fmt.Printf("== %d full pipeline solves (MaxCut on C8), one solver per job ==\n", jobs)
	cfg := splitexec.Config{Node: smallNode()}
	batch := make([]splitexec.BatchJob, jobs)
	for i := range batch {
		batch[i] = splitexec.BatchJob{
			Config: cfg,
			QUBO:   splitexec.MaxCut(splitexec.Cycle(8), nil),
		}
	}

	start = time.Now()
	results, err := splitexec.SolveBatch(batch, splitexec.BatchOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	solved := 0
	var cpu time.Duration
	for _, r := range results {
		if r.Err != nil {
			log.Fatalf("job %d: %v", r.Index, r.Err)
		}
		if r.Solution.Energy == -8 { // C8 max cut
			solved++
		}
		t := r.Solution.Timing
		// Measured CPU phases only — Program and Execute are virtual QPU time.
		cpu += t.Translate + t.EmbedSearch + t.SetParameters + t.Stage3()
	}
	fmt.Printf("%d/%d jobs found the optimum; %v of measured CPU work done in %v wall-clock\n",
		solved, jobs, cpu.Round(time.Millisecond), elapsed.Round(time.Millisecond))
}

// smallNode shrinks the QPU lattice so each embedding is quick; the point
// here is the fan-out, not the hardware scale.
func smallNode() splitexec.Node {
	node := machine.SimpleNode()
	node.QPU = machine.DW2Vesuvius()
	node.QPU.Topology = splitexec.Chimera{M: 4, N: 4, L: 4}
	return node
}
