// Parallel pre-processing: the paper's conclusion (§4) notes its models
// "have not exploited more sophisticated host systems" and that "there may
// be additional parallel strategies that can accelerate the pre-processing
// stage." This example demonstrates two such strategies on a real host:
// multi-seed embedding racing (best-of-K across cores) and stage-overlap
// pipelining that hides quantum execution behind the embedding bottleneck.
//
//	go run ./examples/parallelembed
package main

import (
	"fmt"
	"log"
	"time"

	splitexec "github.com/splitexec/splitexec"
)

func main() {
	hw := splitexec.Vesuvius().Graph()
	g := splitexec.Complete(10)

	fmt.Println("== strategy 1: multi-seed embedding race (best-of-K) ==")
	for _, workers := range []int{1, 2, 4} {
		start := time.Now()
		res, err := splitexec.FindEmbeddingParallel(g, hw, splitexec.ParallelEmbedOptions{
			Workers: workers, Seeds: 8, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("workers=%d: 8 restarts in %8v, best uses %d qubits (%d/%d restarts succeeded)\n",
			workers, time.Since(start).Round(time.Millisecond), int(res.Quality), res.Succeeded, res.Succeeded+res.Failed)
	}
	fmt.Println("same seeds → same best embedding; more workers only shrink wall-clock time.")

	fmt.Println("\n== strategy 2: stage-overlap pipelining ==")
	// Per-job costs in the paper's regime: stage 1 (embedding + 0.32 s
	// programming) dwarfs stage 2 (a few hundred µs of annealing).
	jobs := make([]splitexec.StageCost, 16)
	for i := range jobs {
		jobs[i] = splitexec.StageCost{
			Pre:  500 * time.Millisecond,
			QPU:  413 * time.Microsecond, // 4 reads × 20 µs + readout + therm.
			Post: 50 * time.Microsecond,
		}
	}
	seq := splitexec.SequentialMakespan(jobs)
	pip, _, err := splitexec.PipelinedMakespan(jobs)
	if err != nil {
		log.Fatal(err)
	}
	sp, err := splitexec.PipelineSpeedup(jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("16-job batch, stage-1 dominant: serial %v → pipelined %v (speedup %.4f)\n",
		seq.Round(time.Millisecond), pip.Round(time.Millisecond), sp)

	balanced := make([]splitexec.StageCost, 16)
	for i := range balanced {
		balanced[i] = splitexec.StageCost{Pre: time.Millisecond, QPU: time.Millisecond, Post: 100 * time.Microsecond}
	}
	sp2, err := splitexec.PipelineSpeedup(balanced)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same batch with balanced stages:                              speedup %.4f\n", sp2)
	fmt.Println("\npipelining pays exactly where the QPU time can hide behind classical work;")
	fmt.Println("in the paper's regime stage 2 is already negligible, so overlap gains little —")
	fmt.Println("the bottleneck must be attacked inside stage 1 (multi-seed racing, caching).")

	fmt.Println("\n== live overlap with real goroutines ==")
	counter := 0
	live := make([]splitexec.PipelineJob, 8)
	for i := range live {
		live[i] = splitexec.PipelineJob{
			Pre:    func() error { time.Sleep(2 * time.Millisecond); return nil },
			Anneal: func() error { time.Sleep(2 * time.Millisecond); return nil },
			Post:   func() error { counter++; return nil },
		}
	}
	start := time.Now()
	if err := splitexec.RunPipeline(live); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("8 jobs × (2 ms pre + 2 ms anneal) finished in %v (serial would be ≥32 ms), %d post-processed\n",
		time.Since(start).Round(time.Millisecond), counter)
}
