// Open workload: the open-system question the closed-batch architecture
// models cannot answer — jobs arrive stochastically, queues build, and the
// metric is the response-time distribution, not makespan.
//
// The same declarative scenario is evaluated three ways and printed side by
// side:
//
//   - analytic: the M/M/c steady-state formulas (Erlang C), valid for the
//     Poisson + exponential single-class case;
//   - simulated: the discrete-event simulator, which handles any mix,
//     arrival process and architecture in virtual time;
//   - measured: the live dispatch service replaying the identical scenario
//     (same seed, same per-job draws) in wall-clock time.
//
// The three columns agreeing is the workload engine's validation loop: the
// simulator is checked against queueing theory where theory exists, and the
// real service is checked against the simulator everywhere.
//
//	go run ./examples/openworkload
package main

import (
	"fmt"
	"log"
	"time"

	splitexec "github.com/splitexec/splitexec"
)

func main() {
	// --- part 1: M/M/c triple check ----------------------------------
	// Single exponential job class (mean total 2ms => mu = 500 jobs/s),
	// dedicated QPUs so hosts never contend, Poisson arrivals at rho=0.6.
	const (
		hosts = 4
		mu    = 500.0
		rho   = 0.6
	)
	mmc := &splitexec.Scenario{
		Name:    "mmc-validation",
		Seed:    21,
		Arrival: splitexec.ScenarioArrival{Kind: splitexec.PoissonArrivals, Rate: rho * hosts * mu},
		Mix: []splitexec.ScenarioJobClass{{
			Name: "exp", Weight: 1, Dist: splitexec.ExponentialService,
			Profile: splitexec.ScenarioProfile{
				PreProcess:  splitexec.ScenarioDuration(1200 * time.Microsecond),
				QPUService:  splitexec.ScenarioDuration(500 * time.Microsecond),
				PostProcess: splitexec.ScenarioDuration(300 * time.Microsecond),
			},
		}},
		System:  splitexec.ScenarioSystem{Kind: "dedicated", Hosts: hosts},
		Horizon: splitexec.ScenarioHorizon{Jobs: 3000},
	}

	analytic, err := splitexec.AnalyticWorkload(mmc)
	if err != nil {
		log.Fatal(err)
	}
	simulated, err := splitexec.SimulateWorkload(mmc, splitexec.WorkloadSimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	measured := replay(mmc)

	fmt.Printf("M/M/%d at rho=%.1f — %d Poisson arrivals of exponential 2ms jobs:\n\n", hosts, rho, mmc.Horizon.Jobs)
	fmt.Printf("  %-22s %-12s %-12s %s\n", "mean sojourn", "analytic", "simulated", "measured")
	fmt.Printf("  %-22s %-12v %-12v %v\n", "",
		analytic.SojournMean.Round(time.Microsecond),
		simulated.Sojourn.Mean.Round(time.Microsecond),
		measured.Sojourn.Mean.Round(time.Microsecond))
	fmt.Printf("\n  analytic P(queue) = %.3f, mean queue wait %v; simulated p99 sojourn %v, measured %v\n",
		analytic.ErlangC, analytic.QueueWaitMean.Round(time.Microsecond),
		simulated.Sojourn.P99.Round(time.Microsecond), measured.Sojourn.P99.Round(time.Microsecond))

	// --- part 2: beyond the analytic envelope ------------------------
	// A heterogeneous mix on the shared-resource architecture: no closed
	// form exists, but the simulator still predicts the live service.
	mixed := &splitexec.Scenario{
		Name:    "mixed-shared",
		Seed:    22,
		Arrival: splitexec.ScenarioArrival{Kind: splitexec.PoissonArrivals, Rate: 300},
		Mix: []splitexec.ScenarioJobClass{
			{Name: "interactive", Weight: 4, Profile: splitexec.ScenarioProfile{
				PreProcess: splitexec.ScenarioDuration(800 * time.Microsecond),
				QPUService: splitexec.ScenarioDuration(400 * time.Microsecond),
			}},
			{Name: "batch", Weight: 1, Dist: splitexec.ExponentialService,
				Profile: splitexec.ScenarioProfile{
					PreProcess:  splitexec.ScenarioDuration(4 * time.Millisecond),
					QPUService:  splitexec.ScenarioDuration(2 * time.Millisecond),
					PostProcess: splitexec.ScenarioDuration(time.Millisecond),
				}},
		},
		System:  splitexec.ScenarioSystem{Kind: "shared", Hosts: 4},
		Horizon: splitexec.ScenarioHorizon{Jobs: 2000},
	}
	sim2, err := splitexec.SimulateWorkload(mixed, splitexec.WorkloadSimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	meas2 := replay(mixed)

	fmt.Printf("\n80/20 interactive/batch mix, shared QPU, 4 hosts, 300 jobs/s:\n\n")
	fmt.Printf("  %-14s %-12s %-12s %s\n", "", "simulated", "measured", "ratio")
	row := func(label string, sim, meas time.Duration) {
		fmt.Printf("  %-14s %-12v %-12v %.2fx\n", label,
			sim.Round(time.Microsecond), meas.Round(time.Microsecond),
			float64(meas)/float64(sim))
	}
	row("mean sojourn", sim2.Sojourn.Mean, meas2.Sojourn.Mean)
	row("p99 sojourn", sim2.Sojourn.P99, meas2.Sojourn.P99)
	row("mean QPU wait", sim2.QPUWait.Mean, meas2.QPUWait.Mean)
	fmt.Printf("\n  simulated QPU utilization %.0f%% — the contended token is where the tail lives.\n", 100*sim2.QPUBusy)
	fmt.Println("\nThe simulator is validated against queueing theory where theory exists,")
	fmt.Println("and the live service against the simulator everywhere else: one scenario")
	fmt.Println("file, three consistent answers.")
}

// replay runs the scenario through a live in-process dispatch service.
func replay(sc *splitexec.Scenario) *splitexec.LoadgenResult {
	svc, err := splitexec.NewService(splitexec.ServiceOptions{
		Workers:    sc.System.Hosts,
		Fleet:      sc.System.QPUs(),
		QueueDepth: sc.Horizon.Jobs,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Drain()
	r, err := splitexec.RunLoadgen(sc, splitexec.LoadgenOptions{Service: svc})
	if err != nil {
		log.Fatal(err)
	}
	return r
}
