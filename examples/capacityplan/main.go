// Capacity planning: inverting the performance models into a provisioning
// decision. The workload engine answers "what latency does this fleet give
// me"; an operator asks the inverse — "what is the cheapest fleet that
// holds my SLO". This example walks the full loop:
//
//  1. declare a two-class workload (interactive + batch) with priorities
//     and fair-share weights;
//
//  2. show what the scheduling policy alone does to each class's latency
//     at a fixed deployment (policies are free, hosts are not);
//
//  3. plan the cheapest {hosts, fleet, policy} meeting a p99 SLO and show
//     the frontier: the recommendation meets the SLO, its next-cheaper
//     neighbor does not;
//
//  4. re-simulate the recommendation independently as a final check.
//
//     go run ./examples/capacityplan
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	splitexec "github.com/splitexec/splitexec"
)

func scenario(policy splitexec.SchedulingPolicy) *splitexec.Scenario {
	return &splitexec.Scenario{
		Name:    "web-mix",
		Seed:    42,
		Arrival: splitexec.ScenarioArrival{Kind: splitexec.PoissonArrivals, Rate: 1500},
		Mix: []splitexec.ScenarioJobClass{
			{
				// Interactive traffic: 3/4 of jobs, short, latency-critical.
				Name: "interactive", Weight: 3, Priority: 10,
				Profile: splitexec.ScenarioProfile{
					PreProcess:  splitexec.ScenarioDuration(700 * time.Microsecond),
					QPUService:  splitexec.ScenarioDuration(300 * time.Microsecond),
					PostProcess: splitexec.ScenarioDuration(100 * time.Microsecond),
				},
			},
			{
				// Batch traffic: heavier, tolerant, must not starve.
				Name: "batch", Weight: 1, Priority: 0,
				Profile: splitexec.ScenarioProfile{
					PreProcess:  splitexec.ScenarioDuration(2500 * time.Microsecond),
					QPUService:  splitexec.ScenarioDuration(1200 * time.Microsecond),
					PostProcess: splitexec.ScenarioDuration(300 * time.Microsecond),
				},
			},
		},
		System:  splitexec.ScenarioSystem{Kind: "dedicated", Hosts: 3},
		Horizon: splitexec.ScenarioHorizon{Jobs: 30_000},
		Policy:  policy,
	}
}

func main() {
	// --- part 1: what does the policy alone buy? ----------------------
	// Same workload, same 3-host fleet at ~0.9 utilization (a standing
	// backlog makes the discipline visible), four disciplines.
	fmt.Println("policy comparison at a fixed 3-host dedicated fleet (rho ~ 0.9):")
	fmt.Printf("  %-9s %14s %14s %14s\n", "policy", "interactive", "batch", "overall p99")
	for _, policy := range splitexec.SchedulingPolicies() {
		r, err := splitexec.SimulateWorkload(scenario(policy), splitexec.WorkloadSimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s %14v %14v %14v\n", policy,
			r.ClassSojourn[0].Mean.Round(time.Microsecond),
			r.ClassSojourn[1].Mean.Round(time.Microsecond),
			r.Sojourn.P99.Round(time.Microsecond))
	}

	// --- part 2: plan the cheapest fleet for a p99 SLO ----------------
	target := splitexec.CapacityTarget{P99Sojourn: 15 * time.Millisecond}
	space := splitexec.CapacitySpace{
		Hosts:    []int{1, 2, 3, 4, 6, 8, 12, 16},
		Kinds:    []string{"shared", "dedicated"},
		Policies: splitexec.SchedulingPolicies(),
	}
	p, err := splitexec.PlanCapacity(scenario(splitexec.FIFOPolicy), target, space,
		splitexec.CapacityPlanOptions{Costs: splitexec.CapacityCosts{Host: 1, QPU: 3}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplanning for p99 sojourn <= %v over %d candidates:\n", target.P99Sojourn, len(p.Evaluated))
	if p.Best == nil {
		log.Fatal("no configuration meets the SLO — widen the search space")
	}
	fmt.Printf("  cheapest satisfying: %s/%s hosts=%d qpus=%d cost=%.0f (p99 %v)\n",
		p.Best.Kind, p.Best.Policy, p.Best.Hosts, p.Best.QPUs, p.Best.Cost,
		p.Best.Result.Sojourn.P99.Round(time.Microsecond))
	if p.NextCheaper != nil {
		fmt.Printf("  next-cheaper fails:  %s/%s hosts=%d cost=%.0f — %s\n",
			p.NextCheaper.Kind, p.NextCheaper.Policy, p.NextCheaper.Hosts,
			p.NextCheaper.Cost, strings.Join(p.NextCheaper.Unmet, "; "))
	}

	// --- part 3: trust, but verify ------------------------------------
	check := scenario(p.Best.Policy)
	check.System = splitexec.ScenarioSystem{Kind: p.Best.Kind, Hosts: p.Best.Hosts}
	r, err := splitexec.SimulateWorkload(check, splitexec.WorkloadSimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	verdict := "MEETS"
	if r.Sojourn.P99 > target.P99Sojourn {
		verdict = "MISSES"
	}
	fmt.Printf("\nindependent re-simulation of the recommendation: p99 %v — %s the %v SLO\n",
		r.Sojourn.P99.Round(time.Microsecond), verdict, target.P99Sojourn)
}
