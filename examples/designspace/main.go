// Design-space exploration over the paper's ASPEN models: sweep the
// stage-1 model across problem sizes, rank which parameters the predicted
// time is actually sensitive to, and locate the problem size at which
// pre-processing blows a 1-second interactivity budget.
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"log"

	splitexec "github.com/splitexec/splitexec"
	"github.com/splitexec/splitexec/internal/aspen"
	"github.com/splitexec/splitexec/internal/core"
	"github.com/splitexec/splitexec/internal/machine"
)

func main() {
	node := machine.SimpleNode()
	f, err := aspen.Parse(node.ToAspen())
	if err != nil {
		log.Fatal(err)
	}
	spec, err := aspen.BuildMachine(f, node.Name)
	if err != nil {
		log.Fatal(err)
	}
	stage1, _, _, err := core.ParseStageModels()
	if err != nil {
		log.Fatal(err)
	}
	obj := splitexec.ModelObjective(stage1, spec, aspen.EvalOptions{
		HostSocket: node.CPU.Name,
		Params:     map[string]float64{"M": 12, "N": 12},
	})

	fmt.Println("== sweep: stage-1 predicted seconds vs problem size ==")
	// The engine walks the design space on every host core; rows come back
	// in canonical axis order regardless of completion order.
	tbl, err := splitexec.SweepModelOpt(obj, []splitexec.DSEAxis{
		{Name: "LPS", Values: splitexec.LinSpace(10, 100, 10)},
	}, splitexec.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tbl.Format())

	fmt.Println("== sensitivity ranking at LPS = 50 (±2% elasticities) ==")
	sens, err := splitexec.Sensitivities(obj, map[string]float64{"LPS": 50, "M": 12, "N": 12}, 0.02)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range sens {
		fmt.Printf("%6s  elasticity %+7.3f   (time ~ %s^%.1f here)\n", s.Param, s.Elasticity, s.Param, s.Elasticity)
	}
	fmt.Println("problem size dominates: the model is embedding-bound, not hardware-lattice-bound.")

	fmt.Println("\n== crossover: where does stage 1 exceed a 1-second budget? ==")
	budget := func(map[string]float64) (float64, error) { return 1.0, nil }
	n, err := splitexec.Crossover(obj, budget, "LPS", 1, 100, map[string]float64{"M": 12, "N": 12}, 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pre-processing alone exceeds 1 s beyond n ≈ %.1f logical variables\n", n)
	fmt.Println("— the quantitative form of the paper's warning that translation costs, not the")
	fmt.Println("QPU, gate the usable problem size of a split-execution system.")
}
