// Control precision: §2.2 warns that "the ability to realize these exact
// parameter values is limited by the bits of precision expressed by the
// electronic control system" so "the final, programmed Ising model may be
// substantively different from the intended logical input. It is not yet
// clear what errors these differences contribute to final solutions." This
// example answers that question in simulation: it programs the same model
// through DACs of decreasing precision and measures how often the intended
// ground state survives, with and without analog control noise (ICE).
//
//	go run ./examples/controlprecision
package main

import (
	"fmt"
	"log"
	"math/rand"

	splitexec "github.com/splitexec/splitexec"
	"github.com/splitexec/splitexec/internal/control"
	"github.com/splitexec/splitexec/internal/qubo"
)

func main() {
	rng := rand.New(rand.NewSource(3))

	// A 10-spin glass whose ground state hinges on fine coefficient
	// differences — the worst case for coarse control.
	intended := qubo.NewIsing(10)
	for i := 0; i < 10; i++ {
		intended.H[i] = (rng.Float64() - 0.5) * 0.8
		intended.SetCoupling(i, (i+1)%10, (rng.Float64()-0.5)*2)
	}

	fmt.Println("== ground-state survival vs DAC precision (noiseless) ==")
	fmt.Printf("%6s %14s %10s\n", "bits", "max quant err", "preserved")
	for _, bits := range []int{2, 3, 4, 5, 6, 8, 12} {
		ctl := splitexec.NewController()
		ctl.DAC.Bits = bits
		res, err := ctl.Program(intended, nil)
		if err != nil {
			log.Fatal(err)
		}
		ok := control.GroundStatePreserved(intended, res.Realized, 1e-9)
		fmt.Printf("%6d %14.5f %10v\n", bits, res.MaxQuantErr, ok)
	}

	fmt.Println("\n== adding integrated control errors (ICE) ==")
	fmt.Printf("%10s %12s %12s\n", "σ", "preserved", "mean ΔE₀")
	for _, sigma := range []float64{0.005, 0.02, 0.05, 0.15} {
		ice := splitexec.ICE{HSigma: sigma, JSigma: sigma}
		st, err := ice.GroundStateStability(intended, 60, 1e-9, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10.3f %11.0f%% %12.4f\n", sigma, 100*st.PreservationRate(), st.MeanShift)
	}

	fmt.Println("\n== where does the programming time go? ==")
	ctl := splitexec.NewController()
	res, err := ctl.Program(intended, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range res.Phases {
		fmt.Printf("%10s %12v\n", p.Phase, p.Duration)
	}
	fmt.Printf("%10s %12v  (the stage-1 ProcessorInitialize constant)\n", "total", res.Total)

	bits, err := splitexec.RequiredBits(1, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nresolving J ∈ [-1,1] to 0.05 — e.g. to keep chains dominant — needs ≥%d DAC bits\n", bits)
}
