// Performance model: use the ASPEN-based analytic path directly — the
// workflow of the paper itself. Evaluates the three stage models across
// problem sizes, prints the Fig. 9 story, and demonstrates evaluating a
// custom ASPEN model against the Fig. 5 machine.
//
//	go run ./examples/performancemodel
package main

import (
	"fmt"
	"log"

	splitexec "github.com/splitexec/splitexec"
)

func main() {
	pred := splitexec.NewPredictor(splitexec.SimpleNode())

	fmt.Println("analytic stage predictions, pa=0.99, ps=0.7 (paper Fig. 9):")
	fmt.Printf("%-6s %-14s %-14s %-14s %s\n", "n", "stage1 (s)", "stage2 (s)", "stage3 (s)", "stage1 share")
	for _, n := range []int{5, 10, 20, 30, 50, 100} {
		s, err := pred.Predict(n, 0.99, 0.7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-14.4g %-14.4g %-14.4g %.4f\n",
			n, s.Stage1, s.Stage2, s.Stage3, s.Stage1/s.Total())
	}

	fmt.Println()
	fmt.Println("custom ASPEN model on the Fig. 5 machine: a hybrid kernel that")
	fmt.Println("interleaves host flops, PCIe transfers and quantum reads:")

	const src = `
model Hybrid {
  param N = 0 // Input Parameter
  param Reads = 100

  kernel prepare {
    execute [1] {
      flops [N^2 * 50] as sp, simd
      stores [N*8]
    }
  }
  kernel offload {
    execute [1] {
      intracomm [N*8] as copyout
      QuOps [Reads]
      intracomm [Reads*N] as copyin
    }
  }
  kernel main {
    prepare
    iterate [10] { offload }
  }
}
`
	f, err := splitexec.ParseAspen(src)
	if err != nil {
		log.Fatal(err)
	}
	mach, err := splitexec.ParseAspenWithIncludes(splitexec.SimpleNode().ToAspen())
	if err != nil {
		log.Fatal(err)
	}
	spec, err := splitexec.BuildAspenMachine(mach, "SimpleNode")
	if err != nil {
		log.Fatal(err)
	}
	res, err := splitexec.EvaluateAspen(f.Models[0], spec, splitexec.AspenEvalOptions{
		HostSocket: "intel_xeon_e5_2680",
		Params:     map[string]float64{"N": 512},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, k := range res.Kernels {
		fmt.Printf("  kernel %-10s %.6g s\n", k.Name, k.Seconds)
	}
	fmt.Printf("  total             %.6g s\n", res.TotalSeconds())
	fmt.Println()
	fmt.Println("per resource class:")
	for verb, sec := range res.ByVerb() {
		fmt.Printf("  %-12s %.6g s\n", verb, sec)
	}
}
