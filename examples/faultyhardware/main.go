// Faulty hardware: the paper (§2.2) notes that fabrication faults destroy
// the Chimera symmetry and make minor embedding harder. This example solves
// the same weighted MAX-CUT instance on a pristine and on a progressively
// degraded processor, comparing embedding effort and chain growth.
//
//	go run ./examples/faultyhardware
package main

import (
	"fmt"
	"log"
	"math/rand"

	splitexec "github.com/splitexec/splitexec"
	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/machine"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	g := splitexec.Grid(3, 4) // 12 vertices, 17 edges
	weight := func(u, v int) float64 { return float64((u+v)%3 + 1) }
	problem := splitexec.MaxCut(g, weight)

	fmt.Println("weighted MAX-CUT on a 3x4 grid, C(8,8,4) processor")
	fmt.Printf("%-12s %-10s %-12s %-10s %-10s %s\n",
		"fault rate", "yield", "phys qubits", "max chain", "cut", "embed time")

	for _, rate := range []float64{0, 0.02, 0.05, 0.10} {
		node := machine.SimpleNode()
		node.QPU = machine.DW2Vesuvius()
		hwGraph := node.QPU.Topology.Graph()
		node.QPU.Faults = graph.RandomFaults(hwGraph, rate, rate/4, rng)

		solver := splitexec.NewSolver(splitexec.Config{
			Node: node,
			Seed: 11,
		})
		sol, err := solver.SolveQUBO(problem)
		if err != nil {
			log.Fatalf("fault rate %v: %v", rate, err)
		}
		fmt.Printf("%-12.2f %-10.3f %-12d %-10d %-10.0f %v\n",
			rate,
			node.QPU.Faults.Yield(hwGraph.Order()),
			sol.EmbedStats.PhysicalQubits,
			sol.EmbedStats.MaxChainLength,
			splitexec.CutValue(g, weight, sol.Binary),
			sol.Timing.EmbedSearch,
		)
	}

	fmt.Println()
	fmt.Println("Dead qubits break the Chimera symmetry, so the embedder must route")
	fmt.Println("around them (chains and search effort vary run to run), yet the")
	fmt.Println("solution quality stays intact — the annealer still finds the same cut.")
}
