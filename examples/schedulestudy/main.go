// Schedule study: how the annealing waveform and duration (§2.2's
// "temporal waveform and duration") shape the single-run success
// probability ps and the time-to-solution, and how the resulting ps feeds
// the split-execution solver's Eq. 6 repetition count.
//
//	go run ./examples/schedulestudy
package main

import (
	"fmt"
	"log"
	"time"

	splitexec "github.com/splitexec/splitexec"
)

func main() {
	gap := splitexec.DefaultGapModel()
	lim := splitexec.DW2ScheduleLimits()
	perRead := 325 * time.Microsecond // readout (320 µs) + thermalization (5 µs)

	fmt.Println("== TTS vs anneal duration (linear ramps, pa = 0.99) ==")
	curve, err := splitexec.SweepTTS(gap, 0.99, lim.MinDuration, lim.MaxDuration, 12, perRead)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%12s %8s %7s %12s\n", "anneal", "ps", "reads", "TTS")
	for _, r := range curve {
		fmt.Printf("%12v %8.4f %7d %12v\n", r.AnnealTime.Round(time.Microsecond), r.Ps, r.Reads, r.Total.Round(time.Microsecond))
	}

	best, tts, err := splitexec.OptimalAnnealTime(gap, 0.99, lim, perRead)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimal anneal duration: %v (TTS %v)\n", best.Round(time.Microsecond), tts.Round(time.Microsecond))
	fmt.Println("the curve is the canonical U: short anneals repeat too often, long ones overpay per read")

	fmt.Println("\n== waveform shaping at the default 20 µs ==")
	linear := splitexec.LinearSchedule(20 * time.Microsecond)
	psLin, _ := splitexec.SuccessProbability(linear, gap)
	paused, err := splitexec.ScheduleWithPause(20*time.Microsecond, gap.Position, 100*time.Microsecond)
	if err != nil {
		log.Fatal(err)
	}
	psPause, _ := splitexec.SuccessProbability(paused, gap)
	quench, err := splitexec.ScheduleWithQuench(20*time.Microsecond, 0.5, 200*time.Nanosecond)
	if err != nil {
		log.Fatal(err)
	}
	psQuench, _ := splitexec.SuccessProbability(quench, gap)
	fmt.Printf("linear ramp:            ps = %.4f\n", psLin)
	fmt.Printf("pause at the gap (s*):  ps = %.4f\n", psPause)
	fmt.Printf("quench across the gap:  ps = %.4f\n", psQuench)
	if err := quench.Validate(lim); err != nil {
		fmt.Printf("(hardware would reject that quench: %v)\n", err)
	}

	fmt.Println("\n== programming the waveform into the split-execution solver ==")
	g := splitexec.Cycle(10)
	problem := splitexec.MaxCut(g, nil)
	optimal := splitexec.LinearSchedule(best)
	for _, cfg := range []struct {
		name string
		sc   splitexec.Schedule
	}{
		{"linear 20 µs", linear},
		{"optimal duration", optimal},
	} {
		sc := cfg.sc
		solver := splitexec.NewSolver(splitexec.Config{Seed: 7, Schedule: &sc})
		sol, err := solver.SolveQUBO(problem)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s derived ps=%.4f reads=%3d stage2=%v\n",
			cfg.name, sol.SuccessProb, sol.Reads, sol.Timing.Stage2())
	}
	fmt.Println("\neven the worst schedule leaves stage 2 far below the stage-1 embedding cost —")
	fmt.Println("the paper's conclusion is insensitive to the schedule, which is why its Fig. 9(b)")
	fmt.Println("looks the same for every ps > 0.6.")
}
