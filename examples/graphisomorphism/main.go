// Graph isomorphism on the annealer: the paper's §3.3 closes by proposing
// off-line embedding lookup tables whose retrieval "would require some
// variant of graph isomorphism", noting GI itself maps to adiabatic
// hardware — "raising the prospects the D-Wave processor could be used to
// program the D-Wave processor!" This example runs that loop end to end:
// a library of pre-embedded input graphs, an incoming relabeled problem,
// annealer-backed identification, and reuse of the cached embedding.
//
//	go run ./examples/graphisomorphism
package main

import (
	"fmt"
	"log"
	"math/rand"

	splitexec "github.com/splitexec/splitexec"
	"github.com/splitexec/splitexec/internal/graph"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	hw := splitexec.Vesuvius().Graph()

	// Off-line phase: pre-embed a library of recurring input topologies.
	library := []*splitexec.Graph{
		splitexec.Cycle(6),
		splitexec.Complete(5),
		splitexec.Grid(2, 3),
	}
	names := []string{"C6", "K5", "grid 2x3"}
	embeddings := make([]graph.VertexModel, len(library))
	for i, g := range library {
		res, err := splitexec.FindEmbeddingParallel(g, hw, splitexec.ParallelEmbedOptions{Seed: int64(i)})
		if err != nil {
			log.Fatalf("pre-embedding %s: %v", names[i], err)
		}
		embeddings[i] = res.VM
		fmt.Printf("pre-embedded %-8s → %2d qubits\n", names[i], int(res.Quality))
	}

	// On-line phase: a problem arrives with scrambled vertex labels.
	query, err := splitexec.RelabelGraph(splitexec.Grid(2, 3), rng.Perm(6))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nincoming problem: a 6-vertex graph with unknown labeling")

	idx, perm, err := splitexec.MatchGraph(query, library, splitexec.GIOptions{}, rng)
	if err != nil {
		log.Fatal(err)
	}
	if idx < 0 {
		log.Fatal("no cached embedding matches — would fall back to inline CMR")
	}
	fmt.Printf("annealer identified it as %s; certificate perm = %v\n", names[idx], perm)
	if err := splitexec.VerifyIsomorphism(query, library[idx], perm); err != nil {
		log.Fatalf("certificate failed exact verification: %v", err)
	}

	// Compose the cached embedding with the certificate: query vertex v is
	// library vertex perm[v], whose chain is already known.
	vm := make(graph.VertexModel, len(perm))
	for v, img := range perm {
		vm[v] = embeddings[idx][img]
	}
	if err := splitexec.ValidateMinor(query, hw, vm, true); err != nil {
		log.Fatalf("composed embedding invalid: %v", err)
	}
	fmt.Println("cached embedding composed through the certificate — stage-1 CMR search skipped")

	// The reduction itself is an ordinary QUBO a QPU can host.
	red, err := splitexec.ReduceGI(query, library[idx], 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGI reduction size: %d binary variables (n²) — the 'QPU programs the QPU' workload\n", red.Q.Dim())
}
