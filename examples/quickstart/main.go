// Quickstart: solve a small MAX-CUT problem on the simulated
// split-execution system and inspect where the time went.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	splitexec "github.com/splitexec/splitexec"
)

func main() {
	// An 8-cycle is bipartite, so the maximum cut severs all 8 edges.
	g := splitexec.Cycle(8)
	problem := splitexec.MaxCut(g, nil)

	solver := splitexec.NewSolver(splitexec.Config{Seed: 42})
	sol, err := solver.SolveQUBO(problem)
	if err != nil {
		log.Fatalf("solve: %v", err)
	}

	fmt.Printf("partition: %v\n", sol.Binary)
	fmt.Printf("cut value: %.0f (energy %.0f)\n", splitexec.CutValue(g, nil, sol.Binary), sol.Energy)
	fmt.Printf("QPU reads: %d (Eq. 6 with pa=0.99, ps=0.7)\n", sol.Reads)
	fmt.Println()
	fmt.Println("time-to-solution:")
	fmt.Printf("  stage 1 (translate+embed+program): %v\n", sol.Timing.Stage1())
	fmt.Printf("  stage 2 (quantum execution):       %v\n", sol.Timing.Stage2())
	fmt.Printf("  stage 3 (post-processing):         %v\n", sol.Timing.Stage3())
	fmt.Println()
	fmt.Println("The paper's conclusion in one run: stage 1 — dominated by the classical")
	fmt.Println("minor-embedding search and the 0.32 s processor-programming constant —")
	fmt.Println("exceeds quantum execution time by orders of magnitude.")
}
