package schedule

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSuccessProbabilityCalibration(t *testing.T) {
	// The LZ scale is calibrated so the paper's defaults line up: a 20 µs
	// linear anneal across the default gap gives ps ≈ 0.7 (the Fig. 9b value).
	ps, err := SuccessProbability(Linear(20*time.Microsecond), DefaultGap())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ps-0.7) > 0.01 {
		t.Fatalf("ps(20µs, default gap) = %v, want ≈0.7", ps)
	}
}

func TestSuccessProbabilityMonotoneInDuration(t *testing.T) {
	g := DefaultGap()
	prev := -1.0
	for _, us := range []int{1, 5, 20, 100, 500, 2000} {
		ps, err := SuccessProbability(Linear(time.Duration(us)*time.Microsecond), g)
		if err != nil {
			t.Fatal(err)
		}
		if ps <= prev {
			t.Fatalf("ps not increasing with anneal time at %dµs: %v <= %v", us, ps, prev)
		}
		prev = ps
	}
}

func TestSuccessProbabilityMonotoneInGap(t *testing.T) {
	sc := Linear(20 * time.Microsecond)
	prev := -1.0
	for _, gap := range []float64{0.01, 0.05, 0.1, 0.2, 0.5} {
		ps, err := SuccessProbability(sc, GapModel{MinGap: gap, Position: 0.65})
		if err != nil {
			t.Fatal(err)
		}
		if ps <= prev {
			t.Fatalf("ps not increasing with gap at %v: %v <= %v", gap, ps, prev)
		}
		prev = ps
	}
}

func TestSuccessProbabilityLimits(t *testing.T) {
	g := DefaultGap()
	// Very long anneal → nearly certain.
	ps, err := SuccessProbability(Linear(time.Second), g)
	if err != nil {
		t.Fatal(err)
	}
	if ps < 0.999999 {
		t.Fatalf("ps(1s) = %v, want ≈1", ps)
	}
	// Vanishing gap → nearly hopeless.
	ps, err = SuccessProbability(Linear(20*time.Microsecond), GapModel{MinGap: 1e-6, Position: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if ps > 1e-3 {
		t.Fatalf("ps(tiny gap) = %v, want ≈0", ps)
	}
}

func TestPauseAtGapBoostsSuccess(t *testing.T) {
	g := DefaultGap()
	base, err := SuccessProbability(Linear(20*time.Microsecond), g)
	if err != nil {
		t.Fatal(err)
	}
	paused, err := WithPause(20*time.Microsecond, g.Position, 100*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := SuccessProbability(paused, g)
	if err != nil {
		t.Fatal(err)
	}
	if ps != 1 {
		t.Fatalf("ps with hold at gap = %v, want 1 (adiabatic)", ps)
	}
	if ps <= base {
		t.Fatalf("pause did not help: %v <= %v", ps, base)
	}
}

func TestPauseAwayFromGapDoesNotHelp(t *testing.T) {
	g := DefaultGap() // position 0.65
	paused, err := WithPause(20*time.Microsecond, 0.2, 100*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := SuccessProbability(paused, g)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := SuccessProbability(Linear(20*time.Microsecond), g)
	// The ramp segments of the paused schedule have the same slope as the
	// plain 20 µs ramp, so crossing the gap at 0.65 is equally fast.
	if math.Abs(ps-base) > 1e-9 {
		t.Fatalf("off-gap pause changed ps: %v vs %v", ps, base)
	}
}

func TestQuenchBeforeGapHurts(t *testing.T) {
	g := DefaultGap()
	quench, err := WithQuench(20*time.Microsecond, 0.5, 100*time.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := SuccessProbability(quench, g)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := SuccessProbability(Linear(20*time.Microsecond), g)
	if ps >= base {
		t.Fatalf("quench across the gap should reduce ps: %v >= %v", ps, base)
	}
}

func TestSuccessProbabilityRejectsBadGap(t *testing.T) {
	if _, err := SuccessProbability(Linear(time.Microsecond), GapModel{MinGap: 0, Position: 0.5}); err == nil {
		t.Fatal("zero gap accepted")
	}
	if _, err := SuccessProbability(Linear(time.Microsecond), GapModel{MinGap: 0.1, Position: 1.5}); err == nil {
		t.Fatal("position outside (0,1) accepted")
	}
}

func TestTTSMatchesEq6(t *testing.T) {
	// ps=0.7, pa=0.99 → s = ceil(log(0.01)/log(0.3)) = ceil(3.82) = 4.
	got, err := TTS(20*time.Microsecond, 0.7, 0.99, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * 20 * time.Microsecond; got != want {
		t.Fatalf("TTS = %v, want %v", got, want)
	}
}

func TestTTSIncludesPerReadOverhead(t *testing.T) {
	bare, _ := TTS(20*time.Microsecond, 0.7, 0.99, 0)
	loaded, _ := TTS(20*time.Microsecond, 0.7, 0.99, 325*time.Microsecond)
	if loaded != bare+4*325*time.Microsecond {
		t.Fatalf("overhead accounting wrong: %v vs %v", loaded, bare)
	}
}

func TestTTSRejectsBadProbabilities(t *testing.T) {
	for _, c := range []struct{ ps, pa float64 }{
		{0, 0.9}, {1, 0.9}, {0.5, 0}, {0.5, 1}, {-0.1, 0.9}, {0.5, 1.1},
	} {
		if _, err := TTS(time.Microsecond, c.ps, c.pa, 0); err == nil {
			t.Errorf("TTS(ps=%v, pa=%v) accepted", c.ps, c.pa)
		}
	}
}

func TestSweepTTSUShape(t *testing.T) {
	curve, err := SweepTTS(DefaultGap(), 0.99, time.Microsecond, 2000*time.Microsecond, 48, 325*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 48 {
		t.Fatalf("len = %d", len(curve))
	}
	best := 0
	for i, r := range curve {
		if r.Total < curve[best].Total {
			best = i
		}
	}
	// The optimum is interior: both very short and very long anneals lose.
	if best == 0 || best == len(curve)-1 {
		t.Fatalf("TTS optimum at boundary (index %d of %d): no U-shape", best, len(curve))
	}
	if curve[0].Reads <= curve[best].Reads {
		t.Fatalf("short anneal should need more reads: %d <= %d", curve[0].Reads, curve[best].Reads)
	}
}

func TestSweepTTSPsIncreases(t *testing.T) {
	curve, err := SweepTTS(DefaultGap(), 0.9, time.Microsecond, time.Millisecond, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Ps < curve[i-1].Ps {
			t.Fatalf("ps decreased along sweep at %d", i)
		}
	}
}

func TestSweepTTSRejectsBadArgs(t *testing.T) {
	g := DefaultGap()
	if _, err := SweepTTS(g, 0.9, 0, time.Millisecond, 10, 0); err == nil {
		t.Fatal("zero min accepted")
	}
	if _, err := SweepTTS(g, 0.9, time.Millisecond, time.Microsecond, 10, 0); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := SweepTTS(g, 0.9, time.Microsecond, time.Millisecond, 1, 0); err == nil {
		t.Fatal("single step accepted")
	}
	if _, err := SweepTTS(g, 1.5, time.Microsecond, time.Millisecond, 10, 0); err == nil {
		t.Fatal("bad accuracy accepted")
	}
	if _, err := SweepTTS(GapModel{}, 0.9, time.Microsecond, time.Millisecond, 10, 0); err == nil {
		t.Fatal("bad gap accepted")
	}
}

func TestOptimalAnnealTimeInsideLimits(t *testing.T) {
	lim := DW2Limits()
	best, tts, err := OptimalAnnealTime(DefaultGap(), 0.99, lim, 325*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if best < lim.MinDuration || best > lim.MaxDuration {
		t.Fatalf("optimum %v outside hardware range", best)
	}
	if tts <= 0 {
		t.Fatalf("TTS = %v", tts)
	}
	// It must beat both endpoints of the permitted range.
	for _, d := range []time.Duration{lim.MinDuration, lim.MaxDuration} {
		ps, _ := SuccessProbability(Linear(d), DefaultGap())
		if ps <= 0 || ps >= 1 {
			continue
		}
		end, _ := TTS(d, ps, 0.99, 325*time.Microsecond)
		if end < tts {
			t.Fatalf("endpoint %v TTS %v beats claimed optimum %v", d, end, tts)
		}
	}
}

func TestOptimalAnnealTimeHardGapPrefersLong(t *testing.T) {
	easy := GapModel{MinGap: 0.5, Position: 0.5}
	hard := GapModel{MinGap: 0.02, Position: 0.5}
	lim := DW2Limits()
	bestEasy, _, err := OptimalAnnealTime(easy, 0.99, lim, 325*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	bestHard, _, err := OptimalAnnealTime(hard, 0.99, lim, 325*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if bestHard <= bestEasy {
		t.Fatalf("harder instance should want longer anneals: %v <= %v", bestHard, bestEasy)
	}
}

// Property: ps is always within [0,1] for random valid gap models and
// durations, and TTS is positive whenever ps is interior.
func TestQuickSuccessInvariants(t *testing.T) {
	f := func(gapQ, posQ, durQ uint16) bool {
		gap := 1e-4 + float64(gapQ)/float64(math.MaxUint16)*0.9
		pos := 0.01 + float64(posQ)/float64(math.MaxUint16)*0.98
		dur := time.Duration(1+int64(durQ)) * time.Microsecond
		ps, err := SuccessProbability(Linear(dur), GapModel{MinGap: gap, Position: pos})
		if err != nil || ps < 0 || ps > 1 {
			return false
		}
		if ps > 0 && ps < 1 {
			tts, err := TTS(dur, ps, 0.9, 0)
			if err != nil || tts <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
