// Package schedule models the annealing schedule of a D-Wave-style QPU.
//
// The paper (§2.2) notes that "other programming choices include the
// schedule for annealing the system to the final Hamiltonian, e.g.,
// characterized by the temporal waveform and duration" and that "limitations
// on the hardware control system do not allow for arbitrary waveforms and
// duration but restrict these options to pre-defined ranges." This package
// provides that substrate: piecewise-linear anneal waveforms s(t), the
// hardware control limits they must satisfy, and physical models connecting
// the schedule to the single-run ground-state probability ps that drives the
// paper's Eq. 6 repetition count.
package schedule

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Point is one control point of an annealing waveform: the normalized anneal
// fraction S ∈ [0,1] reached at time T from the start of the anneal.
type Point struct {
	T time.Duration // time offset from anneal start
	S float64       // anneal fraction, 0 = fully transverse, 1 = final Ising
}

// Schedule is a piecewise-linear annealing waveform s(t). The zero value is
// invalid; construct schedules with Linear, WithPause, WithQuench or Custom
// and check Validate against the hardware's ControlLimits before use.
type Schedule struct {
	points []Point
}

// Linear returns the standard linear ramp 0→1 over duration d (the QPU
// default is 20 µs, the paper's QuOps constant).
func Linear(d time.Duration) Schedule {
	return Schedule{points: []Point{{0, 0}, {d, 1}}}
}

// WithPause returns a linear ramp of total duration d interrupted by a hold
// of length pause at anneal fraction at. Pauses near the minimum gap are the
// standard hardware technique for boosting ground-state probability.
func WithPause(d time.Duration, at float64, pause time.Duration) (Schedule, error) {
	if at <= 0 || at >= 1 {
		return Schedule{}, fmt.Errorf("schedule: pause position %v outside (0,1)", at)
	}
	if pause < 0 {
		return Schedule{}, fmt.Errorf("schedule: negative pause %v", pause)
	}
	ramp := time.Duration(float64(d) * at)
	return Schedule{points: []Point{
		{0, 0},
		{ramp, at},
		{ramp + pause, at},
		{d + pause, 1},
	}}, nil
}

// WithQuench returns a ramp that proceeds linearly to anneal fraction at
// over duration d×at, then completes the remaining (1-at) fraction in the
// much shorter quench duration. Quenching projects the instantaneous state,
// which hardware exposes for diabatic protocols.
func WithQuench(d time.Duration, at float64, quench time.Duration) (Schedule, error) {
	if at <= 0 || at >= 1 {
		return Schedule{}, fmt.Errorf("schedule: quench position %v outside (0,1)", at)
	}
	if quench <= 0 {
		return Schedule{}, fmt.Errorf("schedule: non-positive quench %v", quench)
	}
	ramp := time.Duration(float64(d) * at)
	return Schedule{points: []Point{
		{0, 0},
		{ramp, at},
		{ramp + quench, 1},
	}}, nil
}

// Custom builds a schedule from explicit control points. Points are sorted
// by time; the construction fails if two points share a time with different
// fractions, if any fraction is outside [0,1], if the fraction ever
// decreases (hardware forbids reverse anneals in this model), or if the
// waveform does not start at s=0 and end at s=1.
func Custom(points []Point) (Schedule, error) {
	if len(points) < 2 {
		return Schedule{}, errors.New("schedule: need at least 2 control points")
	}
	ps := make([]Point, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i].T < ps[j].T })
	for i, p := range ps {
		if p.S < 0 || p.S > 1 {
			return Schedule{}, fmt.Errorf("schedule: fraction %v outside [0,1]", p.S)
		}
		if p.T < 0 {
			return Schedule{}, fmt.Errorf("schedule: negative time %v", p.T)
		}
		if i > 0 {
			if p.T == ps[i-1].T && p.S != ps[i-1].S {
				return Schedule{}, fmt.Errorf("schedule: discontinuity at t=%v", p.T)
			}
			if p.S < ps[i-1].S {
				return Schedule{}, fmt.Errorf("schedule: fraction decreases at t=%v", p.T)
			}
		}
	}
	if ps[0].S != 0 || ps[0].T != 0 {
		return Schedule{}, errors.New("schedule: must start at (t=0, s=0)")
	}
	if ps[len(ps)-1].S != 1 {
		return Schedule{}, errors.New("schedule: must end at s=1")
	}
	return Schedule{points: ps}, nil
}

// Points returns a copy of the control points.
func (sc Schedule) Points() []Point {
	out := make([]Point, len(sc.points))
	copy(out, sc.points)
	return out
}

// Duration returns the total annealing time (time of the final point).
func (sc Schedule) Duration() time.Duration {
	if len(sc.points) == 0 {
		return 0
	}
	return sc.points[len(sc.points)-1].T
}

// At returns the anneal fraction at time t by linear interpolation. Times
// before the start clamp to 0 and after the end clamp to 1.
func (sc Schedule) At(t time.Duration) float64 {
	if len(sc.points) == 0 {
		return 0
	}
	if t <= sc.points[0].T {
		return sc.points[0].S
	}
	last := sc.points[len(sc.points)-1]
	if t >= last.T {
		return last.S
	}
	// Binary search for the segment containing t.
	i := sort.Search(len(sc.points), func(k int) bool { return sc.points[k].T >= t })
	a, b := sc.points[i-1], sc.points[i]
	frac := float64(t-a.T) / float64(b.T-a.T)
	return a.S + frac*(b.S-a.S)
}

// VelocityAt returns ds/dt in units of 1/second at anneal fraction s. When
// several segments contain s (a breakpoint, or a hold at exactly s) the
// slowest traversal wins: a hold at the queried fraction reports 0, which is
// what the adiabatic success model needs — the system lingers there no
// matter how fast the neighboring ramps are.
func (sc Schedule) VelocityAt(s float64) float64 {
	if len(sc.points) < 2 {
		return 0
	}
	if s < sc.points[0].S {
		s = sc.points[0].S
	}
	if last := sc.points[len(sc.points)-1].S; s > last {
		s = last
	}
	best := math.Inf(1)
	found := false
	for i := 1; i < len(sc.points); i++ {
		a, b := sc.points[i-1], sc.points[i]
		if s < a.S || s > b.S {
			continue
		}
		found = true
		dt := b.T.Seconds() - a.T.Seconds()
		var v float64
		if dt == 0 {
			v = math.Inf(1)
		} else {
			v = (b.S - a.S) / dt
		}
		if v < best {
			best = v
		}
	}
	if !found {
		return 0
	}
	return best
}

// MaxSlew returns the maximum of |ds/dt| over all segments, in 1/second.
func (sc Schedule) MaxSlew() float64 {
	max := 0.0
	for i := 1; i < len(sc.points); i++ {
		a, b := sc.points[i-1], sc.points[i]
		dt := b.T.Seconds() - a.T.Seconds()
		if dt == 0 {
			if b.S != a.S {
				return math.Inf(1)
			}
			continue
		}
		v := (b.S - a.S) / dt
		if v > max {
			max = v
		}
	}
	return max
}

// PauseTime returns the total time spent in zero-slope holds.
func (sc Schedule) PauseTime() time.Duration {
	var total time.Duration
	for i := 1; i < len(sc.points); i++ {
		a, b := sc.points[i-1], sc.points[i]
		if a.S == b.S {
			total += b.T - a.T
		}
	}
	return total
}

// ControlLimits describes the pre-defined ranges the electronic control
// system permits (paper §2.2). A zero field disables that check.
type ControlLimits struct {
	MinDuration time.Duration // shortest permitted total anneal
	MaxDuration time.Duration // longest permitted total anneal
	MaxPoints   int           // waveform memory depth
	MaxSlew     float64       // steepest permitted ds/dt (1/s)
}

// DW2Limits returns representative control limits for the DW2-generation
// control system: anneal duration 5 µs – 2000 µs, 12-point waveform memory,
// and a slew cap of one full sweep per microsecond.
func DW2Limits() ControlLimits {
	return ControlLimits{
		MinDuration: 5 * time.Microsecond,
		MaxDuration: 2000 * time.Microsecond,
		MaxPoints:   12,
		MaxSlew:     1e6,
	}
}

// Validate checks the schedule against hardware control limits.
func (sc Schedule) Validate(lim ControlLimits) error {
	if len(sc.points) < 2 {
		return errors.New("schedule: empty waveform")
	}
	d := sc.Duration()
	if lim.MinDuration > 0 && d < lim.MinDuration {
		return fmt.Errorf("schedule: duration %v below hardware minimum %v", d, lim.MinDuration)
	}
	if lim.MaxDuration > 0 && d > lim.MaxDuration {
		return fmt.Errorf("schedule: duration %v above hardware maximum %v", d, lim.MaxDuration)
	}
	if lim.MaxPoints > 0 && len(sc.points) > lim.MaxPoints {
		return fmt.Errorf("schedule: %d control points exceed waveform memory %d", len(sc.points), lim.MaxPoints)
	}
	if lim.MaxSlew > 0 {
		if slew := sc.MaxSlew(); slew > lim.MaxSlew {
			return fmt.Errorf("schedule: slew %.3g/s exceeds limit %.3g/s", slew, lim.MaxSlew)
		}
	}
	return nil
}

// String renders the waveform as a compact point list.
func (sc Schedule) String() string {
	s := "schedule["
	for i, p := range sc.points {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("(%v,%.3g)", p.T, p.S)
	}
	return s + "]"
}
