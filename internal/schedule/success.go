package schedule

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// GapModel summarizes the internal energy structure of an Ising instance as
// seen by the adiabatic theorem: the minimum instantaneous spectral gap and
// the anneal fraction at which it occurs. The paper (§3.2) notes that the
// single-run success probability ps "depends on the annealing time T and
// the shape of the annealing schedule as well as the internal energy
// structure of the Ising Hamiltonian"; GapModel is that internal structure
// reduced to the two quantities the Landau-Zener formula needs.
type GapModel struct {
	MinGap   float64 // minimum gap Δ in model energy units (>0)
	Position float64 // anneal fraction s* where the gap minimum occurs
}

// DefaultGap returns a generic spin-glass-like gap model: a small gap late
// in the anneal, the regime in which hardware pauses help.
func DefaultGap() GapModel { return GapModel{MinGap: 0.15, Position: 0.65} }

// Validate reports whether the gap model is physically meaningful.
func (g GapModel) Validate() error {
	if g.MinGap <= 0 {
		return fmt.Errorf("schedule: minimum gap %v must be positive", g.MinGap)
	}
	if g.Position <= 0 || g.Position >= 1 {
		return fmt.Errorf("schedule: gap position %v outside (0,1)", g.Position)
	}
	return nil
}

// LZScale converts the Landau-Zener exponent into the model's time units.
// The transition probability for traversing an avoided crossing of gap Δ at
// sweep velocity v is exp(-k·Δ²/v); k absorbs ħ and the diabatic coupling
// slope and is calibrated so a 20 µs linear anneal across the DefaultGap
// yields ps ≈ 0.7, the value the paper uses for its Fig. 9(b) sweep.
const LZScale = 2.6755e6

// SuccessProbability returns the single-run ground-state probability ps for
// annealing under sc with the given gap model: the Landau-Zener survival
// probability ps = 1 - exp(-k·Δ²/v), where v = ds/dt is the schedule
// velocity at the gap position. Slower traversal (smaller v) or a larger
// gap raises ps toward 1. A hold exactly at the gap position gives v=0 and
// ps→1; an instantaneous quench across it gives ps→0.
func SuccessProbability(sc Schedule, g GapModel) (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	if len(sc.points) < 2 {
		return 0, errors.New("schedule: empty waveform")
	}
	v := sc.VelocityAt(g.Position)
	if v <= 0 {
		return 1, nil // paused at the crossing: fully adiabatic
	}
	if math.IsInf(v, 1) {
		return 0, nil // instantaneous jump: fully diabatic
	}
	ps := 1 - math.Exp(-LZScale*g.MinGap*g.MinGap/v)
	return ps, nil
}

// TTS is the time-to-solution metric of Rønnow et al. ("Defining and
// detecting quantum speedup", cited as [20]): the expected QPU execution
// time to observe the ground state at least once with confidence pa, using
// the paper's Eq. 6 repetition count. PerRead covers the fixed per-read
// overheads (readout + thermalization); pass 0 to count anneal time only.
func TTS(annealTime time.Duration, ps, pa float64, perRead time.Duration) (time.Duration, error) {
	if ps <= 0 || ps >= 1 {
		return 0, fmt.Errorf("schedule: success probability %v outside (0,1)", ps)
	}
	if pa <= 0 || pa >= 1 {
		return 0, fmt.Errorf("schedule: target accuracy %v outside (0,1)", pa)
	}
	reads := int(math.Ceil(math.Log(1-pa) / math.Log(1-ps)))
	if reads < 1 {
		reads = 1
	}
	return time.Duration(reads) * (annealTime + perRead), nil
}

// TTSResult is one point of an anneal-time sweep.
type TTSResult struct {
	AnnealTime time.Duration // per-read anneal duration
	Ps         float64       // single-run success probability at that duration
	Reads      int           // Eq. 6 repetitions for the target accuracy
	Total      time.Duration // reads × (anneal + per-read overhead)
}

// SweepTTS evaluates linear schedules across anneal durations from min to
// max in the given number of logarithmically spaced steps and returns the
// TTS curve. The curve is the canonical U-shape: short anneals repeat too
// often, long anneals overpay per read.
func SweepTTS(g GapModel, pa float64, min, max time.Duration, steps int, perRead time.Duration) ([]TTSResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if steps < 2 || min <= 0 || max <= min {
		return nil, fmt.Errorf("schedule: bad sweep range [%v,%v]×%d", min, max, steps)
	}
	if pa <= 0 || pa >= 1 {
		return nil, fmt.Errorf("schedule: target accuracy %v outside (0,1)", pa)
	}
	out := make([]TTSResult, 0, steps)
	lmin, lmax := math.Log(float64(min)), math.Log(float64(max))
	for i := 0; i < steps; i++ {
		t := time.Duration(math.Exp(lmin + (lmax-lmin)*float64(i)/float64(steps-1)))
		ps, err := SuccessProbability(Linear(t), g)
		if err != nil {
			return nil, err
		}
		if ps <= 0 {
			ps = math.SmallestNonzeroFloat64
		}
		if ps >= 1 {
			ps = 1 - 1e-15
		}
		reads := int(math.Ceil(math.Log(1-pa) / math.Log(1-ps)))
		if reads < 1 {
			reads = 1
		}
		out = append(out, TTSResult{
			AnnealTime: t,
			Ps:         ps,
			Reads:      reads,
			Total:      time.Duration(reads) * (t + perRead),
		})
	}
	return out, nil
}

// OptimalAnnealTime returns the linear-anneal duration within the hardware
// limits that minimizes TTS for the given gap model and target accuracy,
// together with the minimal TTS value. It sweeps the permitted range and
// refines around the best coarse point.
func OptimalAnnealTime(g GapModel, pa float64, lim ControlLimits, perRead time.Duration) (time.Duration, time.Duration, error) {
	min, max := lim.MinDuration, lim.MaxDuration
	if min <= 0 {
		min = time.Microsecond
	}
	if max <= min {
		max = 10000 * min
	}
	curve, err := SweepTTS(g, pa, min, max, 64, perRead)
	if err != nil {
		return 0, 0, err
	}
	best := 0
	for i, r := range curve {
		if r.Total < curve[best].Total {
			best = i
		}
	}
	// Refine one decade around the coarse optimum.
	lo, hi := curve[max64(best-1, 0)].AnnealTime, curve[min64(best+1, len(curve)-1)].AnnealTime
	if hi > lo {
		fine, err := SweepTTS(g, pa, lo, hi, 64, perRead)
		if err == nil {
			for _, r := range fine {
				if r.Total < curve[best].Total {
					curve[best] = r
				}
			}
		}
	}
	return curve[best].AnnealTime, curve[best].Total, nil
}

func max64(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int) int {
	if a < b {
		return a
	}
	return b
}
