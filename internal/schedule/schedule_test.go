package schedule

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestLinearEndpoints(t *testing.T) {
	sc := Linear(20 * time.Microsecond)
	if got := sc.At(0); got != 0 {
		t.Fatalf("At(0) = %v, want 0", got)
	}
	if got := sc.At(20 * time.Microsecond); got != 1 {
		t.Fatalf("At(end) = %v, want 1", got)
	}
	if sc.Duration() != 20*time.Microsecond {
		t.Fatalf("Duration = %v", sc.Duration())
	}
}

func TestLinearMidpoint(t *testing.T) {
	sc := Linear(100 * time.Microsecond)
	if got := sc.At(50 * time.Microsecond); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("At(mid) = %v, want 0.5", got)
	}
	if got := sc.At(25 * time.Microsecond); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("At(quarter) = %v, want 0.25", got)
	}
}

func TestLinearClamping(t *testing.T) {
	sc := Linear(time.Microsecond)
	if got := sc.At(-time.Second); got != 0 {
		t.Fatalf("At before start = %v, want 0", got)
	}
	if got := sc.At(time.Second); got != 1 {
		t.Fatalf("At after end = %v, want 1", got)
	}
}

func TestWithPauseShape(t *testing.T) {
	sc, err := WithPause(20*time.Microsecond, 0.5, 100*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Duration() != 120*time.Microsecond {
		t.Fatalf("Duration = %v, want 120µs", sc.Duration())
	}
	// During the hold the fraction stays at 0.5.
	for _, at := range []time.Duration{10, 30, 60, 109} {
		got := sc.At(at * time.Microsecond)
		if math.Abs(got-0.5) > 1e-9 {
			t.Fatalf("At(%vµs) = %v during pause, want 0.5", at, got)
		}
	}
	if got := sc.PauseTime(); got != 100*time.Microsecond {
		t.Fatalf("PauseTime = %v", got)
	}
}

func TestWithPauseRejectsBadArgs(t *testing.T) {
	if _, err := WithPause(time.Microsecond, 0, time.Microsecond); err == nil {
		t.Fatal("pause at 0 accepted")
	}
	if _, err := WithPause(time.Microsecond, 1, time.Microsecond); err == nil {
		t.Fatal("pause at 1 accepted")
	}
	if _, err := WithPause(time.Microsecond, 0.5, -time.Microsecond); err == nil {
		t.Fatal("negative pause accepted")
	}
}

func TestWithQuenchShape(t *testing.T) {
	sc, err := WithQuench(100*time.Microsecond, 0.8, time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Duration() != 81*time.Microsecond {
		t.Fatalf("Duration = %v, want 81µs", sc.Duration())
	}
	// The quench segment is much steeper than the ramp.
	ramp := sc.VelocityAt(0.4)
	quench := sc.VelocityAt(0.9)
	if quench <= ramp {
		t.Fatalf("quench velocity %v not steeper than ramp %v", quench, ramp)
	}
}

func TestWithQuenchRejectsBadArgs(t *testing.T) {
	if _, err := WithQuench(time.Microsecond, 1.5, time.Nanosecond); err == nil {
		t.Fatal("quench position >1 accepted")
	}
	if _, err := WithQuench(time.Microsecond, 0.5, 0); err == nil {
		t.Fatal("zero quench accepted")
	}
}

func TestCustomValidation(t *testing.T) {
	cases := []struct {
		name string
		pts  []Point
	}{
		{"too few", []Point{{0, 0}}},
		{"fraction above 1", []Point{{0, 0}, {time.Microsecond, 1.5}}},
		{"negative fraction", []Point{{0, -0.1}, {time.Microsecond, 1}}},
		{"negative time", []Point{{-time.Microsecond, 0}, {time.Microsecond, 1}}},
		{"decreasing", []Point{{0, 0}, {time.Microsecond, 0.8}, {2 * time.Microsecond, 0.5}, {3 * time.Microsecond, 1}}},
		{"discontinuity", []Point{{0, 0}, {time.Microsecond, 0.3}, {time.Microsecond, 0.6}, {2 * time.Microsecond, 1}}},
		{"bad start", []Point{{0, 0.2}, {time.Microsecond, 1}}},
		{"bad end", []Point{{0, 0}, {time.Microsecond, 0.9}}},
	}
	for _, c := range cases {
		if _, err := Custom(c.pts); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestCustomSortsPoints(t *testing.T) {
	sc, err := Custom([]Point{
		{10 * time.Microsecond, 1},
		{0, 0},
		{5 * time.Microsecond, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := sc.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i].T < pts[i-1].T {
			t.Fatal("points not sorted")
		}
	}
}

func TestAtIsMonotone(t *testing.T) {
	sc, err := WithPause(40*time.Microsecond, 0.3, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for ns := int64(0); ns <= sc.Duration().Nanoseconds(); ns += 100 {
		got := sc.At(time.Duration(ns))
		if got < prev {
			t.Fatalf("At decreases at %dns: %v < %v", ns, got, prev)
		}
		prev = got
	}
}

func TestVelocityLinear(t *testing.T) {
	sc := Linear(20 * time.Microsecond)
	want := 1 / 20e-6
	for _, s := range []float64{0.1, 0.5, 0.9} {
		if got := sc.VelocityAt(s); math.Abs(got-want)/want > 1e-9 {
			t.Fatalf("VelocityAt(%v) = %v, want %v", s, got, want)
		}
	}
}

func TestVelocityInPause(t *testing.T) {
	sc, err := WithPause(20*time.Microsecond, 0.5, 10*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.VelocityAt(0.5); got != 0 {
		t.Fatalf("velocity in hold = %v, want 0", got)
	}
}

func TestMaxSlew(t *testing.T) {
	sc, err := WithQuench(100*time.Microsecond, 0.5, time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	// Quench covers 0.5 fraction in 1 µs → 5e5 /s.
	if got := sc.MaxSlew(); math.Abs(got-5e5)/5e5 > 1e-9 {
		t.Fatalf("MaxSlew = %v, want 5e5", got)
	}
}

func TestValidateLimits(t *testing.T) {
	lim := DW2Limits()
	if err := Linear(20 * time.Microsecond).Validate(lim); err != nil {
		t.Fatalf("default anneal rejected: %v", err)
	}
	if err := Linear(time.Microsecond).Validate(lim); err == nil {
		t.Fatal("too-short anneal accepted")
	}
	if err := Linear(time.Second).Validate(lim); err == nil {
		t.Fatal("too-long anneal accepted")
	}
	quench, _ := WithQuench(100*time.Microsecond, 0.9, 50*time.Nanosecond)
	if err := quench.Validate(lim); err == nil {
		t.Fatal("over-slew quench accepted")
	}
	var pts []Point
	n := lim.MaxPoints + 4
	for i := 0; i < n; i++ {
		pts = append(pts, Point{time.Duration(i+1) * 10 * time.Microsecond, float64(i+1) / float64(n)})
	}
	pts[0] = Point{0, 0}
	pts[n-1].S = 1
	many, err := Custom(pts)
	if err != nil {
		t.Fatal(err)
	}
	if err := many.Validate(lim); err == nil {
		t.Fatal("waveform exceeding point memory accepted")
	}
}

func TestValidateZeroLimitsDisable(t *testing.T) {
	if err := Linear(time.Hour).Validate(ControlLimits{}); err != nil {
		t.Fatalf("zero limits should disable checks: %v", err)
	}
}

func TestStringContainsPoints(t *testing.T) {
	s := Linear(20 * time.Microsecond).String()
	if s == "" || s == "schedule[]" {
		t.Fatalf("String = %q", s)
	}
}

// Property: for random valid schedules, At stays within [0,1] and is
// monotone over sampled times, and Duration equals the last point time.
func TestQuickScheduleInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		pts := make([]Point, n)
		tAcc := time.Duration(0)
		sAcc := 0.0
		pts[0] = Point{0, 0}
		for i := 1; i < n; i++ {
			tAcc += time.Duration(1+rng.Intn(10000)) * time.Nanosecond
			sAcc += rng.Float64() * (1 - sAcc) / float64(n)
			pts[i] = Point{tAcc, sAcc}
		}
		pts[n-1].S = 1
		sc, err := Custom(pts)
		if err != nil {
			return false
		}
		if sc.Duration() != tAcc {
			return false
		}
		prev := -1.0
		for k := 0; k <= 50; k++ {
			tt := time.Duration(float64(tAcc) * float64(k) / 50)
			v := sc.At(tt)
			if v < 0 || v > 1 || v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroValueScheduleBehavior(t *testing.T) {
	var sc Schedule
	if sc.Duration() != 0 {
		t.Fatalf("zero schedule Duration = %v", sc.Duration())
	}
	if got := sc.At(time.Microsecond); got != 0 {
		t.Fatalf("zero schedule At = %v", got)
	}
	if got := sc.VelocityAt(0.5); got != 0 {
		t.Fatalf("zero schedule VelocityAt = %v", got)
	}
	if got := sc.MaxSlew(); got != 0 {
		t.Fatalf("zero schedule MaxSlew = %v", got)
	}
	if err := sc.Validate(DW2Limits()); err == nil {
		t.Fatal("zero schedule validated")
	}
	if _, err := SuccessProbability(sc, DefaultGap()); err == nil {
		t.Fatal("zero schedule accepted by success model")
	}
}

func TestDuplicateControlPointAllowed(t *testing.T) {
	// A repeated point (same time, same fraction) is harmless and must not
	// produce an infinite slew.
	sc, err := Custom([]Point{
		{0, 0},
		{10 * time.Microsecond, 0.5},
		{10 * time.Microsecond, 0.5},
		{20 * time.Microsecond, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := sc.MaxSlew(); math.IsInf(s, 1) {
		t.Fatalf("duplicate point produced infinite slew")
	}
	if got := sc.At(10 * time.Microsecond); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("At(duplicate point) = %v", got)
	}
}
