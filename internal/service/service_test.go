package service

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/anneal"
	"github.com/splitexec/splitexec/internal/arch"
	"github.com/splitexec/splitexec/internal/core"
	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/machine"
	"github.com/splitexec/splitexec/internal/qubo"
)

// testBase returns a small, fast solver configuration: a C(4,4,4) QPU and a
// light annealer.
func testBase() core.Config {
	node := machine.SimpleNode()
	node.QPU.Topology = graph.Chimera{M: 4, N: 4, L: 4}
	return core.Config{
		Node:    node,
		Sampler: anneal.SamplerOptions{Sweeps: 32},
	}
}

// testProblems returns pairwise non-isomorphic QUBO instances, so shared-
// cache population order cannot leak into results (see Options.Cache).
func testProblems() []*qubo.QUBO {
	return []*qubo.QUBO{
		qubo.MaxCut(graph.Cycle(6), nil),
		qubo.MaxCut(graph.Path(7), nil),
		qubo.MaxCut(graph.Star(6), nil),
		qubo.MaxCut(graph.Grid(2, 4), nil),
		qubo.MaxCut(graph.Complete(4), nil),
		qubo.MaxCut(graph.Cycle(9), nil),
		qubo.MaxCut(graph.Grid(3, 3), nil),
		qubo.MaxCut(graph.Path(5), nil),
	}
}

// solveAll runs every problem through a fresh service and returns the
// solutions in submission order.
func solveAll(t *testing.T, workers, fleet int, cache *core.EmbeddingCache) []*core.Solution {
	t.Helper()
	svc, err := New(Options{
		Workers: workers,
		Fleet:   fleet,
		Base:    testBase(),
		Seed:    41,
		Cache:   cache,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	problems := testProblems()
	tickets := make([]*Ticket, len(problems))
	for i, q := range problems {
		if tickets[i], err = svc.SubmitQUBO(q); err != nil {
			t.Fatalf("SubmitQUBO %d: %v", i, err)
		}
	}
	sols := make([]*core.Solution, len(tickets))
	for i, tk := range tickets {
		sol, err := tk.Wait()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		sols[i] = sol
	}
	rep := svc.Drain()
	if rep.Jobs != len(problems) || rep.Failed != 0 {
		t.Fatalf("report: %d jobs, %d failed; want %d, 0", rep.Jobs, rep.Failed, len(problems))
	}
	return sols
}

// fingerprint reduces a solution to a comparable byte-exact summary.
func fingerprint(sol *core.Solution) string {
	s := fmt.Sprintf("spins=%v energy=%x reads=%d broken=%d samples=", sol.Spins, sol.Energy, sol.Reads, sol.BrokenChains)
	for _, smp := range sol.Samples.Samples {
		s += fmt.Sprintf("[%v %x]", smp.Spins, smp.Energy)
	}
	return s
}

// TestDeterministicAcrossWorkerCounts is the service's core guarantee:
// per-job seed streams come from the submission index, so the full readout
// ensemble of every job is byte-identical at any worker count and fleet
// size, no matter how workers interleave on the shared devices.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	ref := solveAll(t, 1, 1, core.NewEmbeddingCache())
	configs := []struct{ workers, fleet int }{
		{4, 1}, // shared-resource contention
		{4, 2}, // partial fleet
		{8, 8}, // dedicated
	}
	for _, cfg := range configs {
		got := solveAll(t, cfg.workers, cfg.fleet, core.NewEmbeddingCache())
		for i := range ref {
			if fingerprint(ref[i]) != fingerprint(got[i]) {
				t.Errorf("workers=%d fleet=%d: job %d diverged from serial run:\n  ref %s\n  got %s",
					cfg.workers, cfg.fleet, i, fingerprint(ref[i]), fingerprint(got[i]))
			}
		}
	}
}

// TestSharedCacheHit: a repeated input graph embeds once; the second solve
// hits the shared off-line cache.
func TestSharedCacheHit(t *testing.T) {
	cache := core.NewEmbeddingCache()
	svc, err := New(Options{Workers: 2, Fleet: 1, Base: testBase(), Cache: cache})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Drain()
	q := qubo.MaxCut(graph.Cycle(8), nil)

	tk, err := svc.SubmitQUBO(q)
	if err != nil {
		t.Fatalf("SubmitQUBO: %v", err)
	}
	if sol, err := tk.Wait(); err != nil {
		t.Fatalf("first solve: %v", err)
	} else if sol.Timing.CacheHit {
		t.Fatalf("first solve hit an empty cache")
	}

	tk, err = svc.SubmitQUBO(q)
	if err != nil {
		t.Fatalf("SubmitQUBO: %v", err)
	}
	sol, err := tk.Wait()
	if err != nil {
		t.Fatalf("second solve: %v", err)
	}
	if !sol.Timing.CacheHit {
		t.Errorf("second solve of the same graph missed the shared cache")
	}
	if hits, _ := cache.Stats(); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
}

// TestBackpressure: with one worker and a depth-1 queue, TrySubmit must
// refuse once the queue is full, and blocking Submit must still deliver.
func TestBackpressure(t *testing.T) {
	svc, err := New(Options{Workers: 1, QueueDepth: 1, Fleet: 1, Base: testBase()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	profile := arch.JobProfile{QPUService: 60 * time.Millisecond}
	// Occupy the worker, then fill the queue.
	if _, err := svc.SubmitProfile(profile); err != nil {
		t.Fatalf("SubmitProfile: %v", err)
	}
	var accepted, refused int
	q := qubo.MaxCut(graph.Cycle(4), nil)
	deadline := time.Now().Add(2 * time.Second)
	for refused == 0 && time.Now().Before(deadline) {
		if _, err := svc.TrySubmitQUBO(q); err == nil {
			accepted++
		} else if errors.Is(err, ErrQueueFull) {
			refused++
		} else {
			t.Fatalf("TrySubmitQUBO: %v", err)
		}
	}
	if refused == 0 {
		t.Fatalf("TrySubmit never refused on a depth-1 queue (accepted %d)", accepted)
	}
	if accepted > 2 {
		t.Errorf("depth-1 queue accepted %d jobs before refusing", accepted)
	}
	// Blocking Submit applies backpressure but still gets through.
	tk, err := svc.SubmitQUBO(q)
	if err != nil {
		t.Fatalf("blocking SubmitQUBO: %v", err)
	}
	if _, err := tk.Wait(); err != nil {
		t.Fatalf("backpressured job failed: %v", err)
	}
	// Refused TrySubmits must not consume submission indices — the
	// per-job seed streams would otherwise depend on queue timing.
	if got, want := tk.Metrics().Index, accepted+1; got != want {
		t.Errorf("blocking submit got index %d, want %d (refusals must not burn indices)", got, want)
	}
	rep := svc.Drain()
	if want := accepted + 2; rep.Jobs != want {
		t.Errorf("report jobs = %d, want %d", rep.Jobs, want)
	}
	// After Drain the intake is closed.
	if _, err := svc.SubmitQUBO(q); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Drain: %v, want ErrClosed", err)
	}
	if _, err := svc.SubmitProfile(profile); !errors.Is(err, ErrClosed) {
		t.Errorf("SubmitProfile after Drain: %v, want ErrClosed", err)
	}
}

// TestMetrics sanity-checks the measurement ledger of a contended run.
func TestMetrics(t *testing.T) {
	svc, err := New(Options{Workers: 4, Fleet: 1, Base: testBase()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p := arch.JobProfile{
		PreProcess:  2 * time.Millisecond,
		Network:     200 * time.Microsecond,
		QPUService:  5 * time.Millisecond,
		PostProcess: time.Millisecond,
	}
	const jobs = 8
	tickets := make([]*Ticket, jobs)
	for i := range tickets {
		if tickets[i], err = svc.SubmitProfile(p); err != nil {
			t.Fatalf("SubmitProfile: %v", err)
		}
	}
	for i, tk := range tickets {
		if _, err := tk.Wait(); err != nil {
			t.Fatalf("profile job: %v", err)
		}
		m := tk.Metrics()
		if m.Index != i {
			t.Errorf("job %d: metrics index %d", i, m.Index)
		}
		if m.QPUHeld < p.QPUService {
			t.Errorf("job %d: QPUHeld %v < service time %v", m.Index, m.QPUHeld, p.QPUService)
		}
		if m.Total < m.QueueWait+m.Stage1+m.Stage2+m.Stage3 {
			t.Errorf("job %d: Total %v less than the sum of its parts", m.Index, m.Total)
		}
	}
	rep := svc.Drain()
	if rep.Jobs != jobs {
		t.Fatalf("report jobs = %d, want %d", rep.Jobs, jobs)
	}
	if rep.Throughput <= 0 {
		t.Errorf("throughput = %v, want > 0", rep.Throughput)
	}
	if len(rep.DeviceBusy) != 1 || rep.DeviceBusy[0] < jobs*p.QPUService {
		t.Errorf("device busy ledger %v, want >= %v", rep.DeviceBusy, jobs*p.QPUService)
	}
	if rep.QPUBusyFraction <= 0 || rep.QPUBusyFraction > 1.2 {
		t.Errorf("QPU busy fraction = %v, want in (0, ~1]", rep.QPUBusyFraction)
	}
	// 4 hosts contending for 1 device with QPU-heavy jobs must queue.
	if rep.QPUWaitMean == 0 {
		t.Errorf("no device contention measured on a 4-host/1-QPU run")
	}
}

// TestSubmitValidation covers the structural error paths.
func TestSubmitValidation(t *testing.T) {
	svc, err := New(Options{Workers: 1, Fleet: 1, Base: testBase()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Drain()
	if _, err := svc.SubmitQUBO(nil); err == nil {
		t.Error("SubmitQUBO(nil) succeeded")
	}
	if _, err := svc.SubmitIsing(nil); err == nil {
		t.Error("SubmitIsing(nil) succeeded")
	}
	if _, err := svc.SubmitProfile(arch.JobProfile{PreProcess: -1}); err == nil {
		t.Error("SubmitProfile with negative phase succeeded")
	}
}

// TestSubmitIsing runs the Ising entry point end to end.
func TestSubmitIsing(t *testing.T) {
	svc, err := New(Options{Workers: 2, Fleet: 2, Base: testBase()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m := qubo.NewIsing(4)
	m.H[0] = 1
	m.SetCoupling(0, 1, -1)
	m.SetCoupling(1, 2, -1)
	m.SetCoupling(2, 3, 0.5)
	tk, err := svc.SubmitIsing(m)
	if err != nil {
		t.Fatalf("SubmitIsing: %v", err)
	}
	sol, err := tk.Wait()
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if len(sol.Spins) != 4 {
		t.Fatalf("spins = %v, want length 4", sol.Spins)
	}
	if got := m.Energy(sol.Spins); got != sol.Energy {
		t.Errorf("reported energy %v != recomputed %v", sol.Energy, got)
	}
	svc.Drain()
}
