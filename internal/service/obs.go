package service

import (
	"strconv"

	"github.com/splitexec/splitexec/internal/obs"
)

// svcMetrics holds the service's telemetry handles, resolved once at New so
// the hot path never touches the registry map. With telemetry disabled every
// handle is nil and each operation costs one nil-check branch — the ≤2 ns
// Submit-path budget internal/benchio pins.
type svcMetrics struct {
	submitted *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	retries   *obs.Counter
	queueWait *obs.Histogram
	qpuWait   *obs.Histogram
	sojourn   *obs.Histogram
}

// initObs resolves the metric handles and registers the scrape-time sampled
// series against the configured scope. Levels the service already maintains —
// queue backlog, per-device busy ledgers — are exposed as func metrics read
// at scrape time, so the drain report and /metrics share one source of truth
// and the hot path pays nothing for them.
func (s *Service) initObs() {
	reg := s.opts.Obs.Registry()
	s.om = svcMetrics{
		submitted: reg.Counter("splitexec_jobs_submitted_total"),
		completed: reg.Counter("splitexec_jobs_completed_total"),
		failed:    reg.Counter("splitexec_jobs_failed_total"),
		retries:   reg.Counter("splitexec_job_retries_total"),
		queueWait: reg.Histogram("splitexec_queue_wait_seconds", nil),
		qpuWait:   reg.Histogram("splitexec_qpu_wait_seconds", nil),
		sojourn:   reg.Histogram("splitexec_sojourn_seconds", nil),
	}
	if reg == nil {
		return
	}
	reg.GaugeFunc("splitexec_queue_depth", func() float64 { return float64(s.queue.len()) })
	for _, fd := range s.fleet {
		fd := fd
		reg.CounterFunc(obs.Label("splitexec_device_busy_seconds_total", "device", strconv.Itoa(fd.id)),
			func() float64 { return fd.busyTime().Seconds() })
	}
}
