package service

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/anneal"
	"github.com/splitexec/splitexec/internal/arch"
	"github.com/splitexec/splitexec/internal/core"
	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/qubo"
	"github.com/splitexec/splitexec/internal/sched"
)

// brokenDevice fails every Program call — the cheapest way to make every
// solve job fail without waiting on embedding searches.
type brokenDevice struct{}

func (brokenDevice) Program(*qubo.Ising) error { return errors.New("device bricked") }
func (brokenDevice) Execute(int, *rand.Rand) (*anneal.SampleSet, error) {
	return nil, errors.New("device bricked")
}
func (brokenDevice) QPUTime() (time.Duration, time.Duration) { return 0, 0 }

// TestDrainIdempotent: a second (and concurrent) Drain must not panic,
// double-close anything, or change the report.
func TestDrainIdempotent(t *testing.T) {
	svc, err := New(Options{Workers: 2, Fleet: 1, Base: testBase()})
	if err != nil {
		t.Fatal(err)
	}
	p := arch.JobProfile{PreProcess: time.Millisecond, QPUService: 500 * time.Microsecond}
	for i := 0; i < 6; i++ {
		if _, err := svc.SubmitProfile(p); err != nil {
			t.Fatal(err)
		}
	}
	var reps [3]Report
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ { // two concurrent Drains
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reps[i] = svc.Drain()
		}(i)
	}
	wg.Wait()
	reps[2] = svc.Drain() // and a third, after shutdown completed
	for i, r := range reps {
		if r.Jobs != 6 || r.Failed != 0 {
			t.Errorf("drain %d: %d jobs, %d failed; want 6, 0", i, r.Jobs, r.Failed)
		}
		if r.Makespan != reps[0].Makespan {
			t.Errorf("drain %d makespan %v != first drain %v", i, r.Makespan, reps[0].Makespan)
		}
	}
	if _, err := svc.SubmitProfile(p); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after double drain: %v, want ErrClosed", err)
	}
}

// TestAllFailedReport pins the report shape when every submitted job fails:
// Jobs must be zero (it counts completions), Failed the full count, the
// makespan still the real wall time the failures took, and no field NaN or
// divided by zero.
func TestAllFailedReport(t *testing.T) {
	svc, err := New(Options{
		Workers: 2,
		Devices: []core.QPUDevice{brokenDevice{}},
		Base:    testBase(),
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	tickets := make([]*Ticket, n)
	for i := range tickets {
		if tickets[i], err = svc.SubmitQUBO(qubo.MaxCut(graph.Cycle(4), nil)); err != nil {
			t.Fatal(err)
		}
	}
	for _, tk := range tickets {
		if _, err := tk.Wait(); err == nil {
			t.Fatal("solve on a bricked device succeeded")
		}
	}
	rep := svc.Drain()
	if rep.Jobs != 0 {
		t.Errorf("Jobs = %d, want 0 (failures are not completions)", rep.Jobs)
	}
	if rep.Failed != n {
		t.Errorf("Failed = %d, want %d", rep.Failed, n)
	}
	if rep.Makespan <= 0 {
		t.Errorf("Makespan = %v, want > 0 — the failed jobs took real time", rep.Makespan)
	}
	if rep.Throughput != 0 {
		t.Errorf("Throughput = %v, want 0 with no completions", rep.Throughput)
	}
	if rep.QPUBusyFraction != rep.QPUBusyFraction || rep.QPUBusyFraction < 0 { // NaN check
		t.Errorf("QPUBusyFraction = %v", rep.QPUBusyFraction)
	}
	if rep.Sojourn.N != 0 || rep.Stage1Mean != 0 {
		t.Errorf("failure run leaked completion statistics: %+v", rep)
	}
	if len(rep.DeviceBusy) != 1 {
		t.Errorf("device ledger missing: %v", rep.DeviceBusy)
	}
}

// TestMixedFailureStageMeans: stage means must divide by the completed-job
// count, not the submission count — failures carry no stage ledger and
// would dilute every mean.
func TestMixedFailureStageMeans(t *testing.T) {
	// A bricked fleet fails every *solve* instantly at Program, while
	// profile jobs — which only hold the device token, never program it —
	// still succeed, giving a fast deterministic success/failure mix.
	svc, err := New(Options{Workers: 1, Devices: []core.QPUDevice{brokenDevice{}}, Base: testBase()})
	if err != nil {
		t.Fatal(err)
	}
	p := arch.JobProfile{
		PreProcess: 2 * time.Millisecond,
		QPUService: time.Millisecond,
	}
	const good = 3
	for i := 0; i < good; i++ {
		if _, err := svc.SubmitProfile(p); err != nil {
			t.Fatal(err)
		}
	}
	tk, err := svc.SubmitQUBO(qubo.MaxCut(graph.Cycle(4), nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); err == nil {
		t.Fatal("solve on a bricked device succeeded")
	}
	rep := svc.Drain()
	if rep.Jobs != good || rep.Failed != 1 {
		t.Fatalf("report: %d jobs, %d failed; want %d, 1", rep.Jobs, rep.Failed, good)
	}
	// Dividing by submissions (good+1) instead of completions (good) would
	// undershoot the known 2ms stage-1 cost by 25%.
	if rep.Stage1Mean < p.PreProcess {
		t.Errorf("Stage1Mean = %v, want >= %v (means must divide by completions)", rep.Stage1Mean, p.PreProcess)
	}
}

// TestTrySubmitDrainRace closes the PR 3 seed-stream guarantee over the
// drain path: TrySubmit hammering a draining service must only ever see
// ErrQueueFull or ErrClosed, every accepted ticket must complete, and the
// accepted submission indices must stay contiguous — a refused or
// drain-raced submit can never burn an index or enqueue after close. Run
// under -race in CI.
func TestTrySubmitDrainRace(t *testing.T) {
	svc, err := New(Options{Workers: 2, QueueDepth: 4, Fleet: 1, Base: testBase()})
	if err != nil {
		t.Fatal(err)
	}
	p := arch.JobProfile{PreProcess: 200 * time.Microsecond, QPUService: 100 * time.Microsecond}

	var (
		mu       sync.Mutex
		accepted []*Ticket
		wg       sync.WaitGroup
	)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				tk, err := svc.TrySubmitProfile(p)
				switch {
				case err == nil:
					mu.Lock()
					accepted = append(accepted, tk)
					mu.Unlock()
				case errors.Is(err, ErrClosed):
					// Intake closed under us: closed stays closed, so one
					// more call must agree.
					if _, err := svc.TrySubmitProfile(p); !errors.Is(err, ErrClosed) {
						t.Errorf("TrySubmit after ErrClosed: %v, want ErrClosed", err)
					}
					return
				case errors.Is(err, ErrQueueFull):
					// Legitimate under load; keep hammering.
				default:
					t.Errorf("TrySubmit: unexpected error %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	rep := svc.Drain()
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(accepted) == 0 {
		t.Fatal("no submissions accepted before drain")
	}
	// Every accepted ticket completed (Drain finishes the backlog).
	indices := make([]int, 0, len(accepted))
	for _, tk := range accepted {
		if _, err := tk.Wait(); err != nil {
			t.Errorf("accepted job failed: %v", err)
		}
		indices = append(indices, tk.Metrics().Index)
	}
	sort.Ints(indices)
	for i, idx := range indices {
		if idx != i {
			t.Fatalf("submission indices not contiguous: %v", indices)
		}
	}
	if rep.Jobs != len(accepted) || rep.Failed != 0 {
		t.Errorf("report %d jobs %d failed, want %d accepted jobs", rep.Jobs, rep.Failed, len(accepted))
	}
}

// TestBlockedSubmitDrainRace extends TestTrySubmitDrainRace to the blocking
// submit path: producers parked in push(block=true) on a full queue race
// Drain closing intake. Every producer must resolve — either ErrClosed or an
// accepted ticket that completes — and the accepted indices must stay
// contiguous: a producer woken by close can never burn a seed index, and one
// woken by space can never enqueue after close. Run under -race in CI.
func TestBlockedSubmitDrainRace(t *testing.T) {
	svc, err := New(Options{Workers: 2, QueueDepth: 2, Fleet: 1, Base: testBase()})
	if err != nil {
		t.Fatal(err)
	}
	p := arch.JobProfile{PreProcess: 300 * time.Microsecond, QPUService: 100 * time.Microsecond}

	const producers = 16
	var (
		mu       sync.Mutex
		accepted []*Ticket
		wg       sync.WaitGroup
	)
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				tk, err := svc.SubmitProfile(p) // blocks on a full queue
				switch {
				case err == nil:
					mu.Lock()
					accepted = append(accepted, tk)
					mu.Unlock()
				case errors.Is(err, ErrClosed):
					// close() woke us (or intake was already closed):
					// closed stays closed.
					if _, err := svc.SubmitProfile(p); !errors.Is(err, ErrClosed) {
						t.Errorf("Submit after ErrClosed: %v, want ErrClosed", err)
					}
					return
				default:
					t.Errorf("Submit: unexpected error %v", err)
					return
				}
			}
		}()
	}
	// With depth 2 and 16 producers most goroutines are parked in
	// notFull.Wait when Drain closes intake under them.
	time.Sleep(20 * time.Millisecond)
	rep := svc.Drain()
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(accepted) == 0 {
		t.Fatal("no submissions accepted before drain")
	}
	indices := make([]int, 0, len(accepted))
	for _, tk := range accepted {
		if _, err := tk.Wait(); err != nil {
			t.Errorf("accepted job failed: %v", err)
		}
		indices = append(indices, tk.Metrics().Index)
	}
	sort.Ints(indices)
	for i, idx := range indices {
		if idx != i {
			t.Fatalf("submission indices not contiguous: %v", indices)
		}
	}
	if rep.Jobs != len(accepted) || rep.Failed != 0 {
		t.Errorf("report %d jobs %d failed, want %d accepted jobs", rep.Jobs, rep.Failed, len(accepted))
	}
	if rep.Submitted != len(accepted) {
		t.Errorf("ledger: Submitted = %d, want %d", rep.Submitted, len(accepted))
	}
}

// TestPriorityPolicyLive: on a single-worker service under the priority
// policy, a high-priority job submitted after a low-priority one overtakes
// it in the backlog.
func TestPriorityPolicyLive(t *testing.T) {
	svc, err := New(Options{Workers: 1, QueueDepth: 8, Policy: sched.Priority, Base: testBase()})
	if err != nil {
		t.Fatal(err)
	}
	blocker := arch.JobProfile{PreProcess: 40 * time.Millisecond}
	quick := arch.JobProfile{PreProcess: 5 * time.Millisecond}
	if _, err := svc.SubmitProfile(blocker); err != nil { // occupies the worker
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // let the worker pick the blocker up
	lo, err := svc.SubmitProfileClass(quick, JobClass{Class: 0, Priority: 0, Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := svc.SubmitProfileClass(quick, JobClass{Class: 1, Priority: 9, Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	svc.Drain()
	loM, hiM := lo.Metrics(), hi.Metrics()
	if hiM.Class != 1 || loM.Class != 0 {
		t.Errorf("class metadata lost: hi=%d lo=%d", hiM.Class, loM.Class)
	}
	// The high-priority job is picked first, so the low one also waits out
	// hi's service time.
	if loM.QueueWait < hiM.QueueWait+quick.PreProcess/2 {
		t.Errorf("priority policy did not reorder: hi wait %v, lo wait %v", hiM.QueueWait, loM.QueueWait)
	}
}

// TestQueueWaitIncludesBackpressure: a Submit blocked on a full queue is
// queueing — its QueueWait must be clocked from the Submit call, not from
// the instant space freed up, or the report underestimates exactly the
// contention it exists to measure.
func TestQueueWaitIncludesBackpressure(t *testing.T) {
	svc, err := New(Options{Workers: 1, QueueDepth: 1, Fleet: 1, Base: testBase()})
	if err != nil {
		t.Fatal(err)
	}
	blocker := arch.JobProfile{PreProcess: 40 * time.Millisecond}
	filler := arch.JobProfile{PreProcess: 10 * time.Millisecond}
	if _, err := svc.SubmitProfile(blocker); err != nil { // occupies the worker
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)                     // ensure the worker holds the blocker
	if _, err := svc.SubmitProfile(filler); err != nil { // fills the queue
		t.Fatal(err)
	}
	tk, err := svc.SubmitProfile(filler) // blocks until the filler is picked up
	if err != nil {
		t.Fatal(err)
	}
	svc.Drain()
	// The third submit blocked ~35ms for the blocker plus ~10ms for the
	// first filler's service before pickup.
	if w := tk.Metrics().QueueWait; w < 25*time.Millisecond {
		t.Errorf("QueueWait = %v, want >= ~35ms including the backpressure block", w)
	}
}

// TestNewRejectsUnknownPolicy pins construction-time validation.
func TestNewRejectsUnknownPolicy(t *testing.T) {
	if _, err := New(Options{Policy: "lifo", Base: testBase()}); err == nil {
		t.Error("unknown policy accepted")
	}
}
