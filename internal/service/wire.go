package service

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"github.com/splitexec/splitexec/internal/arch"
	"github.com/splitexec/splitexec/internal/qpuserver"
	"github.com/splitexec/splitexec/internal/qubo"
	"github.com/splitexec/splitexec/internal/sched"
)

// The solver service speaks the same length-prefixed JSON framing as the
// QPU server (qpuserver.WriteMessage/ReadMessage), one level up the stack:
// where qpud serves annealing reads over a hardware Ising program, this
// front-end serves complete split-execution solves over a QUBO. A
// connection carries any number of request/response pairs; requests from
// concurrent connections interleave through the service's FIFO queue, and
// queue backpressure propagates to the submitting connection.

// MaxWireDim bounds the problem dimension a serve front-end accepts. A
// decoded QUBO allocates O(dim²) coefficients from an O(1)-byte request, so
// this cap — together with the connection cap (Options.MaxConns) — bounds
// the memory a hostile client population can commit. 1024 logical
// variables is already far beyond what any modeled QPU topology embeds.
const MaxWireDim = 1024

// MaxWireProfileTotal bounds the per-job phase budget a remote profile job
// may request. A profile job occupies a host worker for its whole duration,
// so without a cap one hostile request could park a worker for days.
const MaxWireProfileTotal = 10 * time.Minute

// WireTerm is one QUBO coefficient on the wire (I <= J; I == J is a linear
// term).
type WireTerm struct {
	I, J int
	Val  float64
}

// SolveRequest is the client→service message: a QUBO instance, or — when
// Profile is set — a synthetic profile job (the load generator's unit of
// work: the service replays the phase costs through the real dispatch
// machinery without solving anything), or — when Ping is set — a health
// probe answered immediately without touching the job queue.
type SolveRequest struct {
	Dim   int        `json:"dim,omitempty"`
	Terms []WireTerm `json:"terms,omitempty"`

	Profile *WireProfile `json:"profile,omitempty"`

	// Ping requests an immediate OK without enqueuing work — the router
	// tier's health-check probe. A saturated queue still answers pings,
	// so health reflects liveness, not backlog.
	Ping bool `json:"ping,omitempty"`

	// Admin carries a router control verb (add/remove/drain/status) instead
	// of work. Only the router tier answers these; a plain service refuses
	// the frame, so a misdirected control plane fails loudly instead of
	// mutating nothing.
	Admin *WireAdmin `json:"admin,omitempty"`

	// Scheduling attributes for profile jobs (JobClass on the wire): the
	// workload-class index, the sched.Priority rank and the sched.FairShare
	// weight. Ignored unless Profile is set.
	Class    int     `json:"class,omitempty"`
	Priority int     `json:"priority,omitempty"`
	Weight   float64 `json:"weight,omitempty"`
}

// WireProfile is an arch.JobProfile on the wire, nanoseconds per phase.
type WireProfile struct {
	PreProcessNS  int64 `json:"preNs"`
	NetworkNS     int64 `json:"netNs,omitempty"`
	QPUServiceNS  int64 `json:"qpuNs"`
	PostProcessNS int64 `json:"postNs,omitempty"`
}

// EncodeProfile builds the wire form of a profile job.
func EncodeProfile(p arch.JobProfile) SolveRequest {
	return SolveRequest{Profile: &WireProfile{
		PreProcessNS:  int64(p.PreProcess),
		NetworkNS:     int64(p.Network),
		QPUServiceNS:  int64(p.QPUService),
		PostProcessNS: int64(p.PostProcess),
	}}
}

// DecodeProfile validates and reconstructs a wire-form profile.
func DecodeProfile(w *WireProfile) (arch.JobProfile, error) {
	p := arch.JobProfile{
		PreProcess:  time.Duration(w.PreProcessNS),
		Network:     time.Duration(w.NetworkNS),
		QPUService:  time.Duration(w.QPUServiceNS),
		PostProcess: time.Duration(w.PostProcessNS),
	}
	// Bound every phase individually before summing: a near-MaxInt64 phase
	// would overflow Total() to a negative value and slip past the cap,
	// parking a host worker for centuries on one request.
	for _, d := range []time.Duration{p.PreProcess, p.Network, p.QPUService, p.PostProcess} {
		if d < 0 {
			return p, fmt.Errorf("service: negative phase time in wire profile %+v", *w)
		}
		if d > MaxWireProfileTotal {
			return p, fmt.Errorf("service: wire profile phase %v exceeds limit %v", d, MaxWireProfileTotal)
		}
	}
	if p.Total() > MaxWireProfileTotal {
		return p, fmt.Errorf("service: wire profile total %v exceeds limit %v", p.Total(), MaxWireProfileTotal)
	}
	return p, nil
}

// SolveResponse is the service→client message.
type SolveResponse struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`

	Index        int     `json:"index,omitempty"`
	Energy       float64 `json:"energy,omitempty"`
	Binary       []byte  `json:"binary,omitempty"` // 0/1 assignment
	Reads        int     `json:"reads,omitempty"`
	BrokenChains int     `json:"brokenChains,omitempty"`

	// Measured per-job service metrics, microseconds. TotalUS is the
	// server-side sojourn (Submit to completion), the open-system metric
	// the workload engine cross-validates.
	QueueWaitUS int64 `json:"queueWaitUs,omitempty"`
	QPUWaitUS   int64 `json:"qpuWaitUs,omitempty"`
	Stage1US    int64 `json:"stage1Us,omitempty"`
	Stage2US    int64 `json:"stage2Us,omitempty"`
	Stage3US    int64 `json:"stage3Us,omitempty"`
	TotalUS     int64 `json:"totalUs,omitempty"`

	// Retries counts device-death lease revocations the job survived —
	// how much of the fault regime this request absorbed server-side.
	Retries int `json:"retries,omitempty"`

	// Routing is stamped by the router tier on forwarded responses: which
	// shard served the job and how it got there. A direct (un-routed)
	// service response leaves it nil, so consumers can tell the tiers
	// apart. A pointer, not a value: shard 0 is a legitimate answer, and
	// omitempty on a struct value would erase it.
	Routing *WireRouting `json:"routing,omitempty"`

	// Admin is the router's reply to a control verb (request.Admin set).
	Admin *WireAdminReply `json:"admin,omitempty"`
}

// WireRouting is the router tier's per-job routing metadata: the shard that
// served the job, its consistent-hash home, whether the steal rule diverted
// it, and how many budget-consuming re-dispatches it survived. It rides the
// wire response so load generators and drain reports can reconcile against
// the router's /jobz spans and aggregate Stats.
type WireRouting struct {
	Shard        int  `json:"shard"`
	Home         int  `json:"home"`
	Stolen       bool `json:"stolen,omitempty"`
	Redispatches int  `json:"redispatches,omitempty"`
	// Epoch is the router's membership epoch at the job's final routing
	// decision: jobs dispatched under epoch N complete under N's routing
	// even while a later epoch's rebalance is in flight.
	Epoch int64 `json:"epoch,omitempty"`
}

// Admin verbs a router answers over the wire (WireAdmin.Verb).
const (
	AdminAdd    = "add"    // add a shard backend (Addr) to the ring
	AdminRemove = "remove" // hard-remove shard Shard: in-flight work re-dispatches
	AdminDrain  = "drain"  // gracefully drain shard Shard: in-flight work completes
	AdminStatus = "status" // report membership, epoch, per-shard ledgers
)

// WireAdmin is a router control verb on the wire: elastic membership
// (add/remove/drain) and status, driven remotely by `splitexec admin`.
type WireAdmin struct {
	Verb string `json:"verb"`
	// Addr is the backend address an "add" brings into the ring.
	Addr string `json:"addr,omitempty"`
	// Shard is the target index of "remove" and "drain".
	Shard int `json:"shard,omitempty"`
}

// WireShardStatus is one shard's row in a status reply.
type WireShardStatus struct {
	Index int    `json:"index"`
	Addr  string `json:"addr"`
	// Up is fault state (health probes, FailShard); InRing is membership
	// (joins and drains). A shard takes traffic only when both hold.
	Up      bool `json:"up"`
	InRing  bool `json:"inRing"`
	Removed bool `json:"removed,omitempty"`
	// Dispatched and Backlog are the shard's dispatch ledger and current
	// queue depth.
	Dispatched int64 `json:"dispatched"`
	Backlog    int   `json:"backlog"`
}

// WireAdminReply is the router's answer to a control verb.
type WireAdminReply struct {
	// Epoch is the membership epoch after the verb applied.
	Epoch int64 `json:"epoch"`
	// Index is the shard the verb acted on (the assigned index for "add").
	Index int `json:"index,omitempty"`
	// Warmed counts hot keys replayed into the new shard's embedding cache
	// before an "add" flipped ownership.
	Warmed int `json:"warmed,omitempty"`
	// Shards is the per-shard membership table ("status" only).
	Shards []WireShardStatus `json:"shards,omitempty"`
}

// EncodeQUBO builds the wire form of a QUBO.
func EncodeQUBO(q *qubo.QUBO) SolveRequest {
	req := SolveRequest{Dim: q.Dim()}
	for i := 0; i < q.Dim(); i++ {
		for j := i; j < q.Dim(); j++ {
			if c := q.Get(i, j); c != 0 {
				req.Terms = append(req.Terms, WireTerm{I: i, J: j, Val: c})
			}
		}
	}
	return req
}

// DecodeQUBO validates and reconstructs a wire-form QUBO.
func DecodeQUBO(req SolveRequest) (*qubo.QUBO, error) {
	if req.Dim < 1 {
		return nil, fmt.Errorf("service: dim %d < 1", req.Dim)
	}
	if req.Dim > MaxWireDim {
		return nil, fmt.Errorf("service: dim %d exceeds limit %d", req.Dim, MaxWireDim)
	}
	q := qubo.NewQUBO(req.Dim)
	for _, t := range req.Terms {
		if t.I < 0 || t.I >= req.Dim || t.J < 0 || t.J >= req.Dim {
			return nil, fmt.Errorf("service: term (%d,%d) out of range for dim %d", t.I, t.J, req.Dim)
		}
		q.Add(t.I, t.J, t.Val)
	}
	return q, nil
}

// Listen binds addr and serves solve requests until CloseListener (or
// Drain). It returns once the listener is bound; serving continues in the
// background.
func (s *Service) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.ln != nil {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("service: already listening")
	}
	s.ln = ln
	s.mu.Unlock()
	s.connWG.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

// CloseListener stops the TCP front-end: it closes the listener and every
// accepted connection (clients see EOF; a response in flight completes or
// fails with a write error), then waits for the connection handlers to
// finish. Jobs already queued keep running — call Drain to finish them.
func (s *Service) CloseListener() error {
	s.mu.Lock()
	ln := s.ln
	s.ln = nil
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.connWG.Wait()
	return err
}

func (s *Service) acceptLoop(ln net.Listener) {
	defer s.connWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.ln != ln {
			// CloseListener won the race after Accept returned: its
			// connection snapshot cannot contain this one, so close it
			// here or connWG.Wait would hang on its handler.
			s.mu.Unlock()
			conn.Close()
			continue
		}
		if len(s.conns) >= s.opts.MaxConns {
			s.mu.Unlock()
			conn.Close() // over the connection cap: shed load
			continue
		}
		if s.conns == nil {
			s.conns = make(map[net.Conn]struct{})
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.serveConn(conn)
		}()
	}
}

// serveConn answers one connection's requests in order. Submit blocks under
// backpressure, so a saturated service slows its clients instead of
// buffering unboundedly.
func (s *Service) serveConn(conn net.Conn) {
	for {
		var req SolveRequest
		if err := qpuserver.ReadMessage(conn, &req); err != nil {
			return // EOF or framing error: drop the connection
		}
		resp := s.handleSolve(req)
		if err := qpuserver.WriteMessage(conn, &resp); err != nil {
			return
		}
	}
}

func (s *Service) handleSolve(req SolveRequest) SolveResponse {
	if req.Admin != nil {
		return SolveResponse{Error: "service: admin verbs are answered by the router tier, not a shard"}
	}
	if req.Ping {
		return SolveResponse{OK: true}
	}
	if req.Profile != nil {
		return s.handleProfile(req)
	}
	q, err := DecodeQUBO(req)
	if err != nil {
		return SolveResponse{Error: err.Error()}
	}
	t, err := s.SubmitQUBO(q)
	if err != nil {
		return SolveResponse{Error: err.Error()}
	}
	sol, err := t.Wait()
	if err != nil {
		return SolveResponse{Error: err.Error()}
	}
	m := t.Metrics()
	resp := SolveResponse{
		OK:           true,
		Index:        m.Index,
		Energy:       sol.Energy,
		Binary:       make([]byte, len(sol.Binary)),
		Reads:        sol.Reads,
		BrokenChains: sol.BrokenChains,
		QueueWaitUS:  m.QueueWait.Microseconds(),
		QPUWaitUS:    m.QPUWait.Microseconds(),
		Stage1US:     m.Stage1.Microseconds(),
		Stage2US:     m.Stage2.Microseconds(),
		Stage3US:     m.Stage3.Microseconds(),
		TotalUS:      m.Total.Microseconds(),
	}
	for i, b := range sol.Binary {
		resp.Binary[i] = byte(b)
	}
	return resp
}

func (s *Service) handleProfile(req SolveRequest) SolveResponse {
	p, err := DecodeProfile(req.Profile)
	if err != nil {
		return SolveResponse{Error: err.Error()}
	}
	if req.Class < 0 || req.Weight < 0 || math.IsNaN(req.Weight) || math.IsInf(req.Weight, 0) ||
		req.Priority > sched.MaxPriority || req.Priority < -sched.MaxPriority {
		return SolveResponse{Error: fmt.Sprintf("service: bad wire job class (class=%d priority=%d weight=%v)",
			req.Class, req.Priority, req.Weight)}
	}
	t, err := s.SubmitProfileClass(p, JobClass{Class: req.Class, Priority: req.Priority, Weight: req.Weight})
	if err != nil {
		return SolveResponse{Error: err.Error()}
	}
	if _, err := t.Wait(); err != nil {
		return SolveResponse{Error: err.Error()}
	}
	m := t.Metrics()
	return SolveResponse{
		OK:          true,
		Index:       m.Index,
		QueueWaitUS: m.QueueWait.Microseconds(),
		QPUWaitUS:   m.QPUWait.Microseconds(),
		Stage1US:    m.Stage1.Microseconds(),
		Stage2US:    m.Stage2.Microseconds(),
		Stage3US:    m.Stage3.Microseconds(),
		TotalUS:     m.Total.Microseconds(),
		Retries:     m.Retries,
	}
}

// ErrClientClosed is returned by round trips on (or interrupted by) a
// closed Client.
var ErrClientClosed = errors.New("service: client closed")

// Client is the remote handle to a serving solver service.
//
// Lifecycle and the round-trip path are deliberately decoupled: opMu
// serializes round trips while mu guards only the connection state, so
// Close from another goroutine closes the connection out from under an
// in-flight solve and unblocks it immediately — even with no timeout set
// against a hung or partitioned server.
//
// The length-prefixed stream is stateful: a deadline firing mid-frame (or
// any other I/O error) can leave a partially written request or partially
// read response on the wire, after which the next frame would decode
// garbage. A Client therefore never reuses a connection that saw an I/O
// error — the connection is torn down on the spot and the next round trip
// transparently redials. Server-reported errors (a refused QUBO, an
// oversized profile) arrive in complete frames and keep the connection.
type Client struct {
	addr string

	// opMu serializes round trips. It is never held by Close, and the
	// network I/O under it never holds mu.
	opMu sync.Mutex

	mu      sync.Mutex // guards conn, timeout, closed
	conn    net.Conn
	timeout time.Duration
	closed  bool
}

// Dial connects to a solver service front-end.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 0)
}

// DialTimeout connects to a solver service front-end, bounding the dial and
// every subsequent Solve round trip by timeout (0 disables both bounds) —
// an unreachable or partitioned service then errors instead of blocking for
// the OS connect timeout.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("service: dial %s: %w", addr, err)
	}
	return &Client{addr: addr, conn: conn, timeout: timeout}, nil
}

// SetTimeout bounds each Solve round trip (0 disables). Solves queue behind
// other clients' jobs on a saturated service, so the bound should cover the
// expected queue wait, not just the solve.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// Solve submits a QUBO and blocks until the service returns the solution.
func (c *Client) Solve(q *qubo.QUBO) (SolveResponse, error) {
	return c.roundTrip(EncodeQUBO(q))
}

// Profile submits a synthetic profile job — the load generator's unit of
// work — and blocks until the service has replayed its phase costs,
// returning the measured per-job metrics.
func (c *Client) Profile(p arch.JobProfile) (SolveResponse, error) {
	return c.roundTrip(EncodeProfile(p))
}

// ProfileClass is Profile with explicit scheduling attributes, so a remote
// load generator can realize priority/SJF/fair-share scenarios against a
// `splitexec serve -policy` deployment.
func (c *Client) ProfileClass(p arch.JobProfile, class JobClass) (SolveResponse, error) {
	req := EncodeProfile(p)
	req.Class = class.Class
	req.Priority = class.Priority
	req.Weight = class.Weight
	return c.roundTrip(req)
}

// Ping round-trips a health probe: an immediate OK from a live server,
// skipping the job queue entirely.
func (c *Client) Ping() error {
	_, err := c.roundTrip(SolveRequest{Ping: true})
	return err
}

// Admin round-trips a router control verb. The reply is non-nil exactly
// when the verb applied; a plain service (or an older router) refuses the
// frame with a server error.
func (c *Client) Admin(a WireAdmin) (*WireAdminReply, error) {
	resp, err := c.roundTrip(SolveRequest{Admin: &a})
	if err != nil {
		return nil, err
	}
	if resp.Admin == nil {
		return nil, errors.New("service: admin reply missing from response")
	}
	return resp.Admin, nil
}

// Do round-trips an arbitrary request — the router tier forwards client
// frames through this without re-encoding them. A response with OK false
// is returned alongside the server error, exactly like the typed methods.
func (c *Client) Do(req SolveRequest) (SolveResponse, error) {
	return c.roundTrip(req)
}

func (c *Client) roundTrip(req SolveRequest) (SolveResponse, error) {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	conn, timeout, err := c.ensureConn()
	if err != nil {
		return SolveResponse{}, err
	}
	if timeout > 0 {
		if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			return SolveResponse{}, c.ioError(conn, err)
		}
	}
	if err := qpuserver.WriteMessage(conn, req); err != nil {
		return SolveResponse{}, c.ioError(conn, err)
	}
	var resp SolveResponse
	if err := qpuserver.ReadMessage(conn, &resp); err != nil {
		return SolveResponse{}, c.ioError(conn, err)
	}
	if timeout > 0 {
		if err := conn.SetDeadline(time.Time{}); err != nil {
			// The frame completed, but the connection state is suspect;
			// retire it rather than risk a desynced reuse.
			c.ioError(conn, err)
		}
	}
	if !resp.OK {
		return resp, fmt.Errorf("service: server error: %s", resp.Error)
	}
	return resp, nil
}

// ensureConn returns the live connection, redialing if the previous one was
// retired by an I/O error. The dial happens outside mu so a concurrent
// Close is never blocked behind an unresponsive network.
func (c *Client) ensureConn() (net.Conn, time.Duration, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, 0, ErrClientClosed
	}
	if c.conn != nil {
		conn, timeout := c.conn, c.timeout
		c.mu.Unlock()
		return conn, timeout, nil
	}
	timeout := c.timeout
	c.mu.Unlock()

	conn, err := net.DialTimeout("tcp", c.addr, timeout)
	if err != nil {
		return nil, 0, fmt.Errorf("service: redial %s: %w", c.addr, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		conn.Close()
		return nil, 0, ErrClientClosed
	}
	c.conn = conn
	return conn, c.timeout, nil
}

// ioError retires a connection after an I/O failure: the stream may hold a
// partial frame, so it must never carry another request. When the failure
// was induced by a concurrent Close, the close is the real story.
func (c *Client) ioError(conn net.Conn, err error) error {
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
	}
	closed := c.closed
	c.mu.Unlock()
	conn.Close()
	if closed {
		return ErrClientClosed
	}
	return err
}

// Close releases the connection. A round trip blocked on the network is
// interrupted immediately (it fails with ErrClientClosed) — Close never
// waits behind in-flight I/O.
func (c *Client) Close() error {
	c.mu.Lock()
	conn := c.conn
	c.conn = nil
	c.closed = true
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}
