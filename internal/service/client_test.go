package service

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/arch"
	"github.com/splitexec/splitexec/internal/qpuserver"
)

// TestClientCloseInterruptsHungServer is the regression test for the
// lifecycle-mutex bug: with no timeout and a server that accepts but never
// answers, a round trip blocks forever on the read — and Close used to
// queue up behind it on the same mutex. Close must interrupt the blocked
// I/O and return immediately, and the interrupted call must surface
// ErrClientClosed, not a raw network error.
func TestClientCloseInterruptsHungServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	hung := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		hung <- conn // hold the conn open, never read or write
	}()

	c, err := Dial(ln.Addr().String()) // timeout stays 0: the call can only return if Close interrupts it
	if err != nil {
		t.Fatal(err)
	}
	callErr := make(chan error, 1)
	go func() { callErr <- c.Ping() }()

	time.Sleep(50 * time.Millisecond) // let the ping get stuck in the read
	closed := make(chan error, 1)
	go func() { closed <- c.Close() }()

	select {
	case err := <-closed:
		if err != nil {
			t.Errorf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close wedged behind the in-flight round trip")
	}
	select {
	case err := <-callErr:
		if !errors.Is(err, ErrClientClosed) {
			t.Errorf("interrupted round trip: err = %v, want ErrClientClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("round trip still blocked after Close")
	}
	if conn := <-hung; conn != nil {
		conn.Close()
	}
	// Close is idempotent and sticky.
	if err := c.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := c.Ping(); !errors.Is(err, ErrClientClosed) {
		t.Errorf("Ping after Close: %v, want ErrClientClosed", err)
	}
}

// TestClientRedialAfterMidFrameStall is the stream-desync regression: a
// deadline firing mid-frame used to leave the connection carrying a partial
// length-prefixed message, and the next round trip decoded garbage off it.
// The fixed client retires the connection on any I/O error and redials, so
// the call after a timeout gets a clean stream and a correct answer.
func TestClientRedialAfterMidFrameStall(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Connection 1: read the request, then stall mid-frame — write a
		// header promising 64 payload bytes but deliver only 5. The
		// client's deadline fires with the partial frame on the stream.
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		var req SolveRequest
		if err := qpuserver.ReadMessage(conn, &req); err != nil {
			conn.Close()
			return
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], 64)
		conn.Write(hdr[:])
		conn.Write([]byte(`{"ok"`))
		defer conn.Close()

		// Connection 2: a well-behaved server. If the client wrongly
		// reused connection 1, this accept never happens and the test
		// fails on the second call's error instead of hanging.
		conn2, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn2.Close()
		if err := qpuserver.ReadMessage(conn2, &req); err != nil {
			return
		}
		qpuserver.WriteMessage(conn2, SolveResponse{OK: true, Reads: 42})
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(200 * time.Millisecond)

	p := arch.JobProfile{PreProcess: time.Millisecond}
	if _, err := c.Profile(p); err == nil {
		t.Fatal("mid-frame stall did not surface an error")
	} else if errors.Is(err, ErrClientClosed) {
		t.Fatalf("stall surfaced as ErrClientClosed: %v", err)
	}

	c.SetTimeout(5 * time.Second)
	resp, err := c.Profile(p)
	if err != nil {
		t.Fatalf("round trip after mid-frame stall: %v (desynced stream reused?)", err)
	}
	if !resp.OK || resp.Reads != 42 {
		t.Errorf("post-stall response decoded wrong: %+v", resp)
	}
	wg.Wait()
}

// TestClientServerErrorKeepsConnection: an application-level refusal
// (resp.OK == false) is a healthy protocol exchange — the client must keep
// the connection rather than burn a redial per refused request.
func TestClientServerErrorKeepsConnection(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepts := make(chan struct{}, 4)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepts <- struct{}{}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					var req SolveRequest
					if err := qpuserver.ReadMessage(conn, &req); err != nil {
						return
					}
					if req.Ping {
						qpuserver.WriteMessage(conn, SolveResponse{OK: true})
						continue
					}
					qpuserver.WriteMessage(conn, SolveResponse{OK: false, Error: "refused"})
				}
			}(conn)
		}
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(5 * time.Second)
	for i := 0; i < 3; i++ {
		if _, err := c.Profile(arch.JobProfile{PreProcess: time.Millisecond}); err == nil {
			t.Fatal("refused request reported success")
		}
		if err := c.Ping(); err != nil {
			t.Fatalf("ping %d after refusal: %v", i, err)
		}
	}
	if got := len(accepts); got != 1 {
		t.Errorf("server saw %d connections, want 1 — refusals must not burn the conn", got)
	}
}
