package service

import (
	"sync"

	"github.com/splitexec/splitexec/internal/sched"
)

// jobQueue is the bounded, policy-ordered intake queue between the submit
// APIs and the host workers. It replaces the original FIFO channel with a
// sched.Queue behind one mutex, so the live dispatcher realizes the same
// queue disciplines as the discrete-event simulator.
//
// Invariants the submission API depends on:
//   - a ticket is pushed if and only if the queue is open and below depth —
//     submission indices are allocated inside the push critical section, so
//     a refused or closed submit can never burn a seed index;
//   - close is idempotent and wakes every blocked producer (they fail with
//     ErrClosed) and consumer (they drain the remaining backlog, then exit).
type jobQueue struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	q        sched.Queue[*Ticket]
	depth    int
	closed   bool
}

func newJobQueue(policy sched.Policy, depth int) *jobQueue {
	tq := &jobQueue{q: sched.New[*Ticket](policy), depth: depth}
	tq.notEmpty.L = &tq.mu
	tq.notFull.L = &tq.mu
	return tq
}

// push enqueues t under the queue's policy, assigning its submission index
// via newTicket inside the critical section. When block is set it waits for
// space; otherwise a full queue returns ErrQueueFull. A closed queue always
// returns ErrClosed — including for producers that were blocked on space
// when Drain closed intake.
func (tq *jobQueue) push(newTicket func() *Ticket, class sched.Job, block bool) (*Ticket, error) {
	tq.mu.Lock()
	defer tq.mu.Unlock()
	if tq.closed {
		return nil, ErrClosed
	}
	if tq.q.Len() >= tq.depth {
		if !block {
			return nil, ErrQueueFull
		}
		for tq.q.Len() >= tq.depth && !tq.closed {
			tq.notFull.Wait()
		}
		if tq.closed {
			return nil, ErrClosed
		}
	}
	t := newTicket()
	tq.q.Push(t, class)
	tq.notEmpty.Signal()
	return t, nil
}

// pop blocks until the policy yields a ticket or the queue is closed and
// drained, in which case it reports ok = false and the worker exits.
func (tq *jobQueue) pop() (*Ticket, bool) {
	tq.mu.Lock()
	defer tq.mu.Unlock()
	for tq.q.Len() == 0 && !tq.closed {
		tq.notEmpty.Wait()
	}
	t, ok := tq.q.Pop()
	if ok {
		tq.notFull.Signal()
	}
	return t, ok
}

// len reports the current backlog — the scrape-time queue-depth gauge reads
// it, so telemetry never shadows the queue with its own counter.
func (tq *jobQueue) len() int {
	tq.mu.Lock()
	defer tq.mu.Unlock()
	return tq.q.Len()
}

// close closes intake; it is safe to call any number of times.
func (tq *jobQueue) close() {
	tq.mu.Lock()
	tq.closed = true
	tq.notEmpty.Broadcast()
	tq.notFull.Broadcast()
	tq.mu.Unlock()
}
