package service

import (
	"fmt"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/arch"
)

// The measured-vs-modeled regression: the dispatch service replays
// arch.JobProfile phase costs in real time, so its measured makespan must
// track arch.Simulate's discrete-event prediction for the same system. The
// tolerance band is generous enough for scheduler jitter but tight enough
// to catch dispatch bugs — a QPU mutex that fails to serialize undershoots
// the lower bound, lost host parallelism overshoots the upper.
const (
	bandLo = 0.90
	bandHi = 1.60
)

// measure runs jobs copies of p through a fresh service and returns the
// drain report.
func measure(t *testing.T, workers, fleet, jobs int, p arch.JobProfile) Report {
	t.Helper()
	svc, err := New(Options{Workers: workers, Fleet: fleet, QueueDepth: jobs, Base: testBase()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < jobs; i++ {
		if _, err := svc.SubmitProfile(p); err != nil {
			t.Fatalf("SubmitProfile: %v", err)
		}
	}
	rep := svc.Drain()
	if rep.Jobs != jobs || rep.Failed != 0 {
		t.Fatalf("report: %d jobs, %d failed; want %d, 0", rep.Jobs, rep.Failed, jobs)
	}
	return rep
}

func predict(t *testing.T, sys arch.System, p arch.JobProfile, jobs int) time.Duration {
	t.Helper()
	ms, err := arch.Simulate(sys, p, jobs)
	if err != nil {
		t.Fatalf("arch.Simulate: %v", err)
	}
	return ms
}

func checkBand(t *testing.T, label string, measured, predicted time.Duration) {
	t.Helper()
	ratio := float64(measured) / float64(predicted)
	t.Logf("%s: measured %v, predicted %v (ratio %.3f)", label, measured, predicted, ratio)
	if ratio < bandLo || ratio > bandHi {
		t.Errorf("%s: measured %v outside [%.2f, %.2f]×predicted %v (ratio %.3f)",
			label, measured, bandLo, bandHi, predicted, ratio)
	}
}

// TestMeasuredVsModelShared validates the shared-resource architecture at
// Hosts ∈ {1, 4} on a pre-processing-dominated profile (the paper's
// bottleneck regime): host parallelism should deliver near-linear speedup
// because the contended QPU is mostly idle.
func TestMeasuredVsModelShared(t *testing.T) {
	p := arch.JobProfile{
		PreProcess:  10 * time.Millisecond,
		Network:     500 * time.Microsecond,
		QPUService:  3 * time.Millisecond,
		PostProcess: 2 * time.Millisecond,
	}
	const jobs = 12
	for _, hosts := range []int{1, 4} {
		sys := arch.System{Kind: arch.SharedResource, Hosts: hosts}
		rep := measure(t, hosts, 1, jobs, p)
		checkBand(t, fmt.Sprintf("%v H=%d (CPU-bound)", sys.Kind, sys.Hosts), rep.Makespan, predict(t, sys, p, jobs))
	}
}

// TestDedicatedBeatsSharedWhenQPUBound is Fig. 1's comparison for the
// opposite regime: when QPU service dominates, the single shared device
// serializes the batch and the dedicated fleet wins — both in the model and
// in the measured service.
func TestDedicatedBeatsSharedWhenQPUBound(t *testing.T) {
	p := arch.JobProfile{
		PreProcess:  time.Millisecond,
		Network:     200 * time.Microsecond,
		QPUService:  8 * time.Millisecond,
		PostProcess: time.Millisecond,
	}
	const (
		jobs  = 12
		hosts = 4
	)
	shared := measure(t, hosts, 1, jobs, p)
	dedicated := measure(t, hosts, hosts, jobs, p)

	sharedSys := arch.System{Kind: arch.SharedResource, Hosts: hosts}
	dedicatedSys := arch.System{Kind: arch.DedicatedPerNode, Hosts: hosts}
	checkBand(t, fmt.Sprintf("%v (QPU-bound)", sharedSys.Kind), shared.Makespan, predict(t, sharedSys, p, jobs))
	checkBand(t, fmt.Sprintf("%v (QPU-bound)", dedicatedSys.Kind), dedicated.Makespan, predict(t, dedicatedSys, p, jobs))

	if float64(dedicated.Makespan) > 0.75*float64(shared.Makespan) {
		t.Errorf("dedicated fleet (%v) did not beat the shared QPU (%v) on a QPU-bound profile",
			dedicated.Makespan, shared.Makespan)
	}
	// The shared device should be near-saturated, and its contention must
	// show up as device wait.
	if shared.QPUBusyFraction < 0.6 {
		t.Errorf("shared QPU busy fraction %.2f, want >= 0.6 on a QPU-bound profile", shared.QPUBusyFraction)
	}
	if shared.QPUWaitMean == 0 {
		t.Errorf("QPU-bound shared run measured no device wait")
	}
	// A dedicated fleet has a device per host: no contention.
	if dedicated.QPUWaitMean > time.Millisecond {
		t.Errorf("dedicated run measured %v mean device wait, want ~0", dedicated.QPUWaitMean)
	}
}
