package service

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/arch"
)

// Chaos suite: fault injection against the live service. Every test pins the
// ledger conservation invariant — Jobs + Failed == Submitted — because it is
// exactly the property fault paths break first (a job double-counted by a
// retry racing Drain, or dropped by a revocation landing in neither ledger).
// Run under -race in CI.

// waitLeased polls the fleet until some device holds a lease and returns its
// id, or fails the test after a generous deadline.
func waitLeased(t *testing.T, svc *Service) int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, fd := range svc.fleet {
			fd.mu.Lock()
			held := fd.lease != nil
			fd.mu.Unlock()
			if held {
				return fd.id
			}
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatal("no device was leased within the deadline")
	return -1
}

func checkConservation(t *testing.T, rep Report) {
	t.Helper()
	if rep.Jobs+rep.Failed != rep.Submitted {
		t.Errorf("ledger leak: jobs %d + failed %d != submitted %d",
			rep.Jobs, rep.Failed, rep.Submitted)
	}
}

// TestChaosKillLeasedDevice kills the device a profile job is holding
// mid-service: the job's lease is revoked, it re-acquires the surviving
// device after the backoff and completes, and the retry is visible in both
// the per-job metrics and the aggregate report.
func TestChaosKillLeasedDevice(t *testing.T) {
	svc, err := New(Options{Workers: 1, Fleet: 2, Base: testBase(), RetryBackoff: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := svc.SubmitProfile(arch.JobProfile{QPUService: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	id := waitLeased(t, svc)
	if !svc.FailDevice(id) {
		t.Fatalf("FailDevice(%d) reported device already down", id)
	}
	if _, err := tk.Wait(); err != nil {
		t.Fatalf("job did not survive a mid-lease device death: %v", err)
	}
	if got := tk.Metrics().Retries; got < 1 {
		t.Errorf("job metrics recorded %d retries, want >= 1", got)
	}
	rep := svc.Drain()
	checkConservation(t, rep)
	if rep.Jobs != 1 || rep.Failed != 0 {
		t.Errorf("report: %d jobs, %d failed; want 1, 0", rep.Jobs, rep.Failed)
	}
	if rep.Retries < 1 {
		t.Errorf("report recorded %d retries, want >= 1", rep.Retries)
	}
}

// TestChaosRetriesExhausted: with retries disabled (MaxRetries < 0) a
// revoked lease fails the job immediately with ErrLeaseRevoked, and the
// failure ledger matches the single injected fault exactly.
func TestChaosRetriesExhausted(t *testing.T) {
	svc, err := New(Options{Workers: 1, Fleet: 1, Base: testBase(), MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := svc.SubmitProfile(arch.JobProfile{QPUService: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	id := waitLeased(t, svc)
	svc.FailDevice(id)
	if _, err := tk.Wait(); !errors.Is(err, ErrLeaseRevoked) {
		t.Fatalf("job error = %v, want ErrLeaseRevoked", err)
	}
	rep := svc.Drain()
	checkConservation(t, rep)
	if rep.Jobs != 0 || rep.Failed != 1 {
		t.Errorf("report: %d jobs, %d failed; want 0, 1", rep.Jobs, rep.Failed)
	}
	if rep.Retries != 0 {
		t.Errorf("report recorded %d retries with retries disabled", rep.Retries)
	}
}

// TestChaosDeadIdleDeviceParked: killing a device sitting in the idle pool
// must not hand out a dead lease — acquire parks it and serves the job from
// the surviving device; RestoreDevice re-idles it.
func TestChaosDeadIdleDeviceParked(t *testing.T) {
	svc, err := New(Options{Workers: 1, Fleet: 2, Base: testBase()})
	if err != nil {
		t.Fatal(err)
	}
	if !svc.FailDevice(0) {
		t.Fatal("FailDevice(0) on an idle device failed")
	}
	// Both jobs must run on device 1; neither may abort.
	for i := 0; i < 2; i++ {
		tk, err := svc.SubmitProfile(arch.JobProfile{QPUService: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Wait(); err != nil {
			t.Fatalf("job %d failed on a fleet with one dead idle device: %v", i, err)
		}
		if tk.Metrics().Retries != 0 {
			t.Errorf("job %d retried; a parked device must never be leased", i)
		}
	}
	if !svc.RestoreDevice(0) {
		t.Error("RestoreDevice(0) reported the device was not down")
	}
	rep := svc.Drain()
	checkConservation(t, rep)
	if rep.Jobs != 2 || rep.Failed != 0 {
		t.Errorf("report: %d jobs, %d failed; want 2, 0", rep.Jobs, rep.Failed)
	}
}

// TestChaosDropConnMidRequest opens a raw TCP connection to the serve
// front-end, writes a length prefix promising a frame it never finishes, and
// drops the connection — the wire image of a client dying mid-request. The
// server must shed the connection without consuming a submission index or
// wedging, and keep serving well-formed clients.
func TestChaosDropConnMidRequest(t *testing.T) {
	svc, err := New(Options{Workers: 1, Fleet: 1, Base: testBase()})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		conn, err := net.DialTimeout("tcp", addr.String(), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		var prefix [4]byte
		binary.BigEndian.PutUint32(prefix[:], 64) // promise 64 bytes
		if _, err := conn.Write(prefix[:]); err != nil {
			t.Fatal(err)
		}
		conn.Write([]byte(`{"di`)) // half a frame, then vanish
		conn.Close()
	}

	// A well-formed client on a fresh connection is still served.
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(30 * time.Second)
	resp, err := c.Profile(arch.JobProfile{PreProcess: time.Millisecond, QPUService: 500 * time.Microsecond})
	if err != nil || !resp.OK {
		t.Fatalf("profile after dropped connections: resp=%+v err=%v", resp, err)
	}

	rep := svc.Drain()
	checkConservation(t, rep)
	if rep.Submitted != 1 {
		t.Errorf("submitted = %d, want 1 — a dropped half-request must not burn an index", rep.Submitted)
	}
}

// TestChaosDrainDuringBurst drains the service while submitters are still
// hammering it and an outage controller is cycling the whole fleet: every
// accepted ticket must land in exactly one ledger, the report must conserve
// indices, and the failure count must equal the tickets that returned errors
// — no double-counts from retries racing Drain, no deadlock on a fleet that
// is momentarily all-dead.
func TestChaosDrainDuringBurst(t *testing.T) {
	svc, err := New(Options{
		Workers: 2, QueueDepth: 8, Fleet: 2, Base: testBase(),
		MaxRetries: 2, RetryBackoff: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Short repeated outages on both devices, overlapping so the fleet is
	// sometimes entirely down — graceful degradation is queueing, not error.
	plan := make([]Outage, 20)
	for i := range plan {
		plan[i] = Outage{At: time.Duration(i) * 4 * time.Millisecond, For: 2 * time.Millisecond}
	}
	svc.StartOutages([][]Outage{plan, plan})

	p := arch.JobProfile{PreProcess: 300 * time.Microsecond, QPUService: 1500 * time.Microsecond}
	var (
		mu       sync.Mutex
		accepted []*Ticket
		wg       sync.WaitGroup
	)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				tk, err := svc.TrySubmitProfile(p)
				switch {
				case err == nil:
					mu.Lock()
					accepted = append(accepted, tk)
					mu.Unlock()
				case errors.Is(err, ErrClosed):
					return
				case errors.Is(err, ErrQueueFull):
					time.Sleep(100 * time.Microsecond)
				default:
					t.Errorf("TrySubmit: unexpected error %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(25 * time.Millisecond)
	rep := svc.Drain() // mid-burst, mid-outage
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(accepted) == 0 {
		t.Fatal("no submissions accepted before drain")
	}
	failures := 0
	for _, tk := range accepted {
		if _, err := tk.Wait(); err != nil {
			if !errors.Is(err, ErrLeaseRevoked) {
				t.Errorf("job failed with %v, want ErrLeaseRevoked", err)
			}
			failures++
		}
	}
	checkConservation(t, rep)
	if rep.Submitted != len(accepted) {
		t.Errorf("submitted = %d, want %d accepted tickets", rep.Submitted, len(accepted))
	}
	if rep.Failed != failures {
		t.Errorf("failure ledger %d != %d tickets that returned errors", rep.Failed, failures)
	}
	// Drain ended the fault regime: the whole fleet must be back up.
	for _, fd := range svc.fleet {
		fd.mu.Lock()
		down := fd.down
		fd.mu.Unlock()
		if down {
			t.Errorf("device %d still down after Drain", fd.id)
		}
	}
}

// TestChaosOutageControllerStop: stopping an outage controller mid-outage
// revives every device it killed, and stop is idempotent.
func TestChaosOutageControllerStop(t *testing.T) {
	svc, err := New(Options{Workers: 1, Fleet: 2, Base: testBase()})
	if err != nil {
		t.Fatal(err)
	}
	stop := svc.StartOutages([][]Outage{
		{{At: 0, For: time.Hour}}, // device 0 dies immediately, "forever"
	})
	deadline := time.Now().Add(5 * time.Second)
	for {
		svc.fleet[0].mu.Lock()
		down := svc.fleet[0].down
		svc.fleet[0].mu.Unlock()
		if down {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("outage controller never killed device 0")
		}
		time.Sleep(200 * time.Microsecond)
	}
	stop()
	stop() // idempotent
	svc.fleet[0].mu.Lock()
	down := svc.fleet[0].down
	svc.fleet[0].mu.Unlock()
	if down {
		t.Error("device 0 still down after stop")
	}
	// The revived device serves jobs again.
	tk, err := svc.SubmitProfile(arch.JobProfile{QPUService: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); err != nil {
		t.Errorf("job failed after outage controller stop: %v", err)
	}
	checkConservation(t, svc.Drain())
}

// TestChaosDrainDuringInFlightRetry pins the double-count regression: a job
// that is mid-retry (lease revoked, backoff pending) when Drain begins must
// finish its retry loop and land in exactly one ledger. Drain's restoreFleet
// guarantees the retry finds a device.
func TestChaosDrainDuringInFlightRetry(t *testing.T) {
	svc, err := New(Options{
		Workers: 1, Fleet: 1, Base: testBase(),
		MaxRetries: 5, RetryBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := svc.SubmitProfile(arch.JobProfile{QPUService: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	id := waitLeased(t, svc)
	svc.FailDevice(id)
	// The job is now in its backoff with the only device dead. Drain races
	// the retry: restoreFleet revives the device, the retry completes, and
	// the job must count once.
	rep := svc.Drain()
	if _, err := tk.Wait(); err != nil {
		t.Fatalf("mid-retry job failed across Drain: %v", err)
	}
	checkConservation(t, rep)
	if rep.Jobs != 1 || rep.Failed != 0 {
		t.Errorf("report: %d jobs, %d failed; want exactly 1 completion", rep.Jobs, rep.Failed)
	}
	if rep.Retries < 1 {
		t.Errorf("report recorded %d retries, want >= 1", rep.Retries)
	}
}
