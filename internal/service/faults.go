// Fault injection for the live service: device deaths mid-lease with
// bounded-retry re-dispatch, and a wall-clock outage controller that replays
// a workload.FaultSpec's deterministic outage schedules against the fleet.
// The semantics mirror internal/des event for event — a death aborts the
// in-flight QPU service, the host keeps the job and re-acquires a device
// after the backoff, and a job whose retry budget is spent fails into the
// failure ledger — so a live storm run measures the same process the
// simulator predicts.
package service

import (
	"errors"
	"runtime"
	"sync"
	"time"
)

// ErrLeaseRevoked is the failure a job records when every service attempt
// was aborted by a device death — its retry budget is spent.
var ErrLeaseRevoked = errors.New("service: device lease revoked, retries exhausted")

// Retry-policy defaults, mirroring the workload package's fault defaults so
// a scenario that leaves them zero behaves identically in DES and live runs
// (the service must not import workload, so the values are restated here).
const (
	defaultMaxRetries   = 3
	defaultRetryBackoff = time.Millisecond
)

// maxRetries resolves Options.MaxRetries: 0 selects the default, negative
// disables retries entirely.
func (s *Service) maxRetries() int {
	if s.opts.MaxRetries < 0 {
		return 0
	}
	if s.opts.MaxRetries == 0 {
		return defaultMaxRetries
	}
	return s.opts.MaxRetries
}

// retryBackoff resolves Options.RetryBackoff; 0 selects the default.
func (s *Service) retryBackoff() time.Duration {
	if s.opts.RetryBackoff <= 0 {
		return defaultRetryBackoff
	}
	return s.opts.RetryBackoff
}

func (s *Service) addRetry() {
	s.mu.Lock()
	s.retries++
	s.mu.Unlock()
	s.om.retries.Inc()
}

// acquire leases the next live device from the idle pool, parking any dead
// devices it pulls along the way, and returns the device together with its
// revocation channel: FailDevice closes the channel to abort the lease.
// acquire blocks while the whole fleet is down — graceful degradation is
// jobs queueing, not erroring — until RestoreDevice re-idles a device.
func (s *Service) acquire() (*fleetDevice, <-chan struct{}) {
	for {
		fd := <-s.idle
		fd.mu.Lock()
		if fd.down {
			// The device died while sitting in the idle pool; park it
			// until RestoreDevice instead of handing out a dead lease.
			fd.parked = true
			fd.mu.Unlock()
			continue
		}
		lease := make(chan struct{})
		fd.lease = lease
		fd.mu.Unlock()
		return fd, lease
	}
}

// releaseDevice ends a lease: a live device returns to the idle pool, a
// dead one parks until RestoreDevice.
func (s *Service) releaseDevice(fd *fleetDevice) {
	fd.mu.Lock()
	fd.lease = nil
	if fd.down {
		fd.parked = true
		fd.mu.Unlock()
		return
	}
	fd.mu.Unlock()
	s.idle <- fd
}

// FailDevice kills fleet device id: its current lease (if any) is revoked
// immediately, and the device hands out no further leases until
// RestoreDevice. It reports whether the device was up. Killing a device a
// job is holding aborts that job's QPU service mid-flight — the job's host
// retries on another device after the backoff, exactly the DES abort event.
func (s *Service) FailDevice(id int) bool {
	if id < 0 || id >= len(s.fleet) {
		return false
	}
	fd := s.fleet[id]
	fd.mu.Lock()
	defer fd.mu.Unlock()
	if fd.down {
		return false
	}
	fd.down = true
	if fd.lease != nil {
		close(fd.lease)
		fd.lease = nil
	}
	return true
}

// RestoreDevice revives fleet device id, re-idling it if it was parked. It
// reports whether the device was down.
func (s *Service) RestoreDevice(id int) bool {
	if id < 0 || id >= len(s.fleet) {
		return false
	}
	fd := s.fleet[id]
	fd.mu.Lock()
	if !fd.down {
		fd.mu.Unlock()
		return false
	}
	fd.down = false
	reidle := fd.parked
	fd.parked = false
	fd.mu.Unlock()
	if reidle {
		s.idle <- fd
	}
	return true
}

// restoreFleet revives every dead device; Drain runs it so a shut-down
// service never wedges a worker waiting on an all-dead fleet.
func (s *Service) restoreFleet() {
	for _, fd := range s.fleet {
		s.RestoreDevice(fd.id)
	}
}

// Outage is one scheduled device outage in wall-clock time relative to the
// controller's start: the device dies at At and revives after For. It is
// the service-side image of workload.Outage (the service does not import
// the workload package).
type Outage struct {
	At  time.Duration
	For time.Duration
}

// StartOutages launches the wall-clock fault controller: plans[id] is
// replayed against fleet device id, each outage killing the device at its
// offset and restoring it after its duration. The returned stop function
// halts the controller and revives every device it killed; Drain calls it
// implicitly, so the fault regime always ends before shutdown completes.
func (s *Service) StartOutages(plans [][]Outage) (stop func()) {
	stopCh := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for id := range plans {
		if id >= len(s.fleet) || len(plans[id]) == 0 {
			continue
		}
		wg.Add(1)
		go func(id int, plan []Outage) {
			defer wg.Done()
			for _, o := range plan {
				if !sleepUntil(start.Add(o.At), stopCh) {
					return
				}
				s.FailDevice(id)
				if !sleepUntil(start.Add(o.At+o.For), stopCh) {
					return
				}
				s.RestoreDevice(id)
			}
		}(id, plans[id])
	}
	var once sync.Once
	stop = func() {
		once.Do(func() {
			close(stopCh)
			wg.Wait()
			s.restoreFleet()
		})
	}
	s.mu.Lock()
	s.outageStops = append(s.outageStops, stop)
	s.mu.Unlock()
	return stop
}

// stopOutages halts every registered outage controller (idempotent).
func (s *Service) stopOutages() {
	s.mu.Lock()
	stops := s.outageStops
	s.outageStops = nil
	s.mu.Unlock()
	for _, stop := range stops {
		stop()
	}
}

// sleepUntil sleeps until the deadline or the stop channel closes,
// reporting false on stop.
func sleepUntil(deadline time.Time, stopCh <-chan struct{}) bool {
	d := time.Until(deadline)
	if d <= 0 {
		select {
		case <-stopCh:
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-stopCh:
		return false
	case <-t.C:
		return true
	}
}

// sleepLease is SleepPrecise racing a lease revocation: it sleeps for d
// unless the lease channel closes first, reporting whether the lease was
// revoked. The spin tail polls the channel so sub-tick phases still abort
// promptly.
func sleepLease(d time.Duration, lease <-chan struct{}) bool {
	if lease == nil {
		SleepPrecise(d)
		return false
	}
	revoked := func() bool {
		select {
		case <-lease:
			return true
		default:
			return false
		}
	}
	if d <= 0 {
		return revoked()
	}
	slackOnce.Do(calibrateSlack)
	deadline := time.Now().Add(d)
	if d > sleepSlack {
		t := time.NewTimer(d - sleepSlack)
		select {
		case <-lease:
			t.Stop()
			return true
		case <-t.C:
		}
	}
	for time.Now().Before(deadline) {
		if revoked() {
			return true
		}
		runtime.Gosched()
	}
	return revoked()
}
