// Package service implements a concurrent split-execution solver service:
// many client jobs multiplexed over a configurable fleet of QPU devices by a
// pool of host workers. It is the live counterpart of the architecture
// models in internal/arch — the deployment choices of the paper's Fig. 1 map
// directly onto its configuration:
//
//	Workers=1, Fleet=1   asymmetric multi-processor (Fig. 1a)
//	Workers=H, Fleet=1   shared-resource: H hosts contend for one QPU (Fig. 1b)
//	Workers=H, Fleet=H   dedicated QPU per node (Fig. 1c)
//
// Jobs flow through a bounded queue with backpressure (Submit blocks when
// the queue is full; TrySubmit refuses) ordered by a pluggable scheduling
// policy (internal/sched): FIFO by default, or strict priority, shortest-
// expected-QPU-time-first and weighted fair share — the same disciplines
// the discrete-event simulator realizes, selected per workload.Scenario so
// measured and simulated runs compare policy-for-policy. Each worker plays
// the role of
// one host: it runs the classical stages itself and leases a device from the
// shared fleet only for the serialized QPU interaction (program + execute),
// exactly the service-token discipline of arch.Simulate. Per-job RNG streams
// are derived from the submission index with parallel.DeriveSeed, so results
// are byte-identical regardless of worker count or interleaving.
//
// The service measures what the models predict: per-job queue wait, device
// wait, device occupancy and stage times, and aggregate makespan, throughput
// and QPU busy fraction — making the measured-vs-modeled comparison of
// docs/architectures.md a one-call affair.
package service

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"time"

	"github.com/splitexec/splitexec/internal/anneal"
	"github.com/splitexec/splitexec/internal/arch"
	"github.com/splitexec/splitexec/internal/core"
	"github.com/splitexec/splitexec/internal/machine"
	"github.com/splitexec/splitexec/internal/obs"
	"github.com/splitexec/splitexec/internal/parallel"
	"github.com/splitexec/splitexec/internal/qubo"
	"github.com/splitexec/splitexec/internal/sched"
	"github.com/splitexec/splitexec/internal/stats"
)

// Errors reported by the submission API.
var (
	// ErrClosed is returned by Submit after Drain has begun.
	ErrClosed = errors.New("service: closed")
	// ErrQueueFull is returned by TrySubmit when the bounded queue is full.
	ErrQueueFull = errors.New("service: queue full")
)

// Options configure a Service.
type Options struct {
	// Workers is the number of host workers — the H of Fig. 1(b)/(c).
	// Each worker owns its solvers outright (core.Solver is documented
	// single-goroutine), so jobs never share mutable solver state.
	// Values <= 0 select 1.
	Workers int
	// QueueDepth bounds the job queue; Submit blocks (backpressure) and
	// TrySubmit fails once the queue holds this many waiting jobs.
	// Values <= 0 select 2×Workers.
	QueueDepth int
	// Policy selects the queue discipline jobs wait under: sched.FIFO
	// (the default when empty), sched.Priority, sched.ShortestQPU or
	// sched.FairShare. Per-job scheduling attributes ride in through
	// SubmitProfileClass (and the wire protocol's class fields); plain
	// submits carry the zero class.
	Policy sched.Policy
	// Fleet is the number of simulated QPU devices to build from Base:
	// 1 is the paper's shared-resource architecture, Workers is
	// dedicated-per-node. Ignored when Devices is non-empty. Values <= 0
	// select 1.
	Fleet int
	// Devices, when non-empty, is the explicit device fleet. Devices are
	// leased exclusively per QPU interaction, so they need not be safe
	// for concurrent use (qpuserver.Client handles to remote QPUs work
	// too).
	Devices []core.QPUDevice
	// Base is the solver configuration template for solve jobs. Its
	// Device, Seed and Cache fields are managed by the service: Device is
	// replaced with a fleet lease, Seed with a per-job derived stream,
	// and Cache with Options.Cache.
	Base core.Config
	// Seed derives the per-job RNG streams (parallel.DeriveSeed(Seed,
	// submission index)); the zero seed is valid and deterministic.
	Seed int64
	// MaxConns bounds the concurrent connections the TCP front-end
	// accepts; connections beyond it are closed immediately. Values <= 0
	// select 32. Together with MaxWireDim this caps the decode memory a
	// client population can demand.
	MaxConns int
	// MaxRetries is the per-job retry budget for leases revoked by device
	// deaths (FailDevice): a job whose service attempt aborts re-acquires
	// a device after RetryBackoff, up to this many times, then fails with
	// ErrLeaseRevoked. 0 selects 3 (the workload fault default); negative
	// disables retries.
	MaxRetries int
	// RetryBackoff is the pause before each retry; <= 0 selects 1ms.
	RetryBackoff time.Duration
	// Obs, when non-nil, is the telemetry scope the service publishes into:
	// job counters and latency histograms into its registry, per-job
	// lifecycle spans into its tracer, and completed-job sojourns into its
	// drift alarm (arm the alarm before traffic starts). A nil scope — the
	// default — disables telemetry at one nil-check per operation.
	Obs *obs.Scope
	// Cache, when non-nil, is shared by all workers for off-line
	// embedding lookup. core.EmbeddingCache is safe for concurrent use.
	// Note that with isomorphic problems in flight concurrently, which
	// job populates the cache first is scheduling-dependent, so embedding
	// choices (not solution validity) may vary between runs; submit
	// distinct problems or pre-warm the cache when byte-identical replays
	// matter.
	Cache *core.EmbeddingCache
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 2 * o.Workers
	}
	if o.Fleet <= 0 {
		o.Fleet = 1
	}
	if o.Base.Node.Name == "" {
		o.Base.Node = machine.SimpleNode()
	}
	if o.MaxConns <= 0 {
		o.MaxConns = 32
	}
	return o
}

// JobMetrics is the per-job measurement record. It marshals to JSON (every
// duration in nanoseconds) for machine-readable ops output.
type JobMetrics struct {
	// Index is the submission index (also the seed-derivation index).
	Index int `json:"index"`
	// Class is the workload class the job declared at submission (zero for
	// plain submits) — the key fair-share accounting and per-class latency
	// analysis group by.
	Class int `json:"class,omitempty"`
	// QueueWait is the time from Submit to a worker picking the job up.
	QueueWait time.Duration `json:"queueWait"`
	// QPUWait is the time the job spent blocked waiting for a fleet
	// device — the contention cost of the shared-resource architecture.
	QPUWait time.Duration `json:"qpuWait"`
	// QPUHeld is the wall-clock time the job occupied its device
	// (program + execute).
	QPUHeld time.Duration `json:"qpuHeld"`
	// Stage1, Stage2, Stage3 are the pipeline stage times: for solve
	// jobs the solver's Timing entries (QPU phases in virtual hardware
	// time), for profile jobs the synthetic phase durations.
	Stage1 time.Duration `json:"stage1"`
	Stage2 time.Duration `json:"stage2"`
	Stage3 time.Duration `json:"stage3"`
	// Total is the end-to-end latency from Submit to completion — the
	// sojourn time of the open-system models.
	Total time.Duration `json:"total"`
	// Retries counts service attempts aborted by a device death and
	// re-dispatched; zero outside a fault regime.
	Retries int `json:"retries,omitempty"`
}

// Ticket is the handle to one submitted job.
type Ticket struct {
	index    int
	enqueued time.Time
	run      func(s *Service, t *Ticket)
	done     chan struct{}

	sol     *core.Solution
	err     error
	metrics JobMetrics
	span    *obs.SpanBuilder
}

// Wait blocks until the job completes and returns its solution (nil for
// synthetic profile jobs) and error.
func (t *Ticket) Wait() (*core.Solution, error) {
	<-t.done
	return t.sol, t.err
}

// Metrics returns the job's measurement record; valid after Wait.
func (t *Ticket) Metrics() JobMetrics {
	<-t.done
	return t.metrics
}

// fleetDevice is one QPU service token plus its occupancy ledger and fault
// state. A device lives in exactly one place at a time: the idle channel,
// held by a worker, or parked (dead and out of circulation); the down/
// parked flags and the lease revocation channel are guarded by mu.
type fleetDevice struct {
	id  int
	dev core.QPUDevice

	mu     sync.Mutex
	busy   time.Duration
	down   bool          // FailDevice has killed it
	parked bool          // dead and withheld from the idle pool
	lease  chan struct{} // current holder's revocation channel
}

func (f *fleetDevice) addBusy(d time.Duration) {
	f.mu.Lock()
	f.busy += d
	f.mu.Unlock()
}

func (f *fleetDevice) busyTime() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.busy
}

// Service dispatches jobs over the host workers and the device fleet.
type Service struct {
	opts  Options
	queue *jobQueue
	idle  chan *fleetDevice // free-device pool; len(fleet) tokens
	fleet []*fleetDevice
	om    svcMetrics // telemetry handles (obs.go); nil handles when disabled
	wg    sync.WaitGroup

	// TCP front-end state (wire.go); ln and conns are guarded by mu.
	ln     net.Listener
	conns  map[net.Conn]struct{}
	connWG sync.WaitGroup

	mu          sync.Mutex
	next        int // next submission index
	firstSubmit time.Time
	lastDone    time.Time
	completed   []JobMetrics // successfully completed jobs only
	failed      int
	retries     int      // lease-revocation retries across all jobs
	outageStops []func() // registered fault controllers (faults.go)
}

// New builds the fleet, starts the workers and returns a running service.
func New(opts Options) (*Service, error) {
	o := opts.withDefaults()
	if !sched.Valid(o.Policy) {
		return nil, fmt.Errorf("service: unknown policy %q (want %v)", o.Policy, sched.Policies())
	}
	s := &Service{
		opts:  o,
		queue: newJobQueue(o.Policy, o.QueueDepth),
	}
	devs := o.Devices
	if len(devs) == 0 {
		timings := o.Base.Node.QPU.Timings
		if o.Base.Schedule != nil {
			// Mirror core.NewSolver: a programmed waveform sets the
			// per-read anneal cost.
			timings.AnnealTime = o.Base.Schedule.Duration()
		}
		for i := 0; i < o.Fleet; i++ {
			dev := anneal.NewDevice(timings, o.Base.Sampler)
			dev.SQA = o.Base.SQA
			dev.Workers = o.Base.ReadWorkers
			devs = append(devs, core.LocalDevice(dev))
		}
	}
	s.idle = make(chan *fleetDevice, len(devs))
	for i, d := range devs {
		fd := &fleetDevice{id: i, dev: d}
		s.fleet = append(s.fleet, fd)
		s.idle <- fd
	}
	s.initObs()
	for w := 0; w < o.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Workers returns the host worker count.
func (s *Service) Workers() int { return s.opts.Workers }

// FleetSize returns the number of QPU devices in the fleet.
func (s *Service) FleetSize() int { return len(s.fleet) }

// Policy returns the queue discipline the service schedules under.
func (s *Service) Policy() sched.Policy { return sched.Normalize(s.opts.Policy) }

// worker is one host: it drains the job queue in policy order, timing each
// job. Failed jobs count toward the failure ledger, not the completion
// distributions.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		t, ok := s.queue.pop()
		if !ok {
			return
		}
		t.metrics.QueueWait = time.Since(t.enqueued)
		t.span.Event(obs.StageQueue)
		t.run(s, t)
		t.metrics.Total = time.Since(t.enqueued)
		s.om.queueWait.Observe(t.metrics.QueueWait)
		s.om.qpuWait.Observe(t.metrics.QPUWait)
		s.om.sojourn.Observe(t.metrics.Total)
		s.mu.Lock()
		now := time.Now()
		if now.After(s.lastDone) {
			s.lastDone = now
		}
		if t.err != nil {
			s.failed++
		} else {
			s.completed = append(s.completed, t.metrics)
		}
		s.mu.Unlock()
		if t.err != nil {
			s.om.failed.Inc()
			t.span.Finish(t.err.Error())
		} else {
			s.om.completed.Inc()
			// Completed sojourns feed the predicted-vs-measured loop; failed
			// jobs never do — a fault storm is an availability problem, not
			// evidence the latency model drifted.
			s.opts.Obs.DriftAlarm().Observe(t.metrics.Class, t.metrics.Total)
			t.span.Finish("")
		}
		close(t.done)
	}
}

// submit enqueues a ticket with its scheduling attributes, blocking for
// queue space when block is set. Submission indices are the determinism
// anchor (per-job seeds derive from them), so an index is consumed only
// when a ticket actually enqueues — a refused TrySubmit, or a Submit that
// loses the race with Drain, must not shift the seed streams of later jobs.
// The index is allocated inside the queue's push critical section, so index
// order equals enqueue order. QueueWait is clocked from the Submit call
// itself, so backpressure blocking counts as queueing — the condition it
// measures.
func (s *Service) submit(run func(*Service, *Ticket), class sched.Job, block bool) (*Ticket, error) {
	submitAt := time.Now()
	return s.queue.push(func() *Ticket {
		t := &Ticket{run: run, done: make(chan struct{}), enqueued: submitAt}
		s.mu.Lock()
		t.index = s.next
		s.next++
		if s.firstSubmit.IsZero() {
			s.firstSubmit = submitAt
		}
		s.mu.Unlock()
		t.metrics.Index = t.index
		t.metrics.Class = class.Class
		s.om.submitted.Inc()
		// The span attaches inside the push critical section: push's mutex
		// happens-before the worker's pop, so the worker always sees it.
		t.span = s.opts.Obs.Tracer().Start("job", int64(t.index), class.Class)
		return t
	}, class, block)
}

// JobClass carries the scheduling attributes a job declares at submission:
// its workload-class index, its priority under sched.Priority (larger is
// served sooner), and its fair-share weight under sched.FairShare (<= 0
// means 1). The zero JobClass is the plain default every classless submit
// uses.
type JobClass struct {
	Class    int
	Priority int
	Weight   float64
}

// schedJob builds the queue-ordering attributes for a profile job: the
// declared class plus the profile's own QPU and total service times (the
// SJF key and the fair-share charge).
func (c JobClass) schedJob(p arch.JobProfile) sched.Job {
	return sched.Job{
		Class:       c.Class,
		Priority:    c.Priority,
		Weight:      c.Weight,
		ExpectedQPU: p.QPUService,
		Cost:        p.Total(),
	}
}

// SubmitQUBO enqueues a QUBO solve, blocking while the queue is full.
func (s *Service) SubmitQUBO(q *qubo.QUBO) (*Ticket, error) {
	if q == nil {
		return nil, errors.New("service: nil QUBO")
	}
	return s.submit(solveRun(q, nil), sched.Job{Weight: 1}, true)
}

// TrySubmitQUBO is SubmitQUBO without backpressure blocking: it returns
// ErrQueueFull when the bounded queue cannot take the job now.
func (s *Service) TrySubmitQUBO(q *qubo.QUBO) (*Ticket, error) {
	if q == nil {
		return nil, errors.New("service: nil QUBO")
	}
	return s.submit(solveRun(q, nil), sched.Job{Weight: 1}, false)
}

// SubmitIsing enqueues a logical-Ising solve, blocking while the queue is
// full.
func (s *Service) SubmitIsing(m *qubo.Ising) (*Ticket, error) {
	if m == nil {
		return nil, errors.New("service: nil Ising")
	}
	return s.submit(solveRun(nil, m), sched.Job{Weight: 1}, true)
}

// SubmitProfile enqueues a synthetic job that exercises the dispatch
// machinery with the exact phase costs of an arch.JobProfile: the worker
// sleeps through the classical phases and holds a fleet device for
// QPUService, so the measured makespan of a profile batch is directly
// comparable to arch.Simulate's prediction.
func (s *Service) SubmitProfile(p arch.JobProfile) (*Ticket, error) {
	return s.SubmitProfileClass(p, JobClass{Weight: 1})
}

// SubmitProfileClass is SubmitProfile with explicit scheduling attributes —
// the load generator's entry point for realizing a scenario's policy on the
// live service.
func (s *Service) SubmitProfileClass(p arch.JobProfile, c JobClass) (*Ticket, error) {
	if p.PreProcess < 0 || p.Network < 0 || p.QPUService < 0 || p.PostProcess < 0 {
		return nil, fmt.Errorf("service: negative phase time in %+v", p)
	}
	if c.Class < 0 {
		return nil, fmt.Errorf("service: negative job class %d", c.Class)
	}
	return s.submit(profileRun(p), c.schedJob(p), true)
}

// TrySubmitProfile is SubmitProfile without backpressure blocking.
func (s *Service) TrySubmitProfile(p arch.JobProfile) (*Ticket, error) {
	if p.PreProcess < 0 || p.Network < 0 || p.QPUService < 0 || p.PostProcess < 0 {
		return nil, fmt.Errorf("service: negative phase time in %+v", p)
	}
	return s.submit(profileRun(p), JobClass{Weight: 1}.schedJob(p), false)
}

// solveRun builds the runner for a solve job: a fresh per-job solver
// (seeded from the submission index) over a leased fleet device.
func solveRun(q *qubo.QUBO, m *qubo.Ising) func(*Service, *Ticket) {
	return func(s *Service, t *Ticket) {
		cfg := s.opts.Base
		cfg.Seed = parallel.DeriveSeed(s.opts.Seed, t.index)
		cfg.Cache = s.opts.Cache
		lease := &leasedDevice{svc: s, t: t}
		cfg.Device = lease
		defer lease.release()
		solver := core.NewSolver(cfg)
		if q != nil {
			t.sol, t.err = solver.SolveQUBO(q)
		} else {
			t.sol, t.err = solver.SolveIsing(m)
		}
		if t.sol != nil {
			t.metrics.Stage1 = t.sol.Timing.Stage1()
			t.metrics.Stage2 = t.sol.Timing.Stage2()
			t.metrics.Stage3 = t.sol.Timing.Stage3()
		}
	}
}

// profileRun builds the runner for a synthetic profile job, replaying
// arch.Simulate's per-job discipline in real time: pre-process on the host,
// request network, queue for a device, serialized service, response network,
// post-process. A device death mid-service revokes the lease (faults.go):
// the host keeps the job and re-acquires a device after the backoff, up to
// the retry budget, then fails with ErrLeaseRevoked — the exact abort/
// retry/fail event sequence the DES realizes for the same scenario.
func profileRun(p arch.JobProfile) func(*Service, *Ticket) {
	return func(s *Service, t *Ticket) {
		sleep(p.PreProcess)
		sleep(p.Network)
		for attempt := 0; ; attempt++ {
			waitStart := time.Now()
			fd, lease := s.acquire()
			t.metrics.QPUWait += time.Since(waitStart)
			t.span.Event(obs.StageLease)
			held := time.Now()
			revoked := sleepLease(p.QPUService, lease)
			occupancy := time.Since(held)
			fd.addBusy(occupancy)
			t.metrics.QPUHeld += occupancy
			s.releaseDevice(fd)
			if !revoked {
				t.span.Event(obs.StageExecute)
				break
			}
			if attempt >= s.maxRetries() {
				t.err = ErrLeaseRevoked
				return
			}
			t.metrics.Retries++
			s.addRetry()
			t.span.Event(obs.StageRetry)
			t.span.AddRetry()
			sleep(s.retryBackoff())
		}
		sleep(p.Network)
		sleep(p.PostProcess)
		t.metrics.Stage1 = p.PreProcess
		t.metrics.Stage2 = p.QPUService
		t.metrics.Stage3 = p.PostProcess
	}
}

// Precise phase replay: time.Sleep quantizes to the kernel tick (about a
// millisecond on stock server kernels), which would bury millisecond-scale
// phase costs in overshoot and push every measured-vs-modeled comparison
// off its band. SleepPrecise sleeps short by a calibrated slack and
// yield-spins the remainder, keeping replay accurate to microseconds at a
// bounded CPU cost per phase — on high-resolution-timer machines the
// calibration shrinks the slack (and the spin) by an order of magnitude.
var (
	slackOnce  sync.Once
	sleepSlack time.Duration
)

// Calibrate off the critical path: lazily, the 5-nap measurement would land
// inside the first replayed job (or the load generator's first paced
// arrival) and charge ~5 ms of calibration to that job's latency.
func init() { go slackOnce.Do(calibrateSlack) }

// calibrateSlack measures the worst sleep overshoot of a few short naps;
// the spin tail must cover it or phases inherit the tick error.
func calibrateSlack() {
	worst := time.Duration(0)
	for i := 0; i < 5; i++ {
		start := time.Now()
		time.Sleep(50 * time.Microsecond)
		if d := time.Since(start); d > worst {
			worst = d
		}
	}
	sleepSlack = min(max(worst+worst/2, 200*time.Microsecond), 2*time.Millisecond)
}

// SleepPrecise sleeps for d with sub-tick accuracy. It is the phase-replay
// primitive behind profile jobs and the load generator's arrival pacing.
func SleepPrecise(d time.Duration) {
	if d <= 0 {
		return
	}
	slackOnce.Do(calibrateSlack)
	deadline := time.Now().Add(d)
	if d > sleepSlack {
		time.Sleep(d - sleepSlack)
	}
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

func sleep(d time.Duration) { SleepPrecise(d) }

// leasedDevice adapts the fleet to core.QPUDevice: Program acquires a
// device and holds it through Execute, so one job's program can never be
// clobbered by another's between the two calls — the atomic "QPU service"
// unit of the architecture models. QPUTime reports only this lease's
// virtual-time deltas, keeping per-job Timing correct on a shared device.
type leasedDevice struct {
	svc *Service
	t   *Ticket

	fd       *fleetDevice
	acquired time.Time

	prog, exec time.Duration
}

// Program leases a fleet device and uploads the model. Solve jobs acquire
// through the fault-aware pool (so they never lease a dead device) but do
// not watch the revocation channel: a revoked solve runs its device
// interaction to completion — the anneal result is already in flight — and
// the device parks at release.
func (l *leasedDevice) Program(m *qubo.Ising) error {
	if l.fd == nil {
		waitStart := time.Now()
		l.fd, _ = l.svc.acquire()
		l.t.metrics.QPUWait += time.Since(waitStart)
		l.acquired = time.Now()
		l.t.span.Event(obs.StageLease)
	}
	p0, _ := l.fd.dev.QPUTime()
	err := l.fd.dev.Program(m)
	p1, _ := l.fd.dev.QPUTime()
	l.prog += p1 - p0
	l.t.span.Event(obs.StageProgram)
	if err != nil {
		l.release()
	}
	return err
}

// Execute runs the reads on the leased device and releases it.
func (l *leasedDevice) Execute(reads int, rng *rand.Rand) (*anneal.SampleSet, error) {
	if l.fd == nil {
		return nil, errors.New("service: Execute before Program")
	}
	_, e0 := l.fd.dev.QPUTime()
	set, err := l.fd.dev.Execute(reads, rng)
	_, e1 := l.fd.dev.QPUTime()
	l.exec += e1 - e0
	l.t.span.Event(obs.StageExecute)
	if err == nil {
		l.t.span.Event(obs.StageRead)
	}
	l.release()
	return set, err
}

// QPUTime reports the lease's own virtual-time ledger.
func (l *leasedDevice) QPUTime() (programming, execution time.Duration) {
	return l.prog, l.exec
}

// release returns the device to the pool; it is idempotent.
func (l *leasedDevice) release() {
	if l.fd == nil {
		return
	}
	occupancy := time.Since(l.acquired)
	l.fd.addBusy(occupancy)
	l.t.metrics.QPUHeld += occupancy
	l.svc.releaseDevice(l.fd)
	l.fd = nil
}

// Report is the aggregate measurement of a service run. It marshals to
// JSON (durations in nanoseconds) so `splitexec serve` can emit a
// machine-readable drain report.
type Report struct {
	Jobs   int `json:"jobs"`   // completed jobs
	Failed int `json:"failed"` // jobs that returned an error
	// Submitted counts every consumed submission index. Jobs + Failed ==
	// Submitted after Drain is the ledger's conservation invariant: every
	// admitted job completes or fails, never both, never neither — the
	// property the chaos tests pin under injected faults.
	Submitted int `json:"submitted"`
	// Retries counts service attempts aborted by device deaths and
	// re-dispatched across all jobs.
	Retries int `json:"retries,omitempty"`

	// Makespan is first-Submit to last-completion wall time; Throughput
	// is Jobs over Makespan in jobs/second.
	Makespan   time.Duration `json:"makespan"`
	Throughput float64       `json:"throughput"`

	// Queue wait, device wait and sojourn (Submit-to-completion)
	// distributions across completed jobs — the open-system metrics the
	// DES predicts (stats.DurationSummary is the shared digest shape).
	QueueWait stats.DurationSummary `json:"queueWait"`
	QPUWait   stats.DurationSummary `json:"qpuWait"`
	Sojourn   stats.DurationSummary `json:"sojourn"`

	// Queue and device contention (digest aliases kept for the
	// closed-batch consumers).
	QueueWaitMean time.Duration `json:"queueWaitMean"`
	QueueWaitMax  time.Duration `json:"queueWaitMax"`
	QPUWaitMean   time.Duration `json:"qpuWaitMean"`

	// DeviceBusy is the cumulative wall-clock occupancy per fleet device;
	// QPUBusyFraction is total occupancy over fleet capacity × makespan —
	// the utilization the paper's bottleneck analysis predicts stays low
	// when classical pre-processing dominates.
	DeviceBusy      []time.Duration `json:"deviceBusy"`
	QPUBusyFraction float64         `json:"qpuBusyFraction"`

	// Stage means across completed jobs.
	Stage1Mean time.Duration `json:"stage1Mean"`
	Stage2Mean time.Duration `json:"stage2Mean"`
	Stage3Mean time.Duration `json:"stage3Mean"`
}

// Drain closes intake, waits for every queued job to finish and returns the
// aggregate report. Submit calls racing Drain either enqueue before intake
// closes or fail with ErrClosed; enqueued jobs are always completed. Drain
// is idempotent: a second call (even concurrent with the first) waits for
// the same shutdown and returns the same report.
//
// Drain also ends any fault regime: registered outage controllers stop and
// every dead device revives before the queue closes, so in-flight retries
// always find a device and no worker wedges on an all-dead fleet. A job
// mid-retry at Drain time finishes its retry loop and lands in exactly one
// ledger — completions or failures — never both.
func (s *Service) Drain() Report {
	s.CloseListener() // stop the TCP front-end first, if one is running
	s.stopOutages()
	s.restoreFleet()
	s.queue.close()
	s.wg.Wait()
	return s.report()
}

// Snapshot reports the run so far without draining: the same aggregate shape
// as Drain's report, computed over the jobs finished at call time. It is the
// periodic-progress hook behind `-report every` — safe to call concurrently
// with submissions and workers, at the cost of one ledger lock and a digest
// pass over the completed jobs.
func (s *Service) Snapshot() Report {
	return s.report()
}

func (s *Service) report() Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := Report{Jobs: len(s.completed), Failed: s.failed, Submitted: s.next, Retries: s.retries}
	// Makespan covers every finished job, successful or not: an all-failed
	// run still took wall time, and reporting zero would read as "nothing
	// happened". Throughput counts completions only.
	if r.Jobs+r.Failed > 0 && !s.firstSubmit.IsZero() && s.lastDone.After(s.firstSubmit) {
		r.Makespan = s.lastDone.Sub(s.firstSubmit)
	}
	// The device ledger is real work regardless of job outcomes (a solve
	// can fail after holding a device), so report it unconditionally.
	var busy time.Duration
	for _, fd := range s.fleet {
		b := fd.busyTime()
		r.DeviceBusy = append(r.DeviceBusy, b)
		busy += b
	}
	if r.Makespan > 0 && len(s.fleet) > 0 {
		r.QPUBusyFraction = float64(busy) / (float64(r.Makespan) * float64(len(s.fleet)))
	}
	if r.Jobs == 0 {
		return r
	}
	if r.Makespan > 0 {
		r.Throughput = float64(r.Jobs) / r.Makespan.Seconds()
	}
	queue := make([]time.Duration, 0, r.Jobs)
	qpu := make([]time.Duration, 0, r.Jobs)
	sojourn := make([]time.Duration, 0, r.Jobs)
	var s1, s2, s3 time.Duration
	for _, m := range s.completed {
		queue = append(queue, m.QueueWait)
		qpu = append(qpu, m.QPUWait)
		sojourn = append(sojourn, m.Total)
		s1 += m.Stage1
		s2 += m.Stage2
		s3 += m.Stage3
	}
	r.QueueWait = stats.SummarizeDurations(queue)
	r.QPUWait = stats.SummarizeDurations(qpu)
	r.Sojourn = stats.SummarizeDurations(sojourn)
	r.QueueWaitMean = r.QueueWait.Mean
	r.QueueWaitMax = r.QueueWait.Max
	r.QPUWaitMean = r.QPUWait.Mean
	// Stage means divide by the completed-job count only: failed jobs have
	// no stage ledger, and folding them in would dilute every mean.
	n := time.Duration(r.Jobs)
	r.Stage1Mean = s1 / n
	r.Stage2Mean = s2 / n
	r.Stage3Mean = s3 / n
	return r
}
