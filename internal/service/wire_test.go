package service

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/arch"
	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/qubo"
)

// TestQUBOWireRoundTrip: Encode→Decode is the identity on coefficients.
func TestQUBOWireRoundTrip(t *testing.T) {
	q := qubo.NewQUBO(5)
	q.Set(0, 0, -1.5)
	q.Set(0, 3, 2)
	q.Set(2, 4, -0.25)
	q.Set(4, 4, 7)
	got, err := DecodeQUBO(EncodeQUBO(q))
	if err != nil {
		t.Fatalf("DecodeQUBO: %v", err)
	}
	if got.Dim() != q.Dim() {
		t.Fatalf("dim %d != %d", got.Dim(), q.Dim())
	}
	for i := 0; i < q.Dim(); i++ {
		for j := i; j < q.Dim(); j++ {
			if got.Get(i, j) != q.Get(i, j) {
				t.Errorf("coefficient (%d,%d): %v != %v", i, j, got.Get(i, j), q.Get(i, j))
			}
		}
	}
}

// TestDecodeQUBORejects: malformed wire requests must error.
func TestDecodeQUBORejects(t *testing.T) {
	cases := []SolveRequest{
		{Dim: 0},
		{Dim: -3},
		{Dim: MaxWireDim + 1},
		{Dim: 4, Terms: []WireTerm{{I: 0, J: 4, Val: 1}}},
		{Dim: 4, Terms: []WireTerm{{I: -1, J: 2, Val: 1}}},
	}
	for i, req := range cases {
		if _, err := DecodeQUBO(req); err == nil {
			t.Errorf("case %d: DecodeQUBO accepted %+v", i, req)
		}
	}
}

// TestServeSolve runs the full TCP path: concurrent clients solving over
// one service, including a malformed request that must not kill the
// connection's peer service.
func TestServeSolve(t *testing.T) {
	svc, err := New(Options{Workers: 2, Fleet: 1, Base: testBase(), Seed: 7})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer svc.Drain()

	g := graph.Cycle(6)
	q := qubo.MaxCut(g, nil)

	var wg sync.WaitGroup
	responses := make([]SolveResponse, 3)
	errs := make([]error, 3)
	for i := range responses {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr.String())
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			c.SetTimeout(30 * time.Second)
			responses[i], errs[i] = c.Solve(q)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		r := responses[i]
		if !r.OK || len(r.Binary) != 6 || r.Reads < 1 {
			t.Fatalf("client %d: bad response %+v", i, r)
		}
		// A 6-cycle is bipartite: the optimum cuts all 6 edges, and the
		// annealer should find it on this tiny instance.
		bin := make([]int8, len(r.Binary))
		for j, b := range r.Binary {
			bin[j] = int8(b)
		}
		if cut := qubo.CutValue(g, nil, bin); cut < 4 {
			t.Errorf("client %d: cut value %v, want >= 4", i, cut)
		}
	}
	// Identical problems over the same service: responses must agree on
	// energy (the jobs differ only in their seed streams' samples, but
	// this instance's optimum is always found).
	if responses[0].Energy != responses[1].Energy || responses[1].Energy != responses[2].Energy {
		t.Errorf("energies diverged: %v %v %v", responses[0].Energy, responses[1].Energy, responses[2].Energy)
	}

	// An invalid request gets an error response, not a dropped connection.
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Solve(qubo.NewQUBO(0)); err == nil || !strings.Contains(err.Error(), "dim") {
		t.Errorf("zero-dim solve: err = %v, want dim validation error", err)
	}
	// The same connection still serves valid requests afterwards.
	r, err := c.Solve(q)
	if err != nil {
		t.Fatalf("solve after error: %v", err)
	}
	if !reflect.DeepEqual(r.Binary, responses[0].Binary) && r.Energy != responses[0].Energy {
		t.Errorf("post-error solve diverged: %+v", r)
	}
}

// TestServeConnectionCap: connections beyond MaxConns are shed immediately
// instead of committing decode memory and a handler goroutine.
func TestServeConnectionCap(t *testing.T) {
	svc, err := New(Options{Workers: 1, Fleet: 1, Base: testBase(), MaxConns: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer svc.Drain()

	first, err := DialTimeout(addr.String(), 5*time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer first.Close()
	q := qubo.MaxCut(graph.Cycle(4), nil)
	if _, err := first.Solve(q); err != nil {
		t.Fatalf("first connection solve: %v", err) // also forces registration
	}

	second, err := DialTimeout(addr.String(), 5*time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err) // TCP accept succeeds; the server sheds after
	}
	defer second.Close()
	second.SetTimeout(5 * time.Second)
	if _, err := second.Solve(q); err == nil {
		t.Error("over-cap connection was served")
	}

	// The in-cap connection keeps working.
	if _, err := first.Solve(q); err != nil {
		t.Errorf("in-cap connection broken after shed: %v", err)
	}
}

// TestProfileWireRoundTrip: Encode→Decode is the identity on phase costs,
// and malformed profiles must error.
func TestProfileWireRoundTrip(t *testing.T) {
	p := arch.JobProfile{
		PreProcess:  3 * time.Millisecond,
		Network:     75 * time.Microsecond,
		QPUService:  time.Millisecond,
		PostProcess: 250 * time.Microsecond,
	}
	req := EncodeProfile(p)
	if req.Profile == nil {
		t.Fatal("EncodeProfile produced no profile payload")
	}
	got, err := DecodeProfile(req.Profile)
	if err != nil {
		t.Fatalf("DecodeProfile: %v", err)
	}
	if got != p {
		t.Errorf("round trip changed the profile: %+v vs %+v", got, p)
	}

	for i, bad := range []WireProfile{
		{PreProcessNS: -1},
		{QPUServiceNS: -5},
		{PreProcessNS: int64(MaxWireProfileTotal), QPUServiceNS: int64(time.Second)},
		// A near-MaxInt64 phase must not overflow the total past the cap.
		{PreProcessNS: int64(1<<63 - 1), QPUServiceNS: 1},
		{NetworkNS: int64(1<<62 + 1<<61)},
	} {
		if _, err := DecodeProfile(&bad); err == nil {
			t.Errorf("case %d: DecodeProfile accepted %+v", i, bad)
		}
	}
}

// TestServeProfile runs a synthetic profile job over the TCP front-end: the
// response must carry the replayed phase costs and a sojourn no shorter
// than the profile's unqueued total.
func TestServeProfile(t *testing.T) {
	svc, err := New(Options{Workers: 2, Fleet: 1, Base: testBase()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer svc.Drain()

	c, err := Dial(addr.String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	c.SetTimeout(30 * time.Second)

	p := arch.JobProfile{
		PreProcess:  2 * time.Millisecond,
		QPUService:  time.Millisecond,
		PostProcess: time.Millisecond,
	}
	resp, err := c.Profile(p)
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	if !resp.OK {
		t.Fatalf("response not OK: %+v", resp)
	}
	if got := time.Duration(resp.Stage1US) * time.Microsecond; got < p.PreProcess-time.Millisecond || got > p.PreProcess+time.Millisecond {
		t.Errorf("stage1 %v, want ~%v", got, p.PreProcess)
	}
	if total := time.Duration(resp.TotalUS) * time.Microsecond; total < p.Total() {
		t.Errorf("sojourn %v shorter than the unqueued total %v", total, p.Total())
	}

	// A hostile profile exceeding the per-job budget is refused, and the
	// connection survives to serve the next request.
	if _, err := c.Profile(arch.JobProfile{PreProcess: MaxWireProfileTotal + time.Second}); err == nil {
		t.Error("oversized profile accepted")
	}
	if _, err := c.Profile(p); err != nil {
		t.Errorf("connection did not survive a refused profile: %v", err)
	}
}
