package service

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/qubo"
)

// TestQUBOWireRoundTrip: Encode→Decode is the identity on coefficients.
func TestQUBOWireRoundTrip(t *testing.T) {
	q := qubo.NewQUBO(5)
	q.Set(0, 0, -1.5)
	q.Set(0, 3, 2)
	q.Set(2, 4, -0.25)
	q.Set(4, 4, 7)
	got, err := DecodeQUBO(EncodeQUBO(q))
	if err != nil {
		t.Fatalf("DecodeQUBO: %v", err)
	}
	if got.Dim() != q.Dim() {
		t.Fatalf("dim %d != %d", got.Dim(), q.Dim())
	}
	for i := 0; i < q.Dim(); i++ {
		for j := i; j < q.Dim(); j++ {
			if got.Get(i, j) != q.Get(i, j) {
				t.Errorf("coefficient (%d,%d): %v != %v", i, j, got.Get(i, j), q.Get(i, j))
			}
		}
	}
}

// TestDecodeQUBORejects: malformed wire requests must error.
func TestDecodeQUBORejects(t *testing.T) {
	cases := []SolveRequest{
		{Dim: 0},
		{Dim: -3},
		{Dim: MaxWireDim + 1},
		{Dim: 4, Terms: []WireTerm{{I: 0, J: 4, Val: 1}}},
		{Dim: 4, Terms: []WireTerm{{I: -1, J: 2, Val: 1}}},
	}
	for i, req := range cases {
		if _, err := DecodeQUBO(req); err == nil {
			t.Errorf("case %d: DecodeQUBO accepted %+v", i, req)
		}
	}
}

// TestServeSolve runs the full TCP path: concurrent clients solving over
// one service, including a malformed request that must not kill the
// connection's peer service.
func TestServeSolve(t *testing.T) {
	svc, err := New(Options{Workers: 2, Fleet: 1, Base: testBase(), Seed: 7})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer svc.Drain()

	g := graph.Cycle(6)
	q := qubo.MaxCut(g, nil)

	var wg sync.WaitGroup
	responses := make([]SolveResponse, 3)
	errs := make([]error, 3)
	for i := range responses {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr.String())
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			c.SetTimeout(30 * time.Second)
			responses[i], errs[i] = c.Solve(q)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		r := responses[i]
		if !r.OK || len(r.Binary) != 6 || r.Reads < 1 {
			t.Fatalf("client %d: bad response %+v", i, r)
		}
		// A 6-cycle is bipartite: the optimum cuts all 6 edges, and the
		// annealer should find it on this tiny instance.
		bin := make([]int8, len(r.Binary))
		for j, b := range r.Binary {
			bin[j] = int8(b)
		}
		if cut := qubo.CutValue(g, nil, bin); cut < 4 {
			t.Errorf("client %d: cut value %v, want >= 4", i, cut)
		}
	}
	// Identical problems over the same service: responses must agree on
	// energy (the jobs differ only in their seed streams' samples, but
	// this instance's optimum is always found).
	if responses[0].Energy != responses[1].Energy || responses[1].Energy != responses[2].Energy {
		t.Errorf("energies diverged: %v %v %v", responses[0].Energy, responses[1].Energy, responses[2].Energy)
	}

	// An invalid request gets an error response, not a dropped connection.
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Solve(qubo.NewQUBO(0)); err == nil || !strings.Contains(err.Error(), "dim") {
		t.Errorf("zero-dim solve: err = %v, want dim validation error", err)
	}
	// The same connection still serves valid requests afterwards.
	r, err := c.Solve(q)
	if err != nil {
		t.Fatalf("solve after error: %v", err)
	}
	if !reflect.DeepEqual(r.Binary, responses[0].Binary) && r.Energy != responses[0].Energy {
		t.Errorf("post-error solve diverged: %+v", r)
	}
}

// TestServeConnectionCap: connections beyond MaxConns are shed immediately
// instead of committing decode memory and a handler goroutine.
func TestServeConnectionCap(t *testing.T) {
	svc, err := New(Options{Workers: 1, Fleet: 1, Base: testBase(), MaxConns: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer svc.Drain()

	first, err := DialTimeout(addr.String(), 5*time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer first.Close()
	q := qubo.MaxCut(graph.Cycle(4), nil)
	if _, err := first.Solve(q); err != nil {
		t.Fatalf("first connection solve: %v", err) // also forces registration
	}

	second, err := DialTimeout(addr.String(), 5*time.Second)
	if err != nil {
		t.Fatalf("Dial: %v", err) // TCP accept succeeds; the server sheds after
	}
	defer second.Close()
	second.SetTimeout(5 * time.Second)
	if _, err := second.Solve(q); err == nil {
		t.Error("over-cap connection was served")
	}

	// The in-cap connection keeps working.
	if _, err := first.Solve(q); err != nil {
		t.Errorf("in-cap connection broken after shed: %v", err)
	}
}
