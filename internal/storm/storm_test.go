package storm

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/des"
	"github.com/splitexec/splitexec/internal/workload"
)

// writeCorpus drops scenario files into a temp dir and returns it.
func writeCorpus(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// tinyScenario is a seconds-scale live-replayable scenario with a wide band
// (unit tests must not flake on a loaded CI core).
const tinyScenario = `{
  "name": "tiny",
  "seed": 13,
  "arrival": {"kind": "poisson", "rate": 50},
  "mix": [{"name": "base", "weight": 1,
           "profile": {"preProcess": "1ms", "qpuService": "400µs", "postProcess": "200µs"}}],
  "system": {"kind": "shared", "hosts": 2},
  "horizon": {"jobs": 30},
  "band": {"lo": 0.1, "hi": 50}
}`

// TestStormRunTiny drives the full predict→replay→judge pipeline over
// loopback TCP on a one-scenario corpus.
func TestStormRunTiny(t *testing.T) {
	dir := writeCorpus(t, map[string]string{"tiny.json": tinyScenario})
	var log bytes.Buffer
	rep, err := Run(Options{Dir: dir, Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 1 {
		t.Fatalf("ran %d scenarios, want 1", len(rep.Scenarios))
	}
	res := rep.Scenarios[0]
	if !res.Pass || !rep.Pass {
		t.Fatalf("tiny scenario failed: %+v\nlog:\n%s", res, log.String())
	}
	if res.Jobs+res.Failed != 30 {
		t.Errorf("client ledger %d + %d != 30 admitted", res.Jobs, res.Failed)
	}
	if res.DESP99 <= 0 || res.LiveP99 <= 0 || res.Ratio <= 0 {
		t.Errorf("degenerate measurements: %+v", res)
	}
	// The report is CI-consumable JSON.
	data, err := EncodeReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	var round Report
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("report not round-trippable: %v", err)
	}
	if round.Pass != rep.Pass || len(round.Scenarios) != 1 {
		t.Errorf("report round trip changed the verdict")
	}
}

// TestStormQuickPicksCheapest: Quick mode must deterministically run only
// the scenario with the fewest horizon jobs.
func TestStormQuickPicksCheapest(t *testing.T) {
	expensive := `{
  "name": "expensive", "seed": 1,
  "arrival": {"kind": "poisson", "rate": 50},
  "mix": [{"name": "base", "weight": 1, "profile": {"preProcess": "1ms", "qpuService": "400µs"}}],
  "system": {"kind": "shared", "hosts": 2},
  "horizon": {"jobs": 500},
  "band": {"lo": 0.1, "hi": 50}
}`
	dir := writeCorpus(t, map[string]string{
		// Lexicographically before tiny.json, so a naive "first file" pick
		// would choose wrong.
		"aaa-expensive.json": expensive,
		"tiny.json":          tinyScenario,
	})
	rep, err := Run(Options{Dir: dir, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 1 || rep.Scenarios[0].Name != "tiny" {
		t.Fatalf("quick ran %+v, want only the cheapest (tiny)", rep.Scenarios)
	}
}

// TestStormBadCorpus: an empty directory and an invalid scenario are errors,
// not silent passes.
func TestStormBadCorpus(t *testing.T) {
	if _, err := Run(Options{Dir: t.TempDir()}); err == nil {
		t.Error("empty corpus passed")
	}
	dir := writeCorpus(t, map[string]string{"bad.json": `{"arrival":{"kind":"warp"}}`})
	if _, err := Run(Options{Dir: dir}); err == nil {
		t.Error("invalid scenario passed")
	}
}

// TestStormLedgerLeakFails: a scenario whose band is impossible must fail
// after exactly the attempt budget — the retry loop must not spin forever.
func TestStormImpossibleBandFails(t *testing.T) {
	impossible := `{
  "name": "impossible", "seed": 3,
  "arrival": {"kind": "poisson", "rate": 50},
  "mix": [{"name": "base", "weight": 1, "profile": {"preProcess": "1ms", "qpuService": "400µs"}}],
  "system": {"kind": "shared", "hosts": 2},
  "horizon": {"jobs": 10},
  "band": {"lo": 1e-9, "hi": 2e-9}
}`
	dir := writeCorpus(t, map[string]string{"impossible.json": impossible})
	rep, err := Run(Options{Dir: dir, Attempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass || rep.Scenarios[0].Pass {
		t.Fatal("impossible band passed")
	}
	if rep.Scenarios[0].Attempts != 2 {
		t.Errorf("consumed %d attempts, want the full budget of 2", rep.Scenarios[0].Attempts)
	}
}

// TestRealCorpusShape validates the shipped scenarios/ corpus without live
// replay: every file decodes, declares a band, and its DES prediction
// completes with a conserved ledger. The live halves are covered by the
// `splitexec storm -quick` CI smoke and the full soak run.
func TestRealCorpusShape(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil || len(files) < 8 {
		t.Fatalf("corpus glob: %d files, err %v (want >= 8)", len(files), err)
	}
	seen := map[string]bool{}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := workload.Decode(data)
		if err != nil {
			t.Fatalf("%s: %v", filepath.Base(f), err)
		}
		if sc.Name == "" || seen[sc.Name] {
			t.Errorf("%s: missing or duplicate scenario name %q", filepath.Base(f), sc.Name)
		}
		seen[sc.Name] = true
		if sc.Band == nil {
			t.Errorf("%s: corpus scenarios must declare their acceptance band", filepath.Base(f))
		}
		r, err := des.Simulate(sc, des.Options{})
		if err != nil {
			t.Fatalf("%s: DES: %v", filepath.Base(f), err)
		}
		if r.Jobs+r.Failed != r.Admitted {
			t.Errorf("%s: DES ledger leak: %d + %d != %d", filepath.Base(f), r.Jobs, r.Failed, r.Admitted)
		}
		if r.Sojourn.P99 <= 0 {
			t.Errorf("%s: degenerate DES p99 %v", filepath.Base(f), r.Sojourn.P99)
		}
		// The corpus is sized for CI: a scenario's virtual span must stay
		// seconds-scale so the live replay finishes promptly.
		if r.End > 10*time.Second {
			t.Errorf("%s: virtual span %v too long for a CI soak", filepath.Base(f), r.End)
		}
	}
}
