package storm

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/des"
	"github.com/splitexec/splitexec/internal/loadgen"
	"github.com/splitexec/splitexec/internal/obs"
	"github.com/splitexec/splitexec/internal/service"
	"github.com/splitexec/splitexec/internal/workload"
)

// writeCorpus drops scenario files into a temp dir and returns it.
func writeCorpus(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// tinyScenario is a seconds-scale live-replayable scenario with a wide band
// (unit tests must not flake on a loaded CI core).
const tinyScenario = `{
  "name": "tiny",
  "seed": 13,
  "arrival": {"kind": "poisson", "rate": 50},
  "mix": [{"name": "base", "weight": 1,
           "profile": {"preProcess": "1ms", "qpuService": "400µs", "postProcess": "200µs"}}],
  "system": {"kind": "shared", "hosts": 2},
  "horizon": {"jobs": 30},
  "band": {"lo": 0.1, "hi": 50}
}`

// TestStormRunTiny drives the full predict→replay→judge pipeline over
// loopback TCP on a one-scenario corpus.
func TestStormRunTiny(t *testing.T) {
	dir := writeCorpus(t, map[string]string{"tiny.json": tinyScenario})
	var log bytes.Buffer
	rep, err := Run(Options{Dir: dir, Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 1 {
		t.Fatalf("ran %d scenarios, want 1", len(rep.Scenarios))
	}
	res := rep.Scenarios[0]
	if !res.Pass || !rep.Pass {
		t.Fatalf("tiny scenario failed: %+v\nlog:\n%s", res, log.String())
	}
	if res.Jobs+res.Failed != 30 {
		t.Errorf("client ledger %d + %d != 30 admitted", res.Jobs, res.Failed)
	}
	if res.DESP99 <= 0 || res.LiveP99 <= 0 || res.Ratio <= 0 {
		t.Errorf("degenerate measurements: %+v", res)
	}
	// The report is CI-consumable JSON.
	data, err := EncodeReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	var round Report
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("report not round-trippable: %v", err)
	}
	if round.Pass != rep.Pass || len(round.Scenarios) != 1 {
		t.Errorf("report round trip changed the verdict")
	}
}

// TestStormQuickPicksCheapest: Quick mode must deterministically run only
// the scenario with the fewest horizon jobs.
func TestStormQuickPicksCheapest(t *testing.T) {
	expensive := `{
  "name": "expensive", "seed": 1,
  "arrival": {"kind": "poisson", "rate": 50},
  "mix": [{"name": "base", "weight": 1, "profile": {"preProcess": "1ms", "qpuService": "400µs"}}],
  "system": {"kind": "shared", "hosts": 2},
  "horizon": {"jobs": 500},
  "band": {"lo": 0.1, "hi": 50}
}`
	dir := writeCorpus(t, map[string]string{
		// Lexicographically before tiny.json, so a naive "first file" pick
		// would choose wrong.
		"aaa-expensive.json": expensive,
		"tiny.json":          tinyScenario,
	})
	rep, err := Run(Options{Dir: dir, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 1 || rep.Scenarios[0].Name != "tiny" {
		t.Fatalf("quick ran %+v, want only the cheapest (tiny)", rep.Scenarios)
	}
}

// TestStormBadCorpus: an empty directory and an invalid scenario are errors,
// not silent passes.
func TestStormBadCorpus(t *testing.T) {
	if _, err := Run(Options{Dir: t.TempDir()}); err == nil {
		t.Error("empty corpus passed")
	}
	dir := writeCorpus(t, map[string]string{"bad.json": `{"arrival":{"kind":"warp"}}`})
	if _, err := Run(Options{Dir: dir}); err == nil {
		t.Error("invalid scenario passed")
	}
}

// TestStormLedgerLeakFails: a scenario whose band is impossible must fail
// after exactly the attempt budget — the retry loop must not spin forever.
func TestStormImpossibleBandFails(t *testing.T) {
	impossible := `{
  "name": "impossible", "seed": 3,
  "arrival": {"kind": "poisson", "rate": 50},
  "mix": [{"name": "base", "weight": 1, "profile": {"preProcess": "1ms", "qpuService": "400µs"}}],
  "system": {"kind": "shared", "hosts": 2},
  "horizon": {"jobs": 10},
  "band": {"lo": 1e-9, "hi": 2e-9}
}`
	dir := writeCorpus(t, map[string]string{"impossible.json": impossible})
	rep, err := Run(Options{Dir: dir, Attempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass || rep.Scenarios[0].Pass {
		t.Fatal("impossible band passed")
	}
	if rep.Scenarios[0].Attempts != 2 {
		t.Errorf("consumed %d attempts, want the full budget of 2", rep.Scenarios[0].Attempts)
	}
}

// TestStormObsSelfScrape: with ObsAddr set the runner serves its own admin
// endpoint during the replay, scrapes /metrics + /healthz afterwards, and
// records the verdict — the CI configuration of the storm smoke.
func TestStormObsSelfScrape(t *testing.T) {
	dir := writeCorpus(t, map[string]string{"tiny.json": tinyScenario})
	rep, err := Run(Options{Dir: dir, ObsAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Scenarios[0]
	if !res.Pass {
		t.Fatalf("tiny scenario failed under -obs: %+v", res)
	}
	if res.Obs != "ok" {
		t.Fatalf("self-scrape verdict %q, want ok", res.Obs)
	}
}

// TestStormMembershipReplay is the live elastic-membership acceptance at
// the storm layer: a scenario that joins a third shard mid-run and then
// drains shard 0 replays against a real router over loopback TCP, fires
// the AddShard/DrainShard hooks from the schedule, and must conserve the
// job ledger across both epoch flips while the live p99 stays inside the
// DES band.
func TestStormMembershipReplay(t *testing.T) {
	elastic := `{
  "name": "elastic", "seed": 29,
  "arrival": {"kind": "poisson", "rate": 120},
  "mix": [
    {"name": "alpha", "weight": 1, "profile": {"preProcess": "400µs", "qpuService": "3ms", "postProcess": "200µs"}},
    {"name": "beta",  "weight": 1, "profile": {"preProcess": "400µs", "qpuService": "3ms", "postProcess": "200µs"}},
    {"name": "gamma", "weight": 1, "profile": {"preProcess": "400µs", "qpuService": "3ms", "postProcess": "200µs"}},
    {"name": "delta", "weight": 1, "profile": {"preProcess": "400µs", "qpuService": "3ms", "postProcess": "200µs"}}
  ],
  "system": {"kind": "dedicated", "hosts": 2},
  "horizon": {"jobs": 80},
  "cluster": {"shards": 2, "stealThreshold": 4,
    "events": [
      {"kind": "join", "shard": 2, "at": "150ms"},
      {"kind": "drain", "shard": 0, "at": "400ms"}
    ]},
  "band": {"lo": 0.1, "hi": 50}
}`
	dir := writeCorpus(t, map[string]string{"elastic.json": elastic})
	var log bytes.Buffer
	rep, err := Run(Options{Dir: dir, Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Scenarios[0]
	if !res.Pass {
		t.Fatalf("elastic scenario failed: %+v\nlog:\n%s", res, log.String())
	}
	if res.Jobs+res.Failed != 80 {
		t.Errorf("client ledger %d + %d != 80 admitted across the epoch flips", res.Jobs, res.Failed)
	}
	if res.Failed != 0 {
		t.Errorf("%d jobs failed during graceful membership transitions", res.Failed)
	}
	if strings.Contains(log.String(), "storm: join shard=") || strings.Contains(log.String(), "storm: drain shard=") {
		t.Errorf("membership hooks errored:\n%s", log.String())
	}
}

// TestObsReconciliation is the acceptance check for the telemetry layer: a
// live replay's final /metrics counters must reconcile exactly with the
// service's own drain-report ledger — same events, two exports, one story.
func TestObsReconciliation(t *testing.T) {
	sc, err := workload.Decode([]byte(tinyScenario))
	if err != nil {
		t.Fatal(err)
	}
	scope := obs.NewScope()
	svc, err := service.New(service.Options{
		Workers:    sc.System.Hosts,
		Fleet:      sc.System.QPUs(),
		QueueDepth: sc.Horizon.Jobs,
		Obs:        scope,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		svc.Drain()
		t.Fatal(err)
	}
	if _, err := loadgen.Run(sc, loadgen.Options{Addr: addr.String(), Conns: 8, Timeout: 30 * time.Second}); err != nil {
		svc.Drain()
		t.Fatal(err)
	}
	drained := svc.Drain()

	var buf bytes.Buffer
	if err := scope.Reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := obs.ValidateExposition(text); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	sample := func(name string) int64 {
		for _, line := range strings.Split(text, "\n") {
			if rest, ok := strings.CutPrefix(line, name+" "); ok {
				v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
				if err != nil {
					t.Fatalf("unparsable sample %q: %v", line, err)
				}
				return int64(v)
			}
		}
		t.Fatalf("series %s missing from exposition:\n%s", name, text)
		return 0
	}
	if got := sample("splitexec_jobs_submitted_total"); got != int64(drained.Submitted) {
		t.Errorf("submitted counter %d != drain report %d", got, drained.Submitted)
	}
	if got := sample("splitexec_jobs_completed_total"); got != int64(drained.Jobs) {
		t.Errorf("completed counter %d != drain report %d", got, drained.Jobs)
	}
	if got := sample("splitexec_jobs_failed_total"); got != int64(drained.Failed) {
		t.Errorf("failed counter %d != drain report %d", got, drained.Failed)
	}
	// Submitted = Jobs + Failed: the counters must conserve the ledger too.
	if s, c, f := sample("splitexec_jobs_submitted_total"), sample("splitexec_jobs_completed_total"),
		sample("splitexec_jobs_failed_total"); s != c+f {
		t.Errorf("counter ledger leak: %d submitted != %d completed + %d failed", s, c, f)
	}
	if got := sample("splitexec_sojourn_seconds_count"); got != int64(drained.Jobs) {
		t.Errorf("sojourn histogram count %d != %d completed", got, drained.Jobs)
	}
	if got := sample("splitexec_queue_depth"); got != 0 {
		t.Errorf("queue depth %d after drain, want 0", got)
	}
}

// TestRealCorpusShape validates the shipped scenarios/ corpus without live
// replay: every file decodes, declares a band, and its DES prediction
// completes with a conserved ledger. The live halves are covered by the
// `splitexec storm -quick` CI smoke and the full soak run.
func TestRealCorpusShape(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil || len(files) < 8 {
		t.Fatalf("corpus glob: %d files, err %v (want >= 8)", len(files), err)
	}
	seen := map[string]bool{}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := workload.Decode(data)
		if err != nil {
			t.Fatalf("%s: %v", filepath.Base(f), err)
		}
		if sc.Name == "" || seen[sc.Name] {
			t.Errorf("%s: missing or duplicate scenario name %q", filepath.Base(f), sc.Name)
		}
		seen[sc.Name] = true
		if sc.Band == nil {
			t.Errorf("%s: corpus scenarios must declare their acceptance band", filepath.Base(f))
		}
		r, err := des.Simulate(sc, des.Options{})
		if err != nil {
			t.Fatalf("%s: DES: %v", filepath.Base(f), err)
		}
		if r.Jobs+r.Failed != r.Admitted {
			t.Errorf("%s: DES ledger leak: %d + %d != %d", filepath.Base(f), r.Jobs, r.Failed, r.Admitted)
		}
		if r.Sojourn.P99 <= 0 {
			t.Errorf("%s: degenerate DES p99 %v", filepath.Base(f), r.Sojourn.P99)
		}
		// The corpus is sized for CI: a scenario's virtual span must stay
		// seconds-scale so the live replay finishes promptly.
		if r.End > 10*time.Second {
			t.Errorf("%s: virtual span %v too long for a CI soak", filepath.Base(f), r.End)
		}
	}
}
