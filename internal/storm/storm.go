// Package storm is the soak-test runner over the adversarial scenario
// corpus: for every scenario file in a directory it predicts the latency
// distributions with the discrete-event simulator, then replays the same
// scenario — faults included — against a live dispatch service over real
// TCP, and checks that the measured p99 sojourn lands inside the scenario's
// declared DES-vs-live acceptance band and that the completion ledger
// conserves jobs (completed + failed == submitted). It is the engine behind
// `splitexec storm` and the end-to-end gate that keeps the simulator, the
// live service and the fault-injection machinery telling the same story.
package storm

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/splitexec/splitexec/internal/des"
	"github.com/splitexec/splitexec/internal/loadgen"
	"github.com/splitexec/splitexec/internal/obs"
	"github.com/splitexec/splitexec/internal/router"
	"github.com/splitexec/splitexec/internal/service"
	"github.com/splitexec/splitexec/internal/workload"
)

// DefaultBand is the acceptance band a scenario gets when it declares none:
// live p99 sojourn within [0.5, 2.5] × the DES prediction. Scenario files
// narrow or widen it per their own noise regime via the "band" field.
var DefaultBand = workload.Band{Lo: 0.5, Hi: 2.5}

// Options configure a storm run.
type Options struct {
	// Dir is the scenario corpus directory; every *.json file in it is one
	// scenario (lexicographic order).
	Dir string
	// Quick runs only the corpus's cheapest scenario (fewest horizon jobs,
	// ties broken by name) — the CI smoke configuration.
	Quick bool
	// Scenario, when non-empty, restricts the run to corpus entries whose
	// scenario name or file name (with or without .json) matches exactly.
	// Applied before Quick, so -quick -scenario X smoke-tests X itself.
	Scenario string
	// Attempts is the per-scenario retry budget for the band check: tail
	// latency under injected chaos is noisy, so a scenario passes if any
	// attempt lands in band. Values <= 0 select 3.
	Attempts int
	// Log, when non-nil, receives one progress line per attempt.
	Log io.Writer
	// ObsAddr, when non-empty, serves the telemetry admin endpoint on that
	// address during every live replay attempt and turns the storm run into
	// its own observability gate: after each replay drains, the runner
	// scrapes its own /metrics and /healthz and fails the scenario if the
	// exposition is malformed or the health document undecodable. Use
	// "127.0.0.1:0" so successive attempts never collide on a port.
	ObsAddr string
}

// ScenarioResult is the verdict for one corpus scenario.
type ScenarioResult struct {
	Name string `json:"name"`
	File string `json:"file"`
	Pass bool   `json:"pass"`
	// Attempts is how many live replays the verdict consumed.
	Attempts int `json:"attempts"`
	// DESP99 and LiveP99 are the predicted and measured p99 sojourns of
	// the deciding attempt; Ratio is live over predicted, checked against
	// Band.
	DESP99  time.Duration `json:"desP99"`
	LiveP99 time.Duration `json:"liveP99"`
	Ratio   float64       `json:"ratio"`
	Band    workload.Band `json:"band"`
	// Ledger of the deciding attempt: jobs completed and failed against
	// indices consumed, plus the fault counters the run realized.
	Jobs      int `json:"jobs"`
	Failed    int `json:"failed"`
	Submitted int `json:"submitted"`
	Retries   int `json:"retries,omitempty"`
	Drops     int `json:"drops,omitempty"`
	// Stolen and Redispatched cite the router-tier routing metadata of the
	// deciding attempt — jobs answered off a non-home shard, and re-dispatch
	// hops consumed recovering from shard loss. Single-shard scenarios have
	// neither. They come from the per-response wire routing stamps, so the
	// storm verdict and a live /jobz scrape describe the same decisions.
	Stolen       int `json:"stolen,omitempty"`
	Redispatched int `json:"redispatched,omitempty"`
	// Obs is the admin-endpoint self-scrape verdict when the run was started
	// with ObsAddr: "ok", or the malformation that failed the scenario.
	Obs   string `json:"obs,omitempty"`
	Error string `json:"error,omitempty"`
}

// Report is the aggregate pass/fail verdict of a storm run; it marshals to
// JSON for the -json flag and CI consumption.
type Report struct {
	Pass      bool             `json:"pass"`
	Scenarios []ScenarioResult `json:"scenarios"`
}

// Run executes the corpus and returns the aggregate report. An unreadable
// corpus is an error; a failing scenario is a Pass=false report, not an
// error, so the caller can render the whole verdict.
func Run(opts Options) (*Report, error) {
	if opts.Attempts <= 0 {
		opts.Attempts = 3
	}
	scenarios, err := loadCorpus(opts.Dir)
	if err != nil {
		return nil, err
	}
	if opts.Scenario != "" {
		var keep []corpusEntry
		for _, e := range scenarios {
			if e.sc.Name == opts.Scenario || e.file == opts.Scenario ||
				e.file == opts.Scenario+".json" {
				keep = append(keep, e)
			}
		}
		if len(keep) == 0 {
			return nil, fmt.Errorf("storm: no corpus scenario matches %q", opts.Scenario)
		}
		scenarios = keep
	}
	if opts.Quick {
		scenarios = scenarios[:1]
	}
	rep := &Report{Pass: true}
	for _, entry := range scenarios {
		res := runScenario(entry, opts)
		rep.Scenarios = append(rep.Scenarios, res)
		if !res.Pass {
			rep.Pass = false
		}
	}
	return rep, nil
}

// corpusEntry pairs a decoded scenario with its source file.
type corpusEntry struct {
	file string
	sc   *workload.Scenario
}

// loadCorpus reads and validates every scenario in dir, cheapest first so
// Quick mode has a deterministic pick.
func loadCorpus(dir string) ([]corpusEntry, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("storm: no scenario files in %q", dir)
	}
	sort.Strings(files)
	entries := make([]corpusEntry, 0, len(files))
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		sc, err := workload.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("storm: %s: %w", filepath.Base(f), err)
		}
		entries = append(entries, corpusEntry{file: filepath.Base(f), sc: sc})
	}
	sort.SliceStable(entries, func(i, j int) bool {
		a, b := entries[i].sc.Horizon.Jobs, entries[j].sc.Horizon.Jobs
		if a != b {
			return a < b
		}
		return entries[i].file < entries[j].file
	})
	return entries, nil
}

// runScenario predicts, replays and judges one scenario, retrying the live
// replay up to the attempt budget.
func runScenario(entry corpusEntry, opts Options) ScenarioResult {
	sc := entry.sc
	res := ScenarioResult{Name: sc.Name, File: entry.file, Band: band(sc)}
	pred, err := des.Simulate(sc, des.Options{})
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.DESP99 = pred.Sojourn.P99
	for attempt := 1; attempt <= opts.Attempts; attempt++ {
		res.Attempts = attempt
		if err := replayLive(sc, pred, &res, opts); err != nil {
			res.Error = err.Error()
			return res
		}
		logf(opts.Log, "storm: %s attempt %d/%d: p99 %v vs DES %v (%.2fx, band [%.2f, %.2f]) jobs=%d failed=%d stolen=%d redispatched=%d pass=%v",
			res.Name, attempt, opts.Attempts, res.LiveP99, res.DESP99, res.Ratio, res.Band.Lo, res.Band.Hi,
			res.Jobs, res.Failed, res.Stolen, res.Redispatched, res.Pass)
		if res.Pass {
			return res
		}
	}
	return res
}

// replayLive brings up the scenario's deployment, serves it over loopback
// TCP, replays the workload (faults included) through the load generator,
// drains, and fills in the attempt's measurements and verdict. Cluster
// scenarios bring up the full federation: one service per shard behind a
// router front end, with shard faults driven through the router's
// membership hooks.
func replayLive(sc *workload.Scenario, pred *des.Result, res *ScenarioResult, opts Options) error {
	if sc.TotalShards() > 1 {
		// Federated now or later: a single-shard scenario that schedules a
		// join is still a cluster replay.
		return replayCluster(sc, pred, res, opts)
	}
	depth := sc.Horizon.Jobs
	if depth <= 0 {
		depth = 1024
	}
	// One telemetry scope per attempt, handed to the serving side only: the
	// in-process service feeds the drift alarm with its authoritative
	// sojourns, so the generator must not observe the same jobs again.
	scope := replayScope(opts, sc, pred)
	svcOpts := service.Options{
		Workers:    sc.System.Hosts,
		Fleet:      sc.System.QPUs(),
		QueueDepth: depth,
		Policy:     sc.Policy,
		Obs:        scope,
	}
	if sc.Faults != nil {
		svcOpts.MaxRetries = sc.RetryLimit()
		svcOpts.RetryBackoff = sc.RetryBackoff()
	}
	svc, err := service.New(svcOpts)
	if err != nil {
		return err
	}
	admin, err := serveObs(opts.ObsAddr, scope)
	if err != nil {
		svc.Drain()
		return err
	}
	addr, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		svc.Drain()
		admin.Close()
		return err
	}
	got, err := loadgen.Run(sc, loadgen.Options{
		Addr:    addr.String(),
		Conns:   conns(sc),
		Timeout: 30 * time.Second,
		// The storm runner owns both halves of the wire, so it can hand
		// the serving fleet to the generator for device-fault injection.
		Fleet: svc,
	})
	drained := svc.Drain()
	// Scrape after the drain so the exposition the gate validates carries
	// the settled counters, then release the admin port for the next attempt.
	scrapeErr := selfScrape(admin)
	admin.Close()
	if err != nil {
		return err
	}
	res.Jobs = got.Jobs
	res.Failed = got.Failed
	res.Retries = got.Retries
	res.Drops = got.Drops
	res.Stolen = got.Stolen
	res.Redispatched = got.Redispatched
	res.Submitted = drained.Submitted
	res.LiveP99 = got.Sojourn.P99
	res.Ratio = 0
	if pred.Sojourn.P99 > 0 {
		res.Ratio = float64(got.Sojourn.P99) / float64(pred.Sojourn.P99)
	}
	// The verdict: p99 in band, and the ledger conserves jobs. Fatal
	// drops never reach the service, so client-observed completions plus
	// failures must cover every admitted index on the client side, while
	// the server's own ledger must balance what it was handed.
	conserved := drained.Jobs+drained.Failed == drained.Submitted
	res.Pass = conserved && res.Ratio >= res.Band.Lo && res.Ratio <= res.Band.Hi
	if !conserved {
		res.Error = fmt.Sprintf("ledger leak: %d completed + %d failed != %d submitted",
			drained.Jobs, drained.Failed, drained.Submitted)
	}
	return judgeScrape(res, admin, scrapeErr)
}

// replayScope builds the per-attempt telemetry scope when the run asked for
// one, drift alarm armed from the attempt's own DES prediction wrapped in
// the scenario's acceptance band — the same numbers the band verdict uses.
func replayScope(opts Options, sc *workload.Scenario, pred *des.Result) *obs.Scope {
	if opts.ObsAddr == "" {
		return nil
	}
	scope := obs.NewScope()
	if alarm := obs.NewDriftAlarm(pred.SojournBands(band(sc)), obs.DriftOptions{
		Gauge: scope.Reg.Gauge("splitexec_drift_alarm"),
	}); alarm != nil {
		scope.SetDrift(alarm)
	}
	return scope
}

// serveObs brings up the admin endpoint for one replay attempt; an empty
// addr keeps telemetry off and returns a nil (close-safe) server.
func serveObs(addr string, scope *obs.Scope) (*obs.Server, error) {
	if addr == "" {
		return nil, nil
	}
	srv, err := obs.Serve(addr, obs.ServerOptions{Scope: scope})
	if err != nil {
		return nil, fmt.Errorf("storm: admin endpoint: %w", err)
	}
	return srv, nil
}

// selfScrape is the observability half of the storm gate: it pulls the live
// admin endpoint's /metrics through the exposition validator and requires
// /healthz to answer with a decodable JSON document. A 503 is acceptable —
// a drift alarm legitimately tripped by an adversarial scenario is the
// endpoint working, not malfunctioning — but junk output is a failure.
func selfScrape(srv *obs.Server) error {
	if srv == nil {
		return nil
	}
	base := "http://" + srv.Addr().String()
	client := &http.Client{Timeout: 5 * time.Second} // a wedged endpoint must fail, not hang CI
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("scraping /metrics: %w", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("reading /metrics: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics returned %s", resp.Status)
	}
	if err := obs.ValidateExposition(string(body)); err != nil {
		return fmt.Errorf("malformed /metrics exposition: %w", err)
	}
	hres, err := client.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("scraping /healthz: %w", err)
	}
	hbody, herr := io.ReadAll(hres.Body)
	hres.Body.Close()
	if herr != nil {
		return fmt.Errorf("reading /healthz: %w", herr)
	}
	switch hres.StatusCode {
	case http.StatusOK:
		// Healthy is the plain-text liveness answer.
		if strings.TrimSpace(string(hbody)) != "ok" {
			return fmt.Errorf("/healthz answered 200 with body %q, want ok", hbody)
		}
	case http.StatusServiceUnavailable:
		// Unhealthy must name its failures as a JSON document — a tripped
		// drift alarm under chaos is a valid answer, garbage is not.
		var fails []struct {
			Name  string `json:"name"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(hbody, &fails); err != nil {
			return fmt.Errorf("undecodable /healthz failure document: %w", err)
		}
		if len(fails) == 0 {
			return fmt.Errorf("/healthz answered 503 without naming a failure")
		}
	default:
		return fmt.Errorf("/healthz returned %s", hres.Status)
	}
	return nil
}

// judgeScrape folds the self-scrape verdict into the scenario result: a
// malformed endpoint fails the scenario even when the latency band passed.
func judgeScrape(res *ScenarioResult, admin *obs.Server, scrapeErr error) error {
	if admin == nil {
		return nil
	}
	if scrapeErr != nil {
		res.Obs = scrapeErr.Error()
		res.Pass = false
		if res.Error == "" {
			res.Error = "obs self-scrape: " + scrapeErr.Error()
		}
		return nil
	}
	res.Obs = "ok"
	return nil
}

// replayCluster realizes a federated scenario: one live service per shard
// behind a router front end, the load generator driving the router over
// TCP. A declared shard fault is applied through the router's membership
// hooks — FailShard interrupts the victim's in-flight round trips exactly
// as a crashed shard would, and RestoreShard re-admits it when the outage
// window closes — so the re-dispatch machinery is exercised on the real
// wire. A membership schedule replays the same way: every slot a join will
// ever claim is provisioned up front (mirroring the DES's shard table), the
// router starts over the initial members only, and each event fires the
// elastic hooks — AddShard warms and admits the joiner's backend,
// DrainShard retires a member gracefully — at its scheduled wall-clock
// offset. The conservation check aggregates the per-shard ledgers, so a
// job lost (or double-completed) across an epoch flip fails the scenario
// even when the latency band passes.
func replayCluster(sc *workload.Scenario, pred *des.Result, res *ScenarioResult, opts Options) error {
	shards := sc.TotalShards()
	depth := sc.Horizon.Jobs
	if depth <= 0 {
		depth = 1024
	}
	// In the federation the scope instruments the router and the generator;
	// the per-shard services stay unscoped (their gauges are unlabelled, so
	// N shards on one registry would collide), and the generator — driving a
	// remote target — owns the drift-alarm feed.
	scope := replayScope(opts, sc, pred)
	svcOpts := service.Options{
		Workers:    sc.System.Hosts,
		Fleet:      sc.System.QPUs(),
		QueueDepth: depth,
		Policy:     sc.Policy,
	}
	if sc.Faults != nil {
		svcOpts.MaxRetries = sc.RetryLimit()
		svcOpts.RetryBackoff = sc.RetryBackoff()
	}
	svcs := make([]*service.Service, 0, shards)
	drainAll := func() (jobs, failed, submitted int) {
		for _, svc := range svcs {
			d := svc.Drain()
			jobs += d.Jobs
			failed += d.Failed
			submitted += d.Submitted
		}
		return
	}
	addrs := make([]string, 0, shards)
	for i := 0; i < shards; i++ {
		svc, err := service.New(svcOpts)
		if err != nil {
			drainAll()
			return err
		}
		svcs = append(svcs, svc)
		addr, err := svc.Listen("127.0.0.1:0")
		if err != nil {
			drainAll()
			return err
		}
		addrs = append(addrs, addr.String())
	}

	rtOpts := router.Options{
		Shards:         addrs[:sc.ShardCount()], // joiners enter via AddShard
		QueueDepth:     depth,
		StealThreshold: sc.StealThreshold(),
		PingEvery:      -1, // membership is driven by the fault schedule
		Obs:            scope,
	}
	if sc.Cluster != nil {
		rtOpts.Replicas = sc.Cluster.Replicas
	}
	if sc.Faults != nil {
		rtOpts.MaxRetries = sc.RetryLimit()
		rtOpts.Backoff = sc.RetryBackoff()
	}
	rt, err := router.New(rtOpts)
	if err != nil {
		drainAll()
		return err
	}
	front, err := rt.Listen("127.0.0.1:0")
	if err != nil {
		rt.Drain()
		drainAll()
		return err
	}
	admin, err := serveObs(opts.ObsAddr, scope)
	if err != nil {
		rt.Drain()
		drainAll()
		return err
	}

	var timers []*time.Timer
	if sc.HasShardFault() {
		sf := sc.Faults.Shard
		timers = append(timers, time.AfterFunc(sf.At.D(), func() { rt.FailShard(sf.Shard) }))
		if sf.For > 0 {
			timers = append(timers, time.AfterFunc((sf.At+sf.For).D(), func() { rt.RestoreShard(sf.Shard) }))
		}
	}
	// The membership schedule drives the same elastic hooks `splitexec
	// admin` does. Joins are validated to claim fresh slots in order, so
	// AddShard assigns exactly the slot index the scenario names. Errors are
	// deliberately not fatal here — a drain refused because a crash-fault
	// already emptied the ring shows up in the band/ledger verdict instead.
	for _, me := range sc.MemberEvents() {
		me := me
		timers = append(timers, time.AfterFunc(me.At.D(), func() {
			if me.Kind == workload.JoinEvent {
				if _, _, err := rt.AddShard(addrs[me.Shard]); err != nil {
					logf(opts.Log, "storm: join shard=%d: %v", me.Shard, err)
				}
			} else if err := rt.DrainShard(me.Shard); err != nil {
				logf(opts.Log, "storm: drain shard=%d: %v", me.Shard, err)
			}
		}))
	}

	got, lerr := loadgen.Run(sc, loadgen.Options{
		Addr:    front.String(),
		Conns:   clusterConns(sc),
		Timeout: 30 * time.Second,
		Obs:     scope,
		// The per-shard fleets take the scenario's global device-fault
		// streams, shard i owning devices [i×QPUs, (i+1)×QPUs).
		Fleets: svcs,
	})
	for _, t := range timers {
		t.Stop()
	}
	rt.Drain()
	jobs, failed, submitted := drainAll()
	scrapeErr := selfScrape(admin)
	admin.Close()
	if lerr != nil {
		return lerr
	}

	res.Jobs = got.Jobs
	res.Failed = got.Failed
	res.Retries = got.Retries
	res.Drops = got.Drops
	res.Stolen = got.Stolen
	res.Redispatched = got.Redispatched
	res.Submitted = submitted
	res.LiveP99 = got.Sojourn.P99
	res.Ratio = 0
	if pred.Sojourn.P99 > 0 {
		res.Ratio = float64(got.Sojourn.P99) / float64(pred.Sojourn.P99)
	}
	// Every shard's own ledger must balance — a router re-dispatch shows up
	// as a fresh submission on the survivor, so the aggregate balances too.
	conserved := jobs+failed == submitted
	res.Pass = conserved && res.Ratio >= res.Band.Lo && res.Ratio <= res.Band.Hi
	if !conserved {
		res.Error = fmt.Sprintf("cluster ledger leak: %d completed + %d failed != %d submitted",
			jobs, failed, submitted)
	}
	return judgeScrape(res, admin, scrapeErr)
}

// clusterConns scales the replay pool to the federation width.
func clusterConns(sc *workload.Scenario) int {
	n := conns(sc) * sc.ShardCount()
	if n > 128 {
		n = 128
	}
	return n
}

// band resolves the scenario's acceptance band.
func band(sc *workload.Scenario) workload.Band {
	if sc.Band != nil {
		return *sc.Band
	}
	return DefaultBand
}

// conns sizes the replay connection pool for the scenario's concurrency.
func conns(sc *workload.Scenario) int {
	n := 4 * sc.System.Hosts
	if n < 16 {
		n = 16
	}
	if n > 64 {
		n = 64
	}
	return n
}

func logf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}

// EncodeReport renders the report as indented JSON.
func EncodeReport(r *Report) ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
