package parallel

import "testing"

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRand(1).Int63() == NewRand(2).Int63() {
		t.Fatal("different seeds collided on first draw")
	}
}

func TestNewRandUniformish(t *testing.T) {
	// Crude uniformity check: mean of 100k draws in [0,1) near 1/2.
	r := NewRand(7)
	sum := 0.0
	const n = 100_000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean = %v, want ≈ 0.5", mean)
	}
}
