package parallel

import (
	"math/rand"
	"testing"

	"github.com/splitexec/splitexec/internal/embed"
	"github.com/splitexec/splitexec/internal/graph"
)

func TestQubitCountAndMaxChain(t *testing.T) {
	vm := graph.VertexModel{
		0: {1, 2, 3},
		1: {4},
		2: {5, 6},
	}
	if got := QubitCount(vm); got != 6 {
		t.Fatalf("QubitCount = %d, want 6", got)
	}
	if got := MaxChainLength(vm); got != 3 {
		t.Fatalf("MaxChainLength = %d, want 3", got)
	}
	if QubitCount(nil) != 0 || MaxChainLength(nil) != 0 {
		t.Fatal("nil vertex model should score 0")
	}
}

func TestFindEmbeddingParallelValid(t *testing.T) {
	hw := graph.Vesuvius().Graph()
	g := graph.Complete(8)
	res, err := FindEmbedding(g, hw, EmbedOptions{Workers: 4, Seeds: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded == 0 {
		t.Fatal("no restart succeeded")
	}
	if res.Succeeded+res.Failed != 8 {
		t.Fatalf("accounting: %d + %d != 8", res.Succeeded, res.Failed)
	}
	if err := graph.ValidateMinor(g, hw, res.VM, true); err != nil {
		t.Fatalf("best embedding invalid: %v", err)
	}
	if res.Quality != float64(QubitCount(res.VM)) {
		t.Fatalf("quality %v disagrees with qubit count %d", res.Quality, QubitCount(res.VM))
	}
	if res.Stats.Tries == 0 || res.Stats.DijkstraRuns == 0 {
		t.Fatal("aggregate stats empty")
	}
}

func TestFindEmbeddingParallelReproducible(t *testing.T) {
	hw := graph.Vesuvius().Graph()
	g := graph.Complete(6)
	opts := EmbedOptions{Workers: 3, Seeds: 6, Seed: 42}
	a, err := FindEmbedding(g, hw, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FindEmbedding(g, hw, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Quality != b.Quality || a.Succeeded != b.Succeeded {
		t.Fatalf("same seed differed: %+v vs %+v", a, b)
	}
}

func TestFindEmbeddingBestOfKNotWorseThanSingle(t *testing.T) {
	hw := graph.Vesuvius().Graph()
	g := graph.GNP(10, 0.45, rand.New(rand.NewSource(3)))
	single, err := FindEmbedding(g, hw, EmbedOptions{Workers: 1, Seeds: 1, Seed: 9})
	if err != nil {
		t.Skip("single-seed run failed; quality comparison not applicable")
	}
	multi, err := FindEmbedding(g, hw, EmbedOptions{Workers: 4, Seeds: 12, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Seed 9 is one of the twelve raced seeds, so best-of-12 can never be
	// worse than that single restart.
	if multi.Quality > single.Quality {
		t.Fatalf("best-of-12 quality %v worse than single %v", multi.Quality, single.Quality)
	}
}

func TestFindEmbeddingParallelFailure(t *testing.T) {
	// K8 cannot embed into a tiny hardware graph: every restart fails.
	hw := graph.Cycle(6)
	g := graph.Complete(8)
	_, err := FindEmbedding(g, hw, EmbedOptions{Workers: 2, Seeds: 4, Seed: 1, Embed: embed.Options{MaxTries: 2}})
	if err == nil {
		t.Fatal("impossible embedding succeeded")
	}
	if _, err := FindEmbedding(nil, hw, EmbedOptions{}); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestFindEmbeddingCustomQuality(t *testing.T) {
	hw := graph.Vesuvius().Graph()
	g := graph.Complete(6)
	res, err := FindEmbedding(g, hw, EmbedOptions{
		Workers: 2, Seeds: 6, Seed: 5,
		Quality: func(vm graph.VertexModel) float64 { return float64(MaxChainLength(vm)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality != float64(MaxChainLength(res.VM)) {
		t.Fatalf("custom quality not applied: %v vs %d", res.Quality, MaxChainLength(res.VM))
	}
}

func TestEmbedBatch(t *testing.T) {
	hw := graph.Vesuvius().Graph()
	gs := []*graph.Graph{
		graph.Complete(5),
		graph.Cycle(12),
		nil,
		graph.Grid(3, 3),
	}
	items, err := EmbedBatch(gs, hw, 4, 7, embed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 4 {
		t.Fatalf("got %d items", len(items))
	}
	for i, it := range items {
		if it.Index != i {
			t.Fatalf("item %d has index %d", i, it.Index)
		}
		if i == 2 {
			if it.Err == nil {
				t.Fatal("nil graph in batch not reported")
			}
			continue
		}
		if it.Err != nil {
			t.Fatalf("graph %d failed: %v", i, it.Err)
		}
		if err := graph.ValidateMinor(gs[i], hw, it.VM, true); err != nil {
			t.Fatalf("graph %d embedding invalid: %v", i, err)
		}
	}
	if _, err := EmbedBatch(gs, nil, 1, 1, embed.Options{}); err == nil {
		t.Fatal("nil hardware accepted")
	}
}

func TestEmbedBatchDefaultWorkers(t *testing.T) {
	hw := graph.Vesuvius().Graph()
	items, err := EmbedBatch([]*graph.Graph{graph.Cycle(4)}, hw, 0, 3, embed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if items[0].Err != nil {
		t.Fatal(items[0].Err)
	}
}
