package parallel

import "math/rand"

// splitmix64 is a rand.Source64 with O(1) seeding and a ~1.5 ns step,
// against the multi-microsecond seeding of math/rand's default source. The
// per-read RNG streams of the annealing substrate are created (one per
// readout) from DeriveSeed-separated seeds, so cheap construction matters
// as much as cheap generation.
type splitmix64 struct{ state uint64 }

func (s *splitmix64) Uint64() uint64 { return SplitMix64(&s.state) }

func (s *splitmix64) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitmix64) Seed(seed int64) { s.state = uint64(seed) }

// NewRand returns a deterministic *rand.Rand over a splitmix64 source. Use
// it for the short-lived per-item streams of parallel fan-outs (one stream
// per annealing read, sweep point, or batch job), where constructing a
// default math/rand source per item would dominate the item's own work.
func NewRand(seed int64) *rand.Rand { return rand.New(&splitmix64{state: uint64(seed)}) }
