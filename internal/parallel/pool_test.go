package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachVisitsEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 100} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 37
			var hits [n]atomic.Int32
			if err := ForEach(n, workers, func(i int) error {
				hits[i].Add(1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Errorf("index %d visited %d times", i, got)
				}
			}
		})
	}
}

func TestForEachEmptyAndNegative(t *testing.T) {
	called := false
	if err := ForEach(0, 4, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(-3, 4, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	boom := errors.New("boom")
	other := errors.New("other")
	for _, workers := range []int{1, 4} {
		err := ForEach(64, workers, func(i int) error {
			switch i {
			case 5:
				return boom
			case 40:
				return other
			}
			return nil
		})
		// Index 5 always runs before the pool drains; with one worker it
		// is reached strictly first, and with several it fails before any
		// worker can reach index 40 (39 successes must complete first).
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: err = %v, want boom", workers, err)
		}
	}
}

func TestForEachStopsHandingOutWorkAfterError(t *testing.T) {
	var ran atomic.Int32
	err := ForEach(1000, 2, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("early")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error lost")
	}
	if got := ran.Load(); got > 500 {
		t.Errorf("ran %d of 1000 indices after early failure", got)
	}
}

func TestForEachSerialStopsImmediately(t *testing.T) {
	var ran int
	err := ForEach(100, 1, func(i int) error {
		ran++
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || ran != 4 {
		t.Fatalf("ran=%d err=%v, want 4 and error", ran, err)
	}
}

func TestDeriveSeedStreamsAreDistinct(t *testing.T) {
	seen := map[int64]int{}
	for base := int64(0); base < 4; base++ {
		for i := 0; i < 1000; i++ {
			seen[DeriveSeed(base, i)]++
		}
	}
	for s, n := range seen {
		if n > 1 {
			t.Fatalf("seed %d produced %d times", s, n)
		}
	}
	if DeriveSeed(1, 2) != DeriveSeed(1, 2) {
		t.Fatal("DeriveSeed not deterministic")
	}
}
