package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) on a bounded pool of workers
// (workers <= 0 selects GOMAXPROCS; the pool never exceeds n goroutines).
// It is the shared fan-out substrate behind the design-space sweep engine
// (internal/dse) and the batch pipeline front-end (internal/core).
//
// When a call fails the pool stops handing out new indices and ForEach
// returns the error of the lowest failed index it observed; indices after a
// failure may be skipped. With workers == 1 the indices run strictly in
// order on the calling goroutine and the first error returns immediately,
// matching a plain serial loop exactly.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// SplitMix64 advances a splitmix64 generator state and returns its next
// output (Steele, Lea & Flood 2014). It is the one seed-mixing primitive of
// the repo: DeriveSeed, NewRand's source and the annealing kernels' RNG
// seeding all step it, so per-item streams stay mutually consistent.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// DeriveSeed mixes a base seed with an item index into an independent,
// well-separated RNG seed (splitmix64 stepped from the index'th state).
// Every parallel component of the repo derives its per-item streams this
// way so results are reproducible and independent of worker count and
// completion order.
func DeriveSeed(base int64, index int) int64 {
	state := uint64(base) + uint64(index)*0x9E3779B97F4A7C15
	return int64(SplitMix64(&state))
}
