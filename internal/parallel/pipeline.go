package parallel

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// StageCost is the per-stage time of one split-execution job: classical
// pre-processing (stage 1), quantum execution (stage 2) and classical
// post-processing (stage 3).
type StageCost struct {
	Pre  time.Duration
	QPU  time.Duration
	Post time.Duration
}

// Total returns the job's serial time.
func (c StageCost) Total() time.Duration { return c.Pre + c.QPU + c.Post }

// Sequential returns the makespan of running a batch strictly serially —
// the paper's three-stage application model applied to each job in turn.
func Sequential(jobs []StageCost) time.Duration {
	var total time.Duration
	for _, j := range jobs {
		total += j.Total()
	}
	return total
}

// Interval is one scheduled stage execution in a pipeline simulation.
type Interval struct {
	Job      int
	Stage    int // 1, 2 or 3
	Start    time.Duration
	End      time.Duration
	Resource string // "cpu" or "qpu"
}

// Pipelined simulates the batch on one CPU and one QPU with stage overlap:
// while the QPU anneals job i, the CPU pre-processes job i+1 (and
// post-processes finished jobs). Jobs flow FIFO through the stages; the CPU
// serves ready stage-3 work before starting new stage-1 work, which keeps
// completed samples from queueing behind fresh embeddings. The returned
// schedule lists every executed interval for inspection.
//
// This is the "additional parallel strategy" of §4 in executable form: its
// makespan is bounded below by both the total CPU work and the total QPU
// work, so speedup over Sequential is capped by how much stage-2 time can
// hide behind stage-1 — large when embedding dominates (the paper's
// regime), approaching 1 when the QPU dominates.
func Pipelined(jobs []StageCost) (time.Duration, []Interval, error) {
	n := len(jobs)
	if n == 0 {
		return 0, nil, nil
	}
	for i, j := range jobs {
		if j.Pre < 0 || j.QPU < 0 || j.Post < 0 {
			return 0, nil, fmt.Errorf("parallel: job %d has negative stage cost", i)
		}
	}
	var (
		schedule  []Interval
		cpuFree   time.Duration // when the CPU next becomes idle
		qpuFree   time.Duration
		s1Done    = make([]time.Duration, n) // completion time of stage 1
		s2Done    = make([]time.Duration, n)
		next1     = 0     // next job needing stage 1
		ready3    []int   // jobs whose stage 2 finished, FIFO
		pending2  []int   // jobs whose stage 1 finished, FIFO
		remaining = 3 * n // stages left to schedule
		makespan  time.Duration
	)
	for remaining > 0 {
		// QPU is FIFO and depends only on stage-1 completions, so commit all
		// currently unblocked stage-2 work immediately.
		for len(pending2) > 0 {
			j := pending2[0]
			pending2 = pending2[1:]
			start := maxDur(qpuFree, s1Done[j])
			end := start + jobs[j].QPU
			schedule = append(schedule, Interval{j, 2, start, end, "qpu"})
			qpuFree = end
			s2Done[j] = end
			ready3 = append(ready3, j)
			remaining--
		}
		// CPU: one task per round. Prefer post-processing whose input is
		// already available when the CPU frees up — it drains the pipeline
		// without delaying new embeddings; otherwise start the next stage 1;
		// otherwise wait on the QPU for the oldest unfinished job.
		switch {
		case len(ready3) > 0 && (next1 >= n || s2Done[ready3[0]] <= cpuFree):
			j := ready3[0]
			ready3 = ready3[1:]
			start := maxDur(cpuFree, s2Done[j])
			end := start + jobs[j].Post
			schedule = append(schedule, Interval{j, 3, start, end, "cpu"})
			cpuFree = end
			remaining--
			if end > makespan {
				makespan = end
			}
		case next1 < n:
			j := next1
			next1++
			start := cpuFree
			end := start + jobs[j].Pre
			schedule = append(schedule, Interval{j, 1, start, end, "cpu"})
			cpuFree = end
			s1Done[j] = end
			pending2 = append(pending2, j)
			remaining--
			if end > makespan {
				makespan = end
			}
		case remaining > 0:
			return 0, nil, errors.New("parallel: pipeline scheduler stalled")
		}
	}
	if qpuFree > makespan {
		makespan = qpuFree
	}
	return makespan, schedule, nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// Speedup returns Sequential/Pipelined for the batch.
func Speedup(jobs []StageCost) (float64, error) {
	if len(jobs) == 0 {
		return 1, nil
	}
	p, _, err := Pipelined(jobs)
	if err != nil {
		return 0, err
	}
	if p == 0 {
		return 1, nil
	}
	return float64(Sequential(jobs)) / float64(p), nil
}

// Job is one unit of work for the live Run executor: the three stage
// callbacks a real split-execution host would run. Pre and Post execute on
// the (single) CPU worker, Anneal on the (single) QPU worker.
type Job struct {
	Pre    func() error
	Anneal func() error
	Post   func() error
}

// Run executes the jobs with genuine goroutine-level stage overlap: a CPU
// worker runs Pre and Post callbacks, a QPU worker runs Anneal callbacks,
// and jobs flow FIFO between them. The first callback error aborts intake
// and is returned after in-flight work drains. Nil callbacks are skipped.
func Run(jobs []Job) error {
	if len(jobs) == 0 {
		return nil
	}
	toQPU := make(chan int, len(jobs))
	toPost := make(chan int, len(jobs))
	errc := make(chan error, 3)

	var wg sync.WaitGroup
	wg.Add(2)
	// QPU worker.
	go func() {
		defer wg.Done()
		defer close(toPost)
		for j := range toQPU {
			if f := jobs[j].Anneal; f != nil {
				if err := f(); err != nil {
					errc <- fmt.Errorf("parallel: job %d anneal: %w", j, err)
					return
				}
			}
			toPost <- j
		}
	}()
	// CPU post-processing worker.
	go func() {
		defer wg.Done()
		for j := range toPost {
			if f := jobs[j].Post; f != nil {
				if err := f(); err != nil {
					errc <- fmt.Errorf("parallel: job %d post: %w", j, err)
					return
				}
			}
		}
	}()
	// Intake: stage-1 on the caller goroutine (the CPU in this model — it
	// naturally interleaves with the post worker through Go scheduling).
	var intakeErr error
	for j := range jobs {
		if f := jobs[j].Pre; f != nil {
			if err := f(); err != nil {
				intakeErr = fmt.Errorf("parallel: job %d pre: %w", j, err)
				break
			}
		}
		toQPU <- j
	}
	close(toQPU)
	wg.Wait()
	close(errc)
	if intakeErr != nil {
		return intakeErr
	}
	return <-errc
}
