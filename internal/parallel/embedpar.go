// Package parallel implements the pre-processing acceleration strategies
// the paper's conclusion calls for: "our models have not exploited more
// sophisticated host systems, e.g., HPC ... and there may be additional
// parallel strategies that can accelerate the pre-processing stage" (§4).
//
// Two strategies are provided. FindEmbedding races independent seeds of the
// Cai–Macready–Roy heuristic across host cores and keeps the best embedding
// found (the heuristic is randomized, so parallel restarts both cut
// wall-clock time to first success and improve embedding quality). Pipeline
// overlaps the classical pre/post-processing of one job with the quantum
// execution of another, hiding stage-2 time behind the stage-1 bottleneck.
package parallel

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"

	"github.com/splitexec/splitexec/internal/embed"
	"github.com/splitexec/splitexec/internal/graph"
)

// EmbedOptions configure the parallel multi-seed embedding search.
type EmbedOptions struct {
	// Workers is the number of concurrent searchers (default GOMAXPROCS).
	Workers int
	// Seeds is the number of independent heuristic restarts to race
	// (default 2×Workers).
	Seeds int
	// Seed derives the per-restart RNG streams, so runs are reproducible.
	Seed int64
	// Embed tunes each underlying CMR search.
	Embed embed.Options
	// Quality scores an embedding; lower is better. Nil uses QubitCount.
	Quality func(graph.VertexModel) float64
}

func (o EmbedOptions) withDefaults() EmbedOptions {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Seeds <= 0 {
		o.Seeds = 2 * o.Workers
	}
	if o.Quality == nil {
		o.Quality = func(vm graph.VertexModel) float64 { return float64(QubitCount(vm)) }
	}
	return o
}

// QubitCount returns the total number of hardware qubits a vertex model
// uses — the default embedding-quality metric (fewer is better: shorter
// chains keep more of the logical energy scale after chain coupling).
func QubitCount(vm graph.VertexModel) int {
	total := 0
	for _, chain := range vm {
		total += len(chain)
	}
	return total
}

// MaxChainLength returns the longest chain of a vertex model, the quality
// metric that matters when chain breakage dominates.
func MaxChainLength(vm graph.VertexModel) int {
	max := 0
	for _, chain := range vm {
		if len(chain) > max {
			max = len(chain)
		}
	}
	return max
}

// EmbedResult reports a parallel embedding search.
type EmbedResult struct {
	VM        graph.VertexModel
	Quality   float64     // score of the returned embedding
	Succeeded int         // restarts that found an embedding
	Failed    int         // restarts that exhausted their tries
	Stats     embed.Stats // aggregate work across all restarts
}

// FindEmbedding races Seeds independent CMR restarts over Workers
// goroutines and returns the best embedding found under the quality metric.
// It fails with embed.ErrNoEmbedding only if every restart fails.
func FindEmbedding(g, hw *graph.Graph, opts EmbedOptions) (EmbedResult, error) {
	if g == nil || hw == nil {
		return EmbedResult{}, errors.New("parallel: nil graph")
	}
	o := opts.withDefaults()

	type attempt struct {
		vm    graph.VertexModel
		stats embed.Stats
		err   error
	}
	results := make([]attempt, o.Seeds)
	_ = ForEach(o.Seeds, o.Workers, func(i int) error {
		rng := rand.New(rand.NewSource(DeriveSeed(o.Seed, i)))
		vm, stats, err := embed.FindEmbedding(g, hw, rng, o.Embed)
		results[i] = attempt{vm, stats, err}
		return nil // per-restart failures are tallied, not fatal
	})

	res := EmbedResult{Quality: -1}
	for _, a := range results {
		res.Stats.Tries += a.stats.Tries
		res.Stats.Sweeps += a.stats.Sweeps
		res.Stats.DijkstraRuns += a.stats.DijkstraRuns
		res.Stats.RelaxedEdges += a.stats.RelaxedEdges
		if a.err != nil {
			res.Failed++
			continue
		}
		res.Succeeded++
		q := o.Quality(a.vm)
		if res.VM == nil || q < res.Quality {
			res.VM = a.vm
			res.Quality = q
			res.Stats.PhysicalQubits = a.stats.PhysicalQubits
			res.Stats.MaxChainLength = a.stats.MaxChainLength
		}
	}
	if res.VM == nil {
		return res, fmt.Errorf("parallel: all %d restarts failed: %w", o.Seeds, embed.ErrNoEmbedding)
	}
	return res, nil
}

// BatchItem is one outcome of EmbedBatch.
type BatchItem struct {
	Index int
	VM    graph.VertexModel
	Err   error
}

// EmbedBatch embeds many input graphs into the same hardware concurrently,
// one restart per graph (use FindEmbedding per graph for multi-restart
// quality). Results are returned in input order.
func EmbedBatch(gs []*graph.Graph, hw *graph.Graph, workers int, seed int64, opts embed.Options) ([]BatchItem, error) {
	if hw == nil {
		return nil, errors.New("parallel: nil hardware graph")
	}
	items := make([]BatchItem, len(gs))
	_ = ForEach(len(gs), workers, func(i int) error {
		items[i].Index = i
		if gs[i] == nil {
			items[i].Err = errors.New("parallel: nil graph in batch")
			return nil
		}
		rng := rand.New(rand.NewSource(DeriveSeed(seed, i)))
		vm, _, err := embed.FindEmbedding(gs[i], hw, rng, opts)
		items[i].VM, items[i].Err = vm, err
		return nil // per-item failures are reported in the item
	})
	return items, nil
}
