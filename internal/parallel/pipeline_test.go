package parallel

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func us(n int) time.Duration { return time.Duration(n) * time.Microsecond }

func TestSequentialSums(t *testing.T) {
	jobs := []StageCost{
		{us(10), us(2), us(1)},
		{us(20), us(4), us(2)},
	}
	if got, want := Sequential(jobs), us(39); got != want {
		t.Fatalf("Sequential = %v, want %v", got, want)
	}
	if Sequential(nil) != 0 {
		t.Fatal("empty batch should cost 0")
	}
}

func TestPipelinedEmpty(t *testing.T) {
	m, sched, err := Pipelined(nil)
	if err != nil || m != 0 || sched != nil {
		t.Fatalf("empty: %v %v %v", m, sched, err)
	}
}

func TestPipelinedRejectsNegative(t *testing.T) {
	if _, _, err := Pipelined([]StageCost{{-us(1), 0, 0}}); err == nil {
		t.Fatal("negative cost accepted")
	}
}

func TestPipelinedSingleJobEqualsSequential(t *testing.T) {
	jobs := []StageCost{{us(10), us(5), us(3)}}
	m, _, err := Pipelined(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if m != Sequential(jobs) {
		t.Fatalf("single job pipelined %v != sequential %v", m, Sequential(jobs))
	}
}

func TestPipelinedHidesQPUTime(t *testing.T) {
	// Equal pre and QPU time: the QPU work of job i hides behind the
	// pre-processing of job i+1 almost entirely.
	var jobs []StageCost
	for i := 0; i < 16; i++ {
		jobs = append(jobs, StageCost{Pre: us(100), QPU: us(100), Post: us(1)})
	}
	m, _, err := Pipelined(jobs)
	if err != nil {
		t.Fatal(err)
	}
	seq := Sequential(jobs)
	if m >= seq {
		t.Fatalf("no overlap achieved: %v >= %v", m, seq)
	}
	sp, err := Speedup(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sp < 1.5 {
		t.Fatalf("speedup %v, want ≥1.5 for balanced stages", sp)
	}
}

func TestPipelinedPaperRegime(t *testing.T) {
	// The paper's regime: stage 1 dominates by orders of magnitude. The QPU
	// time hides completely and the makespan approaches total CPU time.
	var jobs []StageCost
	for i := 0; i < 8; i++ {
		jobs = append(jobs, StageCost{Pre: us(100000), QPU: us(333), Post: us(10)})
	}
	m, _, err := Pipelined(jobs)
	if err != nil {
		t.Fatal(err)
	}
	var cpuWork time.Duration
	for _, j := range jobs {
		cpuWork += j.Pre + j.Post
	}
	// Only the first job's QPU wait is exposed (plus scheduling slack).
	slack := jobs[0].QPU + us(1000)
	if m > cpuWork+slack {
		t.Fatalf("makespan %v far above CPU-bound %v", m, cpuWork)
	}
}

func TestPipelinedScheduleInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		jobs := make([]StageCost, n)
		for i := range jobs {
			jobs[i] = StageCost{
				Pre:  us(rng.Intn(500)),
				QPU:  us(rng.Intn(500)),
				Post: us(rng.Intn(200)),
			}
		}
		m, sched, err := Pipelined(jobs)
		if err != nil {
			t.Fatal(err)
		}
		checkSchedule(t, jobs, m, sched)
	}
}

// checkSchedule verifies resource exclusivity, stage precedence, duration
// fidelity, completeness and the makespan bounds.
func checkSchedule(t *testing.T, jobs []StageCost, makespan time.Duration, sched []Interval) {
	t.Helper()
	n := len(jobs)
	if len(sched) != 3*n {
		t.Fatalf("schedule has %d intervals, want %d", len(sched), 3*n)
	}
	starts := make(map[[2]int]time.Duration)
	ends := make(map[[2]int]time.Duration)
	var byResource = map[string][]Interval{}
	var end time.Duration
	for _, iv := range sched {
		if iv.Start < 0 || iv.End < iv.Start {
			t.Fatalf("bad interval %+v", iv)
		}
		key := [2]int{iv.Job, iv.Stage}
		if _, dup := starts[key]; dup {
			t.Fatalf("stage scheduled twice: %+v", iv)
		}
		starts[key] = iv.Start
		ends[key] = iv.End
		byResource[iv.Resource] = append(byResource[iv.Resource], iv)
		if iv.End > end {
			end = iv.End
		}
		var want time.Duration
		switch iv.Stage {
		case 1:
			want = jobs[iv.Job].Pre
			if iv.Resource != "cpu" {
				t.Fatalf("stage 1 on %q", iv.Resource)
			}
		case 2:
			want = jobs[iv.Job].QPU
			if iv.Resource != "qpu" {
				t.Fatalf("stage 2 on %q", iv.Resource)
			}
		case 3:
			want = jobs[iv.Job].Post
			if iv.Resource != "cpu" {
				t.Fatalf("stage 3 on %q", iv.Resource)
			}
		default:
			t.Fatalf("bad stage %d", iv.Stage)
		}
		if iv.End-iv.Start != want {
			t.Fatalf("interval %+v duration %v, want %v", iv, iv.End-iv.Start, want)
		}
	}
	if end != makespan {
		t.Fatalf("makespan %v but last interval ends at %v", makespan, end)
	}
	// Precedence within each job.
	for j := 0; j < n; j++ {
		if starts[[2]int{j, 2}] < ends[[2]int{j, 1}] {
			t.Fatalf("job %d stage 2 before stage 1 done", j)
		}
		if starts[[2]int{j, 3}] < ends[[2]int{j, 2}] {
			t.Fatalf("job %d stage 3 before stage 2 done", j)
		}
	}
	// Resource exclusivity.
	for res, ivs := range byResource {
		for a := 0; a < len(ivs); a++ {
			for b := a + 1; b < len(ivs); b++ {
				x, y := ivs[a], ivs[b]
				if x.Start < y.End && y.Start < x.End {
					t.Fatalf("%s overlap: %+v and %+v", res, x, y)
				}
			}
		}
	}
	// Bounds: max(total CPU, total QPU) ≤ makespan ≤ sequential.
	var cpu, qpu time.Duration
	for _, j := range jobs {
		cpu += j.Pre + j.Post
		qpu += j.QPU
	}
	if makespan < cpu || makespan < qpu {
		t.Fatalf("makespan %v below resource bound (cpu %v, qpu %v)", makespan, cpu, qpu)
	}
	if seq := Sequential(jobs); makespan > seq {
		t.Fatalf("pipelining made it worse: %v > %v", makespan, seq)
	}
}

func TestQuickPipelineBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		jobs := make([]StageCost, n)
		for i := range jobs {
			jobs[i] = StageCost{us(rng.Intn(300)), us(rng.Intn(300)), us(rng.Intn(100))}
		}
		m, _, err := Pipelined(jobs)
		if err != nil {
			return false
		}
		var cpu, qpu time.Duration
		for _, j := range jobs {
			cpu += j.Pre + j.Post
			qpu += j.QPU
		}
		return m >= cpu && m >= qpu && m <= Sequential(jobs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupEmptyBatch(t *testing.T) {
	sp, err := Speedup(nil)
	if err != nil || sp != 1 {
		t.Fatalf("Speedup(nil) = %v, %v", sp, err)
	}
	sp, err = Speedup([]StageCost{{}})
	if err != nil || sp != 1 {
		t.Fatalf("Speedup(zero job) = %v, %v", sp, err)
	}
}

func TestRunExecutesAllStagesInOrder(t *testing.T) {
	const n = 20
	var mu sync.Mutex
	order := make(map[int][]int) // job → stages in observed order
	mk := func(j, stage int) func() error {
		return func() error {
			mu.Lock()
			order[j] = append(order[j], stage)
			mu.Unlock()
			return nil
		}
	}
	jobs := make([]Job, n)
	for j := 0; j < n; j++ {
		jobs[j] = Job{Pre: mk(j, 1), Anneal: mk(j, 2), Post: mk(j, 3)}
	}
	if err := Run(jobs); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		if len(order[j]) != 3 {
			t.Fatalf("job %d ran %d stages", j, len(order[j]))
		}
		for s := 0; s < 3; s++ {
			if order[j][s] != s+1 {
				t.Fatalf("job %d stage order %v", j, order[j])
			}
		}
	}
}

func TestRunOverlapsStages(t *testing.T) {
	// With blocking anneals, total wall time must be well under the serial
	// sum if the pipeline overlaps.
	const n = 8
	const d = 5 * time.Millisecond
	sleep := func() error { time.Sleep(d); return nil }
	jobs := make([]Job, n)
	for j := range jobs {
		jobs[j] = Job{Pre: sleep, Anneal: sleep, Post: sleep}
	}
	start := time.Now()
	if err := Run(jobs); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	serial := time.Duration(3*n) * d
	if elapsed >= serial {
		t.Fatalf("no overlap: %v >= serial %v", elapsed, serial)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	var post3 atomic.Bool
	jobs := []Job{
		{Anneal: func() error { return nil }},
		{Anneal: func() error { return boom }},
		{Anneal: func() error { return nil }, Post: func() error { post3.Store(true); return nil }},
	}
	err := Run(jobs)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}

	preErr := errors.New("pre failed")
	jobs = []Job{{Pre: func() error { return preErr }}}
	if err := Run(jobs); !errors.Is(err, preErr) {
		t.Fatalf("pre error lost: %v", err)
	}

	postErr := errors.New("post failed")
	jobs = []Job{{Post: func() error { return postErr }}}
	if err := Run(jobs); !errors.Is(err, postErr) {
		t.Fatalf("post error lost: %v", err)
	}
}

func TestRunEmptyAndNilCallbacks(t *testing.T) {
	if err := Run(nil); err != nil {
		t.Fatal(err)
	}
	if err := Run(make([]Job, 5)); err != nil {
		t.Fatal(err)
	}
}
