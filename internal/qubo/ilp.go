package qubo

import (
	"errors"
	"fmt"
)

// ILP is a binary integer linear program reduced to QUBO form: minimize
// c·x subject to Ax = b over x ∈ {0,1}ⁿ. Integer linear programming is one
// of the workloads the paper names as mapping into the D-Wave Ising model
// (§2.1). The equality constraints enter as quadratic penalties
//
//	E(x) = c·x + P·Σ_i (A_i·x - b_i)²,
//
// so for sufficiently large P the QUBO minimum is the ILP optimum plus the
// recorded Offset (the constant P·Σ b_i² absorbed during expansion).
type ILP struct {
	Q       *QUBO
	Offset  float64 // constant added to Q's energy to recover E(x)
	Penalty float64
}

// IntegerLinearProgram builds the QUBO for min c·x s.t. Ax = b, x binary.
// A is row-major with len(A) constraints over len(c) variables. The penalty
// must exceed any achievable objective spread; SafeILPPenalty provides a
// sufficient value.
func IntegerLinearProgram(c []float64, A [][]float64, b []float64, penalty float64) (*ILP, error) {
	n := len(c)
	if n == 0 {
		return nil, errors.New("qubo: ILP with no variables")
	}
	if len(A) != len(b) {
		return nil, fmt.Errorf("qubo: %d constraint rows but %d right-hand sides", len(A), len(b))
	}
	if penalty <= 0 {
		return nil, fmt.Errorf("qubo: ILP penalty %g must be positive", penalty)
	}
	q := NewQUBO(n)
	for j, cj := range c {
		q.Add(j, j, cj)
	}
	offset := 0.0
	for i, row := range A {
		if len(row) != n {
			return nil, fmt.Errorf("qubo: constraint %d has %d coefficients, want %d", i, len(row), n)
		}
		// P·(Σ_j a_j x_j - b)² with x² = x:
		//   diagonal  P·a_j² - 2P·b·a_j
		//   pairs     2P·a_j·a_k  (j<k)
		//   constant  P·b²
		for j := 0; j < n; j++ {
			aj := row[j]
			if aj == 0 {
				continue
			}
			q.Add(j, j, penalty*aj*aj-2*penalty*b[i]*aj)
			for k := j + 1; k < n; k++ {
				if row[k] == 0 {
					continue
				}
				q.Add(j, k, 2*penalty*aj*row[k])
			}
		}
		offset += penalty * b[i] * b[i]
	}
	return &ILP{Q: q, Offset: offset, Penalty: penalty}, nil
}

// SafeILPPenalty returns a penalty strictly dominating the objective spread
// Σ|c_j| + 1, so any constraint violation costs more than the best possible
// objective gain (each violated equality costs at least P since A and b are
// integers in the intended use; for fractional data scale accordingly).
func SafeILPPenalty(c []float64) float64 {
	sum := 1.0
	for _, cj := range c {
		if cj < 0 {
			sum -= cj
		} else {
			sum += cj
		}
	}
	return sum
}

// Energy returns the penalized objective of an assignment, including the
// expansion constant, i.e. c·x + P·‖Ax-b‖².
func (p *ILP) Energy(x []int8) float64 {
	return p.Q.Energy(x) + p.Offset
}

// Feasible reports whether x satisfies Ax = b exactly (within tol).
func Feasible(A [][]float64, b []float64, x []int8, tol float64) bool {
	for i, row := range A {
		s := 0.0
		for j, a := range row {
			if j < len(x) && x[j] == 1 {
				s += a
			}
		}
		if d := s - b[i]; d > tol || d < -tol {
			return false
		}
	}
	return true
}

// ObjectiveValue returns c·x.
func ObjectiveValue(c []float64, x []int8) float64 {
	v := 0.0
	for j, cj := range c {
		if j < len(x) && x[j] == 1 {
			v += cj
		}
	}
	return v
}
