// Package qubo implements the classical optimization-problem domain of the
// split-execution system: quadratic unconstrained binary optimization (QUBO)
// instances, logical Ising models, the QUBO→Ising translation of the paper's
// Eqs. (4)–(5), and generators for the NP-hard workloads the paper cites
// (MAX-CUT, number partitioning, vertex cover, graph coloring, ...).
package qubo

import (
	"fmt"
	"math"

	"github.com/splitexec/splitexec/internal/graph"
)

// QUBO is a quadratic unconstrained binary optimization instance
//
//	minimize  E(b) = Σ_{i<=j} Q[i][j]·b_i·b_j,   b ∈ {0,1}^n.
//
// Coefficients are stored in upper-triangular form: Set folds any
// lower-triangular assignment into the (i<j) entry, matching the convention
// under which the paper's Eqs. (4)–(5) are exact.
type QUBO struct {
	n int
	q [][]float64 // upper triangular: q[i][j] defined for j >= i
}

// NewQUBO returns an all-zero QUBO over n binary variables.
func NewQUBO(n int) *QUBO {
	if n < 0 {
		panic("qubo: negative dimension")
	}
	q := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n-i)
	}
	return &QUBO{n: n, q: q}
}

// Dim returns the number of binary variables.
func (q *QUBO) Dim() int { return q.n }

// Set assigns coefficient c to the (i,j) term, folding (j,i) into (i,j).
func (q *QUBO) Set(i, j int, c float64) {
	i, j = q.order(i, j)
	q.q[i][j-i] = c
}

// Add accumulates c onto the (i,j) coefficient.
func (q *QUBO) Add(i, j int, c float64) {
	i, j = q.order(i, j)
	q.q[i][j-i] += c
}

// Get returns the (i,j) coefficient (order-insensitive).
func (q *QUBO) Get(i, j int) float64 {
	i, j = q.order(i, j)
	return q.q[i][j-i]
}

func (q *QUBO) order(i, j int) (int, int) {
	if i < 0 || j < 0 || i >= q.n || j >= q.n {
		panic(fmt.Sprintf("qubo: index (%d,%d) out of range for n=%d", i, j, q.n))
	}
	if i > j {
		return j, i
	}
	return i, j
}

// Energy evaluates E(b) for an assignment b of 0/1 values.
func (q *QUBO) Energy(b []int8) float64 {
	if len(b) != q.n {
		panic(fmt.Sprintf("qubo: assignment length %d != n %d", len(b), q.n))
	}
	e := 0.0
	for i := 0; i < q.n; i++ {
		if b[i] == 0 {
			continue
		}
		row := q.q[i]
		for dj, c := range row {
			if c != 0 && b[i+dj] != 0 {
				e += c
			}
		}
	}
	return e
}

// NumTerms returns the number of nonzero quadratic (off-diagonal)
// coefficients.
func (q *QUBO) NumTerms() int {
	m := 0
	for i := 0; i < q.n; i++ {
		for dj := 1; dj < len(q.q[i]); dj++ {
			if q.q[i][dj] != 0 {
				m++
			}
		}
	}
	return m
}

// Graph returns the interaction graph G whose edges are the nonzero quadratic
// couplings. This is the input graph of the minor-embedding problem.
func (q *QUBO) Graph() *graph.Graph {
	g := graph.New(q.n)
	for i := 0; i < q.n; i++ {
		for dj := 1; dj < len(q.q[i]); dj++ {
			if q.q[i][dj] != 0 {
				g.AddEdge(i, i+dj)
			}
		}
	}
	return g
}

// Dense returns the full symmetric matrix representation (each off-diagonal
// coefficient split evenly between (i,j) and (j,i)).
func (q *QUBO) Dense() [][]float64 {
	a := make([][]float64, q.n)
	for i := range a {
		a[i] = make([]float64, q.n)
	}
	for i := 0; i < q.n; i++ {
		a[i][i] = q.q[i][0]
		for dj := 1; dj < len(q.q[i]); dj++ {
			c := q.q[i][dj] / 2
			a[i][i+dj] = c
			a[i+dj][i] = c
		}
	}
	return a
}

// Clone returns a deep copy.
func (q *QUBO) Clone() *QUBO {
	c := NewQUBO(q.n)
	for i := range q.q {
		copy(c.q[i], q.q[i])
	}
	return c
}

// MaxAbsCoefficient returns the largest |Q_ij| in the instance.
func (q *QUBO) MaxAbsCoefficient() float64 {
	max := 0.0
	for i := range q.q {
		for _, c := range q.q[i] {
			if a := math.Abs(c); a > max {
				max = a
			}
		}
	}
	return max
}

// String implements fmt.Stringer.
func (q *QUBO) String() string {
	return fmt.Sprintf("QUBO{n=%d, quadratic terms=%d}", q.n, q.NumTerms())
}

// BruteForce exhaustively minimizes the QUBO, returning the optimal
// assignment and its energy. It panics for n > 30 (2^n enumeration).
func (q *QUBO) BruteForce() ([]int8, float64) {
	if q.n > 30 {
		panic("qubo: brute force limited to n <= 30")
	}
	best := math.Inf(1)
	var bestB []int8
	b := make([]int8, q.n)
	total := 1 << uint(q.n)
	for mask := 0; mask < total; mask++ {
		for i := 0; i < q.n; i++ {
			b[i] = int8((mask >> uint(i)) & 1)
		}
		if e := q.Energy(b); e < best {
			best = e
			bestB = append(bestB[:0], b...)
		}
	}
	return bestB, best
}
