package qubo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/splitexec/splitexec/internal/graph"
)

func TestQUBOSetGetSymmetric(t *testing.T) {
	q := NewQUBO(4)
	q.Set(2, 1, 3.5)
	if q.Get(1, 2) != 3.5 || q.Get(2, 1) != 3.5 {
		t.Error("Set/Get not order-insensitive")
	}
	q.Add(1, 2, 0.5)
	if q.Get(2, 1) != 4 {
		t.Errorf("Add result = %v", q.Get(2, 1))
	}
}

func TestQUBOIndexPanics(t *testing.T) {
	q := NewQUBO(3)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range index did not panic")
		}
	}()
	q.Set(0, 3, 1)
}

func TestQUBOEnergy(t *testing.T) {
	// E = b0 + 2 b1 - 3 b0 b1
	q := NewQUBO(2)
	q.Set(0, 0, 1)
	q.Set(1, 1, 2)
	q.Set(0, 1, -3)
	cases := []struct {
		b []int8
		e float64
	}{
		{[]int8{0, 0}, 0},
		{[]int8{1, 0}, 1},
		{[]int8{0, 1}, 2},
		{[]int8{1, 1}, 0},
	}
	for _, c := range cases {
		if e := q.Energy(c.b); e != c.e {
			t.Errorf("E(%v) = %v, want %v", c.b, e, c.e)
		}
	}
}

func TestQUBOGraphAndTerms(t *testing.T) {
	q := NewQUBO(4)
	q.Set(0, 1, 1)
	q.Set(2, 3, -1)
	q.Set(1, 1, 5) // diagonal: not an interaction edge
	g := q.Graph()
	if g.Size() != 2 {
		t.Errorf("interaction graph edges = %d, want 2", g.Size())
	}
	if q.NumTerms() != 2 {
		t.Errorf("NumTerms = %d, want 2", q.NumTerms())
	}
}

func TestQUBODenseSplitsOffDiagonal(t *testing.T) {
	q := NewQUBO(2)
	q.Set(0, 1, 4)
	q.Set(0, 0, 3)
	d := q.Dense()
	if d[0][1] != 2 || d[1][0] != 2 || d[0][0] != 3 {
		t.Errorf("Dense = %v", d)
	}
}

func TestQUBOCloneIndependent(t *testing.T) {
	q := NewQUBO(2)
	q.Set(0, 1, 1)
	c := q.Clone()
	c.Set(0, 1, 9)
	if q.Get(0, 1) != 1 {
		t.Error("Clone shares storage")
	}
}

func TestBruteForceTrivial(t *testing.T) {
	q := NewQUBO(3)
	q.Set(0, 0, 1)
	q.Set(1, 1, -2)
	q.Set(2, 2, 1)
	b, e := q.BruteForce()
	want := []int8{0, 1, 0}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("argmin = %v, want %v", b, want)
		}
	}
	if e != -2 {
		t.Errorf("min = %v, want -2", e)
	}
}

func TestIsingEnergy(t *testing.T) {
	is := NewIsing(2)
	is.H[0] = 1
	is.SetCoupling(0, 1, -2)
	is.Offset = 0.5
	// E(+1,+1) = 0.5 + 1 - 2 = -0.5
	if e := is.Energy([]int8{1, 1}); e != -0.5 {
		t.Errorf("E = %v, want -0.5", e)
	}
	// E(-1,+1) = 0.5 - 1 + 2 = 1.5
	if e := is.Energy([]int8{-1, 1}); e != 1.5 {
		t.Errorf("E = %v, want 1.5", e)
	}
}

func TestIsingCouplingZeroDeletes(t *testing.T) {
	is := NewIsing(3)
	is.SetCoupling(0, 1, 2)
	is.SetCoupling(1, 0, 0)
	if len(is.J) != 0 {
		t.Error("zero coupling not deleted")
	}
}

func TestIsingSelfCouplingPanics(t *testing.T) {
	is := NewIsing(2)
	defer func() {
		if recover() == nil {
			t.Error("self coupling did not panic")
		}
	}()
	is.SetCoupling(1, 1, 1)
}

func TestIsingEdgesSorted(t *testing.T) {
	is := NewIsing(4)
	is.SetCoupling(2, 3, 1)
	is.SetCoupling(0, 1, 1)
	is.SetCoupling(3, 1, 1)
	es := is.Edges()
	if len(es) != 3 || es[0] != (graph.Edge{U: 0, V: 1}) || es[2] != (graph.Edge{U: 2, V: 3}) {
		t.Errorf("Edges = %v", es)
	}
}

func TestSpinBinaryRoundTrip(t *testing.T) {
	b := []int8{0, 1, 1, 0}
	s := BinaryToSpins(b)
	want := []int8{-1, 1, 1, -1}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("spins = %v", s)
		}
	}
	back := SpinsToBinary(s)
	for i := range b {
		if back[i] != b[i] {
			t.Fatalf("round trip = %v", back)
		}
	}
}

// The core translation property of Eqs. (4)-(5): E_QUBO(b) = E_Ising(2b-1)
// for every assignment of random instances.
func TestToIsingEnergyPreserving(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		q := RandomQUBO(n, 0.6, rng)
		is := ToIsing(q)
		b := make([]int8, n)
		for trial := 0; trial < 20; trial++ {
			for i := range b {
				b[i] = int8(rng.Intn(2))
			}
			if math.Abs(q.Energy(b)-is.Energy(BinaryToSpins(b))) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestToIsingPaperCoefficients(t *testing.T) {
	// Hand-checked 2-variable instance: Q00=2, Q11=4, Q01=8.
	q := NewQUBO(2)
	q.Set(0, 0, 2)
	q.Set(1, 1, 4)
	q.Set(0, 1, 8)
	is := ToIsing(q)
	// h0 = Q00/2 + Q01/4 = 1 + 2 = 3; h1 = 2 + 2 = 4; J01 = 2.
	if is.H[0] != 3 || is.H[1] != 4 {
		t.Errorf("h = %v, want [3 4]", is.H)
	}
	if is.Coupling(0, 1) != 2 {
		t.Errorf("J01 = %v, want 2", is.Coupling(0, 1))
	}
	// Offset = 1 + 2 + 2 = 5.
	if is.Offset != 5 {
		t.Errorf("offset = %v, want 5", is.Offset)
	}
}

func TestFromIsingRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := RandomQUBO(8, 0.5, rng)
	back := FromIsing(ToIsing(q))
	for i := 0; i < 8; i++ {
		for j := i; j < 8; j++ {
			if math.Abs(q.Get(i, j)-back.Get(i, j)) > 1e-9 {
				t.Fatalf("Q[%d][%d]: %v != %v", i, j, q.Get(i, j), back.Get(i, j))
			}
		}
	}
}

func TestToIsingArgminPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 5; trial++ {
		q := RandomQUBO(8, 0.7, rng)
		is := ToIsing(q)
		bQ, eQ := q.BruteForce()
		_, eI := is.BruteForce()
		if math.Abs(eQ-eI) > 1e-9 {
			t.Fatalf("optimal energies differ: QUBO %v vs Ising %v", eQ, eI)
		}
		if math.Abs(is.Energy(BinaryToSpins(bQ))-eI) > 1e-9 {
			t.Fatal("QUBO argmin is not an Ising argmin")
		}
	}
}

func TestConversionOps(t *testing.T) {
	i, p := ConversionOps(10)
	if i != 100 || p != 1000 {
		t.Errorf("ConversionOps(10) = (%v,%v), want (100,1000)", i, p)
	}
}

func TestGroundStatesDegeneracy(t *testing.T) {
	// Single antiferromagnetic coupling: two degenerate ground states.
	is := NewIsing(2)
	is.SetCoupling(0, 1, 1)
	states, e := is.GroundStates(1e-12)
	if e != -1 {
		t.Errorf("ground energy = %v, want -1", e)
	}
	if len(states) != 2 {
		t.Errorf("degeneracy = %d, want 2", len(states))
	}
}

func TestIsingCloneIndependent(t *testing.T) {
	is := NewIsing(2)
	is.SetCoupling(0, 1, 1)
	is.H[0] = 2
	c := is.Clone()
	c.SetCoupling(0, 1, 5)
	c.H[0] = 9
	if is.Coupling(0, 1) != 1 || is.H[0] != 2 {
		t.Error("Clone shares storage")
	}
}

func TestMaxAbsCoefficient(t *testing.T) {
	is := NewIsing(2)
	is.H[1] = -3
	is.SetCoupling(0, 1, 2)
	if is.MaxAbsCoefficient() != 3 {
		t.Errorf("MaxAbs = %v, want 3", is.MaxAbsCoefficient())
	}
	q := NewQUBO(2)
	q.Set(0, 1, -7)
	if q.MaxAbsCoefficient() != 7 {
		t.Errorf("QUBO MaxAbs = %v", q.MaxAbsCoefficient())
	}
}
