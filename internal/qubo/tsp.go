package qubo

import (
	"fmt"
	"math"
)

// TSP returns the QUBO for the traveling-salesman problem on a symmetric
// distance matrix d (Lucas §6.2): n² one-hot variables x[v·n+t] meaning
// "city v is visited at time t", with penalty P enforcing a permutation and
// the tour length as objective. P must exceed the largest distance times n
// for the constraints to dominate; TSPPenalty returns a safe default.
func TSP(d [][]float64, penalty float64) (*QUBO, error) {
	n := len(d)
	if n == 0 {
		return nil, fmt.Errorf("qubo: empty distance matrix")
	}
	for i := range d {
		if len(d[i]) != n {
			return nil, fmt.Errorf("qubo: distance matrix row %d has %d entries, want %d", i, len(d[i]), n)
		}
		for j := range d[i] {
			if math.Abs(d[i][j]-d[j][i]) > 1e-12 {
				return nil, fmt.Errorf("qubo: distance matrix not symmetric at (%d,%d)", i, j)
			}
			if i == j && d[i][j] != 0 {
				return nil, fmt.Errorf("qubo: nonzero self distance at %d", i)
			}
		}
	}
	q := NewQUBO(n * n)
	id := func(v, t int) int { return v*n + t }

	// Constraint 1: each city appears exactly once: (1-Σ_t x_vt)².
	for v := 0; v < n; v++ {
		for t := 0; t < n; t++ {
			q.Add(id(v, t), id(v, t), -penalty)
			for t2 := t + 1; t2 < n; t2++ {
				q.Add(id(v, t), id(v, t2), 2*penalty)
			}
		}
	}
	// Constraint 2: each time slot holds exactly one city.
	for t := 0; t < n; t++ {
		for v := 0; v < n; v++ {
			q.Add(id(v, t), id(v, t), -penalty)
			for v2 := v + 1; v2 < n; v2++ {
				q.Add(id(v, t), id(v2, t), 2*penalty)
			}
		}
	}
	// Objective: tour length over consecutive (cyclic) time slots.
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || d[u][v] == 0 {
				continue
			}
			for t := 0; t < n; t++ {
				q.Add(id(u, t), id(v, (t+1)%n), d[u][v])
			}
		}
	}
	return q, nil
}

// TSPPenalty returns a constraint penalty that safely dominates the tour
// objective: n × max distance + 1.
func TSPPenalty(d [][]float64) float64 {
	maxD := 0.0
	for i := range d {
		for j := range d[i] {
			if d[i][j] > maxD {
				maxD = d[i][j]
			}
		}
	}
	return float64(len(d))*maxD + 1
}

// DecodeTour extracts the visiting order from a TSP assignment, returning
// (tour, ok): tour[t] is the city at time t; ok is false unless b encodes a
// valid permutation.
func DecodeTour(n int, b []int8) ([]int, bool) {
	if len(b) != n*n {
		return nil, false
	}
	tour := make([]int, n)
	for t := range tour {
		tour[t] = -1
	}
	seen := make([]bool, n)
	for v := 0; v < n; v++ {
		count := 0
		for t := 0; t < n; t++ {
			if b[v*n+t] == 1 {
				count++
				if tour[t] != -1 {
					return tour, false // slot double-booked
				}
				tour[t] = v
			}
		}
		if count != 1 {
			return tour, false
		}
		seen[v] = true
	}
	for _, v := range tour {
		if v == -1 {
			return tour, false
		}
	}
	return tour, true
}

// TourLength returns the cyclic tour length under d.
func TourLength(d [][]float64, tour []int) float64 {
	total := 0.0
	n := len(tour)
	for t := 0; t < n; t++ {
		total += d[tour[t]][tour[(t+1)%n]]
	}
	return total
}

// SetPacking returns the QUBO for weighted set packing (one of the D-Wave
// workloads the paper lists in §2.1): choose pairwise-disjoint sets
// maximizing total weight. E = -Σ w_i·x_i + P·Σ_{overlapping i<j} x_i·x_j.
// A nil weights slice means unit weights; P must exceed the largest weight.
func SetPacking(sets [][]int, weights []float64, penalty float64) (*QUBO, error) {
	m := len(sets)
	if weights != nil && len(weights) != m {
		return nil, fmt.Errorf("qubo: %d weights for %d sets", len(weights), m)
	}
	q := NewQUBO(m)
	for i := 0; i < m; i++ {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		q.Add(i, i, -w)
		for j := i + 1; j < m; j++ {
			if setsOverlap(sets[i], sets[j]) {
				q.Add(i, j, penalty)
			}
		}
	}
	return q, nil
}

// IsPacking reports whether the selected sets are pairwise disjoint.
func IsPacking(sets [][]int, b []int8) bool {
	for i := range sets {
		if b[i] == 0 {
			continue
		}
		for j := i + 1; j < len(sets); j++ {
			if b[j] == 1 && setsOverlap(sets[i], sets[j]) {
				return false
			}
		}
	}
	return true
}

func setsOverlap(a, b []int) bool {
	in := make(map[int]bool, len(a))
	for _, x := range a {
		in[x] = true
	}
	for _, y := range b {
		if in[y] {
			return true
		}
	}
	return false
}
