package qubo

import (
	"fmt"
	"math"
	"sort"

	"github.com/splitexec/splitexec/internal/graph"
)

// Ising is a logical Ising model over spins s ∈ {-1,+1}^n with energy
//
//	E(s) = Offset + Σ_i H[i]·s_i + Σ_{i<j} J[{i,j}]·s_i·s_j.
//
// The paper's Hamiltonian (Eq. 2) carries explicit minus signs,
// H = -Σ h_i Z_i - Σ J_ij Z_i Z_j; we fold those signs into the stored
// coefficients so that *minimizing* E(s) solves the optimization problem,
// the convention used when programming the processor. The Offset preserves
// the exact QUBO energy under translation so solutions can be compared
// directly across domains.
type Ising struct {
	H      []float64              // per-spin biases h_i
	J      map[graph.Edge]float64 // couplings J_ij, keys normalized (U<V)
	Offset float64                // constant energy shift from the QUBO map
}

// NewIsing returns an all-zero Ising model over n spins.
func NewIsing(n int) *Ising {
	return &Ising{H: make([]float64, n), J: make(map[graph.Edge]float64)}
}

// Dim returns the number of spins.
func (is *Ising) Dim() int { return len(is.H) }

// SetCoupling assigns J_ij (order-insensitive, self couplings rejected).
func (is *Ising) SetCoupling(i, j int, c float64) {
	if i == j {
		panic("qubo: self coupling")
	}
	e := graph.Edge{U: i, V: j}.Normalize()
	if c == 0 {
		delete(is.J, e)
		return
	}
	is.J[e] = c
}

// Coupling returns J_ij (0 when absent).
func (is *Ising) Coupling(i, j int) float64 {
	return is.J[graph.Edge{U: i, V: j}.Normalize()]
}

// Energy evaluates E(s) for s_i ∈ {-1,+1}.
func (is *Ising) Energy(s []int8) float64 {
	if len(s) != len(is.H) {
		panic(fmt.Sprintf("qubo: spin vector length %d != n %d", len(s), len(is.H)))
	}
	e := is.Offset
	for i, h := range is.H {
		e += h * float64(s[i])
	}
	for edge, j := range is.J {
		e += j * float64(s[edge.U]) * float64(s[edge.V])
	}
	return e
}

// EnergyDelta returns E(s with spin i flipped) − E(s). This is the reference
// implementation (it walks the coupling map, O(|J|)); hot paths use the
// equivalent Compiled.EnergyDelta, which is O(deg(i)) over the CSR form.
func (is *Ising) EnergyDelta(s []int8, i int) float64 {
	local := is.H[i]
	for e, j := range is.J {
		switch i {
		case e.U:
			local += j * float64(s[e.V])
		case e.V:
			local += j * float64(s[e.U])
		}
	}
	return -2 * float64(s[i]) * local
}

// Graph returns the coupling graph of the model (the logical input graph G
// of the embedding problem).
func (is *Ising) Graph() *graph.Graph {
	g := graph.New(len(is.H))
	for e := range is.J {
		g.AddEdge(e.U, e.V)
	}
	return g
}

// Edges returns the coupling edges in deterministic sorted order.
func (is *Ising) Edges() []graph.Edge {
	es := make([]graph.Edge, 0, len(is.J))
	for e := range is.J {
		es = append(es, e)
	}
	sort.Slice(es, func(a, b int) bool {
		if es[a].U != es[b].U {
			return es[a].U < es[b].U
		}
		return es[a].V < es[b].V
	})
	return es
}

// MaxAbsCoefficient returns max(|h_i|, |J_ij|), used to scale the chain
// coupling during parameter setting.
func (is *Ising) MaxAbsCoefficient() float64 {
	max := 0.0
	for _, h := range is.H {
		if a := math.Abs(h); a > max {
			max = a
		}
	}
	for _, j := range is.J {
		if a := math.Abs(j); a > max {
			max = a
		}
	}
	return max
}

// Clone returns a deep copy.
func (is *Ising) Clone() *Ising {
	c := NewIsing(len(is.H))
	copy(c.H, is.H)
	c.Offset = is.Offset
	for e, j := range is.J {
		c.J[e] = j
	}
	return c
}

// BruteForce exhaustively minimizes the Ising energy, returning the optimal
// spin vector and its energy. It panics for n > 30.
func (is *Ising) BruteForce() ([]int8, float64) {
	n := len(is.H)
	if n > 30 {
		panic("qubo: brute force limited to n <= 30")
	}
	best := math.Inf(1)
	var bestS []int8
	s := make([]int8, n)
	total := 1 << uint(n)
	for mask := 0; mask < total; mask++ {
		for i := 0; i < n; i++ {
			if (mask>>uint(i))&1 == 1 {
				s[i] = 1
			} else {
				s[i] = -1
			}
		}
		if e := is.Energy(s); e < best {
			best = e
			bestS = append(bestS[:0], s...)
		}
	}
	return bestS, best
}

// GroundStates returns every spin configuration attaining the minimum energy
// (within tol), for exact degeneracy analysis on small models (n <= 20).
func (is *Ising) GroundStates(tol float64) ([][]int8, float64) {
	n := len(is.H)
	if n > 20 {
		panic("qubo: ground-state enumeration limited to n <= 20")
	}
	best := math.Inf(1)
	var states [][]int8
	s := make([]int8, n)
	total := 1 << uint(n)
	for mask := 0; mask < total; mask++ {
		for i := 0; i < n; i++ {
			if (mask>>uint(i))&1 == 1 {
				s[i] = 1
			} else {
				s[i] = -1
			}
		}
		e := is.Energy(s)
		switch {
		case e < best-tol:
			best = e
			states = states[:0]
			states = append(states, append([]int8(nil), s...))
		case math.Abs(e-best) <= tol:
			states = append(states, append([]int8(nil), s...))
		}
	}
	return states, best
}

// SpinsToBinary maps s ∈ {-1,+1} to b ∈ {0,1} via b = (1+s)/2.
func SpinsToBinary(s []int8) []int8 {
	b := make([]int8, len(s))
	for i, v := range s {
		if v > 0 {
			b[i] = 1
		}
	}
	return b
}

// BinaryToSpins maps b ∈ {0,1} to s ∈ {-1,+1} via s = 2b-1.
func BinaryToSpins(b []int8) []int8 {
	s := make([]int8, len(b))
	for i, v := range b {
		if v != 0 {
			s[i] = 1
		} else {
			s[i] = -1
		}
	}
	return s
}

// String implements fmt.Stringer.
func (is *Ising) String() string {
	return fmt.Sprintf("Ising{n=%d, couplings=%d, offset=%g}", len(is.H), len(is.J), is.Offset)
}
