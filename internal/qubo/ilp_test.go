package qubo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestILPValidation(t *testing.T) {
	if _, err := IntegerLinearProgram(nil, nil, nil, 1); err == nil {
		t.Fatal("empty ILP accepted")
	}
	if _, err := IntegerLinearProgram([]float64{1}, [][]float64{{1}}, nil, 1); err == nil {
		t.Fatal("row/rhs mismatch accepted")
	}
	if _, err := IntegerLinearProgram([]float64{1}, [][]float64{{1, 2}}, []float64{1}, 1); err == nil {
		t.Fatal("ragged row accepted")
	}
	if _, err := IntegerLinearProgram([]float64{1}, nil, nil, 0); err == nil {
		t.Fatal("zero penalty accepted")
	}
}

func TestILPEnergyMatchesDefinition(t *testing.T) {
	// min x0 + 2x1 + 3x2  s.t.  x0 + x1 + x2 = 2.
	c := []float64{1, 2, 3}
	A := [][]float64{{1, 1, 1}}
	b := []float64{2}
	p, err := IntegerLinearProgram(c, A, b, 10)
	if err != nil {
		t.Fatal(err)
	}
	for bits := 0; bits < 8; bits++ {
		x := []int8{int8(bits & 1), int8(bits >> 1 & 1), int8(bits >> 2 & 1)}
		want := ObjectiveValue(c, x)
		sum := float64(x[0] + x[1] + x[2])
		want += 10 * (sum - 2) * (sum - 2)
		if got := p.Energy(x); math.Abs(got-want) > 1e-9 {
			t.Fatalf("x=%v: energy %v, want %v", x, got, want)
		}
	}
}

func TestILPBruteForceFindsOptimum(t *testing.T) {
	// min x0 + 2x1 + 3x2  s.t.  x0+x1+x2 = 2 → optimum {x0,x1}, cost 3.
	c := []float64{1, 2, 3}
	A := [][]float64{{1, 1, 1}}
	b := []float64{2}
	p, err := IntegerLinearProgram(c, A, b, SafeILPPenalty(c))
	if err != nil {
		t.Fatal(err)
	}
	x, _ := p.Q.BruteForce()
	if !Feasible(A, b, x, 1e-9) {
		t.Fatalf("optimum %v infeasible", x)
	}
	if got := ObjectiveValue(c, x); got != 3 {
		t.Fatalf("objective %v, want 3", got)
	}
	if x[0] != 1 || x[1] != 1 || x[2] != 0 {
		t.Fatalf("x = %v, want [1 1 0]", x)
	}
}

func TestILPMultipleConstraints(t *testing.T) {
	// min -x0 - x1 - x2 - x3 (i.e. maximize picks)
	// s.t. x0 + x1 = 1, x2 + x3 = 1 → any one from each pair, cost -2.
	c := []float64{-1, -1, -1, -1}
	A := [][]float64{{1, 1, 0, 0}, {0, 0, 1, 1}}
	b := []float64{1, 1}
	p, err := IntegerLinearProgram(c, A, b, SafeILPPenalty(c))
	if err != nil {
		t.Fatal(err)
	}
	x, _ := p.Q.BruteForce()
	if !Feasible(A, b, x, 1e-9) {
		t.Fatalf("optimum %v infeasible", x)
	}
	if got := ObjectiveValue(c, x); got != -2 {
		t.Fatalf("objective %v, want -2", got)
	}
}

func TestILPInfeasibleProblemViolates(t *testing.T) {
	// x0 = 2 is unsatisfiable with binary x0: the QUBO optimum must still
	// exist but every assignment is infeasible.
	c := []float64{0}
	A := [][]float64{{1}}
	b := []float64{2}
	p, err := IntegerLinearProgram(c, A, b, 5)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := p.Q.BruteForce()
	if Feasible(A, b, x, 1e-9) {
		t.Fatal("infeasible problem judged feasible")
	}
	// Best effort: x0=1 (violation 1) beats x0=0 (violation 4).
	if x[0] != 1 {
		t.Fatalf("x = %v, want closest point [1]", x)
	}
}

func TestSafeILPPenaltyDominates(t *testing.T) {
	// Property: with the safe penalty, the brute-force optimum of a random
	// feasible ILP is always feasible.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		c := make([]float64, n)
		for j := range c {
			c[j] = float64(rng.Intn(9) - 4)
		}
		// One cardinality constraint picked to be satisfiable.
		k := 1 + rng.Intn(n-1)
		row := make([]float64, n)
		for j := range row {
			row[j] = 1
		}
		A := [][]float64{row}
		b := []float64{float64(k)}
		p, err := IntegerLinearProgram(c, A, b, SafeILPPenalty(c))
		if err != nil {
			return false
		}
		x, _ := p.Q.BruteForce()
		return Feasible(A, b, x, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFeasibleAndObjectiveHelpers(t *testing.T) {
	A := [][]float64{{1, -1}}
	b := []float64{0}
	if !Feasible(A, b, []int8{1, 1}, 1e-9) {
		t.Fatal("balanced pick judged infeasible")
	}
	if Feasible(A, b, []int8{1, 0}, 1e-9) {
		t.Fatal("unbalanced pick judged feasible")
	}
	if got := ObjectiveValue([]float64{2, 3}, []int8{1, 0}); got != 2 {
		t.Fatalf("objective %v", got)
	}
	// Short assignments treat missing entries as 0.
	if got := ObjectiveValue([]float64{2, 3}, []int8{1}); got != 2 {
		t.Fatalf("short assignment objective %v", got)
	}
}
