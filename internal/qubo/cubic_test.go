package qubo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPBPolyAddAndEnergy(t *testing.T) {
	p := NewPBPoly(3)
	if err := p.Add(2, 0, 1, 2); err != nil { // 2·x0x1x2
		t.Fatal(err)
	}
	if err := p.Add(-1, 1); err != nil { // −x1
		t.Fatal(err)
	}
	if err := p.Add(0.5); err != nil { // constant
		t.Fatal(err)
	}
	cases := []struct {
		b    []int8
		want float64
	}{
		{[]int8{0, 0, 0}, 0.5},
		{[]int8{1, 1, 1}, 2 - 1 + 0.5},
		{[]int8{0, 1, 0}, -1 + 0.5},
		{[]int8{1, 0, 1}, 0.5},
	}
	for _, c := range cases {
		if got := p.Energy(c.b); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Energy(%v) = %v, want %v", c.b, got, c.want)
		}
	}
	if p.Degree() != 3 || p.NumTerms() != 2 {
		t.Fatalf("Degree %d NumTerms %d", p.Degree(), p.NumTerms())
	}
}

func TestPBPolyDuplicateVarsCollapse(t *testing.T) {
	p := NewPBPoly(2)
	if err := p.Add(3, 0, 0, 1); err != nil { // x0²x1 = x0x1
		t.Fatal(err)
	}
	if p.Degree() != 2 {
		t.Fatalf("Degree = %d, want 2 (x²=x)", p.Degree())
	}
	if got := p.Energy([]int8{1, 1}); got != 3 {
		t.Fatalf("Energy = %v", got)
	}
}

func TestPBPolyMergesAndCancels(t *testing.T) {
	p := NewPBPoly(2)
	_ = p.Add(2, 0, 1)
	_ = p.Add(-2, 1, 0) // same term, cancels
	if p.NumTerms() != 0 {
		t.Fatalf("NumTerms = %d after cancellation", p.NumTerms())
	}
	if err := p.Add(1, 5); err == nil {
		t.Fatal("out-of-range variable accepted")
	}
	_ = p.Add(0, 0) // zero coefficient is a no-op
	if p.NumTerms() != 0 {
		t.Fatal("zero-coefficient term stored")
	}
}

// minOverOriginal finds, for every original assignment, the minimum
// quadratized energy over auxiliary completions, and compares against the
// source polynomial.
func checkQuadratizationExact(t *testing.T, p *PBPoly, qz *Quadratized) {
	t.Helper()
	nAll := qz.Q.Dim()
	for origBits := 0; origBits < 1<<p.N; origBits++ {
		orig := make([]int8, p.N)
		for i := range orig {
			orig[i] = int8(origBits >> i & 1)
		}
		want := p.Energy(orig)
		best := math.Inf(1)
		for auxBits := 0; auxBits < 1<<(nAll-p.N); auxBits++ {
			full := make([]int8, nAll)
			copy(full, orig)
			for k := 0; k < nAll-p.N; k++ {
				full[p.N+k] = int8(auxBits >> k & 1)
			}
			if e := qz.Energy(full); e < best {
				best = e
			}
		}
		if math.Abs(best-want) > 1e-9 {
			t.Fatalf("assignment %v: min quadratized %v != poly %v", orig, best, want)
		}
	}
}

func TestQuadratizeCubicExact(t *testing.T) {
	p := NewPBPoly(3)
	_ = p.Add(2, 0, 1, 2)
	_ = p.Add(-1.5, 0, 1)
	_ = p.Add(0.7, 2)
	_ = p.Add(-0.25)
	qz, err := p.Quadratize(0)
	if err != nil {
		t.Fatal(err)
	}
	if qz.Aux != 1 {
		t.Fatalf("Aux = %d, want 1 substitution for one cubic term", qz.Aux)
	}
	checkQuadratizationExact(t, p, qz)
}

func TestQuadratizeDegree4Exact(t *testing.T) {
	p := NewPBPoly(4)
	_ = p.Add(1, 0, 1, 2, 3)
	_ = p.Add(-2, 1, 2, 3)
	qz, err := p.Quadratize(0)
	if err != nil {
		t.Fatal(err)
	}
	if qz.Q.Dim() <= 4 {
		t.Fatal("no auxiliaries introduced for a quartic term")
	}
	checkQuadratizationExact(t, p, qz)
}

func TestQuadratizeQuadraticIsIdentity(t *testing.T) {
	p := NewPBPoly(3)
	_ = p.Add(1, 0, 1)
	_ = p.Add(-2, 2)
	qz, err := p.Quadratize(0)
	if err != nil {
		t.Fatal(err)
	}
	if qz.Aux != 0 || qz.Q.Dim() != 3 {
		t.Fatalf("quadratic poly grew: aux=%d dim=%d", qz.Aux, qz.Q.Dim())
	}
	checkQuadratizationExact(t, p, qz)
}

func TestQuadratizeAuxEqualsProductAtOptimum(t *testing.T) {
	p := NewPBPoly(3)
	_ = p.Add(-5, 0, 1, 2) // minimized by all-ones
	qz, err := p.Quadratize(0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := qz.Q.BruteForce()
	pairs := qz.AuxPairs()
	for k, pair := range pairs {
		z := b[qz.NOrig+k]
		want := b[pair[0]] * b[pair[1]]
		if z != want {
			t.Fatalf("aux %d = %d, want x%d·x%d = %d", k, z, pair[0], pair[1], want)
		}
	}
	if restricted := qz.Restrict(b); len(restricted) != 3 {
		t.Fatalf("Restrict length %d", len(restricted))
	}
}

func TestQuadratizeEmptyPolyRejected(t *testing.T) {
	if _, err := NewPBPoly(0).Quadratize(0); err == nil {
		t.Fatal("empty polynomial accepted")
	}
}

func TestQuickQuadratizePreservesMinima(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(2)
		p := NewPBPoly(n)
		nTerms := 1 + rng.Intn(5)
		for i := 0; i < nTerms; i++ {
			deg := 1 + rng.Intn(3)
			vars := rng.Perm(n)[:deg]
			if p.Add(float64(rng.Intn(9)-4), vars...) != nil {
				return false
			}
		}
		qz, err := p.Quadratize(0)
		if err != nil {
			return false
		}
		if qz.Q.Dim() > 16 {
			return true // too big to enumerate; skip draw
		}
		// Global minimum must transfer.
		_, eQ := qz.Q.BruteForce()
		bestPoly := math.Inf(1)
		for bits := 0; bits < 1<<n; bits++ {
			b := make([]int8, n)
			for i := range b {
				b[i] = int8(bits >> i & 1)
			}
			if e := p.Energy(b); e < bestPoly {
				bestPoly = e
			}
		}
		return math.Abs((eQ+qz.Offset)-bestPoly) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMax3SATValidation(t *testing.T) {
	if _, err := Max3SAT(0, nil); err == nil {
		t.Fatal("no variables accepted")
	}
	if _, err := Max3SAT(3, []Clause3{{Var: [3]int{0, 0, 1}}}); err == nil {
		t.Fatal("repeated variable accepted")
	}
	if _, err := Max3SAT(3, []Clause3{{Var: [3]int{0, 1, 7}}}); err == nil {
		t.Fatal("out-of-range variable accepted")
	}
}

func TestMax3SATPolyCountsViolations(t *testing.T) {
	// (x0 ∨ x1 ∨ x2) ∧ (¬x0 ∨ x1 ∨ ¬x2): check E = #violated everywhere.
	clauses := []Clause3{
		{Var: [3]int{0, 1, 2}},
		{Var: [3]int{0, 1, 2}, Neg: [3]bool{true, false, true}},
	}
	p, err := Max3SAT(3, clauses)
	if err != nil {
		t.Fatal(err)
	}
	for bits := 0; bits < 8; bits++ {
		b := []int8{int8(bits & 1), int8(bits >> 1 & 1), int8(bits >> 2 & 1)}
		want := float64(len(clauses) - CountSatisfied3(clauses, b))
		if got := p.Energy(b); math.Abs(got-want) > 1e-12 {
			t.Fatalf("b=%v: E=%v, want %v violations", b, got, want)
		}
	}
}

func TestMax3SATQuadratizedSolvesInstance(t *testing.T) {
	// A satisfiable instance: the QUBO minimum must satisfy all clauses.
	clauses := []Clause3{
		{Var: [3]int{0, 1, 2}},
		{Var: [3]int{0, 1, 3}, Neg: [3]bool{true, false, false}},
		{Var: [3]int{1, 2, 3}, Neg: [3]bool{false, true, true}},
		{Var: [3]int{0, 2, 3}, Neg: [3]bool{true, true, false}},
	}
	p, err := Max3SAT(4, clauses)
	if err != nil {
		t.Fatal(err)
	}
	qz, err := p.Quadratize(0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := qz.Q.BruteForce()
	assignment := qz.Restrict(b)
	if got := CountSatisfied3(clauses, assignment); got != len(clauses) {
		t.Fatalf("QUBO optimum satisfies %d/%d clauses (b=%v)", got, len(clauses), assignment)
	}
}

func TestMax3SATUnsatisfiableViolatesExactlyOne(t *testing.T) {
	// All 8 sign patterns over {x0,x1,x2}: exactly one clause must fail.
	var clauses []Clause3
	for mask := 0; mask < 8; mask++ {
		clauses = append(clauses, Clause3{
			Var: [3]int{0, 1, 2},
			Neg: [3]bool{mask&1 == 1, mask>>1&1 == 1, mask>>2&1 == 1},
		})
	}
	p, err := Max3SAT(3, clauses)
	if err != nil {
		t.Fatal(err)
	}
	qz, err := p.Quadratize(0)
	if err != nil {
		t.Fatal(err)
	}
	b, e := qz.Q.BruteForce()
	if got := e + qz.Offset; math.Abs(got-1) > 1e-9 {
		t.Fatalf("minimum violations = %v, want exactly 1", got)
	}
	assignment := qz.Restrict(b)
	if got := CountSatisfied3(clauses, assignment); got != 7 {
		t.Fatalf("satisfied %d/8, want 7", got)
	}
}
