package qubo

import (
	"errors"
	"fmt"
)

// SetCover is the MIN-COVER problem (named in the paper's §2.1 workload
// list) reduced to QUBO via the standard counting-variable encoding: choose
// sets x_i ∈ {0,1} minimizing total weight such that every universe element
// is covered at least once. For each element e with candidate sets C_e, the
// encoding adds |C_e| one-hot counting variables y_{e,m} ("e is covered
// exactly m times") and penalizes
//
//	P·(1 − Σ_m y_{e,m})²  +  P·(Σ_m m·y_{e,m} − Σ_{i∈C_e} x_i)²,
//
// both of which vanish exactly when e is covered ≥1 time and the counter
// agrees. The weighted objective Σ w_i·x_i rides on the x diagonal.
type SetCover struct {
	Q       *QUBO
	Offset  float64 // constant absorbed by the penalty expansion
	NumSets int     // x variables come first: indices 0..NumSets-1
	Penalty float64

	universe int
	sets     [][]int
}

// MinSetCover builds the QUBO. universe is the element count (elements are
// 0..universe-1); sets lists each candidate set's elements; weights is the
// per-set cost (nil = unit costs). Every element must appear in at least
// one set, else the instance is unsatisfiable and construction fails.
// SafeSetCoverPenalty gives a sufficient penalty.
func MinSetCover(universe int, sets [][]int, weights []float64, penalty float64) (*SetCover, error) {
	if universe <= 0 {
		return nil, errors.New("qubo: empty universe")
	}
	if len(sets) == 0 {
		return nil, errors.New("qubo: no candidate sets")
	}
	if weights != nil && len(weights) != len(sets) {
		return nil, fmt.Errorf("qubo: %d weights for %d sets", len(weights), len(sets))
	}
	if penalty <= 0 {
		return nil, fmt.Errorf("qubo: penalty %g must be positive", penalty)
	}
	n := len(sets)
	// covering[e] lists the set indices containing element e.
	covering := make([][]int, universe)
	for i, s := range sets {
		for _, e := range s {
			if e < 0 || e >= universe {
				return nil, fmt.Errorf("qubo: set %d contains element %d outside universe [0,%d)", i, e, universe)
			}
			covering[e] = append(covering[e], i)
		}
	}
	total := n
	yBase := make([]int, universe) // first y index of each element
	for e, c := range covering {
		if len(c) == 0 {
			return nil, fmt.Errorf("qubo: element %d is not covered by any set", e)
		}
		yBase[e] = total
		total += len(c)
	}

	q := NewQUBO(total)
	sc := &SetCover{Q: q, NumSets: n, Penalty: penalty, universe: universe, sets: sets}

	// Objective.
	for i := 0; i < n; i++ {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		q.Add(i, i, w)
	}

	P := penalty
	for e, c := range covering {
		k := len(c)
		y := func(m int) int { return yBase[e] + m - 1 } // m = 1..k
		// (1 - Σ y)²: const P, diag -P, pairs +2P.
		sc.Offset += P
		for m := 1; m <= k; m++ {
			q.Add(y(m), y(m), -P)
			for m2 := m + 1; m2 <= k; m2++ {
				q.Add(y(m), y(m2), 2*P)
			}
		}
		// (Σ m·y_m - Σ x_i)²:
		//   A² → diag m²·P, pairs 2·m·m'·P
		//   B² → diag P, pairs 2P
		//   -2AB → cross -2·m·P
		for m := 1; m <= k; m++ {
			q.Add(y(m), y(m), P*float64(m*m))
			for m2 := m + 1; m2 <= k; m2++ {
				q.Add(y(m), y(m2), 2*P*float64(m*m2))
			}
		}
		for a := 0; a < k; a++ {
			q.Add(c[a], c[a], P)
			for b := a + 1; b < k; b++ {
				q.Add(c[a], c[b], 2*P)
			}
		}
		for m := 1; m <= k; m++ {
			for _, i := range c {
				q.Add(y(m), i, -2*P*float64(m))
			}
		}
	}
	return sc, nil
}

// SafeSetCoverPenalty returns a penalty strictly above the worst objective:
// violating any constraint then always costs more than choosing every set.
func SafeSetCoverPenalty(sets [][]int, weights []float64) float64 {
	sum := 1.0
	for i := range sets {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		if w > 0 {
			sum += w
		} else {
			sum -= w
		}
	}
	return sum
}

// Energy returns the penalized objective including the expansion constant.
func (sc *SetCover) Energy(b []int8) float64 {
	return sc.Q.Energy(b) + sc.Offset
}

// Decode extracts the chosen set indices from an assignment and reports
// whether they form a valid cover of the universe.
func (sc *SetCover) Decode(b []int8) (chosen []int, valid bool) {
	for i := 0; i < sc.NumSets && i < len(b); i++ {
		if b[i] == 1 {
			chosen = append(chosen, i)
		}
	}
	return chosen, IsSetCover(sc.universe, sc.sets, chosen)
}

// IsSetCover reports whether the chosen set indices cover every element of
// the universe 0..universe-1.
func IsSetCover(universe int, sets [][]int, chosen []int) bool {
	covered := make([]bool, universe)
	for _, i := range chosen {
		if i < 0 || i >= len(sets) {
			return false
		}
		for _, e := range sets[i] {
			if e >= 0 && e < universe {
				covered[e] = true
			}
		}
	}
	for _, c := range covered {
		if !c {
			return false
		}
	}
	return true
}

// CoverWeight returns the total weight of the chosen sets (unit weights
// when weights is nil).
func CoverWeight(chosen []int, weights []float64) float64 {
	w := 0.0
	for _, i := range chosen {
		if weights == nil {
			w++
		} else if i >= 0 && i < len(weights) {
			w += weights[i]
		}
	}
	return w
}
