package qubo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMinSetCoverValidation(t *testing.T) {
	sets := [][]int{{0, 1}, {1, 2}}
	if _, err := MinSetCover(0, sets, nil, 1); err == nil {
		t.Fatal("empty universe accepted")
	}
	if _, err := MinSetCover(3, nil, nil, 1); err == nil {
		t.Fatal("no sets accepted")
	}
	if _, err := MinSetCover(3, sets, []float64{1}, 1); err == nil {
		t.Fatal("weight count mismatch accepted")
	}
	if _, err := MinSetCover(3, sets, nil, 0); err == nil {
		t.Fatal("zero penalty accepted")
	}
	if _, err := MinSetCover(3, [][]int{{0, 7}}, nil, 1); err == nil {
		t.Fatal("out-of-universe element accepted")
	}
	if _, err := MinSetCover(4, sets, nil, 1); err == nil {
		t.Fatal("uncoverable element accepted")
	}
}

func TestMinSetCoverEnergyDefinition(t *testing.T) {
	// Universe {0,1,2}, sets A={0,1}, B={1,2}, C={2}. Check the penalized
	// energy against the mathematical definition for every assignment.
	universe := 3
	sets := [][]int{{0, 1}, {1, 2}, {2}}
	weights := []float64{1, 2, 0.5}
	P := 10.0
	sc, err := MinSetCover(universe, sets, weights, P)
	if err != nil {
		t.Fatal(err)
	}
	covering := [][]int{{0}, {0, 1}, {1, 2}} // element → covering set indices
	dim := sc.Q.Dim()
	if dim != 3+1+2+2 {
		t.Fatalf("dim = %d, want 8", dim)
	}
	// y layout: element 0 → var 3 (m=1); element 1 → vars 4,5; element 2 → 6,7.
	yBase := []int{3, 4, 6}
	for bits := 0; bits < 1<<dim; bits++ {
		b := make([]int8, dim)
		for j := range b {
			b[j] = int8(bits >> j & 1)
		}
		want := 0.0
		for i, w := range weights {
			if b[i] == 1 {
				want += w
			}
		}
		for e := 0; e < universe; e++ {
			k := len(covering[e])
			sumY, weighted := 0.0, 0.0
			for m := 1; m <= k; m++ {
				if b[yBase[e]+m-1] == 1 {
					sumY++
					weighted += float64(m)
				}
			}
			x := 0.0
			for _, i := range covering[e] {
				if b[i] == 1 {
					x++
				}
			}
			want += P * (1 - sumY) * (1 - sumY)
			want += P * (weighted - x) * (weighted - x)
		}
		if got := sc.Energy(b); math.Abs(got-want) > 1e-9 {
			t.Fatalf("bits %b: energy %v, want %v", bits, got, want)
		}
	}
}

func TestMinSetCoverBruteForceOptimum(t *testing.T) {
	// Universe {0..3}: A={0,1}, B={2,3}, C={0,1,2,3}. Unit weights → C alone
	// is optimal (weight 1 vs A+B weight 2).
	sets := [][]int{{0, 1}, {2, 3}, {0, 1, 2, 3}}
	sc, err := MinSetCover(4, sets, nil, SafeSetCoverPenalty(sets, nil))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := sc.Q.BruteForce()
	chosen, valid := sc.Decode(b)
	if !valid {
		t.Fatalf("optimum %v is not a cover", chosen)
	}
	if CoverWeight(chosen, nil) != 1 || chosen[0] != 2 {
		t.Fatalf("chosen %v, want just set C (index 2)", chosen)
	}
}

func TestMinSetCoverWeightsChangeOptimum(t *testing.T) {
	// Same structure but C is expensive: now A+B wins.
	sets := [][]int{{0, 1}, {2, 3}, {0, 1, 2, 3}}
	weights := []float64{1, 1, 5}
	sc, err := MinSetCover(4, sets, weights, SafeSetCoverPenalty(sets, weights))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := sc.Q.BruteForce()
	chosen, valid := sc.Decode(b)
	if !valid {
		t.Fatalf("optimum %v is not a cover", chosen)
	}
	if len(chosen) != 2 || chosen[0] != 0 || chosen[1] != 1 {
		t.Fatalf("chosen %v, want A and B", chosen)
	}
	if got := CoverWeight(chosen, weights); got != 2 {
		t.Fatalf("weight %v", got)
	}
}

func TestIsSetCoverAndWeightHelpers(t *testing.T) {
	sets := [][]int{{0}, {1}}
	if !IsSetCover(2, sets, []int{0, 1}) {
		t.Fatal("full cover rejected")
	}
	if IsSetCover(2, sets, []int{0}) {
		t.Fatal("partial cover accepted")
	}
	if IsSetCover(2, sets, []int{0, 9}) {
		t.Fatal("out-of-range index accepted")
	}
	if CoverWeight([]int{0, 1}, nil) != 2 {
		t.Fatal("unit weight sum wrong")
	}
	if CoverWeight([]int{1}, []float64{3, 7}) != 7 {
		t.Fatal("weighted sum wrong")
	}
}

// Property: on random coverable instances, the brute-force optimum of the
// safe-penalty QUBO always decodes to a valid cover, and no strictly
// cheaper valid cover exists among all subsets.
func TestQuickMinSetCoverOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		universe := 2 + rng.Intn(3)
		nsets := 2 + rng.Intn(3)
		sets := make([][]int, nsets)
		for i := range sets {
			for e := 0; e < universe; e++ {
				if rng.Intn(2) == 0 {
					sets[i] = append(sets[i], e)
				}
			}
		}
		// Guarantee coverability with one catch-all set.
		all := make([]int, universe)
		for e := range all {
			all[e] = e
		}
		sets = append(sets, all)
		sc, err := MinSetCover(universe, sets, nil, SafeSetCoverPenalty(sets, nil))
		if err != nil {
			return false
		}
		if sc.Q.Dim() > 22 {
			return true // too large to brute-force; skip this draw
		}
		b, _ := sc.Q.BruteForce()
		chosen, valid := sc.Decode(b)
		if !valid {
			return false
		}
		// Exhaustive check over set subsets.
		best := math.Inf(1)
		for mask := 0; mask < 1<<len(sets); mask++ {
			var sub []int
			for i := 0; i < len(sets); i++ {
				if mask>>i&1 == 1 {
					sub = append(sub, i)
				}
			}
			if IsSetCover(universe, sets, sub) {
				if w := CoverWeight(sub, nil); w < best {
					best = w
				}
			}
		}
		return CoverWeight(chosen, nil) == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
