package qubo

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// PBPoly is a pseudo-Boolean polynomial over binary variables 0..N-1: a sum
// of coefficient·Π x_i terms of any degree. It is the natural source form
// for workloads whose penalty expansion is cubic or higher (MAX-3-SAT and
// other k-local reductions); Quadratize lowers it to the 2-local QUBO form
// the Ising hardware requires — the same kind of domain translation the
// paper's stage 1 studies, one level up.
type PBPoly struct {
	N        int
	Constant float64
	terms    map[string]*pbTerm // canonical key → term
}

type pbTerm struct {
	vars  []int // sorted, unique
	coeff float64
}

// NewPBPoly returns the zero polynomial over n variables.
func NewPBPoly(n int) *PBPoly {
	return &PBPoly{N: n, terms: make(map[string]*pbTerm)}
}

func termKey(vars []int) string {
	k := make([]byte, 0, len(vars)*3)
	for _, v := range vars {
		k = append(k, byte(v), byte(v>>8), byte(v>>16))
	}
	return string(k)
}

// Add accumulates coeff·Π vars. Duplicate variables collapse (x² = x);
// an empty variable list adds to the constant. Variables must be in range.
func (p *PBPoly) Add(coeff float64, vars ...int) error {
	if coeff == 0 {
		return nil
	}
	uniq := make([]int, 0, len(vars))
	seen := make(map[int]bool, len(vars))
	for _, v := range vars {
		if v < 0 || v >= p.N {
			return fmt.Errorf("qubo: variable %d outside [0,%d)", v, p.N)
		}
		if !seen[v] {
			seen[v] = true
			uniq = append(uniq, v)
		}
	}
	if len(uniq) == 0 {
		p.Constant += coeff
		return nil
	}
	sort.Ints(uniq)
	key := termKey(uniq)
	if t, ok := p.terms[key]; ok {
		t.coeff += coeff
		if t.coeff == 0 {
			delete(p.terms, key)
		}
		return nil
	}
	p.terms[key] = &pbTerm{vars: uniq, coeff: coeff}
	return nil
}

// Degree returns the largest term degree (0 for a constant polynomial).
func (p *PBPoly) Degree() int {
	d := 0
	for _, t := range p.terms {
		if len(t.vars) > d {
			d = len(t.vars)
		}
	}
	return d
}

// NumTerms returns the number of non-constant terms.
func (p *PBPoly) NumTerms() int { return len(p.terms) }

// Energy evaluates the polynomial on a 0/1 assignment.
func (p *PBPoly) Energy(b []int8) float64 {
	e := p.Constant
	for _, t := range p.terms {
		prod := t.coeff
		for _, v := range t.vars {
			if v >= len(b) || b[v] != 1 {
				prod = 0
				break
			}
		}
		e += prod
	}
	return e
}

// Quadratized is the 2-local image of a higher-degree polynomial: a QUBO
// over the original variables plus one auxiliary variable per substituted
// product pair.
type Quadratized struct {
	Q       *QUBO
	Offset  float64 // constant: min-energy bookkeeping
	NOrig   int     // original variables occupy indices 0..NOrig-1
	Aux     int     // auxiliary variable count
	Penalty float64 // Rosenberg penalty used
	pairs   [][2]int
}

// AuxPairs returns, for each auxiliary variable (in index order starting at
// NOrig), the variable pair whose product it represents. Pair members may
// themselves be auxiliaries (nested substitution for degree > 3).
func (qz *Quadratized) AuxPairs() [][2]int {
	out := make([][2]int, len(qz.pairs))
	copy(out, qz.pairs)
	return out
}

// Quadratize lowers the polynomial to a QUBO by repeated Rosenberg
// substitution: while any term has degree ≥ 3, the variable pair occurring
// in the most such terms is replaced by a fresh auxiliary z with penalty
//
//	M·(x·y − 2·x·z − 2·y·z + 3·z),
//
// which is 0 when z = x·y and ≥ M otherwise. With penalty M greater than
// the total magnitude of the substituted terms, the minima of the QUBO
// restricted to the original variables coincide with the polynomial's.
// Pass penalty ≤ 0 to use the safe automatic value.
func (p *PBPoly) Quadratize(penalty float64) (*Quadratized, error) {
	if p.N == 0 && len(p.terms) == 0 {
		return nil, errors.New("qubo: empty polynomial")
	}
	if penalty <= 0 {
		sum := 1.0
		for _, t := range p.terms {
			sum += math.Abs(t.coeff)
		}
		penalty = sum
	}

	// Work on a mutable copy of the term list.
	type wt struct {
		vars  []int
		coeff float64
	}
	var work []wt
	for _, t := range p.terms {
		vars := make([]int, len(t.vars))
		copy(vars, t.vars)
		work = append(work, wt{vars, t.coeff})
	}
	// Deterministic order for reproducible auxiliary numbering.
	sort.Slice(work, func(i, j int) bool {
		a, b := work[i].vars, work[j].vars
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})

	next := p.N
	var pairs [][2]int
	var penalties [][2]int // (pair) per aux, same as pairs; kept for clarity

	for {
		// Count pair occurrences among high-degree terms.
		counts := map[[2]int]int{}
		maxDeg := 0
		for _, t := range work {
			if len(t.vars) < 3 {
				continue
			}
			if len(t.vars) > maxDeg {
				maxDeg = len(t.vars)
			}
			for i := 0; i < len(t.vars); i++ {
				for j := i + 1; j < len(t.vars); j++ {
					counts[[2]int{t.vars[i], t.vars[j]}]++
				}
			}
		}
		if maxDeg < 3 {
			break
		}
		best := [2]int{-1, -1}
		bestCount := 0
		for pair, c := range counts {
			if c > bestCount || (c == bestCount && (best[0] == -1 ||
				pair[0] < best[0] || (pair[0] == best[0] && pair[1] < best[1]))) {
				best, bestCount = pair, c
			}
		}
		z := next
		next++
		pairs = append(pairs, best)
		penalties = append(penalties, best)
		// Substitute the pair in every high-degree term containing it.
		for i := range work {
			t := &work[i]
			if len(t.vars) < 3 {
				continue
			}
			hasX, hasY := false, false
			for _, v := range t.vars {
				if v == best[0] {
					hasX = true
				}
				if v == best[1] {
					hasY = true
				}
			}
			if !hasX || !hasY {
				continue
			}
			repl := make([]int, 0, len(t.vars)-1)
			for _, v := range t.vars {
				if v != best[0] && v != best[1] {
					repl = append(repl, v)
				}
			}
			repl = append(repl, z)
			sort.Ints(repl)
			t.vars = repl
		}
	}

	q := NewQUBO(next)
	qz := &Quadratized{Q: q, Offset: p.Constant, NOrig: p.N, Aux: next - p.N, Penalty: penalty, pairs: pairs}
	for _, t := range work {
		switch len(t.vars) {
		case 0:
			qz.Offset += t.coeff
		case 1:
			q.Add(t.vars[0], t.vars[0], t.coeff)
		case 2:
			q.Add(t.vars[0], t.vars[1], t.coeff)
		default:
			return nil, fmt.Errorf("qubo: internal: degree-%d term survived quadratization", len(t.vars))
		}
	}
	// Rosenberg penalties.
	for k, pair := range penalties {
		z := p.N + k
		x, y := pair[0], pair[1]
		q.Add(x, y, penalty)
		q.Add(x, z, -2*penalty)
		q.Add(y, z, -2*penalty)
		q.Add(z, z, 3*penalty)
	}
	return qz, nil
}

// Energy returns the quadratized energy including the constant offset.
func (qz *Quadratized) Energy(b []int8) float64 {
	return qz.Q.Energy(b) + qz.Offset
}

// Restrict truncates an assignment over the extended variable space to the
// original variables.
func (qz *Quadratized) Restrict(b []int8) []int8 {
	if len(b) < qz.NOrig {
		return b
	}
	out := make([]int8, qz.NOrig)
	copy(out, b[:qz.NOrig])
	return out
}

// Clause3 is a 3-SAT clause: three literals over distinct variables.
type Clause3 struct {
	Var [3]int
	Neg [3]bool
}

// Satisfied reports whether the clause holds under a 0/1 assignment.
func (c Clause3) Satisfied(b []int8) bool {
	for k := 0; k < 3; k++ {
		lit := c.Var[k] < len(b) && b[c.Var[k]] == 1
		if c.Neg[k] {
			lit = !lit
		}
		if lit {
			return true
		}
	}
	return false
}

// Max3SAT encodes "maximize satisfied clauses" as a pseudo-Boolean
// polynomial: each clause contributes its violation indicator
// Π_k lit'_k(b), a degree-3 term after expansion, so the polynomial's
// minimum equals the minimum number of violated clauses. Quadratize the
// result to obtain hardware-ready QUBO form:
//
//	poly, _ := qubo.Max3SAT(n, clauses)
//	qz, _ := poly.Quadratize(0)
//
// All three literals of a clause must reference distinct variables.
func Max3SAT(nVars int, clauses []Clause3) (*PBPoly, error) {
	if nVars <= 0 {
		return nil, errors.New("qubo: no variables")
	}
	p := NewPBPoly(nVars)
	for ci, cl := range clauses {
		if cl.Var[0] == cl.Var[1] || cl.Var[0] == cl.Var[2] || cl.Var[1] == cl.Var[2] {
			return nil, fmt.Errorf("qubo: clause %d repeats a variable", ci)
		}
		// Violation = Π (a_k·b_k + c_k) with (a,c) from literalPoly.
		var a, c [3]float64
		for k := 0; k < 3; k++ {
			if cl.Var[k] < 0 || cl.Var[k] >= nVars {
				return nil, fmt.Errorf("qubo: clause %d variable %d out of range", ci, cl.Var[k])
			}
			a[k], c[k] = literalPoly(cl.Neg[k])
		}
		// Expand (a0·x0+c0)(a1·x1+c1)(a2·x2+c2).
		for mask := 0; mask < 8; mask++ {
			coeff := 1.0
			var vars []int
			for k := 0; k < 3; k++ {
				if mask>>k&1 == 1 {
					coeff *= a[k]
					vars = append(vars, cl.Var[k])
				} else {
					coeff *= c[k]
				}
			}
			if err := p.Add(coeff, vars...); err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}

// CountSatisfied3 returns the number of satisfied 3-SAT clauses.
func CountSatisfied3(clauses []Clause3, b []int8) int {
	n := 0
	for _, cl := range clauses {
		if cl.Satisfied(b) {
			n++
		}
	}
	return n
}
