package qubo

import (
	"fmt"
	"math/rand"

	"github.com/splitexec/splitexec/internal/graph"
)

// This file provides QUBO formulations of the NP-hard problems the paper
// lists as D-Wave workloads (§2.1): MAX-CUT, vertex cover, number
// partitioning, graph coloring, maximum independent set, and MAX-2-SAT.
// Formulations follow Lucas, "Ising formulations of many NP problems"
// (Frontiers in Physics 2, 2014), translated to the binary domain.

// MaxCut returns the QUBO whose minimum encodes a maximum cut of g:
// E(b) = Σ_{(u,v)∈E} w_uv·(2·b_u·b_v - b_u - b_v); each cut edge contributes
// -w, so -E(b*) is the weight of the maximum cut. A nil weight function
// means unit weights.
func MaxCut(g *graph.Graph, weight func(u, v int) float64) *QUBO {
	q := NewQUBO(g.Order())
	for _, e := range g.Edges() {
		w := 1.0
		if weight != nil {
			w = weight(e.U, e.V)
		}
		q.Add(e.U, e.U, -w)
		q.Add(e.V, e.V, -w)
		q.Add(e.U, e.V, 2*w)
	}
	return q
}

// CutValue returns the total weight of edges cut by the 0/1 partition b.
func CutValue(g *graph.Graph, weight func(u, v int) float64, b []int8) float64 {
	total := 0.0
	for _, e := range g.Edges() {
		if b[e.U] != b[e.V] {
			w := 1.0
			if weight != nil {
				w = weight(e.U, e.V)
			}
			total += w
		}
	}
	return total
}

// NumberPartition returns the QUBO for partitioning values into two sets of
// equal sum: E(b) = (Σ_i v_i·(2b_i-1))², expanded into quadratic form. The
// optimum is 0 exactly when a perfect partition exists; generally E* equals
// the squared residual.
func NumberPartition(values []float64) *QUBO {
	n := len(values)
	q := NewQUBO(n)
	var total float64
	for _, v := range values {
		total += v
	}
	// (2Σv_i b_i - T)² = 4ΣΣ v_i v_j b_i b_j - 4TΣ v_i b_i + T².
	// Constant T² omitted (shifts energy only); record via diagonal terms.
	for i := 0; i < n; i++ {
		q.Add(i, i, 4*values[i]*values[i]-4*total*values[i])
		for j := i + 1; j < n; j++ {
			q.Add(i, j, 8*values[i]*values[j])
		}
	}
	return q
}

// PartitionResidual returns |sum(set0) - sum(set1)| for the partition b.
func PartitionResidual(values []float64, b []int8) float64 {
	d := 0.0
	for i, v := range values {
		if b[i] != 0 {
			d += v
		} else {
			d -= v
		}
	}
	if d < 0 {
		d = -d
	}
	return d
}

// MinVertexCover returns the QUBO for minimum vertex cover of g with
// constraint penalty P > 1: E(b) = Σ_v b_v + P·Σ_{(u,v)∈E}(1-b_u)(1-b_v).
// At the optimum every edge is covered and Σb_v is minimal.
func MinVertexCover(g *graph.Graph, penalty float64) *QUBO {
	q := NewQUBO(g.Order())
	for v := 0; v < g.Order(); v++ {
		q.Add(v, v, 1)
	}
	for _, e := range g.Edges() {
		// P(1 - b_u - b_v + b_u b_v); drop constant P.
		q.Add(e.U, e.U, -penalty)
		q.Add(e.V, e.V, -penalty)
		q.Add(e.U, e.V, penalty)
	}
	return q
}

// IsVertexCover reports whether the set {v : b_v = 1} covers every edge.
func IsVertexCover(g *graph.Graph, b []int8) bool {
	for _, e := range g.Edges() {
		if b[e.U] == 0 && b[e.V] == 0 {
			return false
		}
	}
	return true
}

// MaxIndependentSet returns the QUBO for maximum independent set with edge
// penalty P > 1: E(b) = -Σ_v b_v + P·Σ_{(u,v)∈E} b_u·b_v.
func MaxIndependentSet(g *graph.Graph, penalty float64) *QUBO {
	q := NewQUBO(g.Order())
	for v := 0; v < g.Order(); v++ {
		q.Add(v, v, -1)
	}
	for _, e := range g.Edges() {
		q.Add(e.U, e.V, penalty)
	}
	return q
}

// IsIndependentSet reports whether {v : b_v = 1} contains no edge of g.
func IsIndependentSet(g *graph.Graph, b []int8) bool {
	for _, e := range g.Edges() {
		if b[e.U] == 1 && b[e.V] == 1 {
			return false
		}
	}
	return true
}

// GraphColoring returns the QUBO for proper k-coloring of g using n·k
// one-hot variables b[v*k+c] with penalty weight P:
//
//	E = P·Σ_v (1 - Σ_c b_vc)² + P·Σ_{(u,v)∈E} Σ_c b_uc·b_vc.
//
// E reaches the constant -P·n exactly when a proper coloring exists (each
// vertex one-hot and no edge monochromatic).
func GraphColoring(g *graph.Graph, k int, penalty float64) *QUBO {
	if k < 1 {
		panic(fmt.Sprintf("qubo: coloring needs k >= 1, got %d", k))
	}
	n := g.Order()
	q := NewQUBO(n * k)
	id := func(v, c int) int { return v*k + c }
	for v := 0; v < n; v++ {
		// (1 - Σ_c x_c)² = 1 - 2Σx_c + Σx_c + 2Σ_{c<c'} x_c x_c'
		for c := 0; c < k; c++ {
			q.Add(id(v, c), id(v, c), -penalty)
			for c2 := c + 1; c2 < k; c2++ {
				q.Add(id(v, c), id(v, c2), 2*penalty)
			}
		}
	}
	for _, e := range g.Edges() {
		for c := 0; c < k; c++ {
			q.Add(id(e.U, c), id(e.V, c), penalty)
		}
	}
	return q
}

// DecodeColoring extracts a color per vertex from a one-hot assignment,
// returning (colors, ok) where ok is false if any vertex is not exactly
// one-hot or an edge is monochromatic.
func DecodeColoring(g *graph.Graph, k int, b []int8) ([]int, bool) {
	n := g.Order()
	colors := make([]int, n)
	ok := true
	for v := 0; v < n; v++ {
		colors[v] = -1
		count := 0
		for c := 0; c < k; c++ {
			if b[v*k+c] == 1 {
				colors[v] = c
				count++
			}
		}
		if count != 1 {
			ok = false
		}
	}
	for _, e := range g.Edges() {
		if colors[e.U] != -1 && colors[e.U] == colors[e.V] {
			ok = false
		}
	}
	return colors, ok
}

// Clause is a 2-SAT clause over variables with signs: positive literal i is
// (Var: i, Neg: false).
type Clause struct {
	Var1, Var2 int
	Neg1, Neg2 bool
}

// Max2SAT returns a QUBO whose minimum maximizes the number of satisfied
// clauses: each clause contributes 1 when violated, using the penalty form
// lit1'·lit2' where lit' is the violating value of the literal.
func Max2SAT(nVars int, clauses []Clause) *QUBO {
	q := NewQUBO(nVars)
	for _, cl := range clauses {
		// Violated iff lit1 false AND lit2 false.
		// f(b) = t1(b1)·t2(b2) where t = b for negated literal, (1-b) otherwise.
		a1, c1 := literalPoly(cl.Neg1)
		a2, c2 := literalPoly(cl.Neg2)
		// (a1·b1 + c1)(a2·b2 + c2) = a1a2·b1b2 + a1c2·b1 + a2c1·b2 + c1c2.
		if cl.Var1 == cl.Var2 {
			// b² = b for binary variables.
			q.Add(cl.Var1, cl.Var1, a1*a2+a1*c2+a2*c1)
		} else {
			q.Add(cl.Var1, cl.Var2, a1*a2)
			q.Add(cl.Var1, cl.Var1, a1*c2)
			q.Add(cl.Var2, cl.Var2, a2*c1)
		}
		// Constant c1·c2 dropped (energy shift only).
	}
	return q
}

func literalPoly(neg bool) (a, c float64) {
	if neg {
		return 1, 0 // violating value of ¬x is x itself
	}
	return -1, 1 // violating value of x is (1-x)
}

// CountSatisfied returns the number of clauses satisfied by b.
func CountSatisfied(clauses []Clause, b []int8) int {
	n := 0
	for _, cl := range clauses {
		l1 := b[cl.Var1] == 1
		if cl.Neg1 {
			l1 = !l1
		}
		l2 := b[cl.Var2] == 1
		if cl.Neg2 {
			l2 = !l2
		}
		if l1 || l2 {
			n++
		}
	}
	return n
}

// RandomQUBO returns a QUBO with the given coupling density and coefficients
// uniform in [-1, 1], a standard synthetic benchmark workload.
func RandomQUBO(n int, density float64, rng *rand.Rand) *QUBO {
	q := NewQUBO(n)
	for i := 0; i < n; i++ {
		q.Set(i, i, 2*rng.Float64()-1)
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				q.Set(i, j, 2*rng.Float64()-1)
			}
		}
	}
	return q
}

// RandomIsing returns an Ising model over the edges of g with h and J drawn
// uniformly from {-1, +1} scaled by hScale/jScale, the "random spin glass"
// instances used in D-Wave benchmarking studies.
func RandomIsing(g *graph.Graph, hScale, jScale float64, rng *rand.Rand) *Ising {
	is := NewIsing(g.Order())
	for i := range is.H {
		is.H[i] = hScale * float64(2*rng.Intn(2)-1)
	}
	for _, e := range g.Edges() {
		is.SetCoupling(e.U, e.V, jScale*float64(2*rng.Intn(2)-1))
	}
	return is
}
