package qubo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/splitexec/splitexec/internal/graph"
)

func TestMaxCutK4(t *testing.T) {
	g := graph.Complete(4)
	q := MaxCut(g, nil)
	b, e := q.BruteForce()
	// Max cut of K4 is 4 (2+2 split); E* = -4.
	if e != -4 {
		t.Errorf("min energy = %v, want -4", e)
	}
	if cut := CutValue(g, nil, b); cut != 4 {
		t.Errorf("cut value = %v, want 4", cut)
	}
}

func TestMaxCutBipartiteIsFullCut(t *testing.T) {
	g := graph.CompleteBipartite(3, 3)
	q := MaxCut(g, nil)
	b, e := q.BruteForce()
	if e != -9 {
		t.Errorf("min energy = %v, want -9 (all 9 edges cut)", e)
	}
	if !bipartitionRespected(b, 3) {
		t.Errorf("optimal partition %v does not separate the shores", b)
	}
}

func bipartitionRespected(b []int8, a int) bool {
	for i := 1; i < a; i++ {
		if b[i] != b[0] {
			return false
		}
	}
	for i := a + 1; i < len(b); i++ {
		if b[i] != b[a] {
			return false
		}
	}
	return b[0] != b[a]
}

func TestMaxCutWeighted(t *testing.T) {
	g := graph.Path(3) // edges {0,1},{1,2}
	w := func(u, v int) float64 {
		if u == 0 || v == 0 {
			return 10
		}
		return 1
	}
	q := MaxCut(g, w)
	b, _ := q.BruteForce()
	if cut := CutValue(g, w, b); cut != 11 {
		t.Errorf("weighted max cut = %v, want 11", cut)
	}
	_ = b
}

// Property: MaxCut QUBO energy always equals -CutValue.
func TestMaxCutEnergyIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(10, 0.4, rng)
		q := MaxCut(g, nil)
		b := make([]int8, 10)
		for i := range b {
			b[i] = int8(rng.Intn(2))
		}
		return math.Abs(q.Energy(b)+CutValue(g, nil, b)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNumberPartitionPerfect(t *testing.T) {
	values := []float64{3, 1, 1, 2, 2, 1} // total 10, perfect split exists
	q := NumberPartition(values)
	b, _ := q.BruteForce()
	if r := PartitionResidual(values, b); r != 0 {
		t.Errorf("residual = %v, want 0", r)
	}
}

func TestNumberPartitionResidual(t *testing.T) {
	values := []float64{5, 3, 1} // best split: {5} vs {3,1}, residual 1
	q := NumberPartition(values)
	b, _ := q.BruteForce()
	if r := PartitionResidual(values, b); r != 1 {
		t.Errorf("residual = %v, want 1", r)
	}
}

// Property: the NumberPartition energy differs from the squared signed
// residual by the constant -T² (dropped during construction).
func TestNumberPartitionEnergyIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		values := make([]float64, n)
		total := 0.0
		for i := range values {
			values[i] = float64(rng.Intn(9) + 1)
			total += values[i]
		}
		q := NumberPartition(values)
		b := make([]int8, n)
		for i := range b {
			b[i] = int8(rng.Intn(2))
		}
		r := PartitionResidual(values, b)
		return math.Abs(q.Energy(b)-(r*r-total*total)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMinVertexCoverStar(t *testing.T) {
	g := graph.Star(6) // hub 0: optimal cover is {0}
	q := MinVertexCover(g, 4)
	b, _ := q.BruteForce()
	if !IsVertexCover(g, b) {
		t.Fatal("optimum is not a cover")
	}
	size := 0
	for _, x := range b {
		size += int(x)
	}
	if size != 1 || b[0] != 1 {
		t.Errorf("cover = %v, want just the hub", b)
	}
}

func TestMinVertexCoverCycle(t *testing.T) {
	g := graph.Cycle(5)
	q := MinVertexCover(g, 4)
	b, _ := q.BruteForce()
	if !IsVertexCover(g, b) {
		t.Fatal("optimum is not a cover")
	}
	size := 0
	for _, x := range b {
		size += int(x)
	}
	if size != 3 { // vertex cover number of C5
		t.Errorf("cover size = %d, want 3", size)
	}
}

func TestMaxIndependentSetCycle(t *testing.T) {
	g := graph.Cycle(6)
	q := MaxIndependentSet(g, 4)
	b, _ := q.BruteForce()
	if !IsIndependentSet(g, b) {
		t.Fatal("optimum is not independent")
	}
	size := 0
	for _, x := range b {
		size += int(x)
	}
	if size != 3 {
		t.Errorf("independent set size = %d, want 3", size)
	}
}

func TestGraphColoringTriangle(t *testing.T) {
	g := graph.Complete(3)
	q := GraphColoring(g, 3, 2)
	b, e := q.BruteForce()
	colors, ok := DecodeColoring(g, 3, b)
	if !ok {
		t.Fatalf("optimum is not a proper one-hot coloring: %v -> %v", b, colors)
	}
	// Minimum is -P·n = -6 (constant P·n dropped in construction).
	if e != -6 {
		t.Errorf("min energy = %v, want -6", e)
	}
}

func TestGraphColoringInfeasible(t *testing.T) {
	// K3 is not 2-colorable: the decoded optimum must be flagged invalid.
	g := graph.Complete(3)
	q := GraphColoring(g, 2, 2)
	b, _ := q.BruteForce()
	if _, ok := DecodeColoring(g, 2, b); ok {
		t.Error("2-coloring of K3 reported valid")
	}
}

func TestGraphColoringPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k=0 did not panic")
		}
	}()
	GraphColoring(graph.Complete(2), 0, 1)
}

func TestMax2SATSatisfiable(t *testing.T) {
	// (x0 ∨ x1) ∧ (¬x0 ∨ x1) ∧ (x0 ∨ ¬x1): satisfied by x0=1,x1=1.
	clauses := []Clause{
		{Var1: 0, Var2: 1},
		{Var1: 0, Neg1: true, Var2: 1},
		{Var1: 0, Var2: 1, Neg2: true},
	}
	q := Max2SAT(2, clauses)
	b, _ := q.BruteForce()
	if n := CountSatisfied(clauses, b); n != 3 {
		t.Errorf("satisfied = %d, want 3 (assignment %v)", n, b)
	}
}

// Property: Max2SAT QUBO energy = violated-clause count + constant. Verify
// energy differences match violation-count differences.
func TestMax2SATEnergyTracksViolations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 3 + rng.Intn(4)
		clauses := make([]Clause, 6)
		for i := range clauses {
			clauses[i] = Clause{
				Var1: rng.Intn(nVars), Neg1: rng.Intn(2) == 0,
				Var2: rng.Intn(nVars), Neg2: rng.Intn(2) == 0,
			}
		}
		q := Max2SAT(nVars, clauses)
		b1 := make([]int8, nVars)
		b2 := make([]int8, nVars)
		for i := range b1 {
			b1[i] = int8(rng.Intn(2))
			b2[i] = int8(rng.Intn(2))
		}
		d1 := float64(len(clauses)-CountSatisfied(clauses, b1)) - q.Energy(b1)
		d2 := float64(len(clauses)-CountSatisfied(clauses, b2)) - q.Energy(b2)
		return math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRandomQUBODensity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	q := RandomQUBO(20, 1.0, rng)
	if q.NumTerms() != 190 {
		t.Errorf("full density terms = %d, want 190", q.NumTerms())
	}
	q = RandomQUBO(20, 0, rng)
	if q.NumTerms() != 0 {
		t.Errorf("zero density terms = %d", q.NumTerms())
	}
}

func TestRandomIsingOnGraph(t *testing.T) {
	g := graph.Cycle(8)
	rng := rand.New(rand.NewSource(2))
	is := RandomIsing(g, 1, 1, rng)
	if len(is.J) != 8 {
		t.Errorf("couplings = %d, want 8", len(is.J))
	}
	for _, h := range is.H {
		if h != 1 && h != -1 {
			t.Errorf("h = %v, want ±1", h)
		}
	}
	if !is.Graph().Equal(g) {
		t.Error("coupling graph != input graph")
	}
}
