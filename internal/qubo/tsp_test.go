package qubo

import (
	"math"
	"testing"
)

// square4 is a unit square: optimal tour follows the perimeter, length 4.
func square4() [][]float64 {
	s2 := math.Sqrt2
	return [][]float64{
		{0, 1, s2, 1},
		{1, 0, 1, s2},
		{s2, 1, 0, 1},
		{1, s2, 1, 0},
	}
}

func TestTSPSquareOptimum(t *testing.T) {
	d := square4()
	q, err := TSP(d, TSPPenalty(d))
	if err != nil {
		t.Fatal(err)
	}
	if q.Dim() != 16 {
		t.Fatalf("dim = %d", q.Dim())
	}
	b, _ := q.BruteForce()
	tour, ok := DecodeTour(4, b)
	if !ok {
		t.Fatalf("optimum is not a permutation: %v -> %v", b, tour)
	}
	if l := TourLength(d, tour); math.Abs(l-4) > 1e-9 {
		t.Errorf("tour %v length %v, want 4 (perimeter)", tour, l)
	}
}

func TestTSPTriangle(t *testing.T) {
	d := [][]float64{
		{0, 2, 3},
		{2, 0, 4},
		{3, 4, 0},
	}
	q, err := TSP(d, TSPPenalty(d))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := q.BruteForce()
	tour, ok := DecodeTour(3, b)
	if !ok {
		t.Fatalf("invalid tour: %v", tour)
	}
	// Any 3-cycle has the same length 9.
	if l := TourLength(d, tour); l != 9 {
		t.Errorf("length = %v, want 9", l)
	}
}

func TestTSPValidation(t *testing.T) {
	if _, err := TSP(nil, 1); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := TSP([][]float64{{0, 1}, {1}}, 1); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := TSP([][]float64{{0, 1}, {2, 0}}, 1); err == nil {
		t.Error("asymmetric matrix accepted")
	}
	if _, err := TSP([][]float64{{5}}, 1); err == nil {
		t.Error("nonzero diagonal accepted")
	}
}

func TestDecodeTourRejects(t *testing.T) {
	// Wrong length.
	if _, ok := DecodeTour(2, []int8{1}); ok {
		t.Error("short vector accepted")
	}
	// City visited twice.
	if _, ok := DecodeTour(2, []int8{1, 1, 0, 0}); ok {
		t.Error("double visit accepted")
	}
	// Slot double-booked.
	if _, ok := DecodeTour(2, []int8{1, 0, 1, 0}); ok {
		t.Error("double booking accepted")
	}
	// Valid 2-city tour.
	tour, ok := DecodeTour(2, []int8{1, 0, 0, 1})
	if !ok || tour[0] != 0 || tour[1] != 1 {
		t.Errorf("valid tour rejected: %v %v", tour, ok)
	}
}

func TestTSPPenaltyDominates(t *testing.T) {
	d := square4()
	p := TSPPenalty(d)
	if p <= 4*math.Sqrt2 {
		t.Errorf("penalty %v too small", p)
	}
}

func TestSetPackingBasic(t *testing.T) {
	sets := [][]int{{1, 2}, {2, 3}, {4, 5}, {5, 6}}
	q, err := SetPacking(sets, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, e := q.BruteForce()
	if !IsPacking(sets, b) {
		t.Fatalf("optimum not a packing: %v", b)
	}
	// Best packing picks one of {0,1} and one of {2,3}: 2 sets, E = -2.
	if e != -2 {
		t.Errorf("min energy = %v, want -2", e)
	}
}

func TestSetPackingWeighted(t *testing.T) {
	sets := [][]int{{1}, {1, 2}, {3}}
	weights := []float64{1, 5, 1}
	q, err := SetPacking(sets, weights, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := q.BruteForce()
	// The heavy overlapping set {1,2} (w=5) beats {1}+... {1,2} overlaps
	// {1} only; optimal: {1,2} + {3} = weight 6.
	if b[1] != 1 || b[2] != 1 || b[0] != 0 {
		t.Errorf("selection = %v, want sets 1 and 2", b)
	}
	if !IsPacking(sets, b) {
		t.Error("not a packing")
	}
}

func TestSetPackingValidation(t *testing.T) {
	if _, err := SetPacking([][]int{{1}}, []float64{1, 2}, 1); err == nil {
		t.Error("weight-count mismatch accepted")
	}
}

func TestIsPackingDetectsOverlap(t *testing.T) {
	sets := [][]int{{1, 2}, {2, 3}}
	if IsPacking(sets, []int8{1, 1}) {
		t.Error("overlapping selection accepted")
	}
	if !IsPacking(sets, []int8{1, 0}) {
		t.Error("valid selection rejected")
	}
}
