package qubo

import (
	"errors"
	"fmt"
)

// Binary classification via weak-classifier selection (QBoost). The paper
// cites "training a binary classifier with the quantum adiabatic algorithm"
// (Neven et al.) among the problems mapped to the D-Wave processor; this is
// that mapping. Given K weak classifiers with predictions H[k][s] ∈ {-1,+1}
// on S training samples with labels y[s] ∈ {-1,+1}, select a subset w ∈
// {0,1}ᴷ minimizing the squared training error of the voting ensemble plus
// an L0 sparsity term:
//
//	E(w) = Σ_s ( (1/K)·Σ_k w_k·H[k][s] − y_s )² + λ·Σ_k w_k.
//
// Expanding with w² = w gives a K-variable QUBO; the constant Σ_s y_s² = S
// is recorded in Offset.
type Ensemble struct {
	Q      *QUBO
	Offset float64 // constant: E(w) = Q.Energy(w) + Offset
	K      int     // weak classifier count
	Lambda float64
}

// WeakClassifierEnsemble builds the QBoost selection QUBO. H is indexed
// [classifier][sample]; every prediction and label must be ±1. lambda ≥ 0
// controls sparsity (lambda 0 selects purely by training error).
func WeakClassifierEnsemble(H [][]float64, y []float64, lambda float64) (*Ensemble, error) {
	K := len(H)
	if K == 0 {
		return nil, errors.New("qubo: no weak classifiers")
	}
	S := len(y)
	if S == 0 {
		return nil, errors.New("qubo: no training samples")
	}
	if lambda < 0 {
		return nil, fmt.Errorf("qubo: negative sparsity weight %g", lambda)
	}
	for k, preds := range H {
		if len(preds) != S {
			return nil, fmt.Errorf("qubo: classifier %d has %d predictions, want %d", k, len(preds), S)
		}
		for s, p := range preds {
			if p != 1 && p != -1 {
				return nil, fmt.Errorf("qubo: prediction H[%d][%d]=%g not ±1", k, s, p)
			}
		}
	}
	for s, ys := range y {
		if ys != 1 && ys != -1 {
			return nil, fmt.Errorf("qubo: label y[%d]=%g not ±1", s, ys)
		}
	}
	q := NewQUBO(K)
	invK := 1.0 / float64(K)
	for k := 0; k < K; k++ {
		// Diagonal: Σ_s (H²/K² − 2·H·y/K) + λ, with H² = 1.
		diag := lambda
		for s := 0; s < S; s++ {
			diag += invK*invK - 2*invK*H[k][s]*y[s]
		}
		q.Add(k, k, diag)
		for l := k + 1; l < K; l++ {
			cross := 0.0
			for s := 0; s < S; s++ {
				cross += 2 * invK * invK * H[k][s] * H[l][s]
			}
			if cross != 0 {
				q.Add(k, l, cross)
			}
		}
	}
	return &Ensemble{Q: q, Offset: float64(S), K: K, Lambda: lambda}, nil
}

// Energy returns the full QBoost objective of a selection, including the
// label constant.
func (e *Ensemble) Energy(w []int8) float64 {
	return e.Q.Energy(w) + e.Offset
}

// Predict returns the ensemble vote sign for one sample's weak predictions
// under selection w: +1 if the selected classifiers vote non-negatively,
// else -1. preds is indexed by classifier.
func (e *Ensemble) Predict(w []int8, preds []float64) (int, error) {
	if len(w) != e.K || len(preds) != e.K {
		return 0, fmt.Errorf("qubo: selection %d / predictions %d, want %d", len(w), len(preds), e.K)
	}
	vote := 0.0
	for k := 0; k < e.K; k++ {
		if w[k] == 1 {
			vote += preds[k]
		}
	}
	if vote < 0 {
		return -1, nil
	}
	return 1, nil
}

// TrainingAccuracy returns the fraction of samples the selected ensemble
// classifies correctly. H and y must match the training data shape.
func (e *Ensemble) TrainingAccuracy(w []int8, H [][]float64, y []float64) (float64, error) {
	if len(H) != e.K {
		return 0, fmt.Errorf("qubo: %d classifiers, want %d", len(H), e.K)
	}
	S := len(y)
	if S == 0 {
		return 0, errors.New("qubo: no samples")
	}
	correct := 0
	preds := make([]float64, e.K)
	for s := 0; s < S; s++ {
		for k := 0; k < e.K; k++ {
			preds[k] = H[k][s]
		}
		p, err := e.Predict(w, preds)
		if err != nil {
			return 0, err
		}
		if float64(p) == y[s] {
			correct++
		}
	}
	return float64(correct) / float64(S), nil
}

// SelectedCount returns the number of chosen weak classifiers.
func SelectedCount(w []int8) int {
	n := 0
	for _, b := range w {
		if b == 1 {
			n++
		}
	}
	return n
}
