package qubo

import (
	"math"
	"math/rand"
	"testing"
)

// toyClassifiers builds K weak classifiers on S samples: the first is the
// true labeler, the second is its negation, the rest are random coin flips.
func toyClassifiers(K, S int, rng *rand.Rand) (H [][]float64, y []float64) {
	y = make([]float64, S)
	for s := range y {
		if rng.Intn(2) == 0 {
			y[s] = 1
		} else {
			y[s] = -1
		}
	}
	H = make([][]float64, K)
	for k := range H {
		H[k] = make([]float64, S)
		for s := range H[k] {
			switch k {
			case 0:
				H[k][s] = y[s]
			case 1:
				H[k][s] = -y[s]
			default:
				if rng.Intn(2) == 0 {
					H[k][s] = 1
				} else {
					H[k][s] = -1
				}
			}
		}
	}
	return H, y
}

func TestEnsembleValidation(t *testing.T) {
	if _, err := WeakClassifierEnsemble(nil, []float64{1}, 0); err == nil {
		t.Fatal("no classifiers accepted")
	}
	if _, err := WeakClassifierEnsemble([][]float64{{1}}, nil, 0); err == nil {
		t.Fatal("no samples accepted")
	}
	if _, err := WeakClassifierEnsemble([][]float64{{1}}, []float64{1}, -1); err == nil {
		t.Fatal("negative lambda accepted")
	}
	if _, err := WeakClassifierEnsemble([][]float64{{1, -1}}, []float64{1}, 0); err == nil {
		t.Fatal("ragged predictions accepted")
	}
	if _, err := WeakClassifierEnsemble([][]float64{{0.5}}, []float64{1}, 0); err == nil {
		t.Fatal("non-±1 prediction accepted")
	}
	if _, err := WeakClassifierEnsemble([][]float64{{1}}, []float64{0}, 0); err == nil {
		t.Fatal("non-±1 label accepted")
	}
}

func TestEnsembleEnergyMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	H, y := toyClassifiers(4, 10, rng)
	e, err := WeakClassifierEnsemble(H, y, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	K := len(H)
	for bits := 0; bits < 1<<K; bits++ {
		w := make([]int8, K)
		for k := range w {
			w[k] = int8(bits >> k & 1)
		}
		want := 0.0
		for s := range y {
			vote := 0.0
			for k := range w {
				if w[k] == 1 {
					vote += H[k][s]
				}
			}
			d := vote/float64(K) - y[s]
			want += d * d
		}
		want += 0.3 * float64(SelectedCount(w))
		if got := e.Energy(w); math.Abs(got-want) > 1e-9 {
			t.Fatalf("w=%v: energy %v, want %v", w, got, want)
		}
	}
}

func TestEnsembleBruteForceSelectsTrueLabeler(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	H, y := toyClassifiers(5, 40, rng)
	e, err := WeakClassifierEnsemble(H, y, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := e.Q.BruteForce()
	if w[0] != 1 {
		t.Fatalf("true labeler not selected: w=%v", w)
	}
	if w[1] != 0 {
		t.Fatalf("anti-labeler selected: w=%v", w)
	}
	// The optimum minimizes squared loss, which may trade a little 0/1
	// accuracy for margin; it must still classify most samples and must not
	// lose (in energy) to the labeler-only selection.
	acc, err := e.TrainingAccuracy(w, H, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.75 {
		t.Fatalf("training accuracy %v, want ≥0.75", acc)
	}
	labelerOnly := make([]int8, len(H))
	labelerOnly[0] = 1
	if e.Energy(w) > e.Energy(labelerOnly)+1e-9 {
		t.Fatalf("brute-force optimum %v loses to labeler-only selection", w)
	}
}

func TestEnsembleSparsityTradeoff(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	H, y := toyClassifiers(6, 30, rng)
	loose, err := WeakClassifierEnsemble(H, y, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := WeakClassifierEnsemble(H, y, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	wLoose, _ := loose.Q.BruteForce()
	wTight, _ := tight.Q.BruteForce()
	if SelectedCount(wTight) > SelectedCount(wLoose) {
		t.Fatalf("heavy sparsity chose more classifiers: %d > %d",
			SelectedCount(wTight), SelectedCount(wLoose))
	}
}

func TestPredictAndAccuracy(t *testing.T) {
	H := [][]float64{{1, -1, 1}, {1, 1, -1}}
	y := []float64{1, -1, 1}
	e, err := WeakClassifierEnsemble(H, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Select only the first (perfect) classifier.
	w := []int8{1, 0}
	for s := range y {
		p, err := e.Predict(w, []float64{H[0][s], H[1][s]})
		if err != nil {
			t.Fatal(err)
		}
		if float64(p) != y[s] {
			t.Fatalf("sample %d predicted %d, want %v", s, p, y[s])
		}
	}
	acc, err := e.TrainingAccuracy(w, H, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Fatalf("accuracy %v, want 1", acc)
	}
	// Empty selection votes 0 → +1 by convention.
	p, err := e.Predict([]int8{0, 0}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("empty vote = %d, want +1", p)
	}
	if _, err := e.Predict([]int8{1}, []float64{1, 1}); err == nil {
		t.Fatal("short selection accepted")
	}
	if _, err := e.TrainingAccuracy(w, H[:1], y); err == nil {
		t.Fatal("mismatched H accepted")
	}
	if _, err := e.TrainingAccuracy(w, H, nil); err == nil {
		t.Fatal("empty y accepted")
	}
}

func TestSelectedCount(t *testing.T) {
	if got := SelectedCount([]int8{1, 0, 1, 1}); got != 3 {
		t.Fatalf("SelectedCount = %d", got)
	}
	if got := SelectedCount(nil); got != 0 {
		t.Fatalf("SelectedCount(nil) = %d", got)
	}
}
