package qubo

// Compiled is a flat, read-only compilation of an Ising model for hot-loop
// consumption: CSR adjacency (RowPtr/Col/Val, each undirected coupling stored
// in both directions), the bias vector, and the list of active spins. It
// replaces the per-spin [][]int32/[][]float64 adjacency slices that the
// annealing samplers used to build independently, and carries the fast energy
// paths (local fields, incremental deltas) the compiled annealing kernel is
// built on. A Compiled value is immutable after Compile and therefore safe
// for concurrent use by any number of readers.
type Compiled struct {
	// H is the per-spin bias vector h_i; Offset the constant energy shift.
	H      []float64
	Offset float64

	// RowPtr/Col/Val is the CSR adjacency: the neighbors of spin i are
	// Col[RowPtr[i]:RowPtr[i+1]] with couplings Val[RowPtr[i]:RowPtr[i+1]].
	RowPtr []int32
	Col    []int32
	Val    []float64

	// Active lists the spins that participate in the dynamics (nonzero bias
	// or at least one coupling); the rest are frozen, mirroring unused
	// physical qubits.
	Active []int32
}

// Compile flattens an Ising model into its CSR form. The source model is not
// retained; later mutations of it do not affect the compiled value.
func Compile(m *Ising) *Compiled {
	n := m.Dim()
	deg := make([]int32, n)
	edges := m.Edges()
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	c := &Compiled{
		H:      append([]float64(nil), m.H...),
		Offset: m.Offset,
		RowPtr: make([]int32, n+1),
		Col:    make([]int32, 2*len(edges)),
		Val:    make([]float64, 2*len(edges)),
	}
	for i := 0; i < n; i++ {
		c.RowPtr[i+1] = c.RowPtr[i] + deg[i]
	}
	fill := append([]int32(nil), c.RowPtr[:n:n]...)
	for _, e := range edges {
		j := m.J[e]
		c.Col[fill[e.U]], c.Val[fill[e.U]] = int32(e.V), j
		fill[e.U]++
		c.Col[fill[e.V]], c.Val[fill[e.V]] = int32(e.U), j
		fill[e.V]++
	}
	for i := 0; i < n; i++ {
		if c.H[i] != 0 || deg[i] > 0 {
			c.Active = append(c.Active, int32(i))
		}
	}
	return c
}

// Dim returns the number of spins.
func (c *Compiled) Dim() int { return len(c.H) }

// Degree returns the number of couplings incident to spin i.
func (c *Compiled) Degree(i int) int { return int(c.RowPtr[i+1] - c.RowPtr[i]) }

// LocalField returns h_i + Σ_j J_ij·s_j, the effective field on spin i.
func (c *Compiled) LocalField(s []int8, i int) float64 {
	f := c.H[i]
	for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
		f += c.Val[k] * float64(s[c.Col[k]])
	}
	return f
}

// LocalFields fills dst (grown if needed) with the local field of every spin
// and returns it. This is the O(|E|) initialization of the incremental
// kernel; afterwards fields are maintained per accepted flip.
func (c *Compiled) LocalFields(s []int8, dst []float64) []float64 {
	n := len(c.H)
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		dst[i] = c.LocalField(s, i)
	}
	return dst
}

// EnergyFromFields evaluates E(s) given precomputed local fields, using
// E = Offset + ½ Σ_i s_i·(h_i + field_i); each coupling contributes to two
// fields, so the halved sum counts it exactly once.
func (c *Compiled) EnergyFromFields(s []int8, fields []float64) float64 {
	e := 0.0
	for i, f := range fields {
		e += float64(s[i]) * (c.H[i] + f)
	}
	return c.Offset + 0.5*e
}

// Energy evaluates E(s) from the flat CSR form — the allocation-free fast
// path equivalent to Ising.Energy (which walks the coupling map).
func (c *Compiled) Energy(s []int8) float64 {
	e := c.Offset
	for i, h := range c.H {
		si := float64(s[i])
		f := 0.0
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			f += c.Val[k] * float64(s[c.Col[k]])
		}
		e += si * (h + 0.5*f)
	}
	return e
}

// EnergyDelta returns E(s with spin i flipped) − E(s) in O(deg(i)).
func (c *Compiled) EnergyDelta(s []int8, i int) float64 {
	return -2 * float64(s[i]) * c.LocalField(s, i)
}
