package qubo

// Compiled is a flat, read-only compilation of an Ising model for hot-loop
// consumption: CSR adjacency (RowPtr/Col/Val, each undirected coupling stored
// in both directions), the bias vector, and the list of active spins. It
// replaces the per-spin [][]int32/[][]float64 adjacency slices that the
// annealing samplers used to build independently, and carries the fast energy
// paths (local fields, incremental deltas) the compiled annealing kernel is
// built on. A Compiled value is immutable after Compile and therefore safe
// for concurrent use by any number of readers.
type Compiled struct {
	// H is the per-spin bias vector h_i; Offset the constant energy shift.
	H      []float64
	Offset float64

	// RowPtr/Col/Val is the CSR adjacency: the neighbors of spin i are
	// Col[RowPtr[i]:RowPtr[i+1]] with couplings Val[RowPtr[i]:RowPtr[i+1]].
	RowPtr []int32
	Col    []int32
	Val    []float64

	// Active lists the spins that participate in the dynamics (nonzero bias
	// or at least one coupling); the rest are frozen, mirroring unused
	// physical qubits.
	Active []int32
}

// Compile flattens an Ising model into its CSR form. The source model is not
// retained; later mutations of it do not affect the compiled value.
func Compile(m *Ising) *Compiled {
	n := m.Dim()
	deg := make([]int32, n)
	edges := m.Edges()
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	c := &Compiled{
		H:      append([]float64(nil), m.H...),
		Offset: m.Offset,
		RowPtr: make([]int32, n+1),
		Col:    make([]int32, 2*len(edges)),
		Val:    make([]float64, 2*len(edges)),
	}
	for i := 0; i < n; i++ {
		c.RowPtr[i+1] = c.RowPtr[i] + deg[i]
	}
	fill := append([]int32(nil), c.RowPtr[:n:n]...)
	for _, e := range edges {
		j := m.J[e]
		c.Col[fill[e.U]], c.Val[fill[e.U]] = int32(e.V), j
		fill[e.U]++
		c.Col[fill[e.V]], c.Val[fill[e.V]] = int32(e.U), j
		fill[e.V]++
	}
	for i := 0; i < n; i++ {
		if c.H[i] != 0 || deg[i] > 0 {
			c.Active = append(c.Active, int32(i))
		}
	}
	return c
}

// Dim returns the number of spins.
func (c *Compiled) Dim() int { return len(c.H) }

// Degree returns the number of couplings incident to spin i.
func (c *Compiled) Degree(i int) int { return int(c.RowPtr[i+1] - c.RowPtr[i]) }

// MaxDegree returns the largest number of couplings incident to any spin
// (0 for edgeless models). Hardware working graphs are bounded-degree —
// Chimera couples each qubit to at most L+2 = 6 others — which is what makes
// the fixed-width adjacency form below viable.
func (c *Compiled) MaxDegree() int {
	maxDeg := 0
	for i := range c.H {
		if d := c.Degree(i); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// FixedWidth returns a padded row-major copy of the CSR adjacency: the
// neighbors of spin i are cols[i*width:(i+1)*width] with couplings at the
// same offsets in vals, short rows padded with (i, 0) self-entries that are
// arithmetic no-ops under both gather (adds ±0) and scatter (adds ±2·0).
// Every row then has the same constant trip count with no row-pointer
// loads, which is what the multi-spin annealing kernel's gather/scatter
// loops want on bounded-degree graphs. ok is false when the max degree
// exceeds maxWidth (the padding would outweigh the saved pointer chasing);
// callers fall back to the CSR form.
func (c *Compiled) FixedWidth(maxWidth int) (cols []int32, vals []float64, width int, ok bool) {
	width = c.MaxDegree()
	if width > maxWidth {
		return nil, nil, width, false
	}
	if width == 0 {
		width = 1 // degenerate edgeless model: one padded no-op per row
	}
	n := len(c.H)
	cols = make([]int32, n*width)
	vals = make([]float64, n*width)
	for i := 0; i < n; i++ {
		k := i * width
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			cols[k] = c.Col[p]
			vals[k] = c.Val[p]
			k++
		}
		for ; k < (i+1)*width; k++ {
			cols[k] = int32(i)
		}
	}
	return cols, vals, width, true
}

// LocalField returns h_i + Σ_j J_ij·s_j, the effective field on spin i.
func (c *Compiled) LocalField(s []int8, i int) float64 {
	f := c.H[i]
	for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
		f += c.Val[k] * float64(s[c.Col[k]])
	}
	return f
}

// LocalFields fills dst (grown if needed) with the local field of every spin
// and returns it. This is the O(|E|) initialization of the incremental
// kernel; afterwards fields are maintained per accepted flip.
func (c *Compiled) LocalFields(s []int8, dst []float64) []float64 {
	n := len(c.H)
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		dst[i] = c.LocalField(s, i)
	}
	return dst
}

// EnergyFromFields evaluates E(s) given precomputed local fields, using
// E = Offset + ½ Σ_i s_i·(h_i + field_i); each coupling contributes to two
// fields, so the halved sum counts it exactly once.
func (c *Compiled) EnergyFromFields(s []int8, fields []float64) float64 {
	e := 0.0
	for i, f := range fields {
		e += float64(s[i]) * (c.H[i] + f)
	}
	return c.Offset + 0.5*e
}

// Energy evaluates E(s) from the flat CSR form — the allocation-free fast
// path equivalent to Ising.Energy (which walks the coupling map).
func (c *Compiled) Energy(s []int8) float64 {
	e := c.Offset
	for i, h := range c.H {
		si := float64(s[i])
		f := 0.0
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			f += c.Val[k] * float64(s[c.Col[k]])
		}
		e += si * (h + 0.5*f)
	}
	return e
}

// EnergyDelta returns E(s with spin i flipped) − E(s) in O(deg(i)).
func (c *Compiled) EnergyDelta(s []int8, i int) float64 {
	return -2 * float64(s[i]) * c.LocalField(s, i)
}
