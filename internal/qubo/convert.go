package qubo

// ToIsing translates a QUBO instance into the logical Ising model of the
// paper's Eqs. (4)–(5):
//
//	h_i = Q_ii/2 + (1/4)·Σ_{j≠i} Q_ij,      J_ij = Q_ij/4  (i<j),
//
// under the substitution b_i = (1+s_i)/2. An energy offset
//
//	C = Σ_i Q_ii/2 + Σ_{i<j} Q_ij/4
//
// is recorded so the translation is exactly energy preserving:
// E_QUBO(b) = E_Ising(2b-1) for every assignment, hence argmins coincide.
func ToIsing(q *QUBO) *Ising {
	n := q.Dim()
	is := NewIsing(n)
	for i := 0; i < n; i++ {
		d := q.Get(i, i)
		is.H[i] += d / 2
		is.Offset += d / 2
		for j := i + 1; j < n; j++ {
			c := q.Get(i, j)
			if c == 0 {
				continue
			}
			is.H[i] += c / 4
			is.H[j] += c / 4
			is.SetCoupling(i, j, c/4)
			is.Offset += c / 4
		}
	}
	return is
}

// FromIsing inverts ToIsing, producing the QUBO whose ToIsing equals the
// given model (up to the recorded offset):
//
//	Q_ij = 4·J_ij (i<j),   Q_ii = 2·h_i - Σ_{j≠i} J_ij·...
//
// concretely Q_ii = 2·(h_i - Σ_{j≠i} J_ij).
func FromIsing(is *Ising) *QUBO {
	n := is.Dim()
	q := NewQUBO(n)
	rowSum := make([]float64, n)
	for e, j := range is.J {
		q.Set(e.U, e.V, 4*j)
		rowSum[e.U] += j
		rowSum[e.V] += j
	}
	for i := 0; i < n; i++ {
		q.Set(i, i, 2*(is.H[i]-rowSum[i]))
	}
	return q
}

// ConversionOps reports the operation counts the paper's stage-1 model
// charges for this translation: the QUBO→Ising mapping is counted as
// Ising = n² additions (InitializeData) and the subsequent hardware
// parameter-setting step as n³ operations (ParameterSetting), matching the
// `param Ising = LPS^2` and `param ParameterSetting = LPS^3` lines of Fig. 6
// and the "O(n³) addition operations" statement of §2.2.
func ConversionOps(n int) (isingOps, parameterSettingOps float64) {
	nf := float64(n)
	return nf * nf, nf * nf * nf
}
