package qubo

import (
	"math"
	"math/rand"
	"testing"

	"github.com/splitexec/splitexec/internal/graph"
)

func randomSpins(n int, rng *rand.Rand) []int8 {
	s := make([]int8, n)
	for i := range s {
		s[i] = int8(2*rng.Intn(2) - 1)
	}
	return s
}

func TestCompiledEnergyMatchesIsing(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g := graph.GNP(20, 0.4, rng)
		m := RandomIsing(g, 1, 1, rng)
		m.Offset = rng.NormFloat64()
		c := Compile(m)
		for r := 0; r < 20; r++ {
			s := randomSpins(20, rng)
			want := m.Energy(s)
			if got := c.Energy(s); math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: compiled energy %v, reference %v", trial, got, want)
			}
			fields := c.LocalFields(s, nil)
			if got := c.EnergyFromFields(s, fields); math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: EnergyFromFields %v, reference %v", trial, got, want)
			}
		}
	}
}

func TestCompiledEnergyDeltaMatchesFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.GNP(16, 0.5, rng)
	m := RandomIsing(g, 1, 1, rng)
	c := Compile(m)
	for r := 0; r < 20; r++ {
		s := randomSpins(16, rng)
		base := m.Energy(s)
		for i := 0; i < 16; i++ {
			s[i] = -s[i]
			want := m.Energy(s) - base
			s[i] = -s[i]
			if got := c.EnergyDelta(s, i); math.Abs(got-want) > 1e-9 {
				t.Fatalf("spin %d: compiled delta %v, flip difference %v", i, got, want)
			}
			if got := m.EnergyDelta(s, i); math.Abs(got-want) > 1e-9 {
				t.Fatalf("spin %d: reference delta %v, flip difference %v", i, got, want)
			}
		}
	}
}

func TestCompiledLocalFieldAndAdjacency(t *testing.T) {
	m := NewIsing(5)
	m.H[0] = 0.5
	m.SetCoupling(0, 1, -1)
	m.SetCoupling(1, 2, 2)
	c := Compile(m)
	if c.Dim() != 5 {
		t.Fatalf("Dim = %d", c.Dim())
	}
	if c.Degree(1) != 2 || c.Degree(0) != 1 || c.Degree(3) != 0 {
		t.Fatalf("degrees wrong: %d %d %d", c.Degree(0), c.Degree(1), c.Degree(3))
	}
	// Active: 0 (bias+coupling), 1, 2 (couplings); 3, 4 frozen.
	if len(c.Active) != 3 {
		t.Fatalf("active = %v", c.Active)
	}
	s := []int8{1, -1, 1, 1, 1}
	// field(1) = J01·s0 + J12·s2 = -1·1 + 2·1 = 1.
	if f := c.LocalField(s, 1); math.Abs(f-1) > 1e-12 {
		t.Fatalf("LocalField(1) = %v", f)
	}
	// EnergyDelta(1) = -2·s1·field(1) = 2.
	if d := c.EnergyDelta(s, 1); math.Abs(d-2) > 1e-12 {
		t.Fatalf("EnergyDelta(1) = %v", d)
	}
}

func TestCompileIsImmutableSnapshot(t *testing.T) {
	m := NewIsing(3)
	m.SetCoupling(0, 1, -1)
	c := Compile(m)
	m.SetCoupling(0, 1, 5) // mutate source after compilation
	m.H[2] = 9
	s := []int8{1, 1, 1}
	if e := c.Energy(s); e != -1 {
		t.Fatalf("compiled energy changed with source model: %v", e)
	}
}

func TestCompileEmptyAndFrozenModels(t *testing.T) {
	c := Compile(NewIsing(0))
	if c.Dim() != 0 || len(c.Active) != 0 {
		t.Fatalf("empty compile: %+v", c)
	}
	// All-frozen model: no active spins, energy is the offset plus biases.
	m := NewIsing(4)
	m.Offset = 2.5
	c = Compile(m)
	if len(c.Active) != 0 {
		t.Fatalf("frozen model has active spins: %v", c.Active)
	}
	if e := c.Energy([]int8{1, 1, 1, 1}); e != 2.5 {
		t.Fatalf("frozen energy = %v", e)
	}
}

// FixedWidth must be a lossless re-layout: on bounded-degree graphs every
// padded row reproduces LocalField exactly (self-entries with zero
// coupling are arithmetic no-ops), and it must refuse — not truncate —
// graphs whose degree exceeds the cap.
func TestFixedWidthPadsLosslessly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.Chimera{M: 3, N: 3, L: 4}.Graph() // interior cells reach degree 6
	m := RandomIsing(g, 1, 1, rng)
	c := Compile(m)
	if got := c.MaxDegree(); got != 6 {
		t.Fatalf("Chimera max degree %d, want 6", got)
	}
	cols, vals, width, ok := c.FixedWidth(8)
	if !ok || width != 6 {
		t.Fatalf("FixedWidth: ok=%v width=%d", ok, width)
	}
	if len(cols) != c.Dim()*width || len(vals) != len(cols) {
		t.Fatalf("layout: %d cols, %d vals, want %d", len(cols), len(vals), c.Dim()*width)
	}
	for trial := 0; trial < 10; trial++ {
		s := randomSpins(c.Dim(), rng)
		for i := 0; i < c.Dim(); i++ {
			f := c.H[i]
			for k := i * width; k < (i+1)*width; k++ {
				f += vals[k] * float64(s[cols[k]])
			}
			if want := c.LocalField(s, i); f != want {
				t.Fatalf("row %d: padded field %v, CSR %v", i, f, want)
			}
		}
	}
	// Padding entries must be (i, 0) self-references.
	for i := 0; i < c.Dim(); i++ {
		for k := i*width + c.Degree(i); k < (i+1)*width; k++ {
			if cols[k] != int32(i) || vals[k] != 0 {
				t.Fatalf("row %d pad slot %d: (%d, %v)", i, k, cols[k], vals[k])
			}
		}
	}
}

func TestFixedWidthRefusesHighDegree(t *testing.T) {
	m := NewIsing(10)
	for j := 1; j < 10; j++ {
		m.SetCoupling(0, j, 1) // star: hub degree 9
	}
	c := Compile(m)
	if got := c.MaxDegree(); got != 9 {
		t.Fatalf("max degree %d, want 9", got)
	}
	if cols, _, width, ok := c.FixedWidth(8); ok || cols != nil || width != 9 {
		t.Fatalf("FixedWidth accepted degree 9 under cap 8 (ok=%v width=%d)", ok, width)
	}
	if _, _, width, ok := c.FixedWidth(9); !ok || width != 9 {
		t.Fatalf("FixedWidth refused degree 9 under cap 9 (ok=%v width=%d)", ok, width)
	}
}

func TestFixedWidthEdgelessModel(t *testing.T) {
	m := NewIsing(3)
	m.H[1] = 2 // one active, zero-degree spin
	c := Compile(m)
	if got := c.MaxDegree(); got != 0 {
		t.Fatalf("max degree %d, want 0", got)
	}
	cols, vals, width, ok := c.FixedWidth(8)
	if !ok || width != 1 {
		t.Fatalf("edgeless: ok=%v width=%d, want a single no-op slot", ok, width)
	}
	for i := 0; i < 3; i++ {
		if cols[i] != int32(i) || vals[i] != 0 {
			t.Fatalf("row %d: (%d, %v), want self no-op", i, cols[i], vals[i])
		}
	}
}
