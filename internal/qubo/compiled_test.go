package qubo

import (
	"math"
	"math/rand"
	"testing"

	"github.com/splitexec/splitexec/internal/graph"
)

func randomSpins(n int, rng *rand.Rand) []int8 {
	s := make([]int8, n)
	for i := range s {
		s[i] = int8(2*rng.Intn(2) - 1)
	}
	return s
}

func TestCompiledEnergyMatchesIsing(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g := graph.GNP(20, 0.4, rng)
		m := RandomIsing(g, 1, 1, rng)
		m.Offset = rng.NormFloat64()
		c := Compile(m)
		for r := 0; r < 20; r++ {
			s := randomSpins(20, rng)
			want := m.Energy(s)
			if got := c.Energy(s); math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: compiled energy %v, reference %v", trial, got, want)
			}
			fields := c.LocalFields(s, nil)
			if got := c.EnergyFromFields(s, fields); math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: EnergyFromFields %v, reference %v", trial, got, want)
			}
		}
	}
}

func TestCompiledEnergyDeltaMatchesFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.GNP(16, 0.5, rng)
	m := RandomIsing(g, 1, 1, rng)
	c := Compile(m)
	for r := 0; r < 20; r++ {
		s := randomSpins(16, rng)
		base := m.Energy(s)
		for i := 0; i < 16; i++ {
			s[i] = -s[i]
			want := m.Energy(s) - base
			s[i] = -s[i]
			if got := c.EnergyDelta(s, i); math.Abs(got-want) > 1e-9 {
				t.Fatalf("spin %d: compiled delta %v, flip difference %v", i, got, want)
			}
			if got := m.EnergyDelta(s, i); math.Abs(got-want) > 1e-9 {
				t.Fatalf("spin %d: reference delta %v, flip difference %v", i, got, want)
			}
		}
	}
}

func TestCompiledLocalFieldAndAdjacency(t *testing.T) {
	m := NewIsing(5)
	m.H[0] = 0.5
	m.SetCoupling(0, 1, -1)
	m.SetCoupling(1, 2, 2)
	c := Compile(m)
	if c.Dim() != 5 {
		t.Fatalf("Dim = %d", c.Dim())
	}
	if c.Degree(1) != 2 || c.Degree(0) != 1 || c.Degree(3) != 0 {
		t.Fatalf("degrees wrong: %d %d %d", c.Degree(0), c.Degree(1), c.Degree(3))
	}
	// Active: 0 (bias+coupling), 1, 2 (couplings); 3, 4 frozen.
	if len(c.Active) != 3 {
		t.Fatalf("active = %v", c.Active)
	}
	s := []int8{1, -1, 1, 1, 1}
	// field(1) = J01·s0 + J12·s2 = -1·1 + 2·1 = 1.
	if f := c.LocalField(s, 1); math.Abs(f-1) > 1e-12 {
		t.Fatalf("LocalField(1) = %v", f)
	}
	// EnergyDelta(1) = -2·s1·field(1) = 2.
	if d := c.EnergyDelta(s, 1); math.Abs(d-2) > 1e-12 {
		t.Fatalf("EnergyDelta(1) = %v", d)
	}
}

func TestCompileIsImmutableSnapshot(t *testing.T) {
	m := NewIsing(3)
	m.SetCoupling(0, 1, -1)
	c := Compile(m)
	m.SetCoupling(0, 1, 5) // mutate source after compilation
	m.H[2] = 9
	s := []int8{1, 1, 1}
	if e := c.Energy(s); e != -1 {
		t.Fatalf("compiled energy changed with source model: %v", e)
	}
}

func TestCompileEmptyAndFrozenModels(t *testing.T) {
	c := Compile(NewIsing(0))
	if c.Dim() != 0 || len(c.Active) != 0 {
		t.Fatalf("empty compile: %+v", c)
	}
	// All-frozen model: no active spins, energy is the offset plus biases.
	m := NewIsing(4)
	m.Offset = 2.5
	c = Compile(m)
	if len(c.Active) != 0 {
		t.Fatalf("frozen model has active spins: %v", c.Active)
	}
	if e := c.Energy([]int8{1, 1, 1, 1}); e != 2.5 {
		t.Fatalf("frozen energy = %v", e)
	}
}
