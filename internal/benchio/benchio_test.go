package benchio

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rep := &Report{
		Schema:       Schema,
		GeneratedUTC: "2026-08-07T00:00:00Z",
		Host:         CurrentHost(),
		Results: []Result{
			{Name: "kernel/metropolis/spins=128", Iterations: 100, NsPerOp: 80000, NsPerProposal: 9.5},
			{Name: "success/scalar/sweeps=8", Iterations: 4096, SuccessRate: 0.42},
		},
	}
	path := filepath.Join(dir, DefaultFilename(time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)))
	if want := filepath.Join(dir, "BENCH_2026-08-07.json"); path != want {
		t.Fatalf("DefaultFilename: %s", path)
	}
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 2 || got.Results[0].NsPerProposal != 9.5 || got.Results[1].SuccessRate != 0.42 {
		t.Fatalf("round trip mangled results: %+v", got.Results)
	}
	if got.Find("success/scalar/sweeps=8") == nil || got.Find("nope") != nil {
		t.Fatal("Find misbehaves")
	}
}

func TestLoadRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	rep := &Report{Schema: Schema + 1, GeneratedUTC: "x"}
	path := filepath.Join(dir, "BENCH_2026-01-01.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("expected a schema error")
	}
}

func TestFindBaselinePicksNewest(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2026-01-02.json", "BENCH_2026-03-01.json", "BENCH_2025-12-31.json", "notes.txt"} {
		rep := &Report{Schema: Schema}
		if err := rep.WriteFile(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
	got := FindBaseline(dir)
	if filepath.Base(got) != "BENCH_2026-03-01.json" {
		t.Fatalf("FindBaseline = %q", got)
	}
	if FindBaseline(t.TempDir()) != "" {
		t.Fatal("expected no baseline in an empty dir")
	}
}

func TestCompareFlagsSlowdownsOnly(t *testing.T) {
	old := &Report{Schema: Schema, Results: []Result{
		{Name: "a", NsPerOp: 100, NsPerProposal: 10},
		{Name: "b", NsPerOp: 100},
		{Name: "gone", NsPerOp: 1},
		{Name: "s-ok", SuccessRate: 0.5},
		{Name: "s-bad", SuccessRate: 0.5},
	}}
	new := &Report{Schema: Schema, Results: []Result{
		{Name: "a", NsPerOp: 200, NsPerProposal: 20}, // 2x slower
		{Name: "b", NsPerOp: 90},                     // faster
		{Name: "fresh", NsPerOp: 5},
		{Name: "s-ok", SuccessRate: 0.48},  // within the band
		{Name: "s-bad", SuccessRate: 0.25}, // halved: regression
	}}
	deltas := Compare(old, new, 1.25)
	if len(deltas) != 6 {
		t.Fatalf("got %d deltas", len(deltas))
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if d := byName["a"]; !d.Warn || d.Metric != "ns/proposal" || d.Ratio != 2 {
		t.Fatalf("a: %+v", d)
	}
	if d := byName["b"]; d.Warn || d.Metric != "ns/op" {
		t.Fatalf("b: %+v", d)
	}
	if byName["gone"].Missing != "new" || byName["fresh"].Missing != "old" {
		t.Fatal("missing-side detection broken")
	}
	if d := byName["s-ok"]; d.Warn || d.Metric != "success" {
		t.Fatalf("s-ok: %+v", d)
	}
	if d := byName["s-bad"]; !d.Warn || d.Metric != "success" {
		t.Fatalf("s-bad: %+v", d)
	}
	if !AnyWarn(deltas) {
		t.Fatal("AnyWarn should fire")
	}

	var sb strings.Builder
	if err := WriteComparison(&sb, old, new, deltas); err != nil {
		t.Fatal(err)
	}
	if out := sb.String(); !strings.Contains(out, "slower") || !strings.Contains(out, "ns/proposal") {
		t.Fatalf("comparison table missing markers:\n%s", out)
	}
}

// The full suite is exercised with a tiny time budget: every probe must
// produce a result with sane metrics, and the two success-rate probes must
// both see a nonzero ground-state rate on the one-cell instance.
func TestSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("suite smoke is a second-scale test")
	}
	rep := Run(SuiteOptions{Time: 5 * time.Millisecond, Log: t.Logf})
	if rep.Schema != Schema || rep.GeneratedUTC == "" {
		t.Fatal("header not populated")
	}
	want := []string{
		"kernel/metropolis/spins=128",
		"kernel/bitparallel/spins=128",
		"kernel/bitparallel-float/spins=128",
		"kernel/sqa/spins=32",
		"device/execute/reads=64/workers=4",
		"device/execute/reads=64/workers=4/bitparallel",
		"success/scalar/sweeps=8",
		"success/bitparallel/sweeps=8",
	}
	for _, name := range want {
		r := rep.Find(name)
		if r == nil {
			t.Fatalf("suite missing %s", name)
		}
		if strings.HasPrefix(name, "success/") {
			if r.SuccessRate <= 0 || r.SuccessRate > 1 {
				t.Fatalf("%s: success rate %v", name, r.SuccessRate)
			}
			continue
		}
		if r.NsPerOp <= 0 || r.Iterations <= 0 {
			t.Fatalf("%s: %+v", name, r)
		}
		if strings.HasPrefix(name, "kernel/") && r.NsPerProposal <= 0 {
			t.Fatalf("%s: no ns/proposal", name)
		}
	}
	if len(rep.Results) != len(want) {
		t.Fatalf("suite emitted %d results, want %d", len(rep.Results), len(want))
	}
}
