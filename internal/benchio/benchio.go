// Package benchio records kernel benchmark results as schema-versioned
// JSON reports and compares them against a committed baseline — the
// "benchmark trajectory" of the repository. `splitexec bench` writes
// BENCH_<UTC-date>.json files with this package; CI replays the suite on
// every push and reports per-benchmark ratios against the newest committed
// baseline (warn-only: machines differ, so the gate flags drift rather
// than failing builds).
package benchio

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// Schema identifies the report layout. Bump it on incompatible changes;
// Load rejects reports from a different schema so a comparison never
// silently mixes layouts.
const Schema = 1

// DefaultFilename returns the conventional baseline name for a report
// generated at t: BENCH_<UTC-date>.json.
func DefaultFilename(t time.Time) string {
	return "BENCH_" + t.UTC().Format("2006-01-02") + ".json"
}

// Host describes the machine a report was measured on. Reports from
// different hosts are still comparable as trajectories, but absolute
// ratios across hosts mean little; Compare surfaces both hosts so the
// reader can judge.
type Host struct {
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// CPUModel is best-effort (parsed from /proc/cpuinfo on Linux); empty
	// when unavailable.
	CPUModel string `json:"cpu_model,omitempty"`
}

// CurrentHost captures the running machine.
func CurrentHost() Host {
	return Host{
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		CPUModel:  cpuModel(),
	}
}

// cpuModel extracts the processor model name from /proc/cpuinfo, returning
// "" on any failure (non-Linux, unreadable, unexpected format).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}

// Result is one benchmark's measurement. NsPerOp is always set; the
// derived metrics are zero when the benchmark does not report them.
type Result struct {
	Name          string  `json:"name"`
	Iterations    int     `json:"iterations"`
	NsPerOp       float64 `json:"ns_per_op"`
	NsPerProposal float64 `json:"ns_per_proposal,omitempty"`
	MBPerSec      float64 `json:"mb_per_sec,omitempty"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	// SuccessRate is the measured per-read ground-state probability for
	// the success-rate probes (Fig. 9's observable); zero elsewhere.
	SuccessRate float64 `json:"success_rate,omitempty"`
}

// Report is one full run of the benchmark suite.
type Report struct {
	Schema       int      `json:"schema"`
	GeneratedUTC string   `json:"generated_utc"`
	Host         Host     `json:"host"`
	Results      []Result `json:"results"`
}

// Find returns the named result, or nil.
func (r *Report) Find(name string) *Result {
	for i := range r.Results {
		if r.Results[i].Name == name {
			return &r.Results[i]
		}
	}
	return nil
}

// Load reads and validates a report file.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("benchio: %s: %w", path, err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("benchio: %s: schema %d, want %d", path, rep.Schema, Schema)
	}
	return &rep, nil
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FindBaseline returns the lexically newest BENCH_*.json in dir ("" = "."),
// which under the date-stamped naming convention is the most recent
// committed baseline. It returns "" when none exists.
func FindBaseline(dir string) string {
	if dir == "" {
		dir = "."
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return ""
	}
	best := ""
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasPrefix(name, "BENCH_") && strings.HasSuffix(name, ".json") && name > best {
			best = name
		}
	}
	if best == "" {
		return ""
	}
	return dir + string(os.PathSeparator) + best
}

// Delta is one benchmark compared across two reports. Ratio is new/old
// time (NsPerProposal when both sides have it, NsPerOp otherwise), so
// values above 1 are slowdowns.
type Delta struct {
	Name   string  `json:"name"`
	Metric string  `json:"metric"`
	Old    float64 `json:"old,omitempty"`
	New    float64 `json:"new,omitempty"`
	Ratio  float64 `json:"ratio,omitempty"`
	// Warn marks ratios beyond the comparison threshold.
	Warn bool `json:"warn,omitempty"`
	// Missing marks benchmarks present on one side only.
	Missing string `json:"missing,omitempty"`
}

// Compare evaluates new against old benchmark-by-benchmark. warnRatio is
// the slowdown threshold (e.g. 1.25 warns at +25%); speedups never warn.
func Compare(old, new *Report, warnRatio float64) []Delta {
	seen := map[string]bool{}
	var out []Delta
	for _, o := range old.Results {
		seen[o.Name] = true
		n := new.Find(o.Name)
		if n == nil {
			out = append(out, Delta{Name: o.Name, Missing: "new"})
			continue
		}
		d := Delta{Name: o.Name, Metric: "ns/op", Old: o.NsPerOp, New: n.NsPerOp}
		switch {
		case o.SuccessRate > 0 && n.SuccessRate > 0:
			// Success-rate probes regress downward: warn when the rate
			// dropped by the threshold factor, never on improvement.
			d.Metric, d.Old, d.New = "success", o.SuccessRate, n.SuccessRate
			d.Ratio = d.New / d.Old
			d.Warn = d.Ratio < 1/warnRatio
			out = append(out, d)
			continue
		case o.NsPerProposal > 0 && n.NsPerProposal > 0:
			d.Metric, d.Old, d.New = "ns/proposal", o.NsPerProposal, n.NsPerProposal
		}
		if d.Old > 0 {
			d.Ratio = d.New / d.Old
			d.Warn = d.Ratio > warnRatio
		}
		out = append(out, d)
	}
	for _, n := range new.Results {
		if !seen[n.Name] {
			out = append(out, Delta{Name: n.Name, Missing: "old"})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AnyWarn reports whether any delta crossed the threshold.
func AnyWarn(deltas []Delta) bool {
	for _, d := range deltas {
		if d.Warn {
			return true
		}
	}
	return false
}

// WriteComparison renders deltas as an aligned human-readable table.
func WriteComparison(w io.Writer, old, new *Report, deltas []Delta) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "benchmark\tmetric\told\tnew\tratio\t\n")
	for _, d := range deltas {
		if d.Missing != "" {
			fmt.Fprintf(tw, "%s\t-\t-\t-\tonly in %s\t\n", d.Name, map[string]string{"new": "baseline", "old": "this run"}[d.Missing])
			continue
		}
		flag := ""
		if d.Warn {
			flag = "  <-- slower"
			if d.Metric == "success" {
				flag = "  <-- success rate dropped"
			}
		}
		fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.3f\t%.2fx%s\t\n", d.Name, d.Metric, d.Old, d.New, d.Ratio, flag)
	}
	fmt.Fprintf(tw, "\nbaseline: %s (%s/%s, %s)\n", old.GeneratedUTC, old.Host.OS, old.Host.Arch, old.Host.CPUModel)
	fmt.Fprintf(tw, "this run: %s (%s/%s, %s)\n", new.GeneratedUTC, new.Host.OS, new.Host.Arch, new.Host.CPUModel)
	return tw.Flush()
}
