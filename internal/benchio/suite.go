package benchio

import (
	"math/rand"
	"runtime"
	"time"

	"github.com/splitexec/splitexec/internal/anneal"
	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/qubo"
)

// wordReplicas mirrors the multi-spin kernel's packing width (64 replicas
// per uint64 word) for proposal accounting.
const wordReplicas = 64

// SuiteOptions tune the recorded suite.
type SuiteOptions struct {
	// Time is the minimum measured duration per benchmark (default 300ms).
	// CI smoke runs use a small value; committed baselines the default.
	Time time.Duration
	// Log, when non-nil, receives one line per benchmark as it completes.
	Log func(format string, args ...interface{})
}

func (o SuiteOptions) withDefaults() SuiteOptions {
	if o.Time <= 0 {
		o.Time = 300 * time.Millisecond
	}
	if o.Log == nil {
		o.Log = func(string, ...interface{}) {}
	}
	return o
}

// Run measures the kernel benchmark suite — the same hot paths as the
// `go test -bench` microbenchmarks in internal/anneal, recorded into a
// Report for the committed benchmark trajectory: the scalar Metropolis
// kernel, both multi-spin word kernels (bit-sliced integer and float),
// the SQA kernel, the parallel-read device path, and the Fig. 9
// success-rate observable under both kernels.
func Run(opts SuiteOptions) *Report {
	opts = opts.withDefaults()
	rep := &Report{
		Schema:       Schema,
		GeneratedUTC: time.Now().UTC().Format(time.RFC3339),
		Host:         CurrentHost(),
	}
	rng := rand.New(rand.NewSource(1))
	chimera := func(cells int) *qubo.Ising {
		g := graph.Chimera{M: cells, N: cells, L: 4}.Graph()
		return qubo.RandomIsing(g, 1, 1, rand.New(rand.NewSource(1)))
	}

	// Scalar Metropolis kernel: one anneal per op, 64 sweeps.
	{
		m := chimera(4)
		s := anneal.NewSampler(m, anneal.SamplerOptions{Sweeps: 64})
		spins := make([]int8, m.Dim())
		for i := range spins {
			spins[i] = int8(2*(i%2) - 1)
		}
		r := measure("kernel/metropolis/spins=128", opts, func() {
			s.AnnealFrom(spins, rng)
		})
		r.NsPerProposal = r.NsPerOp / float64(64*s.ActiveSpins())
		rep.add(opts, r)
	}

	// Multi-spin word kernels through the public collection path: one op
	// is a full 64-replica word. The ±1 Chimera program engages the
	// bit-sliced integer kernel; Gaussian biases force the float kernel.
	for _, bench := range []struct {
		name  string
		model func() *qubo.Ising
	}{
		{"kernel/bitparallel/spins=128", func() *qubo.Ising { return chimera(4) }},
		{"kernel/bitparallel-float/spins=128", func() *qubo.Ising {
			m := chimera(4)
			hr := rand.New(rand.NewSource(5))
			for i := range m.H {
				m.H[i] = hr.NormFloat64()
			}
			return m
		}},
	} {
		m := bench.model()
		s := anneal.NewSampler(m, anneal.SamplerOptions{Sweeps: 64, BitParallel: true})
		seed := int64(0)
		r := measure(bench.name, opts, func() {
			s.SampleParallel(wordReplicas, 1, seed)
			seed++
		})
		r.NsPerProposal = r.NsPerOp / float64(64*wordReplicas*s.ActiveSpins())
		rep.add(opts, r)
	}

	// Path-integral (SQA) kernel: 64 sweeps over 8 Trotter replicas.
	{
		m := chimera(2)
		s := anneal.NewSQASampler(m, anneal.SQAOptions{Sweeps: 64, Replicas: 8})
		r := measure("kernel/sqa/spins=32", opts, func() {
			s.Anneal(rng)
		})
		r.NsPerProposal = r.NsPerOp / float64(64*8*s.ActiveSpins())
		rep.add(opts, r)
	}

	// Device execute path: 64 reads fanned across 4 readout workers, with
	// and without the word kernel underneath.
	for _, bp := range []bool{false, true} {
		name := "device/execute/reads=64/workers=4"
		if bp {
			name += "/bitparallel"
		}
		m := chimera(2)
		d := anneal.NewDevice(anneal.DW2Timings(), anneal.SamplerOptions{Sweeps: 64, BitParallel: bp})
		d.Workers = 4
		d.Program(m)
		r := measure(name, opts, func() {
			if _, err := d.Execute(64, rng); err != nil {
				panic(err)
			}
		})
		rep.add(opts, r)
	}

	// Fig. 9 observable: per-read ground-state probability on a one-cell
	// spin glass, scalar vs word kernel. Not a timing probe — the pair
	// documents that the kernel swap leaves the physics unchanged.
	{
		m := chimera(1)
		_, e0 := m.BruteForce()
		const reads = 64 * wordReplicas
		hit := func(set *anneal.SampleSet) float64 {
			n := 0
			for _, smp := range set.Samples {
				if smp.Energy <= e0+1e-9 {
					n++
				}
			}
			return float64(n) / float64(len(set.Samples))
		}
		for _, bp := range []bool{false, true} {
			name := "success/scalar/sweeps=8"
			if bp {
				name = "success/bitparallel/sweeps=8"
			}
			s := anneal.NewSampler(m, anneal.SamplerOptions{Sweeps: 8, BitParallel: bp})
			r := Result{Name: name, Iterations: reads, SuccessRate: hit(s.SampleParallel(reads, 4, 1001))}
			rep.add(opts, r)
		}
	}
	return rep
}

func (r *Report) add(opts SuiteOptions, res Result) {
	r.Results = append(r.Results, res)
	if res.NsPerProposal > 0 {
		opts.Log("%-44s %12.1f ns/op  %8.3f ns/proposal  %6d allocs/op", res.Name, res.NsPerOp, res.NsPerProposal, res.AllocsPerOp)
	} else if res.SuccessRate > 0 || res.NsPerOp == 0 {
		opts.Log("%-44s success rate %.4f over %d reads", res.Name, res.SuccessRate, res.Iterations)
	} else {
		opts.Log("%-44s %12.1f ns/op  %6d allocs/op", res.Name, res.NsPerOp, res.AllocsPerOp)
	}
}

// measure times fn with a doubling-iteration loop until the measured run
// lasts at least opts.Time, reporting the final run's per-op time and
// per-op heap allocations (mallocs delta — best-effort, matching what
// -benchmem reports for single-goroutine bodies).
func measure(name string, opts SuiteOptions, fn func()) Result {
	fn() // warm caches and scratch out of the measurement
	var ms0, ms1 runtime.MemStats
	iters := 1
	for {
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		if elapsed >= opts.Time || iters >= 1<<30 {
			perOp := float64(elapsed.Nanoseconds()) / float64(iters)
			return Result{
				Name:        name,
				Iterations:  iters,
				NsPerOp:     perOp,
				AllocsPerOp: int64(ms1.Mallocs-ms0.Mallocs) / int64(iters),
				BytesPerOp:  int64(ms1.TotalAlloc-ms0.TotalAlloc) / int64(iters),
			}
		}
		// Grow toward the target in one or two more runs.
		next := iters * 2
		if elapsed > 0 {
			if est := int(float64(iters) * 1.2 * float64(opts.Time) / float64(elapsed)); est > next {
				next = est
			}
		}
		iters = next
	}
}
