package benchio

import (
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/arch"
	"github.com/splitexec/splitexec/internal/qubo"
	"github.com/splitexec/splitexec/internal/router"
	"github.com/splitexec/splitexec/internal/service"
)

// The router dispatch benchmarks live beside the kernel suite so the CI
// bench smoke (`-bench . -benchtime 1x`) keeps the federation's hot path —
// shard-key extraction and the full router→shard wire round trip —
// compiling, running and visibly allocation-bounded.

// benchFederation stands up n loopback shard services behind a router and
// returns the router plus a teardown closure.
func benchFederation(b *testing.B, n int) (*router.Router, func()) {
	b.Helper()
	addrs := make([]string, n)
	svcs := make([]*service.Service, n)
	for i := range addrs {
		svc, err := service.New(service.Options{Workers: 2, Fleet: 2, QueueDepth: 256})
		if err != nil {
			b.Fatal(err)
		}
		addr, err := svc.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		svcs[i] = svc
		addrs[i] = addr.String()
	}
	rt, err := router.New(router.Options{Shards: addrs, PingEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	return rt, func() {
		rt.Drain()
		for _, svc := range svcs {
			svc.CloseListener()
			svc.Drain()
		}
	}
}

func benchProfileReq(class int) service.SolveRequest {
	req := service.EncodeProfile(arch.JobProfile{
		PreProcess:  20 * time.Microsecond,
		QPUService:  20 * time.Microsecond,
		PostProcess: 10 * time.Microsecond,
	})
	req.Class = class
	return req
}

// BenchmarkRouterShardKey measures key extraction alone — the per-request
// routing cost before any I/O: a map-free class key for profile jobs, a
// QUBO decode plus canonical structure hash for solver jobs.
func BenchmarkRouterShardKey(b *testing.B) {
	b.Run("profile", func(b *testing.B) {
		req := benchProfileReq(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := router.ShardKey(req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("qubo", func(b *testing.B) {
		q := qubo.NewQUBO(8)
		for i := 0; i < 8; i++ {
			q.Set(i, (i+1)%8, 1)
			q.Set(i, i, -1)
		}
		req := service.EncodeQUBO(q)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := router.ShardKey(req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRouterDispatch measures one complete dispatch through the
// fabric: key → ring owner → shard queue → pooled wire client → service
// round trip, over three loopback shards.
func BenchmarkRouterDispatch(b *testing.B) {
	rt, stop := benchFederation(b, 3)
	defer stop()
	req := benchProfileReq(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := rt.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		if !resp.OK {
			b.Fatalf("refused: %s", resp.Error)
		}
	}
}

// BenchmarkRouterDispatchConcurrent drives the same path from parallel
// submitters across all three classes, so queue contention and work
// stealing are in the measured loop rather than idle.
func BenchmarkRouterDispatchConcurrent(b *testing.B) {
	rt, stop := benchFederation(b, 3)
	defer stop()
	reqs := []service.SolveRequest{benchProfileReq(0), benchProfileReq(1), benchProfileReq(2)}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			resp, err := rt.Submit(reqs[i%len(reqs)])
			if err != nil {
				b.Fatal(err)
			}
			if !resp.OK {
				b.Fatalf("refused: %s", resp.Error)
			}
			i++
		}
	})
}
