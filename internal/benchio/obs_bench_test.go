package benchio

import (
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/arch"
	"github.com/splitexec/splitexec/internal/obs"
	"github.com/splitexec/splitexec/internal/service"
)

// The telemetry overhead benchmarks pin the central promise of the obs
// layer: a deployment that never passes -obs pays one nil-check branch per
// instrumentation site on the Submit hot path — single-digit nanoseconds
// and zero allocations — while an armed registry stays a lock-free atomic
// add. They run in the CI bench smoke beside the kernel suite, so either
// cost regressing (or starting to allocate) is visible on every push.

// BenchmarkObsDisabled measures the nil-receiver fast path of each handle
// kind the service tier touches per job. This is the disabled-registry
// Submit-path delta: every sample must stay within a couple of nanoseconds.
func BenchmarkObsDisabled(b *testing.B) {
	b.Run("counter", func(b *testing.B) {
		var c *obs.Counter
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("histogram", func(b *testing.B) {
		var h *obs.Histogram
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(time.Duration(i))
		}
	})
	b.Run("span", func(b *testing.B) {
		var tr *obs.Tracer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := tr.Start("job", int64(i), 0)
			sp.Event(obs.StageQueue)
			sp.Finish("")
		}
	})
	b.Run("drift", func(b *testing.B) {
		var d *obs.DriftAlarm
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d.Observe(0, time.Duration(i))
		}
	})
}

// BenchmarkObsEnabled measures the armed counterparts: atomic counter
// increments, the histogram's binary-search bucket add, and a full traced
// span through the ring buffer.
func BenchmarkObsEnabled(b *testing.B) {
	b.Run("counter", func(b *testing.B) {
		reg := obs.NewRegistry()
		c := reg.Counter("bench_jobs_total")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("histogram", func(b *testing.B) {
		reg := obs.NewRegistry()
		h := reg.Histogram("bench_sojourn_seconds", nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(time.Duration(i%1000) * time.Microsecond)
		}
	})
	b.Run("span", func(b *testing.B) {
		tr := obs.NewTracer(obs.DefaultTraceCapacity)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := tr.Start("job", int64(i), 0)
			sp.Event(obs.StageQueue)
			sp.Finish("")
		}
	})
}

// BenchmarkServiceSubmitObs drives the real Submit path end to end —
// profile jobs through a live worker pool — once without a scope and once
// with the full scope armed, so the whole-stack overhead (counters, three
// histograms, a traced span per job) is measured in context, not just in
// microbenchmark isolation.
func BenchmarkServiceSubmitObs(b *testing.B) {
	profile := arch.JobProfile{
		PreProcess:  10 * time.Microsecond,
		QPUService:  10 * time.Microsecond,
		PostProcess: 5 * time.Microsecond,
	}
	run := func(b *testing.B, scope *obs.Scope) {
		svc, err := service.New(service.Options{Workers: 2, Fleet: 2, QueueDepth: 4096, Obs: scope})
		if err != nil {
			b.Fatal(err)
		}
		defer svc.Drain()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t, err := svc.SubmitProfile(profile)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := t.Wait(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) { run(b, obs.NewScope()) })
}
