package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/splitexec/splitexec/internal/anneal"
	"github.com/splitexec/splitexec/internal/embed"
	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/machine"
	"github.com/splitexec/splitexec/internal/qubo"
)

// testConfig returns a solver config on a small Vesuvius-class QPU with a
// strong sampler, suitable for exact comparisons on tiny problems.
func testConfig(seed int64) Config {
	node := machine.SimpleNode()
	node.QPU = machine.DW2Vesuvius()
	node.QPU.Topology = graph.Chimera{M: 3, N: 3, L: 4}
	return Config{
		Node:    node,
		Seed:    seed,
		Sampler: anneal.SamplerOptions{Sweeps: 256},
		Embed:   embed.Options{MaxTries: 20},
	}
}

func TestSolveQUBOMaxCutEndToEnd(t *testing.T) {
	g := graph.Cycle(6)
	q := qubo.MaxCut(g, nil)
	s := NewSolver(testConfig(1))
	sol, err := s.SolveQUBO(q)
	if err != nil {
		t.Fatal(err)
	}
	// C6 is bipartite: max cut = 6, optimal QUBO energy = -6.
	if cut := qubo.CutValue(g, nil, sol.Binary); cut != 6 {
		t.Errorf("cut = %v, want 6 (solution %v)", cut, sol.Binary)
	}
	if math.Abs(sol.Energy-(-6)) > 1e-9 {
		t.Errorf("energy = %v, want -6", sol.Energy)
	}
	if sol.Reads != 4 { // pa=0.99, ps=0.7 → Eq. 6 gives 4
		t.Errorf("reads = %d, want 4", sol.Reads)
	}
	if sol.Samples.Len() != sol.Reads {
		t.Errorf("samples = %d", sol.Samples.Len())
	}
}

func TestSolveIsingMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		cfg := testConfig(seed)
		// Higher accuracy → more reads → near-certain ground state on
		// these tiny instances.
		cfg.Accuracy = 0.9999
		s := NewSolver(cfg)
		rngModel := qubo.RandomIsing(graph.Cycle(7), 1, 1, rand.New(rand.NewSource(seed)))
		want, wantE := rngModel.BruteForce()
		_ = want
		sol, err := s.SolveIsing(rngModel)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if math.Abs(sol.Energy-wantE) > 1e-9 {
			t.Errorf("seed %d: energy %v, exact %v", seed, sol.Energy, wantE)
		}
	}
}

func TestSolutionTimingAccounting(t *testing.T) {
	q := qubo.MaxCut(graph.Cycle(5), nil)
	s := NewSolver(testConfig(2))
	sol, err := s.SolveQUBO(q)
	if err != nil {
		t.Fatal(err)
	}
	tm := sol.Timing
	if tm.Total() != tm.Stage1()+tm.Stage2()+tm.Stage3() {
		t.Error("Total != sum of stages")
	}
	// Virtual QPU constants are exact.
	wantProg := machine.DW2Vesuvius().Timings.ProcessorInitialize()
	if tm.Program != wantProg {
		t.Errorf("program time = %v, want %v", tm.Program, wantProg)
	}
	wantExec := machine.DW2Vesuvius().Timings.ExecutionTime(sol.Reads)
	if tm.Execute != wantExec {
		t.Errorf("execute time = %v, want %v", tm.Execute, wantExec)
	}
	if tm.EmbedSearch <= 0 {
		t.Error("embed search time not measured")
	}
	// The paper's conclusion holds on the simulated path too: stage 1
	// (including the 0.32 s programming constant) dwarfs stage 2.
	if tm.Stage1() < tm.Stage2() {
		t.Errorf("stage1 %v < stage2 %v", tm.Stage1(), tm.Stage2())
	}
}

func TestSolverEmbeddingValid(t *testing.T) {
	q := qubo.MaxCut(graph.Complete(5), nil)
	s := NewSolver(testConfig(3))
	sol, err := s.SolveQUBO(q)
	if err != nil {
		t.Fatal(err)
	}
	logical := qubo.ToIsing(q)
	if err := graph.ValidateMinor(logical.Graph(), s.Hardware(), sol.Embedding, false); err != nil {
		t.Errorf("returned embedding invalid: %v", err)
	}
	if sol.EmbedStats.Tries < 1 {
		t.Error("embed stats missing")
	}
}

func TestSolverDeterministicBySeed(t *testing.T) {
	q := qubo.MaxCut(graph.Cycle(6), nil)
	s1, err := NewSolver(testConfig(7)).SolveQUBO(q)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSolver(testConfig(7)).SolveQUBO(q)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Energy != s2.Energy || s1.Reads != s2.Reads {
		t.Error("same seed produced different results")
	}
	for i := range s1.Spins {
		if s1.Spins[i] != s2.Spins[i] {
			t.Fatal("spin vectors differ")
		}
	}
}

func TestSolverRejectsUnembeddable(t *testing.T) {
	cfg := testConfig(4)
	cfg.Node.QPU.Topology = graph.Chimera{M: 1, N: 1, L: 4}
	cfg.Embed = embed.Options{MaxTries: 2, MaxIterations: 3}
	s := NewSolver(cfg)
	// K9 cannot fit in one unit cell (8 qubits).
	q := qubo.MaxCut(graph.Complete(9), nil)
	if _, err := s.SolveQUBO(q); err == nil {
		t.Error("unembeddable problem succeeded")
	}
}

func TestSolverAccuracyControlsReads(t *testing.T) {
	q := qubo.MaxCut(graph.Cycle(4), nil)
	cfg := testConfig(5)
	cfg.Accuracy = 0.5
	low, err := NewSolver(cfg).SolveQUBO(q)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Accuracy = 0.9999
	high, err := NewSolver(cfg).SolveQUBO(q)
	if err != nil {
		t.Fatal(err)
	}
	if low.Reads >= high.Reads {
		t.Errorf("reads: %d (pa=0.5) >= %d (pa=0.9999)", low.Reads, high.Reads)
	}
	wantLow, _ := anneal.RequiredReads(0.5, 0.7)
	if low.Reads != wantLow {
		t.Errorf("low reads = %d, want %d", low.Reads, wantLow)
	}
}

func TestSolverQuantizeControl(t *testing.T) {
	cfg := testConfig(6)
	cfg.QuantizeControl = true
	cfg.Node.QPU.ControlBits = 4
	s := NewSolver(cfg)
	q := qubo.MaxCut(graph.Cycle(6), nil)
	sol, err := s.SolveQUBO(q)
	if err != nil {
		t.Fatal(err)
	}
	// MAX-CUT on C6 has integral coefficients, so coarse quantization must
	// still solve it exactly.
	if cut := qubo.CutValue(graph.Cycle(6), nil, sol.Binary); cut != 6 {
		t.Errorf("quantized solve cut = %v", cut)
	}
}

func TestSolverDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Node.Name != "SimpleNode" {
		t.Errorf("default node = %q", cfg.Node.Name)
	}
	if cfg.Accuracy != 0.99 || cfg.SuccessProb != 0.7 {
		t.Errorf("defaults: pa=%v ps=%v", cfg.Accuracy, cfg.SuccessProb)
	}
}

func TestEmbeddingCacheHitPath(t *testing.T) {
	cache := NewEmbeddingCache()
	cfg := testConfig(8)
	cfg.Cache = cache
	q := qubo.MaxCut(graph.Cycle(6), nil)

	s := NewSolver(cfg)
	first, err := s.SolveQUBO(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Timing.CacheHit {
		t.Error("first solve claims cache hit")
	}
	if cache.Len() != 1 {
		t.Fatalf("cache size = %d", cache.Len())
	}

	// Second solve of an isomorphic problem (relabeled cycle) hits.
	relabeled := graph.New(6)
	perm := []int{3, 5, 1, 0, 4, 2}
	for _, e := range graph.Cycle(6).Edges() {
		relabeled.AddEdge(perm[e.U], perm[e.V])
	}
	q2 := qubo.MaxCut(relabeled, nil)
	second, err := NewSolver(cfg).SolveQUBO(q2)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Timing.CacheHit {
		t.Error("isomorphic problem missed the cache")
	}
	if second.Timing.EmbedSearch >= first.Timing.EmbedSearch*10 {
		t.Error("cache hit did not avoid embedding work")
	}
	if cut := qubo.CutValue(relabeled, nil, second.Binary); cut != 6 {
		t.Errorf("cached-embedding solve cut = %v", cut)
	}
	hits, misses := cache.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("cache stats: hits=%d misses=%d", hits, misses)
	}
}

func TestEmbeddingCacheDirect(t *testing.T) {
	cache := NewEmbeddingCache()
	c := graph.Chimera{M: 1, N: 1, L: 4}
	hw := c.Graph()
	g := graph.Complete(2)
	vm := graph.VertexModel{0: {c.Index(0, 0, 0, 0)}, 1: {c.Index(0, 0, 1, 0)}}
	cache.Store(g, vm)
	if got := cache.Lookup(graph.Complete(2)); got == nil {
		t.Fatal("identical graph missed")
	}
	if got := cache.Lookup(graph.Complete(3)); got != nil {
		t.Fatal("different graph hit")
	}
	// Mutating the stored vm must not affect the cache (clone-on-store).
	vm[0][0] = 99
	got := cache.Lookup(graph.Complete(2))
	if got[0][0] == 99 {
		t.Error("cache shares storage with caller")
	}
	if err := graph.ValidateMinor(g, hw, got, true); err != nil {
		t.Errorf("cached embedding invalid: %v", err)
	}
}

func TestSolverChainRepairOption(t *testing.T) {
	cfg := testConfig(12)
	cfg.ChainRepair = true
	// Weak sampler on a denser problem to provoke broken chains sometimes;
	// regardless, repair must never hurt the returned energy.
	cfg.Sampler = anneal.SamplerOptions{Sweeps: 4}
	g := graph.Complete(5)
	q := qubo.MaxCut(g, nil)
	logical := qubo.ToIsing(q)

	plain := cfg
	plain.ChainRepair = false
	solPlain, err := NewSolver(plain).SolveQUBO(q)
	if err != nil {
		t.Fatal(err)
	}
	solRepair, err := NewSolver(cfg).SolveQUBO(q)
	if err != nil {
		t.Fatal(err)
	}
	_ = logical
	if solRepair.Energy > solPlain.Energy+1e-9 {
		t.Errorf("repair produced worse energy: %v vs %v", solRepair.Energy, solPlain.Energy)
	}
	if solRepair.BrokenChains == 0 && solRepair.RepairFlips != 0 {
		t.Error("flips recorded without broken chains")
	}
}

func TestSolverQuantumSubstrate(t *testing.T) {
	cfg := testConfig(13)
	cfg.SQA = &anneal.SQAOptions{Sweeps: 96, Replicas: 8}
	cfg.Accuracy = 0.9999
	g := graph.Cycle(6)
	sol, err := NewSolver(cfg).SolveQUBO(qubo.MaxCut(g, nil))
	if err != nil {
		t.Fatal(err)
	}
	if cut := qubo.CutValue(g, nil, sol.Binary); cut != 6 {
		t.Errorf("SQA substrate cut = %v, want 6", cut)
	}
	// Timing model is substrate independent: same hardware constants.
	if sol.Timing.Execute != cfg.Node.QPU.Timings.ExecutionTime(sol.Reads) {
		t.Errorf("execute time = %v", sol.Timing.Execute)
	}
}

// ReadWorkers only parallelizes stage-2 readout wall-clock; for a fixed seed
// the solution (spins, energy, full sample ensemble) must be byte-identical
// at every worker count.
func TestSolveDeterministicAcrossReadWorkers(t *testing.T) {
	g := graph.Cycle(8)
	q := qubo.MaxCut(g, nil)
	var want *Solution
	for _, workers := range []int{1, 4} {
		cfg := testConfig(9)
		cfg.ReadWorkers = workers
		sol, err := NewSolver(cfg).SolveQUBO(q)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = sol
			continue
		}
		if sol.Energy != want.Energy || !reflect.DeepEqual(sol.Spins, want.Spins) {
			t.Fatalf("workers=%d solution diverged: %v vs %v", workers, sol.Energy, want.Energy)
		}
		if !reflect.DeepEqual(sol.Samples.Samples, want.Samples.Samples) {
			t.Fatalf("workers=%d readout ensemble diverged", workers)
		}
	}
}
