package core

import (
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/parallel"
	"github.com/splitexec/splitexec/internal/qubo"
)

// batchJobs builds n identical MaxCut jobs on the small test node.
func batchJobs(n int) []BatchJob {
	jobs := make([]BatchJob, n)
	for i := range jobs {
		jobs[i] = BatchJob{
			Config: testConfig(0), // zero seed: SolveBatch derives per-job streams
			QUBO:   qubo.MaxCut(graph.Cycle(6), nil),
		}
	}
	return jobs
}

// stripTiming clears the wall-clock fields so solutions compare by content.
func stripTiming(r []BatchResult) {
	for i := range r {
		if r[i].Solution != nil {
			r[i].Solution.Timing = Timing{}
		}
	}
}

func TestSolveBatchMatchesSerialSolves(t *testing.T) {
	jobs := batchJobs(6)

	par, err := SolveBatch(jobs, BatchOptions{Workers: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ser, err := SolveBatch(jobs, BatchOptions{Workers: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	stripTiming(par)
	stripTiming(ser)
	if !reflect.DeepEqual(par, ser) {
		t.Fatal("parallel batch differs from serial batch")
	}

	// Each result must equal a direct solve with the same derived seed.
	for i, r := range par {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Index != i {
			t.Fatalf("job %d reported index %d", i, r.Index)
		}
		cfg := testConfig(parallel.DeriveSeed(9, i))
		want, err := NewSolver(cfg).SolveQUBO(qubo.MaxCut(graph.Cycle(6), nil))
		if err != nil {
			t.Fatal(err)
		}
		if r.Solution.Energy != want.Energy || !reflect.DeepEqual(r.Solution.Spins, want.Spins) {
			t.Fatalf("job %d: batch solution diverges from direct solve", i)
		}
		// C6 is bipartite: every job should find the -6 optimum.
		if r.Solution.Energy != -6 {
			t.Errorf("job %d: energy %v, want -6", i, r.Solution.Energy)
		}
	}
}

func TestSolveBatchExplicitSeedWins(t *testing.T) {
	jobs := batchJobs(2)
	jobs[0].Config.Seed = 1234
	jobs[1].Config.Seed = 1234
	res, err := SolveBatch(jobs, BatchOptions{Workers: 2, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	// Identical explicit seeds mean identical solves, whatever the batch seed.
	if res[0].Err != nil || res[1].Err != nil {
		t.Fatal(res[0].Err, res[1].Err)
	}
	if !reflect.DeepEqual(res[0].Solution.Spins, res[1].Solution.Spins) {
		t.Fatal("pinned-seed jobs diverged")
	}
}

func TestSolveBatchPerJobErrors(t *testing.T) {
	jobs := batchJobs(3)
	jobs[1].QUBO = nil // neither problem set: structural error on that job only
	res, err := SolveBatch(jobs, BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || res[2].Err != nil {
		t.Fatalf("healthy jobs failed: %v %v", res[0].Err, res[2].Err)
	}
	if res[1].Err == nil || !strings.Contains(res[1].Err.Error(), "exactly one") {
		t.Fatalf("job 1 error = %v", res[1].Err)
	}
	both := batchJobs(1)
	both[0].Ising = qubo.ToIsing(both[0].QUBO)
	res, err = SolveBatch(both, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err == nil {
		t.Fatal("job with both QUBO and Ising accepted")
	}
}

func TestSolveBatchEmptyAndProgress(t *testing.T) {
	if _, err := SolveBatch(nil, BatchOptions{}); err == nil {
		t.Fatal("empty batch accepted")
	}
	jobs := batchJobs(5)
	var calls atomic.Int32
	res, err := SolveBatch(jobs, BatchOptions{
		Workers:    3,
		OnProgress: func(done, total int) { calls.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 || calls.Load() != 5 {
		t.Fatalf("results=%d progress calls=%d, want 5 and 5", len(res), calls.Load())
	}
}
