package core

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/splitexec/splitexec/internal/anneal"
	"github.com/splitexec/splitexec/internal/embed"
	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/machine"
	"github.com/splitexec/splitexec/internal/parallel"
	"github.com/splitexec/splitexec/internal/stats"
)

// This file regenerates the data series behind every figure of the paper's
// evaluation (Fig. 9a/9b/9c) plus the stage-dominance summary of §3.3.

// Fig9aPoint is one point of Fig. 9(a): stage-1 time versus the size n of a
// complete input graph. Model is the ASPEN worst-case prediction (solid
// line); Measured is the wall-clock time of an actual Cai–Macready–Roy
// embedding run on this host (the dashed, experimentally-observed line).
// Measured is zero for n above the measurable range or when the heuristic
// failed.
type Fig9aPoint struct {
	N              int
	ModelSeconds   float64
	MeasuredSecs   float64
	MeasuredOK     bool
	PhysicalQubits int
	MaxChain       int
}

// Fig9aOptions bound the measured series.
type Fig9aOptions struct {
	// MeasureUpTo limits CMR wall-clock measurement to n <= this value
	// (the paper's dashed line stops at 30). Zero means 30.
	MeasureUpTo int
	// Seed drives the randomized embedder. Each point embeds with its own
	// RNG stream derived from (Seed, pointIndex), so the embedding
	// results (qubit counts, chain lengths) are reproducible under any
	// worker count.
	Seed int64
	// Embed configures the CMR heuristic.
	Embed embed.Options
	// Workers bounds the per-point evaluation pool (<= 0 selects
	// GOMAXPROCS). The CMR measurements are the expensive part of the
	// figure; they fan out across host cores. Points are returned in input
	// order regardless of completion order. Note that MeasuredSecs is
	// per-point wall-clock: with Workers > 1, concurrent embeddings
	// compete for the host and can inflate each other's measured time —
	// use Workers = 1 when the absolute timings matter more than
	// generating the series quickly.
	Workers int
}

// Fig9a computes the Fig. 9(a) series for the given sizes on node.
func Fig9a(ns []int, node machine.Node, opts Fig9aOptions) ([]Fig9aPoint, error) {
	if opts.MeasureUpTo == 0 {
		opts.MeasureUpTo = 30
	}
	pred := NewPredictor(node)
	hw := node.QPU.WorkingGraph()
	out := make([]Fig9aPoint, len(ns))
	err := parallel.ForEach(len(ns), opts.Workers, func(i int) error {
		n := ns[i]
		r, err := pred.Stage1(n)
		if err != nil {
			return err
		}
		pt := Fig9aPoint{N: n, ModelSeconds: r.TotalSeconds()}
		if n <= opts.MeasureUpTo {
			g := graph.Complete(n)
			rng := rand.New(rand.NewSource(parallel.DeriveSeed(opts.Seed, i)))
			start := time.Now()
			vm, st, err := embed.FindEmbedding(g, hw, rng, opts.Embed)
			elapsed := time.Since(start)
			if err == nil {
				pt.MeasuredSecs = elapsed.Seconds()
				pt.MeasuredOK = true
				pt.PhysicalQubits = st.PhysicalQubits
				pt.MaxChain = vm.MaxChainLength()
			}
		}
		out[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig9bPoint is one point of Fig. 9(b): stage-2 time versus desired
// accuracy pa at fixed single-run success ps. Model comes from the ASPEN
// listing; Virtual is the device's virtual-clock time for the same read
// count (they agree by construction and are reported separately as a
// consistency check).
type Fig9bPoint struct {
	Accuracy     float64
	Reads        int
	ModelSeconds float64
	VirtualSecs  float64
}

// Fig9b computes the Fig. 9(b) series.
func Fig9b(accuracies []float64, ps float64, node machine.Node) ([]Fig9bPoint, error) {
	pred := NewPredictor(node)
	out := make([]Fig9bPoint, 0, len(accuracies))
	for _, pa := range accuracies {
		r, err := pred.Stage2(pa, ps)
		if err != nil {
			return nil, err
		}
		reads, err := anneal.RequiredReads(pa, ps)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig9bPoint{
			Accuracy:     pa,
			Reads:        reads,
			ModelSeconds: r.TotalSeconds(),
			VirtualSecs:  node.QPU.Timings.ExecutionTime(reads).Seconds(),
		})
	}
	return out, nil
}

// Fig9cPoint is one point of Fig. 9(c): stage-3 time versus input size.
// Model is the ASPEN prediction; Measured is the wall-clock heapsort of an
// actual readout ensemble of that shape.
type Fig9cPoint struct {
	N            int
	Results      int
	ModelSeconds float64
	MeasuredSecs float64
	Comparisons  int
}

// Fig9c computes the Fig. 9(c) series using the listing's defaults
// (ps = 0.75, pa = 0.99 → 4 results).
func Fig9c(ns []int, node machine.Node, seed int64) ([]Fig9cPoint, error) {
	pred := NewPredictor(node)
	rng := rand.New(rand.NewSource(seed))
	const pa, ps = 0.99, 0.75
	results, err := anneal.RequiredReads(pa, ps)
	if err != nil {
		return nil, err
	}
	out := make([]Fig9cPoint, 0, len(ns))
	for _, n := range ns {
		r, err := pred.Stage3(n, pa, ps)
		if err != nil {
			return nil, err
		}
		// Build a synthetic readout ensemble of `results` samples of
		// length n and heapsort it, as stage 3 does.
		set := anneal.NewSampleSet(n)
		spins := make([]int8, n)
		for i := 0; i < results; i++ {
			for j := range spins {
				spins[j] = int8(2*rng.Intn(2) - 1)
			}
			set.Add(spins, rng.NormFloat64())
		}
		start := time.Now()
		comps := set.SortByEnergy()
		elapsed := time.Since(start)
		out = append(out, Fig9cPoint{
			N:            n,
			Results:      results,
			ModelSeconds: r.TotalSeconds(),
			MeasuredSecs: elapsed.Seconds(),
			Comparisons:  comps,
		})
	}
	return out, nil
}

// DominanceRow summarizes the §3.3 conclusion for one problem size: the
// stage-1 share of the predicted time-to-solution.
type DominanceRow struct {
	N           int
	Stages      StageSeconds
	Stage1Share float64 // fraction of total
}

// StageDominance computes the per-stage predictions across sizes and the
// stage-1 share, demonstrating the paper's conclusion that the bottleneck is
// the classical pre-processing stage.
func StageDominance(ns []int, pa, ps float64, node machine.Node) ([]DominanceRow, error) {
	pred := NewPredictor(node)
	out := make([]DominanceRow, 0, len(ns))
	for _, n := range ns {
		s, err := pred.Predict(n, pa, ps)
		if err != nil {
			return nil, err
		}
		total := s.Total()
		row := DominanceRow{N: n, Stages: s}
		if total > 0 {
			row.Stage1Share = s.Stage1 / total
		}
		out = append(out, row)
	}
	return out, nil
}

// ScalingExponent fits the model curve of a Fig. 9(a) series to a power law
// t = c·n^k over points with positive model time, returning the exponent k
// and R². At least two positive points are required.
func ScalingExponent(pts []Fig9aPoint) (k, r2 float64, err error) {
	var xs, ys []float64
	for _, p := range pts {
		if p.N > 0 && p.ModelSeconds > 0 {
			xs = append(xs, float64(p.N))
			ys = append(ys, p.ModelSeconds)
		}
	}
	if len(xs) < 2 {
		return 0, 0, fmt.Errorf("core: need >= 2 positive points, have %d", len(xs))
	}
	_, k, r2 = stats.PowerLawFit(xs, ys)
	return k, r2, nil
}
