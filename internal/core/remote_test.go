package core

import (
	"testing"

	"github.com/splitexec/splitexec/internal/anneal"
	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/qpuserver"
	"github.com/splitexec/splitexec/internal/qubo"
)

// The full split-execution pipeline against a QPU behind a real TCP
// boundary — the client-server deployment of Fig. 1(a).
func TestSolveOverNetwork(t *testing.T) {
	srv := qpuserver.NewServer(anneal.DW2Timings(), anneal.SamplerOptions{Sweeps: 256})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := qpuserver.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	cfg := testConfig(1)
	cfg.Device = cli
	solver := NewSolver(cfg)

	g := graph.Cycle(6)
	sol, err := solver.SolveQUBO(qubo.MaxCut(g, nil))
	if err != nil {
		t.Fatal(err)
	}
	if cut := qubo.CutValue(g, nil, sol.Binary); cut != 6 {
		t.Errorf("remote solve cut = %v, want 6", cut)
	}
	// Modeled QPU times flow back over the wire unchanged.
	if sol.Timing.Program != anneal.DW2Timings().ProcessorInitialize() {
		t.Errorf("remote program time = %v", sol.Timing.Program)
	}
	if sol.Timing.Execute != anneal.DW2Timings().ExecutionTime(sol.Reads) {
		t.Errorf("remote execute time = %v", sol.Timing.Execute)
	}
	// The measured network interface cost exists but, as the paper
	// predicts, is not the dominant term compared to embedding+programming.
	if cli.NetworkTime() <= 0 {
		t.Error("network time not measured")
	}
	if cli.NetworkTime() > sol.Timing.Stage1() {
		t.Errorf("network %v exceeds stage 1 %v — unexpected on loopback",
			cli.NetworkTime(), sol.Timing.Stage1())
	}
}

// Hardware validation on the server side must reject programs that ignore
// the topology, end to end.
func TestSolveOverNetworkHardwareEnforced(t *testing.T) {
	srv := qpuserver.NewServer(anneal.DW2Timings(), anneal.SamplerOptions{Sweeps: 16})
	srv.Hardware = graph.Chimera{M: 3, N: 3, L: 4}.Graph()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := qpuserver.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Solver embeds into the same topology the server enforces: accepted.
	cfg := testConfig(2)
	cfg.Device = cli
	sol, err := NewSolver(cfg).SolveQUBO(qubo.MaxCut(graph.Cycle(5), nil))
	if err != nil {
		t.Fatalf("topology-respecting solve rejected: %v", err)
	}
	if sol.Energy > -4 {
		t.Errorf("energy = %v", sol.Energy)
	}

	// A direct, unembedded program with a non-coupler edge is refused.
	bad := qubo.NewIsing(2)
	bad.SetCoupling(0, 1, -1) // same-shore pair: not a Chimera coupler
	if err := cli.Program(bad); err == nil {
		t.Error("server accepted a non-hardware program")
	}
}
