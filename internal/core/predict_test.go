package core

import (
	"math"
	"testing"

	"github.com/splitexec/splitexec/internal/machine"
)

func TestParseStageModels(t *testing.T) {
	s1, s2, s3, err := ParseStageModels()
	if err != nil {
		t.Fatal(err)
	}
	if s1.Name != "Stage1" || s2.Name != "Stage2" || s3.Name != "Stage3" {
		t.Errorf("names: %s %s %s", s1.Name, s2.Name, s3.Name)
	}
	// Fig. 6 structure: 3 kernels + main, 2 data decls, 17 params.
	if len(s1.Kernels) != 4 {
		t.Errorf("stage1 kernels = %d", len(s1.Kernels))
	}
	if len(s1.Data) != 2 {
		t.Errorf("stage1 data = %d", len(s1.Data))
	}
	if s1.Kernel("EmbedData") == nil || s1.Kernel("InitializeProcessor") == nil {
		t.Error("stage1 kernel names wrong")
	}
	if s2.Kernel("Stage2Processing") == nil {
		t.Error("stage2 kernel missing")
	}
	if s3.Kernel("FindSolution") == nil {
		t.Error("stage3 kernel missing")
	}
}

func TestStage1PaperParameters(t *testing.T) {
	p := NewPredictor(machine.SimpleNode())
	r, err := p.Stage1(30)
	if err != nil {
		t.Fatal(err)
	}
	// The evaluated parameter environment must match Fig. 6's constants.
	if r.Params["NG"] != 1152 {
		t.Errorf("NG = %v, want 1152", r.Params["NG"])
	}
	if r.Params["EG"] != 3360 {
		t.Errorf("EG = %v, want 3360", r.Params["EG"])
	}
	if r.Params["EH"] != 435 {
		t.Errorf("EH = %v, want 435", r.Params["EH"])
	}
	if r.Params["ProcessorInitialize"] != 319573 {
		t.Errorf("ProcessorInitialize = %v µs, want 319573", r.Params["ProcessorInitialize"])
	}
}

func TestStage1SmallNDominatedByInit(t *testing.T) {
	// Paper: the model overestimates for n < 10 because the 0.32 s
	// processor-initialization constant dominates.
	p := NewPredictor(machine.SimpleNode())
	r, err := p.Stage1(1)
	if err != nil {
		t.Fatal(err)
	}
	total := r.TotalSeconds()
	if math.Abs(total-0.319573) > 0.01 {
		t.Errorf("stage1(1) = %v s, want ≈ 0.3196 (init constant)", total)
	}
	init := r.Kernel("InitializeProcessor")
	if init == nil {
		t.Fatal("InitializeProcessor kernel missing from result")
	}
	if init.Seconds/total < 0.95 {
		t.Errorf("init share = %v, want > 0.95 at n=1", init.Seconds/total)
	}
}

func TestStage1GrowthDominatedByEmbedding(t *testing.T) {
	p := NewPredictor(machine.SimpleNode())
	r30, err := p.Stage1(30)
	if err != nil {
		t.Fatal(err)
	}
	r100, err := p.Stage1(100)
	if err != nil {
		t.Fatal(err)
	}
	if r100.TotalSeconds() <= 10*r30.TotalSeconds() {
		t.Errorf("stage1 growth too flat: %v -> %v", r30.TotalSeconds(), r100.TotalSeconds())
	}
	// At n=100 the embedding kernel dominates.
	embedK := r100.Kernel("EmbedData")
	if embedK == nil {
		t.Fatal("EmbedData missing")
	}
	if embedK.Seconds/r100.TotalSeconds() < 0.9 {
		t.Errorf("embed share at n=100 = %v, want > 0.9", embedK.Seconds/r100.TotalSeconds())
	}
}

func TestStage1CubicScalingTail(t *testing.T) {
	// EmbeddingOps ~ n^3 for complete graphs (EH ~ n², ×NH): the asymptotic
	// log-log slope of the model (init constant subtracted) must approach 3.
	p := NewPredictor(machine.SimpleNode())
	t60, err := p.Stage1(60)
	if err != nil {
		t.Fatal(err)
	}
	t120, err := p.Stage1(120)
	if err != nil {
		t.Fatal(err)
	}
	const initSec = 0.319573
	slope := math.Log((t120.TotalSeconds()-initSec)/(t60.TotalSeconds()-initSec)) / math.Log(2)
	if slope < 2.7 || slope > 3.2 {
		t.Errorf("asymptotic slope = %v, want ≈ 3", slope)
	}
}

func TestStage2MatchesEq6Times(t *testing.T) {
	p := NewPredictor(machine.SimpleNode())
	// pa=0.99, ps=0.7: 4 reads → 4·20 + 320 + 5 = 405 µs.
	r, err := p.Stage2(0.99, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.TotalSeconds()-405e-6) > 1e-9 {
		t.Errorf("stage2 = %v s, want 405 µs", r.TotalSeconds())
	}
}

func TestStage2InsensitiveToPSAbove0_6(t *testing.T) {
	// Paper: "this performance curve is approximately the same for all
	// values of ps > 0.6".
	p := NewPredictor(machine.SimpleNode())
	base, err := p.Stage2(0.99, 0.65)
	if err != nil {
		t.Fatal(err)
	}
	for _, ps := range []float64{0.7, 0.8, 0.9, 0.99} {
		r, err := p.Stage2(0.99, ps)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(r.TotalSeconds() - base.TotalSeconds()); diff > 150e-6 {
			t.Errorf("ps=%v: stage2 differs by %v s", ps, diff)
		}
	}
}

func TestStage3NearLinear(t *testing.T) {
	p := NewPredictor(machine.SimpleNode())
	r10, err := p.Stage3(10, 0.99, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	r100, err := p.Stage3(100, 0.99, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	ratio := r100.TotalSeconds() / r10.TotalSeconds()
	if ratio < 5 || ratio > 15 {
		t.Errorf("stage3 scaling 10→100 = ×%v, want ≈ ×10 (near-linear)", ratio)
	}
	// Results parameter: ceil(log(0.01)/log(0.25)) = 4.
	if r10.Params["Results"] != 4 {
		t.Errorf("Results = %v, want 4", r10.Params["Results"])
	}
}

// The headline conclusion of the paper: stage 1 dominates time-to-solution
// by orders of magnitude at every problem size.
func TestStageDominanceConclusion(t *testing.T) {
	rows, err := StageDominance([]int{5, 20, 50, 100}, 0.99, 0.7, machine.SimpleNode())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Stage1Share < 0.99 {
			t.Errorf("n=%d: stage-1 share %v, want > 0.99", row.N, row.Stage1Share)
		}
		if row.Stages.Stage2 <= row.Stages.Stage3 {
			t.Errorf("n=%d: expected stage2 > stage3 (µs vs ns scale)", row.N)
		}
		if row.Stages.Stage1/row.Stages.Stage2 < 100 {
			t.Errorf("n=%d: stage1/stage2 ratio %v, want ≥ 100×", row.N, row.Stages.Stage1/row.Stages.Stage2)
		}
	}
}

func TestPredictValidation(t *testing.T) {
	p := NewPredictor(machine.SimpleNode())
	if _, err := p.Stage1(-1); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := p.Stage2(1.0, 0.7); err == nil {
		t.Error("pa=1 accepted")
	}
	if _, err := p.Stage2(0.9, 0); err == nil {
		t.Error("ps=0 accepted")
	}
	if _, err := p.Stage3(-2, 0.9, 0.7); err == nil {
		t.Error("negative n accepted for stage3")
	}
}

func TestPredictorUsesNodeTopology(t *testing.T) {
	// A Vesuvius-sized node (M=N=8) must predict less embedding work than
	// the DW2X default (M=N=12) at the same n.
	small := machine.SimpleNode()
	small.QPU = machine.DW2Vesuvius()
	pSmall := NewPredictor(small)
	pBig := NewPredictor(machine.SimpleNode())
	rS, err := pSmall.Stage1(40)
	if err != nil {
		t.Fatal(err)
	}
	rB, err := pBig.Stage1(40)
	if err != nil {
		t.Fatal(err)
	}
	if rS.Params["NG"] != 512 || rB.Params["NG"] != 1152 {
		t.Fatalf("NG params: %v vs %v", rS.Params["NG"], rB.Params["NG"])
	}
	if rS.TotalSeconds() >= rB.TotalSeconds() {
		t.Errorf("smaller hardware predicted more work: %v >= %v", rS.TotalSeconds(), rB.TotalSeconds())
	}
}

func TestPredictAggregates(t *testing.T) {
	p := NewPredictor(machine.SimpleNode())
	s, err := p.Predict(30, 0.99, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if s.Total() != s.Stage1+s.Stage2+s.Stage3 {
		t.Error("Total() mismatch")
	}
	if s.Stage1 < 1 || s.Stage2 > 1e-3 || s.Stage3 > 1e-6 {
		t.Errorf("stage magnitudes off: %+v", s)
	}
}
