// Package core implements the split-execution runtime and performance model
// of the paper: a three-stage pipeline that translates a classical
// optimization problem into a quantum annealing program (stage 1), executes
// it on a QPU with enough repetitions to reach a target accuracy (stage 2),
// and post-processes the readout ensemble back into a classical solution
// (stage 3).
//
// Two time-accounting paths are provided and compared:
//
//   - the analytic path (Predict*) evaluates the paper's ASPEN application
//     models (Figs. 6–8) against the machine model, reproducing the solid
//     curves of Fig. 9;
//   - the simulated-execution path (Solver) actually runs the pipeline —
//     real Cai–Macready–Roy embedding, real annealing, real heapsort —
//     charging wall-clock time for CPU phases and the paper's hardware
//     constants for QPU phases, reproducing the measured (dashed) curves.
package core

import (
	"fmt"

	"github.com/splitexec/splitexec/internal/aspen"
)

// Stage1Source is the paper's Fig. 6 ASPEN listing: generation and embedding
// of a logical Ising Hamiltonian into the D-Wave processor. LPS (the logical
// problem size) is the input parameter.
const Stage1Source = `
model Stage1 {
  param LPS = 0 // Input Parameter
  param Ising = LPS^2
  param NH = LPS
  param EH = NH*(NH-1) / 2
  param M = 12
  param N = 12
  param NG = 8*M*N
  param EG = 4*(2*M*N - M - N) + 16*M*N
  param EmbeddingOps = (EG+NG*log(NG))*(2*EH)*NH*NG
  param ParameterSetting = LPS^3

  // Hardware constants for DW2 in microseconds
  param StateCon = 252162
  param PMMSW = 33095
  param PMMElec = 0
  param PMMChip = 11264
  param PMMTherm = 10000
  param SWRun = 4000
  param ElecRun = 9052
  param ProcessorInitialize = StateCon+PMMSW+PMMElec+PMMChip+PMMTherm+SWRun+ElecRun

  data Input as Array((NH*NH), 4)
  data Output as Array((NG*NG), 4)

  kernel InitializeData {
    execute [1] {
      flops [Ising] as sp, fmad, simd
      stores [NH*4] to Input
    }
    execute [1] {
      flops [ParameterSetting] as sp, fmad, simd
    }
  }

  kernel EmbedData {
    execute embed [1] {
      loads [EH*4] from Input
      flops [EmbeddingOps] as sp, simd
      stores [EG*4] to Output
      intracomm [EG*4] as copyout
    }
  }

  kernel InitializeProcessor {
    execute [1] { microseconds [ProcessorInitialize] }
  }

  kernel main {
    InitializeData
    EmbedData
    InitializeProcessor
  }
}
`

// Stage2Source is the paper's Fig. 7 listing: the QPU as a statistical
// optimization solver. Accuracy is the input parameter in percent (the
// listing divides by 100); Success is the characteristic single-run
// ground-state probability ps.
const Stage2Source = `
model Stage2 {
  param Success = 0.9999
  param Accuracy = 0 // Input parameter
  param AnnealReadResults = 320
  param AnnealThermalization = 5

  kernel Stage2Processing {
    execute mainblock2[1] {
      // Number of QPU calls
      QuOps [ceil(log(1-(Accuracy/100))/log(1-Success))]
    }
    execute mainblock3[1] {
      // Readout time
      microseconds [AnnealReadResults]
    }
    execute mainblock4[1] {
      // Initialization time
      microseconds [AnnealThermalization]
    }
  }

  kernel main { Stage2Processing }
}
`

// Stage3Source is the paper's Fig. 8 listing: parsing and heapsorting the
// readout ensemble to recover the optimization result. LPS is the input
// problem size; Results is the ensemble size from Eq. 6 with the listing's
// ps = 0.75, pa = 0.99 defaults.
const Stage3Source = `
model Stage3 {
  param LPS = 0
  param Success = 0.75
  param Accuracy = 0.99
  param Results = ceil(log(1-(Accuracy))/log(1-Success))
  param Length = LPS
  param SortOps = log(Results) * Results

  data R as Array(Results, LPS)

  kernel FindSolution {
    execute sort [1] {
      loads [Results] of size [4*Length]
      flops [SortOps] as sp
      stores [Results] to R
    }
  }

  kernel main { FindSolution }
}
`

// ParseStageModels parses the three canonical stage listings, returning them
// in order. It never fails on the shipped sources; the error return guards
// against edits.
func ParseStageModels() (stage1, stage2, stage3 *aspen.ModelDecl, err error) {
	for i, src := range []string{Stage1Source, Stage2Source, Stage3Source} {
		f, perr := aspen.Parse(src)
		if perr != nil {
			return nil, nil, nil, fmt.Errorf("core: stage %d listing: %w", i+1, perr)
		}
		if len(f.Models) != 1 {
			return nil, nil, nil, fmt.Errorf("core: stage %d listing defines %d models", i+1, len(f.Models))
		}
		switch i {
		case 0:
			stage1 = f.Models[0]
		case 1:
			stage2 = f.Models[0]
		case 2:
			stage3 = f.Models[0]
		}
	}
	return stage1, stage2, stage3, nil
}
