package core

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/splitexec/splitexec/internal/embed"
	"github.com/splitexec/splitexec/internal/graph"
)

// TestEmbeddingCacheConcurrent hammers one shared cache from many
// goroutines — the dispatch service's usage pattern, where every worker
// consults and populates the same off-line table. Run under -race (CI
// does), this pins the cache's concurrent-use guarantee.
func TestEmbeddingCacheConcurrent(t *testing.T) {
	hw := graph.Chimera{M: 4, N: 4, L: 4}.Graph()
	inputs := []*graph.Graph{
		graph.Cycle(6),
		graph.Path(7),
		graph.Star(6),
		graph.Grid(2, 4),
		graph.Complete(4),
	}
	// Pre-compute one valid embedding per input serially.
	vms := make([]graph.VertexModel, len(inputs))
	for i, g := range inputs {
		rng := rand.New(rand.NewSource(int64(i) + 1))
		vm, _, err := embed.FindEmbedding(g, hw, rng, embed.Options{MaxTries: 20})
		if err != nil {
			t.Fatalf("embedding input %d: %v", i, err)
		}
		vms[i] = vm
	}

	cache := NewEmbeddingCache()
	const (
		goroutines = 16
		iterations = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iterations; it++ {
				i := (w + it) % len(inputs)
				switch it % 4 {
				case 0:
					cache.Store(inputs[i], vms[i])
				case 1:
					if vm := cache.Lookup(inputs[i]); vm != nil {
						// A concurrent hit must always be a valid minor.
						if err := graph.ValidateMinor(inputs[i], hw, vm, true); err != nil {
							t.Errorf("goroutine %d: invalid cached embedding: %v", w, err)
							return
						}
					}
				case 2:
					cache.Stats()
				case 3:
					cache.Len()
				}
			}
		}(w)
	}
	wg.Wait()

	// After the storm, every input graph must resolve.
	for i, g := range inputs {
		vm := cache.Lookup(g)
		if vm == nil {
			t.Errorf("input %d: lookup missed after concurrent stores", i)
			continue
		}
		if err := graph.ValidateMinor(g, hw, vm, true); err != nil {
			t.Errorf("input %d: invalid embedding after concurrent stores: %v", i, err)
		}
	}
	hits, misses := cache.Stats()
	if hits+misses == 0 {
		t.Error("cache recorded no lookups")
	}
}

// TestEmbeddingCacheIsolation: stored graphs and vertex models are cloned,
// so caller-side mutation cannot corrupt later lookups.
func TestEmbeddingCacheIsolation(t *testing.T) {
	hw := graph.Chimera{M: 4, N: 4, L: 4}.Graph()
	g := graph.Cycle(5)
	rng := rand.New(rand.NewSource(1))
	vm, _, err := embed.FindEmbedding(g, hw, rng, embed.Options{MaxTries: 20})
	if err != nil {
		t.Fatalf("embedding: %v", err)
	}
	cache := NewEmbeddingCache()
	cache.Store(g, vm)
	// Mutate the caller's copies after Store.
	vm[0] = append(vm[0], vm[0]...)
	g.AddEdge(0, 2)

	fresh := graph.Cycle(5)
	got := cache.Lookup(fresh)
	if got == nil {
		t.Fatal("lookup missed")
	}
	if err := graph.ValidateMinor(fresh, hw, got, true); err != nil {
		t.Errorf("mutation leaked into the cache: %v", err)
	}
}
