package core

// End-to-end solves of the extension workloads (§1/§2.1: integer linear
// programming, binary classification, MIN-COVER) through the full
// split-execution pipeline: translate → embed → program → anneal → decode.
// These pin down that the new reductions survive chain embedding and
// probabilistic readout, not just brute force.

import (
	"testing"

	"github.com/splitexec/splitexec/internal/anneal"
	"github.com/splitexec/splitexec/internal/embed"
	"github.com/splitexec/splitexec/internal/qubo"
)

// newWorkloadSolver runs the simulated-quantum-annealing substrate with a
// conservative Eq. 6 read plan. The chain-embedded slack encodings of these
// workloads have near-degenerate feasible states competing with the optimum
// (measured classical-Metropolis ps is only a few percent, making a solve a
// coin flip per seed); SQA's replica dynamics land the optimum reliably
// across seeds. A generous restart budget covers the dense constraint
// graphs the slack encodings produce.
func newWorkloadSolver(seed int64) *Solver {
	return NewSolver(Config{
		Seed:        seed,
		Accuracy:    0.9999,
		SuccessProb: 0.1,
		SQA:         &anneal.SQAOptions{Sweeps: 64, Replicas: 8},
		Embed:       embed.Options{MaxTries: 40},
	})
}

func TestSolveILPEndToEnd(t *testing.T) {
	// min x0 + 2x1 + 3x2 s.t. x0+x1+x2 = 2 → {x0, x1}, objective 3.
	c := []float64{1, 2, 3}
	A := [][]float64{{1, 1, 1}}
	b := []float64{2}
	p, err := qubo.IntegerLinearProgram(c, A, b, qubo.SafeILPPenalty(c))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := newWorkloadSolver(3).SolveQUBO(p.Q)
	if err != nil {
		t.Fatal(err)
	}
	x := sol.Binary
	if !qubo.Feasible(A, b, x, 1e-9) {
		t.Fatalf("pipeline returned infeasible assignment %v", x)
	}
	if got := qubo.ObjectiveValue(c, x); got != 3 {
		t.Fatalf("objective %v, want 3 (x=%v)", got, x)
	}
}

func TestSolveQBoostEndToEnd(t *testing.T) {
	// Classifier 0 is the exact labeler, 1 is its negation, 2 alternates.
	H := [][]float64{
		{1, -1, 1, -1, 1, -1},
		{-1, 1, -1, 1, -1, 1},
		{1, 1, -1, -1, 1, 1},
	}
	y := []float64{1, -1, 1, -1, 1, -1}
	e, err := qubo.WeakClassifierEnsemble(H, y, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := newWorkloadSolver(5).SolveQUBO(e.Q)
	if err != nil {
		t.Fatal(err)
	}
	w := sol.Binary
	if w[0] != 1 || w[1] != 0 {
		t.Fatalf("selection %v: want labeler in, anti-labeler out", w)
	}
	acc, err := e.TrainingAccuracy(w, H, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Fatalf("training accuracy %v, want 1", acc)
	}
}

func TestSolveSetCoverEndToEnd(t *testing.T) {
	// Universe {0..3}: A={0,1}, B={2,3}, C={0,1,2,3}; unit costs → C alone.
	sets := [][]int{{0, 1}, {2, 3}, {0, 1, 2, 3}}
	sc, err := qubo.MinSetCover(4, sets, nil, qubo.SafeSetCoverPenalty(sets, nil))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := newWorkloadSolver(7).SolveQUBO(sc.Q)
	if err != nil {
		t.Fatal(err)
	}
	chosen, valid := sc.Decode(sol.Binary)
	if !valid {
		t.Fatalf("pipeline returned non-cover %v", chosen)
	}
	if qubo.CoverWeight(chosen, nil) != 1 {
		t.Fatalf("cover %v has weight %v, want 1", chosen, qubo.CoverWeight(chosen, nil))
	}
}

func TestSolveGIEndToEndViaQUBO(t *testing.T) {
	// The GI reduction is an ordinary QUBO: run it through the pipeline and
	// decode the permutation from the solver's binary answer. (The gi
	// package's own solver skips embedding; this exercises the full path.)
	t.Skip("covered by internal/gi with the logical sampler; the n²-variable " +
		"one-hot QUBO is dense enough that chain-embedded annealing needs a " +
		"large read budget — kept out of the fast suite")
}
