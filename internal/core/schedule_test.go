package core

import (
	"math"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/qubo"
	"github.com/splitexec/splitexec/internal/schedule"
)

func ringQUBO(n int) *qubo.QUBO {
	q := qubo.NewQUBO(n)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		q.Add(i, i, -1)
		q.Add(j, j, -1)
		q.Add(i, j, 2)
	}
	return q
}

func solveWith(t *testing.T, cfg Config) *Solution {
	t.Helper()
	s := NewSolver(cfg)
	sol, err := s.SolveQUBO(ringQUBO(8))
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestScheduleDrivenReadsMatchFixedPs(t *testing.T) {
	// A 20 µs linear ramp across the default gap derives ps ≈ 0.7, so the
	// planned reads must equal the fixed-ps default (4 at pa = 0.99).
	sc := schedule.Linear(20 * time.Microsecond)
	sol := solveWith(t, Config{Seed: 1, Schedule: &sc})
	if math.Abs(sol.SuccessProb-0.7) > 0.01 {
		t.Fatalf("derived ps = %v, want ≈0.7", sol.SuccessProb)
	}
	fixed := solveWith(t, Config{Seed: 1})
	if sol.Reads != fixed.Reads {
		t.Fatalf("schedule-driven reads %d != fixed-ps reads %d", sol.Reads, fixed.Reads)
	}
	if fixed.SuccessProb != 0.7 {
		t.Fatalf("fixed path should record ps=0.7, got %v", fixed.SuccessProb)
	}
}

func TestLongerScheduleFewerReadsCostlierReads(t *testing.T) {
	short := schedule.Linear(20 * time.Microsecond)
	long := schedule.Linear(500 * time.Microsecond)
	sShort := solveWith(t, Config{Seed: 2, Schedule: &short})
	sLong := solveWith(t, Config{Seed: 2, Schedule: &long})
	if sLong.Reads >= sShort.Reads {
		t.Fatalf("longer anneal should need fewer reads: %d >= %d", sLong.Reads, sShort.Reads)
	}
	if sLong.SuccessProb <= sShort.SuccessProb {
		t.Fatalf("longer anneal should raise ps: %v <= %v", sLong.SuccessProb, sShort.SuccessProb)
	}
	// Per-read execute cost follows the waveform duration: reads×anneal +
	// readout + thermalization.
	perShort := (sShort.Timing.Execute - 325*time.Microsecond) / time.Duration(sShort.Reads)
	perLong := (sLong.Timing.Execute - 325*time.Microsecond) / time.Duration(sLong.Reads)
	if perShort != 20*time.Microsecond || perLong != 500*time.Microsecond {
		t.Fatalf("per-read anneal times %v / %v, want 20µs / 500µs", perShort, perLong)
	}
}

func TestPausedScheduleSingleRead(t *testing.T) {
	gap := schedule.DefaultGap()
	paused, err := schedule.WithPause(20*time.Microsecond, gap.Position, 200*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	sol := solveWith(t, Config{Seed: 3, Schedule: &paused, Gap: &gap})
	if sol.Reads != 1 {
		t.Fatalf("adiabatic hold should plan 1 read, got %d", sol.Reads)
	}
	if sol.SuccessProb != 1 {
		t.Fatalf("ps = %v, want 1", sol.SuccessProb)
	}
}

func TestScheduleOutsideHardwareLimitsFails(t *testing.T) {
	tooShort := schedule.Linear(time.Microsecond) // below the 5 µs DW2 floor
	s := NewSolver(Config{Seed: 4, Schedule: &tooShort})
	if _, err := s.SolveQUBO(ringQUBO(6)); err == nil {
		t.Fatal("sub-minimum schedule accepted")
	}
	// Custom limits can admit it.
	lim := schedule.ControlLimits{MinDuration: time.Nanosecond}
	s = NewSolver(Config{Seed: 4, Schedule: &tooShort, ScheduleLimits: &lim})
	if _, err := s.SolveQUBO(ringQUBO(6)); err != nil {
		t.Fatalf("custom limits rejected: %v", err)
	}
}

func TestScheduleWithCustomGap(t *testing.T) {
	sc := schedule.Linear(20 * time.Microsecond)
	hard := schedule.GapModel{MinGap: 0.02, Position: 0.5}
	easy := schedule.GapModel{MinGap: 0.6, Position: 0.5}
	sHard := solveWith(t, Config{Seed: 5, Schedule: &sc, Gap: &hard})
	sEasy := solveWith(t, Config{Seed: 5, Schedule: &sc, Gap: &easy})
	if sHard.Reads <= sEasy.Reads {
		t.Fatalf("harder gap should need more reads: %d <= %d", sHard.Reads, sEasy.Reads)
	}
	bad := schedule.GapModel{MinGap: -1, Position: 0.5}
	s := NewSolver(Config{Seed: 5, Schedule: &sc, Gap: &bad})
	if _, err := s.SolveQUBO(ringQUBO(6)); err == nil {
		t.Fatal("invalid gap model accepted")
	}
}

func TestScheduleSolutionStillOptimal(t *testing.T) {
	// The schedule path must not disturb correctness: the 8-ring MAX-CUT
	// optimum cuts all 8 edges (QUBO energy -8 before offset bookkeeping).
	sc := schedule.Linear(100 * time.Microsecond)
	sol := solveWith(t, Config{Seed: 6, Schedule: &sc})
	want, _ := ringQUBO(8).BruteForce()
	got := sol.Binary
	// Compare energies, not assignments (the cut is degenerate).
	q := ringQUBO(8)
	if math.Abs(q.Energy(got)-q.Energy(want)) > 1e-9 {
		t.Fatalf("schedule path returned suboptimal cut: %v vs %v", q.Energy(got), q.Energy(want))
	}
}
