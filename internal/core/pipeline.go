package core

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/splitexec/splitexec/internal/anneal"
	"github.com/splitexec/splitexec/internal/embed"
	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/machine"
	"github.com/splitexec/splitexec/internal/qubo"
	"github.com/splitexec/splitexec/internal/schedule"
)

// QPUDevice abstracts the quantum processor behind the pipeline: the local
// simulated device (anneal.Device) or a remote one reached over the
// client-server interface (qpuserver.Client). QPUTime reports cumulative
// modeled hardware time split into programming and execution.
type QPUDevice interface {
	Program(m *qubo.Ising) error
	Execute(reads int, rng *rand.Rand) (*anneal.SampleSet, error)
	QPUTime() (programming, execution time.Duration)
}

// localDevice adapts anneal.Device (whose Program cannot fail) to QPUDevice.
type localDevice struct{ dev *anneal.Device }

func (l localDevice) Program(m *qubo.Ising) error { l.dev.Program(m); return nil }
func (l localDevice) Execute(reads int, rng *rand.Rand) (*anneal.SampleSet, error) {
	return l.dev.Execute(reads, rng)
}
func (l localDevice) QPUTime() (time.Duration, time.Duration) { return l.dev.QPUTime() }

// LocalDevice wraps a simulated annealing device as a QPUDevice, for callers
// assembling device fleets by hand (see internal/service).
func LocalDevice(dev *anneal.Device) QPUDevice { return localDevice{dev: dev} }

// Config parameterizes a split-execution solver.
type Config struct {
	// Node is the hardware model; the zero value selects
	// machine.SimpleNode().
	Node machine.Node
	// Accuracy is the target solution accuracy pa in [0,1). Zero selects
	// the paper's 0.99.
	Accuracy float64
	// SuccessProb is the assumed single-run ground-state probability ps in
	// (0,1). Zero selects the paper's Fig. 9(b) value 0.7. Ignored when
	// Schedule is set.
	SuccessProb float64
	// Schedule, when non-nil, replaces the fixed SuccessProb with the
	// Landau-Zener model: ps is derived from the waveform's velocity at the
	// gap position (§3.2's "depends on the annealing time T and the shape
	// of the annealing schedule"), and the QPU's per-read anneal time
	// becomes the schedule duration. The waveform must satisfy
	// ScheduleLimits.
	Schedule *schedule.Schedule
	// Gap is the instance's internal energy structure for the schedule-
	// derived success model; nil selects schedule.DefaultGap().
	Gap *schedule.GapModel
	// ScheduleLimits validate Schedule; nil selects schedule.DW2Limits().
	ScheduleLimits *schedule.ControlLimits
	// ChainStrength for parameter setting (<= 0: automatic).
	ChainStrength float64
	// Embed configures the Cai–Macready–Roy heuristic.
	Embed embed.Options
	// Sampler configures the classical annealer substrate.
	Sampler anneal.SamplerOptions
	// SQA, when non-nil, replaces the classical substrate with simulated
	// quantum annealing (path-integral Monte Carlo over Trotter replicas).
	SQA *anneal.SQAOptions
	// Seed drives all stochastic components; the zero seed is valid and
	// deterministic.
	Seed int64
	// ReadWorkers bounds the concurrent readout workers of the local
	// simulated device (<= 1 runs reads serially). Reads draw from per-read
	// RNG streams, so solutions are byte-identical for every worker count —
	// ReadWorkers only changes wall-clock time. Ignored when Device is set.
	ReadWorkers int
	// Cache, when non-nil, enables off-line embedding lookup (stage-1
	// bypass); found embeddings skip the CMR search and successful CMR
	// searches populate the cache.
	Cache *EmbeddingCache
	// QuantizeControl applies the QPU's DAC precision to the programmed
	// parameters, modeling the control-precision error source of §2.2.
	QuantizeControl bool
	// ChainRepair decodes broken chains by greedy logical-energy descent
	// instead of plain majority vote (stage-3 post-processing refinement).
	ChainRepair bool
	// Device overrides the QPU: nil builds a local simulated device from
	// Node.QPU; a qpuserver.Client here runs the pipeline against a
	// networked processor (the paper's client-server deployment).
	Device QPUDevice
}

func (c Config) withDefaults() Config {
	if c.Node.Name == "" {
		c.Node = machine.SimpleNode()
	}
	if c.Accuracy == 0 {
		c.Accuracy = 0.99
	}
	if c.SuccessProb == 0 {
		c.SuccessProb = 0.7
	}
	return c
}

// Timing records where time went in one solve, split by pipeline stage and
// sub-phase. CPU phases carry measured wall-clock time of the real
// algorithms; QPU phases carry the machine model's hardware constants
// (virtual time), so the two computational domains are directly comparable
// as in the paper's Fig. 9.
type Timing struct {
	// Stage 1: classical pre-processing.
	Translate     time.Duration // QUBO → logical Ising (Eqs. 4–5)
	EmbedSearch   time.Duration // minor embedding (CMR or cache)
	SetParameters time.Duration // embedded Ising parameter setting
	Program       time.Duration // processor initialization (virtual)

	// Stage 2: quantum execution (virtual).
	Execute time.Duration

	// Stage 3: classical post-processing.
	Sort     time.Duration // heapsort of the readout ensemble
	Unembed  time.Duration // chain majority vote + domain mapping
	CacheHit bool          // stage 1 used the off-line embedding cache
}

// Stage1 returns the total stage-1 time.
func (t Timing) Stage1() time.Duration {
	return t.Translate + t.EmbedSearch + t.SetParameters + t.Program
}

// Stage2 returns the total stage-2 time.
func (t Timing) Stage2() time.Duration { return t.Execute }

// Stage3 returns the total stage-3 time.
func (t Timing) Stage3() time.Duration { return t.Sort + t.Unembed }

// Total returns the end-to-end time-to-solution.
func (t Timing) Total() time.Duration { return t.Stage1() + t.Stage2() + t.Stage3() }

// Solution is the result of one split-execution solve.
type Solution struct {
	// Spins is the best logical spin vector found; Binary its 0/1 image.
	Spins  []int8
	Binary []int8
	// Energy is the logical Ising energy of Spins (equals the QUBO energy
	// for translated problems, offset included).
	Energy float64
	// Reads is the number of annealing repetitions (Eq. 6).
	Reads int
	// SuccessProb is the single-run success probability the repetition
	// count was planned with — Config.SuccessProb, or the Landau-Zener
	// value derived from Config.Schedule.
	SuccessProb float64
	// BrokenChains counts chains that disagreed in the best readout;
	// RepairFlips counts chain-repair corrections (ChainRepair only).
	BrokenChains int
	RepairFlips  int
	// Embedding is the vertex model used; Stats the embedding search work.
	Embedding  graph.VertexModel
	EmbedStats embed.Stats
	// Samples is the full readout ensemble (hardware space), sorted by
	// energy ascending.
	Samples *anneal.SampleSet
	// SortComparisons is the measured heapsort work of stage 3.
	SortComparisons int
	// Timing is the per-phase cost breakdown.
	Timing Timing
}

// Solver executes QUBO/Ising problems on the modeled asymmetric CPU+QPU
// node. It is not safe for concurrent use; create one per goroutine.
type Solver struct {
	cfg    Config
	hw     *graph.Graph
	device QPUDevice
	rng    *rand.Rand
}

// NewSolver builds a solver, materializing the QPU working graph (topology
// minus faults).
func NewSolver(cfg Config) *Solver {
	cfg = cfg.withDefaults()
	if cfg.Schedule != nil {
		// The per-read anneal cost follows the programmed waveform rather
		// than the hardware default.
		cfg.Node.QPU.Timings.AnnealTime = cfg.Schedule.Duration()
	}
	dev := cfg.Device
	if dev == nil {
		local := anneal.NewDevice(cfg.Node.QPU.Timings, cfg.Sampler)
		local.SQA = cfg.SQA
		local.Workers = cfg.ReadWorkers
		dev = localDevice{dev: local}
	}
	return &Solver{
		cfg:    cfg,
		hw:     cfg.Node.QPU.WorkingGraph(),
		device: dev,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Hardware returns the QPU working graph used for embedding.
func (s *Solver) Hardware() *graph.Graph { return s.hw }

// SolveQUBO translates a QUBO instance (stage 1), executes it (stage 2) and
// post-processes the result (stage 3).
func (s *Solver) SolveQUBO(q *qubo.QUBO) (*Solution, error) {
	start := time.Now()
	logical := qubo.ToIsing(q)
	translate := time.Since(start)
	sol, err := s.SolveIsing(logical)
	if err != nil {
		return nil, err
	}
	sol.Timing.Translate += translate
	return sol, nil
}

// SolveIsing runs the split-execution pipeline on a logical Ising model.
func (s *Solver) SolveIsing(logical *qubo.Ising) (*Solution, error) {
	sol := &Solution{}

	// --- Stage 1: embed, set parameters, program -----------------------
	g := logical.Graph()
	embStart := time.Now()
	vm, stats, err := s.findEmbedding(g, sol)
	if err != nil {
		return nil, fmt.Errorf("core: stage 1: %w", err)
	}
	sol.Timing.EmbedSearch = time.Since(embStart)
	sol.Embedding = vm
	sol.EmbedStats = stats

	setStart := time.Now()
	em, err := embed.SetParameters(logical, vm, s.hw, s.cfg.ChainStrength)
	if err != nil {
		return nil, fmt.Errorf("core: stage 1 parameter setting: %w", err)
	}
	if s.cfg.QuantizeControl {
		scale := em.Model.MaxAbsCoefficient()
		if scale > 0 {
			embed.Quantize(em.Model, s.cfg.Node.QPU.ControlBits, scale)
		}
	}
	sol.Timing.SetParameters = time.Since(setStart)

	progBefore, _ := s.device.QPUTime()
	if err := s.device.Program(em.Model); err != nil {
		return nil, fmt.Errorf("core: stage 1 programming: %w", err)
	}
	progAfter, _ := s.device.QPUTime()
	sol.Timing.Program = progAfter - progBefore

	// --- Stage 2: repeated annealing ------------------------------------
	reads, ps, err := s.requiredReads()
	if err != nil {
		return nil, fmt.Errorf("core: stage 2: %w", err)
	}
	if reads < 1 {
		reads = 1
	}
	sol.Reads = reads
	sol.SuccessProb = ps
	_, execBefore := s.device.QPUTime()
	samples, err := s.device.Execute(reads, s.rng)
	if err != nil {
		return nil, fmt.Errorf("core: stage 2: %w", err)
	}
	_, execAfter := s.device.QPUTime()
	sol.Timing.Execute = execAfter - execBefore
	sol.Samples = samples

	// --- Stage 3: sort, unembed -----------------------------------------
	sortStart := time.Now()
	sol.SortComparisons = samples.SortByEnergy()
	sol.Timing.Sort = time.Since(sortStart)

	unembedStart := time.Now()
	best := samples.Best()
	var spins []int8
	var broken int
	if s.cfg.ChainRepair {
		spins, broken, sol.RepairFlips = em.UnembedRepair(best.Spins, logical)
	} else {
		spins, broken = em.Unembed(best.Spins)
	}
	sol.Spins = spins
	sol.Binary = qubo.SpinsToBinary(spins)
	sol.BrokenChains = broken
	sol.Energy = logical.Energy(spins)
	sol.Timing.Unembed = time.Since(unembedStart)
	return sol, nil
}

// requiredReads plans the Eq. 6 repetition count, deriving ps from the
// annealing schedule when one is configured.
func (s *Solver) requiredReads() (int, float64, error) {
	if s.cfg.Schedule == nil {
		reads, err := anneal.RequiredReads(s.cfg.Accuracy, s.cfg.SuccessProb)
		return reads, s.cfg.SuccessProb, err
	}
	lim := schedule.DW2Limits()
	if s.cfg.ScheduleLimits != nil {
		lim = *s.cfg.ScheduleLimits
	}
	if err := s.cfg.Schedule.Validate(lim); err != nil {
		return 0, 0, err
	}
	gap := schedule.DefaultGap()
	if s.cfg.Gap != nil {
		gap = *s.cfg.Gap
	}
	ps, err := schedule.SuccessProbability(*s.cfg.Schedule, gap)
	if err != nil {
		return 0, 0, err
	}
	switch {
	case ps >= 1:
		// Fully adiabatic (e.g. a hold at the gap): one read suffices.
		return 1, 1, nil
	case ps <= 0:
		return 0, 0, fmt.Errorf("core: schedule yields vanishing success probability")
	}
	reads, err := anneal.RequiredReads(s.cfg.Accuracy, ps)
	return reads, ps, err
}

// findEmbedding consults the off-line cache when configured, falling back to
// the CMR heuristic and populating the cache on success.
func (s *Solver) findEmbedding(g *graph.Graph, sol *Solution) (graph.VertexModel, embed.Stats, error) {
	if s.cfg.Cache != nil {
		if vm := s.cfg.Cache.Lookup(g); vm != nil {
			if err := graph.ValidateMinor(g, s.hw, vm, true); err == nil {
				sol.Timing.CacheHit = true
				return vm, embed.Stats{}, nil
			}
		}
	}
	vm, stats, err := embed.FindEmbedding(g, s.hw, s.rng, s.cfg.Embed)
	if err != nil {
		return nil, stats, err
	}
	if s.cfg.Cache != nil {
		s.cfg.Cache.Store(g, vm)
	}
	return vm, stats, nil
}
