package core

import (
	"testing"

	"github.com/splitexec/splitexec/internal/embed"
	"github.com/splitexec/splitexec/internal/machine"
)

func TestFig9aSeries(t *testing.T) {
	node := machine.SimpleNode()
	pts, err := Fig9a([]int{1, 5, 10, 15, 20}, node, Fig9aOptions{
		MeasureUpTo: 15,
		Seed:        1,
		Embed:       embed.Options{MaxTries: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	// Model series strictly increasing.
	for i := 1; i < len(pts); i++ {
		if pts[i].ModelSeconds <= pts[i-1].ModelSeconds {
			t.Errorf("model not increasing at n=%d", pts[i].N)
		}
	}
	// Measured series present only within range.
	for _, p := range pts {
		if p.N <= 15 && !p.MeasuredOK {
			t.Errorf("n=%d: measurement missing", p.N)
		}
		if p.N > 15 && p.MeasuredOK {
			t.Errorf("n=%d: unexpected measurement", p.N)
		}
		if p.MeasuredOK && p.MeasuredSecs < 0 {
			t.Errorf("n=%d: negative measurement", p.N)
		}
	}
	// Shape check: measured embedding time grows from the smallest to the
	// largest measured size (absolute values are host-dependent; the paper
	// only claims the curves share their polynomial shape).
	var first, last *Fig9aPoint
	for i := range pts {
		if pts[i].MeasuredOK {
			if first == nil {
				first = &pts[i]
			}
			last = &pts[i]
		}
	}
	if first == nil || last == nil || first == last {
		t.Fatal("too few measured points")
	}
	if last.MeasuredSecs <= first.MeasuredSecs {
		t.Errorf("measured series not growing: n=%d %vs vs n=%d %vs",
			first.N, first.MeasuredSecs, last.N, last.MeasuredSecs)
	}
	// Physical qubit usage grows with n for complete graphs.
	if first.PhysicalQubits >= last.PhysicalQubits {
		t.Errorf("qubit usage not growing: %+v", pts)
	}
}

func TestFig9bSeries(t *testing.T) {
	node := machine.SimpleNode()
	accs := []float64{0.5, 0.9, 0.99, 0.999, 0.9999}
	pts, err := Fig9b(accs, 0.7, node)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(accs) {
		t.Fatalf("points = %d", len(pts))
	}
	for i, p := range pts {
		// Model and virtual clock agree by construction.
		if diff := p.ModelSeconds - p.VirtualSecs; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("pa=%v: model %v != virtual %v", p.Accuracy, p.ModelSeconds, p.VirtualSecs)
		}
		if i > 0 && p.Reads < pts[i-1].Reads {
			t.Errorf("reads not monotone at pa=%v", p.Accuracy)
		}
		// Everything stays far below a millisecond — the basis for the
		// stage-dominance conclusion.
		if p.ModelSeconds > 1e-3 {
			t.Errorf("pa=%v: stage2 = %v s, expected sub-ms", p.Accuracy, p.ModelSeconds)
		}
	}
}

func TestFig9cSeries(t *testing.T) {
	node := machine.SimpleNode()
	pts, err := Fig9c([]int{1, 10, 50, 100}, node, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if p.Results != 4 {
			t.Errorf("n=%d: results = %d, want 4", p.N, p.Results)
		}
		if p.Comparisons <= 0 {
			t.Errorf("n=%d: no sort comparisons", p.N)
		}
		if i > 0 && p.ModelSeconds <= pts[i-1].ModelSeconds {
			t.Errorf("model not increasing at n=%d", p.N)
		}
		if p.MeasuredSecs < 0 {
			t.Errorf("n=%d: negative measured time", p.N)
		}
	}
	// Near-linear: n 10→100 grows by ≈10×.
	ratio := pts[3].ModelSeconds / pts[1].ModelSeconds
	if ratio < 5 || ratio > 15 {
		t.Errorf("model scaling = ×%v, want ≈ ×10", ratio)
	}
}

func TestScalingExponent(t *testing.T) {
	node := machine.SimpleNode()
	ns := []int{40, 60, 80, 100, 120}
	pts, err := Fig9a(ns, node, Fig9aOptions{MeasureUpTo: 1})
	if err != nil {
		t.Fatal(err)
	}
	k, r2, err := ScalingExponent(pts)
	if err != nil {
		t.Fatal(err)
	}
	// Over this range the init constant still flattens the curve slightly;
	// the fitted exponent sits between quadratic and cubic.
	if k < 2 || k > 3.3 {
		t.Errorf("exponent = %v, want in [2, 3.3]", k)
	}
	if r2 < 0.95 {
		t.Errorf("fit R² = %v", r2)
	}
	if _, _, err := ScalingExponent(nil); err == nil {
		t.Error("empty series accepted")
	}
}
