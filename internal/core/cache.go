package core

import (
	"sync"

	"github.com/splitexec/splitexec/internal/graph"
)

// EmbeddingCache implements the paper's proposed off-line embedding
// optimization (§3.3/§4): "use some variant of off-line embedding, in which
// specific input graphs are pre-embedded and stored in a graph lookup table
// ... use of the lookup table would require some variant of graph
// isomorphism to identify which embedding to apply."
//
// Entries are keyed by a relabeling-invariant hash; on a hash hit an exact
// isomorphism search maps the stored embedding onto the query's labels. The
// cache is safe for concurrent use.
type EmbeddingCache struct {
	mu      sync.Mutex
	entries map[string][]cacheEntry
	hits    int
	misses  int
}

type cacheEntry struct {
	g  *graph.Graph
	vm graph.VertexModel
}

// NewEmbeddingCache returns an empty cache.
func NewEmbeddingCache() *EmbeddingCache {
	return &EmbeddingCache{entries: make(map[string][]cacheEntry)}
}

// Store records an embedding of g. The graph and vertex model are cloned so
// later mutations by the caller cannot corrupt the cache.
func (c *EmbeddingCache) Store(g *graph.Graph, vm graph.VertexModel) {
	key := graph.CanonicalHash(g)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = append(c.entries[key], cacheEntry{g: g.Clone(), vm: vm.Clone()})
}

// Lookup returns an embedding for any graph isomorphic to a stored one,
// relabeled onto g's vertices, or nil on a miss.
func (c *EmbeddingCache) Lookup(g *graph.Graph) graph.VertexModel {
	key := graph.CanonicalHash(g)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries[key] {
		iso := graph.FindIsomorphism(e.g, g)
		if iso == nil {
			continue
		}
		vm := make(graph.VertexModel, len(e.vm))
		for v, chain := range e.vm {
			vm[iso[v]] = append([]int(nil), chain...)
		}
		c.hits++
		return vm
	}
	c.misses++
	return nil
}

// Stats returns cumulative hit/miss counts.
func (c *EmbeddingCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of stored embeddings.
func (c *EmbeddingCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, es := range c.entries {
		n += len(es)
	}
	return n
}
