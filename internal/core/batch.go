package core

import (
	"errors"
	"sync"

	"github.com/splitexec/splitexec/internal/parallel"
	"github.com/splitexec/splitexec/internal/qubo"
)

// BatchJob is one unit of work for SolveBatch: a problem (exactly one of
// QUBO or Ising must be set) and the solver configuration to run it with.
// Distinct jobs may carry distinct configurations — sweeping hardware
// models, schedules or seeds across a batch is the intended use.
type BatchJob struct {
	Config Config
	QUBO   *qubo.QUBO
	Ising  *qubo.Ising
}

// BatchResult is one outcome of SolveBatch, in input order.
type BatchResult struct {
	Index    int
	Solution *Solution
	Err      error
}

// BatchOptions configure the fan-out.
type BatchOptions struct {
	// Workers bounds the solver pool (<= 0 selects GOMAXPROCS). Each
	// worker uses its own Solver, so jobs never share mutable state.
	Workers int
	// Seed derives per-job RNG streams for jobs whose Config.Seed is zero,
	// keeping batch results reproducible and independent of worker count
	// while still giving every job an independent stream. Jobs with an
	// explicit non-zero Config.Seed are left untouched.
	Seed int64
	// OnProgress, when non-nil, is called after each completed job with
	// the number of completed jobs and the total. Calls are serialized but
	// may arrive out of job order.
	OnProgress func(done, total int)
}

// SolveBatch runs the full three-stage pipeline for every job on a bounded
// worker pool — the exploration engine extended beyond analytic ASPEN
// objectives to the simulated-execution path. Per-job failures are
// recorded in the corresponding BatchResult rather than aborting the
// batch; the function itself only fails on a structurally invalid call.
func SolveBatch(jobs []BatchJob, opts BatchOptions) ([]BatchResult, error) {
	if len(jobs) == 0 {
		return nil, errors.New("core: empty batch")
	}
	results := make([]BatchResult, len(jobs))
	var (
		mu   sync.Mutex
		done int
	)
	// Workers never observe each other's Solver: one solver per job, with
	// a per-job seed stream, so completion order cannot leak into results.
	_ = parallel.ForEach(len(jobs), opts.Workers, func(i int) error {
		results[i] = solveOne(jobs[i], parallel.DeriveSeed(opts.Seed, i))
		results[i].Index = i
		if opts.OnProgress != nil {
			mu.Lock()
			done++
			opts.OnProgress(done, len(jobs))
			mu.Unlock()
		}
		return nil
	})
	return results, nil
}

func solveOne(job BatchJob, derivedSeed int64) BatchResult {
	if (job.QUBO == nil) == (job.Ising == nil) {
		return BatchResult{Err: errors.New("core: batch job needs exactly one of QUBO or Ising")}
	}
	cfg := job.Config
	if cfg.Seed == 0 {
		cfg.Seed = derivedSeed
	}
	s := NewSolver(cfg)
	var (
		sol *Solution
		err error
	)
	if job.QUBO != nil {
		sol, err = s.SolveQUBO(job.QUBO)
	} else {
		sol, err = s.SolveIsing(job.Ising)
	}
	return BatchResult{Solution: sol, Err: err}
}
