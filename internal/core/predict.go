package core

import (
	"fmt"
	"sync"

	"github.com/splitexec/splitexec/internal/aspen"
	"github.com/splitexec/splitexec/internal/machine"
)

// Predictor evaluates the paper's stage models analytically against a
// machine model. It is safe for concurrent use.
type Predictor struct {
	node machine.Node

	once    sync.Once
	initErr error
	spec    *aspen.MachineSpec
	stage1  *aspen.ModelDecl
	stage2  *aspen.ModelDecl
	stage3  *aspen.ModelDecl
}

// NewPredictor returns a predictor for the given node (typically
// machine.SimpleNode()).
func NewPredictor(node machine.Node) *Predictor {
	return &Predictor{node: node}
}

func (p *Predictor) init() error {
	p.once.Do(func() {
		f, err := aspen.Parse(p.node.ToAspen())
		if err != nil {
			p.initErr = fmt.Errorf("core: machine model: %w", err)
			return
		}
		p.spec, err = aspen.BuildMachine(f, p.node.Name)
		if err != nil {
			p.initErr = fmt.Errorf("core: machine model: %w", err)
			return
		}
		p.stage1, p.stage2, p.stage3, p.initErr = ParseStageModels()
	})
	return p.initErr
}

// hostOpts binds evaluation to the CPU socket.
func (p *Predictor) hostOpts(params map[string]float64) aspen.EvalOptions {
	return aspen.EvalOptions{HostSocket: p.node.CPU.Name, Params: params}
}

// Stage1 predicts the pre-processing time (problem generation, minor
// embedding, processor initialization) for a logical problem of size n,
// reproducing the solid curve of Fig. 9(a). The hardware-graph parameters
// (M, N) follow the node's QPU topology rather than the listing's defaults.
func (p *Predictor) Stage1(n int) (*aspen.Result, error) {
	if err := p.init(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("core: negative problem size %d", n)
	}
	return aspen.Evaluate(p.stage1, p.spec, p.hostOpts(map[string]float64{
		"LPS": float64(n),
		"M":   float64(p.node.QPU.Topology.M),
		"N":   float64(p.node.QPU.Topology.N),
	}))
}

// Stage2 predicts the quantum execution time to reach accuracy pa (in
// [0,1)) with single-run success probability ps, reproducing Fig. 9(b).
func (p *Predictor) Stage2(pa, ps float64) (*aspen.Result, error) {
	if err := p.init(); err != nil {
		return nil, err
	}
	if pa < 0 || pa >= 1 {
		return nil, fmt.Errorf("core: accuracy %v outside [0,1)", pa)
	}
	if ps <= 0 || ps >= 1 {
		return nil, fmt.Errorf("core: success probability %v outside (0,1)", ps)
	}
	return aspen.Evaluate(p.stage2, p.spec, p.hostOpts(map[string]float64{
		"Accuracy": pa * 100, // the listing divides by 100
		"Success":  ps,
	}))
}

// Stage3 predicts the post-processing time (heapsort of the readout
// ensemble) for problem size n, accuracy pa and success probability ps,
// reproducing Fig. 9(c).
func (p *Predictor) Stage3(n int, pa, ps float64) (*aspen.Result, error) {
	if err := p.init(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("core: negative problem size %d", n)
	}
	return aspen.Evaluate(p.stage3, p.spec, p.hostOpts(map[string]float64{
		"LPS":      float64(n),
		"Accuracy": pa,
		"Success":  ps,
	}))
}

// StageSeconds is the per-stage analytic prediction for one workload.
type StageSeconds struct {
	Stage1, Stage2, Stage3 float64
}

// Total returns the summed prediction.
func (s StageSeconds) Total() float64 { return s.Stage1 + s.Stage2 + s.Stage3 }

// Predict returns all three stage predictions for a problem of size n with
// target accuracy pa and single-run success ps.
func (p *Predictor) Predict(n int, pa, ps float64) (StageSeconds, error) {
	var out StageSeconds
	r1, err := p.Stage1(n)
	if err != nil {
		return out, err
	}
	r2, err := p.Stage2(pa, ps)
	if err != nil {
		return out, err
	}
	r3, err := p.Stage3(n, pa, ps)
	if err != nil {
		return out, err
	}
	out.Stage1 = r1.TotalSeconds()
	out.Stage2 = r2.TotalSeconds()
	out.Stage3 = r3.TotalSeconds()
	return out, nil
}
