package sched

import (
	"testing"
	"time"
)

func drain(q Queue[int]) []int {
	var out []int
	for {
		v, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPolicyValidation(t *testing.T) {
	for _, p := range Policies() {
		if !Valid(p) {
			t.Errorf("Valid(%q) = false", p)
		}
	}
	if !Valid("") {
		t.Error("empty policy should normalize to FIFO and validate")
	}
	if Normalize("") != FIFO {
		t.Errorf("Normalize(\"\") = %q", Normalize(""))
	}
	if Valid("lifo") {
		t.Error("unknown policy validated")
	}
	defer func() {
		if recover() == nil {
			t.Error("New on an unknown policy did not panic")
		}
	}()
	New[int]("lifo")
}

func TestFIFOOrder(t *testing.T) {
	q := New[int](FIFO)
	for i := 0; i < 200; i++ {
		q.Push(i, Job{Priority: i % 3}) // attributes must not matter
	}
	if q.Len() != 200 {
		t.Fatalf("Len = %d", q.Len())
	}
	out := drain(q)
	for i, v := range out {
		if v != i {
			t.Fatalf("fifo out[%d] = %d", i, v)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop on empty queue returned ok")
	}
}

// TestFIFOInterleaved exercises the ring compaction: heavy interleaved
// push/pop must preserve order across the copy-down.
func TestFIFOInterleaved(t *testing.T) {
	q := New[int](FIFO)
	next, want := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 40; i++ {
			q.Push(next, Job{})
			next++
		}
		for i := 0; i < 35; i++ {
			v, ok := q.Pop()
			if !ok || v != want {
				t.Fatalf("round %d: got %d,%v want %d", round, v, ok, want)
			}
			want++
		}
	}
}

func TestPriorityOrder(t *testing.T) {
	q := New[int](Priority)
	// id encodes (priority, arrival): higher priority first, FIFO within.
	q.Push(0, Job{Priority: 0})
	q.Push(1, Job{Priority: 2})
	q.Push(2, Job{Priority: 1})
	q.Push(3, Job{Priority: 2})
	q.Push(4, Job{Priority: 0})
	if got := drain(q); !equal(got, []int{1, 3, 2, 0, 4}) {
		t.Errorf("priority order = %v, want [1 3 2 0 4]", got)
	}
}

func TestShortestQPUOrder(t *testing.T) {
	q := New[int](ShortestQPU)
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	q.Push(0, Job{ExpectedQPU: ms(5)})
	q.Push(1, Job{ExpectedQPU: ms(1)})
	q.Push(2, Job{ExpectedQPU: ms(5)}) // ties stay FIFO
	q.Push(3, Job{ExpectedQPU: ms(3)})
	if got := drain(q); !equal(got, []int{1, 3, 0, 2}) {
		t.Errorf("sjf order = %v, want [1 3 0 2]", got)
	}
}

// TestFairShareRatio: two classes with weights 1 and 3 and equal job cost
// must be served ~1:3 over any service window.
func TestFairShareRatio(t *testing.T) {
	q := New[int](FairShare)
	const n = 400
	cost := time.Millisecond
	for i := 0; i < n; i++ {
		q.Push(0, Job{Class: 0, Weight: 1, Cost: cost})
		q.Push(1, Job{Class: 1, Weight: 3, Cost: cost})
	}
	// Inspect the first half of the service order: class 1 should get ~3x
	// the slots of class 0.
	counts := [2]int{}
	for i := 0; i < n; i++ {
		v, ok := q.Pop()
		if !ok {
			t.Fatal("queue exhausted early")
		}
		counts[v]++
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("fair-share service ratio = %.2f (counts %v), want ~3", ratio, counts)
	}
}

// TestFairShareWithinClassFIFO: jobs of one class are served in arrival
// order regardless of interleaving with other classes.
func TestFairShareWithinClassFIFO(t *testing.T) {
	q := New[int](FairShare)
	for i := 0; i < 30; i++ {
		q.Push(i, Job{Class: i % 3, Weight: float64(1 + i%3), Cost: time.Millisecond})
	}
	last := map[int]int{0: -1, 1: -1, 2: -1}
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		c := v % 3
		if v <= last[c] {
			t.Fatalf("class %d served %d after %d", c, v, last[c])
		}
		last[c] = v
	}
}

// TestFairShareLateClass: a class that joins after the others have been
// served starts at the current virtual time — it gets its share from now
// on, not an unbounded catch-up burst.
func TestFairShareLateClass(t *testing.T) {
	q := New[int](FairShare)
	for i := 0; i < 10; i++ {
		q.Push(0, Job{Class: 0, Weight: 1, Cost: time.Millisecond})
	}
	for i := 0; i < 5; i++ {
		if v, _ := q.Pop(); v != 0 {
			t.Fatalf("pop %d: %d", i, v)
		}
	}
	// Class 1 arrives late with equal weight: service should now alternate,
	// not burst all of class 1 first.
	for i := 0; i < 4; i++ {
		q.Push(1, Job{Class: 1, Weight: 1, Cost: time.Millisecond})
	}
	first4 := [2]int{}
	for i := 0; i < 4; i++ {
		v, _ := q.Pop()
		first4[v]++
	}
	if first4[1] > 3 {
		t.Errorf("late class burst ahead: first 4 pops = %v", first4)
	}
}

// TestFairShareIdleClassNoDeficit: a class that was served, went idle, and
// returns later must not replay the idle period as a catch-up burst — its
// virtual clock re-syncs to the current virtual time on reactivation.
func TestFairShareIdleClassNoDeficit(t *testing.T) {
	q := New[int](FairShare)
	// Class 0 is served once, then goes idle.
	q.Push(0, Job{Class: 0, Weight: 1, Cost: time.Millisecond})
	if v, _ := q.Pop(); v != 0 {
		t.Fatal("warmup pop")
	}
	// Class 1 runs alone for a long stretch: its clock advances ~100ms.
	for i := 0; i < 100; i++ {
		q.Push(1, Job{Class: 1, Weight: 1, Cost: time.Millisecond})
	}
	for i := 0; i < 50; i++ {
		if v, _ := q.Pop(); v != 1 {
			t.Fatalf("pop %d: class %d during class-1-only stretch", i, v)
		}
	}
	// Class 0 returns with a burst while class 1 still has 50 queued: with
	// equal weights the next pops must alternate, not serve all of class 0.
	for i := 0; i < 50; i++ {
		q.Push(0, Job{Class: 0, Weight: 1, Cost: time.Millisecond})
	}
	counts := [2]int{}
	for i := 0; i < 20; i++ {
		v, _ := q.Pop()
		counts[v]++
	}
	if counts[0] > 12 || counts[1] > 12 {
		t.Errorf("reactivated class replayed its idle deficit: first 20 pops = %v, want ~10/10", counts)
	}
}

// TestPriorityExtremeValues: the ordering key saturates instead of
// overflowing, so MinInt-like priorities sort last, not first.
func TestPriorityExtremeValues(t *testing.T) {
	q := New[int](Priority)
	q.Push(0, Job{Priority: 0})
	q.Push(1, Job{Priority: int(^uint(0) >> 1)})    // MaxInt
	q.Push(2, Job{Priority: -int(^uint(0)>>1) - 1}) // MinInt
	q.Push(3, Job{Priority: MaxPriority + 1})
	if got := drain(q); !equal(got, []int{1, 3, 0, 2}) {
		t.Errorf("extreme-priority order = %v, want [1 3 0 2]", got)
	}
}

// TestDeterministicReplay: identical push sequences produce identical pop
// sequences for every policy.
func TestDeterministicReplay(t *testing.T) {
	jobs := make([]Job, 300)
	for i := range jobs {
		jobs[i] = Job{
			Class:       i % 4,
			Priority:    (i * 7) % 5,
			Weight:      float64(1 + i%3),
			ExpectedQPU: time.Duration((i*13)%9) * time.Millisecond,
			Cost:        time.Duration(1+(i*11)%7) * time.Millisecond,
		}
	}
	for _, p := range Policies() {
		runOnce := func() []int {
			q := New[int](p)
			var out []int
			for i, j := range jobs {
				q.Push(i, j)
				if i%3 == 2 {
					v, _ := q.Pop()
					out = append(out, v)
				}
			}
			out = append(out, drain(q)...)
			return out
		}
		a, b := runOnce(), runOnce()
		if !equal(a, b) {
			t.Errorf("policy %q replay diverged", p)
		}
		if len(a) != len(jobs) {
			t.Errorf("policy %q lost jobs: %d of %d", p, len(a), len(jobs))
		}
	}
}
