// Package sched is the scheduling-policy layer shared by the discrete-event
// simulator (internal/des) and the live dispatch service (internal/service):
// one queue-discipline interface with four deterministic implementations, so
// the policy a workload.Scenario declares is realized identically in virtual
// time and on real hardware — the precondition for every measured-vs-simulated
// comparison the workload engine makes.
//
// All four disciplines are strictly deterministic: ties break on push order,
// never on map iteration or wall clock, so a DES replay produces byte-identical
// event logs at any GOMAXPROCS regardless of policy.
package sched

import (
	"container/heap"
	"fmt"
	"time"
)

// Policy names a queue discipline for the host backlog.
type Policy string

// The supported scheduling policies.
const (
	// FIFO serves jobs in arrival order — the default, and the only
	// discipline the engine knew before the policy layer existed.
	FIFO Policy = "fifo"
	// Priority serves the highest Job.Priority first (larger wins), FIFO
	// within a priority level. A starved low-priority class is the
	// textbook failure mode; the planner can quantify it.
	Priority Policy = "priority"
	// ShortestQPU serves the job with the smallest expected QPU service
	// time first (SJF on the scarce resource), FIFO among equals —
	// minimizes mean sojourn when the QPU is the bottleneck.
	ShortestQPU Policy = "sjf"
	// FairShare serves classes in proportion to their Job.Weight via
	// start-time-ordered weighted fair queueing: each class accumulates
	// normalized virtual service (cost/weight), and the backlog always
	// serves the most underserved class next, FIFO within a class.
	FairShare Policy = "fair"
)

// Policies returns every supported policy, FIFO first.
func Policies() []Policy { return []Policy{FIFO, Priority, ShortestQPU, FairShare} }

// Normalize maps the empty policy to FIFO and leaves the rest alone.
func Normalize(p Policy) Policy {
	if p == "" {
		return FIFO
	}
	return p
}

// Valid reports whether p (after Normalize) names a supported policy.
func Valid(p Policy) bool {
	switch Normalize(p) {
	case FIFO, Priority, ShortestQPU, FairShare:
		return true
	}
	return false
}

// Job carries the scheduling attributes of one queued job. The zero value
// is a valid "plain" job: class 0, priority 0, weight 1 (a non-positive
// Weight is treated as 1).
type Job struct {
	// Class indexes the job's workload class (workload.Scenario mix index);
	// FairShare accounts per class.
	Class int
	// Priority orders the Priority policy; larger is served sooner.
	Priority int
	// Weight is the class's fair-share weight (FairShare); <= 0 means 1.
	Weight float64
	// ExpectedQPU orders the ShortestQPU policy.
	ExpectedQPU time.Duration
	// Cost is the job's expected total service time; FairShare charges it
	// (normalized by Weight) to the class's virtual-service clock.
	Cost time.Duration
}

// Queue is the pluggable host-backlog discipline: Push enqueues a value with
// its scheduling attributes, Pop dequeues the next value the policy selects.
// Implementations are deterministic and not safe for concurrent use; callers
// provide their own locking.
type Queue[T any] interface {
	Push(v T, j Job)
	Pop() (T, bool)
	Len() int
}

// MaxPriority bounds |Job.Priority|: the Priority ordering key negates the
// value, and MinInt64 has no int64 negation — an unbounded priority could
// silently invert the discipline. Scenario and wire validation enforce the
// bound at ingress; the key function saturates as a second line of defense.
const MaxPriority = 1 << 30

// New returns an empty queue realizing the policy. It panics on an unknown
// policy — validate with Valid first; workload.Scenario.Validate already
// does for scenario-driven callers.
func New[T any](p Policy) Queue[T] {
	switch Normalize(p) {
	case FIFO:
		return &fifoQueue[T]{}
	case Priority:
		return newHeapQueue[T](func(j Job) int64 { return -clampPriority(j.Priority) })
	case ShortestQPU:
		return newHeapQueue[T](func(j Job) int64 { return int64(j.ExpectedQPU) })
	case FairShare:
		return &fairQueue[T]{}
	}
	panic(fmt.Sprintf("sched: unknown policy %q", p))
}

func clampPriority(p int) int64 {
	if p > MaxPriority {
		return MaxPriority
	}
	if p < -MaxPriority {
		return -MaxPriority
	}
	return int64(p)
}

// --- FIFO ---------------------------------------------------------------------

// fifoQueue is a slice-backed ring: amortized O(1) push/pop, compacting the
// consumed prefix once it dominates the backing array.
type fifoQueue[T any] struct {
	items []T
	head  int
}

func (q *fifoQueue[T]) Push(v T, _ Job) { q.items = append(q.items, v) }

func (q *fifoQueue[T]) Pop() (T, bool) {
	var zero T
	if q.head >= len(q.items) {
		return zero, false
	}
	v := q.items[q.head]
	q.items[q.head] = zero // release for GC
	q.head++
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		clear(q.items[n:])
		q.items = q.items[:n]
		q.head = 0
	}
	return v, true
}

func (q *fifoQueue[T]) Len() int { return len(q.items) - q.head }

// --- keyed heap (priority, SJF) -----------------------------------------------

// heapQueue orders by a scalar key derived from the Job, breaking ties on
// push sequence so equal-key jobs stay FIFO.
type heapQueue[T any] struct {
	key     func(Job) int64
	entries keyedHeap[T]
	seq     int64
}

type keyedEntry[T any] struct {
	v   T
	key int64
	seq int64
}

type keyedHeap[T any] []keyedEntry[T]

func (h keyedHeap[T]) Len() int { return len(h) }
func (h keyedHeap[T]) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].seq < h[j].seq
}
func (h keyedHeap[T]) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *keyedHeap[T]) Push(x any)   { *h = append(*h, x.(keyedEntry[T])) }
func (h *keyedHeap[T]) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	var zero keyedEntry[T]
	old[n-1] = zero
	*h = old[:n-1]
	return e
}

func newHeapQueue[T any](key func(Job) int64) *heapQueue[T] {
	return &heapQueue[T]{key: key}
}

func (q *heapQueue[T]) Push(v T, j Job) {
	q.seq++
	heap.Push(&q.entries, keyedEntry[T]{v: v, key: q.key(j), seq: q.seq})
}

func (q *heapQueue[T]) Pop() (T, bool) {
	var zero T
	if len(q.entries) == 0 {
		return zero, false
	}
	return heap.Pop(&q.entries).(keyedEntry[T]).v, true
}

func (q *heapQueue[T]) Len() int { return len(q.entries) }

// --- weighted fair share ------------------------------------------------------

// fairQueue implements start-time weighted fair queueing over job classes:
// every class carries a virtual-service clock vs; Pop serves the non-empty
// class with the smallest vs (ties to the lowest class index), then advances
// that clock by the served job's Cost/Weight. A class that joins late starts
// at the global virtual time, so it cannot replay an unbounded deficit and
// starve the others.
type fairQueue[T any] struct {
	classes map[int]*fairClass[T]
	order   []int // seen class indices, ascending — deterministic iteration
	virt    float64
	size    int
}

type fairClass[T any] struct {
	fifo fifoQueue[fairEntry[T]]
	vs   float64
}

type fairEntry[T any] struct {
	v      T
	charge float64 // Cost normalized by Weight, in seconds
}

func (q *fairQueue[T]) Push(v T, j Job) {
	if q.classes == nil {
		q.classes = make(map[int]*fairClass[T])
	}
	c, ok := q.classes[j.Class]
	if !ok {
		c = &fairClass[T]{vs: q.virt}
		q.classes[j.Class] = c
		q.order = insertSorted(q.order, j.Class)
	} else if c.fifo.Len() == 0 && c.vs < q.virt {
		// Reactivating after an idle stretch: re-sync to the current
		// virtual time, or the stale clock would replay the whole idle
		// period as a catch-up burst and starve the active classes.
		c.vs = q.virt
	}
	w := j.Weight
	if !(w > 0) {
		w = 1
	}
	c.fifo.Push(fairEntry[T]{v: v, charge: j.Cost.Seconds() / w}, Job{})
	q.size++
}

func (q *fairQueue[T]) Pop() (T, bool) {
	var zero T
	if q.size == 0 {
		return zero, false
	}
	var best *fairClass[T]
	for _, idx := range q.order {
		c := q.classes[idx]
		if c.fifo.Len() == 0 {
			continue
		}
		if best == nil || c.vs < best.vs {
			best = c
		}
	}
	e, _ := best.fifo.Pop()
	q.virt = best.vs
	best.vs += e.charge
	q.size--
	return e.v, true
}

func (q *fairQueue[T]) Len() int { return q.size }

func insertSorted(s []int, v int) []int {
	i := 0
	for i < len(s) && s[i] < v {
		i++
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
