// Package ring implements the consistent-hash ring behind the sharded
// dispatch fabric: keys (embedding-cache hashes for QUBO jobs, class labels
// for profile jobs) map onto shard members through hashed virtual nodes, so
// membership changes move only the keys the departed or arrived member
// owned — about 1/N of the key space per member, never a full reshuffle.
// That bounded movement is what keeps each shard's embedding cache hot
// across rebalances.
//
// Everything is deterministic: the same member list and the same key always
// resolve to the same owner, on every box and at every GOMAXPROCS — the
// property that lets the discrete-event simulator predict the exact shard
// assignment the live router makes.
package ring

import (
	"fmt"
	"sort"
)

// DefaultReplicas is the virtual-node count per member. 64 points per
// member keeps the maximum ownership imbalance across shards within a few
// tens of percent — plenty for the router's queue-length stealing to absorb
// — while membership changes stay O(replicas · log points).
const DefaultReplicas = 64

// point is one virtual node: a position on the hash circle owned by member
// index idx.
type point struct {
	hash uint64
	idx  int
}

// Ring is an immutable consistent-hash ring over an ordered member list.
// Mutating membership means building a new Ring (see Without) — the router
// swaps rings atomically on shard loss or join, so lookups never lock.
type Ring struct {
	members []string
	points  []point
}

// New builds a ring over members with replicas virtual nodes each
// (replicas <= 0 selects DefaultReplicas). Member order defines the index
// space Owner reports; duplicate member names would alias ownership and
// panic.
func New(members []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{members: append([]string(nil), members...)}
	seen := make(map[string]struct{}, len(members))
	for i, m := range r.members {
		if _, dup := seen[m]; dup {
			panic(fmt.Sprintf("ring: duplicate member %q", m))
		}
		seen[m] = struct{}{}
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, point{
				hash: hash64(fmt.Sprintf("%s#%d", m, v)),
				idx:  i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash collisions between virtual nodes are broken by member
		// index so the ring stays deterministic even then.
		return r.points[a].idx < r.points[b].idx
	})
	return r
}

// Members returns the ring's member list in index order.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Owner returns the member index owning key: the first virtual node at or
// clockwise after the key's hash. It returns -1 on an empty ring.
func (r *Ring) Owner(key string) int {
	if len(r.points) == 0 {
		return -1
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point owns the top arc
	}
	return r.points[i].idx
}

// Lookup returns the member name owning key, or "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	i := r.Owner(key)
	if i < 0 {
		return ""
	}
	return r.members[i]
}

// Without builds the ring that remains when the member at index idx leaves.
// Member indices of the new ring follow the surviving order; callers that
// need stable identities should map through Members(). Keys owned by
// surviving members keep their owner — only the departed member's arcs move.
func (r *Ring) Without(idx int) *Ring {
	if idx < 0 || idx >= len(r.members) {
		return r
	}
	rest := make([]string, 0, len(r.members)-1)
	rest = append(rest, r.members[:idx]...)
	rest = append(rest, r.members[idx+1:]...)
	replicas := 0
	if len(r.members) > 0 {
		replicas = len(r.points) / len(r.members)
	}
	return New(rest, replicas)
}

// hash64 is FNV-1a, inlined so the ring has no dependencies and the hash
// can never drift between the router and the simulator.
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Hash exposes the ring's key hash for callers that need to pre-hash or
// bucket keys consistently with ownership (the router's benchmark suite
// measures exactly this path).
func Hash(s string) uint64 { return hash64(s) }
