package ring

import (
	"fmt"
	"testing"
)

// TestJoinKeyMovementProperty pins the bounded-movement claim exactly: on
// join of an (N+1)th member, the moved-key fraction over 10k sampled keys
// is ≈1/(N+1), every unmoved key resolves to its previous owner, every
// moved key lands on the joiner, and Moved(old, new) predicts precisely the
// moved set — no more, no less.
func TestJoinKeyMovementProperty(t *testing.T) {
	const keys = 10_000
	for _, n := range []int{2, 4, 7} {
		n := n
		t.Run(fmt.Sprintf("members=%d", n), func(t *testing.T) {
			old := New(members(n), 0)
			joiner := fmt.Sprintf("shard-%d", n)
			grown := old.With(joiner)
			if grown.Len() != n+1 {
				t.Fatalf("With: %d members, want %d", grown.Len(), n+1)
			}
			ranges := Moved(old, grown)
			if len(ranges) == 0 {
				t.Fatal("Moved returned no ranges for a join")
			}
			for _, g := range ranges {
				if g.To != joiner {
					t.Fatalf("range (%d, %d] moves %s→%s; a join may only move keys to the joiner",
						g.Lo, g.Hi, g.From, g.To)
				}
			}
			moved := 0
			for i := 0; i < keys; i++ {
				key := fmt.Sprintf("key-%d", i)
				before, after := old.Lookup(key), grown.Lookup(key)
				inDiff := Covers(ranges, Hash(key))
				switch {
				case before == after:
					if inDiff {
						t.Fatalf("key %q kept owner %s but Moved covers it", key, before)
					}
				case after == joiner:
					moved++
					if !inDiff {
						t.Fatalf("key %q moved %s→%s outside the Moved ranges", key, before, after)
					}
				default:
					t.Fatalf("key %q moved between survivors: %s→%s", key, before, after)
				}
			}
			// The joiner takes ≈1/(N+1) of the key space; 64 virtual nodes
			// leave moderate variance, so accept [0.4, 2.2]× the fair share.
			fair := 1.0 / float64(n+1)
			frac := float64(moved) / keys
			if frac < 0.4*fair || frac > 2.2*fair {
				t.Errorf("join of member %d moved %.3f of keys, fair share %.3f", n+1, frac, fair)
			}
			// The hash-space fraction the diff claims should agree with the
			// sampled movement to the same tolerance.
			if f := Frac(ranges); f < 0.4*fair || f > 2.2*fair {
				t.Errorf("Frac(ranges) = %.3f, fair share %.3f", f, fair)
			}
		})
	}
}

// TestMovedDrainInverse checks the drain direction: the diff of an N-ring
// against its (N-1)-member remainder moves exactly the drained member's
// keys, each to a survivor.
func TestMovedDrainInverse(t *testing.T) {
	const n, drained, keys = 5, 2, 10_000
	full := New(members(n), 0)
	rest := full.Without(drained)
	ranges := Moved(full, rest)
	name := fmt.Sprintf("shard-%d", drained)
	for _, g := range ranges {
		if g.From != name {
			t.Fatalf("range moves %s→%s; a drain may only move the drained member's keys", g.From, g.To)
		}
		if g.To == name {
			t.Fatalf("range moves keys to the drained member %s", name)
		}
	}
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		movedKey := full.Lookup(key) == name
		if got := Covers(ranges, Hash(key)); got != movedKey {
			t.Fatalf("key %q: Covers=%v but moved=%v", key, got, movedKey)
		}
		if !movedKey && full.Lookup(key) != rest.Lookup(key) {
			t.Fatalf("key %q changed owner without being drained", key)
		}
	}
}

// TestMovedIdentical: no membership change, no movement.
func TestMovedIdentical(t *testing.T) {
	a, b := New(members(4), 0), New(members(4), 0)
	if got := Moved(a, b); len(got) != 0 {
		t.Fatalf("identical rings moved %d ranges", len(got))
	}
}

// TestMovedEmpty: a diff against an empty ring is meaningless and nil.
func TestMovedEmpty(t *testing.T) {
	full := New(members(3), 0)
	empty := New(nil, 0)
	if Moved(full, empty) != nil || Moved(empty, full) != nil || Moved(nil, full) != nil {
		t.Fatal("diff against an empty ring should be nil")
	}
}

// TestRangeContainsWrap exercises the wrap-through-zero arc.
func TestRangeContainsWrap(t *testing.T) {
	g := Range{Lo: ^uint64(0) - 10, Hi: 10}
	for _, h := range []uint64{^uint64(0) - 5, ^uint64(0), 0, 1, 10} {
		if !g.Contains(h) {
			t.Errorf("wrap range should contain %d", h)
		}
	}
	for _, h := range []uint64{11, 1 << 40, ^uint64(0) - 10} {
		if g.Contains(h) {
			t.Errorf("wrap range should not contain %d", h)
		}
	}
}
