package ring

import (
	"fmt"
	"testing"
)

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("shard-%d", i)
	}
	return out
}

func TestDeterministicOwnership(t *testing.T) {
	a := New(members(5), 0)
	b := New(members(5), 0)
	for i := 0; i < 10_000; i++ {
		key := fmt.Sprintf("class-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owners diverge between identical rings", key)
		}
	}
}

func TestOwnerInRange(t *testing.T) {
	r := New(members(7), 0)
	for i := 0; i < 10_000; i++ {
		o := r.Owner(fmt.Sprintf("key-%d", i))
		if o < 0 || o >= 7 {
			t.Fatalf("owner %d out of range", o)
		}
	}
}

func TestEmptyRing(t *testing.T) {
	r := New(nil, 0)
	if got := r.Owner("anything"); got != -1 {
		t.Errorf("empty ring Owner = %d, want -1", got)
	}
	if got := r.Lookup("anything"); got != "" {
		t.Errorf("empty ring Lookup = %q, want empty", got)
	}
}

func TestDuplicateMemberPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate member did not panic")
		}
	}()
	New([]string{"a", "b", "a"}, 4)
}

// TestBalancedOwnership checks the virtual nodes spread keys within a
// sane imbalance: no shard owns more than ~2.2x its fair share at the
// default replica count.
func TestBalancedOwnership(t *testing.T) {
	const shards, keys = 8, 50_000
	r := New(members(shards), 0)
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	fair := float64(keys) / shards
	for s, c := range counts {
		if ratio := float64(c) / fair; ratio > 2.2 || ratio < 0.3 {
			t.Errorf("shard %d owns %d keys (%.2fx fair share)", s, c, ratio)
		}
	}
}

// TestBoundedKeyMovement is the consistent-hashing contract: removing one
// of N members must move only the keys that member owned — every key owned
// by a survivor keeps its owner (by name), and the moved fraction stays
// near 1/N.
func TestBoundedKeyMovement(t *testing.T) {
	const shards, keys = 8, 20_000
	full := New(members(shards), 0)
	const removed = 3
	reduced := full.Without(removed)
	if reduced.Len() != shards-1 {
		t.Fatalf("reduced ring has %d members, want %d", reduced.Len(), shards-1)
	}
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := full.Lookup(key)
		after := reduced.Lookup(key)
		if before == fmt.Sprintf("shard-%d", removed) {
			moved++
			continue // this key had to move
		}
		if before != after {
			t.Fatalf("key %q moved from surviving member %s to %s", key, before, after)
		}
	}
	// The removed member owned roughly 1/8 of the space.
	if frac := float64(moved) / keys; frac > 0.30 {
		t.Errorf("removing one of %d members moved %.1f%% of keys", shards, 100*frac)
	}
}

func TestWithoutOutOfRange(t *testing.T) {
	r := New(members(3), 4)
	if got := r.Without(-1); got != r {
		t.Error("Without(-1) should return the ring unchanged")
	}
	if got := r.Without(3); got != r {
		t.Error("Without(len) should return the ring unchanged")
	}
}

func BenchmarkOwner(b *testing.B) {
	r := New(members(8), 0)
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("class-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Owner(keys[i%len(keys)])
	}
}
