// Membership-diff API: the arcs of the hash circle whose owner changes
// between two rings. This is what makes elastic membership cheap — a join
// or drain re-homes exactly the arcs the diff names, so the router can warm
// the new owner's cache from precisely the keys that are about to move and
// leave every other key untouched.
package ring

import "sort"

// Range is one arc (Lo, Hi] of the hash circle whose owner changes between
// two rings: keys hashing into the arc move from member From to member To.
// Arcs are half-open at the bottom because ownership is "first virtual node
// at or clockwise after the hash" — the point at Lo owns hashes up to and
// including Lo, the arc above it belongs to the next point. When Lo >= Hi
// the arc wraps through zero (the circle's top).
type Range struct {
	Lo   uint64 `json:"lo"`
	Hi   uint64 `json:"hi"`
	From string `json:"from"`
	To   string `json:"to"`
}

// Contains reports whether hash h falls inside the arc.
func (g Range) Contains(h uint64) bool {
	if g.Lo < g.Hi {
		return h > g.Lo && h <= g.Hi
	}
	return h > g.Lo || h <= g.Hi // wraps through zero
}

// span is the arc's length on the 2^64 circle (the full circle when the
// range degenerates to a single boundary).
func (g Range) span() uint64 { return g.Hi - g.Lo }

// With builds the ring that results when member joins — the same replica
// count, one more member. Keys owned by existing members either keep their
// owner or move to the joiner; no key moves between survivors (the bounded-
// movement property the diff below makes exact).
func (r *Ring) With(member string) *Ring {
	members := append(r.Members(), member)
	replicas := 0
	if len(r.members) > 0 {
		replicas = len(r.points) / len(r.members)
	}
	return New(members, replicas)
}

// Moved returns exactly the key ranges that change owner between two rings,
// merged into maximal contiguous arcs, ordered by Lo. Ownership is compared
// by member name, so the two rings may index their members differently (a
// join appends, a drain splices). Either ring empty yields nil — there is
// no meaningful diff against a ring that owns nothing.
func Moved(old, new *Ring) []Range {
	if old == nil || new == nil || len(old.points) == 0 || len(new.points) == 0 {
		return nil
	}
	// Every virtual-node hash of either ring bounds an arc of constant
	// ownership in both: within (b[i], b[i+1]] no ring has a point, so
	// "first point at or after h" cannot change.
	bounds := make([]uint64, 0, len(old.points)+len(new.points))
	for _, p := range old.points {
		bounds = append(bounds, p.hash)
	}
	for _, p := range new.points {
		bounds = append(bounds, p.hash)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	n := 0
	for i, b := range bounds {
		if i == 0 || b != bounds[n-1] {
			bounds[n] = b
			n++
		}
	}
	bounds = bounds[:n]

	var out []Range
	for i := range bounds {
		lo, hi := bounds[i], bounds[(i+1)%n]
		// hi itself lies inside the arc (lo, hi], so it resolves the arc's
		// owner in both rings.
		from, to := old.ownerAt(hi), new.ownerAt(hi)
		if from == to {
			continue
		}
		if k := len(out); k > 0 && out[k-1].Hi == lo && out[k-1].From == from && out[k-1].To == to {
			out[k-1].Hi = hi // extend the previous arc: same movement, contiguous
			continue
		}
		out = append(out, Range{Lo: lo, Hi: hi, From: from, To: to})
	}
	return out
}

// ownerAt resolves the member name owning hash h: the first virtual node at
// or clockwise after h, wrapping to the circle's first point.
func (r *Ring) ownerAt(h uint64) string {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.members[r.points[i].idx]
}

// Covers reports whether hash h falls inside any of the ranges — the test
// the router applies to each hot key to decide whether it moves.
func Covers(ranges []Range, h uint64) bool {
	for _, g := range ranges {
		if g.Contains(h) {
			return true
		}
	}
	return false
}

// Frac is the fraction of the hash circle the ranges cover — the predicted
// moved-key fraction the rebalance planner reports per step.
func Frac(ranges []Range) float64 {
	var total float64
	for _, g := range ranges {
		if span := g.span(); span == 0 {
			total += 1 // a single-boundary diff covers the whole circle
		} else {
			total += float64(span) / (1 << 63) / 2
		}
	}
	return total
}
