package embed

import (
	"math"
	"testing"

	"github.com/splitexec/splitexec/internal/graph"
)

func TestSubgraphEmbeddingCycleIntoChimera(t *testing.T) {
	g := graph.Cycle(8)
	hw := graph.Chimera{M: 2, N: 2, L: 4}.Graph()
	vm := SubgraphEmbedding(g, hw, 0)
	if vm == nil {
		t.Fatal("C8 should embed 1:1 into C(2,2,4)")
	}
	if err := graph.ValidateMinor(g, hw, vm, true); err != nil {
		t.Fatal(err)
	}
	if vm.MaxChainLength() != 1 {
		t.Errorf("subgraph embedding produced chains: %v", vm)
	}
}

func TestSubgraphEmbeddingK44IntoCell(t *testing.T) {
	// One Chimera unit cell IS K_{4,4}.
	g := graph.CompleteBipartite(4, 4)
	hw := graph.Chimera{M: 1, N: 1, L: 4}.Graph()
	vm := SubgraphEmbedding(g, hw, 0)
	if vm == nil {
		t.Fatal("K44 should embed 1:1 into a unit cell")
	}
	if err := graph.ValidateMinor(g, hw, vm, true); err != nil {
		t.Fatal(err)
	}
}

func TestSubgraphEmbeddingDegreeReject(t *testing.T) {
	// K7 has degree 6 but also triangles; a unit cell (bipartite) has none.
	g := graph.Complete(3)
	hw := graph.Chimera{M: 1, N: 1, L: 4}.Graph()
	if vm := SubgraphEmbedding(g, hw, 0); vm != nil {
		t.Errorf("triangle embedded 1:1 into bipartite hardware: %v", vm)
	}
	// Degree pruning: star with hub degree 7 > max degree 6.
	if vm := SubgraphEmbedding(graph.Star(8), hw, 0); vm != nil {
		t.Error("degree-7 hub embedded into degree-6 hardware")
	}
}

func TestSubgraphEmbeddingEmpty(t *testing.T) {
	hw := graph.Chimera{M: 1, N: 1, L: 4}.Graph()
	vm := SubgraphEmbedding(graph.New(0), hw, 0)
	if vm == nil || len(vm) != 0 {
		t.Errorf("empty graph: %v", vm)
	}
}

func TestSubgraphEmbeddingBudgetExhaustion(t *testing.T) {
	g := graph.Grid(3, 3)
	hw := graph.Chimera{M: 3, N: 3, L: 4}.Graph()
	if vm := SubgraphEmbedding(g, hw, 1); vm != nil {
		t.Error("1-node budget should fail")
	}
}

func TestWorstCaseCMROpsMatchesFig6(t *testing.T) {
	// Fig. 6 constants for LPS = n: NH = n, EH = n(n-1)/2, M = N = 12,
	// NG = 1152, EG = 4*(2*144-24) + 16*144 = 3360.
	nh := 10
	eh := nh * (nh - 1) / 2
	ng, eg := 1152, 3360
	got := WorstCaseCMROps(nh, eh, ng, eg)
	// Compute the paper formula directly.
	dijkstra := 3360.0 + 1152.0*math.Log(1152)
	want := dijkstra * float64(2*eh) * float64(nh) * float64(ng)
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("ops = %v, want %v", got, want)
	}
	if got <= 0 {
		t.Error("ops must be positive")
	}
}

func TestOpsMonotonicity(t *testing.T) {
	prev := 0.0
	for n := 2; n <= 40; n += 2 {
		ops := WorstCaseCMROps(n, n*(n-1)/2, 1152, 3360)
		if ops <= prev {
			t.Fatalf("worst-case ops not increasing at n=%d", n)
		}
		prev = ops
	}
	if AverageCaseCMROps(20, 1152, 3360) >= WorstCaseCMROps(20, 190, 1152, 3360) {
		t.Error("average case should be far below worst case")
	}
}

func TestObservedOpsPositive(t *testing.T) {
	s := Stats{DijkstraRuns: 10, RelaxedEdges: 5000}
	if ObservedOps(s, 512) <= 5000 {
		t.Error("observed ops should include heap factor")
	}
}
