package embed

import (
	"sort"

	"github.com/splitexec/splitexec/internal/graph"
)

// SubgraphEmbedding searches for a one-to-one embedding of g into hw — every
// chain is a single hardware vertex, so no chain couplings are needed. This
// is the degenerate "smallest possible minor" found by the brute-force
// subgraph-isomorphism approach the paper describes as suitable for offline
// precomputation. It returns nil when g is not a subgraph of hw (which is
// typical whenever g has a vertex of degree above hw's maximum degree, e.g.
// 6 for Chimera).
//
// The search is exponential in the worst case; intended for small inputs.
// maxNodes bounds the backtracking-node budget (<= 0 means a default of
// 2,000,000 nodes); exceeding it returns nil.
func SubgraphEmbedding(g, hw *graph.Graph, maxNodes int) graph.VertexModel {
	if maxNodes <= 0 {
		maxNodes = 2_000_000
	}
	n := g.Order()
	if n == 0 {
		return graph.VertexModel{}
	}
	if n > hw.Order() || g.MaxDegree() > hw.MaxDegree() {
		return nil
	}
	// Order logical vertices: descending degree, ties broken by connectivity
	// to already-placed vertices (simple static approximation).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return g.Degree(order[a]) > g.Degree(order[b]) })

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	used := make([]bool, hw.Order())
	budget := maxNodes

	var try func(idx int) bool
	try = func(idx int) bool {
		if idx == n {
			return true
		}
		if budget <= 0 {
			return false
		}
		v := order[idx]
		// Candidate hardware vertices: if some neighbor of v is already
		// placed, only the hardware neighbors of its image are candidates.
		var candidates []int
		for _, u := range g.Neighbors(v) {
			if assign[u] != -1 {
				candidates = hw.Neighbors(assign[u])
				break
			}
		}
		if candidates == nil {
			candidates = allVertices(hw)
		}
		for _, w := range candidates {
			if used[w] || hw.Degree(w) < g.Degree(v) {
				continue
			}
			ok := true
			for _, u := range g.Neighbors(v) {
				if assign[u] != -1 && !hw.HasEdge(w, assign[u]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			budget--
			assign[v] = w
			used[w] = true
			if try(idx + 1) {
				return true
			}
			assign[v] = -1
			used[w] = false
		}
		return false
	}
	if !try(0) {
		return nil
	}
	vm := make(graph.VertexModel, n)
	for v, w := range assign {
		vm[v] = []int{w}
	}
	return vm
}

func allVertices(g *graph.Graph) []int {
	vs := make([]int, g.Order())
	for i := range vs {
		vs[i] = i
	}
	return vs
}
