// Package embed implements minor graph embedding of logical Ising problems
// into hardware connectivity graphs — the translation step the paper
// identifies as the split-execution bottleneck (stage 1).
//
// Three embedding strategies from §2.2 are provided:
//
//   - FindEmbedding: the probabilistic Cai–Macready–Roy heuristic
//     (arXiv:1406.2741) used for the paper's resource model,
//   - CliqueEmbedding: the deterministic Choi-style complete-graph layout
//     (requires ~n²/2 physical qubits for K_n),
//   - SubgraphEmbedding: the brute-force alternative based on subgraph
//     isomorphism, suitable for pre-computing offline lookup tables.
//
// The package also performs parameter setting for the embedded Ising model
// (bias spreading, coupler distribution, chain strength, control precision
// quantization).
package embed

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/splitexec/splitexec/internal/graph"
)

// Options configure the CMR embedding heuristic.
type Options struct {
	// MaxTries is the number of independent randomized restarts before the
	// embedder gives up. Default 10.
	MaxTries int
	// MaxIterations bounds the improvement sweeps per try. Default 10.
	MaxIterations int
	// PenaltyBase is the base of the exponential vertex-reuse penalty that
	// drives chains apart during refinement. Default 8.
	PenaltyBase float64
	// Deterministic disables the randomized vertex order (useful in tests).
	Deterministic bool
}

func (o Options) withDefaults() Options {
	if o.MaxTries <= 0 {
		o.MaxTries = 10
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 24
	}
	if o.PenaltyBase <= 1 {
		o.PenaltyBase = 8
	}
	return o
}

// Stats reports the work performed by an embedding run; the split-execution
// performance model converts these counts into time.
type Stats struct {
	Tries          int // randomized restarts consumed
	Sweeps         int // improvement iterations across all tries
	DijkstraRuns   int // single-source shortest-path computations
	RelaxedEdges   int // total edge relaxations inside Dijkstra
	PhysicalQubits int // size of φ(G)
	MaxChainLength int
}

// ErrNoEmbedding is returned when every randomized try fails to produce a
// valid (overlap-free) minor embedding.
var ErrNoEmbedding = errors.New("embed: no embedding found")

// FindEmbedding runs the Cai–Macready–Roy heuristic to embed the input graph
// g into the hardware graph hw. The result maps every vertex of g (including
// isolated ones) to a chain of hardware vertices. It is probabilistic: rng
// drives restarts and vertex orders; failures return ErrNoEmbedding.
func FindEmbedding(g, hw *graph.Graph, rng *rand.Rand, opts Options) (graph.VertexModel, Stats, error) {
	opts = opts.withDefaults()
	var stats Stats
	if g.Order() == 0 {
		return graph.VertexModel{}, stats, nil
	}
	if hw.Order() == 0 {
		return nil, stats, fmt.Errorf("embed: empty hardware graph: %w", ErrNoEmbedding)
	}
	for try := 0; try < opts.MaxTries; try++ {
		stats.Tries++
		vm, ok := cmrTry(g, hw, rng, opts, &stats)
		if !ok {
			continue
		}
		prune(g, hw, vm)
		if err := graph.ValidateMinor(g, hw, vm, true); err != nil {
			// Defensive: a passing try must validate; treat as failed try.
			continue
		}
		stats.PhysicalQubits = vm.PhysicalQubits()
		stats.MaxChainLength = vm.MaxChainLength()
		return vm, stats, nil
	}
	return nil, stats, ErrNoEmbedding
}

// cmrTry performs one randomized embedding attempt.
func cmrTry(g, hw *graph.Graph, rng *rand.Rand, opts Options, stats *Stats) (graph.VertexModel, bool) {
	n := g.Order()
	// Embed high-degree vertices first: their chains are hardest to route.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if !opts.Deterministic {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	sortStable(order, func(a, b int) bool { return g.Degree(a) > g.Degree(b) })

	st := &cmrState{
		g: g, hw: hw, rng: rng, opts: opts, stats: stats,
		vm:      make(graph.VertexModel, n),
		usage:   make([]int, hw.Order()),
		penalty: opts.PenaltyBase,
	}

	// Phase 1: initial embedding, overlaps permitted under penalty.
	for _, x := range order {
		st.embedVertex(x)
	}
	// Phase 2: refinement sweeps until overlap-free, stagnant, or out of
	// iterations. A try that stops reducing its overlap count is abandoned
	// early — a fresh randomized restart is more productive than grinding.
	bestOverlap := 1 << 30
	stagnant := 0
	for iter := 0; iter < opts.MaxIterations; iter++ {
		stats.Sweeps++
		overlap := st.overlapCount()
		if overlap == 0 {
			return st.vm, true
		}
		if overlap < bestOverlap {
			bestOverlap = overlap
			stagnant = 0
		} else {
			stagnant++
			if stagnant >= 6 {
				return nil, false
			}
		}
		for _, x := range order {
			st.removeChain(x)
			st.embedVertex(x)
		}
	}
	if st.overlapCount() == 0 {
		return st.vm, true
	}
	return nil, false
}

// sortStable is a tiny insertion sort keeping rng-shuffled order among
// equals (stable), avoiding a sort.SliceStable closure allocation in the
// hot path of repeated tries.
func sortStable(a []int, less func(x, y int) bool) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && less(a[j], a[j-1]); j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

type cmrState struct {
	g, hw   *graph.Graph
	rng     *rand.Rand
	opts    Options
	stats   *Stats
	vm      graph.VertexModel
	usage   []int   // how many chains currently use each hardware vertex
	penalty float64 // current reuse penalty base (escalates per sweep)
}

func (st *cmrState) overlapCount() int {
	c := 0
	for _, u := range st.usage {
		if u > 1 {
			c += u - 1
		}
	}
	return c
}

func (st *cmrState) removeChain(x int) {
	for _, q := range st.vm[x] {
		st.usage[q]--
	}
	delete(st.vm, x)
}

func (st *cmrState) addChain(x int, chain []int) {
	st.vm[x] = chain
	for _, q := range chain {
		st.usage[q]++
	}
}

// vertexCost is the exponential reuse penalty for routing through q.
func (st *cmrState) vertexCost(q int) float64 {
	if st.hw.Degree(q) == 0 {
		return math.Inf(1) // dead/isolated qubit
	}
	return math.Pow(st.penalty, float64(st.usage[q]))
}

// embedVertex (re)computes the chain for logical vertex x given the chains of
// its already-embedded neighbors, following CMR: run a multi-source Dijkstra
// from each embedded neighbor chain to choose the root g* minimizing the
// summed reach cost, then grow the chain incrementally — each neighbor chain
// is connected by a shortest path from the *current* chain (whose vertices
// cost nothing to stand on), so paths share qubits instead of forming
// independent spokes.
func (st *cmrState) embedVertex(x int) {
	var embedded []int
	for _, u := range st.g.Neighbors(x) {
		if len(st.vm[u]) > 0 {
			embedded = append(embedded, u)
		}
	}
	if len(embedded) == 0 {
		st.addChain(x, []int{st.cheapestQubit()})
		return
	}

	nh := st.hw.Order()
	total := make([]float64, nh)
	reachable := make([]bool, nh)
	for i := range reachable {
		reachable[i] = true
	}
	for _, u := range embedded {
		d, _ := st.multiSourceDijkstra(st.vm[u])
		for q := 0; q < nh; q++ {
			if math.IsInf(d[q], 1) {
				reachable[q] = false
			} else {
				total[q] += d[q]
			}
		}
	}
	// Root cost includes the root's own reuse penalty once.
	best, bestCost := -1, math.Inf(1)
	for q := 0; q < nh; q++ {
		if !reachable[q] {
			continue
		}
		c := total[q] + st.vertexCost(q)
		if c < bestCost {
			best, bestCost = q, c
		}
	}
	if best == -1 {
		// Hardware disconnected relative to neighbor chains; place on the
		// cheapest qubit and let refinement sort it out (or fail the try).
		st.addChain(x, []int{st.cheapestQubit()})
		return
	}

	// Incremental growth from the root: connect each neighbor chain by a
	// shortest path from the chain built so far.
	chainSet := map[int]bool{best: true}
	chain := []int{best}
	for _, u := range embedded {
		inNbr := make(map[int]bool, len(st.vm[u]))
		adjacent := false
		for _, q := range st.vm[u] {
			inNbr[q] = true
		}
		// Already adjacent? (Some chain vertex borders the neighbor chain.)
		for _, q := range chain {
			for _, w := range st.hw.Neighbors(q) {
				if inNbr[w] {
					adjacent = true
					break
				}
			}
			if adjacent {
				break
			}
		}
		if adjacent {
			continue
		}
		d, parent := st.multiSourceDijkstra(chain)
		// Cheapest entry point into the neighbor chain.
		target, targetCost := -1, math.Inf(1)
		for _, q := range st.vm[u] {
			if d[q] < targetCost {
				target, targetCost = q, d[q]
			}
		}
		if target == -1 {
			continue // unreachable; the try will fail validation and retry
		}
		// Add the path's interior (excluding the endpoint inside the
		// neighbor chain) to x's chain.
		for q := parent[target]; q != -1 && !chainSet[q]; q = parent[q] {
			chainSet[q] = true
			chain = append(chain, q)
		}
	}
	sortInts(chain)
	st.addChain(x, chain)
}

// cheapestQubit returns a hardware vertex with minimal reuse penalty,
// breaking ties randomly.
func (st *cmrState) cheapestQubit() int {
	best, bestCost, count := 0, math.Inf(1), 0
	for q := 0; q < st.hw.Order(); q++ {
		c := st.vertexCost(q)
		if c < bestCost {
			best, bestCost, count = q, c, 1
		} else if c == bestCost {
			count++
			if st.rng.Intn(count) == 0 {
				best = q
			}
		}
	}
	return best
}

// multiSourceDijkstra computes, for every hardware vertex q, the cheapest
// cost of a path from the source chain to q where entering vertex v costs
// vertexCost(v); source-chain vertices cost 0 to stand on. parent pointers
// trace back to a source vertex (parent = -1 at sources).
func (st *cmrState) multiSourceDijkstra(sources []int) (dist []float64, parent []int) {
	st.stats.DijkstraRuns++
	nh := st.hw.Order()
	dist = make([]float64, nh)
	parent = make([]int, nh)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	h := &floatPQ{}
	for _, s := range sources {
		dist[s] = 0
		heap.Push(h, floatItem{v: s, dist: 0})
	}
	for h.Len() > 0 {
		it := heap.Pop(h).(floatItem)
		if it.dist > dist[it.v] {
			continue
		}
		for _, u := range st.hw.Neighbors(it.v) {
			st.stats.RelaxedEdges++
			nd := it.dist + st.vertexCost(u)
			if nd < dist[u] {
				dist[u] = nd
				parent[u] = it.v
				heap.Push(h, floatItem{v: u, dist: nd})
			}
		}
	}
	return dist, parent
}

// prune removes unnecessary vertices from every chain: a chain vertex is
// dropped when the remaining chain stays connected and all logical edges
// remain realized. Greedy, one pass per chain, highest-degree-last order.
func prune(g, hw *graph.Graph, vm graph.VertexModel) {
	for x := 0; x < g.Order(); x++ {
		chain := vm[x]
		if len(chain) <= 1 {
			continue
		}
		for i := 0; i < len(chain); {
			candidate := append([]int(nil), chain[:i]...)
			candidate = append(candidate, chain[i+1:]...)
			if len(candidate) > 0 && graph.ConnectedSubset(hw, candidate) && edgesStillRealized(g, hw, vm, x, candidate) {
				chain = candidate
				// restart index: removal may enable more removals
				i = 0
				continue
			}
			i++
		}
		sortInts(chain)
		vm[x] = chain
	}
}

func edgesStillRealized(g, hw *graph.Graph, vm graph.VertexModel, x int, candidate []int) bool {
	inC := make(map[int]bool, len(candidate))
	for _, q := range candidate {
		inC[q] = true
	}
	for _, u := range g.Neighbors(x) {
		found := false
		for _, q := range vm[u] {
			for _, w := range hw.Neighbors(q) {
				if inC[w] {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

type floatItem struct {
	v    int
	dist float64
}

type floatPQ []floatItem

func (p floatPQ) Len() int            { return len(p) }
func (p floatPQ) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p floatPQ) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *floatPQ) Push(x interface{}) { *p = append(*p, x.(floatItem)) }
func (p *floatPQ) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
