package embed

import (
	"fmt"
	"math"

	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/qubo"
)

// Embedded couples a hardware-space Ising program with the vertex model that
// produced it. The Model's spin space is the hardware vertex space; unused
// qubits carry zero bias and no couplings.
type Embedded struct {
	Model         *qubo.Ising       // hardware-space Ising program
	VM            graph.VertexModel // logical vertex -> chain
	ChainStrength float64           // |J| applied to intra-chain couplers
	LogicalDim    int               // number of logical spins
}

// DefaultChainStrengthFactor multiplies the largest logical coefficient to
// obtain the ferromagnetic chain coupling; the paper notes the value is
// "typically chosen to be much larger than neighboring elements".
const DefaultChainStrengthFactor = 2.0

// SetParameters maps the logical Ising model onto hardware through the
// vertex model vm (paper §2.2, "parameter setting"):
//
//   - each logical bias h_i is spread evenly over the qubits of chain(i),
//   - each logical coupling J_ij is spread evenly over the available
//     hardware couplers between chain(i) and chain(j),
//   - every intra-chain coupler receives the ferromagnetic coupling
//     -chainStrength so chain qubits act collectively.
//
// A chainStrength <= 0 selects DefaultChainStrengthFactor × max|coefficient|
// (with a floor of 1 for all-zero problems).
func SetParameters(logical *qubo.Ising, vm graph.VertexModel, hw *graph.Graph, chainStrength float64) (*Embedded, error) {
	if err := graph.ValidateMinor(logical.Graph(), hw, vm, false); err != nil {
		return nil, fmt.Errorf("embed: invalid vertex model: %w", err)
	}
	if chainStrength <= 0 {
		chainStrength = DefaultChainStrengthFactor * logical.MaxAbsCoefficient()
		if chainStrength == 0 {
			chainStrength = 1
		}
	}
	phys := qubo.NewIsing(hw.Order())
	phys.Offset = logical.Offset

	for i := 0; i < logical.Dim(); i++ {
		chain := vm[i]
		if len(chain) == 0 {
			if logical.H[i] != 0 {
				return nil, fmt.Errorf("embed: logical spin %d has bias %g but no chain", i, logical.H[i])
			}
			continue
		}
		share := logical.H[i] / float64(len(chain))
		for _, q := range chain {
			phys.H[q] += share
		}
	}
	for _, e := range logical.Edges() {
		couplers := couplersBetween(hw, vm[e.U], vm[e.V])
		if len(couplers) == 0 {
			return nil, fmt.Errorf("embed: no hardware coupler for logical edge {%d,%d}", e.U, e.V)
		}
		share := logical.Coupling(e.U, e.V) / float64(len(couplers))
		for _, c := range couplers {
			phys.SetCoupling(c.U, c.V, phys.Coupling(c.U, c.V)+share)
		}
	}
	for _, edges := range graph.ChainEdges(hw, vm) {
		for _, c := range edges {
			phys.SetCoupling(c.U, c.V, phys.Coupling(c.U, c.V)-chainStrength)
		}
	}
	return &Embedded{Model: phys, VM: vm, ChainStrength: chainStrength, LogicalDim: logical.Dim()}, nil
}

// couplersBetween lists the hardware edges joining chains a and b.
func couplersBetween(hw *graph.Graph, a, b []int) []graph.Edge {
	inB := make(map[int]bool, len(b))
	for _, q := range b {
		inB[q] = true
	}
	var out []graph.Edge
	for _, q := range a {
		for _, u := range hw.Neighbors(q) {
			if inB[u] {
				out = append(out, graph.Edge{U: q, V: u}.Normalize())
			}
		}
	}
	return out
}

// Quantize rounds every bias and coupling of the model to the grid
// representable with the given number of control bits over [-scale, +scale],
// modeling the limited DAC precision the paper flags ("the ability to
// realize these exact parameter values is limited by the bits of
// precision"). It returns the maximum absolute rounding error introduced.
func Quantize(m *qubo.Ising, bits int, scale float64) float64 {
	if bits < 1 || scale <= 0 {
		panic(fmt.Sprintf("embed: invalid quantization (bits=%d scale=%g)", bits, scale))
	}
	levels := float64(int64(1)<<uint(bits)) - 1
	step := 2 * scale / levels
	maxErr := 0.0
	round := func(x float64) float64 {
		clamped := math.Max(-scale, math.Min(scale, x))
		r := math.Round((clamped+scale)/step)*step - scale
		if e := math.Abs(r - x); e > maxErr {
			maxErr = e
		}
		return r
	}
	for i, h := range m.H {
		m.H[i] = round(h)
	}
	for _, e := range m.Graph().Edges() {
		m.SetCoupling(e.U, e.V, round(m.Coupling(e.U, e.V)))
	}
	return maxErr
}

// Unembed maps a hardware spin readout back to the logical space by majority
// vote within each chain (ties broken toward +1), the standard chain
// decoding. broken counts chains whose qubits disagreed.
func (em *Embedded) Unembed(physical []int8) (logical []int8, broken int) {
	logical = make([]int8, em.LogicalDim)
	for i := 0; i < em.LogicalDim; i++ {
		chain := em.VM[i]
		if len(chain) == 0 {
			logical[i] = 1
			continue
		}
		sum, disagree := 0, false
		for _, q := range chain {
			sum += int(physical[q])
		}
		if abs(sum) != len(chain) {
			disagree = true
		}
		if disagree {
			broken++
		}
		if sum >= 0 {
			logical[i] = 1
		} else {
			logical[i] = -1
		}
	}
	return logical, broken
}

// EmbedSpins lifts a logical spin vector to the hardware space (every chain
// qubit takes the logical value; unused qubits get +1). Useful for computing
// the hardware energy of a known logical state.
func (em *Embedded) EmbedSpins(logical []int8) []int8 {
	phys := make([]int8, em.Model.Dim())
	for i := range phys {
		phys[i] = 1
	}
	for v, chain := range em.VM {
		for _, q := range chain {
			phys[q] = logical[v]
		}
	}
	return phys
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
