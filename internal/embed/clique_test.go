package embed

import (
	"testing"

	"github.com/splitexec/splitexec/internal/graph"
)

func TestCliqueEmbeddingValid(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 16} {
		c := graph.Chimera{M: 4, N: 4, L: 4}
		vm, err := CliqueEmbedding(n, c)
		if err != nil {
			t.Fatalf("K%d: %v", n, err)
		}
		g := graph.Complete(n)
		if err := graph.ValidateMinor(g, c.Graph(), vm, true); err != nil {
			t.Fatalf("K%d: invalid: %v", n, err)
		}
	}
}

func TestCliqueEmbeddingSize(t *testing.T) {
	c := graph.Chimera{M: 4, N: 4, L: 4}
	vm, err := CliqueEmbedding(10, c)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := vm.PhysicalQubits(), CliqueEmbeddingQubits(10, c); got != want {
		t.Errorf("qubits = %d, want %d", got, want)
	}
	// Each chain uses M+N qubits.
	if vm.MaxChainLength() != c.M+c.N {
		t.Errorf("chain length = %d, want %d", vm.MaxChainLength(), c.M+c.N)
	}
}

func TestCliqueEmbeddingLimits(t *testing.T) {
	c := graph.Chimera{M: 4, N: 4, L: 4}
	if max := MaxCliqueSize(c); max != 16 {
		t.Errorf("MaxCliqueSize = %d, want 16", max)
	}
	if _, err := CliqueEmbedding(17, c); err == nil {
		t.Error("oversize clique accepted")
	}
	if _, err := CliqueEmbedding(-1, c); err == nil {
		t.Error("negative clique accepted")
	}
	if vm, err := CliqueEmbedding(0, c); err != nil || len(vm) != 0 {
		t.Errorf("K0: vm=%v err=%v", vm, err)
	}
}

func TestCliqueEmbeddingMaxOnDW2X(t *testing.T) {
	// The full-width clique on the paper's 1152-qubit processor: K48.
	c := graph.DW2X()
	n := MaxCliqueSize(c)
	if n != 48 {
		t.Fatalf("DW2X max clique = %d, want 48", n)
	}
	vm, err := CliqueEmbedding(n, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.ValidateMinor(graph.Complete(n), c.Graph(), vm, true); err != nil {
		t.Fatal(err)
	}
	// ~n² scaling: K48 uses 48·24 = 1152 qubits = the whole processor.
	if vm.PhysicalQubits() != 1152 {
		t.Errorf("qubits = %d, want 1152", vm.PhysicalQubits())
	}
}

func TestCliqueEmbeddingRectangular(t *testing.T) {
	c := graph.Chimera{M: 2, N: 3, L: 4}
	if max := MaxCliqueSize(c); max != 8 {
		t.Errorf("MaxCliqueSize C(2,3,4) = %d, want 8 (L·min)", max)
	}
	vm, err := CliqueEmbedding(8, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.ValidateMinor(graph.Complete(8), c.Graph(), vm, true); err != nil {
		t.Fatal(err)
	}
}
