package embed

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/splitexec/splitexec/internal/graph"
)

func TestFindEmbeddingTriangleInCell(t *testing.T) {
	g := graph.Complete(3)
	hw := graph.Chimera{M: 1, N: 1, L: 4}.Graph()
	vm, stats, err := FindEmbedding(g, hw, rand.New(rand.NewSource(1)), Options{})
	if err != nil {
		t.Fatalf("K3 into one unit cell failed: %v", err)
	}
	if err := graph.ValidateMinor(g, hw, vm, true); err != nil {
		t.Fatalf("invalid embedding: %v", err)
	}
	if stats.PhysicalQubits < 3 || stats.PhysicalQubits > 8 {
		t.Errorf("physical qubits = %d, implausible", stats.PhysicalQubits)
	}
	if stats.DijkstraRuns == 0 {
		t.Error("no Dijkstra runs recorded")
	}
}

func TestFindEmbeddingCompleteGraphs(t *testing.T) {
	hw := graph.Chimera{M: 4, N: 4, L: 4}.Graph()
	rng := rand.New(rand.NewSource(7))
	for n := 2; n <= 8; n++ {
		g := graph.Complete(n)
		vm, _, err := FindEmbedding(g, hw, rng, Options{MaxTries: 20})
		if err != nil {
			t.Fatalf("K%d into C(4,4,4) failed: %v", n, err)
		}
		if err := graph.ValidateMinor(g, hw, vm, true); err != nil {
			t.Fatalf("K%d: invalid embedding: %v", n, err)
		}
	}
}

func TestFindEmbeddingSparseGraphs(t *testing.T) {
	hw := graph.Chimera{M: 3, N: 3, L: 4}.Graph()
	rng := rand.New(rand.NewSource(3))
	cases := map[string]*graph.Graph{
		"cycle12":  graph.Cycle(12),
		"path15":   graph.Path(15),
		"star7":    graph.Star(7),
		"grid3x4":  graph.Grid(3, 4),
		"gnp14-.2": graph.GNP(14, 0.2, rng),
	}
	for name, g := range cases {
		vm, _, err := FindEmbedding(g, hw, rng, Options{MaxTries: 20})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := graph.ValidateMinor(g, hw, vm, true); err != nil {
			t.Errorf("%s: invalid: %v", name, err)
		}
	}
}

func TestFindEmbeddingIsolatedVertices(t *testing.T) {
	g := graph.New(4) // no edges at all
	hw := graph.Chimera{M: 1, N: 1, L: 4}.Graph()
	vm, _, err := FindEmbedding(g, hw, rand.New(rand.NewSource(2)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vm) != 4 {
		t.Fatalf("isolated vertices unmapped: %v", vm)
	}
	if err := graph.ValidateMinor(g, hw, vm, true); err != nil {
		t.Fatal(err)
	}
}

func TestFindEmbeddingEmptyGraphs(t *testing.T) {
	hw := graph.Chimera{M: 1, N: 1, L: 4}.Graph()
	vm, _, err := FindEmbedding(graph.New(0), hw, rand.New(rand.NewSource(1)), Options{})
	if err != nil || len(vm) != 0 {
		t.Errorf("empty input: vm=%v err=%v", vm, err)
	}
	_, _, err = FindEmbedding(graph.Complete(2), graph.New(0), rand.New(rand.NewSource(1)), Options{})
	if !errors.Is(err, ErrNoEmbedding) {
		t.Errorf("empty hardware: err=%v, want ErrNoEmbedding", err)
	}
}

func TestFindEmbeddingImpossible(t *testing.T) {
	// K5 cannot embed into a path (treewidth 1 hardware).
	g := graph.Complete(5)
	hw := graph.Path(6)
	_, _, err := FindEmbedding(g, hw, rand.New(rand.NewSource(1)), Options{MaxTries: 3, MaxIterations: 4})
	if !errors.Is(err, ErrNoEmbedding) {
		t.Errorf("err = %v, want ErrNoEmbedding", err)
	}
}

func TestFindEmbeddingWithFaults(t *testing.T) {
	// Paper §2.2: faulty qubits are deactivated and make embedding harder
	// but must still be avoided entirely.
	c := graph.Chimera{M: 3, N: 3, L: 4}
	hw := c.Graph()
	rng := rand.New(rand.NewSource(11))
	fm := graph.RandomFaults(hw, 0.08, 0.02, rng)
	faulty := fm.Apply(hw)
	g := graph.Cycle(8)
	vm, _, err := FindEmbedding(g, faulty, rng, Options{MaxTries: 30})
	if err != nil {
		t.Fatalf("embedding with faults failed: %v", err)
	}
	if err := graph.ValidateMinor(g, faulty, vm, true); err != nil {
		t.Fatal(err)
	}
	dead := make(map[int]bool)
	for _, q := range fm.DeadQubits {
		dead[q] = true
	}
	for v, chain := range vm {
		for _, q := range chain {
			if dead[q] {
				t.Fatalf("chain of %d uses dead qubit %d", v, q)
			}
		}
	}
}

func TestFindEmbeddingDeterministicOption(t *testing.T) {
	g := graph.Cycle(6)
	hw := graph.Chimera{M: 2, N: 2, L: 4}.Graph()
	vm1, _, err1 := FindEmbedding(g, hw, rand.New(rand.NewSource(5)), Options{Deterministic: true, MaxTries: 1})
	vm2, _, err2 := FindEmbedding(g, hw, rand.New(rand.NewSource(5)), Options{Deterministic: true, MaxTries: 1})
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v %v", err1, err2)
	}
	for v := range vm1 {
		if len(vm1[v]) != len(vm2[v]) {
			t.Fatalf("nondeterministic chains for %d: %v vs %v", v, vm1[v], vm2[v])
		}
		for i := range vm1[v] {
			if vm1[v][i] != vm2[v][i] {
				t.Fatalf("nondeterministic chains for %d: %v vs %v", v, vm1[v], vm2[v])
			}
		}
	}
}

func TestFindEmbeddingStatsAccumulate(t *testing.T) {
	g := graph.Complete(4)
	hw := graph.Chimera{M: 2, N: 2, L: 4}.Graph()
	_, stats, err := FindEmbedding(g, hw, rand.New(rand.NewSource(9)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tries < 1 || stats.Sweeps < 1 || stats.RelaxedEdges == 0 {
		t.Errorf("stats not populated: %+v", stats)
	}
	if stats.MaxChainLength < 1 {
		t.Errorf("MaxChainLength = %d", stats.MaxChainLength)
	}
}

// Property-style: random sparse graphs into C(4,4,4) always validate.
func TestFindEmbeddingRandomAlwaysValid(t *testing.T) {
	hw := graph.Chimera{M: 4, N: 4, L: 4}.Graph()
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(10, 0.3, rng)
		vm, _, err := FindEmbedding(g, hw, rng, Options{MaxTries: 20})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := graph.ValidateMinor(g, hw, vm, true); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestPruneShortensChains(t *testing.T) {
	// A chain with an unnecessary appendix must be pruned.
	c := graph.Chimera{M: 2, N: 2, L: 4}
	hw := c.Graph()
	g := graph.Complete(2)
	vm := graph.VertexModel{
		0: {c.Index(0, 0, 0, 0), c.Index(0, 0, 1, 0), c.Index(0, 0, 1, 1)},
		1: {c.Index(0, 0, 0, 1)},
	}
	if err := graph.ValidateMinor(g, hw, vm, true); err != nil {
		t.Fatalf("setup invalid: %v", err)
	}
	prune(g, hw, vm)
	if err := graph.ValidateMinor(g, hw, vm, true); err != nil {
		t.Fatalf("pruned embedding invalid: %v", err)
	}
	if len(vm[0]) != 1 {
		t.Errorf("chain not pruned to singleton: %v", vm[0])
	}
}
