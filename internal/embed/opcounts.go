package embed

import "math"

// WorstCaseCMROps returns the operation count the paper's stage-1 ASPEN
// model charges for minor embedding (Fig. 6):
//
//	EmbeddingOps = (EG + NG·log NG) · (2·EH) · NH · NG
//
// where NH/EH are the vertex/edge counts of the logical input graph and
// NG/EG those of the hardware graph. This is the worst-case bound of the
// Cai–Macready–Roy heuristic: one Dijkstra run costs EG + NG·log NG, each
// logical edge induces up to two chain reroutes, and up to NH·NG refinement
// combinations are explored.
func WorstCaseCMROps(nh, eh, ng, eg int) float64 {
	dijkstra := float64(eg) + float64(ng)*math.Log(float64(ng))
	return dijkstra * float64(2*eh) * float64(nh) * float64(ng)
}

// AverageCaseCMROps returns the empirical average-case scaling Cai et al.
// observed for fixed hardware — linear in the input size with the Dijkstra
// cost as the per-vertex constant (paper §2.2: "the average case complexity
// was observed ... to be significantly less, i.e., O(n)").
func AverageCaseCMROps(nh, ng, eg int) float64 {
	dijkstra := float64(eg) + float64(ng)*math.Log(float64(ng))
	return dijkstra * float64(nh)
}

// ObservedOps converts embedding run statistics into an effective operation
// count comparable with the model's: relaxed edges plus the heap-log factor
// per Dijkstra run.
func ObservedOps(s Stats, ng int) float64 {
	logN := math.Log(math.Max(2, float64(ng)))
	return float64(s.RelaxedEdges) + float64(s.DijkstraRuns)*float64(ng)*logN
}
