package embed

import (
	"math"
	"math/rand"
	"testing"

	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/qubo"
)

// buildEmbedded creates a small end-to-end fixture: random Ising on C5
// embedded into C(2,2,4) with parameters set.
func buildEmbedded(t *testing.T, seed int64) (*qubo.Ising, *Embedded, *graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.Cycle(5)
	logical := qubo.RandomIsing(g, 1, 1, rng)
	hw := graph.Chimera{M: 2, N: 2, L: 4}.Graph()
	vm, _, err := FindEmbedding(g, hw, rng, Options{MaxTries: 20})
	if err != nil {
		t.Fatal(err)
	}
	em, err := SetParameters(logical, vm, hw, 0)
	if err != nil {
		t.Fatal(err)
	}
	return logical, em, hw
}

func TestSetParametersChainStrengthDefault(t *testing.T) {
	logical, em, _ := buildEmbedded(t, 1)
	want := DefaultChainStrengthFactor * logical.MaxAbsCoefficient()
	if em.ChainStrength != want {
		t.Errorf("chain strength = %v, want %v", em.ChainStrength, want)
	}
}

// Energy consistency: for any logical state s, the hardware energy of the
// lifted state must equal the logical energy plus the constant chain bonus
// -chainStrength × (total intra-chain couplers).
func TestSetParametersEnergyConsistency(t *testing.T) {
	logical, em, hw := buildEmbedded(t, 2)
	chainCouplers := 0
	for _, edges := range graph.ChainEdges(hw, em.VM) {
		chainCouplers += len(edges)
	}
	bonus := -em.ChainStrength * float64(chainCouplers)
	s := make([]int8, logical.Dim())
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		for i := range s {
			s[i] = int8(2*rng.Intn(2) - 1)
		}
		eL := logical.Energy(s)
		eP := em.Model.Energy(em.EmbedSpins(s))
		if math.Abs(eP-(eL+bonus)) > 1e-9 {
			t.Fatalf("trial %d: physical %v != logical %v + bonus %v", trial, eP, eL, bonus)
		}
	}
}

// Ground-state preservation: with sufficient chain strength, the hardware
// ground state unembeds to a logical ground state.
func TestSetParametersGroundStatePreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.Complete(4)
	logical := qubo.RandomIsing(g, 1, 1, rng)
	hw := graph.Chimera{M: 2, N: 2, L: 4}.Graph()
	vm, _, err := FindEmbedding(g, hw, rng, Options{MaxTries: 20})
	if err != nil {
		t.Fatal(err)
	}
	em, err := SetParameters(logical, vm, hw, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Restrict brute force to the used qubits: enumerate logical states and
	// confirm the lifted logical ground state minimizes hardware energy over
	// all lifted states (chains aligned).
	_, eLBest := logical.BruteForce()
	bestLifted := math.Inf(1)
	s := make([]int8, logical.Dim())
	for mask := 0; mask < 1<<4; mask++ {
		for i := 0; i < 4; i++ {
			if (mask>>uint(i))&1 == 1 {
				s[i] = 1
			} else {
				s[i] = -1
			}
		}
		eP := em.Model.Energy(em.EmbedSpins(s))
		if eP < bestLifted {
			bestLifted = eP
		}
		if math.Abs(logical.Energy(s)-eLBest) < 1e-9 {
			// ground state: its lifted energy must equal the lifted minimum
			// (checked after loop via bestLifted).
			defer func(e float64) {
				if math.Abs(e-bestLifted) > 1e-9 {
					t.Errorf("lifted ground-state energy %v != lifted min %v", e, bestLifted)
				}
			}(eP)
		}
	}
}

func TestSetParametersBiasConservation(t *testing.T) {
	logical, em, _ := buildEmbedded(t, 5)
	// Sum of physical biases over a chain equals the logical bias.
	for v := 0; v < logical.Dim(); v++ {
		sum := 0.0
		for _, q := range em.VM[v] {
			sum += em.Model.H[q]
		}
		if math.Abs(sum-logical.H[v]) > 1e-9 {
			t.Errorf("spin %d: chain bias sum %v != h %v", v, sum, logical.H[v])
		}
	}
}

func TestSetParametersCouplingConservation(t *testing.T) {
	logical, em, hw := buildEmbedded(t, 6)
	for _, e := range logical.Edges() {
		sum := 0.0
		for _, c := range couplersBetween(hw, em.VM[e.U], em.VM[e.V]) {
			sum += em.Model.Coupling(c.U, c.V)
		}
		if math.Abs(sum-logical.Coupling(e.U, e.V)) > 1e-9 {
			t.Errorf("edge %v: coupler sum %v != J %v", e, sum, logical.Coupling(e.U, e.V))
		}
	}
}

func TestSetParametersRejectsInvalidModel(t *testing.T) {
	logical := qubo.NewIsing(2)
	logical.SetCoupling(0, 1, 1)
	hw := graph.Chimera{M: 1, N: 1, L: 4}.Graph()
	// Chains not adjacent: {0} is left shore pos 0, {1} left shore pos 1.
	vm := graph.VertexModel{0: {0}, 1: {1}}
	if _, err := SetParameters(logical, vm, hw, 0); err == nil {
		t.Error("invalid vertex model accepted")
	}
}

func TestSetParametersAllZeroProblem(t *testing.T) {
	logical := qubo.NewIsing(2)
	logical.SetCoupling(0, 1, 0) // deleted; edgeless model
	hw := graph.Chimera{M: 1, N: 1, L: 4}.Graph()
	vm := graph.VertexModel{0: {0}, 1: {1}}
	em, err := SetParameters(logical, vm, hw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if em.ChainStrength != 1 {
		t.Errorf("zero-problem chain strength = %v, want floor 1", em.ChainStrength)
	}
}

func TestUnembedMajorityVote(t *testing.T) {
	em := &Embedded{
		Model:      qubo.NewIsing(6),
		VM:         graph.VertexModel{0: {0, 1, 2}, 1: {3, 4}},
		LogicalDim: 2,
	}
	phys := []int8{1, 1, -1, -1, -1, 1}
	logical, broken := em.Unembed(phys)
	if logical[0] != 1 || logical[1] != -1 {
		t.Errorf("logical = %v, want [1 -1]", logical)
	}
	if broken != 1 {
		t.Errorf("broken = %d, want 1 (chain 0 disagreed)", broken)
	}
	// Aligned chains: no breakage, tie impossible.
	phys = []int8{-1, -1, -1, 1, 1, -1}
	logical, broken = em.Unembed(phys)
	if logical[0] != -1 || logical[1] != 1 || broken != 0 {
		t.Errorf("logical = %v broken = %d", logical, broken)
	}
}

func TestUnembedTieBreaksPositive(t *testing.T) {
	em := &Embedded{
		Model:      qubo.NewIsing(2),
		VM:         graph.VertexModel{0: {0, 1}},
		LogicalDim: 1,
	}
	logical, broken := em.Unembed([]int8{1, -1})
	if logical[0] != 1 || broken != 1 {
		t.Errorf("tie: logical=%v broken=%d", logical, broken)
	}
}

func TestQuantizeReducesPrecision(t *testing.T) {
	m := qubo.NewIsing(2)
	m.H[0] = 0.123456789
	m.H[1] = -0.987654321
	m.SetCoupling(0, 1, 0.555555)
	maxErr := Quantize(m, 4, 1) // 4 bits over [-1,1]: step = 2/15
	if maxErr <= 0 {
		t.Error("expected nonzero rounding error")
	}
	step := 2.0 / 15
	for _, h := range m.H {
		ratio := (h + 1) / step
		if math.Abs(ratio-math.Round(ratio)) > 1e-9 {
			t.Errorf("h = %v not on the quantization grid", h)
		}
	}
	if maxErr > step/2+1e-12 {
		t.Errorf("max error %v exceeds half step %v", maxErr, step/2)
	}
}

func TestQuantizeClampsOutOfRange(t *testing.T) {
	m := qubo.NewIsing(1)
	m.H[0] = 5
	Quantize(m, 8, 1)
	if m.H[0] != 1 {
		t.Errorf("out-of-range bias = %v, want clamp to 1", m.H[0])
	}
}

func TestQuantizePanicsOnBadArgs(t *testing.T) {
	m := qubo.NewIsing(1)
	defer func() {
		if recover() == nil {
			t.Error("bits=0 did not panic")
		}
	}()
	Quantize(m, 0, 1)
}

func TestQuantizeHighPrecisionNearLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.Cycle(6)
	m := qubo.RandomIsing(g, 0.5, 0.5, rng)
	orig := m.Clone()
	maxErr := Quantize(m, 24, 1)
	if maxErr > 1e-6 {
		t.Errorf("24-bit quantization error %v too large", maxErr)
	}
	for i := range orig.H {
		if math.Abs(orig.H[i]-m.H[i]) > 1e-6 {
			t.Fatal("bias drifted")
		}
	}
}
