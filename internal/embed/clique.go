package embed

import (
	"fmt"

	"github.com/splitexec/splitexec/internal/graph"
)

// MaxCliqueSize returns the largest n for which CliqueEmbedding can embed
// K_n into the square Chimera topology c: n = L·min(M,N).
func MaxCliqueSize(c graph.Chimera) int {
	m := c.M
	if c.N < m {
		m = c.N
	}
	return c.L * m
}

// CliqueEmbedding deterministically embeds the complete graph K_n into the
// Chimera topology c using the cross-shaped layout of Choi's minor-universal
// design (each logical vertex occupies one vertical line of left-shore
// qubits and one horizontal line of right-shore qubits that meet in a
// diagonal cell). Every chain has length M+N-ish (exactly c.M + c.N qubits
// minus nothing: M vertical + N horizontal), so K_n consumes n·(M+N)
// physical qubits — the ~n² growth the paper cites for complete-graph
// embedding ("embedding of an input graph with n vertices requires a Chimera
// hardware with n² qubits").
//
// It returns an error when n exceeds MaxCliqueSize(c).
func CliqueEmbedding(n int, c graph.Chimera) (graph.VertexModel, error) {
	if n < 0 {
		return nil, fmt.Errorf("embed: negative clique size %d", n)
	}
	if max := MaxCliqueSize(c); n > max {
		return nil, fmt.Errorf("embed: K_%d does not fit in %v (max K_%d)", n, c, max)
	}
	vm := make(graph.VertexModel, n)
	for i := 0; i < n; i++ {
		band := i / c.L // diagonal cell index
		k := i % c.L    // in-shore position
		chain := make([]int, 0, c.M+c.N)
		for r := 0; r < c.M; r++ {
			chain = append(chain, c.Index(r, band, 0, k))
		}
		for col := 0; col < c.N; col++ {
			chain = append(chain, c.Index(band, col, 1, k))
		}
		sortInts(chain)
		vm[i] = chain
	}
	return vm, nil
}

// CliqueEmbeddingQubits returns the number of physical qubits the
// deterministic clique layout uses for K_n on topology c, without building
// the embedding.
func CliqueEmbeddingQubits(n int, c graph.Chimera) int {
	return n * (c.M + c.N)
}
