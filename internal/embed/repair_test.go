package embed

import (
	"math/rand"
	"testing"

	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/qubo"
)

// repairFixture builds a 3-spin ferromagnetic triangle embedded with one
// 2-qubit chain, so a broken chain can be constructed by hand.
func repairFixture(t *testing.T) (*qubo.Ising, *Embedded) {
	t.Helper()
	c := graph.Chimera{M: 1, N: 1, L: 4}
	hw := c.Graph()
	logical := qubo.NewIsing(3)
	logical.SetCoupling(0, 1, -1)
	logical.SetCoupling(1, 2, -1)
	logical.SetCoupling(0, 2, -1)
	vm := graph.VertexModel{
		0: {c.Index(0, 0, 0, 0)},
		1: {c.Index(0, 0, 1, 0)},
		2: {c.Index(0, 0, 0, 1), c.Index(0, 0, 1, 1)},
	}
	em, err := SetParameters(logical, vm, hw, 4)
	if err != nil {
		t.Fatal(err)
	}
	return logical, em
}

func TestUnembedRepairNoBreakIsIdentity(t *testing.T) {
	logical, em := repairFixture(t)
	phys := em.EmbedSpins([]int8{1, 1, 1})
	spins, broken, flips := em.UnembedRepair(phys, logical)
	if broken != 0 || flips != 0 {
		t.Errorf("clean readout: broken=%d flips=%d", broken, flips)
	}
	for _, s := range spins {
		if s != 1 {
			t.Fatalf("spins = %v", spins)
		}
	}
}

func TestUnembedRepairFixesBrokenChain(t *testing.T) {
	logical, em := repairFixture(t)
	c := graph.Chimera{M: 1, N: 1, L: 4}
	// Spins 0 and 1 read -1; chain of spin 2 is split (+1, -1). Majority
	// vote ties toward +1, which is wrong for the ferromagnet; repair must
	// flip it to -1 to align with its neighbors.
	phys := make([]int8, 8)
	for i := range phys {
		phys[i] = 1
	}
	phys[c.Index(0, 0, 0, 0)] = -1 // spin 0
	phys[c.Index(0, 0, 1, 0)] = -1 // spin 1
	phys[c.Index(0, 0, 0, 1)] = 1  // spin 2 chain half
	phys[c.Index(0, 0, 1, 1)] = -1 // spin 2 chain half

	// Plain majority vote gets spin 2 wrong (tie → +1).
	voted, broken := em.Unembed(phys)
	if broken != 1 {
		t.Fatalf("broken = %d, want 1", broken)
	}
	if voted[2] != 1 {
		t.Skip("tie-break convention changed; fixture no longer exercises repair")
	}

	repaired, broken2, flips := em.UnembedRepair(phys, logical)
	if broken2 != 1 {
		t.Errorf("repair broken = %d", broken2)
	}
	if flips < 1 {
		t.Error("no repair flips applied")
	}
	if repaired[2] != -1 {
		t.Errorf("spin 2 = %d after repair, want -1", repaired[2])
	}
	if logical.Energy(repaired) >= logical.Energy(voted) {
		t.Errorf("repair did not lower energy: %v -> %v",
			logical.Energy(voted), logical.Energy(repaired))
	}
}

func TestUnembedRepairNeverWorseThanVote(t *testing.T) {
	// Random readouts: repair must never produce higher logical energy
	// than plain majority vote.
	rng := rand.New(rand.NewSource(9))
	g := graph.Cycle(6)
	logical := qubo.RandomIsing(g, 1, 1, rng)
	hw := graph.Chimera{M: 2, N: 2, L: 4}.Graph()
	vm, _, err := FindEmbedding(g, hw, rng, Options{MaxTries: 20})
	if err != nil {
		t.Fatal(err)
	}
	em, err := SetParameters(logical, vm, hw, 0)
	if err != nil {
		t.Fatal(err)
	}
	phys := make([]int8, hw.Order())
	for trial := 0; trial < 50; trial++ {
		for i := range phys {
			phys[i] = int8(2*rng.Intn(2) - 1)
		}
		voted, _ := em.Unembed(phys)
		repaired, _, _ := em.UnembedRepair(phys, logical)
		if logical.Energy(repaired) > logical.Energy(voted)+1e-9 {
			t.Fatalf("trial %d: repair worsened energy %v -> %v",
				trial, logical.Energy(voted), logical.Energy(repaired))
		}
	}
}

func TestUnembedRepairOnlyTouchesBrokenChains(t *testing.T) {
	logical, em := repairFixture(t)
	c := graph.Chimera{M: 1, N: 1, L: 4}
	// All chains intact, but the global state is frustrated (spin 1
	// misaligned). Repair must NOT fix intact chains even though flipping
	// would lower energy.
	phys := make([]int8, 8)
	for i := range phys {
		phys[i] = 1
	}
	phys[c.Index(0, 0, 1, 0)] = -1 // spin 1 intact but misaligned
	spins, broken, flips := em.UnembedRepair(phys, logical)
	if broken != 0 || flips != 0 {
		t.Errorf("intact readout repaired: broken=%d flips=%d", broken, flips)
	}
	if spins[1] != -1 {
		t.Errorf("intact chain altered: %v", spins)
	}
}
