package embed

import (
	"github.com/splitexec/splitexec/internal/qubo"
)

// UnembedRepair decodes a hardware readout like Unembed, then repairs the
// logical values of *broken* chains by greedy energy descent on the logical
// model: a broken chain carries no reliable information, so its spin is
// chosen to minimize the logical energy given its neighbors instead of by
// majority vote. Intact chains are never altered. Returns the repaired
// logical state, the number of broken chains and the number of repair flips
// applied.
//
// This is the post-processing refinement the paper's stage 3 leaves open
// ("the readout ... may undergo additional post-processing to construct a
// solution to the original problem").
func (em *Embedded) UnembedRepair(physical []int8, logical *qubo.Ising) (spins []int8, broken, flips int) {
	spins, broken = em.Unembed(physical)
	if broken == 0 {
		return spins, 0, 0
	}
	// Identify broken chains.
	brokenSpin := make([]bool, em.LogicalDim)
	for i := 0; i < em.LogicalDim; i++ {
		chain := em.VM[i]
		if len(chain) < 2 {
			continue
		}
		sum := 0
		for _, q := range chain {
			sum += int(physical[q])
		}
		if sum != len(chain) && sum != -len(chain) {
			brokenSpin[i] = true
		}
	}
	// Greedy descent restricted to broken spins: flip any that lowers the
	// logical energy; repeat to a fixed point (bounded by dim² flips since
	// energy strictly decreases and each pass flips at least one).
	adj := logicalAdjacency(logical)
	for pass := 0; pass < em.LogicalDim; pass++ {
		improved := false
		for i := 0; i < em.LogicalDim; i++ {
			if !brokenSpin[i] {
				continue
			}
			local := logical.H[i]
			for _, nb := range adj[i] {
				local += nb.j * float64(spins[nb.v])
			}
			// ΔE for flipping spin i is -2·s_i·local; flip when negative.
			if -2*float64(spins[i])*local < 0 {
				spins[i] = -spins[i]
				flips++
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return spins, broken, flips
}

type logicalNeighbor struct {
	v int
	j float64
}

func logicalAdjacency(m *qubo.Ising) [][]logicalNeighbor {
	adj := make([][]logicalNeighbor, m.Dim())
	for _, e := range m.Edges() {
		j := m.Coupling(e.U, e.V)
		adj[e.U] = append(adj[e.U], logicalNeighbor{v: e.V, j: j})
		adj[e.V] = append(adj[e.V], logicalNeighbor{v: e.U, j: j})
	}
	return adj
}
