// Package gi reduces graph isomorphism to QUBO and solves it on the
// annealer substrate.
//
// The paper closes §3.3 with the observation that off-line embedding lookup
// "would require some variant of graph isomorphism to identify which
// embedding to apply. The graph isomorphism problem has recently been shown
// to be solvable using adiabatic quantum computing [11], [39], raising the
// prospects the D-Wave processor could be used to program the D-Wave
// processor!" This package makes that loop executable: a Hen–Young-style
// permutation encoding of GI as a QUBO (Reduce), an annealer-backed decision
// procedure with an exact verification step (AreIsomorphic), and a
// lookup-table matcher (Match) that identifies which cached embedding
// applies to an incoming input graph.
package gi

import (
	"errors"
	"fmt"

	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/qubo"
)

// Reduction is a GI instance encoded as a QUBO over n² one-hot assignment
// variables x[i*n+a] = 1 iff vertex i of G maps to vertex a of H.
type Reduction struct {
	Q      *qubo.QUBO
	N      int     // vertex count of each graph
	Offset float64 // constant energy: ground energy of Q is -Offset iff G ≅ H
}

// Reduce encodes "is G isomorphic to H?" as a QUBO. Both graphs must have
// the same order n; the QUBO has n² variables. The energy decomposes as
//
//	E = P·Σ_i (Σ_a x_ia - 1)² + P·Σ_a (Σ_i x_ia - 1)² + P·Σ mismatch x_ia·x_jb,
//
// where the mismatch sum ranges over vertex pairs i<j of G and a≠b of H
// whose adjacency disagrees between the graphs. Every term is non-negative,
// and E = 0 exactly when x encodes a permutation mapping edges to edges and
// non-edges to non-edges — an isomorphism. Since the two quadratic one-hot
// penalties expand with constant 2nP, Reduce stores that constant in Offset
// and the returned QUBO satisfies: min E_Q = -Offset iff G ≅ H.
//
// The penalty P must be positive; 1 is sufficient because all terms share
// the same scale.
func Reduce(g, h *graph.Graph, penalty float64) (*Reduction, error) {
	if g == nil || h == nil {
		return nil, errors.New("gi: nil graph")
	}
	n := g.Order()
	if n != h.Order() {
		return nil, fmt.Errorf("gi: order mismatch %d vs %d", n, h.Order())
	}
	if n == 0 {
		return nil, errors.New("gi: empty graphs")
	}
	if penalty <= 0 {
		return nil, fmt.Errorf("gi: penalty %g must be positive", penalty)
	}
	P := penalty
	q := qubo.NewQUBO(n * n)
	idx := func(i, a int) int { return i*n + a }

	// Row one-hot: P·(Σ_a x_ia - 1)² = P·(Σ_a x_ia² - 2Σ_a x_ia + 2Σ_{a<b} x_ia x_ib + 1)
	// with x²=x: diagonal -P, pair +2P, constant +P.
	for i := 0; i < n; i++ {
		for a := 0; a < n; a++ {
			q.Add(idx(i, a), idx(i, a), -P)
			for b := a + 1; b < n; b++ {
				q.Add(idx(i, a), idx(i, b), 2*P)
			}
		}
	}
	// Column one-hot, symmetric in the first index.
	for a := 0; a < n; a++ {
		for i := 0; i < n; i++ {
			q.Add(idx(i, a), idx(i, a), -P)
			for j := i + 1; j < n; j++ {
				q.Add(idx(i, a), idx(j, a), 2*P)
			}
		}
	}
	// Adjacency-consistency: penalize mapping a G-edge onto an H-non-edge or
	// a G-non-edge onto an H-edge.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ge := g.HasEdge(i, j)
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					if a == b {
						continue
					}
					if ge != h.HasEdge(a, b) {
						q.Add(idx(i, a), idx(j, b), P)
					}
				}
			}
		}
	}
	return &Reduction{Q: q, N: n, Offset: 2 * float64(n) * P}, nil
}

// Energy returns the reduction energy of an assignment including the stored
// constant, so 0 means "valid isomorphism".
func (r *Reduction) Energy(b []int8) float64 {
	return r.Q.Energy(b) + r.Offset
}

// DecodePermutation extracts the vertex mapping from an assignment of the
// reduction's variables. It fails unless the assignment is an exact
// permutation matrix (every row and column one-hot).
func (r *Reduction) DecodePermutation(b []int8) ([]int, error) {
	if len(b) != r.N*r.N {
		return nil, fmt.Errorf("gi: assignment length %d, want %d", len(b), r.N*r.N)
	}
	perm := make([]int, r.N)
	usedCol := make([]bool, r.N)
	for i := 0; i < r.N; i++ {
		found := -1
		for a := 0; a < r.N; a++ {
			if b[i*r.N+a] == 1 {
				if found >= 0 {
					return nil, fmt.Errorf("gi: row %d maps to both %d and %d", i, found, a)
				}
				found = a
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("gi: row %d unmapped", i)
		}
		if usedCol[found] {
			return nil, fmt.Errorf("gi: column %d used twice", found)
		}
		usedCol[found] = true
		perm[i] = found
	}
	return perm, nil
}

// VerifyMapping checks exactly (no annealer trust involved) that perm is an
// isomorphism from g onto h: a bijection preserving adjacency both ways.
func VerifyMapping(g, h *graph.Graph, perm []int) error {
	n := g.Order()
	if h.Order() != n || len(perm) != n {
		return fmt.Errorf("gi: size mismatch (g=%d h=%d perm=%d)", n, h.Order(), len(perm))
	}
	seen := make([]bool, n)
	for _, a := range perm {
		if a < 0 || a >= n {
			return fmt.Errorf("gi: image %d out of range", a)
		}
		if seen[a] {
			return fmt.Errorf("gi: image %d repeated", a)
		}
		seen[a] = true
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if g.HasEdge(i, j) != h.HasEdge(perm[i], perm[j]) {
				return fmt.Errorf("gi: adjacency of (%d,%d) not preserved", i, j)
			}
		}
	}
	return nil
}

// Relabel returns the image of g under a permutation: vertex i of g becomes
// perm[i]. It is the canonical generator of isomorphic test pairs.
func Relabel(g *graph.Graph, perm []int) (*graph.Graph, error) {
	n := g.Order()
	if len(perm) != n {
		return nil, fmt.Errorf("gi: permutation length %d, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, a := range perm {
		if a < 0 || a >= n || seen[a] {
			return nil, errors.New("gi: not a permutation")
		}
		seen[a] = true
	}
	h := graph.New(n)
	for _, e := range g.Edges() {
		h.AddEdge(perm[e.U], perm[e.V])
	}
	return h, nil
}
