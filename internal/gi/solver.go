package gi

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/splitexec/splitexec/internal/anneal"
	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/qubo"
)

// Options configure the annealer-backed GI decision procedure.
type Options struct {
	// Penalty is the QUBO constraint weight (default 1).
	Penalty float64
	// Reads is the number of annealing repetitions per attempt (default 200).
	Reads int
	// Sampler tunes the underlying annealer; the zero value uses its
	// defaults scaled to the model.
	Sampler anneal.SamplerOptions
	// MaxN caps the instance size: the reduction has n² variables, so the
	// annealer-backed path is intended for the small input graphs an
	// embedding lookup table holds (default 12).
	MaxN int
}

func (o Options) withDefaults() Options {
	if o.Penalty <= 0 {
		o.Penalty = 1
	}
	if o.Reads <= 0 {
		o.Reads = 200
	}
	if o.MaxN <= 0 {
		o.MaxN = 12
	}
	if o.Sampler.Sweeps <= 0 {
		o.Sampler.Sweeps = 256
	}
	return o
}

// Result reports one annealer-backed GI decision.
type Result struct {
	Isomorphic bool
	Perm       []int // verified isomorphism when Isomorphic, else nil
	Reads      int   // annealing repetitions consumed
	Pruned     bool  // decided by classical invariants, no annealing needed
}

// AreIsomorphic decides whether g ≅ h with the annealer substrate. The
// procedure mirrors how a split-execution host would use the QPU:
//
//  1. cheap classical invariants (order, size, degree sequence) prune
//     obvious non-isomorphs without touching the QPU;
//  2. otherwise the GI→QUBO reduction is annealed, and every readout whose
//     energy reaches the reduction floor is decoded and *exactly verified*
//     — the probabilistic device never gets the final word.
//
// A negative answer from the annealer is "no certificate found within
// Reads" rather than a proof; callers wanting certainty on small graphs can
// cross-check with graph.Isomorphic (the deterministic baseline). rng may
// not be nil.
func AreIsomorphic(g, h *graph.Graph, opts Options, rng *rand.Rand) (Result, error) {
	if g == nil || h == nil {
		return Result{}, errors.New("gi: nil graph")
	}
	if rng == nil {
		return Result{}, errors.New("gi: nil rng")
	}
	o := opts.withDefaults()
	if g.Order() != h.Order() || g.Size() != h.Size() || !sameDegrees(g, h) {
		return Result{Isomorphic: false, Pruned: true}, nil
	}
	if g.Order() > o.MaxN {
		return Result{}, fmt.Errorf("gi: order %d exceeds annealer cap %d", g.Order(), o.MaxN)
	}
	red, err := Reduce(g, h, o.Penalty)
	if err != nil {
		return Result{}, err
	}
	model := qubo.ToIsing(red.Q)
	sampler := anneal.NewSampler(model, o.Sampler)
	res := Result{}
	for r := 0; r < o.Reads; r++ {
		spins, _ := sampler.Anneal(rng)
		res.Reads++
		b := qubo.SpinsToBinary(spins)
		perm, err := red.DecodePermutation(b)
		if err != nil {
			continue
		}
		if VerifyMapping(g, h, perm) == nil {
			res.Isomorphic = true
			res.Perm = perm
			return res, nil
		}
	}
	return res, nil
}

func sameDegrees(g, h *graph.Graph) bool {
	n := g.Order()
	dg := make([]int, n+1)
	dh := make([]int, n+1)
	for v := 0; v < n; v++ {
		dg[g.Degree(v)]++
		dh[h.Degree(v)]++
	}
	for i := range dg {
		if dg[i] != dh[i] {
			return false
		}
	}
	return true
}

// Match finds which candidate graph an input is isomorphic to — the lookup
// operation an off-line embedding table needs (paper §3.3/§4). Candidates
// are first filtered by canonical hash; survivors are decided by the
// annealer-backed procedure. It returns the index of the first match and
// the verified mapping, or index -1 when no candidate matches.
func Match(g *graph.Graph, candidates []*graph.Graph, opts Options, rng *rand.Rand) (int, []int, error) {
	if g == nil {
		return -1, nil, errors.New("gi: nil graph")
	}
	key := graph.CanonicalHash(g)
	for i, c := range candidates {
		if c == nil || c.Order() != g.Order() || graph.CanonicalHash(c) != key {
			continue
		}
		res, err := AreIsomorphic(g, c, opts, rng)
		if err != nil {
			return -1, nil, err
		}
		if res.Isomorphic {
			return i, res.Perm, nil
		}
	}
	return -1, nil, nil
}
