package gi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/splitexec/splitexec/internal/graph"
)

func randomPerm(n int, rng *rand.Rand) []int {
	p := rng.Perm(n)
	return p
}

func TestReduceRejectsBadInput(t *testing.T) {
	g := graph.Cycle(4)
	if _, err := Reduce(nil, g, 1); err == nil {
		t.Fatal("nil g accepted")
	}
	if _, err := Reduce(g, nil, 1); err == nil {
		t.Fatal("nil h accepted")
	}
	if _, err := Reduce(g, graph.Cycle(5), 1); err == nil {
		t.Fatal("order mismatch accepted")
	}
	if _, err := Reduce(graph.New(0), graph.New(0), 1); err == nil {
		t.Fatal("empty graphs accepted")
	}
	if _, err := Reduce(g, g, 0); err == nil {
		t.Fatal("zero penalty accepted")
	}
}

func TestReduceDimensions(t *testing.T) {
	g := graph.Cycle(5)
	red, err := Reduce(g, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if red.Q.Dim() != 25 {
		t.Fatalf("dim = %d, want 25", red.Q.Dim())
	}
	if red.N != 5 {
		t.Fatalf("N = %d", red.N)
	}
	if red.Offset != 10 {
		t.Fatalf("Offset = %v, want 2nP = 10", red.Offset)
	}
}

// permAssignment builds the one-hot encoding of a permutation.
func permAssignment(perm []int) []int8 {
	n := len(perm)
	b := make([]int8, n*n)
	for i, a := range perm {
		b[i*n+a] = 1
	}
	return b
}

func TestReduceEnergyZeroAtIsomorphism(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.Cycle(5)
	perm := randomPerm(5, rng)
	h, err := Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	red, err := Reduce(g, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e := red.Energy(permAssignment(perm)); e != 0 {
		t.Fatalf("energy of true isomorphism = %v, want 0", e)
	}
}

func TestReduceEnergyPositiveOffIsomorphism(t *testing.T) {
	g := graph.Cycle(6)
	// Path P6: same order, different structure (one edge fewer).
	h := graph.New(6)
	for i := 0; i < 5; i++ {
		h.AddEdge(i, i+1)
	}
	red, err := Reduce(g, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every permutation must cost energy: these graphs have different sizes.
	perms := [][]int{
		{0, 1, 2, 3, 4, 5},
		{5, 4, 3, 2, 1, 0},
		{1, 2, 3, 4, 5, 0},
		{2, 0, 4, 1, 5, 3},
	}
	for _, p := range perms {
		if e := red.Energy(permAssignment(p)); e <= 0 {
			t.Fatalf("perm %v energy %v, want > 0", p, e)
		}
	}
}

func TestReduceEnergyPenalizesNonPermutation(t *testing.T) {
	g := graph.Cycle(4)
	red, err := Reduce(g, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	// All-zero assignment: each of the 2n one-hot constraints is violated
	// with cost P → energy 2nP = 8.
	zero := make([]int8, 16)
	if e := red.Energy(zero); e != 8 {
		t.Fatalf("all-zero energy = %v, want 8", e)
	}
	// Doubly-assigned row.
	b := permAssignment([]int{0, 1, 2, 3})
	b[0*4+1] = 1
	if e := red.Energy(b); e <= 0 {
		t.Fatalf("double assignment energy = %v, want > 0", e)
	}
}

func TestReduceBruteForceAgreesWithIsomorphism(t *testing.T) {
	// For tiny graphs, the QUBO ground energy is 0 iff isomorphic.
	rng := rand.New(rand.NewSource(9))
	type pair struct {
		g, h *graph.Graph
		iso  bool
	}
	g3 := graph.Cycle(3)
	h3, _ := Relabel(g3, []int{2, 0, 1})
	p3 := graph.New(3) // path
	p3.AddEdge(0, 1)
	p3.AddEdge(1, 2)
	star := graph.New(4)
	star.AddEdge(0, 1)
	star.AddEdge(0, 2)
	star.AddEdge(0, 3)
	path4 := graph.New(4)
	path4.AddEdge(0, 1)
	path4.AddEdge(1, 2)
	path4.AddEdge(2, 3)
	cases := []pair{
		{g3, h3, true},
		{g3, p3, false},
		{star, path4, false}, // same order and size, different degrees
		{graph.Cycle(4), graph.Cycle(4), true},
	}
	_ = rng
	for i, c := range cases {
		red, err := Reduce(c.g, c.h, 1)
		if err != nil {
			t.Fatal(err)
		}
		_, e := red.Q.BruteForce()
		gotIso := e+red.Offset < 1e-9
		if gotIso != c.iso {
			t.Errorf("case %d: ground energy %v → iso=%v, want %v", i, e+red.Offset, gotIso, c.iso)
		}
	}
}

func TestDecodePermutation(t *testing.T) {
	red, err := Reduce(graph.Cycle(4), graph.Cycle(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 3, 0, 1}
	perm, err := red.DecodePermutation(permAssignment(want))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if perm[i] != want[i] {
			t.Fatalf("perm = %v, want %v", perm, want)
		}
	}
	// Failure modes.
	if _, err := red.DecodePermutation(make([]int8, 3)); err == nil {
		t.Fatal("short assignment accepted")
	}
	zero := make([]int8, 16)
	if _, err := red.DecodePermutation(zero); err == nil {
		t.Fatal("unmapped row accepted")
	}
	dup := permAssignment([]int{0, 0, 2, 3})
	if _, err := red.DecodePermutation(dup); err == nil {
		t.Fatal("duplicate column accepted")
	}
	double := permAssignment([]int{0, 1, 2, 3})
	double[2] = 1 // row 0 also maps to column 2
	if _, err := red.DecodePermutation(double); err == nil {
		t.Fatal("double row accepted")
	}
}

func TestVerifyMapping(t *testing.T) {
	g := graph.Cycle(5)
	perm := []int{1, 2, 3, 4, 0}
	h, _ := Relabel(g, perm)
	if err := VerifyMapping(g, h, perm); err != nil {
		t.Fatalf("true isomorphism rejected: %v", err)
	}
	if err := VerifyMapping(g, h, []int{0, 1, 2, 3, 4}); err == nil {
		// identity maps C5 onto the relabeled C5 only if perm is an
		// automorphism; rotation by 1 of a cycle IS an automorphism of the
		// abstract cycle, so craft a real failure instead below.
		_ = err
	}
	bad := []int{0, 0, 2, 3, 4}
	if err := VerifyMapping(g, h, bad); err == nil {
		t.Fatal("non-bijection accepted")
	}
	short := []int{0, 1}
	if err := VerifyMapping(g, h, short); err == nil {
		t.Fatal("short mapping accepted")
	}
	outOfRange := []int{0, 1, 2, 3, 9}
	if err := VerifyMapping(g, h, outOfRange); err == nil {
		t.Fatal("out-of-range image accepted")
	}
	// Adjacency violation: map C4 onto itself crossing the diagonal.
	c4 := graph.Cycle(4)
	if err := VerifyMapping(c4, c4, []int{0, 2, 1, 3}); err == nil {
		t.Fatal("adjacency-breaking map accepted")
	}
}

func TestRelabelValidation(t *testing.T) {
	g := graph.Cycle(4)
	if _, err := Relabel(g, []int{0, 1}); err == nil {
		t.Fatal("short permutation accepted")
	}
	if _, err := Relabel(g, []int{0, 1, 1, 3}); err == nil {
		t.Fatal("repeat accepted")
	}
	if _, err := Relabel(g, []int{0, 1, 2, 7}); err == nil {
		t.Fatal("out of range accepted")
	}
	h, err := Relabel(g, []int{3, 2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if h.Size() != g.Size() || h.Order() != g.Order() {
		t.Fatal("relabel changed graph size")
	}
}

// Property: a relabeled graph always has zero reduction energy under the
// relabeling permutation, and the deterministic baseline agrees.
func TestQuickRelabelIsIsomorphic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		g := graph.GNP(n, 0.5, rng)
		perm := randomPerm(n, rng)
		h, err := Relabel(g, perm)
		if err != nil {
			return false
		}
		if VerifyMapping(g, h, perm) != nil {
			return false
		}
		red, err := Reduce(g, h, 1)
		if err != nil {
			return false
		}
		if red.Energy(permAssignment(perm)) != 0 {
			return false
		}
		return graph.Isomorphic(g, h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
