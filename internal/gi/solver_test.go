package gi

import (
	"math/rand"
	"testing"

	"github.com/splitexec/splitexec/internal/graph"
)

func TestAreIsomorphicFindsCertificate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.Cycle(5)
	h, err := Relabel(g, []int{3, 1, 4, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := AreIsomorphic(g, h, Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Isomorphic {
		t.Fatalf("annealer failed to certify C5 ≅ relabeled C5 in %d reads", res.Reads)
	}
	if res.Pruned {
		t.Fatal("marked pruned despite annealing")
	}
	if err := VerifyMapping(g, h, res.Perm); err != nil {
		t.Fatalf("returned certificate invalid: %v", err)
	}
}

func TestAreIsomorphicPrunesByInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Different order.
	res, err := AreIsomorphic(graph.Cycle(4), graph.Cycle(5), Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Isomorphic || !res.Pruned || res.Reads != 0 {
		t.Fatalf("order mismatch not pruned: %+v", res)
	}
	// Same order, different size.
	res, err = AreIsomorphic(graph.Cycle(5), graph.Path(5), Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Isomorphic || !res.Pruned {
		t.Fatalf("size mismatch not pruned: %+v", res)
	}
	// Same order and size, different degree sequence.
	res, err = AreIsomorphic(graph.Star(4), graph.Path(4), Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Isomorphic || !res.Pruned {
		t.Fatalf("degree mismatch not pruned: %+v", res)
	}
}

func TestAreIsomorphicHardNegative(t *testing.T) {
	// C6 vs two triangles: same order, size, and degree sequence (all 2),
	// so the invariants cannot prune and the annealer must fail to find a
	// certificate.
	rng := rand.New(rand.NewSource(8))
	c6 := graph.Cycle(6)
	twoTriangles := graph.New(6)
	twoTriangles.AddEdge(0, 1)
	twoTriangles.AddEdge(1, 2)
	twoTriangles.AddEdge(2, 0)
	twoTriangles.AddEdge(3, 4)
	twoTriangles.AddEdge(4, 5)
	twoTriangles.AddEdge(5, 3)
	res, err := AreIsomorphic(c6, twoTriangles, Options{Reads: 80}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned {
		t.Fatal("degree-regular pair should not prune")
	}
	if res.Isomorphic {
		t.Fatal("found an isomorphism between C6 and 2×K3")
	}
	if res.Reads != 80 {
		t.Fatalf("consumed %d reads, want all 80", res.Reads)
	}
}

func TestAreIsomorphicErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := AreIsomorphic(nil, graph.Cycle(3), Options{}, rng); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := AreIsomorphic(graph.Cycle(3), graph.Cycle(3), Options{}, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	big := graph.Cycle(30)
	if _, err := AreIsomorphic(big, big, Options{MaxN: 12}, rng); err == nil {
		t.Fatal("oversized instance accepted")
	}
}

func TestAreIsomorphicAgreesWithBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 8; trial++ {
		n := 4 + rng.Intn(3)
		g := graph.GNP(n, 0.5, rng)
		var h *graph.Graph
		if trial%2 == 0 {
			var err error
			h, err = Relabel(g, rng.Perm(n))
			if err != nil {
				t.Fatal(err)
			}
		} else {
			h = graph.GNP(n, 0.5, rng)
		}
		want := graph.Isomorphic(g, h)
		res, err := AreIsomorphic(g, h, Options{Reads: 400}, rng)
		if err != nil {
			t.Fatal(err)
		}
		// A positive from the annealer is always sound (verified); on true
		// isomorphs the reads budget is generous enough at these sizes that
		// a miss indicates a bug rather than bad luck.
		if res.Isomorphic != want {
			t.Fatalf("trial %d (n=%d): annealer=%v baseline=%v", trial, n, res.Isomorphic, want)
		}
	}
}

func TestMatchFindsCachedGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	library := []*graph.Graph{
		graph.Cycle(6),
		graph.Complete(5),
		graph.Grid(2, 3),
		graph.Star(6),
	}
	// Query: a relabeled grid.
	query, err := Relabel(graph.Grid(2, 3), rng.Perm(6))
	if err != nil {
		t.Fatal(err)
	}
	idx, perm, err := Match(query, library, Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 2 {
		t.Fatalf("matched index %d, want 2", idx)
	}
	if err := VerifyMapping(query, library[2], perm); err != nil {
		t.Fatalf("match certificate invalid: %v", err)
	}
}

func TestMatchMiss(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	library := []*graph.Graph{graph.Cycle(6), graph.Complete(5)}
	idx, perm, err := Match(graph.Star(7), library, Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if idx != -1 || perm != nil {
		t.Fatalf("unexpected match: %d %v", idx, perm)
	}
}

func TestMatchSkipsNilAndErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	library := []*graph.Graph{nil, graph.Cycle(4)}
	idx, _, err := Match(graph.Cycle(4), library, Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("idx = %d, want 1", idx)
	}
	if _, _, err := Match(nil, library, Options{}, rng); err == nil {
		t.Fatal("nil query accepted")
	}
}
