package plan

import (
	"fmt"

	"github.com/splitexec/splitexec/internal/des"
	"github.com/splitexec/splitexec/internal/ring"
	"github.com/splitexec/splitexec/internal/workload"
)

// Rebalance-step actions, in the order a transition executes them. An add
// provisions a backend and registers it with the routing tier without
// changing ownership; the warm that follows replays the hot keys the ring
// diff re-homes into the joiner's embedding cache and then flips ownership
// (the epoch bump); a drain retires a member gracefully, re-homing its keys
// to the survivors. Ownership changes — warm and drain — are the steps that
// alter the served topology, so they carry the DES validation.
const (
	StepAdd   = "add"
	StepWarm  = "warm"
	StepDrain = "drain"
)

// RebalanceStep is one ordered action of a membership transition.
type RebalanceStep struct {
	Action string `json:"action"`
	// Shard is the member the action targets.
	Shard int `json:"shard"`
	// Shards is the serving membership width once the step completes.
	Shards int `json:"shards"`
	// MovedFrac is the fraction of the hash-ring key space changing owner
	// at this step's ownership flip (ring.Frac over ring.Moved) — for a
	// warm step, equivalently the fraction of hot keys to replay first.
	MovedFrac float64 `json:"movedFrac,omitempty"`
	// Result is the DES evaluation of the post-step topology; set on the
	// steps that change ownership (warm, drain), nil on a bare add.
	Result *des.Result `json:"result,omitempty"`
	// Meets and Unmet report the post-step topology against the target.
	// Intermediate steps of a scale-out may legitimately fail the SLO —
	// that is why the transition continues — but the final step must meet.
	Meets bool     `json:"meets"`
	Unmet []string `json:"unmet,omitempty"`
}

// RebalanceResult is an ordered, DES-validated path from the scenario's
// current topology to the cheapest SLO-satisfying one.
type RebalanceResult struct {
	Scenario string `json:"scenario,omitempty"`
	Target   Target `json:"target"`
	// From and To are the current and destination shard counts. Equal
	// values mean the scenario already runs the cheapest satisfying width
	// and Steps is empty.
	From int `json:"from"`
	To   int `json:"to"`
	// Final is the static planner's answer (Capacity's Best): the
	// destination configuration. The last step's topology is exactly this.
	Final *Candidate `json:"final"`
	// NextCheaper is Capacity's evidence that Final is tight.
	NextCheaper *Candidate      `json:"nextCheaper,omitempty"`
	Steps       []RebalanceStep `json:"steps"`
}

// Rebalance plans the membership transition: it first runs Capacity over
// the space to find the cheapest SLO-satisfying configuration, then walks
// the ring from the scenario's current shard count to that answer one
// member at a time — add+warm per joiner on a scale-out, drain per victim
// (highest index first) on a scale-in — validating every ownership flip
// with the discrete-event simulator. Host count, kind and policy changes
// are taken from the destination configuration and applied to every
// validated intermediate, so the step list isolates the membership walk.
func Rebalance(sc *workload.Scenario, target Target, space Space, opts Options) (*RebalanceResult, error) {
	p, err := Capacity(sc, target, space, opts)
	if err != nil {
		return nil, err
	}
	if p.Best == nil {
		return nil, fmt.Errorf("plan: no configuration in the search space meets the target — nothing to rebalance toward")
	}

	base := *sc // evaluation copy, horizon-overridden exactly as Capacity's
	if opts.HorizonJobs > 0 {
		base.Horizon = workload.Horizon{Jobs: opts.HorizonJobs}
	}
	if base.Arrival.Kind == workload.Trace && base.Horizon.Jobs > len(base.Arrival.Trace) {
		base.Horizon.Jobs = len(base.Arrival.Trace)
	}
	costs := opts.Costs.withDefaults()
	replicas := 0
	if sc.Cluster != nil {
		replicas = sc.Cluster.Replicas
	}

	rb := &RebalanceResult{
		Scenario:    sc.Name,
		Target:      target,
		From:        sc.ShardCount(),
		To:          p.Best.Shards,
		Final:       p.Best,
		NextCheaper: p.NextCheaper,
	}
	validate := func(step *RebalanceStep) error {
		c, err := evaluate(&base, target, p.Best.Kind, p.Best.Policy, step.Shards, p.Best.Hosts, costs)
		if err != nil {
			return err
		}
		step.Result = c.Result
		step.Meets = c.Meets
		step.Unmet = c.Unmet
		return nil
	}

	members := make([]string, rb.From)
	for i := range members {
		members[i] = workload.ShardName(i)
	}
	r := ring.New(members, replicas)
	for n := rb.From; n < rb.To; n++ { // scale-out: add + warm per joiner
		grown := r.With(workload.ShardName(n))
		frac := ring.Frac(ring.Moved(r, grown))
		rb.Steps = append(rb.Steps, RebalanceStep{
			Action: StepAdd, Shard: n, Shards: n, // registered, not yet an owner
		})
		warm := RebalanceStep{Action: StepWarm, Shard: n, Shards: n + 1, MovedFrac: frac}
		if err := validate(&warm); err != nil {
			return nil, err
		}
		rb.Steps = append(rb.Steps, warm)
		r = grown
	}
	for n := rb.From; n > rb.To; n-- { // scale-in: drain from the top
		shrunk := r.Without(n - 1)
		frac := ring.Frac(ring.Moved(r, shrunk))
		drain := RebalanceStep{Action: StepDrain, Shard: n - 1, Shards: n - 1, MovedFrac: frac}
		if err := validate(&drain); err != nil {
			return nil, err
		}
		rb.Steps = append(rb.Steps, drain)
		r = shrunk
	}
	return rb, nil
}
