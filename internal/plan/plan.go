// Package plan inverts the performance models into provisioning decisions:
// instead of "what latency does this fleet give me" (internal/des answers
// that for a fixed deployment), it answers the operator's question — "what
// is the cheapest fleet that meets my SLO". Given a workload scenario, a
// target (p99/mean sojourn ceilings, utilization ceilings) and a search
// space over {hosts, QPU fleet, scheduling policy, topology kind}, Capacity
// binary-searches each (kind, policy) axis over host counts with
// des.Simulate — cross-checked by des.Analytic where the M/M/c envelope
// applies — and returns the cheapest satisfying configuration together with
// the whole evaluated frontier, including the next-cheaper neighbor that
// fails (the evidence the recommendation is tight, not merely sufficient).
package plan

import (
	"fmt"
	"slices"
	"time"

	"github.com/splitexec/splitexec/internal/des"
	"github.com/splitexec/splitexec/internal/sched"
	"github.com/splitexec/splitexec/internal/workload"
)

// Target is the service-level objective a deployment must meet. Zero fields
// are unconstrained; at least one must be set.
type Target struct {
	// P99Sojourn and MeanSojourn cap the simulated sojourn distribution.
	P99Sojourn  time.Duration `json:"p99Sojourn,omitempty"`
	MeanSojourn time.Duration `json:"meanSojourn,omitempty"`
	// MaxHostBusy and MaxQPUBusy cap the utilization fractions — headroom
	// targets for operators who provision against saturation rather than
	// latency.
	MaxHostBusy float64 `json:"maxHostBusy,omitempty"`
	MaxQPUBusy  float64 `json:"maxQpuBusy,omitempty"`
}

// validate rejects an empty or nonsensical target.
func (t Target) validate() error {
	if t.P99Sojourn < 0 || t.MeanSojourn < 0 {
		return fmt.Errorf("plan: negative sojourn target %+v", t)
	}
	if t.MaxHostBusy < 0 || t.MaxHostBusy > 1 || t.MaxQPUBusy < 0 || t.MaxQPUBusy > 1 {
		return fmt.Errorf("plan: utilization targets must be in [0, 1], got %+v", t)
	}
	if t.P99Sojourn == 0 && t.MeanSojourn == 0 && t.MaxHostBusy == 0 && t.MaxQPUBusy == 0 {
		return fmt.Errorf("plan: empty target — set at least one of p99/mean sojourn or host/QPU utilization")
	}
	return nil
}

// unmet returns the constraints r violates, empty when the target is met.
func (t Target) unmet(r *des.Result) []string {
	var out []string
	if t.P99Sojourn > 0 && r.Sojourn.P99 > t.P99Sojourn {
		out = append(out, fmt.Sprintf("p99 sojourn %v > %v", r.Sojourn.P99, t.P99Sojourn))
	}
	if t.MeanSojourn > 0 && r.Sojourn.Mean > t.MeanSojourn {
		out = append(out, fmt.Sprintf("mean sojourn %v > %v", r.Sojourn.Mean, t.MeanSojourn))
	}
	if t.MaxHostBusy > 0 && r.HostBusy > t.MaxHostBusy {
		out = append(out, fmt.Sprintf("host utilization %.3f > %.3f", r.HostBusy, t.MaxHostBusy))
	}
	if t.MaxQPUBusy > 0 && r.QPUBusy > t.MaxQPUBusy {
		out = append(out, fmt.Sprintf("QPU utilization %.3f > %.3f", r.QPUBusy, t.MaxQPUBusy))
	}
	return out
}

// Space is the search space: candidate host counts, deployment kinds and
// scheduling policies. Zero-value axes default to the scenario's own
// deployment kind and policy, and to hosts 1..16.
type Space struct {
	// Hosts are the candidate host counts; they are deduplicated and
	// sorted ascending. Default 1..16.
	Hosts []int `json:"hosts,omitempty"`
	// Kinds are deployment topologies ("shared", "dedicated"); the
	// "asymmetric" kind is valid only with Hosts = [1]. Default: the
	// scenario's kind.
	Kinds []string `json:"kinds,omitempty"`
	// Policies are the queue disciplines to consider. Default: the
	// scenario's policy.
	Policies []sched.Policy `json:"policies,omitempty"`
	// Shards are candidate shard counts for a federated deployment: each
	// candidate provisions Shards × Hosts hosts behind a routing tier and
	// is evaluated with the cluster simulator. 1 means a single node (no
	// cluster stanza). Default: the scenario's own shard count.
	Shards []int `json:"shards,omitempty"`
}

// Costs prices a configuration: Cost = Hosts·Host + QPUs·QPU. The default
// (Host 1, QPU 3) encodes the paper's economics — the annealer is the
// scarce, expensive socket — but any relative pricing works.
type Costs struct {
	Host float64 `json:"host"`
	QPU  float64 `json:"qpu"`
}

func (c Costs) withDefaults() Costs {
	if c.Host == 0 && c.QPU == 0 {
		return Costs{Host: 1, QPU: 3}
	}
	return c
}

// Options configure a planning run.
type Options struct {
	// Costs prices candidate configurations; zero selects {Host: 1, QPU: 3}.
	Costs Costs
	// HorizonJobs, when > 0, overrides the scenario's job horizon for the
	// planning simulations — p99 estimates need 1e4+ completions to be
	// stable, more than an illustrative scenario file usually carries.
	HorizonJobs int
}

// Candidate is one evaluated configuration of the search space.
type Candidate struct {
	Kind string `json:"kind"`
	// Shards is the federation width; Hosts and QPUs are per shard, so
	// the provisioned totals are Shards × Hosts and Shards × QPUs — that
	// is what Cost prices.
	Shards int          `json:"shards"`
	Hosts  int          `json:"hosts"`
	QPUs   int          `json:"qpus"`
	Policy sched.Policy `json:"policy"`
	Cost   float64      `json:"cost"`
	Meets  bool         `json:"meets"`
	// Unmet lists the violated constraints when Meets is false.
	Unmet []string `json:"unmet,omitempty"`
	// Result is the DES evaluation the verdict is based on.
	Result *des.Result `json:"result,omitempty"`
	// Analytic is the M/M/c cross-check, attached when the scenario and
	// configuration fall inside the analytic envelope.
	Analytic *des.AnalyticResult `json:"analytic,omitempty"`
}

// Plan is the outcome of a Capacity run.
type Plan struct {
	Scenario string `json:"scenario,omitempty"`
	Target   Target `json:"target"`
	// Best is the cheapest configuration meeting the target, nil when no
	// point of the space does.
	Best *Candidate `json:"best,omitempty"`
	// NextCheaper is Best's next-cheaper neighbor on its own (kind,
	// policy) axis — the largest evaluated host count below Best that
	// fails the target. Nil when Best sits on the smallest host count of
	// the space (nothing cheaper exists on its axis).
	NextCheaper *Candidate `json:"nextCheaper,omitempty"`
	// Evaluated is every configuration the search simulated, in
	// deterministic (kind, policy, hosts) order.
	Evaluated []Candidate `json:"evaluated"`
}

// Capacity finds the cheapest configuration of the space meeting the target
// under the scenario's workload. For each (kind, policy) pair it binary-
// searches the sorted host counts — latency and utilization improve with
// hosts, so "meets the target" is monotone along the axis; where the
// workload violates that (a saturated shared QPU that more hosts cannot
// help) the search still terminates and simply reports the axis
// unsatisfiable if its largest configuration fails.
func Capacity(sc *workload.Scenario, target Target, space Space, opts Options) (*Plan, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if err := target.validate(); err != nil {
		return nil, err
	}
	hosts, kinds, policies, shardCounts, err := normalizeSpace(sc, space)
	if err != nil {
		return nil, err
	}
	costs := opts.Costs.withDefaults()

	base := *sc // evaluation copy; the caller's scenario stays untouched
	if opts.HorizonJobs > 0 {
		base.Horizon = workload.Horizon{Jobs: opts.HorizonJobs}
	}
	if base.Arrival.Kind == workload.Trace && base.Horizon.Jobs > len(base.Arrival.Trace) {
		base.Horizon.Jobs = len(base.Arrival.Trace)
	}

	p := &Plan{Scenario: sc.Name, Target: target}
	type axisOutcome struct {
		best, cheaperFail *Candidate
	}
	var axes []axisOutcome
	for _, kind := range kinds {
		for _, policy := range policies {
			for _, shards := range shardCounts {
				evaluated := make(map[int]*Candidate)
				eval := func(h int) (*Candidate, error) {
					if c, ok := evaluated[h]; ok {
						return c, nil
					}
					c, err := evaluate(&base, target, kind, policy, shards, h, costs)
					if err != nil {
						return nil, err
					}
					evaluated[h] = c
					return c, nil
				}
				// Binary search the least satisfying host count.
				lo, hi := 0, len(hosts)-1
				found := -1
				for lo <= hi {
					mid := (lo + hi) / 2
					c, err := eval(hosts[mid])
					if err != nil {
						return nil, err
					}
					if c.Meets {
						found = mid
						hi = mid - 1
					} else {
						lo = mid + 1
					}
				}
				var out axisOutcome
				if found >= 0 {
					out.best = evaluated[hosts[found]]
					if found > 0 {
						// Pin the frontier: the next-cheaper neighbor on this
						// axis must fail (evaluate it even if the bisection
						// skipped it).
						c, err := eval(hosts[found-1])
						if err != nil {
							return nil, err
						}
						if !c.Meets {
							out.cheaperFail = c
						} else {
							// Non-monotone edge: the neighbor happens to pass.
							// Prefer it — it is cheaper and satisfying.
							out.best = c
							if found-1 > 0 {
								if c2, err := eval(hosts[found-2]); err == nil && !c2.Meets {
									out.cheaperFail = c2
								}
							}
						}
					}
				}
				axes = append(axes, out)
				// Record evaluations in ascending host order for determinism.
				for _, h := range hosts {
					if c, ok := evaluated[h]; ok {
						p.Evaluated = append(p.Evaluated, *c)
					}
				}
			}
		}
	}

	for i := range axes {
		b := axes[i].best
		if b == nil {
			continue
		}
		if p.Best == nil || better(b, p.Best) {
			p.Best = b
			p.NextCheaper = axes[i].cheaperFail
		}
	}
	return p, nil
}

// better orders satisfying candidates: cheaper first, then fewer hosts,
// then kind lexically, then the simpler policy (sched.Policies order, FIFO
// first) — a tie between disciplines should recommend the one with the
// least operational surprise.
func better(a, b *Candidate) bool {
	if a.Cost != b.Cost {
		return a.Cost < b.Cost
	}
	if a.Shards != b.Shards {
		return a.Shards < b.Shards // fewer moving parts at equal price
	}
	if a.Hosts != b.Hosts {
		return a.Hosts < b.Hosts
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return policyRank(a.Policy) < policyRank(b.Policy)
}

func policyRank(p sched.Policy) int {
	for i, q := range sched.Policies() {
		if p == q {
			return i
		}
	}
	return len(sched.Policies())
}

func evaluate(base *workload.Scenario, target Target, kind string, policy sched.Policy, shards, hosts int, costs Costs) (*Candidate, error) {
	sc := *base
	sc.System = workload.SystemSpec{Kind: kind, Hosts: hosts}
	sc.Policy = policy
	if shards > 1 {
		cl := workload.ClusterSpec{Shards: shards}
		if base.Cluster != nil {
			// Carry the scenario's routing parameters; only the width is
			// the search variable.
			cl.StealThreshold = base.Cluster.StealThreshold
			cl.Replicas = base.Cluster.Replicas
		}
		sc.Cluster = &cl
	} else {
		sc.Cluster = nil
	}
	if f := sc.Faults; f != nil && f.Shard != nil && (sc.Cluster == nil || f.Shard.Shard >= shards) {
		// The scenario's shard fault targets a shard this candidate does
		// not provision; evaluate the candidate without it rather than
		// failing the whole search.
		ff := *f
		ff.Shard = nil
		sc.Faults = &ff
	}
	r, err := des.Simulate(&sc, des.Options{})
	if err != nil {
		return nil, fmt.Errorf("plan: simulating %s/%s shards=%d hosts=%d: %w", kind, policy, shards, hosts, err)
	}
	c := &Candidate{
		Kind:   kind,
		Shards: shards,
		Hosts:  hosts,
		QPUs:   sc.System.QPUs(),
		Policy: sched.Normalize(policy),
		Result: r,
	}
	c.Cost = float64(shards) * (float64(c.Hosts)*costs.Host + float64(c.QPUs)*costs.QPU)
	c.Unmet = target.unmet(r)
	c.Meets = len(c.Unmet) == 0
	if a, err := des.AnalyticScenario(&sc); err == nil {
		c.Analytic = &a
	}
	return c, nil
}

func normalizeSpace(sc *workload.Scenario, space Space) (hosts []int, kinds []string, policies []sched.Policy, shards []int, err error) {
	hosts = slices.Clone(space.Hosts)
	if len(hosts) == 0 {
		for h := 1; h <= 16; h++ {
			hosts = append(hosts, h)
		}
	}
	slices.Sort(hosts)
	hosts = slices.Compact(hosts)
	if hosts[0] < 1 {
		return nil, nil, nil, nil, fmt.Errorf("plan: host counts must be >= 1, got %d", hosts[0])
	}
	if hosts[len(hosts)-1] > 1<<20 {
		return nil, nil, nil, nil, fmt.Errorf("plan: host count %d unreasonably large", hosts[len(hosts)-1])
	}

	kinds = slices.Clone(space.Kinds)
	if len(kinds) == 0 {
		kinds = []string{sc.System.Kind}
	}
	for _, k := range kinds {
		switch k {
		case "shared", "dedicated":
		case "asymmetric":
			if len(hosts) != 1 || hosts[0] != 1 {
				return nil, nil, nil, nil, fmt.Errorf("plan: kind %q admits only hosts=[1]", k)
			}
		default:
			return nil, nil, nil, nil, fmt.Errorf("plan: unknown system kind %q", k)
		}
	}

	policies = slices.Clone(space.Policies)
	if len(policies) == 0 {
		policies = []sched.Policy{sched.Normalize(sc.Policy)}
	}
	for i, p := range policies {
		if !sched.Valid(p) {
			return nil, nil, nil, nil, fmt.Errorf("plan: unknown policy %q (want %v)", p, sched.Policies())
		}
		policies[i] = sched.Normalize(p)
	}

	shards = slices.Clone(space.Shards)
	if len(shards) == 0 {
		shards = []int{sc.ShardCount()}
	}
	slices.Sort(shards)
	shards = slices.Compact(shards)
	if shards[0] < 1 {
		return nil, nil, nil, nil, fmt.Errorf("plan: shard counts must be >= 1, got %d", shards[0])
	}
	if shards[len(shards)-1] > workload.MaxShards {
		return nil, nil, nil, nil, fmt.Errorf("plan: shard count %d exceeds limit %d", shards[len(shards)-1], workload.MaxShards)
	}
	return hosts, kinds, policies, shards, nil
}
