package plan

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/workload"
)

// rebalanceScenario is a 12-class Poisson workload behind a routing tier
// with work stealing — enough distinct class keys that the ring spreads
// ownership, and stealing pools the leftover imbalance, so shard count is a
// real capacity axis. rate 3000 jobs/s against 1 ms jobs saturates a
// 2-host single shard (rho 1.5) while two shards run at 0.75 pooled.
func rebalanceScenario(shards, jobs int) *workload.Scenario {
	mix := make([]workload.JobClass, 12)
	for i := range mix {
		mix[i] = workload.JobClass{
			Name: fmt.Sprintf("c%d", i), Weight: 1, Dist: workload.Exponential,
			Profile: workload.Profile{
				PreProcess:  workload.Duration(500 * time.Microsecond),
				QPUService:  workload.Duration(300 * time.Microsecond),
				PostProcess: workload.Duration(200 * time.Microsecond),
			},
		}
	}
	return &workload.Scenario{
		Name:    "rebalance-test",
		Seed:    11,
		Arrival: workload.Arrival{Kind: workload.Poisson, Rate: 3000},
		Mix:     mix,
		System:  workload.SystemSpec{Kind: "dedicated", Hosts: 2},
		Cluster: &workload.ClusterSpec{Shards: shards, StealThreshold: 4},
		Horizon: workload.Horizon{Jobs: jobs},
	}
}

// TestRebalanceScaleOut is the acceptance gate: from a saturated single
// shard, Rebalance must emit an ordered add+warm step list (>= 2 steps)
// whose final step lands exactly on the static planner's answer.
func TestRebalanceScaleOut(t *testing.T) {
	sc := rebalanceScenario(1, 8000)
	target := Target{MeanSojourn: 10 * time.Millisecond}
	space := Space{Hosts: []int{2}, Shards: []int{1, 2, 4}}
	rb, err := Rebalance(sc, target, space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rb.From != 1 || rb.To <= 1 {
		t.Fatalf("rebalance %d -> %d, want a scale-out from 1", rb.From, rb.To)
	}
	if len(rb.Steps) < 2 {
		t.Fatalf("%d steps, want >= 2 (add + warm per joiner)", len(rb.Steps))
	}
	if len(rb.Steps) != 2*(rb.To-rb.From) {
		t.Fatalf("%d steps for %d joiners, want add+warm per joiner", len(rb.Steps), rb.To-rb.From)
	}
	for i := 0; i < len(rb.Steps); i += 2 {
		add, warm := rb.Steps[i], rb.Steps[i+1]
		shard := rb.From + i/2
		if add.Action != StepAdd || add.Shard != shard || add.Shards != shard {
			t.Errorf("step %d = %+v, want add of shard %d before its ownership flip", i, add, shard)
		}
		if add.Result != nil {
			t.Errorf("bare add carries a DES result: %+v", add)
		}
		if warm.Action != StepWarm || warm.Shard != shard || warm.Shards != shard+1 {
			t.Errorf("step %d = %+v, want warm flipping shard %d in", i+1, warm, shard)
		}
		if warm.MovedFrac <= 0 || warm.MovedFrac >= 1 {
			t.Errorf("warm step moves fraction %v of the key space, want (0, 1)", warm.MovedFrac)
		}
		if warm.Result == nil {
			t.Errorf("ownership flip at step %d not DES-validated", i+1)
		}
	}
	final := rb.Steps[len(rb.Steps)-1]
	if final.Shards != rb.Final.Shards {
		t.Errorf("final step reaches %d shards, static planner says %d", final.Shards, rb.Final.Shards)
	}
	if !final.Meets {
		t.Errorf("final step misses the target: %v", final.Unmet)
	}
	if final.Result.String() != rb.Final.Result.String() {
		t.Errorf("final step's DES result diverges from the static planner's:\n%s\nvs\n%s",
			final.Result, rb.Final.Result)
	}
	if !rb.Final.Meets {
		t.Errorf("destination configuration fails its own target: %v", rb.Final.Unmet)
	}
}

// TestRebalanceScaleIn: an over-provisioned cluster drains from the top
// down to the cheapest satisfying width, every drain DES-validated.
func TestRebalanceScaleIn(t *testing.T) {
	sc := rebalanceScenario(4, 6000)
	sc.Arrival.Rate = 900 // rho 0.45 on a single 2-host shard
	target := Target{MeanSojourn: 20 * time.Millisecond}
	rb, err := Rebalance(sc, target, Space{Hosts: []int{2}, Shards: []int{1, 2, 4}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rb.From != 4 || rb.To != 1 {
		t.Fatalf("rebalance %d -> %d, want 4 -> 1", rb.From, rb.To)
	}
	if len(rb.Steps) != 3 {
		t.Fatalf("%d steps, want one drain per retired shard", len(rb.Steps))
	}
	for i, step := range rb.Steps {
		wantShard := rb.From - 1 - i
		if step.Action != StepDrain || step.Shard != wantShard || step.Shards != wantShard {
			t.Errorf("step %d = %+v, want drain of shard %d", i, step, wantShard)
		}
		if step.Result == nil {
			t.Errorf("drain step %d not DES-validated", i)
		}
		if step.MovedFrac <= 0 || step.MovedFrac >= 1 {
			t.Errorf("drain step %d moves fraction %v, want (0, 1)", i, step.MovedFrac)
		}
	}
	final := rb.Steps[len(rb.Steps)-1]
	if final.Shards != rb.Final.Shards || !final.Meets {
		t.Errorf("final step %+v does not land on the planner's answer (%d shards)", final, rb.Final.Shards)
	}
}

// TestRebalanceAlreadyThere: a scenario already running the cheapest
// satisfying width plans an empty transition.
func TestRebalanceAlreadyThere(t *testing.T) {
	sc := rebalanceScenario(2, 6000)
	rb, err := Rebalance(sc, Target{MeanSojourn: 10 * time.Millisecond},
		Space{Hosts: []int{2}, Shards: []int{2, 4}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rb.From != rb.To || rb.From != 2 {
		t.Errorf("rebalance %d -> %d, want 2 -> 2", rb.From, rb.To)
	}
	if len(rb.Steps) != 0 {
		t.Errorf("steady topology planned %d steps: %+v", len(rb.Steps), rb.Steps)
	}
	if rb.Final == nil || rb.Final.Shards != 2 {
		t.Errorf("final = %+v, want the 2-shard answer", rb.Final)
	}
}

// TestRebalanceUnsatisfiable: with no satisfying destination there is
// nothing to rebalance toward — an explicit error, not a guess.
func TestRebalanceUnsatisfiable(t *testing.T) {
	sc := rebalanceScenario(1, 3000)
	_, err := Rebalance(sc, Target{P99Sojourn: 100 * time.Microsecond},
		Space{Hosts: []int{2}, Shards: []int{1, 2}}, Options{})
	if err == nil || !strings.Contains(err.Error(), "nothing to rebalance toward") {
		t.Errorf("unsatisfiable target: got %v", err)
	}
}
