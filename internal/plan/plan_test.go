package plan

import (
	"strings"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/des"
	"github.com/splitexec/splitexec/internal/sched"
	"github.com/splitexec/splitexec/internal/workload"
)

// planScenario is a single-class exponential Poisson workload (the M/M/c
// envelope, so the analytic cross-check attaches) at 1200 jobs/s against
// 1 ms jobs — one dedicated host saturates (rho = 1.2), two run at 0.6.
func planScenario(jobs int) *workload.Scenario {
	return &workload.Scenario{
		Name:    "plan-test",
		Seed:    17,
		Arrival: workload.Arrival{Kind: workload.Poisson, Rate: 1200},
		Mix: []workload.JobClass{{
			Name: "exp", Weight: 1, Dist: workload.Exponential,
			Profile: workload.Profile{
				PreProcess:  workload.Duration(500 * time.Microsecond),
				QPUService:  workload.Duration(300 * time.Microsecond),
				PostProcess: workload.Duration(200 * time.Microsecond),
			},
		}},
		System:  workload.SystemSpec{Kind: "dedicated", Hosts: 1},
		Horizon: workload.Horizon{Jobs: jobs},
	}
}

// TestCapacityFindsTightFrontier is the acceptance gate: the planner's best
// configuration must meet the SLO in simulation and its next-cheaper
// neighbor must not.
func TestCapacityFindsTightFrontier(t *testing.T) {
	sc := planScenario(40_000)
	target := Target{P99Sojourn: 10 * time.Millisecond}
	p, err := Capacity(sc, target, Space{Hosts: []int{1, 2, 3, 4, 6, 8}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Best == nil {
		t.Fatalf("no satisfying configuration found; evaluated %d candidates", len(p.Evaluated))
	}
	t.Logf("best: %s/%s hosts=%d qpus=%d cost=%.0f p99=%v",
		p.Best.Kind, p.Best.Policy, p.Best.Hosts, p.Best.QPUs, p.Best.Cost, p.Best.Result.Sojourn.P99)
	if !p.Best.Meets || p.Best.Result.Sojourn.P99 > target.P99Sojourn {
		t.Errorf("best candidate does not meet the target: %+v", p.Best)
	}
	// Re-simulate independently: the planner's verdict must reproduce.
	check := *sc
	check.System = workload.SystemSpec{Kind: p.Best.Kind, Hosts: p.Best.Hosts}
	check.Policy = p.Best.Policy
	r, err := des.Simulate(&check, des.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Sojourn.P99 > target.P99Sojourn {
		t.Errorf("re-simulated p99 %v misses the %v SLO", r.Sojourn.P99, target.P99Sojourn)
	}
	if p.Best.Hosts > 1 {
		if p.NextCheaper == nil {
			t.Fatalf("best uses %d hosts but no next-cheaper neighbor was reported", p.Best.Hosts)
		}
		if p.NextCheaper.Meets {
			t.Errorf("next-cheaper neighbor %+v meets the target — the frontier is not tight", p.NextCheaper)
		}
		if p.NextCheaper.Cost >= p.Best.Cost {
			t.Errorf("next-cheaper neighbor costs %.0f >= best %.0f", p.NextCheaper.Cost, p.Best.Cost)
		}
	}
	// The M/M/c envelope applies (dedicated, poisson, single exp class),
	// so the analytic cross-check must be attached and agree on the mean.
	if p.Best.Analytic == nil {
		t.Fatal("no analytic cross-check on an M/M/c-eligible candidate")
	}
	ratio := float64(p.Best.Result.Sojourn.Mean) / float64(p.Best.Analytic.SojournMean)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("simulated mean %v vs analytic %v (ratio %.3f)",
			p.Best.Result.Sojourn.Mean, p.Best.Analytic.SojournMean, ratio)
	}
}

// TestCapacityUtilizationTarget plans for headroom instead of latency.
func TestCapacityUtilizationTarget(t *testing.T) {
	sc := planScenario(20_000)
	p, err := Capacity(sc, Target{MaxHostBusy: 0.5}, Space{Hosts: []int{1, 2, 3, 4, 6}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Best == nil {
		t.Fatal("no configuration met a 50% utilization ceiling")
	}
	// rho = 1.2/hosts: hosts=3 gives 0.4, hosts=2 gives 0.6.
	if p.Best.Hosts != 3 {
		t.Errorf("best hosts = %d, want 3 (rho = 1.2/hosts <= 0.5)", p.Best.Hosts)
	}
	if p.NextCheaper == nil || p.NextCheaper.Hosts != 2 {
		t.Errorf("next cheaper = %+v, want the 2-host point", p.NextCheaper)
	}
}

// TestCapacityPolicyAxis sweeps policies too: every policy axis must yield
// a satisfying point on this workload and the evaluated frontier must cover
// all of them.
func TestCapacityPolicyAxis(t *testing.T) {
	sc := planScenario(15_000)
	sc.System.Kind = "shared"
	p, err := Capacity(sc, Target{MeanSojourn: 20 * time.Millisecond},
		Space{Hosts: []int{2, 4, 8}, Kinds: []string{"shared"}, Policies: sched.Policies()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Best == nil {
		t.Fatal("no satisfying configuration")
	}
	seen := map[sched.Policy]bool{}
	for _, c := range p.Evaluated {
		seen[c.Policy] = true
	}
	for _, pol := range sched.Policies() {
		if !seen[pol] {
			t.Errorf("policy %q never evaluated", pol)
		}
	}
}

// TestCapacityUnsatisfiable: a target below the service time itself cannot
// be met at any fleet size; the plan must say so instead of guessing.
func TestCapacityUnsatisfiable(t *testing.T) {
	sc := planScenario(5_000)
	p, err := Capacity(sc, Target{P99Sojourn: 100 * time.Microsecond}, Space{Hosts: []int{1, 2, 4}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Best != nil {
		t.Errorf("impossible SLO reported satisfiable: %+v", p.Best)
	}
	if len(p.Evaluated) == 0 {
		t.Error("no candidates evaluated")
	}
	for _, c := range p.Evaluated {
		if c.Meets || len(c.Unmet) == 0 {
			t.Errorf("candidate %+v claims to meet an impossible SLO", c)
		}
	}
}

// TestCapacityHorizonOverride: Options.HorizonJobs replaces a thin scenario
// horizon for the planning runs without touching the caller's scenario.
func TestCapacityHorizonOverride(t *testing.T) {
	sc := planScenario(50)
	p, err := Capacity(sc, Target{MaxHostBusy: 0.7}, Space{Hosts: []int{2, 4}}, Options{HorizonJobs: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Horizon.Jobs != 50 {
		t.Errorf("caller's scenario horizon mutated to %d", sc.Horizon.Jobs)
	}
	for _, c := range p.Evaluated {
		if c.Result.Jobs != 5000 {
			t.Errorf("candidate simulated %d jobs, want the 5000-job override", c.Result.Jobs)
		}
	}
}

func TestCapacityRejects(t *testing.T) {
	sc := planScenario(1000)
	if _, err := Capacity(sc, Target{}, Space{}, Options{}); err == nil || !strings.Contains(err.Error(), "empty target") {
		t.Errorf("empty target accepted: %v", err)
	}
	if _, err := Capacity(sc, Target{MaxHostBusy: 1.5}, Space{}, Options{}); err == nil {
		t.Error("utilization > 1 accepted")
	}
	if _, err := Capacity(sc, Target{P99Sojourn: time.Second}, Space{Hosts: []int{0, 2}}, Options{}); err == nil {
		t.Error("hosts=0 accepted")
	}
	if _, err := Capacity(sc, Target{P99Sojourn: time.Second}, Space{Kinds: []string{"mesh"}}, Options{}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Capacity(sc, Target{P99Sojourn: time.Second}, Space{Policies: []sched.Policy{"lifo"}}, Options{}); err == nil {
		t.Error("unknown policy accepted")
	}
	bad := planScenario(1000)
	bad.Mix = nil
	if _, err := Capacity(bad, Target{P99Sojourn: time.Second}, Space{}, Options{}); err == nil {
		t.Error("invalid scenario accepted")
	}
}

// TestCapacityDeterministic: two identical runs produce identical plans.
func TestCapacityDeterministic(t *testing.T) {
	run := func() string {
		p, err := Capacity(planScenario(10_000), Target{P99Sojourn: 15 * time.Millisecond},
			Space{Hosts: []int{1, 2, 4, 8}, Kinds: []string{"shared", "dedicated"}, Policies: sched.Policies()}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, c := range p.Evaluated {
			fmtCandidate(&b, c)
		}
		if p.Best != nil {
			fmtCandidate(&b, *p.Best)
		}
		return b.String()
	}
	if a, b := run(), run(); a != b {
		t.Error("planner output not deterministic across runs")
	}
}

func fmtCandidate(b *strings.Builder, c Candidate) {
	b.WriteString(c.Kind)
	b.WriteString(string(c.Policy))
	b.WriteString(c.Result.String())
	b.WriteByte('\n')
}
