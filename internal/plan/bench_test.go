package plan

import (
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/sched"
)

// BenchmarkPlanSweep is the planner's bench-smoke anchor: a full
// kind × policy × hosts search over DES evaluations must keep completing
// (and stay pure virtual time — one wall-clock sleep would blow the CI
// bench-smoke budget immediately).
func BenchmarkPlanSweep(b *testing.B) {
	sc := planScenario(20_000)
	target := Target{P99Sojourn: 12 * time.Millisecond}
	space := Space{
		Hosts:    []int{1, 2, 4, 8, 16},
		Kinds:    []string{"shared", "dedicated"},
		Policies: sched.Policies(),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := Capacity(sc, target, space, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(p.Evaluated) == 0 {
			b.Fatal("no candidates evaluated")
		}
	}
}
