package anneal

import (
	"math"
	"slices"
	"testing"

	"github.com/splitexec/splitexec/internal/qubo"
)

// FuzzCompiledCSR feeds hostile model shapes — high-degree hubs past the
// fixed-width cutoff, empty rows, duplicate edge declarations, mixed
// integer and fractional coefficients — through compilation and both word
// kernels, pinning three invariants:
//
//  1. FixedWidth either faithfully pads the CSR adjacency (row contents
//     reproduce every LocalField exactly) or declines (ok=false) whenever
//     any degree exceeds the width cap — never a silently truncated row.
//  2. After a word anneal, wordEnergyDelta agrees with the scalar oracle
//     Compiled.EnergyDelta on every active spin of every probed replica,
//     whichever kernel (bit-sliced integer, float fixed-width, float CSR)
//     the program selected.
//  3. When the program qualifies for the bit-sliced kernel, forcing the
//     float kernel on the same seed yields byte-identical spins and
//     energies.
func FuzzCompiledCSR(f *testing.F) {
	// Seeds: a path with duplicates, a star hub past the width cap, an
	// edgeless model, and a fractional-coefficient mix.
	f.Add(int64(1), []byte{4, 0, 1, 1, 1, 2, 1, 0, 1, 2})
	f.Add(int64(2), []byte{12, 0, 1, 0, 0, 2, 1, 0, 3, 2, 0, 4, 3, 0, 5, 0, 0, 6, 1, 0, 7, 2, 0, 8, 3, 0, 9, 0})
	f.Add(int64(3), []byte{5})
	f.Add(int64(4), []byte{6, 0, 1, 4, 1, 2, 5, 3, 4, 6})
	f.Fuzz(func(t *testing.T, seed int64, data []byte) {
		if len(data) == 0 {
			t.Skip()
		}
		n := 2 + int(data[0])%19
		m := qubo.NewIsing(n)
		// Coefficient palette: unit couplings keep the bit-sliced kernel
		// reachable, the rest push the float paths.
		coeff := []float64{1, -1, 2, -3, 0.5, -0.75, 0}
		body := data[1:]
		for k := 0; k+2 < len(body); k += 3 {
			u, v := int(body[k])%n, int(body[k+1])%n
			if u == v {
				m.H[u] = coeff[int(body[k+2])%len(coeff)]
				continue
			}
			m.SetCoupling(u, v, coeff[int(body[k+2])%len(coeff)])
		}

		prog := qubo.Compile(m)
		dim := prog.Dim()

		// Invariant 1: the padded form is exact or refused, never lossy.
		spins := make([]int8, dim)
		for i := range spins {
			spins[i] = int8(2*int(seed>>uint(i%63)&1) - 1)
		}
		cols, vals, width, ok := prog.FixedWidth(bitMaxWidth)
		if ok != (prog.MaxDegree() <= bitMaxWidth) {
			t.Fatalf("FixedWidth ok=%v with max degree %d, cap %d", ok, prog.MaxDegree(), bitMaxWidth)
		}
		if ok {
			for i := 0; i < dim; i++ {
				fw := prog.H[i]
				for k := i * width; k < (i+1)*width; k++ {
					fw += vals[k] * float64(spins[cols[k]])
				}
				if lf := prog.LocalField(spins, i); fw != lf {
					t.Fatalf("padded row %d: field %v, CSR %v", i, fw, lf)
				}
			}
		}

		// Invariant 2: the maintained word fields back the same ΔE as the
		// scalar oracle recomputing from CSR. Exact for integer programs;
		// continuous ones accumulate in a different order, hence the
		// scaled tolerance.
		s := NewSampler(m, SamplerOptions{Sweeps: 4, BitParallel: true})
		arena := make([]int8, wordReplicas*dim)
		energies := make([]float64, wordReplicas)
		s.annealWordInto(arena, dim, wordReplicas, seed, energies)
		for _, r := range []int{0, 31, 63} {
			rs := arena[r*dim : (r+1)*dim]
			for _, i := range prog.Active {
				got := s.wordEnergyDelta(int(i), r)
				want := prog.EnergyDelta(rs, int(i))
				tol := 1e-9 * (1 + math.Abs(want))
				if s.bit.intOK && got != want {
					t.Fatalf("replica %d spin %d: bit-sliced ΔE %v, oracle %v", r, i, got, want)
				}
				if math.Abs(got-want) > tol {
					t.Fatalf("replica %d spin %d: ΔE %v, oracle %v", r, i, got, want)
				}
			}
		}

		// Invariant 3: kernel choice is invisible in the output.
		if s.bit.intOK {
			flt := NewSampler(m, SamplerOptions{Sweeps: 4, BitParallel: true})
			flt.bit = bitState{built: true}
			flt.bit.cols, flt.bit.vals, flt.bit.width, _ = flt.prog.FixedWidth(bitMaxWidth)
			arenaF := make([]int8, wordReplicas*dim)
			energiesF := make([]float64, wordReplicas)
			flt.annealWordInto(arenaF, dim, wordReplicas, seed, energiesF)
			if !slices.Equal(arena, arenaF) {
				t.Fatal("bit-sliced and float word kernels disagree on spins")
			}
			for r := range energies {
				if energies[r] != energiesF[r] {
					t.Fatalf("replica %d: energies %v != %v across kernels", r, energies[r], energiesF[r])
				}
			}
		}
	})
}
