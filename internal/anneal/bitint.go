package anneal

// Bit-sliced integer specialization of the multi-spin kernel.
//
// The float word kernel (bitkernel.go) keeps 64 float64 local fields per
// spin and still pays ~10 scalar ops per replica-proposal. On the models the
// paper's Fig. 9 experiments actually anneal — ±J spin glasses with small
// integer biases on the bounded-degree working graph — every local field is
// an integer with a static bound B = max_i(|h_i| + deg(i)), so the classic
// multi-spin-coding representation applies (cf. Isakov et al.'s an_ms_r1_nf
// kernels): store field bit p of all 64 replicas in one uint64 "plane",
// P = ⌈log₂(B+1)⌉+1 planes per spin in two's complement. Then
//
//   - the Metropolis decision for all 64 replicas is ~2 boolean ops per
//     plane (a carry-only ripple against a constant, below), not 64
//     float compares;
//   - an accepted flip updates a neighbor's field by ±2 for every accepted
//     replica at once via a masked carry/borrow chain over its planes —
//     O(P) ops per neighbor instead of O(popcount) load-modify-stores;
//   - the whole field state is n·P words (a few KB), L1-resident where the
//     float rows were 512 B per spin.
//
// Exactness is preserved, not approximated. The shared per-proposal
// threshold th compares against ΔE_r = 2k_r with k_r = −s_r·f_r an integer,
// so accept ⇔ th > 2k_r ⇔ k_r ≤ kmax where kmax = max{k : 2k < th} is
// found once per proposal by exact float comparisons against float64(2k)
// (both sides exactly representable — no division, no rounding edge). The
// per-replica verdict k ≤ kmax splits by the spin sign into two constant
// comparisons on the field planes directly:
//
//	s = +1: accept ⇔ −f ≤ kmax ⇔ f ≥ −kmax ⇔ ¬sign(f − (−kmax))
//	s = −1: accept ⇔  f ≤ kmax ⇔ sign(f − (kmax+1))
//
// and sign(f + c) over all 64 replicas needs only the carry into the sign
// position: adding a constant bit b to plane F with carry c gives carry-out
// F|c (b=1) or F&c (b=0) — one op per plane. Arithmetic wraps mod 2^P are
// harmless for the maintained fields (the true value always fits), and the
// comparisons sign-extend to P+1 bits so they never wrap.
//
// Every decision equals the scalar kernel's float decision bit-for-bit
// (integer arithmetic of this size is exact in float64 too), the RNG stream
// is consumed identically, and readout reproduces the float path's energy
// accumulation term-for-term, so the replica-63 ≡ scalar equivalence and
// the byte-identical parallel-collection contract hold unchanged.

import "math"

// bitIntPlaneMax caps the bit-sliced width: programs needing more than
// 8 planes (field bound B > 127) fall back to the float word kernel.
const bitIntPlaneMax = 8

// bitIntDetect reports whether the compiled program qualifies for the
// bit-sliced kernel — all couplings ±1, all biases small integers — and
// builds its immutable compiled form (coupling signs, integer biases,
// plane count) if so.
func (s *Sampler) bitIntDetect() bool {
	prog := s.prog
	b := &s.bit
	bound := 0
	for i, h := range prog.H {
		ih := int(h)
		if float64(ih) != h {
			return false // non-integer bias
		}
		if ih < 0 {
			ih = -ih
		}
		if d := ih + prog.Degree(i); d > bound {
			bound = d
		}
	}
	for _, v := range prog.Val {
		if v != 1 && v != -1 {
			return false // non-unit coupling
		}
	}
	// Two's complement planes covering [-B, B]: B ≤ 2^(P-1)−1.
	planes := 1
	for bound > 1<<(planes-1)-1 {
		planes++
	}
	if planes > bitIntPlaneMax {
		return false
	}
	b.jsign = make([]int8, len(prog.Val))
	for k, v := range prog.Val {
		b.jsign[k] = int8(v)
	}
	b.hint = make([]int32, len(prog.H))
	for i, h := range prog.H {
		b.hint[i] = int32(h)
	}
	b.planes = planes
	b.bound = int32(bound)
	b.intOK = true
	return true
}

// bitInitPlanes computes the bit-sliced fields of every active spin from
// the packed initial state — f = h + Σ_j J_ij·s_j per replica — entirely in
// plane arithmetic: the bias broadcasts its two's complement bits to all 64
// replicas, and each neighbor contributes +J on the replicas where its spin
// bit is set and −J where it is clear, applied as masked ±1 carry/borrow
// chains. O(P·|E|) instead of the O(64·|E|) scalar transpose.
func (s *Sampler) bitInitPlanes() {
	prog := s.prog
	b := &s.bit
	P := b.planes
	n := prog.Dim()
	if cap(b.fplanes) < n*P {
		b.fplanes = make([]uint64, n*P)
	}
	b.fplanes = b.fplanes[:n*P]
	clear(b.fplanes)
	words := b.words
	for _, i := range prog.Active {
		var f [bitIntPlaneMax]uint64
		uh := uint64(int64(b.hint[i]))
		for p := 0; p < P; p++ {
			f[p] = -(uh >> uint(p) & 1) // broadcast bit p of h to all replicas
		}
		for k := prog.RowPtr[i]; k < prog.RowPtr[i+1]; k++ {
			w := words[prog.Col[k]]
			up, down := w, ^w // +J where the neighbor spin is +1, −J where −1
			if b.jsign[k] < 0 {
				up, down = down, up
			}
			for p := 0; p < P && up != 0; p++ { // += 1 on up: carry chain
				t := f[p]
				f[p] = t ^ up
				up &= t
			}
			for p := 0; p < P && down != 0; p++ { // −= 1 on down: borrow chain
				t := f[p]
				f[p] = t ^ down
				down &= ^t
			}
		}
		copy(b.fplanes[int(i)*P:int(i)*P+P], f[:P])
	}
}

// acceptMaskInt decides one proposal for all 64 replicas from the field
// planes of the proposed spin: bit r set ⇔ replica r accepts, i.e.
// k_r = −s_r·f_r ≤ kmax. Both sign-split comparisons run as carry-only
// ripples against a constant in P+1-bit precision (sign plane extended),
// so neither can wrap. w is the packed spin word (bit set ⇔ s = +1).
func acceptMaskInt(row []uint64, w uint64, kmax int) uint64 {
	P := len(row)
	sign := row[P-1]
	c1 := uint64(int64(kmax))      // f ≥ −kmax  ⇔ ¬sign(f + kmax)
	c2 := uint64(int64(-1 - kmax)) // f ≤ kmax ⇔ sign(f + (−kmax−1))
	var g, l uint64
	for p, f := range row {
		m1 := -(c1 >> uint(p) & 1)
		g = (f & g) | (m1 & (f | g))
		m2 := -(c2 >> uint(p) & 1)
		l = (f & l) | (m2 & (f | l))
	}
	ge := ^(sign ^ -(c1 >> uint(P) & 1) ^ g)
	le := sign ^ -(c2 >> uint(P) & 1) ^ l
	return (ge & w) | (le &^ w)
}

// addTwoMasked adds 2 to the field of every replica in mask m: a carry
// chain entering at plane 1. The true field always stays within [−B, B],
// so the mod-2^P wrap of the chain never misrepresents it.
func addTwoMasked(row []uint64, m uint64) {
	for p := 1; p < len(row); p++ {
		t := row[p]
		row[p] = t ^ m
		m &= t
		if m == 0 {
			return
		}
	}
}

// subTwoMasked subtracts 2 from the field of every replica in mask m: the
// matching borrow chain.
func subTwoMasked(row []uint64, m uint64) {
	for p := 1; p < len(row); p++ {
		t := row[p]
		row[p] = t ^ m
		m &= ^t
		if m == 0 {
			return
		}
	}
}

// runWordsInt is the bit-sliced sweep loop: identical structure, schedule,
// and RNG consumption to runWords (same per-block threshold refills), with
// the per-word decision and field maintenance in plane arithmetic. The
// shared threshold becomes the integer acceptance level kmax once per
// proposal; neighbor updates apply ΔF = −2·s_i·J = ±2 to every accepted
// replica through one masked carry or borrow chain per neighbor.
func (s *Sampler) runWordsInt(kr *kernelRand) {
	prog := s.prog
	b := &s.bit
	words, planes, P := b.words, b.fplanes, b.planes
	active := prog.Active
	blockLen := min(bitBlock, len(active))
	if cap(s.thr) < blockLen {
		s.thr = make([]float64, blockLen)
	}
	thrBuf := s.thr[:blockLen]
	rowPtr, col, jsign := prog.RowPtr, prog.Col, b.jsign
	bound := int(b.bound)
	for _, beta := range s.betas {
		invB := 1 / beta
		for blk := 0; blk < len(active); blk += bitBlock {
			end := min(blk+bitBlock, len(active))
			bt := thrBuf[:end-blk]
			kr.fillExp(bt, invB)
			for ii, i := range active[blk:end] {
				th := bt[ii]
				// kmax = max{k : 2k < th}, by exact float compares; never
				// below −1 (th ≥ 0 always beats the downhill 2k ≤ −2).
				kmax := bound
				for kmax >= 0 && th <= float64(2*kmax) {
					kmax--
				}
				w := words[i]
				acc := acceptMaskInt(planes[int(i)*P:int(i)*P+P:int(i)*P+P], w, kmax)
				if acc == 0 {
					continue
				}
				words[i] = w ^ acc
				ap := acc & w  // flipped from s = +1: field moves by −2J
				am := acc &^ w // flipped from s = −1: field moves by +2J
				for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
					row := planes[int(col[k])*P : int(col[k])*P+P : int(col[k])*P+P]
					if jsign[k] > 0 {
						if am != 0 {
							addTwoMasked(row, am)
						}
						if ap != 0 {
							subTwoMasked(row, ap)
						}
					} else {
						if ap != 0 {
							addTwoMasked(row, ap)
						}
						if am != 0 {
							subTwoMasked(row, am)
						}
					}
				}
			}
		}
	}
}

// bitFieldInt reconstructs the integer field of replica r of spin i from
// the planes (sign-extended from P bits).
func (s *Sampler) bitFieldInt(i, r int) int64 {
	b := &s.bit
	P := b.planes
	var uf uint64
	for p := 0; p < P; p++ {
		uf |= (b.fplanes[i*P+p] >> uint(r) & 1) << uint(p)
	}
	return int64(uf<<(64-uint(P))) >> (64 - uint(P))
}

// bitReadoutInt unpacks the first count replicas and evaluates their
// energies exactly as bitReadout does — same formula, same per-replica
// accumulation order over the active spins, term values identical (the
// integer fields are exact in float64) — so both kernels emit byte-
// identical SampleSets on qualifying programs. The accumulation runs
// spin-outer so each plane row is loaded once, but energies[rr] still
// receives its active-order terms in order, preserving the float sum.
func (s *Sampler) bitReadoutInt(arena []int8, dim, count int, energies []float64) {
	prog := s.prog
	b := &s.bit
	words, P := b.words, b.planes
	for rr := 0; rr < count; rr++ {
		dst := arena[rr*dim : (rr+1)*dim]
		for i := range dst {
			dst[i] = int8(int(words[i]>>uint(rr)&1)<<1 - 1)
		}
	}
	ee := energies[:count]
	for i := range ee {
		ee[i] = 0
	}
	shift := 64 - uint(P)
	for _, i := range prog.Active {
		row := b.fplanes[int(i)*P : int(i)*P+P : int(i)*P+P]
		h := prog.H[i]
		nw := ^words[i]
		for rr := range ee {
			var uf uint64
			for p, plane := range row {
				uf |= (plane >> uint(rr) & 1) << uint(p)
			}
			t := h + float64(int64(uf<<shift)>>shift)
			sb := (nw >> uint(rr)) & 1 // 1 ⇔ s = −1: flip the term's sign
			ee[rr] += math.Float64frombits(math.Float64bits(t) ^ (sb << 63))
		}
	}
	for rr := range ee {
		ee[rr] = prog.Offset + 0.5*ee[rr]
	}
}
