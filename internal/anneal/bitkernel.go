package anneal

// Multi-spin-coded (bit-parallel) Metropolis kernel.
//
// The scalar kernel in sampler.go anneals one replica at ~10 ns/proposal;
// the next order of magnitude is word-level parallelism: 64 independent
// replicas are packed one-bit-per-spin into a uint64 word per spin (bit r
// set ⇔ spin of replica r is +1), so one pass over a coupling touches all
// 64 replicas at once. Concretely, per word:
//
//   - the initial random state costs one 64-bit draw per spin instead of 64
//     (bit r of the draw is replica r's spin);
//   - sign application — s·f, ±J gathers, ±2J scatters — is a single XOR of
//     the spin bit into the float64 sign bit, the XNOR-style coupling
//     evaluation of classic multi-spin codes, with no per-replica branch;
//   - one ziggurat acceptance threshold per proposal is shared by all 64
//     replicas (the standard multi-spin-coding trade, cf. Isakov et al.'s
//     an_ms annealers), so per-sweep threshold generation — the largest
//     per-proposal cost the scalar kernel retains — is amortized 64×;
//   - accepted flips are applied as one XOR of the accept mask, and field
//     scatter visits only the set bits of that mask (popcount-bounded).
//
// Local fields stay per-replica float64s (couplings are continuous after
// parameter setting, so bit-sliced integer fields are not available); they
// live replica-major in 64-wide rows so each gather/scatter touches exactly
// one contiguous 512-byte row. On bounded-degree working graphs (Chimera:
// deg ≤ 6) the adjacency is compiled to the padded fixed-width form
// (qubo.Compiled.FixedWidth), giving the gather/scatter loops a constant
// trip count; hostile higher-degree models fall back to the CSR row walk.
// The sweep traverses the active list in cache-sized blocks, refilling a
// small L1-resident threshold buffer per block.
//
// Sharing one threshold across a word correlates the replicas of that word
// (two replicas that ever reach the same state make identical decisions
// from then on) but leaves each replica's marginal law exactly the scalar
// Metropolis dynamics: per replica the thresholds are still i.i.d.
// Exp(1)/β. Equivalence is testable bit-for-bit: given the same seed, the
// word kernel consumes one 64-bit draw per active spin (initial state) and
// then exactly the scalar kernel's per-sweep threshold stream, so replica
// 63 reproduces the scalar annealInto trajectory spin-for-spin, and every
// other replica matches a scalar run from its unpacked initial state (see
// bitkernel_test.go).

import (
	"math"
	"math/bits"
)

const (
	// wordReplicas is the multi-spin coding width: replicas per machine word.
	wordReplicas = 64
	// bitMaxWidth bounds the fixed-width adjacency specialization; rows wider
	// than this (degree > 8, i.e. beyond any Chimera working graph) walk the
	// CSR form instead of paying the padding.
	bitMaxWidth = 8
	// bitBlock is the sweep cache-blocking factor: active spins are proposed
	// in blocks of this many words so the block's threshold buffer (8·256 =
	// 2 KB) stays L1-resident and its field rows (256·512 B = 128 KB) stay in
	// L2 while the block is hot.
	bitBlock = 256
	// two64 is the float64 bit pattern of +2.0; XORing the pre-flip spin bit
	// into its sign bit yields the field-update factor d = −2·s_old.
	two64 = 0x4000000000000000
)

// bitState is the Sampler's multi-spin scratch: packed spins, per-replica
// fields and the (lazily compiled, immutable once built) adjacency forms.
// It is reused across anneals and reset by NewReader.
type bitState struct {
	words  []uint64  // packed spins, one word per spin, bit r set ⇔ s=+1
	fields []float64 // per-replica local fields, row i at i*wordReplicas
	cols   []int32   // fixed-width adjacency (nil: CSR fallback)
	vals   []float64
	width  int
	built  bool

	// Bit-sliced integer specialization (bitint.go), engaged when the
	// program has unit couplings and small integer biases.
	intOK   bool
	planes  int      // bit-planes per field (two's complement width)
	bound   int32    // static field bound B: |f_i^r| ≤ B always
	jsign   []int8   // per CSR entry: coupling sign ±1
	hint    []int32  // per spin: integer bias
	fplanes []uint64 // bit-sliced fields, row i at i*planes, plane p = bit p
}

// wordParallel reports whether this sampler runs the multi-spin kernel.
func (s *Sampler) wordParallel() bool { return s.opts.BitParallel }

// annealWordInto runs one multi-spin anneal — 64 independent replicas from
// random initial states, all driven by the single RNG stream of seed — and
// unpacks the first count replicas into arena (count×dim int8 spins,
// replica-major) with their energies in energies[:count]. It is the word
// analogue of annealInto: collection derives one seed per 64-replica word.
// Unit-coupling integer programs run on the bit-sliced kernel (bitint.go);
// general continuous couplings on the per-replica float-field kernel. Both
// consume the RNG stream identically and make bit-identical decisions.
func (s *Sampler) annealWordInto(arena []int8, dim, count int, seed int64, energies []float64) {
	kr := newKernelRand(seed)
	s.bitBuild()
	s.bitInitWords(&kr)
	if s.bit.intOK {
		s.bitInitPlanes()
		s.runWordsInt(&kr)
		s.bitReadoutInt(arena, dim, count, energies)
		return
	}
	s.bitInitFields()
	s.runWords(&kr)
	s.bitReadout(arena, dim, count, energies)
}

// bitBuild compiles the (immutable once built) adjacency forms: the
// bit-sliced integer specialization when the program qualifies, the padded
// fixed-width float adjacency otherwise (nil on degree > bitMaxWidth,
// leaving the CSR fallback).
func (s *Sampler) bitBuild() {
	b := &s.bit
	if b.built {
		return
	}
	b.built = true
	if s.bitIntDetect() {
		return
	}
	b.cols, b.vals, b.width, _ = s.prog.FixedWidth(bitMaxWidth)
}

// bitInitWords sizes the packed state and draws it: inactive spins are
// frozen at +1 (all-ones words, mirroring the scalar kernel), each active
// spin takes one 64-bit draw covering all 64 replicas. The draw order
// matches annealInto's per-active-spin draws, so after bitInitWords the RNG
// state — and therefore the subsequent threshold stream — is identical to a
// scalar anneal from the same seed.
func (s *Sampler) bitInitWords(kr *kernelRand) {
	b := &s.bit
	n := s.prog.Dim()
	if cap(b.words) < n {
		b.words = make([]uint64, n)
	}
	b.words = b.words[:n]
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	for _, i := range s.prog.Active {
		b.words[i] = kr.next()
	}
}

// bitInitFields computes the per-replica local fields of every active spin
// from the packed state: f_i^r = h_i + Σ_j J_ij·s_j^r, the coupling sign
// applied per replica by XORing the inverted spin bit into the float sign
// bit (bit clear ⇔ s_j = −1 ⇔ flip). The accumulation order per row equals
// Compiled.LocalField's CSR walk, so the fields match the scalar kernel's
// bit-for-bit; padded fixed-width entries add ±0.
func (s *Sampler) bitInitFields() {
	prog := s.prog
	b := &s.bit
	n := prog.Dim()
	if cap(b.fields) < n*wordReplicas {
		b.fields = make([]float64, n*wordReplicas)
	}
	b.fields = b.fields[:n*wordReplicas]
	words, fields := b.words, b.fields
	for _, i := range prog.Active {
		base := int(i) * wordReplicas
		fi := fields[base : base+wordReplicas : base+wordReplicas]
		h := prog.H[i]
		for r := range fi {
			fi[r] = h
		}
		if b.cols != nil {
			kw := int(i) * b.width
			for k := kw; k < kw+b.width; k++ {
				vb := math.Float64bits(b.vals[k])
				nw := ^words[b.cols[k]]
				for r := 0; r < wordReplicas; r++ {
					fi[r] += math.Float64frombits(vb ^ ((nw >> uint(r)) << 63))
				}
			}
			continue
		}
		for k := prog.RowPtr[i]; k < prog.RowPtr[i+1]; k++ {
			vb := math.Float64bits(prog.Val[k])
			nw := ^words[prog.Col[k]]
			for r := 0; r < wordReplicas; r++ {
				fi[r] += math.Float64frombits(vb ^ ((nw >> uint(r)) << 63))
			}
		}
	}
}

// runWords is the multi-spin Metropolis kernel: every sweep proposes each
// active spin once, deciding all 64 replicas of that spin against one
// shared threshold. The accept test reproduces the scalar predicate
// exactly — accept ⇔ thr > ΔE_r = −2·s_r·f_r — via the sign-exactness of
// float addition (fl(2·s·f + thr) is zero iff the exact sum is, and its
// sign is always the exact sum's), evaluated branch-free into an accept
// mask. Flips are applied with one XOR; field maintenance scatters
// d·J = ±2J only for the mask's set bits.
func (s *Sampler) runWords(kr *kernelRand) {
	prog := s.prog
	b := &s.bit
	words, fields := b.words, b.fields
	active := prog.Active
	blockLen := min(bitBlock, len(active))
	if cap(s.thr) < blockLen {
		s.thr = make([]float64, blockLen)
	}
	thrBuf := s.thr[:blockLen]
	fwCols, fwVals, width := b.cols, b.vals, b.width
	rowPtr, csrCol, csrVal := prog.RowPtr, prog.Col, prog.Val
	for _, beta := range s.betas {
		invB := 1 / beta
		for blk := 0; blk < len(active); blk += bitBlock {
			end := min(blk+bitBlock, len(active))
			bt := thrBuf[:end-blk]
			kr.fillExp(bt, invB)
			// Two copies of the proposal body: bounded-degree programs run
			// the fixed-width gather, hostile shapes walk the CSR rows.
			// Keep the bodies in sync.
			if fwCols != nil {
				for ii, i := range active[blk:end] {
					th := bt[ii]
					w := words[i]
					fi := (*[wordReplicas]float64)(fields[int(i)*wordReplicas:])
					acc := acceptMask(fi, w, th)
					if acc == 0 {
						continue
					}
					words[i] = w ^ acc
					kw := int(i) * width
					for k := kw; k < kw+width; k++ {
						scatterRow(fields, int(fwCols[k]), fwVals[k], acc, w)
					}
				}
				continue
			}
			for ii, i := range active[blk:end] {
				th := bt[ii]
				w := words[i]
				fi := (*[wordReplicas]float64)(fields[int(i)*wordReplicas:])
				acc := acceptMask(fi, w, th)
				if acc == 0 {
					continue
				}
				words[i] = w ^ acc
				for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
					scatterRow(fields, int(csrCol[k]), csrVal[k], acc, w)
				}
			}
		}
	}
}

// acceptMask decides one proposal for all 64 replicas of a word: bit r of
// the result is set iff replica r accepts the flip, i.e. th > ΔE_r,
// evaluated branch-free on the bit pattern of diff = 2·s·f + th.
//
// Positivity test: diff > 0 ⇔ bits(diff) ∈ [1, 2⁶³), so ^(bits−1) has its
// top bit set exactly for positive diff — PROVIDED diff is never −0
// (bits = 2⁶³, which the interval test would misclassify). It is not:
// thresholds are Exp(1)/β ∈ [+0, ∞), and an IEEE sum rounds to −0 only
// when both addends are −0 (a nonzero exact sum in the subnormal range is
// exact by Hauser's lemma, and an exactly-cancelling sum yields +0 under
// round-to-nearest), so with th ≥ +0 the sum's −0 is unreachable.
//
// The mask is assembled with constant single-bit shifts instead of
// variable shifts: each iteration retires bit 0 of the (inverted) spin
// word into the float sign via nw<<63 and pushes the verdict in at bit 63,
// so after 64 iterations verdict r sits at bit r.
func acceptMask(fi *[wordReplicas]float64, w uint64, th float64) uint64 {
	nw := ^w
	var acc uint64
	for r := 0; r < wordReplicas; r++ {
		sf := math.Float64frombits(math.Float64bits(fi[r]) ^ (nw << 63))
		nw >>= 1
		ub := math.Float64bits(sf + sf + th)
		acc = acc>>1 | (^(ub - 1) & (1 << 63))
	}
	return acc
}

// scatterRow applies the field updates of one neighbor row for every
// accepted replica: f_j^r += −2·s_i^r·v for each set bit r of acc, the sign
// taken from the pre-flip word w. Neighbor-outer order keeps all writes of
// a call inside one contiguous 512-byte field row; splitting the mask by
// pre-flip sign hoists the ±2v constant out of the per-replica loops
// (x −= v2 is bit-identical to x += −v2, matching the scalar d·J update).
func scatterRow(fields []float64, j int, v float64, acc, w uint64) {
	fj := (*[wordReplicas]float64)(fields[j*wordReplicas:])
	v2 := v + v
	for a := acc & w; a != 0; a &= a - 1 { // replicas flipping from s = +1
		fj[bits.TrailingZeros64(a)&63] -= v2
	}
	for a := acc &^ w; a != 0; a &= a - 1 { // replicas flipping from s = −1
		fj[bits.TrailingZeros64(a)&63] += v2
	}
}

// bitReadout unpacks the first count replicas into arena and evaluates
// their energies from the maintained fields — the same
// E = Offset + ½ Σ_i s_i·(h_i + f_i) identity as EnergyFromFields, summed
// per replica over the active spins (frozen spins contribute nothing: they
// have zero bias and no couplings).
func (s *Sampler) bitReadout(arena []int8, dim, count int, energies []float64) {
	prog := s.prog
	words, fields := s.bit.words, s.bit.fields
	for rr := 0; rr < count; rr++ {
		dst := arena[rr*dim : (rr+1)*dim]
		for i := range dst {
			dst[i] = int8(int((words[i]>>uint(rr))&1)<<1 - 1)
		}
	}
	for rr := range energies[:count] {
		e := 0.0
		for _, i := range prog.Active {
			t := prog.H[i] + fields[int(i)*wordReplicas+rr]
			sb := (^words[i] >> uint(rr)) & 1 // 1 ⇔ s = −1: flip the term's sign
			e += math.Float64frombits(math.Float64bits(t) ^ (sb << 63))
		}
		energies[rr] = prog.Offset + 0.5*e
	}
}

// wordEnergyDelta returns ΔE for flipping spin i in replica r of the packed
// state — the multi-spin analogue of Compiled.EnergyDelta, used by the
// equivalence and fuzz oracles. It reads the maintained fields (planes or
// float rows, whichever kernel is engaged), so the init must have run.
func (s *Sampler) wordEnergyDelta(i, r int) float64 {
	f := 0.0
	if s.bit.intOK {
		f = float64(s.bitFieldInt(i, r))
	} else {
		f = s.bit.fields[i*wordReplicas+r]
	}
	sb := (^s.bit.words[i] >> uint(r)) & 1
	sf := math.Float64frombits(math.Float64bits(f) ^ (sb << 63))
	return -(sf + sf)
}
