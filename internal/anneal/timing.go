package anneal

import (
	"fmt"
	"math"
	"time"
)

// Timings holds the hardware time constants of the QPU execution model. The
// defaults are the DW2 "Vesuvius" values the paper embeds in its stage-1 and
// stage-2 ASPEN listings (Figs. 6–7), in microseconds.
type Timings struct {
	// Programming (stage-1 InitializeProcessor constants).
	StateCon time.Duration // electronic state-machine construction
	PMMSW    time.Duration // programmable-magnetic-memory software setup
	PMMElec  time.Duration // PMM electronics
	PMMChip  time.Duration // PMM chip programming
	PMMTherm time.Duration // post-programming thermalization
	SWRun    time.Duration // software run overhead
	ElecRun  time.Duration // electronics run overhead

	// Per-call execution (stage-2 constants).
	AnnealTime     time.Duration // single annealing sweep (QuOps: 20 µs)
	ReadoutTime    time.Duration // register readout per call (320 µs)
	Thermalization time.Duration // inter-sample thermalization (5 µs)
}

// DW2Timings returns the paper's DW2 Vesuvius constants: the
// ProcessorInitialize components sum to 319,573 µs (≈0.32 s) and dominate
// every stage-2 cost.
func DW2Timings() Timings {
	return Timings{
		StateCon:       252162 * time.Microsecond,
		PMMSW:          33095 * time.Microsecond,
		PMMElec:        0,
		PMMChip:        11264 * time.Microsecond,
		PMMTherm:       10000 * time.Microsecond,
		SWRun:          4000 * time.Microsecond,
		ElecRun:        9052 * time.Microsecond,
		AnnealTime:     20 * time.Microsecond,
		ReadoutTime:    320 * time.Microsecond,
		Thermalization: 5 * time.Microsecond,
	}
}

// ProcessorInitialize returns the total one-time programming cost, the
// paper's ProcessorInitialize parameter.
func (t Timings) ProcessorInitialize() time.Duration {
	return t.StateCon + t.PMMSW + t.PMMElec + t.PMMChip + t.PMMTherm + t.SWRun + t.ElecRun
}

// ExecutionTime returns the QPU time for one call performing the given
// number of annealing repetitions: reads×anneal + readout + thermalization
// (the structure of the paper's Stage2 model).
func (t Timings) ExecutionTime(reads int) time.Duration {
	return time.Duration(reads)*t.AnnealTime + t.ReadoutTime + t.Thermalization
}

// RequiredReads returns the number of annealing repetitions s needed so a
// processor with single-run ground-state probability ps reaches the desired
// solution accuracy pa (paper Eq. 6):
//
//	s ≥ log(1-pa) / log(1-ps).
//
// Both probabilities must lie in (0,1); pa may equal 0 (returns 0).
func RequiredReads(pa, ps float64) (int, error) {
	if ps <= 0 || ps >= 1 {
		return 0, fmt.Errorf("anneal: single-run success probability %v outside (0,1)", ps)
	}
	if pa < 0 || pa >= 1 {
		return 0, fmt.Errorf("anneal: target accuracy %v outside [0,1)", pa)
	}
	if pa == 0 {
		return 0, nil
	}
	s := math.Log(1-pa) / math.Log(1-ps)
	return int(math.Ceil(s)), nil
}

// AchievedAccuracy inverts Eq. 6: the probability that s independent runs
// with per-run success ps contain at least one ground state.
func AchievedAccuracy(s int, ps float64) float64 {
	if s <= 0 {
		return 0
	}
	return 1 - math.Pow(1-ps, float64(s))
}
