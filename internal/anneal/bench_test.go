package anneal

// Kernel microbenchmarks. The CI smoke step runs these with -benchtime=1x so
// the hot path can never silently stop compiling; for real measurements use:
//
//	go test -bench 'Kernel|ParallelReads' -benchmem -count 10 ./internal/anneal | benchstat -
//
// See docs/performance.md for the kernel design and recorded before/after
// numbers.

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/qubo"
)

func benchProgram(b *testing.B, cells int) *qubo.Ising {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	g := graph.Chimera{M: cells, N: cells, L: 4}.Graph()
	return qubo.RandomIsing(g, 1, 1, rng)
}

// BenchmarkKernelMetropolis times single anneals of the compiled Metropolis
// kernel (64 sweeps) on random Chimera spin glasses.
func BenchmarkKernelMetropolis(b *testing.B) {
	for _, cells := range []int{1, 2, 4} {
		m := benchProgram(b, cells)
		b.Run(fmt.Sprintf("spins=%d", m.Dim()), func(b *testing.B) {
			s := NewSampler(m, SamplerOptions{Sweeps: 64})
			rng := rand.New(rand.NewSource(2))
			spins := make([]int8, m.Dim())
			for i := range spins {
				spins[i] = int8(2*(i%2) - 1)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.AnnealFrom(spins, rng)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*64*s.ActiveSpins()), "ns/proposal")
		})
	}
}

// BenchmarkKernelSQA times single anneals of the path-integral kernel
// (64 sweeps, 8 Trotter slices).
func BenchmarkKernelSQA(b *testing.B) {
	for _, cells := range []int{1, 2} {
		m := benchProgram(b, cells)
		b.Run(fmt.Sprintf("spins=%d", m.Dim()), func(b *testing.B) {
			s := NewSQASampler(m, SQAOptions{Sweeps: 64, Replicas: 8})
			rng := rand.New(rand.NewSource(3))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Anneal(rng)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*64*8*s.ActiveSpins()), "ns/proposal")
		})
	}
}

// BenchmarkParallelReads measures Device.Execute fanning 64 reads across
// worker counts. Results are byte-identical at every worker count (per-read
// DeriveSeed streams); only wall-clock changes.
func BenchmarkParallelReads(b *testing.B) {
	m := benchProgram(b, 2)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			d := NewDevice(DW2Timings(), SamplerOptions{Sweeps: 64})
			d.Workers = workers
			d.Program(m)
			rng := rand.New(rand.NewSource(4))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Execute(64, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
