package anneal

// Kernel microbenchmarks. The CI smoke step runs these with -benchtime=1x
// -benchmem so the hot paths can never silently stop compiling or start
// allocating; for real measurements use:
//
//	go test -bench 'Kernel|ParallelReads' -benchmem -count 10 ./internal/anneal | benchstat -
//
// or `splitexec bench`, which records the same kernels into a
// schema-versioned BENCH_<date>.json for the committed trajectory. Every
// kernel benchmark reports ns/proposal (time per replica-level Metropolis
// proposal) and allocs/op on the same footing, so the scalar, multi-spin
// and SQA kernels are directly comparable. See docs/performance.md for the
// kernel design and recorded before/after numbers.

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/qubo"
)

func benchProgram(b *testing.B, cells int) *qubo.Ising {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	g := graph.Chimera{M: cells, N: cells, L: 4}.Graph()
	return qubo.RandomIsing(g, 1, 1, rng)
}

// BenchmarkKernelMetropolis times single anneals of the compiled scalar
// Metropolis kernel (64 sweeps) on random Chimera spin glasses.
func BenchmarkKernelMetropolis(b *testing.B) {
	for _, cells := range []int{1, 2, 4} {
		m := benchProgram(b, cells)
		b.Run(fmt.Sprintf("spins=%d", m.Dim()), func(b *testing.B) {
			s := NewSampler(m, SamplerOptions{Sweeps: 64})
			rng := rand.New(rand.NewSource(2))
			spins := make([]int8, m.Dim())
			for i := range spins {
				spins[i] = int8(2*(i%2) - 1)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.AnnealFrom(spins, rng)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*64*s.ActiveSpins()), "ns/proposal")
		})
	}
}

// BenchmarkKernelBitParallel times the multi-spin word kernels through the
// public collection path: one iteration is a full 64-replica word, so the
// proposal count is 64× the scalar kernel's per anneal. The ±J Chimera
// programs here engage the bit-sliced integer kernel; the continuous
// variant forces the float word kernel for comparison.
func BenchmarkKernelBitParallel(b *testing.B) {
	for _, cells := range []int{1, 2, 4} {
		m := benchProgram(b, cells)
		b.Run(fmt.Sprintf("spins=%d", m.Dim()), func(b *testing.B) {
			s := NewSampler(m, SamplerOptions{Sweeps: 64, BitParallel: true})
			s.SampleParallel(wordReplicas, 1, 0) // warm scratch out of the timed region
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.SampleParallel(wordReplicas, 1, int64(i))
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*64*wordReplicas*s.ActiveSpins()), "ns/proposal")
		})
	}
	m := benchProgram(b, 4)
	rng := rand.New(rand.NewSource(5))
	for i := range m.H {
		m.H[i] = rng.NormFloat64()
	}
	b.Run(fmt.Sprintf("spins=%d-float", m.Dim()), func(b *testing.B) {
		s := NewSampler(m, SamplerOptions{Sweeps: 64, BitParallel: true})
		if s.bit.intOK {
			b.Fatal("expected the float word kernel")
		}
		s.SampleParallel(wordReplicas, 1, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.SampleParallel(wordReplicas, 1, int64(i))
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*64*wordReplicas*s.ActiveSpins()), "ns/proposal")
	})
}

// BenchmarkKernelSQA times single anneals of the path-integral kernel
// (64 sweeps, 8 Trotter slices).
func BenchmarkKernelSQA(b *testing.B) {
	for _, cells := range []int{1, 2} {
		m := benchProgram(b, cells)
		b.Run(fmt.Sprintf("spins=%d", m.Dim()), func(b *testing.B) {
			s := NewSQASampler(m, SQAOptions{Sweeps: 64, Replicas: 8})
			rng := rand.New(rand.NewSource(3))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Anneal(rng)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*64*8*s.ActiveSpins()), "ns/proposal")
		})
	}
}

// BenchmarkParallelReads measures Device.Execute fanning 64 reads across
// worker counts. Results are byte-identical at every worker count (per-read
// DeriveSeed streams); only wall-clock changes. The bitparallel variant
// collects whole 64-replica words instead of scalar reads.
func BenchmarkParallelReads(b *testing.B) {
	m := benchProgram(b, 2)
	for _, workers := range []int{1, 2, 4} {
		for _, bp := range []bool{false, true} {
			name := fmt.Sprintf("workers=%d", workers)
			if bp {
				name += "-bitparallel"
			}
			b.Run(name, func(b *testing.B) {
				d := NewDevice(DW2Timings(), SamplerOptions{Sweeps: 64, BitParallel: bp})
				d.Workers = workers
				d.Program(m)
				rng := rand.New(rand.NewSource(4))
				b.ReportAllocs()
				b.SetBytes(64 * int64(m.Dim())) // spins moved per Execute
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := d.Execute(64, rng); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
