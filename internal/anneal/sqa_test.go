package anneal

import (
	"math"
	"math/rand"
	"testing"

	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/qubo"
)

func TestSQAFindsFerromagneticGround(t *testing.T) {
	m := ferroChain(8)
	s := NewSQASampler(m, SQAOptions{Sweeps: 128, Replicas: 8})
	spins, e := s.Anneal(rand.New(rand.NewSource(1)))
	if e != -7 {
		t.Fatalf("energy = %v, want -7", e)
	}
	for i := 1; i < 8; i++ {
		if spins[i] != spins[0] {
			t.Fatalf("spins not aligned: %v", spins)
		}
	}
}

func TestSQAMatchesBruteForceSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 3; trial++ {
		g := graph.GNP(7, 0.5, rng)
		m := qubo.RandomIsing(g, 1, 1, rng)
		_, want := m.BruteForce()
		s := NewSQASampler(m, SQAOptions{Sweeps: 128, Replicas: 12})
		best := math.Inf(1)
		for r := 0; r < 15; r++ {
			if _, e := s.Anneal(rng); e < best {
				best = e
			}
		}
		if math.Abs(best-want) > 1e-9 {
			t.Errorf("trial %d: SQA best %v, exact %v", trial, best, want)
		}
	}
}

func TestSQARespectsInactiveSpins(t *testing.T) {
	m := qubo.NewIsing(5)
	m.SetCoupling(0, 1, -1)
	s := NewSQASampler(m, SQAOptions{Sweeps: 16})
	if s.ActiveSpins() != 2 {
		t.Fatalf("active = %d", s.ActiveSpins())
	}
	spins, _ := s.Anneal(rand.New(rand.NewSource(3)))
	for i := 2; i < 5; i++ {
		if spins[i] != 1 {
			t.Fatalf("inactive spin %d flipped", i)
		}
	}
}

func TestSQADeterministicBySeed(t *testing.T) {
	m := ferroChain(6)
	s := NewSQASampler(m, SQAOptions{Sweeps: 32, Replicas: 4})
	_, e1 := s.Anneal(rand.New(rand.NewSource(7)))
	_, e2 := s.Anneal(rand.New(rand.NewSource(7)))
	if e1 != e2 {
		t.Errorf("energies differ: %v vs %v", e1, e2)
	}
}

func TestSQADefaults(t *testing.T) {
	m := ferroChain(4)
	s := NewSQASampler(m, SQAOptions{})
	if s.Replicas() != 16 {
		t.Errorf("default replicas = %d", s.Replicas())
	}
	if s.opts.Gamma0 <= s.opts.GammaEnd {
		t.Error("default schedule not decreasing")
	}
}

func TestSQASampleSetShape(t *testing.T) {
	m := ferroChain(5)
	s := NewSQASampler(m, SQAOptions{Sweeps: 16, Replicas: 4})
	set := s.Sample(6, rand.New(rand.NewSource(4)))
	if set.Len() != 6 || set.Dim != 5 {
		t.Errorf("set = %d samples dim %d", set.Len(), set.Dim)
	}
}

func TestQuantumDeviceLifecycle(t *testing.T) {
	d := NewQuantumDevice(DW2Timings(), SQAOptions{Sweeps: 32, Replicas: 8})
	d.Program(ferroChain(6))
	set, err := d.Execute(8, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 8 {
		t.Fatalf("reads = %d", set.Len())
	}
	if set.Best().Energy != -5 {
		t.Errorf("best = %v, want -5", set.Best().Energy)
	}
	// Timing constants are the same regardless of substrate: the QPU model
	// charges 20 µs per read either way.
	_, exec := d.QPUTime()
	if exec != DW2Timings().ExecutionTime(8) {
		t.Errorf("exec time = %v", exec)
	}
}

func TestCollectValidatesReads(t *testing.T) {
	m := ferroChain(3)
	s := NewSampler(m, SamplerOptions{})
	if _, err := Collect(s, 3, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("reads=0 accepted")
	}
	set, err := Collect(s, 3, 2, rand.New(rand.NewSource(1)))
	if err != nil || set.Len() != 2 {
		t.Errorf("collect: %v, %d", err, set.Len())
	}
}

// On a frustrated instance, SQA with enough replicas should at minimum be a
// working optimizer: nonzero success probability at these sizes.
func TestSQASuccessProbabilityNonzero(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.Complete(6)
	m := qubo.RandomIsing(g, 1, 1, rng)
	_, ground := m.BruteForce()
	s := NewSQASampler(m, SQAOptions{Sweeps: 96, Replicas: 12})
	set := s.Sample(40, rng)
	if rate := set.SuccessRate(ground, 1e-9); rate == 0 {
		t.Error("SQA never found the 6-spin ground state in 40 reads")
	}
}
