package anneal

import (
	"math"
	"math/rand"

	"github.com/splitexec/splitexec/internal/qubo"
)

// SQAOptions configure the simulated quantum annealing sampler.
type SQAOptions struct {
	// Replicas is the number of Trotter slices P (default 16).
	Replicas int
	// Sweeps is the number of annealing steps (default 64); the transverse
	// field decays linearly from Gamma0 to GammaEnd across them.
	Sweeps int
	// Beta is the inverse temperature of the quantum system (default
	// 10 / max|coefficient|).
	Beta float64
	// Gamma0 and GammaEnd bound the transverse-field schedule (defaults
	// 3×max|coefficient| → 0.01×).
	Gamma0, GammaEnd float64
}

func (o SQAOptions) withDefaults(m *qubo.Ising) SQAOptions {
	scale := m.MaxAbsCoefficient()
	if scale == 0 {
		scale = 1
	}
	if o.Replicas <= 0 {
		o.Replicas = 16
	}
	if o.Sweeps <= 0 {
		o.Sweeps = 64
	}
	if o.Beta <= 0 {
		o.Beta = 10 / scale
	}
	if o.Gamma0 <= 0 {
		o.Gamma0 = 3 * scale
	}
	if o.GammaEnd <= 0 {
		o.GammaEnd = 0.01 * scale
	}
	return o
}

// SQASampler approximates the adiabatic quantum dynamics of Eq. (1)/(2) by
// path-integral Monte Carlo: the transverse-field Ising system at inverse
// temperature β maps onto P coupled classical replicas ("Trotter slices"),
// with an inter-replica ferromagnetic coupling
//
//	J⊥(Γ) = -(1/2β_P)·ln tanh(β_P·Γ),   β_P = β/P,
//
// that stiffens as the transverse field Γ anneals toward zero, collapsing
// the world lines into a classical state. Compared to the plain Metropolis
// Sampler this exercises the same programming/readout path but with the
// quantum-annealing-style dynamics the D-Wave processor family implements.
//
// The kernel stores all replicas in one flat replica-major spin array
// (slice k's spin i at k·n+i, as ±1.0 floats) with per-(replica,spin) local
// fields and per-replica classical energies maintained incrementally, so
// local moves are O(1) per proposal and readout is a tracked-energy argmin.
// Scratch buffers are reused across anneals; an SQASampler is NOT safe for
// concurrent use — use NewReader for parallel readout.
type SQASampler struct {
	prog *qubo.Compiled
	opts SQAOptions
	// jPerps is the precomputed per-sweep inter-replica coupling J⊥(Γ) of
	// the transverse-field schedule; hoisting the ln·tanh evaluation out of
	// the spin loop mirrors the classical sampler's betas table.
	jPerps []float64

	// Scratch, reused across anneals (allocation-free after warmup).
	reps     []float64 // replica-major spins as ±1.0, P·n
	fields   []float64 // local field of every (replica, spin), P·n
	energies []float64 // tracked classical energy of each replica, P
	staging  []int8    // one replica's spins for field initialization
	thr      []float64 // acceptance thresholds: P·|active| local + |active| global
}

// NewSQASampler compiles the hardware Ising model for repeated SQA runs.
func NewSQASampler(m *qubo.Ising, opts SQAOptions) *SQASampler {
	opts = opts.withDefaults(m)
	s := &SQASampler{prog: qubo.Compile(m), opts: opts}
	betaP := opts.Beta / float64(opts.Replicas)
	s.jPerps = make([]float64, opts.Sweeps)
	for sweep := range s.jPerps {
		frac := float64(sweep) / float64(max(1, opts.Sweeps-1))
		gamma := opts.Gamma0 + (opts.GammaEnd-opts.Gamma0)*frac
		s.jPerps[sweep] = -0.5 / betaP * math.Log(math.Tanh(betaP*gamma))
	}
	return s
}

// ActiveSpins returns the number of participating spins.
func (s *SQASampler) ActiveSpins() int { return len(s.prog.Active) }

// Replicas returns the Trotter slice count in use.
func (s *SQASampler) Replicas() int { return s.opts.Replicas }

// Program returns the compiled Ising program the sampler anneals.
func (s *SQASampler) Program() *qubo.Compiled { return s.prog }

// NewReader returns an independent single-goroutine annealing context
// sharing this sampler's compiled program and schedule.
func (s *SQASampler) NewReader() Annealer {
	c := *s
	c.reps, c.fields, c.energies, c.staging, c.thr = nil, nil, nil, nil, nil
	return &c
}

// Anneal performs one simulated quantum annealing run and returns the best
// replica's classical state and energy. The caller's rng contributes a
// single seed draw; the kernel runs on its own inline stream derived from
// it.
func (s *SQASampler) Anneal(rng *rand.Rand) ([]int8, float64) {
	return s.annealSeeded(rng.Int63())
}

func (s *SQASampler) annealSeeded(seed int64) ([]int8, float64) {
	out := make([]int8, s.prog.Dim())
	e := s.annealInto(out, seed)
	return out, e
}

// annealInto runs one SQA read into dst (len Dim), the zero-copy entry
// point of the collection arena.
func (s *SQASampler) annealInto(dst []int8, seed int64) float64 {
	kr := newKernelRand(seed)
	prog := s.prog
	n := prog.Dim()
	P := s.opts.Replicas
	invP := 1 / float64(P)

	if cap(s.reps) < P*n || cap(s.energies) < P {
		s.reps = make([]float64, P*n)
		s.fields = make([]float64, P*n)
		s.energies = make([]float64, P)
		s.staging = make([]int8, n)
		s.thr = make([]float64, (P+1)*len(s.prog.Active))
	}
	reps := s.reps[:P*n]
	fields := s.fields[:P*n]
	energies := s.energies[:P]
	staging := s.staging[:n]
	nAct := len(prog.Active)
	thrL := s.thr[:P*nAct]                          // local-move thresholds, one per (spin, slice)
	thrG := s.thr[P*nAct : (P+1)*nAct : (P+1)*nAct] // global world-line move thresholds

	// Random initial world lines; inactive spins frozen at +1. The kernel
	// works on ±1.0 floats (no int8 conversions in the sweep loops); the
	// int8 staging buffer only seeds the field/energy initialization.
	for k := 0; k < P; k++ {
		kn := k * n
		for i := range staging {
			staging[i] = 1
		}
		for _, i := range prog.Active {
			if kr.next()>>63 == 0 {
				staging[i] = -1
			}
		}
		prog.LocalFields(staging, fields[kn:kn+n])
		energies[k] = prog.EnergyFromFields(staging, fields[kn:kn+n])
		for i, sp := range staging {
			reps[kn+i] = float64(sp)
		}
	}

	invBeta := 1 / s.opts.Beta
	rowPtr, col, val := prog.RowPtr, prog.Col, prog.Val
	ring := P * n
	for _, jPerp := range s.jPerps {
		// One pre-generated acceptance threshold Exp(1)/β per proposal; the
		// single compare also covers downhill moves (thresholds are
		// positive), exactly as in the Metropolis kernel.
		kr.fillExp(thrL, invBeta)
		kr.fillExp(thrG, invBeta)

		// Local moves: one Metropolis pass over every (spin, slice). The
		// classical part of ΔE comes from the incremental field; the
		// transverse part from the two neighboring slices of the world line.
		for ii, i := range prog.Active {
			kup, kdn := n, (P-1)*n // offsets of slices k+1 and k−1 (mod P)
			if kup == ring {
				kup = 0 // P == 1: a world line is its own neighbor
			}
			ti := ii * P
			for k := 0; k < P; k++ {
				kn := k * n
				cur := reps[kn+int(i)]
				dCl := -2 * cur * fields[kn+int(i)]
				// ΔE_eff = ΔE_cl/P + 2·s·J⊥·(s_up + s_down)
				dE := dCl*invP + 2*cur*jPerp*(reps[kup+int(i)]+reps[kdn+int(i)])
				kdn = kn
				kup += n
				if kup == ring {
					kup = 0
				}
				if thrL[ti+k] <= dE {
					continue // rejected uphill move
				}
				reps[kn+int(i)] = -cur
				energies[k] += dCl
				d := -2 * cur
				for t := rowPtr[i]; t < rowPtr[i+1]; t++ {
					fields[kn+int(col[t])] += d * val[t]
				}
			}
		}

		// Global moves: flip a spin's entire world line (inter-replica terms
		// cancel, so only the classical energy changes). The per-replica
		// deltas are O(1) reads of the incremental fields.
		for ii, i := range prog.Active {
			dCl := 0.0
			for kn := 0; kn < P*n; kn += n {
				dCl += -2 * reps[kn+int(i)] * fields[kn+int(i)]
			}
			dCl *= invP
			if thrG[ii] <= dCl {
				continue // rejected uphill move
			}
			for k := 0; k < P; k++ {
				kn := k * n
				cur := reps[kn+int(i)]
				energies[k] += -2 * cur * fields[kn+int(i)]
				reps[kn+int(i)] = -cur
				d := -2 * cur
				for t := rowPtr[i]; t < rowPtr[i+1]; t++ {
					fields[kn+int(col[t])] += d * val[t]
				}
			}
		}
	}

	// Readout: the best replica (measurement collapses to one world line;
	// taking the best is the standard SQA convention for optimization). The
	// tracked energies make this an O(P) argmin plus one state copy.
	bestK := 0
	for k := 1; k < P; k++ {
		if energies[k] < energies[bestK] {
			bestK = k
		}
	}
	base := bestK * n
	for i := range dst {
		dst[i] = int8(reps[base+i]) // ±1.0 → ±1, branchless
	}
	return energies[bestK]
}

// Sample runs reads independent SQA anneals. Each read draws from its own
// RNG stream derived from one rng.Int63() call, so the returned set is
// identical to SampleParallel with any worker count.
func (s *SQASampler) Sample(reads int, rng *rand.Rand) *SampleSet {
	return s.SampleParallel(reads, 1, rng.Int63())
}

// SampleParallel runs reads independent SQA anneals across a bounded worker
// pool; see Sampler.SampleParallel for the determinism scheme. It panics on
// reads < 1 (use CollectParallel to get the error instead).
func (s *SQASampler) SampleParallel(reads, workers int, seed int64) *SampleSet {
	set, err := CollectParallel(s, s.prog.Dim(), reads, workers, seed)
	if err != nil {
		panic(err)
	}
	return set
}
