package anneal

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/splitexec/splitexec/internal/qubo"
)

// SQAOptions configure the simulated quantum annealing sampler.
type SQAOptions struct {
	// Replicas is the number of Trotter slices P (default 16).
	Replicas int
	// Sweeps is the number of annealing steps (default 64); the transverse
	// field decays linearly from Gamma0 to GammaEnd across them.
	Sweeps int
	// Beta is the inverse temperature of the quantum system (default
	// 10 / max|coefficient|).
	Beta float64
	// Gamma0 and GammaEnd bound the transverse-field schedule (defaults
	// 3×max|coefficient| → 0.01×).
	Gamma0, GammaEnd float64
}

func (o SQAOptions) withDefaults(m *qubo.Ising) SQAOptions {
	scale := m.MaxAbsCoefficient()
	if scale == 0 {
		scale = 1
	}
	if o.Replicas <= 0 {
		o.Replicas = 16
	}
	if o.Sweeps <= 0 {
		o.Sweeps = 64
	}
	if o.Beta <= 0 {
		o.Beta = 10 / scale
	}
	if o.Gamma0 <= 0 {
		o.Gamma0 = 3 * scale
	}
	if o.GammaEnd <= 0 {
		o.GammaEnd = 0.01 * scale
	}
	return o
}

// SQASampler approximates the adiabatic quantum dynamics of Eq. (1)/(2) by
// path-integral Monte Carlo: the transverse-field Ising system at inverse
// temperature β maps onto P coupled classical replicas ("Trotter slices"),
// with an inter-replica ferromagnetic coupling
//
//	J⊥(Γ) = -(1/2β_P)·ln tanh(β_P·Γ),   β_P = β/P,
//
// that stiffens as the transverse field Γ anneals toward zero, collapsing
// the world lines into a classical state. Compared to the plain Metropolis
// Sampler this exercises the same programming/readout path but with the
// quantum-annealing-style dynamics the D-Wave processor family implements.
type SQASampler struct {
	model  *qubo.Ising
	active []int
	adjIdx [][]int32
	adjJ   [][]float64
	opts   SQAOptions
}

// NewSQASampler compiles the hardware Ising model for repeated SQA runs.
func NewSQASampler(m *qubo.Ising, opts SQAOptions) *SQASampler {
	opts = opts.withDefaults(m)
	n := m.Dim()
	s := &SQASampler{
		model:  m,
		adjIdx: make([][]int32, n),
		adjJ:   make([][]float64, n),
		opts:   opts,
	}
	hasCoupling := make([]bool, n)
	for _, e := range m.Edges() {
		j := m.Coupling(e.U, e.V)
		s.adjIdx[e.U] = append(s.adjIdx[e.U], int32(e.V))
		s.adjJ[e.U] = append(s.adjJ[e.U], j)
		s.adjIdx[e.V] = append(s.adjIdx[e.V], int32(e.U))
		s.adjJ[e.V] = append(s.adjJ[e.V], j)
		hasCoupling[e.U], hasCoupling[e.V] = true, true
	}
	for i := 0; i < n; i++ {
		if m.H[i] != 0 || hasCoupling[i] {
			s.active = append(s.active, i)
		}
	}
	return s
}

// ActiveSpins returns the number of participating spins.
func (s *SQASampler) ActiveSpins() int { return len(s.active) }

// Replicas returns the Trotter slice count in use.
func (s *SQASampler) Replicas() int { return s.opts.Replicas }

// Anneal performs one simulated quantum annealing run and returns the best
// replica's classical state and energy.
func (s *SQASampler) Anneal(rng *rand.Rand) ([]int8, float64) {
	n := s.model.Dim()
	P := s.opts.Replicas
	betaP := s.opts.Beta / float64(P)

	// replica[k][i]: slice k of spin i. Inactive spins frozen at +1.
	replicas := make([][]int8, P)
	for k := range replicas {
		replicas[k] = make([]int8, n)
		for i := range replicas[k] {
			replicas[k][i] = 1
		}
		for _, i := range s.active {
			if rng.Intn(2) == 0 {
				replicas[k][i] = -1
			}
		}
	}

	for sweep := 0; sweep < s.opts.Sweeps; sweep++ {
		frac := float64(sweep) / float64(max(1, s.opts.Sweeps-1))
		gamma := s.opts.Gamma0 + (s.opts.GammaEnd-s.opts.Gamma0)*frac
		jPerp := -0.5 / betaP * math.Log(math.Tanh(betaP*gamma))

		// Local moves: one Metropolis pass over every (spin, slice).
		for _, i := range s.active {
			for k := 0; k < P; k++ {
				up := replicas[(k+1)%P][i]
				down := replicas[(k-1+P)%P][i]
				cur := replicas[k][i]
				local := s.model.H[i]
				idx, js := s.adjIdx[i], s.adjJ[i]
				for t, jn := range idx {
					local += js[t] * float64(replicas[k][jn])
				}
				// ΔE_eff = -2·s·[E_cl'/P − J⊥·(s_up + s_down)]
				dE := -2 * float64(cur) * (local/float64(P) - jPerp*float64(up+down))
				if dE <= 0 || rng.Float64() < math.Exp(-s.opts.Beta*dE) {
					replicas[k][i] = -cur
				}
			}
		}
		// Global moves: flip a spin's entire world line (inter-replica
		// terms cancel, so only the classical energy changes).
		for _, i := range s.active {
			dCl := 0.0
			for k := 0; k < P; k++ {
				local := s.model.H[i]
				idx, js := s.adjIdx[i], s.adjJ[i]
				for t, jn := range idx {
					local += js[t] * float64(replicas[k][jn])
				}
				dCl += -2 * float64(replicas[k][i]) * local
			}
			dCl /= float64(P)
			if dCl <= 0 || rng.Float64() < math.Exp(-s.opts.Beta*dCl) {
				for k := 0; k < P; k++ {
					replicas[k][i] = -replicas[k][i]
				}
			}
		}
	}

	// Readout: the best replica (measurement collapses to one world line;
	// taking the best is the standard SQA convention for optimization).
	bestE := math.Inf(1)
	var best []int8
	for k := 0; k < P; k++ {
		if e := s.model.Energy(replicas[k]); e < bestE {
			bestE = e
			best = replicas[k]
		}
	}
	out := append([]int8(nil), best...)
	return out, bestE
}

// Sample runs reads independent SQA anneals.
func (s *SQASampler) Sample(reads int, rng *rand.Rand) *SampleSet {
	set := NewSampleSet(s.model.Dim())
	for r := 0; r < reads; r++ {
		spins, e := s.Anneal(rng)
		set.Add(spins, e)
	}
	return set
}

// Annealer is any single-shot sampler over an Ising program: the classical
// Sampler and the quantum SQASampler both satisfy it.
type Annealer interface {
	Anneal(rng *rand.Rand) ([]int8, float64)
}

// Collect runs reads independent anneals of a on a model of dimension dim.
func Collect(a Annealer, dim, reads int, rng *rand.Rand) (*SampleSet, error) {
	if reads < 1 {
		return nil, fmt.Errorf("anneal: reads = %d, need >= 1", reads)
	}
	set := NewSampleSet(dim)
	for r := 0; r < reads; r++ {
		spins, e := a.Anneal(rng)
		set.Add(spins, e)
	}
	return set, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
