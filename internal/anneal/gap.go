package anneal

import (
	"fmt"
	"math"
	"sort"

	"github.com/splitexec/splitexec/internal/qubo"
	"github.com/splitexec/splitexec/internal/schedule"
)

// EstimateGap builds a schedule.GapModel for an Ising instance from its
// classical energy spectrum, by exhaustive enumeration (feasible to ~20
// spins). The paper (§3.2) ties the single-run success probability to "the
// internal energy structure of the Ising Hamiltonian"; the true quantity is
// the minimum *quantum* gap of the interpolating Hamiltonian, which is
// exponentially hard to compute, so this uses the standard classical proxy:
// the spacing between the ground and first-excited classical levels,
// normalized by the spectral width. Instances whose low-energy levels
// crowd together (spin glasses) map to small model gaps and hence low ps;
// well-separated spectra (ferromagnets, strongly-penalized encodings) map
// to large gaps. The gap position is fixed at the late-anneal value of
// schedule.DefaultGap, where hard instances bottleneck.
func EstimateGap(m *qubo.Ising) (schedule.GapModel, error) {
	n := m.Dim()
	if n < 1 {
		return schedule.GapModel{}, fmt.Errorf("anneal: empty model")
	}
	if n > 22 {
		return schedule.GapModel{}, fmt.Errorf("anneal: %d spins too large for exhaustive gap estimation", n)
	}
	energies := make([]float64, 0, 1<<uint(n))
	spins := make([]int8, n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		for i := 0; i < n; i++ {
			if mask>>uint(i)&1 == 1 {
				spins[i] = 1
			} else {
				spins[i] = -1
			}
		}
		energies = append(energies, m.Energy(spins))
	}
	sort.Float64s(energies)
	e0 := energies[0]
	width := energies[len(energies)-1] - e0
	if width <= 0 {
		return schedule.GapModel{}, fmt.Errorf("anneal: flat spectrum, gap undefined")
	}
	// First strictly higher level.
	e1 := math.NaN()
	const tol = 1e-12
	for _, e := range energies[1:] {
		if e > e0+tol*math.Max(1, math.Abs(e0)) {
			e1 = e
			break
		}
	}
	if math.IsNaN(e1) {
		return schedule.GapModel{}, fmt.Errorf("anneal: fully degenerate spectrum, gap undefined")
	}
	gap := (e1 - e0) / width
	pos := schedule.DefaultGap().Position
	g := schedule.GapModel{MinGap: gap, Position: pos}
	if err := g.Validate(); err != nil {
		return schedule.GapModel{}, err
	}
	return g, nil
}
