package anneal

import (
	"math"
	"math/rand"
	"testing"

	"github.com/splitexec/splitexec/internal/qubo"
	"github.com/splitexec/splitexec/internal/schedule"
)

func TestEstimateGapFerromagnetExact(t *testing.T) {
	// 4-ring ferromagnet: E0 = -4 (aligned), E1 = 0 (one domain wall pair),
	// Emax = +4 (odd... fully frustrated alternation violates all 4 edges).
	m := qubo.NewIsing(4)
	for i := 0; i < 4; i++ {
		m.SetCoupling(i, (i+1)%4, -1)
	}
	g, err := EstimateGap(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.MinGap-0.5) > 1e-9 {
		t.Fatalf("MinGap = %v, want (0-(-4))/(4-(-4)) = 0.5", g.MinGap)
	}
	if g.Position != schedule.DefaultGap().Position {
		t.Fatalf("Position = %v", g.Position)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateGapGlassSmallerThanFerromagnet(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ferro := qubo.NewIsing(8)
	for i := 0; i < 8; i++ {
		ferro.SetCoupling(i, (i+1)%8, -1)
	}
	gF, err := EstimateGap(ferro)
	if err != nil {
		t.Fatal(err)
	}
	// A random glass over the same ring: continuous couplings crowd the
	// low-energy spectrum, shrinking the normalized gap.
	glass := qubo.NewIsing(8)
	for i := 0; i < 8; i++ {
		glass.H[i] = rng.NormFloat64() * 0.3
		glass.SetCoupling(i, (i+1)%8, rng.NormFloat64())
	}
	gG, err := EstimateGap(glass)
	if err != nil {
		t.Fatal(err)
	}
	if gG.MinGap >= gF.MinGap {
		t.Fatalf("glass gap %v not smaller than ferromagnet %v", gG.MinGap, gF.MinGap)
	}
}

func TestEstimateGapDrivesSchedulePlanning(t *testing.T) {
	// The whole point: instance → gap → ps → Eq. 6 reads. A harder instance
	// must plan a longer optimal anneal.
	easy := qubo.NewIsing(6)
	for i := 0; i < 6; i++ {
		easy.SetCoupling(i, (i+1)%6, -1)
	}
	// Near-degenerate by construction: a tiny field on one spin of the same
	// ring splits the doubly-degenerate ground state by only 2·h, so the
	// normalized gap collapses.
	hard := easy.Clone()
	hard.H[0] = 0.05
	gEasy, err := EstimateGap(easy)
	if err != nil {
		t.Fatal(err)
	}
	gHard, err := EstimateGap(hard)
	if err != nil {
		t.Fatal(err)
	}
	lim := schedule.DW2Limits()
	bestEasy, _, err := schedule.OptimalAnnealTime(gEasy, 0.99, lim, 0)
	if err != nil {
		t.Fatal(err)
	}
	bestHard, _, err := schedule.OptimalAnnealTime(gHard, 0.99, lim, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bestHard < bestEasy {
		t.Fatalf("harder instance planned shorter anneal: %v < %v", bestHard, bestEasy)
	}
}

func TestEstimateGapErrors(t *testing.T) {
	if _, err := EstimateGap(qubo.NewIsing(0)); err == nil {
		t.Fatal("empty model accepted")
	}
	if _, err := EstimateGap(qubo.NewIsing(23)); err == nil {
		t.Fatal("oversized model accepted")
	}
	// All-zero model: flat spectrum.
	if _, err := EstimateGap(qubo.NewIsing(3)); err == nil {
		t.Fatal("flat spectrum accepted")
	}
}
