package anneal

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/qubo"
)

// The incremental kernel maintains local fields and a running energy across
// thousands of accepted flips; both must agree with the from-scratch
// reference (Ising.Energy) to float precision at readout.

func TestMetropolisTrackedEnergyMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		g := graph.GNP(24, 0.3, rng)
		m := qubo.RandomIsing(g, 1, 1, rng)
		m.Offset = rng.NormFloat64()
		// 256 sweeps × ~24 active spins ≈ 6k proposals per anneal.
		s := NewSampler(m, SamplerOptions{Sweeps: 256})
		for r := 0; r < 4; r++ {
			spins, tracked := s.Anneal(rng)
			if ref := m.Energy(spins); math.Abs(tracked-ref) > 1e-9 {
				t.Fatalf("trial %d read %d: tracked energy %v, reference %v", trial, r, tracked, ref)
			}
		}
		// The in-place path must track identically.
		spins := make([]int8, m.Dim())
		for i := range spins {
			spins[i] = int8(2*(i%2) - 1)
		}
		tracked := s.AnnealFrom(spins, rng)
		if ref := m.Energy(spins); math.Abs(tracked-ref) > 1e-9 {
			t.Fatalf("trial %d AnnealFrom: tracked %v, reference %v", trial, tracked, ref)
		}
	}
}

func TestSQATrackedEnergyMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 3; trial++ {
		g := graph.GNP(12, 0.4, rng)
		m := qubo.RandomIsing(g, 1, 1, rng)
		m.Offset = rng.NormFloat64()
		// 128 sweeps × 8 replicas × ~12 spins ≈ 12k local proposals.
		s := NewSQASampler(m, SQAOptions{Sweeps: 128, Replicas: 8})
		for r := 0; r < 3; r++ {
			spins, tracked := s.Anneal(rng)
			if ref := m.Energy(spins); math.Abs(tracked-ref) > 1e-9 {
				t.Fatalf("trial %d read %d: tracked energy %v, reference %v", trial, r, tracked, ref)
			}
		}
	}
}

// Readout fan-out determinism: a fixed seed must produce byte-identical
// sample sets at every worker count, for both substrates. Run with -race to
// also certify the reader pool.
func TestExecuteParallelByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := graph.Chimera{M: 2, N: 2, L: 4}.Graph()
	m := qubo.RandomIsing(g, 1, 1, rng)

	for name, mk := range map[string]func() *Device{
		"metropolis": func() *Device { return NewDevice(DW2Timings(), SamplerOptions{Sweeps: 32}) },
		"sqa":        func() *Device { return NewQuantumDevice(DW2Timings(), SQAOptions{Sweeps: 16, Replicas: 4}) },
	} {
		var want *SampleSet
		for _, workers := range []int{1, 4, 3} {
			d := mk()
			d.Workers = workers
			d.Program(m)
			set, err := d.Execute(32, rand.New(rand.NewSource(99)))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if want == nil {
				want = set
				continue
			}
			if !reflect.DeepEqual(want.Samples, set.Samples) {
				t.Fatalf("%s: workers=%d readout differs from workers=1", name, workers)
			}
		}
	}
}

func TestCollectParallelMatchesCollect(t *testing.T) {
	m := ferroChain(10)
	s := NewSampler(m, SamplerOptions{Sweeps: 16})
	serial, err := Collect(s, 10, 20, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	// Collect seeds with the rng's first Int63; reproduce it.
	par, err := CollectParallel(s, 10, 20, 4, rand.New(rand.NewSource(5)).Int63())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Samples, par.Samples) {
		t.Fatal("parallel collection differs from serial for the same seed")
	}
}

// Success-rate regression: on a small frustrated model with a known ground
// state, the SQA substrate must stay a working optimizer. The bound is far
// below its measured rate (~0.75 on comparable models) but far above noise.
func TestSQASuccessRateRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := graph.Complete(6)
	m := qubo.RandomIsing(g, 1, 1, rng)
	_, ground := m.BruteForce()
	s := NewSQASampler(m, SQAOptions{Sweeps: 64, Replicas: 8})
	set := s.Sample(60, rng)
	if rate := set.SuccessRate(ground, 1e-9); rate < 0.3 {
		t.Fatalf("SQA success rate %v below regression floor 0.3", rate)
	}
}

// The serial hot path must be allocation-free after warmup: scratch buffers
// (fields, replicas, energies) belong to the sampler, not the anneal call.
func TestAnnealFromAllocationFree(t *testing.T) {
	m := ferroChain(32)
	s := NewSampler(m, SamplerOptions{Sweeps: 32})
	rng := rand.New(rand.NewSource(15))
	spins := make([]int8, m.Dim())
	s.AnnealFrom(spins, rng) // warmup
	if n := testing.AllocsPerRun(20, func() { s.AnnealFrom(spins, rng) }); n > 0 {
		t.Fatalf("AnnealFrom allocates %v times per run after warmup", n)
	}
}

// A reader shares the compiled program but not scratch: same seed, same
// output as its parent, and usable concurrently with it.
func TestNewReaderMatchesParent(t *testing.T) {
	m := ferroChain(12)
	for _, a := range []interface {
		Annealer
		ReaderFactory
	}{
		NewSampler(m, SamplerOptions{Sweeps: 32}),
		NewSQASampler(m, SQAOptions{Sweeps: 16, Replicas: 4}),
	} {
		s1, e1 := a.Anneal(rand.New(rand.NewSource(21)))
		s2, e2 := a.NewReader().Anneal(rand.New(rand.NewSource(21)))
		if e1 != e2 || !reflect.DeepEqual(s1, s2) {
			t.Fatalf("%T: reader diverged from parent for the same seed", a)
		}
	}
}

// The ziggurat exponential sampler underpins every acceptance test; pin its
// first two moments and median against Exp(1).
func TestKernelRandExpFloat64Moments(t *testing.T) {
	kr := newKernelRand(42)
	const N = 2_000_000
	var sum, sumSq float64
	below := 0
	for i := 0; i < N; i++ {
		x := kr.expFloat64()
		if x < 0 {
			t.Fatal("negative exponential variate")
		}
		sum += x
		sumSq += x * x
		if x < math.Ln2 {
			below++
		}
	}
	mean := sum / N
	variance := sumSq/N - mean*mean
	median := float64(below) / N
	if math.Abs(mean-1) > 0.005 || math.Abs(variance-1) > 0.02 || math.Abs(median-0.5) > 0.005 {
		t.Fatalf("Exp(1) moments off: mean %v, var %v, P(x<ln2) %v", mean, variance, median)
	}
}

func TestSampleSetAddOwnedAndCapacity(t *testing.T) {
	ss := NewSampleSetWithCapacity(2, 8)
	if cap(ss.Samples) != 8 || ss.Len() != 0 {
		t.Fatalf("capacity set wrong: cap=%d len=%d", cap(ss.Samples), ss.Len())
	}
	spins := []int8{1, -1}
	ss.AddOwned(spins, 3)
	spins[0] = -1 // AddOwned transfers ownership: the set sees the mutation
	if ss.Samples[0].Spins[0] != -1 {
		t.Fatal("AddOwned copied the slice")
	}
	defer func() {
		if recover() == nil {
			t.Error("AddOwned dim mismatch did not panic")
		}
	}()
	ss.AddOwned([]int8{1}, 0)
}

// Regression: the replica-ring offsets must handle the degenerate shapes the
// old modulo arithmetic accepted — a single Trotter slice (its own world-line
// neighbor) and zero-dimension programs.
func TestSQADegenerateShapes(t *testing.T) {
	spins, e := NewSQASampler(ferroChain(6), SQAOptions{Sweeps: 16, Replicas: 1}).
		Anneal(rand.New(rand.NewSource(1)))
	if len(spins) != 6 || e > 0 {
		t.Fatalf("Replicas=1: spins=%v e=%v", spins, e)
	}
	empty, e := NewSQASampler(qubo.NewIsing(0), SQAOptions{Sweeps: 4, Replicas: 4}).
		Anneal(rand.New(rand.NewSource(2)))
	if len(empty) != 0 || e != 0 {
		t.Fatalf("dim=0: spins=%v e=%v", empty, e)
	}
}
