package anneal

import (
	"math"
	"math/bits"

	"github.com/splitexec/splitexec/internal/parallel"
)

// kernelRand is the annealing kernels' inline RNG: an xoshiro256+ state with
// a ziggurat exponential sampler. The Metropolis acceptance test
//
//	u < exp(−βΔE)  ⇔  Exp(1) > βΔE
//
// needs one standard-exponential variate per uphill proposal; drawing it
// through math/rand's Source interface (and its math.Exp fallback-heavy
// ziggurat wrapper) costs several indirect calls per proposal, which
// profiles as ~a third of kernel time. kernelRand is a value type — no
// allocation per read — whose methods inline into the sweep loop.
// xoshiro256+ is chosen for output latency: the result is one add from
// resident state (the permutation retires off the critical path), so the
// acceptance compare is not serialized behind a multi-multiply finalizer.
// Its weak low bits are never used — the kernels consume the top 32 bits.
type kernelRand struct{ s0, s1, s2, s3 uint64 }

// newKernelRand expands a seed into xoshiro256+ state through the standard
// splitmix64 initializer (which also guarantees a nonzero state).
func newKernelRand(seed int64) kernelRand {
	sm := uint64(seed)
	return kernelRand{
		s0: parallel.SplitMix64(&sm),
		s1: parallel.SplitMix64(&sm),
		s2: parallel.SplitMix64(&sm),
		s3: parallel.SplitMix64(&sm),
	}
}

func (r *kernelRand) next() uint64 {
	result := r.s0 + r.s3
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

func (r *kernelRand) uint32() uint32 { return uint32(r.next() >> 32) }

// float64v returns a uniform draw in [0, 1).
func (r *kernelRand) float64v() float64 { return float64(r.next()>>11) / (1 << 53) }

// expFloat64 returns a standard-exponential variate by the Marsaglia–Tsang
// ziggurat method (256 layers; tables computed at init). The fast path is
// one 32-bit draw, one table compare and one multiply; the wedge and tail
// paths (≈2% of draws) fall back to exact log/exp evaluation. The kernels
// inline the fast path at the call site and only call expSlowPath on a
// fast-path miss.
func (r *kernelRand) expFloat64() float64 {
	j := r.uint32()
	i := j & 0xFF
	if j < zigKE[i] {
		return float64(j) * zigWE[i]
	}
	return r.expSlowPath(j)
}

// expSlowPath finishes an exponential draw whose first 32-bit sample j
// missed the ziggurat fast path: resolve j's wedge or tail, then keep
// sampling layers until one accepts.
func (r *kernelRand) expSlowPath(j uint32) float64 {
	for {
		i := j & 0xFF
		x := float64(j) * zigWE[i]
		if j < zigKE[i] {
			return x
		}
		if i == 0 {
			// Tail beyond R: Exp(1) conditioned on > R is R + Exp(1). The
			// uniform is bounded away from 1 by float resolution, so the
			// result is finite (at most R − ln(2⁻⁵³) ≈ 44.44).
			return zigR - math.Log(1-r.float64v())
		}
		if zigFE[i]+r.float64v()*(zigFE[i-1]-zigFE[i]) < math.Exp(-x) {
			return x
		}
		j = r.uint32()
	}
}

// fillExp bulk-generates scaled standard-exponential variates (Exp(1)·scale).
// The xoshiro state stays in locals (registers) and the ziggurat fast path
// is inline, so the fill pipelines at a few ns per variate; only the rare
// wedge/tail draws leave the loop, syncing state around the call. The
// annealing kernels top up their acceptance-threshold buffers with this
// between sweeps, keeping the sweep loops themselves call-free.
func (r *kernelRand) fillExp(dst []float64, scale float64) {
	x0, x1, x2, x3 := r.s0, r.s1, r.s2, r.s3
	for t := range dst {
		u := x0 + x3
		lt := x1 << 17
		x2 ^= x0
		x3 ^= x1
		x1 ^= x2
		x0 ^= x3
		x2 ^= lt
		x3 = bits.RotateLeft64(x3, 45)
		j := uint32(u >> 32)
		zi := j & 0xFF
		if j < zigKE[zi] {
			dst[t] = float64(j) * zigWE[zi] * scale
			continue
		}
		r.s0, r.s1, r.s2, r.s3 = x0, x1, x2, x3
		dst[t] = r.expSlowPath(j) * scale
		x0, x1, x2, x3 = r.s0, r.s1, r.s2, r.s3
	}
	r.s0, r.s1, r.s2, r.s3 = x0, x1, x2, x3
}

// zigR is the rightmost layer boundary of the 256-layer exponential
// ziggurat; zigV the common layer area (Marsaglia & Tsang 2000).
const (
	zigR = 7.697117470131487
	zigV = 3.949659822581572e-3
)

var (
	zigKE [256]uint32  // fast-path acceptance thresholds on the raw draw
	zigWE [256]float64 // draw → x scale per layer
	zigFE [256]float64 // exp(−x_i) layer ordinates
)

func init() {
	const m2 = 1 << 32
	de, te := zigR, zigR
	q := zigV / math.Exp(-de)
	zigKE[0] = uint32(de / q * m2)
	zigKE[1] = 0
	zigWE[0] = q / m2
	zigWE[255] = de / m2
	zigFE[0] = 1
	zigFE[255] = math.Exp(-de)
	for i := 254; i >= 1; i-- {
		de = -math.Log(zigV/de + math.Exp(-de))
		zigKE[i+1] = uint32(de / te * m2)
		te = de
		zigFE[i] = math.Exp(-de)
		zigWE[i] = de / m2
	}
}
