package anneal

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/splitexec/splitexec/internal/parallel"
)

// Annealer is any single-shot sampler over an Ising program: the classical
// Sampler and the quantum SQASampler both satisfy it.
type Annealer interface {
	Anneal(rng *rand.Rand) ([]int8, float64)
}

// ReaderFactory is satisfied by annealers that can mint independent
// single-goroutine readers over their (shared, immutable) compiled program.
// CollectParallel requires it to run reads on more than one worker, because
// the samplers' scratch buffers make a single instance non-reentrant.
type ReaderFactory interface {
	NewReader() Annealer
}

// intoAnnealer is the in-package fast path: the compiled kernels accept a
// bare seed and a destination slice, running on their inline RNG with no
// per-read *rand.Rand construction or result allocation. Collection carves
// destinations out of one arena per call, so a whole Execute costs O(1)
// allocations regardless of the read count.
type intoAnnealer interface {
	annealInto(dst []int8, seed int64) float64
}

// annealRead runs one read of a on its own derived stream into dst when the
// kernel supports it (dst is the read's arena slot), falling back to the
// public Anneal contract otherwise.
func annealRead(a Annealer, dst []int8, seed int64) ([]int8, float64) {
	if sa, ok := a.(intoAnnealer); ok {
		e := sa.annealInto(dst, seed)
		return dst, e
	}
	return a.Anneal(parallel.NewRand(seed))
}

// wordAnnealer is the multi-spin fast path: annealers that run 64 packed
// replicas per call (Sampler with SamplerOptions.BitParallel). The work
// unit of collection becomes the 64-replica word: word w fills reads
// [64w, 64w+63] from the stream parallel.DeriveSeed(seed, w).
type wordAnnealer interface {
	wordParallel() bool
	annealWordInto(arena []int8, dim, count int, seed int64, energies []float64)
}

// collectWords fans words (not reads) across the worker pool. Read r still
// always lands in slot r with a seed derived from its word index alone, so
// the set is byte-identical at every worker count, and read prefixes are
// stable across read counts just as in the scalar path.
func collectWords(a Annealer, dim, reads, workers int, seed int64) *SampleSet {
	numWords := (reads + wordReplicas - 1) / wordReplicas
	samples := make([]Sample, reads)
	arena := make([]int8, reads*dim)
	energies := make([]float64, reads)
	runWord := func(wd int, rd wordAnnealer) {
		lo := wd * wordReplicas
		count := min(wordReplicas, reads-lo)
		rd.annealWordInto(arena[lo*dim:(lo+count)*dim], dim, count,
			parallel.DeriveSeed(seed, wd), energies[lo:lo+count])
	}
	factory, reentrant := a.(ReaderFactory)
	if workers <= 1 || numWords == 1 || !reentrant {
		wa := a.(wordAnnealer)
		for wd := 0; wd < numWords; wd++ {
			runWord(wd, wa)
		}
	} else {
		var pool sync.Pool
		pool.New = func() any { return factory.NewReader() }
		_ = parallel.ForEach(numWords, workers, func(wd int) error {
			rd := pool.Get().(Annealer)
			runWord(wd, rd.(wordAnnealer))
			pool.Put(rd)
			return nil
		})
	}
	for r := range samples {
		samples[r] = Sample{Spins: arena[r*dim : (r+1)*dim : (r+1)*dim], Energy: energies[r]}
	}
	return &SampleSet{Dim: dim, Samples: samples}
}

// Collect runs reads independent anneals of a on a model of dimension dim.
// One rng.Int63() draw seeds the whole collection; each read then uses its
// own derived stream, so the result equals CollectParallel at any worker
// count with that seed.
func Collect(a Annealer, dim, reads int, rng *rand.Rand) (*SampleSet, error) {
	return CollectParallel(a, dim, reads, 1, rng.Int63())
}

// CollectParallel runs reads independent anneals across a bounded worker
// pool (workers <= 1, or an annealer without NewReader, runs serially on the
// calling goroutine). Determinism scheme: read r always draws from the RNG
// stream parallel.DeriveSeed(seed, r) and lands in slot r of the returned
// set, so the output is byte-identical for every worker count and
// completion order. Workers take scratch-carrying readers from a pool, so
// steady-state collection does not allocate kernels.
func CollectParallel(a Annealer, dim, reads, workers int, seed int64) (*SampleSet, error) {
	if reads < 1 {
		return nil, fmt.Errorf("anneal: reads = %d, need >= 1", reads)
	}
	if wa, ok := a.(wordAnnealer); ok && wa.wordParallel() {
		return collectWords(a, dim, reads, workers, seed), nil
	}
	samples := make([]Sample, reads)
	arena := make([]int8, reads*dim)
	factory, reentrant := a.(ReaderFactory)
	if workers <= 1 || reads == 1 || !reentrant {
		for r := range samples {
			dst := arena[r*dim : (r+1)*dim : (r+1)*dim]
			spins, e := annealRead(a, dst, parallel.DeriveSeed(seed, r))
			samples[r] = Sample{Spins: spins, Energy: e}
		}
	} else {
		var pool sync.Pool
		pool.New = func() any { return factory.NewReader() }
		_ = parallel.ForEach(reads, workers, func(r int) error {
			rd := pool.Get().(Annealer)
			dst := arena[r*dim : (r+1)*dim : (r+1)*dim]
			spins, e := annealRead(rd, dst, parallel.DeriveSeed(seed, r))
			pool.Put(rd)
			samples[r] = Sample{Spins: spins, Energy: e}
			return nil
		})
	}
	// The samples slice is exactly the set's backing store; adopt it
	// rather than re-appending read by read.
	return &SampleSet{Dim: dim, Samples: samples}, nil
}
