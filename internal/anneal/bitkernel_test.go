package anneal

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/qubo"
)

// randomContinuousIsing builds a bounded-degree model with Gaussian
// couplings and biases — integrality never holds, so a BitParallel sampler
// on it exercises the float word kernel rather than the bit-sliced one.
func randomContinuousIsing(g *graph.Graph, rng *rand.Rand) *qubo.Ising {
	m := qubo.RandomIsing(g, 1, 1, rng)
	for i := range m.H {
		m.H[i] = rng.NormFloat64()
	}
	for e := range m.J {
		m.J[e] = rng.NormFloat64()
	}
	return m
}

// unpackReplica extracts replica r of the packed word state as ±1 spins.
func unpackReplica(words []uint64, r int) []int8 {
	spins := make([]int8, len(words))
	for i, w := range words {
		spins[i] = int8(int(w>>uint(r)&1)<<1 - 1)
	}
	return spins
}

// The multi-spin kernels consume the RNG stream exactly like the scalar
// kernel — one draw per active spin at init, then the per-sweep threshold
// stream — and replica r's initial spin is bit r of the init draw. Replica
// 63 therefore reads the same initial state AND the same thresholds as a
// scalar anneal from the same seed, and must reproduce its trajectory
// spin-for-spin. This covers both word kernels: the ±J Chimera model runs
// bit-sliced, the continuous-coupling models run the float word kernel
// (fixed-width on bounded degree, CSR above it).
func TestBitParallelReplica63MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	models := map[string]*qubo.Ising{
		"chimera-pm1":     qubo.RandomIsing(graph.Chimera{M: 2, N: 2, L: 4}.Graph(), 1, 1, rng),
		"continuous-fw":   randomContinuousIsing(graph.Chimera{M: 2, N: 2, L: 4}.Graph(), rng),
		"continuous-csr":  randomContinuousIsing(graph.GNP(24, 0.6, rng), rng), // degree > 8: CSR fallback
		"biased-integers": qubo.RandomIsing(graph.GNP(16, 0.3, rng), 1, 1, rng),
	}
	for name, m := range models {
		bit := NewSampler(m, SamplerOptions{Sweeps: 96, BitParallel: true})
		sc := NewSampler(m, SamplerOptions{Sweeps: 96})
		switch name {
		case "chimera-pm1", "biased-integers":
			if !bit.bit.intOK {
				t.Fatalf("%s: expected bit-sliced integer kernel", name)
			}
		case "continuous-csr":
			if bit.bit.intOK || bit.bit.cols != nil {
				t.Fatalf("%s: expected float CSR fallback", name)
			}
		default:
			if bit.bit.intOK || bit.bit.cols == nil {
				t.Fatalf("%s: expected float fixed-width kernel", name)
			}
		}
		dim := m.Dim()
		for _, seed := range []int64{1, 7, 424242} {
			arena := make([]int8, wordReplicas*dim)
			energies := make([]float64, wordReplicas)
			bit.annealWordInto(arena, dim, wordReplicas, seed, energies)

			ref := make([]int8, dim)
			refE := sc.annealInto(ref, seed)
			got := arena[63*dim : 64*dim]
			if !slices.Equal(got, ref) {
				t.Fatalf("%s seed %d: replica 63 diverged from scalar kernel", name, seed)
			}
			// The scalar kernel tracks energy incrementally across the
			// anneal; the word kernels evaluate it from the final fields.
			// Same value, different float accumulation order.
			if math.Abs(energies[63]-refE) > 1e-8 {
				t.Fatalf("%s seed %d: replica 63 energy %v, scalar %v", name, seed, energies[63], refE)
			}
			if refC := m.Energy(got); math.Abs(energies[63]-refC) > 1e-8 {
				t.Fatalf("%s seed %d: energy %v, recomputed %v", name, seed, energies[63], refC)
			}
		}
	}
}

// Every replica — not just 63 — must follow the scalar dynamics exactly:
// given the word kernel's initial state for replica r and the shared
// threshold stream (the kernelRand state right after init), the scalar
// kernel must visit the same final spin state. This is the property that
// pins the shared-threshold trade as exactly per-replica Metropolis.
func TestBitParallelAllReplicasMatchScalarTrajectories(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	models := map[string]*qubo.Ising{
		"chimera-pm1": qubo.RandomIsing(graph.Chimera{M: 2, N: 2, L: 4}.Graph(), 1, 1, rng),
		"continuous":  randomContinuousIsing(graph.Chimera{M: 2, N: 2, L: 4}.Graph(), rng),
	}
	for name, m := range models {
		bit := NewSampler(m, SamplerOptions{Sweeps: 48, BitParallel: true})
		sc := NewSampler(m, SamplerOptions{Sweeps: 48})
		dim := m.Dim()
		const seed = 99
		arena := make([]int8, wordReplicas*dim)
		energies := make([]float64, wordReplicas)
		bit.annealWordInto(arena, dim, wordReplicas, seed, energies)

		// Reconstruct the post-init RNG state and initial packed words the
		// word kernel saw (bitInitWords is deterministic in the seed).
		kr := newKernelRand(seed)
		words := make([]uint64, dim)
		for i := range words {
			words[i] = ^uint64(0)
		}
		for _, i := range bit.prog.Active {
			words[i] = kr.next()
		}
		for r := 0; r < wordReplicas; r++ {
			spins := unpackReplica(words, r)
			krr := kr // value copy: every replica replays the same threshold stream
			sc.run(spins, &krr)
			if !slices.Equal(spins, arena[r*dim:(r+1)*dim]) {
				t.Fatalf("%s: replica %d diverged from scalar trajectory", name, r)
			}
		}
	}
}

// On qualifying ±J programs the bit-sliced and float word kernels must be
// interchangeable to the byte: same spins and bit-identical energies (all
// arithmetic on these models is exact integer work in both).
func TestBitSlicedMatchesFloatWordKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	m := qubo.RandomIsing(graph.Chimera{M: 3, N: 3, L: 4}.Graph(), 1, 1, rng)
	intS := NewSampler(m, SamplerOptions{Sweeps: 64, BitParallel: true})
	if !intS.bit.intOK {
		t.Fatal("expected bit-sliced kernel on a ±J Chimera program")
	}
	fltS := NewSampler(m, SamplerOptions{Sweeps: 64, BitParallel: true})
	// Force the general float word kernel on the same program.
	fltS.bit = bitState{built: true}
	fltS.bit.cols, fltS.bit.vals, fltS.bit.width, _ = fltS.prog.FixedWidth(bitMaxWidth)

	dim := m.Dim()
	for _, seed := range []int64{3, 1729} {
		aInt := make([]int8, wordReplicas*dim)
		eInt := make([]float64, wordReplicas)
		intS.annealWordInto(aInt, dim, wordReplicas, seed, eInt)
		aFlt := make([]int8, wordReplicas*dim)
		eFlt := make([]float64, wordReplicas)
		fltS.annealWordInto(aFlt, dim, wordReplicas, seed, eFlt)
		if !slices.Equal(aInt, aFlt) {
			t.Fatalf("seed %d: bit-sliced and float word kernels disagree on spins", seed)
		}
		for r := range eInt {
			if eInt[r] != eFlt[r] {
				t.Fatalf("seed %d replica %d: energies %v != %v", seed, r, eInt[r], eFlt[r])
			}
		}
	}
}

// The parallel-collection contract carries over to word collection: byte-
// identical SampleSets at every worker count, including a partial trailing
// word (reads not a multiple of 64), and read prefixes stable across read
// counts.
func TestBitParallelCollectDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for name, m := range map[string]*qubo.Ising{
		"pm1":        qubo.RandomIsing(graph.Chimera{M: 2, N: 2, L: 4}.Graph(), 1, 1, rng),
		"continuous": randomContinuousIsing(graph.Chimera{M: 2, N: 2, L: 4}.Graph(), rng),
	} {
		s := NewSampler(m, SamplerOptions{Sweeps: 32, BitParallel: true})
		const seed, reads = 7, 130 // 2 full words + 2 reads of a third
		ref := s.SampleParallel(reads, 1, seed)
		for _, workers := range []int{2, 3, 8} {
			got := s.SampleParallel(reads, workers, seed)
			if len(got.Samples) != reads {
				t.Fatalf("%s workers=%d: %d samples", name, workers, len(got.Samples))
			}
			for r := range ref.Samples {
				if !slices.Equal(got.Samples[r].Spins, ref.Samples[r].Spins) ||
					got.Samples[r].Energy != ref.Samples[r].Energy {
					t.Fatalf("%s workers=%d: read %d differs", name, workers, r)
				}
			}
		}
		// Prefix stability: fewer reads must reproduce the same prefix.
		short := s.SampleParallel(70, 4, seed)
		for r := range short.Samples {
			if !slices.Equal(short.Samples[r].Spins, ref.Samples[r].Spins) {
				t.Fatalf("%s: read %d changed when the read count shrank", name, r)
			}
		}
	}
}

// Fig. 9's observable is the per-read ground-state hit probability; the
// word kernels must leave it statistically unchanged from the scalar
// kernel. Each replica's marginal law is exactly scalar Metropolis (pinned
// bit-for-bit by the trajectory tests above), but replicas within a word
// share acceptance thresholds and are therefore positively correlated, so
// the bit-side estimate is binomial only at the WORD level. The bound
// below uses the worst case — whole words perfectly correlated — giving
// standard error √(p(1−p)(1/n + 1/W)) for the gap; 5σ keeps the test
// deterministic-in-practice while catching gross dynamics regressions.
func TestBitParallelSuccessRateParity(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	m := qubo.RandomIsing(graph.Chimera{M: 1, N: 1, L: 4}.Graph(), 1, 1, rng)
	_, e0 := m.BruteForce()
	const words = 384
	const reads = words * wordReplicas
	hit := func(set *SampleSet) float64 {
		n := 0
		for _, smp := range set.Samples {
			if smp.Energy <= e0+1e-9 {
				n++
			}
		}
		return float64(n) / float64(len(set.Samples))
	}
	sc := NewSampler(m, SamplerOptions{Sweeps: 8})
	bit := NewSampler(m, SamplerOptions{Sweeps: 8, BitParallel: true})
	pScalar := hit(sc.SampleParallel(reads, 4, 1001))
	pBit := hit(bit.SampleParallel(reads, 4, 2002))
	if pScalar <= 0.05 || pScalar >= 0.95 {
		t.Fatalf("weak test point: scalar success rate %v; retune sweeps/instance", pScalar)
	}
	sigma := math.Sqrt(pScalar * (1 - pScalar) * (1.0/reads + 1.0/words))
	if d := math.Abs(pBit - pScalar); d > 5*sigma {
		t.Fatalf("success rates diverge: scalar %.4f, bit-parallel %.4f (|Δ| %.4f > 5σ = %.4f)",
			pScalar, pBit, d, 5*sigma)
	}
}

// Steady-state word collection must not allocate per read: the arena, the
// samples and the energies are the only allocations, and reader scratch is
// pooled.
func TestBitParallelCollectAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	m := qubo.RandomIsing(graph.Chimera{M: 2, N: 2, L: 4}.Graph(), 1, 1, rng)
	s := NewSampler(m, SamplerOptions{Sweeps: 16, BitParallel: true})
	s.SampleParallel(128, 1, 5) // warm the scratch
	allocs := testing.AllocsPerRun(5, func() {
		s.SampleParallel(128, 1, 5)
	})
	// Arena + samples + energies + set header; anything growing with reads
	// would blow well past this.
	if allocs > 8 {
		t.Fatalf("collection allocates %v objects per 128-read call", allocs)
	}
}
