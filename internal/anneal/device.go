package anneal

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/splitexec/splitexec/internal/qubo"
)

// Device models one QPU: a hardware Ising solver with the programming and
// execution time constants of the D-Wave family. Programming loads a
// hardware-space Ising model; Execute performs repeated anneal+readout
// cycles. The device keeps a virtual clock of QPU-side time so experiments
// report the same quantities as the paper's machine model regardless of the
// wall-clock speed of the classical simulation underneath.
type Device struct {
	Timings Timings
	Opts    SamplerOptions
	// SQA, when non-nil, selects the simulated-quantum-annealing substrate
	// (path-integral Monte Carlo) instead of classical Metropolis.
	SQA *SQAOptions
	// Workers bounds the concurrent readout workers of Execute (<= 1 runs
	// reads serially on the calling goroutine). Reads use per-read RNG
	// streams, so results are byte-identical for every worker count; Workers
	// only changes wall-clock time, never the virtual QPU clock.
	Workers int

	program *qubo.Ising
	sampler Annealer

	programTime time.Duration // accumulated programming time
	executeTime time.Duration // accumulated anneal/readout time
	totalReads  int
}

// NewDevice returns an unprogrammed device with the given time constants.
func NewDevice(t Timings, opts SamplerOptions) *Device {
	return &Device{Timings: t, Opts: opts}
}

// NewQuantumDevice returns a device whose anneals use the SQA substrate.
func NewQuantumDevice(t Timings, opts SQAOptions) *Device {
	return &Device{Timings: t, SQA: &opts}
}

// Program loads a hardware Ising model into the device, charging the
// one-time ProcessorInitialize cost (state machine + PMM + thermalization).
func (d *Device) Program(m *qubo.Ising) {
	d.program = m
	if d.SQA != nil {
		d.sampler = NewSQASampler(m, *d.SQA)
	} else {
		d.sampler = NewSampler(m, d.Opts)
	}
	d.programTime += d.Timings.ProcessorInitialize()
}

// Programmed reports whether a program is loaded.
func (d *Device) Programmed() bool { return d.program != nil }

// Execute performs reads annealing repetitions of the loaded program and
// returns the readout ensemble. The virtual clock advances by
// reads×AnnealTime + ReadoutTime + Thermalization.
func (d *Device) Execute(reads int, rng *rand.Rand) (*SampleSet, error) {
	if d.program == nil {
		return nil, fmt.Errorf("anneal: Execute before Program")
	}
	set, err := CollectParallel(d.sampler, d.program.Dim(), reads, d.Workers, rng.Int63())
	if err != nil {
		return nil, err
	}
	d.executeTime += d.Timings.ExecutionTime(reads)
	d.totalReads += reads
	return set, nil
}

// QPUTime returns the accumulated virtual QPU time split into programming
// and execution components.
func (d *Device) QPUTime() (programming, execution time.Duration) {
	return d.programTime, d.executeTime
}

// TotalReads returns the number of annealing repetitions performed since
// construction.
func (d *Device) TotalReads() int { return d.totalReads }

// Reset clears the loaded program and the virtual clock.
func (d *Device) Reset() {
	d.program = nil
	d.sampler = nil
	d.programTime = 0
	d.executeTime = 0
	d.totalReads = 0
}
