// Package anneal simulates the quantum processing unit of the
// split-execution system. The real D-Wave device is unavailable, so the QPU
// substrate is a classical annealer over the *hardware* Ising program (the
// chain-coupled, Chimera-constrained model produced by parameter setting)
// plus the paper's timing constants for annealing, readout, thermalization
// and programming. This preserves the code path the paper models — program,
// repeat anneal+readout, post-process — and its probabilistic behaviour: a
// single anneal finds the ground state with some probability ps < 1, so the
// host repeats until the target accuracy is met (Eq. 6).
package anneal

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/splitexec/splitexec/internal/qubo"
)

// SamplerOptions configure the Metropolis simulated annealer.
type SamplerOptions struct {
	// Sweeps is the number of full Metropolis sweeps per anneal (default 64).
	Sweeps int
	// BetaStart and BetaEnd define the geometric inverse-temperature
	// schedule (defaults 0.1 → 10, scaled by the largest coefficient).
	BetaStart, BetaEnd float64
}

func (o SamplerOptions) withDefaults(m *qubo.Ising) SamplerOptions {
	if o.Sweeps <= 0 {
		o.Sweeps = 64
	}
	scale := m.MaxAbsCoefficient()
	if scale == 0 {
		scale = 1
	}
	if o.BetaStart <= 0 {
		o.BetaStart = 0.1 / scale
	}
	if o.BetaEnd <= 0 {
		o.BetaEnd = 10 / scale
	}
	return o
}

// Sampler draws low-energy spin configurations from an Ising model using
// simulated annealing. It pre-compiles the model into adjacency lists, so a
// single Sampler may be reused for many reads.
type Sampler struct {
	model  *qubo.Ising
	active []int // spins that participate (nonzero bias or any coupling)
	adjIdx [][]int32
	adjJ   [][]float64
	opts   SamplerOptions
	betas  []float64
}

// NewSampler compiles the model for repeated annealing. Spins with zero bias
// and no couplings are frozen at +1 and never touched, mirroring unused
// physical qubits.
func NewSampler(m *qubo.Ising, opts SamplerOptions) *Sampler {
	opts = opts.withDefaults(m)
	n := m.Dim()
	s := &Sampler{
		model:  m,
		adjIdx: make([][]int32, n),
		adjJ:   make([][]float64, n),
		opts:   opts,
	}
	hasCoupling := make([]bool, n)
	for _, e := range m.Edges() {
		j := m.Coupling(e.U, e.V)
		s.adjIdx[e.U] = append(s.adjIdx[e.U], int32(e.V))
		s.adjJ[e.U] = append(s.adjJ[e.U], j)
		s.adjIdx[e.V] = append(s.adjIdx[e.V], int32(e.U))
		s.adjJ[e.V] = append(s.adjJ[e.V], j)
		hasCoupling[e.U], hasCoupling[e.V] = true, true
	}
	for i := 0; i < n; i++ {
		if m.H[i] != 0 || hasCoupling[i] {
			s.active = append(s.active, i)
		}
	}
	// Geometric β schedule.
	s.betas = make([]float64, opts.Sweeps)
	if opts.Sweeps == 1 {
		s.betas[0] = opts.BetaEnd
	} else {
		ratio := math.Pow(opts.BetaEnd/opts.BetaStart, 1/float64(opts.Sweeps-1))
		b := opts.BetaStart
		for i := range s.betas {
			s.betas[i] = b
			b *= ratio
		}
	}
	return s
}

// ActiveSpins returns the number of participating spins.
func (s *Sampler) ActiveSpins() int { return len(s.active) }

// Anneal performs one annealing run from a random initial state and returns
// the resulting spin configuration and its energy (including the model
// offset).
func (s *Sampler) Anneal(rng *rand.Rand) ([]int8, float64) {
	n := s.model.Dim()
	spins := make([]int8, n)
	for i := range spins {
		spins[i] = 1
	}
	for _, i := range s.active {
		if rng.Intn(2) == 0 {
			spins[i] = -1
		}
	}
	s.run(spins, rng)
	return spins, s.model.Energy(spins)
}

// AnnealFrom performs one annealing run starting from the provided state
// (mutated in place) and returns its final energy. The initial state must
// have length Dim.
func (s *Sampler) AnnealFrom(spins []int8, rng *rand.Rand) float64 {
	if len(spins) != s.model.Dim() {
		panic(fmt.Sprintf("anneal: state length %d != model dim %d", len(spins), s.model.Dim()))
	}
	s.run(spins, rng)
	return s.model.Energy(spins)
}

func (s *Sampler) run(spins []int8, rng *rand.Rand) {
	for _, beta := range s.betas {
		for _, i := range s.active {
			// ΔE for flipping spin i: -2·s_i·(h_i + Σ_j J_ij·s_j).
			local := s.model.H[i]
			idx := s.adjIdx[i]
			js := s.adjJ[i]
			for k, jn := range idx {
				local += js[k] * float64(spins[jn])
			}
			dE := -2 * float64(spins[i]) * local
			if dE <= 0 || rng.Float64() < math.Exp(-beta*dE) {
				spins[i] = -spins[i]
			}
		}
	}
}

// Sample runs reads independent anneals and collects the results.
func (s *Sampler) Sample(reads int, rng *rand.Rand) *SampleSet {
	set := NewSampleSet(s.model.Dim())
	for r := 0; r < reads; r++ {
		spins, e := s.Anneal(rng)
		set.Add(spins, e)
	}
	return set
}
