// Package anneal simulates the quantum processing unit of the
// split-execution system. The real D-Wave device is unavailable, so the QPU
// substrate is a classical annealer over the *hardware* Ising program (the
// chain-coupled, Chimera-constrained model produced by parameter setting)
// plus the paper's timing constants for annealing, readout, thermalization
// and programming. This preserves the code path the paper models — program,
// repeat anneal+readout, post-process — and its probabilistic behaviour: a
// single anneal finds the ground state with some probability ps < 1, so the
// host repeats until the target accuracy is met (Eq. 6).
//
// Both samplers run on a shared compiled Ising kernel (qubo.Compiled): flat
// CSR adjacency, local fields maintained incrementally on accepted flips
// (making each Metropolis proposal O(1)), and incrementally tracked
// energies, so readout never re-evaluates the model from scratch. See
// docs/performance.md for the design and its benchmarks.
package anneal

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/splitexec/splitexec/internal/qubo"
)

// SamplerOptions configure the Metropolis simulated annealer.
type SamplerOptions struct {
	// Sweeps is the number of full Metropolis sweeps per anneal (default 64).
	Sweeps int
	// BetaStart and BetaEnd define the geometric inverse-temperature
	// schedule (defaults 0.1 → 10, scaled by the largest coefficient).
	BetaStart, BetaEnd float64
	// BitParallel selects the multi-spin-coded kernel (bitkernel.go): 64
	// independent replicas packed one-bit-per-spin into uint64 words, one
	// anneal per word. Collection then runs whole words — read r lands in
	// replica r%64 of word r/64, seeded parallel.DeriveSeed(seed, r/64) —
	// and stays byte-identical at any worker count. Opt-in: a word costs a
	// fixed ~64-replica price, so it pays off when Eq. 6 plans tens of
	// reads or more and wastes work below that (see docs/performance.md).
	// Ignored by the SQA substrate.
	BitParallel bool
}

func (o SamplerOptions) withDefaults(m *qubo.Ising) SamplerOptions {
	if o.Sweeps <= 0 {
		o.Sweeps = 64
	}
	scale := m.MaxAbsCoefficient()
	if scale == 0 {
		scale = 1
	}
	if o.BetaStart <= 0 {
		o.BetaStart = 0.1 / scale
	}
	if o.BetaEnd <= 0 {
		o.BetaEnd = 10 / scale
	}
	return o
}

// Sampler draws low-energy spin configurations from an Ising model using
// simulated annealing over the compiled kernel. A Sampler reuses its scratch
// buffers across anneals (allocation-free after warmup) and is therefore NOT
// safe for concurrent use; NewReader returns additional independent readers
// over the same compiled program for parallel readout.
type Sampler struct {
	prog   *qubo.Compiled
	opts   SamplerOptions
	betas  []float64
	fields []float64 // scratch: incremental local fields, one per spin
	m      []float64 // scratch: spins as ±1.0, the kernel's working state
	thr    []float64 // scratch: per-sweep acceptance thresholds Exp(1)/β
	bit    bitState  // scratch: multi-spin kernel state (BitParallel)
}

// NewSampler compiles the model for repeated annealing. Spins with zero bias
// and no couplings are frozen at +1 and never touched, mirroring unused
// physical qubits.
func NewSampler(m *qubo.Ising, opts SamplerOptions) *Sampler {
	opts = opts.withDefaults(m)
	s := &Sampler{prog: qubo.Compile(m), opts: opts}
	if opts.BitParallel {
		// Compile the word-kernel form once, up front: readers minted by
		// NewReader then share it instead of rebuilding per worker.
		s.bitBuild()
	}
	// Geometric β schedule.
	s.betas = make([]float64, opts.Sweeps)
	if opts.Sweeps == 1 {
		s.betas[0] = opts.BetaEnd
	} else {
		ratio := math.Pow(opts.BetaEnd/opts.BetaStart, 1/float64(opts.Sweeps-1))
		b := opts.BetaStart
		for i := range s.betas {
			s.betas[i] = b
			b *= ratio
		}
	}
	return s
}

// ActiveSpins returns the number of participating spins.
func (s *Sampler) ActiveSpins() int { return len(s.prog.Active) }

// Program returns the compiled Ising program the sampler anneals.
func (s *Sampler) Program() *qubo.Compiled { return s.prog }

// NewReader returns an independent single-goroutine annealing context
// sharing this sampler's compiled program and schedule. Readers are what the
// parallel readout path fans out across workers.
func (s *Sampler) NewReader() Annealer {
	c := *s
	c.fields, c.m, c.thr = nil, nil, nil
	// Readers share the (immutable once built) compiled adjacency forms but
	// get their own packed state and field rows/planes.
	c.bit.words, c.bit.fields, c.bit.fplanes = nil, nil, nil
	return &c
}

// Anneal performs one annealing run from a random initial state and returns
// the resulting spin configuration and its energy (including the model
// offset). The caller's rng contributes a single seed draw; the kernel runs
// on its own inline stream derived from it.
func (s *Sampler) Anneal(rng *rand.Rand) ([]int8, float64) {
	return s.annealSeeded(rng.Int63())
}

func (s *Sampler) annealSeeded(seed int64) ([]int8, float64) {
	spins := make([]int8, s.prog.Dim())
	e := s.annealInto(spins, seed)
	return spins, e
}

// annealInto runs one read from a random initial state into dst (len Dim),
// the zero-copy entry point of the collection arena.
func (s *Sampler) annealInto(dst []int8, seed int64) float64 {
	kr := newKernelRand(seed)
	for i := range dst {
		dst[i] = 1
	}
	for _, i := range s.prog.Active {
		if kr.next()>>63 == 0 {
			dst[i] = -1
		}
	}
	return s.run(dst, &kr)
}

// AnnealFrom performs one annealing run starting from the provided state
// (mutated in place) and returns its final energy. The initial state must
// have length Dim.
func (s *Sampler) AnnealFrom(spins []int8, rng *rand.Rand) float64 {
	if len(spins) != s.prog.Dim() {
		panic(fmt.Sprintf("anneal: state length %d != model dim %d", len(spins), s.prog.Dim()))
	}
	kr := newKernelRand(rng.Int63())
	return s.run(spins, &kr)
}

// run is the compiled Metropolis kernel. Local fields are initialized once
// (O(|E|)) and then maintained incrementally on accepted flips, so each
// proposal costs O(1): one field read for ΔE plus one threshold compare for
// the acceptance test. The test uses the exact identity
//
//	u < exp(−βΔE)  ⇔  Exp(1)/β > ΔE,
//
// which also covers downhill moves for free (thresholds are positive), so
// one compare-and-branch decides every proposal. Each sweep's i.i.d.
// thresholds are pre-generated into a scratch buffer by the ziggurat
// sampler — they are independent of ΔE, so drawing them ahead of the sweep
// is distributionally identical — which keeps the spin loop call-free (the
// register allocator keeps the kernel state out of memory) and replaces the
// math.Exp per uphill proposal of the old kernel (≈46% of its time) with
// one load and compare. The final energy is tracked incrementally from the
// initial EnergyFromFields, so readout never re-evaluates the model.
func (s *Sampler) run(spins []int8, kr *kernelRand) float64 {
	prog := s.prog
	n := prog.Dim()
	s.fields = prog.LocalFields(spins, s.fields)
	fields := s.fields
	if cap(s.m) < n {
		s.m = make([]float64, n)
		s.thr = make([]float64, n)
	}
	// The kernel works on ±1.0 floats so the sweep loop never converts int8;
	// spins is read once here and written back once at the end.
	m := s.m[:n]
	for i, sp := range spins {
		m[i] = float64(sp)
	}
	energy := prog.EnergyFromFields(spins, fields)
	// Length ties for bounds-check elimination in the sweep loops.
	fields = fields[:len(m)]
	rowPtr := prog.RowPtr[:len(m)+1]
	col := prog.Col
	val := prog.Val[:len(col)]
	active := prog.Active
	dense := len(active) == n
	thr := s.thr[:len(active)] // one acceptance threshold per proposal
	for _, beta := range s.betas {
		kr.fillExp(thr, 1/beta)
		// Two copies of the sweep body: models whose spins are all active
		// (logical models sampled directly) skip the Active indirection and
		// its bounds checks; sparse hardware programs (a few chains on a
		// large topology) walk the active list. Keep the bodies in sync.
		if dense {
			thr := thr[:len(m)]
			for i := range m {
				mi := m[i]
				dE := -2 * mi * fields[i]
				if thr[i] <= dE {
					continue // rejected uphill move
				}
				m[i] = -mi
				energy += dE
				d := -2 * mi
				for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
					fields[col[k]] += d * val[k]
				}
			}
			continue
		}
		for ii, i := range active {
			mi := m[i]
			dE := -2 * mi * fields[i]
			if thr[ii] <= dE {
				continue // rejected uphill move
			}
			m[i] = -mi
			energy += dE
			d := -2 * mi
			for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
				fields[col[k]] += d * val[k]
			}
		}
	}
	for i := range spins {
		spins[i] = int8(m[i]) // ±1.0 → ±1, branchless
	}
	return energy
}

// Sample runs reads independent anneals and collects the results. Each read
// draws from its own RNG stream derived from one rng.Int63() call, so the
// returned set is identical to SampleParallel with any worker count.
func (s *Sampler) Sample(reads int, rng *rand.Rand) *SampleSet {
	return s.SampleParallel(reads, 1, rng.Int63())
}

// SampleParallel runs reads independent anneals across a bounded worker pool
// (workers <= 1 runs serially on the calling goroutine). Read r draws from
// the RNG stream DeriveSeed(seed, r) and lands in slot r, so the result is
// byte-identical for every worker count. It panics on reads < 1 (use
// CollectParallel to get the error instead).
func (s *Sampler) SampleParallel(reads, workers int, seed int64) *SampleSet {
	set, err := CollectParallel(s, s.prog.Dim(), reads, workers, seed)
	if err != nil {
		panic(err)
	}
	return set
}
