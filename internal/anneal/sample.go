package anneal

import (
	"fmt"
	"math"

	"github.com/splitexec/splitexec/internal/stats"
)

// Sample is one readout of the processor register: a classical spin
// configuration and its program energy.
type Sample struct {
	Spins  []int8
	Energy float64
}

// SampleSet accumulates readouts across repeated anneals, the "ensemble of
// readout results gathered during multiple runs" the paper's stage 3 sorts.
type SampleSet struct {
	Dim     int
	Samples []Sample
	sorted  bool
}

// NewSampleSet returns an empty set over spin vectors of the given length.
func NewSampleSet(dim int) *SampleSet {
	return &SampleSet{Dim: dim}
}

// NewSampleSetWithCapacity returns an empty set preallocated for the given
// number of readouts, so collecting a known read count never regrows the
// sample slice.
func NewSampleSetWithCapacity(dim, capacity int) *SampleSet {
	ss := &SampleSet{Dim: dim}
	if capacity > 0 {
		ss.Samples = make([]Sample, 0, capacity)
	}
	return ss
}

// Add appends one readout (the spin slice is copied).
func (ss *SampleSet) Add(spins []int8, energy float64) {
	if len(spins) != ss.Dim {
		panic(fmt.Sprintf("anneal: sample length %d != dim %d", len(spins), ss.Dim))
	}
	ss.Samples = append(ss.Samples, Sample{Spins: append([]int8(nil), spins...), Energy: energy})
	ss.sorted = false
}

// AddOwned appends one readout taking ownership of the spin slice (no copy).
// The samplers hand their freshly allocated readout states straight to the
// set this way; callers that retain their slice should use Add.
func (ss *SampleSet) AddOwned(spins []int8, energy float64) {
	if len(spins) != ss.Dim {
		panic(fmt.Sprintf("anneal: sample length %d != dim %d", len(spins), ss.Dim))
	}
	ss.Samples = append(ss.Samples, Sample{Spins: spins, Energy: energy})
	ss.sorted = false
}

// Len returns the number of readouts.
func (ss *SampleSet) Len() int { return len(ss.Samples) }

// SortByEnergy heapsorts the readouts ascending by energy (paper stage 3)
// and returns the number of comparisons performed.
func (ss *SampleSet) SortByEnergy() int {
	comps := stats.Heapsort(len(ss.Samples),
		func(i, j int) bool { return ss.Samples[i].Energy < ss.Samples[j].Energy },
		func(i, j int) { ss.Samples[i], ss.Samples[j] = ss.Samples[j], ss.Samples[i] })
	ss.sorted = true
	return comps
}

// Best returns the lowest-energy sample. It panics on an empty set.
func (ss *SampleSet) Best() Sample {
	if len(ss.Samples) == 0 {
		panic("anneal: Best of empty sample set")
	}
	if ss.sorted {
		return ss.Samples[0]
	}
	best := ss.Samples[0]
	for _, s := range ss.Samples[1:] {
		if s.Energy < best.Energy {
			best = s
		}
	}
	return best
}

// Energies returns the energy of every readout in collection order.
func (ss *SampleSet) Energies() []float64 {
	es := make([]float64, len(ss.Samples))
	for i, s := range ss.Samples {
		es[i] = s.Energy
	}
	return es
}

// Multiplicity returns how many readouts share the minimum energy (within
// tol); the paper notes sorting "to identify the multiplicity for each value
// and avoid redundant computation".
func (ss *SampleSet) Multiplicity(tol float64) int {
	if len(ss.Samples) == 0 {
		return 0
	}
	best := ss.Best().Energy
	n := 0
	for _, s := range ss.Samples {
		if math.Abs(s.Energy-best) <= tol {
			n++
		}
	}
	return n
}

// SuccessRate returns the fraction of readouts whose energy is within tol of
// the reference ground energy — the empirical estimate of the paper's
// characteristic single-run success probability ps.
func (ss *SampleSet) SuccessRate(groundEnergy, tol float64) float64 {
	if len(ss.Samples) == 0 {
		return 0
	}
	hits := 0
	for _, s := range ss.Samples {
		if s.Energy <= groundEnergy+tol {
			hits++
		}
	}
	return float64(hits) / float64(len(ss.Samples))
}

// Merge appends all samples from other into ss.
func (ss *SampleSet) Merge(other *SampleSet) {
	if other.Dim != ss.Dim {
		panic(fmt.Sprintf("anneal: merging sets of dim %d and %d", other.Dim, ss.Dim))
	}
	ss.Samples = append(ss.Samples, other.Samples...)
	ss.sorted = false
}
