package anneal

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/qubo"
)

func ferroChain(n int) *qubo.Ising {
	m := qubo.NewIsing(n)
	for i := 0; i+1 < n; i++ {
		m.SetCoupling(i, i+1, -1) // ferromagnetic: aligned spins favored
	}
	return m
}

func TestSamplerFindsFerromagneticGround(t *testing.T) {
	m := ferroChain(10)
	s := NewSampler(m, SamplerOptions{Sweeps: 128})
	rng := rand.New(rand.NewSource(1))
	spins, e := s.Anneal(rng)
	if e != -9 {
		t.Fatalf("energy = %v, want -9 (all aligned)", e)
	}
	for i := 1; i < 10; i++ {
		if spins[i] != spins[0] {
			t.Fatalf("spins not aligned: %v", spins)
		}
	}
}

func TestSamplerMatchesBruteForceSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		g := graph.GNP(8, 0.5, rng)
		m := qubo.RandomIsing(g, 1, 1, rng)
		_, want := m.BruteForce()
		s := NewSampler(m, SamplerOptions{Sweeps: 256})
		best := math.Inf(1)
		for r := 0; r < 20; r++ {
			if _, e := s.Anneal(rng); e < best {
				best = e
			}
		}
		if math.Abs(best-want) > 1e-9 {
			t.Errorf("trial %d: best sampled %v, exact %v", trial, best, want)
		}
	}
}

func TestSamplerRespectsInactiveSpins(t *testing.T) {
	m := qubo.NewIsing(6)
	m.SetCoupling(0, 1, -1)
	// Spins 2..5 have no bias/couplings: frozen at +1.
	s := NewSampler(m, SamplerOptions{})
	if s.ActiveSpins() != 2 {
		t.Fatalf("active spins = %d, want 2", s.ActiveSpins())
	}
	rng := rand.New(rand.NewSource(3))
	spins, _ := s.Anneal(rng)
	for i := 2; i < 6; i++ {
		if spins[i] != 1 {
			t.Fatalf("inactive spin %d = %d", i, spins[i])
		}
	}
}

func TestSamplerDeterministicForSeed(t *testing.T) {
	m := ferroChain(8)
	s := NewSampler(m, SamplerOptions{Sweeps: 32})
	s1, e1 := s.Anneal(rand.New(rand.NewSource(7)))
	s2, e2 := s.Anneal(rand.New(rand.NewSource(7)))
	if e1 != e2 {
		t.Fatalf("energies differ: %v vs %v", e1, e2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("states differ for same seed")
		}
	}
}

func TestAnnealFromPanicsOnBadLength(t *testing.T) {
	s := NewSampler(ferroChain(4), SamplerOptions{})
	defer func() {
		if recover() == nil {
			t.Error("bad length did not panic")
		}
	}()
	s.AnnealFrom(make([]int8, 3), rand.New(rand.NewSource(1)))
}

func TestAnnealFromImproves(t *testing.T) {
	m := ferroChain(12)
	s := NewSampler(m, SamplerOptions{Sweeps: 128})
	spins := make([]int8, 12)
	for i := range spins {
		spins[i] = int8(2*(i%2) - 1) // worst case: alternating
	}
	start := m.Energy(spins)
	end := s.AnnealFrom(spins, rand.New(rand.NewSource(4)))
	if end >= start {
		t.Errorf("anneal did not improve: %v -> %v", start, end)
	}
}

func TestSampleSetBasics(t *testing.T) {
	ss := NewSampleSet(2)
	ss.Add([]int8{1, 1}, 3)
	ss.Add([]int8{-1, 1}, -1)
	ss.Add([]int8{1, -1}, 2)
	if ss.Len() != 3 {
		t.Fatalf("Len = %d", ss.Len())
	}
	if b := ss.Best(); b.Energy != -1 || b.Spins[0] != -1 {
		t.Errorf("Best = %+v", b)
	}
	comps := ss.SortByEnergy()
	if comps <= 0 {
		t.Error("sort counted no comparisons")
	}
	es := ss.Energies()
	if !sort.Float64sAreSorted(es) {
		t.Errorf("not sorted: %v", es)
	}
	if b := ss.Best(); b.Energy != -1 {
		t.Errorf("Best after sort = %+v", b)
	}
}

func TestSampleSetAddPanicsOnDim(t *testing.T) {
	ss := NewSampleSet(2)
	defer func() {
		if recover() == nil {
			t.Error("dim mismatch did not panic")
		}
	}()
	ss.Add([]int8{1}, 0)
}

func TestSampleSetBestPanicsEmpty(t *testing.T) {
	ss := NewSampleSet(1)
	defer func() {
		if recover() == nil {
			t.Error("empty Best did not panic")
		}
	}()
	ss.Best()
}

func TestSampleSetMultiplicityAndSuccess(t *testing.T) {
	ss := NewSampleSet(1)
	ss.Add([]int8{1}, -2)
	ss.Add([]int8{1}, -2)
	ss.Add([]int8{-1}, 0)
	ss.Add([]int8{-1}, 1)
	if m := ss.Multiplicity(1e-9); m != 2 {
		t.Errorf("multiplicity = %d, want 2", m)
	}
	if r := ss.SuccessRate(-2, 1e-9); r != 0.5 {
		t.Errorf("success rate = %v, want 0.5", r)
	}
	if r := ss.SuccessRate(-5, 1e-9); r != 0 {
		t.Errorf("unreachable ground success = %v", r)
	}
}

func TestSampleSetMerge(t *testing.T) {
	a := NewSampleSet(1)
	a.Add([]int8{1}, 1)
	b := NewSampleSet(1)
	b.Add([]int8{-1}, -1)
	a.Merge(b)
	if a.Len() != 2 || a.Best().Energy != -1 {
		t.Errorf("merge wrong: %+v", a)
	}
	c := NewSampleSet(2)
	defer func() {
		if recover() == nil {
			t.Error("dim mismatch merge did not panic")
		}
	}()
	a.Merge(c)
}

func TestSampleSetAddCopies(t *testing.T) {
	ss := NewSampleSet(2)
	spins := []int8{1, -1}
	ss.Add(spins, 0)
	spins[0] = -1
	if ss.Samples[0].Spins[0] != 1 {
		t.Error("Add did not copy the spin slice")
	}
}

func TestDW2TimingsPaperConstants(t *testing.T) {
	tm := DW2Timings()
	// 252162+33095+0+11264+10000+4000+9052 = 319573 µs.
	want := 319573 * time.Microsecond
	if got := tm.ProcessorInitialize(); got != want {
		t.Errorf("ProcessorInitialize = %v, want %v", got, want)
	}
	if tm.AnnealTime != 20*time.Microsecond {
		t.Errorf("anneal time = %v", tm.AnnealTime)
	}
	// One call with 100 reads: 100·20 + 320 + 5 = 2325 µs.
	if got := tm.ExecutionTime(100); got != 2325*time.Microsecond {
		t.Errorf("ExecutionTime(100) = %v", got)
	}
}

func TestRequiredReadsEq6(t *testing.T) {
	// Paper Fig. 9(b) parameters: ps = 0.7.
	cases := []struct {
		pa   float64
		want int
	}{
		{0.9, 2},    // log(0.1)/log(0.3) = 1.91 -> 2
		{0.99, 4},   // log(0.01)/log(0.3) = 3.82 -> 4
		{0.999, 6},  // 5.74 -> 6
		{0.9999, 8}, // 7.65 -> 8
		{0, 0},
	}
	for _, c := range cases {
		got, err := RequiredReads(c.pa, 0.7)
		if err != nil {
			t.Fatalf("pa=%v: %v", c.pa, err)
		}
		if got != c.want {
			t.Errorf("RequiredReads(%v, 0.7) = %d, want %d", c.pa, got, c.want)
		}
	}
}

func TestRequiredReadsStage3Constants(t *testing.T) {
	// Fig. 8: Results = ceil(log(1-0.99)/log(1-0.75)) = 4.
	got, err := RequiredReads(0.99, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("stage-3 Results = %d, want 4", got)
	}
}

func TestRequiredReadsValidation(t *testing.T) {
	if _, err := RequiredReads(0.9, 0); err == nil {
		t.Error("ps=0 accepted")
	}
	if _, err := RequiredReads(0.9, 1); err == nil {
		t.Error("ps=1 accepted")
	}
	if _, err := RequiredReads(1, 0.5); err == nil {
		t.Error("pa=1 accepted")
	}
	if _, err := RequiredReads(-0.1, 0.5); err == nil {
		t.Error("pa<0 accepted")
	}
}

func TestAchievedAccuracyInvertsEq6(t *testing.T) {
	for _, pa := range []float64{0.5, 0.9, 0.99, 0.9999} {
		s, err := RequiredReads(pa, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		if got := AchievedAccuracy(s, 0.7); got < pa {
			t.Errorf("AchievedAccuracy(%d) = %v < target %v", s, got, pa)
		}
	}
	if AchievedAccuracy(0, 0.7) != 0 {
		t.Error("zero reads should achieve zero accuracy")
	}
}

// The paper's Fig. 9(b) observation: the stage-2 curve is approximately the
// same for all ps > 0.6 because so few repetitions are needed.
func TestStage2InsensitiveToHighPS(t *testing.T) {
	tm := DW2Timings()
	for _, pa := range []float64{0.9, 0.99, 0.999} {
		var times []time.Duration
		for _, ps := range []float64{0.65, 0.7, 0.8, 0.9} {
			s, err := RequiredReads(pa, ps)
			if err != nil {
				t.Fatal(err)
			}
			times = append(times, tm.ExecutionTime(s))
		}
		for _, d := range times {
			// All within 200 µs of each other (a handful of 20 µs anneals).
			if diff := d - times[0]; diff > 200*time.Microsecond || diff < -200*time.Microsecond {
				t.Errorf("pa=%v: stage-2 times vary too much: %v", pa, times)
			}
		}
	}
}

func TestDeviceLifecycle(t *testing.T) {
	d := NewDevice(DW2Timings(), SamplerOptions{Sweeps: 32})
	if d.Programmed() {
		t.Error("new device claims program")
	}
	if _, err := d.Execute(1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("Execute before Program succeeded")
	}
	d.Program(ferroChain(6))
	if !d.Programmed() {
		t.Error("device not programmed")
	}
	set, err := d.Execute(10, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 10 {
		t.Errorf("reads = %d", set.Len())
	}
	prog, exec := d.QPUTime()
	if prog != DW2Timings().ProcessorInitialize() {
		t.Errorf("programming time = %v", prog)
	}
	if exec != DW2Timings().ExecutionTime(10) {
		t.Errorf("execution time = %v", exec)
	}
	if d.TotalReads() != 10 {
		t.Errorf("total reads = %d", d.TotalReads())
	}
	d.Reset()
	if d.Programmed() || d.TotalReads() != 0 {
		t.Error("reset incomplete")
	}
}

func TestDeviceExecuteValidatesReads(t *testing.T) {
	d := NewDevice(DW2Timings(), SamplerOptions{})
	d.Program(ferroChain(2))
	if _, err := d.Execute(0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("reads=0 accepted")
	}
}

// Empirical check that the annealer behaves like the paper's probabilistic
// processor: success rate over many reads is strictly between 0 and 1 for a
// frustrated model at low sweep counts, and improves with more sweeps.
func TestSamplerSuccessProbabilityBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.Complete(7)
	m := qubo.RandomIsing(g, 1, 1, rng)
	_, ground := m.BruteForce()

	rate := func(sweeps, reads int) float64 {
		s := NewSampler(m, SamplerOptions{Sweeps: sweeps})
		set := s.Sample(reads, rng)
		return set.SuccessRate(ground, 1e-9)
	}
	fast := rate(2, 200)
	slow := rate(128, 200)
	if slow < fast {
		t.Errorf("more sweeps lowered success rate: %v -> %v", fast, slow)
	}
	if slow == 0 {
		t.Error("128-sweep annealer never found ground state of a 7-spin model")
	}
}
