package dse

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

// testAxes is a 3-axis space of 6×5×9 = 270 points.
func testAxes() []Axis {
	return []Axis{
		{Name: "x", Values: LinSpace(1, 6, 6)},
		{Name: "y", Values: LinSpace(0, 2, 5)},
		{Name: "z", Values: LinSpace(-4, 4, 9)},
	}
}

func smoothObjective(p map[string]float64) (float64, error) {
	return p["x"]*p["x"] + 3*p["y"] + math.Sin(p["z"]), nil
}

// TestSweepSerialParallelEquality is the engine's core guarantee: a
// parallel sweep returns a Table identical to the serial walk — same row
// order, same parameter maps, same values.
func TestSweepSerialParallelEquality(t *testing.T) {
	axes := testAxes()
	serial, err := SweepOpt(smoothObjective, axes, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8, 1024} {
		par, err := SweepOpt(smoothObjective, axes, SweepOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d: table differs from serial result", workers)
		}
	}
}

// TestSweepSeededIndependentOfWorkers checks the per-point RNG streams: a
// randomized objective must produce the identical table for any worker
// count because point i always draws from the (Seed, i) stream.
func TestSweepSeededIndependentOfWorkers(t *testing.T) {
	axes := testAxes()
	noisy := func(p map[string]float64, rng *rand.Rand) (float64, error) {
		return p["x"] + rng.Float64(), nil
	}
	ref, err := SweepSeeded(noisy, axes, SweepOptions{Workers: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 7, 64} {
		got, err := SweepSeeded(noisy, axes, SweepOptions{Workers: workers, Seed: 42})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d: seeded sweep not reproducible", workers)
		}
	}
	// A different base seed must change the table.
	other, err := SweepSeeded(noisy, axes, SweepOptions{Workers: 4, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(ref, other) {
		t.Fatal("different seeds produced identical tables")
	}
}

func TestSweepWorkerEdgeCases(t *testing.T) {
	axes := []Axis{{Name: "x", Values: LinSpace(0, 1, 3)}}
	for _, workers := range []int{-1, 0, 1, 3, 50} { // 50 > points
		tbl, err := SweepOpt(smoothObjective, axes, SweepOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(tbl.Rows) != 3 {
			t.Fatalf("workers=%d: rows = %d", workers, len(tbl.Rows))
		}
	}
	// Single-point space.
	tbl, err := SweepOpt(smoothObjective, []Axis{{Name: "x", Values: []float64{2}}}, SweepOptions{Workers: 8})
	if err != nil || len(tbl.Rows) != 1 {
		t.Fatalf("single point: rows=%v err=%v", tbl, err)
	}
}

func TestSweepParallelErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	obj := func(p map[string]float64) (float64, error) {
		if p["x"] == 4 && p["y"] == 1 && p["z"] == 0 {
			return 0, boom
		}
		return 1, nil
	}
	for _, workers := range []int{1, 8} {
		_, err := SweepOpt(obj, testAxes(), SweepOptions{Workers: workers})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		// The failing point's coordinates appear in the error context.
		if !strings.Contains(err.Error(), "x:4") {
			t.Fatalf("workers=%d: error lacks point context: %v", workers, err)
		}
	}
}

func TestSweepProgressReporting(t *testing.T) {
	axes := testAxes()
	var calls, sawTotal atomic.Int32
	maxDone := 0
	monotone := true
	tbl, err := SweepOpt(smoothObjective, axes, SweepOptions{
		Workers: 4,
		OnProgress: func(done, total int) {
			calls.Add(1)
			sawTotal.Store(int32(total))
			// Calls are serialized by the engine, so plain variables are
			// safe here (the race detector verifies the claim).
			if done <= maxDone {
				monotone = false
			}
			maxDone = done
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !monotone {
		t.Error("done counter went backwards")
	}
	want := len(tbl.Rows)
	if int(calls.Load()) != want || int(sawTotal.Load()) != want || maxDone != want {
		t.Fatalf("progress: calls=%d total=%d maxDone=%d, want all %d",
			calls.Load(), sawTotal.Load(), maxDone, want)
	}
}

func TestSensitivitiesParallelMatchesSerial(t *testing.T) {
	obj := polyObjective(2, 3, 0.5)
	base := map[string]float64{"x": 10, "y": 4}
	serial, err := SensitivitiesOpt(obj, base, 0.01, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SensitivitiesOpt(obj, base, 0.01, SweepOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("serial %v != parallel %v", serial, par)
	}
}

func TestCrossoverParallelMatchesSerial(t *testing.T) {
	a := func(p map[string]float64) (float64, error) { return p["x"] * p["x"], nil }
	b := func(p map[string]float64) (float64, error) { return 100, nil }
	serial, err := CrossoverOpt(a, b, "x", 1, 50, nil, 1e-9, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := CrossoverOpt(a, b, "x", 1, 50, nil, 1e-9, SweepOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial != par {
		t.Fatalf("serial root %v != parallel root %v", serial, par)
	}
}
