// Package dse performs automated design-space exploration over ASPEN
// performance models.
//
// The paper builds its models in ASPEN precisely because the language
// supports structured exploration (its reference [37] is "Automated design
// space exploration with Aspen"). This package supplies that layer for the
// split-execution models: parameter sweeps over any model inputs
// (Sweep), local sensitivity analysis ranking which parameters the
// predicted time actually responds to (Sensitivities), and crossover search
// locating where one design overtakes another (Crossover) — e.g., at what
// problem size stage-1 embedding time exceeds the total quantum execution
// time, the paper's headline comparison.
//
// All three explorers evaluate design points on a bounded worker pool
// (internal/parallel.ForEach) — the §4 direction of exploiting "more
// sophisticated host systems" applied to the exploration layer itself.
// Results are deterministic regardless of worker count: rows come back in
// canonical axis order and randomized objectives draw from per-point RNG
// streams derived from (Seed, pointIndex). See SweepOptions.
package dse

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/splitexec/splitexec/internal/aspen"
	"github.com/splitexec/splitexec/internal/parallel"
)

// Objective maps a parameter assignment to a scalar cost (typically
// predicted seconds). Implementations must treat the map as read-only
// and — because the engine invokes objectives from multiple goroutines
// by default — must be safe for concurrent calls. Objectives that keep
// unsynchronized mutable state (e.g. a plain memoization map) must be
// run with SweepOptions{Workers: 1}.
type Objective func(params map[string]float64) (float64, error)

// ModelObjective adapts an ASPEN application model on a machine to an
// Objective returning total predicted seconds. Sweep parameters are merged
// over base.Params (sweep values win).
func ModelObjective(m *aspen.ModelDecl, mach *aspen.MachineSpec, base aspen.EvalOptions) Objective {
	return func(params map[string]float64) (float64, error) {
		opts := base
		merged := make(map[string]float64, len(base.Params)+len(params))
		for k, v := range base.Params {
			merged[k] = v
		}
		for k, v := range params {
			merged[k] = v
		}
		opts.Params = merged
		res, err := aspen.Evaluate(m, mach, opts)
		if err != nil {
			return 0, err
		}
		return res.TotalSeconds(), nil
	}
}

// Axis is one swept parameter.
type Axis struct {
	Name   string
	Values []float64
}

// LinSpace returns n evenly spaced values from lo to hi inclusive.
func LinSpace(lo, hi float64, n int) []float64 {
	if n <= 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// LogSpace returns n logarithmically spaced values from lo to hi inclusive;
// lo and hi must be positive.
func LogSpace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= 0 {
		return nil
	}
	if n <= 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := range out {
		out[i] = math.Exp(llo + (lhi-llo)*float64(i)/float64(n-1))
	}
	return out
}

// Row is one evaluated design point.
type Row struct {
	Params map[string]float64
	Value  float64
}

// Table is the result of a sweep: the cartesian product of the axes, in
// row-major order (last axis fastest).
type Table struct {
	Axes []Axis
	Rows []Row
}

// MaxSweepPoints bounds the cartesian product size of one Sweep call.
const MaxSweepPoints = 1 << 20

// ArgMin returns the row with the smallest value.
func (t *Table) ArgMin() (Row, error) {
	if len(t.Rows) == 0 {
		return Row{}, errors.New("dse: empty table")
	}
	best := t.Rows[0]
	for _, r := range t.Rows[1:] {
		if r.Value < best.Value {
			best = r
		}
	}
	return best, nil
}

// Series extracts (x, value) pairs for a one-axis sweep, in axis order.
func (t *Table) Series(axis string) (xs, ys []float64, err error) {
	found := false
	for _, ax := range t.Axes {
		if ax.Name == axis {
			found = true
		}
	}
	if !found {
		return nil, nil, fmt.Errorf("dse: unknown axis %q", axis)
	}
	for _, r := range t.Rows {
		xs = append(xs, r.Params[axis])
		ys = append(ys, r.Value)
	}
	return xs, ys, nil
}

// Format renders the table as aligned text for terminal inspection.
func (t *Table) Format() string {
	var b strings.Builder
	for _, ax := range t.Axes {
		fmt.Fprintf(&b, "%14s", ax.Name)
	}
	fmt.Fprintf(&b, "%16s\n", "value")
	for _, r := range t.Rows {
		for _, ax := range t.Axes {
			fmt.Fprintf(&b, "%14.6g", r.Params[ax.Name])
		}
		fmt.Fprintf(&b, "%16.6g\n", r.Value)
	}
	return b.String()
}

// Sensitivity is the local elasticity of the objective to one parameter:
// d(log T)/d(log p) estimated by a symmetric finite difference. Elasticity
// 3 means "time grows as p³ here"; 0 means the parameter is irrelevant at
// this design point.
type Sensitivity struct {
	Param      string
	Elasticity float64
	Base       float64 // parameter value at the expansion point
}

// Sensitivities ranks the parameters by |elasticity| at the base point,
// using relative step eps (e.g. 0.05 for ±5%). Parameters with value 0 are
// skipped (no log derivative exists there). Probes run on all host cores;
// see SensitivitiesOpt to bound the pool.
func Sensitivities(obj Objective, base map[string]float64, eps float64) ([]Sensitivity, error) {
	return SensitivitiesOpt(obj, base, eps, SweepOptions{})
}

// SensitivitiesOpt is Sensitivities with explicit engine options: the 2×
// finite-difference probes per parameter evaluate concurrently on the
// bounded worker pool. The ranking is identical to a serial run.
func SensitivitiesOpt(obj Objective, base map[string]float64, eps float64, opts SweepOptions) ([]Sensitivity, error) {
	if obj == nil {
		return nil, errors.New("dse: nil objective")
	}
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("dse: eps %v outside (0,1)", eps)
	}
	center, err := obj(base)
	if err != nil {
		return nil, err
	}
	if center <= 0 {
		return nil, fmt.Errorf("dse: objective %v at base not positive", center)
	}
	names := make([]string, 0, len(base))
	for k := range base {
		if base[k] != 0 {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	// Probe 2i is parameter i nudged up, probe 2i+1 nudged down.
	probes := make([]float64, 2*len(names))
	err = parallel.ForEach(len(probes), opts.Workers, func(i int) error {
		name := names[i/2]
		v := base[name] * (1 + eps)
		dir := "up"
		if i%2 == 1 {
			v = base[name] * (1 - eps)
			dir = "down"
		}
		params := make(map[string]float64, len(base))
		for k, val := range base {
			params[k] = val
		}
		params[name] = v
		got, err := obj(params)
		if err != nil {
			return fmt.Errorf("dse: probing %s %s: %w", name, dir, err)
		}
		probes[i] = got
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []Sensitivity
	for i, name := range names {
		up, down := probes[2*i], probes[2*i+1]
		if up <= 0 || down <= 0 {
			continue
		}
		el := (math.Log(up) - math.Log(down)) / (math.Log(1+eps) - math.Log(1-eps))
		out = append(out, Sensitivity{Param: name, Elasticity: el, Base: base[name]})
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := math.Abs(out[i].Elasticity), math.Abs(out[j].Elasticity)
		if ai != aj {
			return ai > aj
		}
		return out[i].Param < out[j].Param
	})
	return out, nil
}

// Crossover finds the value of param in [lo, hi] at which objective a
// overtakes objective b, i.e. the root of a-b, assuming a-b is monotone in
// the parameter over the bracket (the typical scaling-comparison setting).
// Both endpoints must bracket a sign change. Other parameters are fixed at
// base. The root is located by bisection to relative tolerance tol. The
// two objectives (and the two bracket endpoints) evaluate concurrently;
// see CrossoverOpt to bound the pool.
func Crossover(a, b Objective, param string, lo, hi float64, base map[string]float64, tol float64) (float64, error) {
	return CrossoverOpt(a, b, param, lo, hi, base, tol, SweepOptions{})
}

// CrossoverOpt is Crossover with explicit engine options. Bisection is
// inherently sequential, but each probe evaluates a and b concurrently and
// the initial bracket endpoints evaluate in parallel; the located root is
// identical to a serial run.
func CrossoverOpt(a, b Objective, param string, lo, hi float64, base map[string]float64, tol float64, opts SweepOptions) (float64, error) {
	if a == nil || b == nil {
		return 0, errors.New("dse: nil objective")
	}
	if !(lo < hi) {
		return 0, fmt.Errorf("dse: bad bracket [%v, %v]", lo, hi)
	}
	if tol <= 0 {
		tol = 1e-6
	}
	diff := func(v float64) (float64, error) {
		params := make(map[string]float64, len(base)+1)
		for k, val := range base {
			params[k] = val
		}
		params[param] = v
		objs := [2]Objective{a, b}
		var vals [2]float64
		err := parallel.ForEach(2, opts.Workers, func(i int) error {
			got, err := objs[i](params)
			vals[i] = got
			return err
		})
		if err != nil {
			return 0, err
		}
		return vals[0] - vals[1], nil
	}
	var flo, fhi float64
	ends := [2]float64{lo, hi}
	err := parallel.ForEach(2, opts.Workers, func(i int) error {
		got, err := diff(ends[i])
		if i == 0 {
			flo = got
		} else {
			fhi = got
		}
		return err
	})
	if err != nil {
		return 0, err
	}
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, fmt.Errorf("dse: no sign change on [%v, %v] (f(lo)=%v, f(hi)=%v)", lo, hi, flo, fhi)
	}
	for i := 0; i < 200 && (hi-lo) > tol*math.Max(1, math.Abs(hi)); i++ {
		mid := lo + (hi-lo)/2
		fm, err := diff(mid)
		if err != nil {
			return 0, err
		}
		if fm == 0 {
			return mid, nil
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, nil
}
