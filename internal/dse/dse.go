// Package dse performs automated design-space exploration over ASPEN
// performance models.
//
// The paper builds its models in ASPEN precisely because the language
// supports structured exploration (its reference [37] is "Automated design
// space exploration with Aspen"). This package supplies that layer for the
// split-execution models: parameter sweeps over any model inputs
// (Sweep), local sensitivity analysis ranking which parameters the
// predicted time actually responds to (Sensitivities), and crossover search
// locating where one design overtakes another (Crossover) — e.g., at what
// problem size stage-1 embedding time exceeds the total quantum execution
// time, the paper's headline comparison.
package dse

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/splitexec/splitexec/internal/aspen"
)

// Objective maps a parameter assignment to a scalar cost (typically
// predicted seconds). Implementations must treat the map as read-only.
type Objective func(params map[string]float64) (float64, error)

// ModelObjective adapts an ASPEN application model on a machine to an
// Objective returning total predicted seconds. Sweep parameters are merged
// over base.Params (sweep values win).
func ModelObjective(m *aspen.ModelDecl, mach *aspen.MachineSpec, base aspen.EvalOptions) Objective {
	return func(params map[string]float64) (float64, error) {
		opts := base
		merged := make(map[string]float64, len(base.Params)+len(params))
		for k, v := range base.Params {
			merged[k] = v
		}
		for k, v := range params {
			merged[k] = v
		}
		opts.Params = merged
		res, err := aspen.Evaluate(m, mach, opts)
		if err != nil {
			return 0, err
		}
		return res.TotalSeconds(), nil
	}
}

// Axis is one swept parameter.
type Axis struct {
	Name   string
	Values []float64
}

// LinSpace returns n evenly spaced values from lo to hi inclusive.
func LinSpace(lo, hi float64, n int) []float64 {
	if n <= 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// LogSpace returns n logarithmically spaced values from lo to hi inclusive;
// lo and hi must be positive.
func LogSpace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= 0 {
		return nil
	}
	if n <= 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := range out {
		out[i] = math.Exp(llo + (lhi-llo)*float64(i)/float64(n-1))
	}
	return out
}

// Row is one evaluated design point.
type Row struct {
	Params map[string]float64
	Value  float64
}

// Table is the result of a sweep: the cartesian product of the axes, in
// row-major order (last axis fastest).
type Table struct {
	Axes []Axis
	Rows []Row
}

// MaxSweepPoints bounds the cartesian product size of one Sweep call.
const MaxSweepPoints = 1 << 20

// Sweep evaluates the objective over the full cartesian product of the
// axes. Axis names must be unique and non-empty; every axis needs at least
// one value.
func Sweep(obj Objective, axes []Axis) (*Table, error) {
	if obj == nil {
		return nil, errors.New("dse: nil objective")
	}
	if len(axes) == 0 {
		return nil, errors.New("dse: no axes")
	}
	total := 1
	seen := map[string]bool{}
	for _, ax := range axes {
		if ax.Name == "" {
			return nil, errors.New("dse: empty axis name")
		}
		if seen[ax.Name] {
			return nil, fmt.Errorf("dse: duplicate axis %q", ax.Name)
		}
		seen[ax.Name] = true
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("dse: axis %q has no values", ax.Name)
		}
		if total > MaxSweepPoints/len(ax.Values) {
			return nil, fmt.Errorf("dse: sweep exceeds %d points", MaxSweepPoints)
		}
		total *= len(ax.Values)
	}
	tbl := &Table{Axes: axes, Rows: make([]Row, 0, total)}
	idx := make([]int, len(axes))
	for {
		params := make(map[string]float64, len(axes))
		for d, ax := range axes {
			params[ax.Name] = ax.Values[idx[d]]
		}
		v, err := obj(params)
		if err != nil {
			return nil, fmt.Errorf("dse: objective at %v: %w", params, err)
		}
		tbl.Rows = append(tbl.Rows, Row{Params: params, Value: v})
		// Increment the mixed-radix counter, last axis fastest.
		d := len(axes) - 1
		for d >= 0 {
			idx[d]++
			if idx[d] < len(axes[d].Values) {
				break
			}
			idx[d] = 0
			d--
		}
		if d < 0 {
			return tbl, nil
		}
	}
}

// ArgMin returns the row with the smallest value.
func (t *Table) ArgMin() (Row, error) {
	if len(t.Rows) == 0 {
		return Row{}, errors.New("dse: empty table")
	}
	best := t.Rows[0]
	for _, r := range t.Rows[1:] {
		if r.Value < best.Value {
			best = r
		}
	}
	return best, nil
}

// Series extracts (x, value) pairs for a one-axis sweep, in axis order.
func (t *Table) Series(axis string) (xs, ys []float64, err error) {
	found := false
	for _, ax := range t.Axes {
		if ax.Name == axis {
			found = true
		}
	}
	if !found {
		return nil, nil, fmt.Errorf("dse: unknown axis %q", axis)
	}
	for _, r := range t.Rows {
		xs = append(xs, r.Params[axis])
		ys = append(ys, r.Value)
	}
	return xs, ys, nil
}

// Format renders the table as aligned text for terminal inspection.
func (t *Table) Format() string {
	var b strings.Builder
	for _, ax := range t.Axes {
		fmt.Fprintf(&b, "%14s", ax.Name)
	}
	fmt.Fprintf(&b, "%16s\n", "value")
	for _, r := range t.Rows {
		for _, ax := range t.Axes {
			fmt.Fprintf(&b, "%14.6g", r.Params[ax.Name])
		}
		fmt.Fprintf(&b, "%16.6g\n", r.Value)
	}
	return b.String()
}

// Sensitivity is the local elasticity of the objective to one parameter:
// d(log T)/d(log p) estimated by a symmetric finite difference. Elasticity
// 3 means "time grows as p³ here"; 0 means the parameter is irrelevant at
// this design point.
type Sensitivity struct {
	Param      string
	Elasticity float64
	Base       float64 // parameter value at the expansion point
}

// Sensitivities ranks the parameters by |elasticity| at the base point,
// using relative step eps (e.g. 0.05 for ±5%). Parameters with value 0 are
// skipped (no log derivative exists there).
func Sensitivities(obj Objective, base map[string]float64, eps float64) ([]Sensitivity, error) {
	if obj == nil {
		return nil, errors.New("dse: nil objective")
	}
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("dse: eps %v outside (0,1)", eps)
	}
	center, err := obj(base)
	if err != nil {
		return nil, err
	}
	if center <= 0 {
		return nil, fmt.Errorf("dse: objective %v at base not positive", center)
	}
	names := make([]string, 0, len(base))
	for k := range base {
		names = append(names, k)
	}
	sort.Strings(names)
	var out []Sensitivity
	for _, name := range names {
		p := base[name]
		if p == 0 {
			continue
		}
		probe := func(v float64) (float64, error) {
			params := make(map[string]float64, len(base))
			for k, val := range base {
				params[k] = val
			}
			params[name] = v
			return obj(params)
		}
		up, err := probe(p * (1 + eps))
		if err != nil {
			return nil, fmt.Errorf("dse: probing %s up: %w", name, err)
		}
		down, err := probe(p * (1 - eps))
		if err != nil {
			return nil, fmt.Errorf("dse: probing %s down: %w", name, err)
		}
		if up <= 0 || down <= 0 {
			continue
		}
		el := (math.Log(up) - math.Log(down)) / (math.Log(1+eps) - math.Log(1-eps))
		out = append(out, Sensitivity{Param: name, Elasticity: el, Base: p})
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := math.Abs(out[i].Elasticity), math.Abs(out[j].Elasticity)
		if ai != aj {
			return ai > aj
		}
		return out[i].Param < out[j].Param
	})
	return out, nil
}

// Crossover finds the value of param in [lo, hi] at which objective a
// overtakes objective b, i.e. the root of a-b, assuming a-b is monotone in
// the parameter over the bracket (the typical scaling-comparison setting).
// Both endpoints must bracket a sign change. Other parameters are fixed at
// base. The root is located by bisection to relative tolerance tol.
func Crossover(a, b Objective, param string, lo, hi float64, base map[string]float64, tol float64) (float64, error) {
	if a == nil || b == nil {
		return 0, errors.New("dse: nil objective")
	}
	if !(lo < hi) {
		return 0, fmt.Errorf("dse: bad bracket [%v, %v]", lo, hi)
	}
	if tol <= 0 {
		tol = 1e-6
	}
	diff := func(v float64) (float64, error) {
		params := make(map[string]float64, len(base)+1)
		for k, val := range base {
			params[k] = val
		}
		params[param] = v
		av, err := a(params)
		if err != nil {
			return 0, err
		}
		bv, err := b(params)
		if err != nil {
			return 0, err
		}
		return av - bv, nil
	}
	flo, err := diff(lo)
	if err != nil {
		return 0, err
	}
	fhi, err := diff(hi)
	if err != nil {
		return 0, err
	}
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, fmt.Errorf("dse: no sign change on [%v, %v] (f(lo)=%v, f(hi)=%v)", lo, hi, flo, fhi)
	}
	for i := 0; i < 200 && (hi-lo) > tol*math.Max(1, math.Abs(hi)); i++ {
		mid := lo + (hi-lo)/2
		fm, err := diff(mid)
		if err != nil {
			return 0, err
		}
		if fm == 0 {
			return mid, nil
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, nil
}
