package dse

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"github.com/splitexec/splitexec/internal/parallel"
)

// SweepOptions configure how the exploration engine evaluates design
// points. The zero value is ready to use: all host cores, seed 0, no
// progress reporting.
type SweepOptions struct {
	// Workers bounds the evaluation pool (<= 0 selects GOMAXPROCS; 1
	// forces a strictly serial walk on the calling goroutine).
	Workers int
	// Seed derives the per-point RNG streams handed to a SeededObjective:
	// point i always receives the stream for (Seed, i), so results are
	// identical for every worker count.
	Seed int64
	// OnProgress, when non-nil, is called after each evaluated point with
	// the number of completed points and the total. Calls are serialized
	// but may arrive out of point order.
	OnProgress func(done, total int)
}

// SeededObjective is a randomized design objective: it draws any
// randomness it needs from the supplied rng, which the engine seeds per
// point from (SweepOptions.Seed, pointIndex). Implementations must treat
// the parameter map as read-only and, like Objective, be safe for
// concurrent calls (each invocation gets its own rng).
type SeededObjective func(params map[string]float64, rng *rand.Rand) (float64, error)

// Sweep evaluates the objective over the full cartesian product of the
// axes on all host cores (SweepOptions zero value). Axis names must be
// unique and non-empty; every axis needs at least one value. Rows are
// returned in canonical row-major order (last axis fastest) regardless of
// completion order, so the result is identical to a serial walk.
func Sweep(obj Objective, axes []Axis) (*Table, error) {
	return SweepOpt(obj, axes, SweepOptions{})
}

// SweepOpt is Sweep with explicit engine options.
func SweepOpt(obj Objective, axes []Axis, opts SweepOptions) (*Table, error) {
	if obj == nil {
		return nil, errors.New("dse: nil objective")
	}
	return sweep(axes, opts, func(_ int, params map[string]float64) (float64, error) {
		return obj(params)
	})
}

// SweepSeeded sweeps a randomized objective. Each point gets its own RNG
// stream derived from (opts.Seed, pointIndex), making the table
// reproducible and independent of Workers.
func SweepSeeded(obj SeededObjective, axes []Axis, opts SweepOptions) (*Table, error) {
	if obj == nil {
		return nil, errors.New("dse: nil objective")
	}
	return sweep(axes, opts, func(i int, params map[string]float64) (float64, error) {
		rng := rand.New(rand.NewSource(parallel.DeriveSeed(opts.Seed, i)))
		return obj(params, rng)
	})
}

// sweep validates the axes and evaluates all points on the worker pool,
// assembling rows by point index so output order is canonical.
func sweep(axes []Axis, opts SweepOptions, eval func(idx int, params map[string]float64) (float64, error)) (*Table, error) {
	total, err := validateAxes(axes)
	if err != nil {
		return nil, err
	}
	rows := make([]Row, total)
	var (
		mu   sync.Mutex
		done int
	)
	err = parallel.ForEach(total, opts.Workers, func(i int) error {
		params := pointParams(axes, i)
		v, err := eval(i, params)
		if err != nil {
			return fmt.Errorf("dse: objective at %v: %w", params, err)
		}
		rows[i] = Row{Params: params, Value: v}
		if opts.OnProgress != nil {
			mu.Lock()
			done++
			d := done
			opts.OnProgress(d, total)
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Table{Axes: axes, Rows: rows}, nil
}

// validateAxes checks axis well-formedness and returns the cartesian
// product size.
func validateAxes(axes []Axis) (int, error) {
	if len(axes) == 0 {
		return 0, errors.New("dse: no axes")
	}
	total := 1
	seen := map[string]bool{}
	for _, ax := range axes {
		if ax.Name == "" {
			return 0, errors.New("dse: empty axis name")
		}
		if seen[ax.Name] {
			return 0, fmt.Errorf("dse: duplicate axis %q", ax.Name)
		}
		seen[ax.Name] = true
		if len(ax.Values) == 0 {
			return 0, fmt.Errorf("dse: axis %q has no values", ax.Name)
		}
		if total > MaxSweepPoints/len(ax.Values) {
			return 0, fmt.Errorf("dse: sweep exceeds %d points", MaxSweepPoints)
		}
		total *= len(ax.Values)
	}
	return total, nil
}

// pointParams decodes a row-major point index (last axis fastest) into its
// parameter assignment.
func pointParams(axes []Axis, i int) map[string]float64 {
	params := make(map[string]float64, len(axes))
	for d := len(axes) - 1; d >= 0; d-- {
		k := len(axes[d].Values)
		params[axes[d].Name] = axes[d].Values[i%k]
		i /= k
	}
	return params
}
