package dse

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// polyObjective is T = c · x^a · y^b, a convenient closed form whose
// elasticities are exactly a and b.
func polyObjective(c, a, b float64) Objective {
	return func(p map[string]float64) (float64, error) {
		return c * math.Pow(p["x"], a) * math.Pow(p["y"], b), nil
	}
}

func TestLinSpace(t *testing.T) {
	xs := LinSpace(0, 10, 5)
	want := []float64{0, 2.5, 5, 7.5, 10}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-12 {
			t.Fatalf("LinSpace = %v", xs)
		}
	}
	if got := LinSpace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("n=1: %v", got)
	}
}

func TestLogSpace(t *testing.T) {
	xs := LogSpace(1, 100, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if math.Abs(xs[i]-want[i])/want[i] > 1e-9 {
			t.Fatalf("LogSpace = %v", xs)
		}
	}
	if LogSpace(0, 10, 3) != nil {
		t.Fatal("non-positive lo accepted")
	}
	if got := LogSpace(5, 50, 1); len(got) != 1 || got[0] != 5 {
		t.Fatalf("n=1: %v", got)
	}
}

func TestSweepCartesianProduct(t *testing.T) {
	obj := func(p map[string]float64) (float64, error) { return p["x"]*10 + p["y"], nil }
	tbl, err := Sweep(obj, []Axis{
		{Name: "x", Values: []float64{1, 2, 3}},
		{Name: "y", Values: []float64{0, 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tbl.Rows))
	}
	// Row-major, last axis fastest: (1,0),(1,5),(2,0),(2,5),(3,0),(3,5).
	wantVals := []float64{10, 15, 20, 25, 30, 35}
	for i, w := range wantVals {
		if tbl.Rows[i].Value != w {
			t.Fatalf("row %d = %v, want %v", i, tbl.Rows[i].Value, w)
		}
	}
}

func TestSweepValidation(t *testing.T) {
	obj := func(map[string]float64) (float64, error) { return 0, nil }
	if _, err := Sweep(nil, []Axis{{Name: "x", Values: []float64{1}}}); err == nil {
		t.Fatal("nil objective accepted")
	}
	if _, err := Sweep(obj, nil); err == nil {
		t.Fatal("no axes accepted")
	}
	if _, err := Sweep(obj, []Axis{{Name: "", Values: []float64{1}}}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := Sweep(obj, []Axis{{Name: "x", Values: []float64{1}}, {Name: "x", Values: []float64{2}}}); err == nil {
		t.Fatal("duplicate axis accepted")
	}
	if _, err := Sweep(obj, []Axis{{Name: "x", Values: nil}}); err == nil {
		t.Fatal("empty values accepted")
	}
	big := make([]float64, 2048)
	if _, err := Sweep(obj, []Axis{
		{Name: "a", Values: big}, {Name: "b", Values: big}, {Name: "c", Values: big},
	}); err == nil {
		t.Fatal("oversized sweep accepted")
	}
}

func TestSweepPropagatesObjectiveError(t *testing.T) {
	boom := errors.New("boom")
	obj := func(p map[string]float64) (float64, error) {
		if p["x"] == 2 {
			return 0, boom
		}
		return 1, nil
	}
	_, err := Sweep(obj, []Axis{{Name: "x", Values: []float64{1, 2, 3}}})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestArgMinAndSeries(t *testing.T) {
	obj := func(p map[string]float64) (float64, error) {
		x := p["x"]
		return (x - 3) * (x - 3), nil
	}
	tbl, err := Sweep(obj, []Axis{{Name: "x", Values: LinSpace(0, 6, 13)}})
	if err != nil {
		t.Fatal(err)
	}
	best, err := tbl.ArgMin()
	if err != nil {
		t.Fatal(err)
	}
	if best.Params["x"] != 3 || best.Value != 0 {
		t.Fatalf("ArgMin = %+v", best)
	}
	xs, ys, err := tbl.Series("x")
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 13 || len(ys) != 13 || xs[0] != 0 || xs[12] != 6 {
		t.Fatalf("Series: %v %v", xs, ys)
	}
	if _, _, err := tbl.Series("zzz"); err == nil {
		t.Fatal("unknown axis accepted")
	}
	empty := &Table{}
	if _, err := empty.ArgMin(); err == nil {
		t.Fatal("empty ArgMin accepted")
	}
}

func TestFormatContainsHeaderAndRows(t *testing.T) {
	obj := func(p map[string]float64) (float64, error) { return p["x"], nil }
	tbl, _ := Sweep(obj, []Axis{{Name: "x", Values: []float64{7}}})
	s := tbl.Format()
	if !strings.Contains(s, "x") || !strings.Contains(s, "value") || !strings.Contains(s, "7") {
		t.Fatalf("Format = %q", s)
	}
}

func TestSensitivitiesRecoverExponents(t *testing.T) {
	// T = 2 · x³ · y⁰·⁵ → elasticities 3 and 0.5, ranked |3| > |0.5|.
	obj := polyObjective(2, 3, 0.5)
	sens, err := Sensitivities(obj, map[string]float64{"x": 10, "y": 4}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(sens) != 2 {
		t.Fatalf("got %d sensitivities", len(sens))
	}
	if sens[0].Param != "x" || math.Abs(sens[0].Elasticity-3) > 0.01 {
		t.Fatalf("first = %+v, want x elasticity 3", sens[0])
	}
	if sens[1].Param != "y" || math.Abs(sens[1].Elasticity-0.5) > 0.01 {
		t.Fatalf("second = %+v, want y elasticity 0.5", sens[1])
	}
}

func TestSensitivitiesSkipsZeroParams(t *testing.T) {
	obj := polyObjective(1, 2, 0)
	sens, err := Sensitivities(obj, map[string]float64{"x": 5, "y": 0}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sens {
		if s.Param == "y" {
			t.Fatal("zero-valued parameter probed")
		}
	}
}

func TestSensitivitiesValidation(t *testing.T) {
	obj := polyObjective(1, 1, 1)
	base := map[string]float64{"x": 1, "y": 1}
	if _, err := Sensitivities(nil, base, 0.05); err == nil {
		t.Fatal("nil objective accepted")
	}
	if _, err := Sensitivities(obj, base, 0); err == nil {
		t.Fatal("zero eps accepted")
	}
	if _, err := Sensitivities(obj, base, 1); err == nil {
		t.Fatal("eps=1 accepted")
	}
	zero := func(map[string]float64) (float64, error) { return 0, nil }
	if _, err := Sensitivities(zero, base, 0.05); err == nil {
		t.Fatal("non-positive objective accepted")
	}
}

func TestCrossoverFindsRoot(t *testing.T) {
	// a = x², b = 100: cross at x = 10.
	a := func(p map[string]float64) (float64, error) { return p["x"] * p["x"], nil }
	b := func(p map[string]float64) (float64, error) { return 100, nil }
	x, err := Crossover(a, b, "x", 1, 50, nil, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-10) > 1e-6 {
		t.Fatalf("crossover at %v, want 10", x)
	}
}

func TestCrossoverUsesBaseParams(t *testing.T) {
	// a = k·x, b = 30; with k=3 cross at x=10.
	a := func(p map[string]float64) (float64, error) { return p["k"] * p["x"], nil }
	b := func(p map[string]float64) (float64, error) { return 30, nil }
	x, err := Crossover(a, b, "x", 0.1, 100, map[string]float64{"k": 3}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-10) > 1e-5 {
		t.Fatalf("crossover at %v, want 10", x)
	}
}

func TestCrossoverEndpointRoots(t *testing.T) {
	a := func(p map[string]float64) (float64, error) { return p["x"], nil }
	b := func(p map[string]float64) (float64, error) { return 5, nil }
	x, err := Crossover(a, b, "x", 5, 50, nil, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if x != 5 {
		t.Fatalf("lo endpoint root: %v", x)
	}
	x, err = Crossover(a, b, "x", 0, 5, nil, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if x != 5 {
		t.Fatalf("hi endpoint root: %v", x)
	}
}

func TestCrossoverValidation(t *testing.T) {
	a := func(p map[string]float64) (float64, error) { return p["x"], nil }
	b := func(p map[string]float64) (float64, error) { return 100, nil }
	if _, err := Crossover(nil, b, "x", 0, 1, nil, 0); err == nil {
		t.Fatal("nil objective accepted")
	}
	if _, err := Crossover(a, b, "x", 5, 5, nil, 0); err == nil {
		t.Fatal("degenerate bracket accepted")
	}
	// No sign change: x stays below 100 on [0, 50].
	if _, err := Crossover(a, b, "x", 0, 50, nil, 0); err == nil {
		t.Fatal("bracket without sign change accepted")
	}
}

// Property: for monotone objectives the crossover returned always lies in
// the bracket and |a-b| at the root is small relative to scale.
func TestQuickCrossoverInBracket(t *testing.T) {
	f := func(slopeQ, levelQ uint8) bool {
		slope := 0.5 + float64(slopeQ)/32
		level := 10 + float64(levelQ)
		a := func(p map[string]float64) (float64, error) { return slope * p["x"], nil }
		b := func(p map[string]float64) (float64, error) { return level, nil }
		hi := 2*level/slope + 1
		x, err := Crossover(a, b, "x", 0, hi, nil, 1e-10)
		if err != nil {
			return false
		}
		if x < 0 || x > hi {
			return false
		}
		return math.Abs(slope*x-level)/level < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
