package dse

import (
	"fmt"
	"testing"
	"time"
)

// The engine's reason to exist is wall-clock: design points are
// independent, so a sweep should cost max(point) not sum(points). Two
// objective profiles are benchmarked: a latency-bound point (an objective
// that waits on something — a measurement, a remote service, disk), where
// the pool overlaps waiting even on one core, and a CPU-bound point,
// where speedup tracks the host's core count.
//
// Run with: go test -bench=Sweep ./internal/dse -benchtime=3x

// sweepAxes256 spans 16×16 = 256 points.
func sweepAxes256() []Axis {
	return []Axis{
		{Name: "x", Values: LinSpace(1, 16, 16)},
		{Name: "y", Values: LinSpace(1, 16, 16)},
	}
}

func latencyObjective(p map[string]float64) (float64, error) {
	time.Sleep(200 * time.Microsecond)
	return p["x"] + p["y"], nil
}

func cpuObjective(p map[string]float64) (float64, error) {
	s := 0.0
	for i := 0; i < 20000; i++ {
		s += p["x"] * float64(i%7)
	}
	return s, nil
}

func benchmarkSweep(b *testing.B, obj Objective, workers int) {
	axes := sweepAxes256()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SweepOpt(obj, axes, SweepOptions{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepLatencyBound(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchmarkSweep(b, latencyObjective, workers)
		})
	}
}

func BenchmarkSweepCPUBound(b *testing.B) {
	for _, workers := range []int{1, 0} { // 0 = GOMAXPROCS
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchmarkSweep(b, cpuObjective, workers)
		})
	}
}

// TestSweepWallClockSpeedup pins the acceptance criterion: on a 256-point
// sweep whose objective has non-trivial per-point latency, 8 workers must
// beat 1 worker by at least 2× wall-clock. The objective sleeps rather
// than spins so the bound holds on any machine, single-core CI included.
func TestSweepWallClockSpeedup(t *testing.T) {
	axes := sweepAxes256()
	obj := func(p map[string]float64) (float64, error) {
		time.Sleep(time.Millisecond)
		return p["x"] * p["y"], nil
	}
	start := time.Now()
	serial, err := SweepOpt(obj, axes, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	serialTime := time.Since(start)

	start = time.Now()
	par, err := SweepOpt(obj, axes, SweepOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	parTime := time.Since(start)

	for i := range serial.Rows {
		if serial.Rows[i].Value != par.Rows[i].Value {
			t.Fatalf("row %d differs between serial and parallel", i)
		}
	}
	speedup := float64(serialTime) / float64(parTime)
	t.Logf("256 points: serial %v, 8 workers %v (%.1fx)", serialTime, parTime, speedup)
	if speedup < 2 {
		t.Errorf("speedup %.2fx, want >= 2x (serial %v, parallel %v)", speedup, serialTime, parTime)
	}
}
