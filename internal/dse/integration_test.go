package dse

import (
	"math"
	"testing"

	"github.com/splitexec/splitexec/internal/aspen"
	"github.com/splitexec/splitexec/internal/core"
	"github.com/splitexec/splitexec/internal/machine"
)

// stage1Objective builds the paper's stage-1 model as a DSE objective over
// the SimpleNode machine, exactly as the Fig. 9(a) predictor does.
func stage1Objective(t *testing.T) Objective {
	t.Helper()
	node := machine.SimpleNode()
	f, err := aspen.Parse(node.ToAspen())
	if err != nil {
		t.Fatal(err)
	}
	spec, err := aspen.BuildMachine(f, node.Name)
	if err != nil {
		t.Fatal(err)
	}
	s1, _, _, err := core.ParseStageModels()
	if err != nil {
		t.Fatal(err)
	}
	return ModelObjective(s1, spec, aspen.EvalOptions{
		HostSocket: node.CPU.Name,
		Params:     map[string]float64{"M": 12, "N": 12},
	})
}

func TestStage1SweepIsMonotone(t *testing.T) {
	obj := stage1Objective(t)
	tbl, err := Sweep(obj, []Axis{{Name: "LPS", Values: LinSpace(10, 100, 10)}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(tbl.Rows); i++ {
		if tbl.Rows[i].Value <= tbl.Rows[i-1].Value {
			t.Fatalf("stage-1 time not increasing at row %d: %v <= %v",
				i, tbl.Rows[i].Value, tbl.Rows[i-1].Value)
		}
	}
}

func TestStage1SensitivityIsEmbeddingBound(t *testing.T) {
	// At LPS=50 the embedding term dominates the constant processor
	// initialization, so predicted time responds super-quadratically to
	// problem size — the paper's central scaling claim as an elasticity.
	obj := stage1Objective(t)
	sens, err := Sensitivities(obj, map[string]float64{"LPS": 50, "M": 12, "N": 12}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	var lps *Sensitivity
	for i := range sens {
		if sens[i].Param == "LPS" {
			lps = &sens[i]
		}
	}
	if lps == nil {
		t.Fatal("no LPS sensitivity reported")
	}
	if lps.Elasticity < 2 {
		t.Fatalf("LPS elasticity %v, want > 2 (embedding-dominated)", lps.Elasticity)
	}
	// Problem size must outrank the hardware-lattice axes at this point.
	if sens[0].Param != "LPS" {
		t.Fatalf("dominant parameter %q, want LPS", sens[0].Param)
	}
}

func TestStage1CrossesOneSecondBudget(t *testing.T) {
	// Design question: at what problem size does pre-processing exceed a
	// 1-second budget? The root must be consistent with direct evaluation.
	obj := stage1Objective(t)
	budget := func(map[string]float64) (float64, error) { return 1.0, nil }
	n, err := Crossover(obj, budget, "LPS", 1, 100, map[string]float64{"M": 12, "N": 12}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 1 || n >= 100 {
		t.Fatalf("crossover at %v, want interior", n)
	}
	below, err := obj(map[string]float64{"LPS": math.Floor(n), "M": 12, "N": 12})
	if err != nil {
		t.Fatal(err)
	}
	above, err := obj(map[string]float64{"LPS": math.Ceil(n + 1), "M": 12, "N": 12})
	if err != nil {
		t.Fatal(err)
	}
	if !(below <= 1.05 && above >= 0.95) {
		t.Fatalf("crossover %v inconsistent: T(floor)=%v T(ceil+1)=%v", n, below, above)
	}
}
