package router

import (
	"strconv"

	"github.com/splitexec/splitexec/internal/obs"
)

// initObs registers the router's telemetry against the configured scope.
// Every series samples a ledger the router already maintains (the Stats
// atomics, queue lengths, ring membership) at scrape time, so dispatch hot
// paths pay nothing and /metrics can never disagree with Stats().
func (r *Router) initObs() {
	reg := r.opts.Obs.Registry()
	if reg == nil {
		return
	}
	reg.CounterFunc("splitexec_router_steals_total",
		func() float64 { return float64(r.stolen.Load()) })
	reg.CounterFunc("splitexec_router_redispatch_total",
		func() float64 { return float64(r.redispatched.Load()) })
	reg.CounterFunc("splitexec_router_requeue_total",
		func() float64 { return float64(r.requeued.Load()) })
	reg.CounterFunc("splitexec_router_failed_total",
		func() float64 { return float64(r.failedJobs.Load()) })
	reg.CounterFunc("splitexec_router_evictions_total",
		func() float64 { return float64(r.evicted.Load()) })
	reg.GaugeFunc("splitexec_router_epoch",
		func() float64 { return float64(r.epoch.Load()) })
	reg.CounterFunc("splitexec_router_keys_moved_total",
		func() float64 { return float64(r.keysMoved.Load()) })
	reg.CounterFunc("splitexec_router_warmed_total",
		func() float64 { return float64(r.warmed.Load()) })
	for _, sh := range r.shards {
		r.registerShardObs(sh)
	}
}

// registerShardObs publishes one shard's series; AddShard calls it for
// shards provisioned after boot, so elastic members appear in /metrics the
// moment they exist.
func (r *Router) registerShardObs(sh *shard) {
	reg := r.opts.Obs.Registry()
	if reg == nil {
		return
	}
	lbl := strconv.Itoa(sh.idx)
	reg.CounterFunc(obs.Label("splitexec_router_dispatched_total", "shard", lbl),
		func() float64 { return float64(sh.dispatched.Load()) })
	reg.GaugeFunc(obs.Label("splitexec_router_backlog", "shard", lbl),
		func() float64 { return float64(len(sh.queue)) })
	reg.GaugeFunc(obs.Label("splitexec_router_shard_up", "shard", lbl),
		func() float64 {
			if sh.isUp() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc(obs.Label("splitexec_router_shard_in_ring", "shard", lbl),
		func() float64 {
			if sh.ringState() != '.' {
				return 1
			}
			return 0
		})
}
