//go:build race

package router

// raceEnabled reports whether this test binary was built with -race; the
// wall-clock band gate skips under instrumentation.
const raceEnabled = true
