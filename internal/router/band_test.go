package router

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/des"
	"github.com/splitexec/splitexec/internal/loadgen"
	"github.com/splitexec/splitexec/internal/service"
	"github.com/splitexec/splitexec/internal/workload"
)

// The measured-vs-simulated band for the federated wire path. Wider than
// the in-process gate (loadgen pins 0.8–1.7): a cluster replay stacks TCP
// framing twice (client→router→shard) and the router's queue semantics
// approximate the DES's backlog in wall time. The invariant worth pinning
// is that the cluster DES remains predictive of the live federation, not
// that loopback overhead is free.
const (
	clusterBandLo = 0.5
	clusterBandHi = 2.5
)

// bandRate picks the aggregate offered rate for this machine. Phase replay
// holds sub-tick accuracy by spinning the last ~2ms of every phase
// (service.SleepPrecise), so each live job costs ~2ms of real CPU on top
// of the wire path — live parallelism is capped by core count, not by the
// scenario's host count. ~180 jobs/s per core keeps that burn near half
// the machine so queueing stays the model's, not the scheduler's; a
// ≥14-core runner carries the full 2500/s federation the scenario is
// written for.
func bandRate() float64 {
	r := 180 * float64(runtime.NumCPU())
	if r > 2500 {
		r = 2500
	}
	if r < 250 {
		r = 250
	}
	return r
}

// clusterBandScenario is the federated open-system workload: three classes
// consistent-hash-routed over three shards, with a steal threshold so no
// shard saturates on an unlucky ring split. One long QPU phase per job
// (rather than three short ones) keeps the replay's spin cost at a single
// slack tail, and the per-shard host count tracks the offered rate to hold
// utilization near 0.55.
func clusterBandScenario(rate float64) *workload.Scenario {
	const occupancy = 8 * time.Millisecond
	hosts := int(rate/3*occupancy.Seconds()/0.55) + 1
	jobs := int(rate * 0.4)
	return &workload.Scenario{
		Name:    "cluster-band",
		Seed:    17,
		Arrival: workload.Arrival{Kind: workload.Poisson, Rate: rate},
		Mix: []workload.JobClass{
			{Name: "a", Weight: 1, Profile: workload.Profile{QPUService: workload.Duration(occupancy)}},
			{Name: "b", Weight: 1, Profile: workload.Profile{QPUService: workload.Duration(occupancy)}},
			{Name: "c", Weight: 1, Profile: workload.Profile{QPUService: workload.Duration(occupancy)}},
		},
		System:  workload.SystemSpec{Kind: "dedicated", Hosts: hosts},
		Horizon: workload.Horizon{Jobs: jobs},
		Cluster: &workload.ClusterSpec{Shards: 3, StealThreshold: 4},
	}
}

// TestClusterLiveMatchesDES is the federation acceptance gate: replaying a
// multi-shard scenario over live TCP — load generator → router → three
// service instances — must land the measured sojourn inside the band of the
// cluster DES prediction, conserve every job across the shard ledgers, and
// sustain the machine-scaled aggregate rate (2500 jobs/s on a full-size
// runner).
func TestClusterLiveMatchesDES(t *testing.T) {
	if raceEnabled {
		// The gate asserts wall-clock latency against a virtual-time
		// prediction; the race detector multiplies the wire path's CPU
		// cost enough to cap throughput below the offered rate on small
		// machines, which measures the instrumentation, not the fabric.
		// Tier-1 (`go test ./...`) and the storm runner enforce the band
		// without instrumentation; the -race CI lane still runs every
		// functional router test.
		t.Skip("skipping wall-clock band gate under -race")
	}
	rate := bandRate()
	sc := clusterBandScenario(rate)
	jobs := sc.Horizon.Jobs
	t.Logf("offered rate %.0f jobs/s over %d shards × %d hosts (%d cores), %d jobs",
		rate, sc.ShardCount(), sc.System.Hosts, runtime.NumCPU(), jobs)
	pred, err := des.Simulate(sc, des.Options{})
	if err != nil {
		t.Fatal(err)
	}

	inBand := func(measured, predicted time.Duration) (float64, bool) {
		ratio := float64(measured) / float64(predicted)
		return ratio, ratio >= clusterBandLo && ratio <= clusterBandHi
	}

	// Tail latency over two wire hops is noisy on a shared test core;
	// retry the whole replay a few times, exactly like the storm runner.
	const attempts = 4
	var lastMean, lastP99 string
	for attempt := 1; attempt <= attempts; attempt++ {
		got, perShard := replayOnce(t, sc)
		if got.Jobs != jobs || got.Failed != 0 {
			t.Fatalf("completed %d jobs (%d failed), want %d", got.Jobs, got.Failed, jobs)
		}
		sum := service.Report{}
		served := 0
		for i, rep := range perShard {
			if rep.Jobs+rep.Failed != rep.Submitted {
				t.Fatalf("shard %d ledger leak: %d + %d != %d", i, rep.Jobs, rep.Failed, rep.Submitted)
			}
			if rep.Jobs > 0 {
				served++
			}
			sum.Jobs += rep.Jobs
			sum.Submitted += rep.Submitted
		}
		// Three classes over three shards need not cover every shard (the
		// ring may fold two classes onto one owner), but a federation that
		// lands everything on one shard is not sharding at all.
		if served < 2 {
			t.Errorf("only %d of %d shards served jobs", served, len(perShard))
		}
		if sum.Jobs != jobs {
			t.Fatalf("shard ledgers total %d completions, want %d", sum.Jobs, jobs)
		}
		meanRatio, meanOK := inBand(got.Sojourn.Mean, pred.Sojourn.Mean)
		p99Ratio, p99OK := inBand(got.Sojourn.P99, pred.Sojourn.P99)
		t.Logf("attempt %d: mean %v vs DES %v (%.2fx), p99 %v vs DES %v (%.2fx), throughput %.0f/s",
			attempt, got.Sojourn.Mean, pred.Sojourn.Mean, meanRatio,
			got.Sojourn.P99, pred.Sojourn.P99, p99Ratio, got.Throughput)
		if got.Throughput < 0.7*rate {
			t.Errorf("aggregate throughput %.0f jobs/s below 0.7× the offered %.0f/s", got.Throughput, rate)
		}
		if meanOK && p99OK {
			return
		}
		lastMean = fmt.Sprintf("mean %v vs DES %v (%.2fx)", got.Sojourn.Mean, pred.Sojourn.Mean, meanRatio)
		lastP99 = fmt.Sprintf("p99 %v vs DES %v (%.2fx)", got.Sojourn.P99, pred.Sojourn.P99, p99Ratio)
	}
	t.Errorf("live federation outside [%.2f, %.2f]× DES band after %d attempts: %s, %s",
		clusterBandLo, clusterBandHi, attempts, lastMean, lastP99)
}

// replayOnce stands up the full federation — one service per shard, a
// router front end — replays sc through the router over TCP, and returns
// the loadgen result plus the drained per-shard ledgers.
func replayOnce(t *testing.T, sc *workload.Scenario) (*loadgen.Result, []service.Report) {
	t.Helper()
	shards := sc.ShardCount()
	svcs := make([]*service.Service, shards)
	addrs := make([]string, shards)
	for i := range svcs {
		svc, err := service.New(service.Options{
			Workers:    sc.System.Hosts,
			Fleet:      sc.System.QPUs(),
			QueueDepth: sc.Horizon.Jobs,
			Policy:     sc.Policy,
		})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := svc.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		svcs[i] = svc
		addrs[i] = addr.String()
	}
	rt, err := New(Options{
		Shards: addrs,
		// Enough lanes that the router never throttles a shard below its
		// own worker pool: each lane blocks for a full shard round trip.
		ClientsPerShard: 2 * sc.System.Hosts,
		QueueDepth:      sc.Horizon.Jobs,
		StealThreshold:  sc.StealThreshold(),
		PingEvery:       -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	front, err := rt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	got, err := loadgen.Run(sc, loadgen.Options{
		Addr:    front.String(),
		Conns:   4 * sc.System.Hosts * shards,
		Timeout: 30 * time.Second,
		Fleets:  svcs,
	})
	rt.Drain()
	reports := make([]service.Report, shards)
	for i, svc := range svcs {
		reports[i] = svc.Drain()
	}
	if err != nil {
		t.Fatal(err)
	}
	return got, reports
}
