package router

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/arch"
	"github.com/splitexec/splitexec/internal/qubo"
	"github.com/splitexec/splitexec/internal/ring"
	"github.com/splitexec/splitexec/internal/service"
	"github.com/splitexec/splitexec/internal/workload"
)

// startShards boots n real service instances on loopback and returns their
// addresses alongside the handles (for shard-kill tests).
func startShards(t *testing.T, n int) ([]string, []*service.Service) {
	t.Helper()
	addrs := make([]string, n)
	svcs := make([]*service.Service, n)
	for i := 0; i < n; i++ {
		svc, err := service.New(service.Options{Workers: 2, Fleet: 2, QueueDepth: 256})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := svc.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr.String()
		svcs[i] = svc
		t.Cleanup(func() {
			svc.CloseListener()
			svc.Drain()
		})
	}
	return addrs, svcs
}

// clusterRing is the scenario-side ring for a cluster of n — the one the
// DES routes with, which the router must agree with.
func clusterRing(n int) *ring.Ring {
	sc := &workload.Scenario{Cluster: &workload.ClusterSpec{Shards: n}}
	return sc.ClusterRing()
}

func profileReq(class int) service.SolveRequest {
	req := service.EncodeProfile(arch.JobProfile{
		PreProcess:  50 * time.Microsecond,
		QPUService:  50 * time.Microsecond,
		PostProcess: 20 * time.Microsecond,
	})
	req.Class = class
	return req
}

// TestRouterClassAffinity: without stealing, every class lands on exactly
// the shard the scenario-side ring (workload.ClusterSpec) predicts — the
// live fabric and the DES agree on ownership.
func TestRouterClassAffinity(t *testing.T) {
	addrs, _ := startShards(t, 3)
	rt, err := New(Options{Shards: addrs, PingEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Drain()

	const perClass = 20
	for class := 0; class < 3; class++ {
		for i := 0; i < perClass; i++ {
			if _, err := rt.Submit(profileReq(class)); err != nil {
				t.Fatalf("class %d job %d: %v", class, i, err)
			}
		}
	}
	st := rt.Stats()
	if st.Stolen != 0 {
		t.Errorf("stealing disabled but %d jobs stolen", st.Stolen)
	}
	// Predict ownership with the scenario-side ring the DES uses.
	rg := clusterRing(3)
	want := make([]int64, 3)
	for class := 0; class < 3; class++ {
		want[rg.Owner(workload.ClassKey(class))] += perClass
	}
	for i := range want {
		if st.Dispatched[i] != want[i] {
			t.Errorf("shard %d dispatched %d, ring predicts %d", i, st.Dispatched[i], want[i])
		}
	}
}

// TestRouterQUBOAffinity: identical problems (same canonical graph hash)
// always land on one shard, keeping its embedding cache hot; a structurally
// different problem may land elsewhere but must also stay pinned.
func TestRouterQUBOAffinity(t *testing.T) {
	addrs, _ := startShards(t, 4)
	rt, err := New(Options{Shards: addrs, PingEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Drain()

	ring := qubo.NewQUBO(5)
	for i := 0; i < 5; i++ {
		ring.Set(i, (i+1)%5, 1)
		ring.Set(i, i, -1)
	}
	req := service.EncodeQUBO(ring)
	for i := 0; i < 10; i++ {
		resp, err := rt.Submit(req)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if !resp.OK {
			t.Fatalf("submit %d refused: %s", i, resp.Error)
		}
	}
	st := rt.Stats()
	owners := 0
	for i, n := range st.Dispatched {
		if n > 0 {
			owners++
			if n != 10 {
				t.Errorf("shard %d saw %d of 10 identical problems", i, n)
			}
		}
	}
	if owners != 1 {
		t.Errorf("identical problems spread over %d shards, want 1", owners)
	}
}

// TestRouterRejectsMalformed: a bad QUBO frame is refused at the routing
// tier without consuming shard capacity.
func TestRouterRejectsMalformed(t *testing.T) {
	addrs, _ := startShards(t, 2)
	rt, err := New(Options{Shards: addrs, PingEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Drain()

	resp := rt.handle(service.SolveRequest{Dim: -3})
	if resp.OK || resp.Error == "" {
		t.Fatalf("malformed request accepted: %+v", resp)
	}
	st := rt.Stats()
	for i, n := range st.Dispatched {
		if n != 0 {
			t.Errorf("malformed request reached shard %d (%d dispatches)", i, n)
		}
	}
}

// TestRouterStealing: with a tight threshold and slow shards, backlogged
// home queues divert work to shallower ones.
func TestRouterStealing(t *testing.T) {
	addrs, _ := startShards(t, 3)
	rt, err := New(Options{
		Shards:          addrs,
		ClientsPerShard: 1, // one lane per shard so backlogs form
		QueueDepth:      64,
		StealThreshold:  1,
		PingEvery:       -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Drain()

	// Every job in one class: all home to a single shard, so any backlog
	// must overflow through the steal rule.
	var wg sync.WaitGroup
	var failed atomic.Int64
	for i := 0; i < 60; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := rt.Submit(profileReq(0)); err != nil {
				failed.Add(1)
			}
		}()
	}
	wg.Wait()
	if n := failed.Load(); n > 0 {
		t.Fatalf("%d submits failed", n)
	}
	st := rt.Stats()
	if st.Stolen == 0 {
		t.Error("no jobs stolen despite threshold 1 and a single-class storm")
	}
	busy := 0
	for _, n := range st.Dispatched {
		if n > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("work reached only %d shards", busy)
	}
}

// TestRouterHealthRoutesAroundDeadShard: the ping loop must evict a dead
// shard and the ring must re-home its keys to the survivors.
func TestRouterHealthRoutesAroundDeadShard(t *testing.T) {
	addrs, svcs := startShards(t, 3)
	rt, err := New(Options{
		Shards:        addrs,
		PingEvery:     10 * time.Millisecond,
		PingTimeout:   200 * time.Millisecond,
		PingFailLimit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Drain()

	// Kill the shard that owns class 0, so its jobs must re-home.
	const victimClass = 0
	victim := clusterRing(3).Owner(workload.ClassKey(victimClass))
	svcs[victim].CloseListener()
	svcs[victim].Drain()

	deadline := time.Now().Add(5 * time.Second)
	for rt.Up()[victim] {
		if time.Now().After(deadline) {
			t.Fatal("health loop never marked the dead shard down")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		if _, err := rt.Submit(profileReq(victimClass)); err != nil {
			t.Fatalf("job %d for the dead shard's class failed: %v", i, err)
		}
	}
	st := rt.Stats()
	survivors := int64(0)
	for i, n := range st.Dispatched {
		if i != victim {
			survivors += n
		}
	}
	if survivors < 10 {
		t.Errorf("survivors served %d of 10 re-homed jobs", survivors)
	}
}

// TestRouterFailShardRedispatch is the acceptance invariant on the live
// fabric: killing a shard with jobs in flight loses nothing — every submit
// completes on a survivor, with the re-dispatch path demonstrably taken.
func TestRouterFailShardRedispatch(t *testing.T) {
	addrs, svcs := startShards(t, 3)
	rt, err := New(Options{
		Shards:     addrs,
		QueueDepth: 16,
		MaxRetries: 5,
		Backoff:    time.Millisecond,
		PingEvery:  -1, // deterministic kill via FailShard, not the prober
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Drain()

	slow := service.EncodeProfile(arch.JobProfile{
		PreProcess: 500 * time.Microsecond,
		QPUService: 2 * time.Millisecond,
	})

	const jobs = 120
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := slow
			req.Class = i % 3 // spread over all shards
			_, errs[i] = rt.Submit(req)
		}(i)
	}

	// Let jobs reach the shards, then kill one that is carrying work.
	time.Sleep(10 * time.Millisecond)
	victim := 0
	for i, n := range rt.Stats().Dispatched {
		if n > 0 {
			victim = i
			break
		}
	}
	svcs[victim].CloseListener()
	if err := rt.FailShard(victim); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d lost to the shard kill: %v", i, err)
		}
	}
	st := rt.Stats()
	if st.Redispatched == 0 && st.Requeued == 0 {
		t.Error("shard kill triggered no re-dispatch — the fault never bit")
	}
	if st.Failed != 0 {
		t.Errorf("%d jobs exhausted the re-dispatch budget", st.Failed)
	}
	if up := rt.Up(); up[victim] {
		t.Error("failed shard still reported up")
	}
}

// TestRouterRestoreShard: a shard downed by FailShard rejoins on
// RestoreShard and receives traffic again.
func TestRouterRestoreShard(t *testing.T) {
	addrs, _ := startShards(t, 2)
	rt, err := New(Options{Shards: addrs, PingEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Drain()

	if err := rt.FailShard(0); err != nil {
		t.Fatal(err)
	}
	if err := rt.FailShard(1); err == nil {
		// Both down: dispatch must refuse rather than hang.
		if _, err := rt.Submit(profileReq(0)); err == nil {
			t.Error("submit with every shard down succeeded")
		}
	}
	if err := rt.RestoreShard(0); err != nil {
		t.Fatal(err)
	}
	if err := rt.RestoreShard(1); err != nil {
		t.Fatal(err)
	}
	for class := 0; class < 4; class++ {
		if _, err := rt.Submit(profileReq(class)); err != nil {
			t.Fatalf("post-restore submit failed: %v", err)
		}
	}
	if up := rt.Up(); !up[0] || !up[1] {
		t.Errorf("membership after restore: %v", up)
	}
}

// TestRouterRemoveShardDrains: RemoveShard permanently rebalances — queued
// work re-homes, nothing is lost, and the shard stays out even with the
// health loop running against its (still live) backend.
func TestRouterRemoveShardDrains(t *testing.T) {
	addrs, _ := startShards(t, 3)
	rt, err := New(Options{
		Shards:        addrs,
		QueueDepth:    16,
		PingEvery:     10 * time.Millisecond,
		PingTimeout:   200 * time.Millisecond,
		PingFailLimit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Drain()

	const jobs = 90
	var wg sync.WaitGroup
	var failed atomic.Int64
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := rt.Submit(profileReq(i % 3)); err != nil {
				failed.Add(1)
			}
		}(i)
	}
	time.Sleep(5 * time.Millisecond)
	if err := rt.RemoveShard(2); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if n := failed.Load(); n > 0 {
		t.Fatalf("%d jobs lost across the drain", n)
	}
	// The backend is alive and answering pings, but a removed shard must
	// not rejoin.
	time.Sleep(50 * time.Millisecond)
	if rt.Up()[2] {
		t.Error("removed shard re-admitted by the health loop")
	}
	before := rt.Stats().Dispatched[2]
	for class := 0; class < 6; class++ {
		if _, err := rt.Submit(profileReq(class)); err != nil {
			t.Fatalf("post-remove submit failed: %v", err)
		}
	}
	if after := rt.Stats().Dispatched[2]; after != before {
		t.Errorf("removed shard received %d new dispatches", after-before)
	}
}

// TestRouterWireRoundTrip: the router speaks the full wire protocol — a
// stock service.Client dials it, solves a QUBO end-to-end through a backing
// shard, and health-pings it.
func TestRouterWireRoundTrip(t *testing.T) {
	addrs, _ := startShards(t, 2)
	rt, err := New(Options{Shards: addrs, PingEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Drain()

	front, err := rt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := service.Dial(front.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatalf("ping through the router: %v", err)
	}
	q := qubo.NewQUBO(3)
	q.Set(0, 0, -1)
	q.Set(1, 1, 2)
	q.Set(0, 2, -2)
	resp, err := c.Solve(q)
	if err != nil {
		t.Fatalf("solve through the router: %v", err)
	}
	if !resp.OK || len(resp.Binary) != 3 {
		t.Fatalf("bad solve response: %+v", resp)
	}
	// A second solve of the same problem reuses the same shard (and its
	// embedding cache).
	if _, err := c.Solve(q); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Dispatched[0]+st.Dispatched[1] != 2 {
		t.Errorf("dispatched %v, want 2 total", st.Dispatched)
	}
	owners := 0
	for _, n := range st.Dispatched {
		if n > 0 {
			owners++
		}
	}
	if owners != 1 {
		t.Errorf("repeat solves of one problem spread over %d shards", owners)
	}
}
