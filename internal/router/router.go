// Package router is the front-end tier of the federated deployment: it
// speaks the same length-prefixed wire protocol as `splitexec serve`, but
// instead of running jobs it consistent-hash-shards them across N backing
// service instances — QUBO jobs by their embedding-cache key
// (graph.CanonicalHash of the problem graph), profile jobs by workload
// class — so each shard's core.EmbeddingCache stays hot across the whole
// key space. Per-shard bounded queues give backpressure; a backlog past the
// steal threshold diverts jobs to the least-loaded shard; periodic pings
// drop shards from the ring after consecutive failures and re-admit them
// after a probation window of consecutive successes; and a shard loss
// (detected or commanded via RemoveShard/FailShard) re-dispatches queued
// and in-flight jobs to the survivors against a bounded retry budget, with
// hash ownership moving only the dead shard's arc of the ring.
//
// Membership is elastic: AddShard brings a fresh backend into the ring at
// runtime — its embedding cache warmed from the old owners' hot keys before
// ownership flips — and DrainShard retires one gracefully, re-routing its
// queue while in-flight work completes. Each transition bumps a membership
// epoch; every dispatch is tagged with the epoch it routed under, so jobs
// from epoch N complete under N's routing while epoch N+1's rebalance is in
// flight. The admin wire verbs (service.WireAdmin: add/remove/drain/status)
// drive all of this remotely via `splitexec admin`.
//
// The routing computation — ring membership, shard keys, steal rule — is
// shared with the discrete-event simulator (internal/des), which makes the
// DES the predictive twin of the federated system: a cluster scenario's
// predicted shard assignment is the one this router realizes, and
// internal/ring's Moved diff predicts exactly the keys a membership change
// re-homes.
package router

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/obs"
	"github.com/splitexec/splitexec/internal/qpuserver"
	"github.com/splitexec/splitexec/internal/ring"
	"github.com/splitexec/splitexec/internal/service"
	"github.com/splitexec/splitexec/internal/workload"
)

// Defaults, applied when the corresponding Options field is zero.
const (
	DefaultClientsPerShard = 4
	DefaultQueueDepth      = 256
	DefaultPingEvery       = 250 * time.Millisecond
	DefaultPingTimeout     = 2 * time.Second
	DefaultPingFailLimit   = 3
	DefaultPingSuccLimit   = 2
)

// probationCap bounds the exponential probe backoff a flapping shard earns:
// each eviction doubles its probation window, up to this many ping periods.
const probationCap = 16

// hotKeyCap bounds the router's hot-key memory: the most recent distinct
// QUBO routing keys (and their requests) kept for warming a joining shard's
// embedding cache.
const hotKeyCap = 512

// ErrNoShards reports a dispatch with every shard down or removed.
var ErrNoShards = errors.New("router: no shards available")

// errShardDown re-routes a job whose target died between pick and enqueue.
var errShardDown = errors.New("router: shard down")

// Options configure a router.
type Options struct {
	// Shards are the backing service addresses, index order fixed for the
	// router's lifetime (membership changes flip shards up/down, they
	// never renumber).
	Shards []string
	// ClientsPerShard sizes each shard's dispatch worker pool — and
	// therefore its connection pool (one TCP client per worker).
	ClientsPerShard int
	// QueueDepth bounds each shard's dispatch queue; a full queue blocks
	// the submitting connection (backpressure), exactly like the backing
	// service's own intake.
	QueueDepth int
	// StealThreshold enables cross-shard work stealing: a job whose home
	// shard's queue has reached this length goes to the shortest queue
	// instead (ties on the lowest shard index). Zero disables stealing.
	StealThreshold int
	// MaxRetries is the re-dispatch budget a job may consume when shards
	// fail under it (default workload.DefaultMaxRetries); Backoff is the
	// pause before each re-dispatch (default workload.DefaultBackoff) —
	// the same budget semantics workload.FaultSpec declares.
	MaxRetries int
	Backoff    time.Duration
	// PingEvery is the health-check period (default 250ms; negative
	// disables health checking). PingTimeout bounds each probe, and
	// PingFailLimit consecutive failures mark a shard down. A downed shard
	// then sits out a probation window — one ping period, doubling with
	// each subsequent eviction up to probationCap periods — and re-admits
	// only after PingSuccLimit consecutive successful probes, so a flapping
	// backend (alternating good and bad probes) stays out of the ring
	// instead of oscillating through it.
	PingEvery     time.Duration
	PingTimeout   time.Duration
	PingFailLimit int
	PingSuccLimit int
	// Replicas is the ring's virtual-node count per shard (0 selects
	// ring.DefaultReplicas). Must match the scenario's ClusterSpec for
	// DES-predicted assignments to hold.
	Replicas int
	// Timeout bounds each forwarded round trip (0 = none). It must cover
	// the backing shard's queue wait plus service, not just service.
	Timeout time.Duration
	// Obs, when non-nil, is the telemetry scope the router publishes into:
	// per-shard backlog/dispatch/membership series and steal/eviction/
	// re-dispatch counters into its registry (all sampled at scrape time
	// from the ledgers the router already keeps), and per-job routing spans
	// into its tracer. A nil scope disables telemetry.
	Obs *obs.Scope
}

// Stats is a snapshot of the router's dispatch counters.
type Stats struct {
	// Dispatched counts jobs enqueued per shard (by original index).
	Dispatched []int64 `json:"dispatched"`
	// Stolen counts jobs diverted off their home shard by the steal rule.
	Stolen int64 `json:"stolen"`
	// Redispatched counts shard-loss re-dispatches (in-flight jobs that
	// consumed retry budget).
	Redispatched int64 `json:"redispatched"`
	// Requeued counts queued jobs drained off a dying shard (free
	// re-dispatch — they had not reached the shard yet).
	Requeued int64 `json:"requeued"`
	// Failed counts jobs that exhausted the re-dispatch budget.
	Failed int64 `json:"failed"`
	// Evicted counts shard down-transitions (health-check drops, FailShard,
	// RemoveShard) over the router's lifetime.
	Evicted int64 `json:"evicted,omitempty"`
	// Epoch is the membership epoch: it bumps on every administrative
	// membership change (AddShard, DrainShard, RemoveShard).
	Epoch int64 `json:"epoch,omitempty"`
	// KeysMoved counts tracked hot keys whose ring owner changed across
	// membership transitions; Warmed counts those successfully replayed
	// into a joining shard's embedding cache before its ownership flip.
	KeysMoved int64 `json:"keysMoved,omitempty"`
	Warmed    int64 `json:"warmed,omitempty"`
}

// pjob is one proxied request in flight through the router. The routing
// metadata fields (home, stolen, served) and the span are touched only by
// the job's current carrier — submitting goroutine, shard worker, retry
// goroutine — whose handoffs are channel-ordered, so they need no lock.
type pjob struct {
	req      service.SolveRequest
	key      string
	attempts int
	resp     chan presult

	home   int   // latest hash-home shard (-1 until first pick)
	epoch  int64 // membership epoch of the latest pick
	stolen bool
	served int // shard that answered (-1 until a shard does)
	span   *obs.SpanBuilder
}

type presult struct {
	resp service.SolveResponse
	err  error
}

func (p *pjob) done(resp service.SolveResponse, err error) {
	p.resp <- presult{resp: resp, err: err}
}

// shard is one backing service endpoint.
type shard struct {
	idx  int
	addr string

	queue chan *pjob

	mu sync.Mutex
	// up is fault state (health probes, FailShard); inRing is membership
	// (AddShard flips it on after warm-up, DrainShard/RemoveShard off). The
	// shard takes traffic only when both hold.
	up      bool
	inRing  bool
	removed bool
	downCh  chan struct{} // closed when the shard goes down; replaced on revival
	clients map[*service.Client]struct{}

	// Probation state, touched only by the health loop goroutine: fails and
	// succ count consecutive probe outcomes, penalty is the current backoff
	// window (doubling per eviction), and probeAfter gates the next probe of
	// a downed shard.
	fails      int
	succ       int
	penalty    time.Duration
	probeAfter time.Time

	dispatched atomic.Int64
	inflight   sync.WaitGroup // jobs handed to workers, for graceful drain
}

// down returns the channel a blocked enqueue watches.
func (sh *shard) down() <-chan struct{} {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.downCh
}

func (sh *shard) isUp() bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.up
}

// ringState is the shard's membership mask byte: '1' routable, '0' in the
// ring but down (a fault, expected back), '.' absent (never joined, drained
// or removed) — the same 3-state key the DES's ring cache uses.
func (sh *shard) ringState() byte {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	switch {
	case sh.inRing && sh.up:
		return '1'
	case sh.inRing:
		return '0'
	default:
		return '.'
	}
}

// register tracks a worker's client so FailShard can interrupt its I/O.
func (sh *shard) register(c *service.Client) {
	sh.mu.Lock()
	sh.clients[c] = struct{}{}
	sh.mu.Unlock()
}

func (sh *shard) unregister(c *service.Client) {
	sh.mu.Lock()
	delete(sh.clients, c)
	sh.mu.Unlock()
	c.Close()
}

// Router is the federating front end.
type Router struct {
	opts Options

	// mu guards shards (append-only; AddShard copies the backing array so
	// snapshots stay iterable without the lock) and rings.
	mu     sync.Mutex
	shards []*shard
	rings  map[string]*ring.Ring // 3-state membership pattern → ring

	// Hot-key memory for warm-up: the most recent distinct QUBO routing
	// keys and their requests, FIFO-evicted at hotKeyCap.
	hotMu    sync.Mutex
	hotKeys  map[string]service.SolveRequest
	hotOrder []string

	ln       net.Listener
	lnMu     sync.Mutex
	conns    map[net.Conn]struct{}
	connWG   sync.WaitGroup
	workerWG sync.WaitGroup
	healthWG sync.WaitGroup
	stop     chan struct{}
	closed   bool

	epoch        atomic.Int64 // membership epoch; bumps per add/drain/remove
	keysMoved    atomic.Int64
	warmed       atomic.Int64
	stolen       atomic.Int64
	redispatched atomic.Int64
	requeued     atomic.Int64
	failedJobs   atomic.Int64
	evicted      atomic.Int64
	seq          atomic.Int64 // dispatch sequence; router span IDs
}

// snapshot returns the current shard table for lock-free iteration: the
// slice is never mutated in place (AddShard appends onto a fresh backing
// array), and shard pointers are stable for the router's lifetime.
func (r *Router) snapshot() []*shard {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.shards
}

// New builds a router over the given shard addresses and starts its
// dispatch workers and health loop. Call Drain to shut it down.
func New(opts Options) (*Router, error) {
	if len(opts.Shards) == 0 {
		return nil, errors.New("router: no shard addresses")
	}
	if opts.ClientsPerShard <= 0 {
		opts.ClientsPerShard = DefaultClientsPerShard
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = workload.DefaultMaxRetries
	}
	if opts.Backoff == 0 {
		opts.Backoff = workload.DefaultBackoff
	}
	if opts.PingEvery == 0 {
		opts.PingEvery = DefaultPingEvery
	}
	if opts.PingTimeout <= 0 {
		opts.PingTimeout = DefaultPingTimeout
	}
	if opts.PingFailLimit <= 0 {
		opts.PingFailLimit = DefaultPingFailLimit
	}
	if opts.PingSuccLimit <= 0 {
		opts.PingSuccLimit = DefaultPingSuccLimit
	}
	r := &Router{
		opts:    opts,
		rings:   map[string]*ring.Ring{},
		hotKeys: map[string]service.SolveRequest{},
		conns:   map[net.Conn]struct{}{},
		stop:    make(chan struct{}),
	}
	for i, addr := range opts.Shards {
		sh := r.newShard(i, addr)
		sh.inRing = true
		r.shards = append(r.shards, sh)
		r.startShard(sh)
	}
	r.initObs()
	if opts.PingEvery > 0 {
		r.healthWG.Add(1)
		go r.healthLoop()
	}
	return r, nil
}

// newShard builds a shard record outside the ring (AddShard flips inRing
// after warm-up; New flips it at boot).
func (r *Router) newShard(idx int, addr string) *shard {
	return &shard{
		idx:     idx,
		addr:    addr,
		queue:   make(chan *pjob, r.opts.QueueDepth),
		up:      true,
		downCh:  make(chan struct{}),
		clients: map[*service.Client]struct{}{},
	}
}

// startShard launches the shard's dispatch worker pool.
func (r *Router) startShard(sh *shard) {
	for w := 0; w < r.opts.ClientsPerShard; w++ {
		r.workerWG.Add(1)
		go r.worker(sh)
	}
}

// ShardKey derives the routing key of a request: the embedding-cache key
// (canonical graph hash) for QUBO jobs, the workload class key for profile
// jobs. Malformed QUBO payloads report an error — the router refuses them
// without bothering a shard.
func ShardKey(req service.SolveRequest) (string, error) {
	if req.Profile != nil {
		return workload.ClassKey(req.Class), nil
	}
	q, err := service.DecodeQUBO(req)
	if err != nil {
		return "", err
	}
	return graph.CanonicalHash(q.Graph()), nil
}

// Listen binds addr and serves the wire protocol until Drain. It returns
// once the listener is bound; serving continues in the background.
func (r *Router) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	r.lnMu.Lock()
	if r.ln != nil {
		r.lnMu.Unlock()
		ln.Close()
		return nil, errors.New("router: already listening")
	}
	r.ln = ln
	r.lnMu.Unlock()
	r.connWG.Add(1)
	go r.acceptLoop(ln)
	return ln.Addr(), nil
}

func (r *Router) acceptLoop(ln net.Listener) {
	defer r.connWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		r.lnMu.Lock()
		if r.ln != ln {
			r.lnMu.Unlock()
			conn.Close()
			continue
		}
		r.conns[conn] = struct{}{}
		r.lnMu.Unlock()
		r.connWG.Add(1)
		go func() {
			defer r.connWG.Done()
			defer func() {
				r.lnMu.Lock()
				delete(r.conns, conn)
				r.lnMu.Unlock()
				conn.Close()
			}()
			r.serveConn(conn)
		}()
	}
}

// serveConn answers one connection's requests in order, forwarding each
// through the dispatch fabric. Queue backpressure propagates to the
// submitting connection exactly as it does on a single node.
func (r *Router) serveConn(conn net.Conn) {
	for {
		var req service.SolveRequest
		if err := qpuserver.ReadMessage(conn, &req); err != nil {
			return // EOF or framing error: drop the connection
		}
		resp := r.handle(req)
		if err := qpuserver.WriteMessage(conn, &resp); err != nil {
			return
		}
	}
}

// handle routes one request and waits out its round trip.
func (r *Router) handle(req service.SolveRequest) service.SolveResponse {
	if req.Admin != nil {
		return r.handleAdmin(*req.Admin)
	}
	if req.Ping {
		return service.SolveResponse{OK: true} // router liveness
	}
	key, err := ShardKey(req)
	if err != nil {
		return service.SolveResponse{Error: err.Error()}
	}
	r.recordHot(key, req)
	pj := &pjob{req: req, key: key, resp: make(chan presult, 1), home: -1, served: -1}
	pj.span = r.opts.Obs.Tracer().Start("route", r.seq.Add(1)-1, req.Class)
	if err := r.dispatch(pj); err != nil {
		pj.span.Finish(err.Error())
		return service.SolveResponse{Error: err.Error()}
	}
	res := <-pj.resp
	pj.span.SetRouting(pj.served, pj.home, pj.stolen, pj.attempts)
	if res.err != nil && res.resp.Error == "" {
		pj.span.Finish(res.err.Error())
		return service.SolveResponse{Error: res.err.Error()}
	}
	if res.resp.Error != "" {
		pj.span.Finish(res.resp.Error)
	} else {
		pj.span.Finish("")
	}
	return res.resp
}

// Submit routes one request through the fabric programmatically — the
// in-process equivalent of a wire round trip, used by tests and benchmarks.
func (r *Router) Submit(req service.SolveRequest) (service.SolveResponse, error) {
	resp := r.handle(req)
	if !resp.OK {
		return resp, fmt.Errorf("router: %s", resp.Error)
	}
	return resp, nil
}

// dispatch picks a shard for pj and enqueues it, re-picking if the target
// dies while the enqueue is blocked on a full queue.
func (r *Router) dispatch(pj *pjob) error {
	for {
		sh := r.pick(pj)
		if sh == nil {
			return ErrNoShards
		}
		select {
		case sh.queue <- pj:
			sh.dispatched.Add(1)
			pj.span.Event(obs.StageRoute)
			return nil
		case <-sh.down():
			// The shard died while we were blocked; route again over
			// the survivors.
			continue
		}
	}
}

// pick resolves the dispatch shard for a job's key: hash ownership over the
// up members, diverted by the steal rule — the identical computation
// internal/des makes for cluster scenarios. It records the job's routing
// metadata (hash home, steal diversion) as a side effect, so the span and
// the wire response cite the same decision the counters aggregate.
func (r *Router) pick(pj *pjob) *shard {
	key := pj.key
	r.mu.Lock()
	defer r.mu.Unlock()
	mask := make([]byte, len(r.shards))
	members := make([]string, 0, len(r.shards))
	idxs := make([]int, 0, len(r.shards))
	for i, sh := range r.shards {
		mask[i] = sh.ringState()
		if mask[i] == '1' {
			members = append(members, workload.ShardName(i))
			idxs = append(idxs, i)
		}
	}
	if len(members) == 0 {
		return nil
	}
	rg, ok := r.rings[string(mask)]
	if !ok {
		rg = ring.New(members, r.opts.Replicas)
		r.rings[string(mask)] = rg
	}
	home := r.shards[idxs[rg.Owner(key)]]
	pj.home = home.idx
	pj.epoch = r.epoch.Load()
	if t := r.opts.StealThreshold; t > 0 && len(home.queue) >= t {
		best := home
		for _, i := range idxs {
			if sh := r.shards[i]; len(sh.queue) < len(best.queue) {
				best = sh
			}
		}
		if best != home {
			r.stolen.Add(1)
			pj.stolen = true
			pj.span.Event(obs.StageSteal)
			return best
		}
	}
	return home
}

// worker drains one shard's queue through its own TCP client. A client that
// a FailShard closed is replaced; transient I/O errors send the job back
// through the re-dispatch budget and count against the shard's health.
func (r *Router) worker(sh *shard) {
	defer r.workerWG.Done()
	var c *service.Client
	defer func() {
		if c != nil {
			sh.unregister(c)
		}
	}()
	for pj := range sh.queue {
		if pj == nil {
			return
		}
		if !sh.isUp() {
			// The shard died with this job still queued: requeue it on
			// the survivors for free — it never reached the shard.
			r.requeue(pj)
			continue
		}
		if c == nil {
			nc, err := service.DialTimeout(sh.addr, r.opts.Timeout)
			if err != nil {
				r.retry(pj, err)
				continue
			}
			if r.opts.Timeout > 0 {
				nc.SetTimeout(r.opts.Timeout)
			}
			c = nc
			sh.register(c)
		}
		sh.inflight.Add(1)
		resp, err := c.Do(pj.req)
		sh.inflight.Done()
		if err == nil || resp.Error != "" {
			// Success, or a server-side refusal — either way the shard
			// answered; forward the response with the routing decision
			// stamped on, so clients and drain reports can reconcile
			// against the router's own spans and counters.
			pj.served = sh.idx
			pj.span.Event(obs.StageExecute)
			resp.Routing = &service.WireRouting{
				Shard:        sh.idx,
				Home:         pj.home,
				Stolen:       pj.stolen,
				Redispatches: pj.attempts,
				Epoch:        pj.epoch,
			}
			pj.done(resp, err)
			continue
		}
		// I/O failure: the round trip may have been interrupted by
		// FailShard (client closed) or the shard may be gone. Re-dispatch
		// against the retry budget.
		if errors.Is(err, service.ErrClientClosed) {
			c = nil // FailShard retired this client; dial fresh next job
		}
		r.retry(pj, err)
	}
}

// retry re-dispatches a job whose attempt failed in flight, against the
// MaxRetries/Backoff budget.
func (r *Router) retry(pj *pjob, cause error) {
	pj.attempts++
	if pj.attempts > r.opts.MaxRetries {
		r.failedJobs.Add(1)
		pj.done(service.SolveResponse{}, fmt.Errorf("router: re-dispatch budget exhausted: %w", cause))
		return
	}
	r.redispatched.Add(1)
	pj.span.Event(obs.StageRetry)
	backoff := r.opts.Backoff
	go func() {
		if backoff > 0 {
			time.Sleep(backoff)
		}
		if err := r.dispatch(pj); err != nil {
			r.failedJobs.Add(1)
			pj.done(service.SolveResponse{}, err)
		}
	}()
}

// requeue re-dispatches a job drained off a dying shard's queue; it never
// reached the shard, so no retry budget is consumed.
func (r *Router) requeue(pj *pjob) {
	r.requeued.Add(1)
	go func() {
		if err := r.dispatch(pj); err != nil {
			r.failedJobs.Add(1)
			pj.done(service.SolveResponse{}, err)
		}
	}()
}

// markDown takes a shard out of the ring: blocked enqueues re-pick, queued
// jobs drain to the survivors, and in-flight clients are closed so blocked
// round trips fail over immediately.
func (r *Router) markDown(sh *shard) {
	sh.mu.Lock()
	if !sh.up {
		sh.mu.Unlock()
		return
	}
	sh.up = false
	r.evicted.Add(1)
	close(sh.downCh)
	clients := make([]*service.Client, 0, len(sh.clients))
	for c := range sh.clients {
		clients = append(clients, c)
	}
	for c := range sh.clients {
		delete(sh.clients, c)
	}
	sh.mu.Unlock()
	// Interrupt in-flight round trips: the workers see ErrClientClosed and
	// walk the re-dispatch path.
	for _, c := range clients {
		c.Close()
	}
	// Drain whatever is queued; the workers would requeue these one at a
	// time, but draining here frees the queue for blocked producers at
	// once.
	for {
		select {
		case pj := <-sh.queue:
			if pj != nil {
				r.requeue(pj)
			}
		default:
			return
		}
	}
}

// markUp re-admits a revived shard: new down channel, fresh membership.
func (r *Router) markUp(sh *shard) {
	sh.mu.Lock()
	if sh.up || sh.removed {
		sh.mu.Unlock()
		return
	}
	sh.up = true
	sh.downCh = make(chan struct{})
	sh.mu.Unlock()
}

// FailShard forces shard i down, exactly as a failed health check would —
// the deterministic shard-kill hook the storm runner and the chaos tests
// drive. In-flight jobs re-dispatch to the survivors.
func (r *Router) FailShard(i int) error {
	shards := r.snapshot()
	if i < 0 || i >= len(shards) {
		return fmt.Errorf("router: shard %d out of range", i)
	}
	r.markDown(shards[i])
	return nil
}

// RestoreShard re-admits a shard downed by FailShard or the health loop.
func (r *Router) RestoreShard(i int) error {
	shards := r.snapshot()
	if i < 0 || i >= len(shards) {
		return fmt.Errorf("router: shard %d out of range", i)
	}
	r.markUp(shards[i])
	return nil
}

// RemoveShard hard-removes shard i: it leaves the ring immediately
// (ownership rebalances with bounded key movement), queued AND in-flight
// jobs re-dispatch to the survivors against the retry budget, and the
// health loop will not re-admit it. DrainShard is the graceful variant.
func (r *Router) RemoveShard(i int) error {
	shards := r.snapshot()
	if i < 0 || i >= len(shards) {
		return fmt.Errorf("router: shard %d out of range", i)
	}
	sh := shards[i]
	r.mu.Lock()
	sh.mu.Lock()
	wasInRing := sh.inRing
	sh.removed = true
	sh.inRing = false
	sh.mu.Unlock()
	if wasInRing {
		r.epoch.Add(1)
	}
	r.mu.Unlock()
	r.markDown(sh)
	return nil
}

// AddShard brings a fresh backend into the ring at runtime. The sequence
// keeps the transition invisible to in-flight work: probe the backend,
// provision the shard outside the ring, start its workers, warm its
// embedding cache with the hot keys the ring diff says it will own, and
// only then flip membership and bump the epoch — jobs picked before the
// flip complete under the old epoch's routing. Returns the assigned index
// and the count of hot keys warmed.
func (r *Router) AddShard(addr string) (idx, warmed int, err error) {
	c, err := service.DialTimeout(addr, r.opts.PingTimeout)
	if err != nil {
		return -1, 0, fmt.Errorf("router: add shard: %w", err)
	}
	err = c.Ping()
	c.Close()
	if err != nil {
		return -1, 0, fmt.Errorf("router: add shard %s: backend refused ping: %w", addr, err)
	}
	r.lnMu.Lock()
	draining := r.closed
	r.lnMu.Unlock()
	if draining {
		return -1, 0, errors.New("router: draining")
	}

	r.mu.Lock()
	idx = len(r.shards)
	sh := r.newShard(idx, addr)
	// Full-capacity reslice forces append onto a fresh backing array, so
	// snapshots taken before this point stay safely iterable.
	r.shards = append(r.shards[:idx:idx], sh)
	old := r.availRingLocked()
	r.mu.Unlock()

	r.registerShardObs(sh)
	r.startShard(sh)
	if old != nil {
		moved := ring.Moved(old, old.With(workload.ShardName(idx)))
		warmed = r.warm(sh, moved)
	}

	r.mu.Lock()
	sh.mu.Lock()
	sh.inRing = true
	sh.mu.Unlock()
	r.epoch.Add(1)
	r.mu.Unlock()
	return idx, warmed, nil
}

// DrainShard gracefully retires shard i: it leaves the ring and the epoch
// bumps (new picks route to the survivors), its queued jobs re-dispatch for
// free, and in-flight round trips complete on the shard — zero aborts, the
// planned counterpart to RemoveShard's crash semantics. The backend itself
// is left running; stop it after DrainShard returns.
func (r *Router) DrainShard(i int) error {
	shards := r.snapshot()
	if i < 0 || i >= len(shards) {
		return fmt.Errorf("router: shard %d out of range", i)
	}
	sh := shards[i]
	r.mu.Lock()
	inRing := 0
	for _, s := range shards {
		if s.ringState() != '.' {
			inRing++
		}
	}
	sh.mu.Lock()
	if !sh.inRing {
		sh.mu.Unlock()
		r.mu.Unlock()
		return fmt.Errorf("router: shard %d already drained or removed", i)
	}
	if inRing <= 1 {
		sh.mu.Unlock()
		r.mu.Unlock()
		return fmt.Errorf("router: cannot drain the last shard")
	}
	sh.inRing = false
	sh.removed = true // the health loop must not resurrect it
	sh.mu.Unlock()
	r.epoch.Add(1)
	r.mu.Unlock()

	// Re-dispatch the queue: these jobs never reached the shard, so no
	// retry budget is consumed. Workers keep serving anything a pre-flip
	// pick still enqueues — those jobs complete under their old epoch.
	drainQueue := func() {
		for {
			select {
			case pj := <-sh.queue:
				if pj != nil {
					r.requeue(pj)
				}
			default:
				return
			}
		}
	}
	drainQueue()
	sh.inflight.Wait()
	drainQueue() // sweep stragglers enqueued during the in-flight wait
	return nil
}

// availRingLocked builds the hash ring over the currently routable members,
// or nil when none are. Caller holds r.mu.
func (r *Router) availRingLocked() *ring.Ring {
	members := make([]string, 0, len(r.shards))
	for i, sh := range r.shards {
		if sh.ringState() == '1' {
			members = append(members, workload.ShardName(i))
		}
	}
	if len(members) == 0 {
		return nil
	}
	return ring.New(members, r.opts.Replicas)
}

// recordHot remembers the latest request per QUBO routing key, the working
// set a joining shard is warmed from. Profile jobs carry no embedding, so
// they are not tracked.
func (r *Router) recordHot(key string, req service.SolveRequest) {
	if req.Profile != nil {
		return
	}
	r.hotMu.Lock()
	defer r.hotMu.Unlock()
	if _, ok := r.hotKeys[key]; !ok {
		if len(r.hotOrder) >= hotKeyCap {
			delete(r.hotKeys, r.hotOrder[0])
			r.hotOrder = r.hotOrder[1:]
		}
		r.hotOrder = append(r.hotOrder, key)
	}
	r.hotKeys[key] = req
}

// warm replays the hot-key requests the membership diff re-homes into the
// joining shard, so its embedding cache is populated before the first
// routed job arrives. Best-effort: a failed warm-up costs only cold-cache
// latency, never correctness.
func (r *Router) warm(sh *shard, moved []ring.Range) int {
	r.hotMu.Lock()
	reqs := make([]service.SolveRequest, 0)
	for _, key := range r.hotOrder {
		if ring.Covers(moved, ring.Hash(key)) {
			reqs = append(reqs, r.hotKeys[key])
		}
	}
	r.hotMu.Unlock()
	r.keysMoved.Add(int64(len(reqs)))
	if len(reqs) == 0 {
		return 0
	}
	c, err := service.DialTimeout(sh.addr, r.opts.PingTimeout)
	if err != nil {
		return 0
	}
	defer c.Close()
	if r.opts.Timeout > 0 {
		c.SetTimeout(r.opts.Timeout)
	}
	warmed := 0
	for _, req := range reqs {
		if _, err := c.Do(req); err == nil {
			warmed++
		}
	}
	r.warmed.Add(int64(warmed))
	return warmed
}

// healthLoop pings every shard each period. PingFailLimit consecutive
// failures evict a member; an evicted shard serves a probation window —
// one ping period, doubled per eviction up to probationCap — before it is
// probed again, and re-admits only after PingSuccLimit consecutive
// successes. A half-failing backend therefore converges to "out" instead of
// flapping through the ring, while a genuinely recovered one returns within
// a few periods.
func (r *Router) healthLoop() {
	defer r.healthWG.Done()
	tick := time.NewTicker(r.opts.PingEvery)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
		}
		for _, sh := range r.snapshot() {
			sh.mu.Lock()
			removed, up := sh.removed, sh.up
			sh.mu.Unlock()
			if removed {
				continue
			}
			if !up && time.Now().Before(sh.probeAfter) {
				continue // probation: back off before probing again
			}
			switch {
			case r.probe(sh):
				sh.fails = 0
				if up {
					continue
				}
				sh.succ++
				if sh.succ >= r.opts.PingSuccLimit {
					sh.succ = 0
					r.markUp(sh)
				}
			case up:
				sh.fails++
				if sh.fails >= r.opts.PingFailLimit {
					r.evict(sh)
				}
			default:
				// Still down: a failure during probation restarts the
				// window at the current penalty.
				sh.succ = 0
				sh.probeAfter = time.Now().Add(sh.penalty)
			}
		}
	}
}

// evict marks a shard down and charges its probation penalty, doubling it
// per eviction up to probationCap ping periods.
func (r *Router) evict(sh *shard) {
	if sh.penalty < r.opts.PingEvery {
		sh.penalty = r.opts.PingEvery
	} else if sh.penalty < probationCap*r.opts.PingEvery {
		sh.penalty *= 2
	}
	sh.succ = 0
	sh.probeAfter = time.Now().Add(sh.penalty)
	r.markDown(sh)
}

// probe health-checks one shard with a dedicated short-lived client.
func (r *Router) probe(sh *shard) bool {
	c, err := service.DialTimeout(sh.addr, r.opts.PingTimeout)
	if err != nil {
		return false
	}
	defer c.Close()
	c.SetTimeout(r.opts.PingTimeout)
	return c.Ping() == nil
}

// Stats snapshots the dispatch counters.
func (r *Router) Stats() Stats {
	shards := r.snapshot()
	s := Stats{
		Dispatched:   make([]int64, len(shards)),
		Stolen:       r.stolen.Load(),
		Redispatched: r.redispatched.Load(),
		Requeued:     r.requeued.Load(),
		Failed:       r.failedJobs.Load(),
		Evicted:      r.evicted.Load(),
		Epoch:        r.epoch.Load(),
		KeysMoved:    r.keysMoved.Load(),
		Warmed:       r.warmed.Load(),
	}
	for i, sh := range shards {
		s.Dispatched[i] = sh.dispatched.Load()
	}
	return s
}

// Epoch is the current membership epoch.
func (r *Router) Epoch() int64 { return r.epoch.Load() }

// Up reports per-shard fault state (true = answering probes / not failed).
func (r *Router) Up() []bool {
	shards := r.snapshot()
	out := make([]bool, len(shards))
	for i, sh := range shards {
		out[i] = sh.isUp()
	}
	return out
}

// InRing reports per-shard membership (true = owns ring keys when up).
func (r *Router) InRing() []bool {
	shards := r.snapshot()
	out := make([]bool, len(shards))
	for i, sh := range shards {
		out[i] = sh.ringState() != '.'
	}
	return out
}

// Drain shuts the router down: the listener and its connections close, the
// health loop stops, dispatch queues close, and the workers finish. Safe to
// call more than once.
func (r *Router) Drain() {
	r.lnMu.Lock()
	if r.closed {
		r.lnMu.Unlock()
		return
	}
	r.closed = true
	ln := r.ln
	r.ln = nil
	conns := make([]net.Conn, 0, len(r.conns))
	for c := range r.conns {
		conns = append(conns, c)
	}
	r.lnMu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	r.connWG.Wait()
	close(r.stop)
	r.healthWG.Wait()
	for _, sh := range r.snapshot() {
		close(sh.queue)
	}
	r.workerWG.Wait()
}
