// Package router is the front-end tier of the federated deployment: it
// speaks the same length-prefixed wire protocol as `splitexec serve`, but
// instead of running jobs it consistent-hash-shards them across N backing
// service instances — QUBO jobs by their embedding-cache key
// (graph.CanonicalHash of the problem graph), profile jobs by workload
// class — so each shard's core.EmbeddingCache stays hot across the whole
// key space. Per-shard bounded queues give backpressure; a backlog past the
// steal threshold diverts jobs to the least-loaded shard; periodic pings
// drop shards from the ring after consecutive failures and re-admit them
// when they answer again; and a shard loss (detected or commanded via
// RemoveShard/FailShard) re-dispatches queued and in-flight jobs to the
// survivors against a bounded retry budget, with hash ownership moving only
// the dead shard's arc of the ring.
//
// The routing computation — ring membership, shard keys, steal rule — is
// shared with the discrete-event simulator (internal/des), which makes the
// DES the predictive twin of the federated system: a cluster scenario's
// predicted shard assignment is the one this router realizes.
package router

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/obs"
	"github.com/splitexec/splitexec/internal/qpuserver"
	"github.com/splitexec/splitexec/internal/ring"
	"github.com/splitexec/splitexec/internal/service"
	"github.com/splitexec/splitexec/internal/workload"
)

// Defaults, applied when the corresponding Options field is zero.
const (
	DefaultClientsPerShard = 4
	DefaultQueueDepth      = 256
	DefaultPingEvery       = 250 * time.Millisecond
	DefaultPingTimeout     = 2 * time.Second
	DefaultPingFailLimit   = 3
)

// ErrNoShards reports a dispatch with every shard down or removed.
var ErrNoShards = errors.New("router: no shards available")

// errShardDown re-routes a job whose target died between pick and enqueue.
var errShardDown = errors.New("router: shard down")

// Options configure a router.
type Options struct {
	// Shards are the backing service addresses, index order fixed for the
	// router's lifetime (membership changes flip shards up/down, they
	// never renumber).
	Shards []string
	// ClientsPerShard sizes each shard's dispatch worker pool — and
	// therefore its connection pool (one TCP client per worker).
	ClientsPerShard int
	// QueueDepth bounds each shard's dispatch queue; a full queue blocks
	// the submitting connection (backpressure), exactly like the backing
	// service's own intake.
	QueueDepth int
	// StealThreshold enables cross-shard work stealing: a job whose home
	// shard's queue has reached this length goes to the shortest queue
	// instead (ties on the lowest shard index). Zero disables stealing.
	StealThreshold int
	// MaxRetries is the re-dispatch budget a job may consume when shards
	// fail under it (default workload.DefaultMaxRetries); Backoff is the
	// pause before each re-dispatch (default workload.DefaultBackoff) —
	// the same budget semantics workload.FaultSpec declares.
	MaxRetries int
	Backoff    time.Duration
	// PingEvery is the health-check period (default 250ms; negative
	// disables health checking). PingTimeout bounds each probe, and
	// PingFailLimit consecutive failures mark a shard down.
	PingEvery     time.Duration
	PingTimeout   time.Duration
	PingFailLimit int
	// Replicas is the ring's virtual-node count per shard (0 selects
	// ring.DefaultReplicas). Must match the scenario's ClusterSpec for
	// DES-predicted assignments to hold.
	Replicas int
	// Timeout bounds each forwarded round trip (0 = none). It must cover
	// the backing shard's queue wait plus service, not just service.
	Timeout time.Duration
	// Obs, when non-nil, is the telemetry scope the router publishes into:
	// per-shard backlog/dispatch/membership series and steal/eviction/
	// re-dispatch counters into its registry (all sampled at scrape time
	// from the ledgers the router already keeps), and per-job routing spans
	// into its tracer. A nil scope disables telemetry.
	Obs *obs.Scope
}

// Stats is a snapshot of the router's dispatch counters.
type Stats struct {
	// Dispatched counts jobs enqueued per shard (by original index).
	Dispatched []int64 `json:"dispatched"`
	// Stolen counts jobs diverted off their home shard by the steal rule.
	Stolen int64 `json:"stolen"`
	// Redispatched counts shard-loss re-dispatches (in-flight jobs that
	// consumed retry budget).
	Redispatched int64 `json:"redispatched"`
	// Requeued counts queued jobs drained off a dying shard (free
	// re-dispatch — they had not reached the shard yet).
	Requeued int64 `json:"requeued"`
	// Failed counts jobs that exhausted the re-dispatch budget.
	Failed int64 `json:"failed"`
	// Evicted counts shard down-transitions (health-check drops, FailShard,
	// RemoveShard) over the router's lifetime.
	Evicted int64 `json:"evicted,omitempty"`
}

// pjob is one proxied request in flight through the router. The routing
// metadata fields (home, stolen, served) and the span are touched only by
// the job's current carrier — submitting goroutine, shard worker, retry
// goroutine — whose handoffs are channel-ordered, so they need no lock.
type pjob struct {
	req      service.SolveRequest
	key      string
	attempts int
	resp     chan presult

	home   int // latest hash-home shard (-1 until first pick)
	stolen bool
	served int // shard that answered (-1 until a shard does)
	span   *obs.SpanBuilder
}

type presult struct {
	resp service.SolveResponse
	err  error
}

func (p *pjob) done(resp service.SolveResponse, err error) {
	p.resp <- presult{resp: resp, err: err}
}

// shard is one backing service endpoint.
type shard struct {
	idx  int
	addr string

	queue chan *pjob

	mu      sync.Mutex
	up      bool
	removed bool
	downCh  chan struct{} // closed when the shard goes down; replaced on revival
	clients map[*service.Client]struct{}

	fails      int // consecutive ping failures (health loop only)
	dispatched atomic.Int64
	inflight   sync.WaitGroup // jobs handed to workers, for graceful drain
}

// down returns the channel a blocked enqueue watches.
func (sh *shard) down() <-chan struct{} {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.downCh
}

func (sh *shard) isUp() bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.up
}

// register tracks a worker's client so FailShard can interrupt its I/O.
func (sh *shard) register(c *service.Client) {
	sh.mu.Lock()
	sh.clients[c] = struct{}{}
	sh.mu.Unlock()
}

func (sh *shard) unregister(c *service.Client) {
	sh.mu.Lock()
	delete(sh.clients, c)
	sh.mu.Unlock()
	c.Close()
}

// Router is the federating front end.
type Router struct {
	opts   Options
	shards []*shard

	mu    sync.Mutex
	rings map[string]*ring.Ring // membership bit-pattern → ring

	ln       net.Listener
	lnMu     sync.Mutex
	conns    map[net.Conn]struct{}
	connWG   sync.WaitGroup
	workerWG sync.WaitGroup
	healthWG sync.WaitGroup
	stop     chan struct{}
	closed   bool

	stolen       atomic.Int64
	redispatched atomic.Int64
	requeued     atomic.Int64
	failedJobs   atomic.Int64
	evicted      atomic.Int64
	seq          atomic.Int64 // dispatch sequence; router span IDs
}

// New builds a router over the given shard addresses and starts its
// dispatch workers and health loop. Call Drain to shut it down.
func New(opts Options) (*Router, error) {
	if len(opts.Shards) == 0 {
		return nil, errors.New("router: no shard addresses")
	}
	if opts.ClientsPerShard <= 0 {
		opts.ClientsPerShard = DefaultClientsPerShard
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = workload.DefaultMaxRetries
	}
	if opts.Backoff == 0 {
		opts.Backoff = workload.DefaultBackoff
	}
	if opts.PingEvery == 0 {
		opts.PingEvery = DefaultPingEvery
	}
	if opts.PingTimeout <= 0 {
		opts.PingTimeout = DefaultPingTimeout
	}
	if opts.PingFailLimit <= 0 {
		opts.PingFailLimit = DefaultPingFailLimit
	}
	r := &Router{
		opts:  opts,
		rings: map[string]*ring.Ring{},
		conns: map[net.Conn]struct{}{},
		stop:  make(chan struct{}),
	}
	for i, addr := range opts.Shards {
		sh := &shard{
			idx:     i,
			addr:    addr,
			queue:   make(chan *pjob, opts.QueueDepth),
			up:      true,
			downCh:  make(chan struct{}),
			clients: map[*service.Client]struct{}{},
		}
		r.shards = append(r.shards, sh)
		for w := 0; w < opts.ClientsPerShard; w++ {
			r.workerWG.Add(1)
			go r.worker(sh)
		}
	}
	r.initObs()
	if opts.PingEvery > 0 {
		r.healthWG.Add(1)
		go r.healthLoop()
	}
	return r, nil
}

// ShardKey derives the routing key of a request: the embedding-cache key
// (canonical graph hash) for QUBO jobs, the workload class key for profile
// jobs. Malformed QUBO payloads report an error — the router refuses them
// without bothering a shard.
func ShardKey(req service.SolveRequest) (string, error) {
	if req.Profile != nil {
		return workload.ClassKey(req.Class), nil
	}
	q, err := service.DecodeQUBO(req)
	if err != nil {
		return "", err
	}
	return graph.CanonicalHash(q.Graph()), nil
}

// Listen binds addr and serves the wire protocol until Drain. It returns
// once the listener is bound; serving continues in the background.
func (r *Router) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	r.lnMu.Lock()
	if r.ln != nil {
		r.lnMu.Unlock()
		ln.Close()
		return nil, errors.New("router: already listening")
	}
	r.ln = ln
	r.lnMu.Unlock()
	r.connWG.Add(1)
	go r.acceptLoop(ln)
	return ln.Addr(), nil
}

func (r *Router) acceptLoop(ln net.Listener) {
	defer r.connWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		r.lnMu.Lock()
		if r.ln != ln {
			r.lnMu.Unlock()
			conn.Close()
			continue
		}
		r.conns[conn] = struct{}{}
		r.lnMu.Unlock()
		r.connWG.Add(1)
		go func() {
			defer r.connWG.Done()
			defer func() {
				r.lnMu.Lock()
				delete(r.conns, conn)
				r.lnMu.Unlock()
				conn.Close()
			}()
			r.serveConn(conn)
		}()
	}
}

// serveConn answers one connection's requests in order, forwarding each
// through the dispatch fabric. Queue backpressure propagates to the
// submitting connection exactly as it does on a single node.
func (r *Router) serveConn(conn net.Conn) {
	for {
		var req service.SolveRequest
		if err := qpuserver.ReadMessage(conn, &req); err != nil {
			return // EOF or framing error: drop the connection
		}
		resp := r.handle(req)
		if err := qpuserver.WriteMessage(conn, &resp); err != nil {
			return
		}
	}
}

// handle routes one request and waits out its round trip.
func (r *Router) handle(req service.SolveRequest) service.SolveResponse {
	if req.Ping {
		return service.SolveResponse{OK: true} // router liveness
	}
	key, err := ShardKey(req)
	if err != nil {
		return service.SolveResponse{Error: err.Error()}
	}
	pj := &pjob{req: req, key: key, resp: make(chan presult, 1), home: -1, served: -1}
	pj.span = r.opts.Obs.Tracer().Start("route", r.seq.Add(1)-1, req.Class)
	if err := r.dispatch(pj); err != nil {
		pj.span.Finish(err.Error())
		return service.SolveResponse{Error: err.Error()}
	}
	res := <-pj.resp
	pj.span.SetRouting(pj.served, pj.home, pj.stolen, pj.attempts)
	if res.err != nil && res.resp.Error == "" {
		pj.span.Finish(res.err.Error())
		return service.SolveResponse{Error: res.err.Error()}
	}
	if res.resp.Error != "" {
		pj.span.Finish(res.resp.Error)
	} else {
		pj.span.Finish("")
	}
	return res.resp
}

// Submit routes one request through the fabric programmatically — the
// in-process equivalent of a wire round trip, used by tests and benchmarks.
func (r *Router) Submit(req service.SolveRequest) (service.SolveResponse, error) {
	resp := r.handle(req)
	if !resp.OK {
		return resp, fmt.Errorf("router: %s", resp.Error)
	}
	return resp, nil
}

// dispatch picks a shard for pj and enqueues it, re-picking if the target
// dies while the enqueue is blocked on a full queue.
func (r *Router) dispatch(pj *pjob) error {
	for {
		sh := r.pick(pj)
		if sh == nil {
			return ErrNoShards
		}
		select {
		case sh.queue <- pj:
			sh.dispatched.Add(1)
			pj.span.Event(obs.StageRoute)
			return nil
		case <-sh.down():
			// The shard died while we were blocked; route again over
			// the survivors.
			continue
		}
	}
}

// pick resolves the dispatch shard for a job's key: hash ownership over the
// up members, diverted by the steal rule — the identical computation
// internal/des makes for cluster scenarios. It records the job's routing
// metadata (hash home, steal diversion) as a side effect, so the span and
// the wire response cite the same decision the counters aggregate.
func (r *Router) pick(pj *pjob) *shard {
	key := pj.key
	r.mu.Lock()
	defer r.mu.Unlock()
	mask := make([]byte, len(r.shards))
	members := make([]string, 0, len(r.shards))
	idxs := make([]int, 0, len(r.shards))
	for i, sh := range r.shards {
		if sh.isUp() {
			mask[i] = '1'
			members = append(members, workload.ShardName(i))
			idxs = append(idxs, i)
		} else {
			mask[i] = '0'
		}
	}
	if len(members) == 0 {
		return nil
	}
	rg, ok := r.rings[string(mask)]
	if !ok {
		rg = ring.New(members, r.opts.Replicas)
		r.rings[string(mask)] = rg
	}
	home := r.shards[idxs[rg.Owner(key)]]
	pj.home = home.idx
	if t := r.opts.StealThreshold; t > 0 && len(home.queue) >= t {
		best := home
		for _, i := range idxs {
			if sh := r.shards[i]; len(sh.queue) < len(best.queue) {
				best = sh
			}
		}
		if best != home {
			r.stolen.Add(1)
			pj.stolen = true
			pj.span.Event(obs.StageSteal)
			return best
		}
	}
	return home
}

// worker drains one shard's queue through its own TCP client. A client that
// a FailShard closed is replaced; transient I/O errors send the job back
// through the re-dispatch budget and count against the shard's health.
func (r *Router) worker(sh *shard) {
	defer r.workerWG.Done()
	var c *service.Client
	defer func() {
		if c != nil {
			sh.unregister(c)
		}
	}()
	for pj := range sh.queue {
		if pj == nil {
			return
		}
		if !sh.isUp() {
			// The shard died with this job still queued: requeue it on
			// the survivors for free — it never reached the shard.
			r.requeue(pj)
			continue
		}
		if c == nil {
			nc, err := service.DialTimeout(sh.addr, r.opts.Timeout)
			if err != nil {
				r.retry(pj, err)
				continue
			}
			if r.opts.Timeout > 0 {
				nc.SetTimeout(r.opts.Timeout)
			}
			c = nc
			sh.register(c)
		}
		sh.inflight.Add(1)
		resp, err := c.Do(pj.req)
		sh.inflight.Done()
		if err == nil || resp.Error != "" {
			// Success, or a server-side refusal — either way the shard
			// answered; forward the response with the routing decision
			// stamped on, so clients and drain reports can reconcile
			// against the router's own spans and counters.
			pj.served = sh.idx
			pj.span.Event(obs.StageExecute)
			resp.Routing = &service.WireRouting{
				Shard:        sh.idx,
				Home:         pj.home,
				Stolen:       pj.stolen,
				Redispatches: pj.attempts,
			}
			pj.done(resp, err)
			continue
		}
		// I/O failure: the round trip may have been interrupted by
		// FailShard (client closed) or the shard may be gone. Re-dispatch
		// against the retry budget.
		if errors.Is(err, service.ErrClientClosed) {
			c = nil // FailShard retired this client; dial fresh next job
		}
		r.retry(pj, err)
	}
}

// retry re-dispatches a job whose attempt failed in flight, against the
// MaxRetries/Backoff budget.
func (r *Router) retry(pj *pjob, cause error) {
	pj.attempts++
	if pj.attempts > r.opts.MaxRetries {
		r.failedJobs.Add(1)
		pj.done(service.SolveResponse{}, fmt.Errorf("router: re-dispatch budget exhausted: %w", cause))
		return
	}
	r.redispatched.Add(1)
	pj.span.Event(obs.StageRetry)
	backoff := r.opts.Backoff
	go func() {
		if backoff > 0 {
			time.Sleep(backoff)
		}
		if err := r.dispatch(pj); err != nil {
			r.failedJobs.Add(1)
			pj.done(service.SolveResponse{}, err)
		}
	}()
}

// requeue re-dispatches a job drained off a dying shard's queue; it never
// reached the shard, so no retry budget is consumed.
func (r *Router) requeue(pj *pjob) {
	r.requeued.Add(1)
	go func() {
		if err := r.dispatch(pj); err != nil {
			r.failedJobs.Add(1)
			pj.done(service.SolveResponse{}, err)
		}
	}()
}

// markDown takes a shard out of the ring: blocked enqueues re-pick, queued
// jobs drain to the survivors, and in-flight clients are closed so blocked
// round trips fail over immediately.
func (r *Router) markDown(sh *shard) {
	sh.mu.Lock()
	if !sh.up {
		sh.mu.Unlock()
		return
	}
	sh.up = false
	r.evicted.Add(1)
	close(sh.downCh)
	clients := make([]*service.Client, 0, len(sh.clients))
	for c := range sh.clients {
		clients = append(clients, c)
	}
	for c := range sh.clients {
		delete(sh.clients, c)
	}
	sh.mu.Unlock()
	// Interrupt in-flight round trips: the workers see ErrClientClosed and
	// walk the re-dispatch path.
	for _, c := range clients {
		c.Close()
	}
	// Drain whatever is queued; the workers would requeue these one at a
	// time, but draining here frees the queue for blocked producers at
	// once.
	for {
		select {
		case pj := <-sh.queue:
			if pj != nil {
				r.requeue(pj)
			}
		default:
			return
		}
	}
}

// markUp re-admits a revived shard: new down channel, fresh membership.
func (r *Router) markUp(sh *shard) {
	sh.mu.Lock()
	if sh.up || sh.removed {
		sh.mu.Unlock()
		return
	}
	sh.up = true
	sh.downCh = make(chan struct{})
	sh.mu.Unlock()
}

// FailShard forces shard i down, exactly as a failed health check would —
// the deterministic shard-kill hook the storm runner and the chaos tests
// drive. In-flight jobs re-dispatch to the survivors.
func (r *Router) FailShard(i int) error {
	if i < 0 || i >= len(r.shards) {
		return fmt.Errorf("router: shard %d out of range", i)
	}
	r.markDown(r.shards[i])
	return nil
}

// RestoreShard re-admits a shard downed by FailShard or the health loop.
func (r *Router) RestoreShard(i int) error {
	if i < 0 || i >= len(r.shards) {
		return fmt.Errorf("router: shard %d out of range", i)
	}
	r.markUp(r.shards[i])
	return nil
}

// RemoveShard permanently drains shard i: it leaves the ring (ownership
// rebalances with bounded key movement), queued and in-flight jobs
// re-dispatch to the survivors, and the health loop will not re-admit it.
func (r *Router) RemoveShard(i int) error {
	if i < 0 || i >= len(r.shards) {
		return fmt.Errorf("router: shard %d out of range", i)
	}
	sh := r.shards[i]
	sh.mu.Lock()
	sh.removed = true
	sh.mu.Unlock()
	r.markDown(sh)
	return nil
}

// healthLoop pings every shard each period, dropping members after
// PingFailLimit consecutive failures and re-admitting them on the first
// successful probe.
func (r *Router) healthLoop() {
	defer r.healthWG.Done()
	tick := time.NewTicker(r.opts.PingEvery)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
		}
		for _, sh := range r.shards {
			sh.mu.Lock()
			removed := sh.removed
			sh.mu.Unlock()
			if removed {
				continue
			}
			if r.probe(sh) {
				sh.fails = 0
				r.markUp(sh)
			} else {
				sh.fails++
				if sh.fails >= r.opts.PingFailLimit {
					r.markDown(sh)
				}
			}
		}
	}
}

// probe health-checks one shard with a dedicated short-lived client.
func (r *Router) probe(sh *shard) bool {
	c, err := service.DialTimeout(sh.addr, r.opts.PingTimeout)
	if err != nil {
		return false
	}
	defer c.Close()
	c.SetTimeout(r.opts.PingTimeout)
	return c.Ping() == nil
}

// Stats snapshots the dispatch counters.
func (r *Router) Stats() Stats {
	s := Stats{
		Dispatched:   make([]int64, len(r.shards)),
		Stolen:       r.stolen.Load(),
		Redispatched: r.redispatched.Load(),
		Requeued:     r.requeued.Load(),
		Failed:       r.failedJobs.Load(),
		Evicted:      r.evicted.Load(),
	}
	for i, sh := range r.shards {
		s.Dispatched[i] = sh.dispatched.Load()
	}
	return s
}

// Up reports the current shard membership (true = in the ring).
func (r *Router) Up() []bool {
	out := make([]bool, len(r.shards))
	for i, sh := range r.shards {
		out[i] = sh.isUp()
	}
	return out
}

// Drain shuts the router down: the listener and its connections close, the
// health loop stops, dispatch queues close, and the workers finish. Safe to
// call more than once.
func (r *Router) Drain() {
	r.lnMu.Lock()
	if r.closed {
		r.lnMu.Unlock()
		return
	}
	r.closed = true
	ln := r.ln
	r.ln = nil
	conns := make([]net.Conn, 0, len(r.conns))
	for c := range r.conns {
		conns = append(conns, c)
	}
	r.lnMu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	r.connWG.Wait()
	close(r.stop)
	r.healthWG.Wait()
	for _, sh := range r.shards {
		close(sh.queue)
	}
	r.workerWG.Wait()
}
