package router

import (
	"fmt"

	"github.com/splitexec/splitexec/internal/service"
)

// handleAdmin answers a wire control verb (service.WireAdmin): the remote
// face of the elastic-membership API, driven by `splitexec admin`. Every
// successful reply carries the post-verb membership epoch, so an operator
// can correlate a transition with the router's metrics and spans.
func (r *Router) handleAdmin(a service.WireAdmin) service.SolveResponse {
	reply := &service.WireAdminReply{}
	switch a.Verb {
	case service.AdminAdd:
		idx, warmed, err := r.AddShard(a.Addr)
		if err != nil {
			return service.SolveResponse{Error: err.Error()}
		}
		reply.Index = idx
		reply.Warmed = warmed
	case service.AdminDrain:
		if err := r.DrainShard(a.Shard); err != nil {
			return service.SolveResponse{Error: err.Error()}
		}
		reply.Index = a.Shard
	case service.AdminRemove:
		if err := r.RemoveShard(a.Shard); err != nil {
			return service.SolveResponse{Error: err.Error()}
		}
		reply.Index = a.Shard
	case service.AdminStatus:
		reply.Shards = r.statuses()
	default:
		return service.SolveResponse{Error: fmt.Sprintf("router: unknown admin verb %q", a.Verb)}
	}
	reply.Epoch = r.epoch.Load()
	return service.SolveResponse{OK: true, Admin: reply}
}

// statuses snapshots the per-shard membership table.
func (r *Router) statuses() []service.WireShardStatus {
	shards := r.snapshot()
	out := make([]service.WireShardStatus, len(shards))
	for i, sh := range shards {
		sh.mu.Lock()
		out[i] = service.WireShardStatus{
			Index:      sh.idx,
			Addr:       sh.addr,
			Up:         sh.up,
			InRing:     sh.inRing,
			Removed:    sh.removed,
			Dispatched: sh.dispatched.Load(),
			Backlog:    len(sh.queue),
		}
		sh.mu.Unlock()
	}
	return out
}
