package router

import (
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/qpuserver"
	"github.com/splitexec/splitexec/internal/qubo"
	"github.com/splitexec/splitexec/internal/ring"
	"github.com/splitexec/splitexec/internal/service"
	"github.com/splitexec/splitexec/internal/workload"
)

// TestRouterElasticAddUnderLoad is the live half of the elastic acceptance:
// a third shard joins a loaded two-shard router through the wire admin
// verb. The ledger must conserve across the epoch flip — every submission
// completes exactly once, none lost, none failed — post-flip routing must
// match the grown ring exactly (only ring-predicted keys change owner), and
// responses must carry the new epoch.
func TestRouterElasticAddUnderLoad(t *testing.T) {
	addrs, _ := startShards(t, 3) // third backend is live but outside the router
	rt, err := New(Options{Shards: addrs[:2], PingEvery: -1, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Drain()
	front, err := rt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	var submitted, completed, failed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := service.Dial(front.String())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				submitted.Add(1)
				if _, err := c.Do(profileReq((w + i) % 3)); err != nil {
					failed.Add(1)
				} else {
					completed.Add(1)
				}
			}
		}(w)
	}
	time.Sleep(30 * time.Millisecond) // the fabric is demonstrably loaded

	admin, err := service.Dial(front.String())
	if err != nil {
		t.Fatal(err)
	}
	reply, err := admin.Admin(service.WireAdmin{Verb: service.AdminAdd, Addr: addrs[2]})
	admin.Close()
	if err != nil {
		t.Fatalf("admin add: %v", err)
	}
	if reply.Index != 2 {
		t.Fatalf("add assigned index %d, want 2", reply.Index)
	}
	if reply.Epoch != 1 {
		t.Fatalf("post-add epoch %d, want 1", reply.Epoch)
	}

	time.Sleep(30 * time.Millisecond) // post-join steady state under load
	close(stop)
	wg.Wait()

	if n := failed.Load(); n != 0 {
		t.Fatalf("%d jobs lost across the epoch flip", n)
	}
	if completed.Load() != submitted.Load() {
		t.Fatalf("ledger leak: %d completed of %d submitted", completed.Load(), submitted.Load())
	}
	st := rt.Stats()
	if st.Failed != 0 {
		t.Fatalf("router failed %d jobs during the transition", st.Failed)
	}
	var dispatched int64
	for _, n := range st.Dispatched {
		dispatched += n
	}
	if dispatched < completed.Load() {
		t.Errorf("dispatch ledger %d below completions %d", dispatched, completed.Load())
	}

	// Post-flip ownership is exactly the grown ring's, and every moved
	// class is one the diff predicted.
	old := clusterRing(2)
	grown := old.With(workload.ShardName(2))
	moved := ring.Moved(old, grown)
	c, err := service.Dial(front.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	joinerServed := false
	for class := 0; class < 3; class++ {
		resp, err := c.Do(profileReq(class))
		if err != nil {
			t.Fatalf("post-join class %d: %v", class, err)
		}
		if resp.Routing == nil {
			t.Fatal("routed response missing routing metadata")
		}
		key := workload.ClassKey(class)
		want := grown.Owner(key)
		if resp.Routing.Shard != want {
			t.Errorf("class %d served by shard %d, grown ring owns %d", class, resp.Routing.Shard, want)
		}
		if resp.Routing.Epoch != 1 {
			t.Errorf("class %d routed under epoch %d, want 1", class, resp.Routing.Epoch)
		}
		movedKey := old.Owner(key) != want
		if predicted := ring.Covers(moved, ring.Hash(key)); predicted != movedKey {
			t.Errorf("class %d moved=%v but diff predicts %v", class, movedKey, predicted)
		}
		if want == 2 {
			joinerServed = true
		}
	}
	if !joinerServed {
		t.Error("no class re-homed to the joiner — the transition moved nothing")
	}
}

// TestRouterDrainShardGraceful: DrainShard retires a loaded shard without
// evicting it — queued work re-homes for free, in-flight work completes,
// zero failures — and post-drain routing follows the shrunken ring.
func TestRouterDrainShardGraceful(t *testing.T) {
	addrs, _ := startShards(t, 3)
	rt, err := New(Options{Shards: addrs, PingEvery: -1, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Drain()

	victim := clusterRing(3).Owner(workload.ClassKey(0))
	const jobs = 120
	var wg sync.WaitGroup
	var failed atomic.Int64
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := rt.Submit(profileReq(i % 3)); err != nil {
				failed.Add(1)
			}
		}(i)
	}
	time.Sleep(3 * time.Millisecond)
	if err := rt.DrainShard(victim); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d jobs lost across the drain", n)
	}
	st := rt.Stats()
	if st.Failed != 0 {
		t.Fatalf("router failed %d jobs across the drain", st.Failed)
	}
	if st.Evicted != 0 {
		t.Errorf("a graceful drain counted %d evictions", st.Evicted)
	}
	if st.Epoch != 1 {
		t.Errorf("post-drain epoch %d, want 1", st.Epoch)
	}

	// The survivors own everything now; the drained shard sees no traffic.
	survivors := make([]string, 0, 2)
	for i := 0; i < 3; i++ {
		if i != victim {
			survivors = append(survivors, workload.ShardName(i))
		}
	}
	rest := ring.New(survivors, 0)
	before := rt.Stats().Dispatched[victim]
	for class := 0; class < 6; class++ {
		resp, err := rt.Submit(profileReq(class))
		if err != nil {
			t.Fatalf("post-drain class %d: %v", class, err)
		}
		wantName := rest.Lookup(workload.ClassKey(class))
		if got := workload.ShardName(resp.Routing.Shard); got != wantName {
			t.Errorf("class %d served by %s, shrunken ring owns %s", class, got, wantName)
		}
	}
	if after := rt.Stats().Dispatched[victim]; after != before {
		t.Errorf("drained shard received %d new dispatches", after-before)
	}

	// Re-draining is an error; draining down to one shard is refused.
	if err := rt.DrainShard(victim); err == nil {
		t.Error("double drain succeeded")
	}
	others := []int{}
	for i := 0; i < 3; i++ {
		if i != victim {
			others = append(others, i)
		}
	}
	if err := rt.DrainShard(others[0]); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	if err := rt.DrainShard(others[1]); err == nil || !strings.Contains(err.Error(), "last shard") {
		t.Errorf("draining the last shard: got %v, want last-shard refusal", err)
	}
}

// distinctQUBOs builds n small structurally-distinct problems (paths,
// cycles, stars of growing order), so each carries a distinct routing key.
func distinctQUBOs(t *testing.T, n int) []service.SolveRequest {
	t.Helper()
	var reqs []service.SolveRequest
	add := func(q *qubo.QUBO) {
		if len(reqs) < n {
			reqs = append(reqs, service.EncodeQUBO(q))
		}
	}
	for dim := 2; dim <= 6; dim++ { // paths P2..P6
		q := qubo.NewQUBO(dim)
		for i := 0; i+1 < dim; i++ {
			q.Set(i, i+1, 1)
			q.Set(i, i, -1)
		}
		add(q)
	}
	for dim := 3; dim <= 6; dim++ { // cycles C3..C6
		q := qubo.NewQUBO(dim)
		for i := 0; i < dim; i++ {
			q.Set(i, (i+1)%dim, 1)
			q.Set(i, i, -1)
		}
		add(q)
	}
	for dim := 4; dim <= 6; dim++ { // stars S4..S6
		q := qubo.NewQUBO(dim)
		for i := 1; i < dim; i++ {
			q.Set(0, i, 1)
			q.Set(i, i, -1)
		}
		add(q)
	}
	if len(reqs) < n {
		t.Fatalf("only %d distinct QUBOs available, want %d", len(reqs), n)
	}
	return reqs
}

// TestRouterAddShardWarmsMovedKeys: the hot keys the ring diff re-homes are
// replayed into the joining shard before its ownership flips — the
// embedding-cache warm-up — and the keys-moved/warmed ledgers record it.
func TestRouterAddShardWarmsMovedKeys(t *testing.T) {
	addrs, _ := startShards(t, 3)
	rt, err := New(Options{Shards: addrs[:2], PingEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Drain()

	reqs := distinctQUBOs(t, 12)
	for i, req := range reqs {
		if _, err := rt.Submit(req); err != nil {
			t.Fatalf("seed solve %d: %v", i, err)
		}
	}
	old := clusterRing(2)
	moved := ring.Moved(old, old.With(workload.ShardName(2)))
	wantMoved := 0
	for _, req := range reqs {
		key, err := ShardKey(req)
		if err != nil {
			t.Fatal(err)
		}
		if ring.Covers(moved, ring.Hash(key)) {
			wantMoved++
		}
	}
	if wantMoved == 0 {
		t.Fatal("no seeded key moves on this join — the fixture cannot exercise warm-up")
	}

	idx, warmed, err := rt.AddShard(addrs[2])
	if err != nil {
		t.Fatal(err)
	}
	if idx != 2 {
		t.Fatalf("assigned index %d, want 2", idx)
	}
	if warmed != wantMoved {
		t.Errorf("warmed %d keys, diff predicts %d", warmed, wantMoved)
	}
	st := rt.Stats()
	if st.KeysMoved != int64(wantMoved) || st.Warmed != int64(warmed) {
		t.Errorf("ledgers keysMoved=%d warmed=%d, want %d/%d", st.KeysMoved, st.Warmed, wantMoved, warmed)
	}
}

// TestRouterAdminWireVerbs pins the control-verb surface: status reflects
// membership transitions, unknown verbs are refused, and a plain service
// (not a router) refuses admin frames loudly.
func TestRouterAdminWireVerbs(t *testing.T) {
	addrs, _ := startShards(t, 3)
	rt, err := New(Options{Shards: addrs[:2], PingEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Drain()
	front, err := rt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := service.Dial(front.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	st, err := c.Admin(service.WireAdmin{Verb: service.AdminStatus})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 2 || st.Epoch != 0 {
		t.Fatalf("boot status: %d shards epoch %d, want 2/0", len(st.Shards), st.Epoch)
	}
	if _, err := c.Admin(service.WireAdmin{Verb: service.AdminAdd, Addr: addrs[2]}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admin(service.WireAdmin{Verb: service.AdminDrain, Shard: 0}); err != nil {
		t.Fatal(err)
	}
	st, err = c.Admin(service.WireAdmin{Verb: service.AdminStatus})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 3 || st.Epoch != 2 {
		t.Fatalf("post-transition status: %d shards epoch %d, want 3/2", len(st.Shards), st.Epoch)
	}
	if st.Shards[0].InRing || !st.Shards[0].Removed {
		t.Errorf("drained shard status %+v, want out of ring and removed", st.Shards[0])
	}
	if !st.Shards[2].InRing || !st.Shards[2].Up {
		t.Errorf("joined shard status %+v, want in ring and up", st.Shards[2])
	}

	if _, err := c.Admin(service.WireAdmin{Verb: "split"}); err == nil || !strings.Contains(err.Error(), "unknown admin verb") {
		t.Errorf("unknown verb: got %v", err)
	}
	direct, err := service.Dial(addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	if _, err := direct.Admin(service.WireAdmin{Verb: service.AdminStatus}); err == nil || !strings.Contains(err.Error(), "router tier") {
		t.Errorf("plain service answered an admin frame: %v", err)
	}
}

// flakyShard is a deterministic half-failing backend: it alternately closes
// an accepted connection immediately (probe fails) and serves it properly
// (probe succeeds) — the flapping pattern that used to bounce a shard in
// and out of the ring every other ping.
type flakyShard struct {
	ln net.Listener
	n  atomic.Int64
}

func newFlakyShard(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &flakyShard{ln: ln}
	t.Cleanup(func() { ln.Close() })
	go fs.accept()
	return ln.Addr().String()
}

func (fs *flakyShard) accept() {
	for {
		conn, err := fs.ln.Accept()
		if err != nil {
			return
		}
		if fs.n.Add(1)%2 == 1 {
			conn.Close() // this probe's round trip fails
			continue
		}
		go func() {
			defer conn.Close()
			for {
				var req service.SolveRequest
				if err := qpuserver.ReadMessage(conn, &req); err != nil {
					return
				}
				if err := qpuserver.WriteMessage(conn, &service.SolveResponse{OK: true}); err != nil {
					return
				}
			}
		}()
	}
}

// TestRouterHealthProbationStopsFlapping is the flapping regression: a
// deterministic half-failing shard must be evicted exactly once and then
// held out by probation — consecutive-success re-admission plus exponential
// probe backoff — instead of oscillating through the ring.
func TestRouterHealthProbationStopsFlapping(t *testing.T) {
	addrs, _ := startShards(t, 2)
	flaky := newFlakyShard(t)
	rt, err := New(Options{
		Shards:        []string{addrs[0], addrs[1], flaky},
		PingEvery:     5 * time.Millisecond,
		PingTimeout:   200 * time.Millisecond,
		PingFailLimit: 1,
		PingSuccLimit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Drain()

	deadline := time.Now().Add(5 * time.Second)
	for rt.Up()[2] {
		if time.Now().After(deadline) {
			t.Fatal("health loop never evicted the flapping shard")
		}
		time.Sleep(time.Millisecond)
	}
	// Watch ~40 ping periods: the old behavior re-admitted on every other
	// probe; probation must keep the flapper out for good.
	for i := 0; i < 40; i++ {
		if rt.Up()[2] {
			t.Fatal("flapping shard re-admitted mid-probation")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ev := rt.Stats().Evicted; ev != 1 {
		t.Errorf("flapper evicted %d times, want exactly 1", ev)
	}
	for class := 0; class < 6; class++ {
		if _, err := rt.Submit(profileReq(class)); err != nil {
			t.Fatalf("class %d failed with the flapper held out: %v", class, err)
		}
	}
}

// TestRouterHealthProbationReadmitsRecovered: probation must not strand a
// genuinely recovered shard — after PingSuccLimit consecutive good probes
// it rejoins the ring.
func TestRouterHealthProbationReadmitsRecovered(t *testing.T) {
	addrs, svcs := startShards(t, 3)
	rt, err := New(Options{
		Shards:        addrs,
		PingEvery:     5 * time.Millisecond,
		PingTimeout:   200 * time.Millisecond,
		PingFailLimit: 1,
		PingSuccLimit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Drain()

	svcs[2].CloseListener()
	svcs[2].Drain()
	deadline := time.Now().Add(5 * time.Second)
	for rt.Up()[2] {
		if time.Now().After(deadline) {
			t.Fatal("dead shard never evicted")
		}
		time.Sleep(time.Millisecond)
	}

	// Revive the backend on the same address; the shard must earn its way
	// back after the probation window.
	svc, err := service.New(service.Options{Workers: 2, Fleet: 2, QueueDepth: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Listen(addrs[2]); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		svc.CloseListener()
		svc.Drain()
	})
	for !rt.Up()[2] {
		if time.Now().After(deadline) {
			t.Fatal("recovered shard never re-admitted")
		}
		time.Sleep(time.Millisecond)
	}
}
