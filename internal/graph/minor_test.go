package graph

import (
	"math/rand"
	"testing"
)

// triangleIntoChimeraCell embeds K3 into one Chimera unit cell: logical 0 and
// 1 map to single left-shore qubits, logical 2 maps to a 2-qubit chain across
// the shores.
func triangleEmbedding(t *testing.T) (*Graph, *Graph, VertexModel) {
	t.Helper()
	c := Chimera{1, 1, 4}
	hw := c.Graph()
	g := Complete(3)
	vm := VertexModel{
		0: {c.Index(0, 0, 0, 0)},
		1: {c.Index(0, 0, 1, 0)},
		2: {c.Index(0, 0, 0, 1), c.Index(0, 0, 1, 1)},
	}
	return g, hw, vm
}

func TestValidateMinorAccepts(t *testing.T) {
	g, hw, vm := triangleEmbedding(t)
	if err := ValidateMinor(g, hw, vm, true); err != nil {
		t.Fatalf("valid embedding rejected: %v", err)
	}
}

func TestValidateMinorRejectsOverlap(t *testing.T) {
	g, hw, vm := triangleEmbedding(t)
	vm[1] = append(vm[1], vm[0][0]) // overlap with chain of 0
	if err := ValidateMinor(g, hw, vm, true); err == nil {
		t.Fatal("overlapping chains accepted")
	}
}

func TestValidateMinorRejectsDisconnectedChain(t *testing.T) {
	c := Chimera{1, 1, 4}
	hw := c.Graph()
	g := Complete(2)
	vm := VertexModel{
		0: {c.Index(0, 0, 0, 0), c.Index(0, 0, 0, 1)}, // same shore: not adjacent
		1: {c.Index(0, 0, 1, 0)},
	}
	if err := ValidateMinor(g, hw, vm, true); err == nil {
		t.Fatal("disconnected chain accepted")
	}
}

func TestValidateMinorRejectsMissingEdge(t *testing.T) {
	c := Chimera{2, 1, 4}
	hw := c.Graph()
	g := Complete(2)
	vm := VertexModel{
		0: {c.Index(0, 0, 0, 0)},
		1: {c.Index(1, 0, 0, 1)}, // different in-shore position: no coupler
	}
	if err := ValidateMinor(g, hw, vm, true); err == nil {
		t.Fatal("embedding with unrealized logical edge accepted")
	}
}

func TestValidateMinorEmptyChain(t *testing.T) {
	g, hw, vm := triangleEmbedding(t)
	delete(vm, 2)
	if err := ValidateMinor(g, hw, vm, true); err == nil {
		t.Fatal("empty chain accepted")
	}
	// A degree-0 vertex may be unmapped when requireAll is false.
	g2 := New(3)
	g2.AddEdge(0, 1)
	vm2 := VertexModel{0: vm[0], 1: vm[1]}
	if err := ValidateMinor(g2, hw, vm2, false); err != nil {
		t.Fatalf("optional isolated vertex rejected: %v", err)
	}
	if err := ValidateMinor(g2, hw, vm2, true); err == nil {
		t.Fatal("requireAll did not enforce isolated vertex mapping")
	}
}

func TestValidateMinorNonexistentHardwareVertex(t *testing.T) {
	g, hw, vm := triangleEmbedding(t)
	vm[0] = []int{hw.Order() + 5}
	if err := ValidateMinor(g, hw, vm, true); err == nil {
		t.Fatal("chain with out-of-range qubit accepted")
	}
}

func TestVertexModelStats(t *testing.T) {
	_, _, vm := triangleEmbedding(t)
	if vm.PhysicalQubits() != 4 {
		t.Errorf("PhysicalQubits = %d, want 4", vm.PhysicalQubits())
	}
	if vm.MaxChainLength() != 2 {
		t.Errorf("MaxChainLength = %d, want 2", vm.MaxChainLength())
	}
	c := vm.Clone()
	c[0][0] = 99
	if vm[0][0] == 99 {
		t.Error("Clone shares chain storage")
	}
}

func TestOwnerMapDetectsOverlap(t *testing.T) {
	vm := VertexModel{0: {1, 2}, 1: {2, 3}}
	if _, err := vm.OwnerMap(); err == nil {
		t.Fatal("overlap not detected")
	}
	vm = VertexModel{0: {1, 2}, 1: {3}}
	owner, err := vm.OwnerMap()
	if err != nil {
		t.Fatal(err)
	}
	if owner[2] != 0 || owner[3] != 1 {
		t.Errorf("owner map wrong: %v", owner)
	}
}

func TestChainEdges(t *testing.T) {
	g, hw, vm := triangleEmbedding(t)
	_ = g
	ce := ChainEdges(hw, vm)
	if len(ce[0]) != 0 || len(ce[1]) != 0 {
		t.Error("singleton chains should have no internal edges")
	}
	if len(ce[2]) != 1 {
		t.Errorf("2-chain should have 1 internal edge, got %v", ce[2])
	}
}

func TestContractMinorContainsInput(t *testing.T) {
	g, hw, vm := triangleEmbedding(t)
	contracted, err := ContractMinor(hw, vm, g.Order())
	if err != nil {
		t.Fatal(err)
	}
	if !IsSubgraphOf(g, contracted) {
		t.Error("contracted minor does not contain the input graph")
	}
}

func TestIsSubgraphOf(t *testing.T) {
	if !IsSubgraphOf(Path(4), Complete(4)) {
		t.Error("P4 should be subgraph of K4")
	}
	if IsSubgraphOf(Complete(4), Path(4)) {
		t.Error("K4 is not a subgraph of P4")
	}
	if IsSubgraphOf(Complete(5), Complete(4)) {
		t.Error("larger graph cannot be subgraph")
	}
}

func TestFaultModelApply(t *testing.T) {
	c := Chimera{2, 2, 4}
	hw := c.Graph()
	fm := FaultModel{
		DeadQubits:   []int{c.Index(0, 0, 0, 0)},
		DeadCouplers: []Edge{{U: c.Index(0, 0, 0, 1), V: c.Index(0, 0, 1, 1)}},
	}
	g := fm.Apply(hw)
	if g.Degree(c.Index(0, 0, 0, 0)) != 0 {
		t.Error("dead qubit still has edges")
	}
	if g.HasEdge(c.Index(0, 0, 0, 1), c.Index(0, 0, 1, 1)) {
		t.Error("dead coupler still present")
	}
	// Original untouched.
	if hw.Degree(c.Index(0, 0, 0, 0)) == 0 {
		t.Error("Apply mutated the input graph")
	}
}

func TestRandomFaultsRates(t *testing.T) {
	hw := Chimera{8, 8, 4}.Graph()
	rng := rand.New(rand.NewSource(42))
	fm := RandomFaults(hw, 0.05, 0.01, rng)
	if len(fm.DeadQubits) == 0 {
		t.Error("expected some dead qubits at 5% rate over 512 qubits")
	}
	if y := fm.Yield(hw.Order()); y <= 0.8 || y >= 1.0 {
		t.Errorf("yield = %v, implausible for 5%% fault rate", y)
	}
	// Zero rates produce a clean processor.
	fm = RandomFaults(hw, 0, 0, rng)
	if len(fm.DeadQubits) != 0 || len(fm.DeadCouplers) != 0 {
		t.Error("zero-rate fault model not empty")
	}
	if fm.Yield(hw.Order()) != 1 {
		t.Error("clean yield should be 1")
	}
}

func TestFaultModelNormalize(t *testing.T) {
	fm := FaultModel{
		DeadQubits:   []int{5, 1, 5, 3},
		DeadCouplers: []Edge{{4, 2}, {2, 4}, {1, 0}},
	}
	fm.Normalize()
	if len(fm.DeadQubits) != 3 || fm.DeadQubits[0] != 1 {
		t.Errorf("qubits not normalized: %v", fm.DeadQubits)
	}
	if len(fm.DeadCouplers) != 2 || fm.DeadCouplers[0] != (Edge{0, 1}) {
		t.Errorf("couplers not normalized: %v", fm.DeadCouplers)
	}
	if fm.IsDeadQubit(3) != true || fm.IsDeadQubit(2) != false {
		t.Error("IsDeadQubit wrong")
	}
}

func TestIsomorphicBasic(t *testing.T) {
	if !Isomorphic(Cycle(5), Cycle(5)) {
		t.Error("C5 ~ C5 failed")
	}
	if Isomorphic(Cycle(6), Path(6)) {
		t.Error("C6 !~ P6 failed")
	}
	if Isomorphic(Complete(4), Cycle(4)) {
		t.Error("K4 !~ C4 failed")
	}
	if !Isomorphic(New(0), New(0)) {
		t.Error("empty graphs should be isomorphic")
	}
}

func TestIsomorphicRelabeled(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := GNP(9, 0.4, rng)
	perm := rng.Perm(g.Order())
	h := New(g.Order())
	for _, e := range g.Edges() {
		h.AddEdge(perm[e.U], perm[e.V])
	}
	if !Isomorphic(g, h) {
		t.Error("relabeled graph not recognized as isomorphic")
	}
	m := FindIsomorphism(g, h)
	if m == nil {
		t.Fatal("FindIsomorphism returned nil for isomorphic pair")
	}
	for _, e := range g.Edges() {
		if !h.HasEdge(m[e.U], m[e.V]) {
			t.Fatalf("mapping does not preserve edge %v", e)
		}
	}
}

func TestFindIsomorphismNil(t *testing.T) {
	if FindIsomorphism(Cycle(6), Path(6)) != nil {
		t.Error("non-isomorphic pair got a mapping")
	}
}

func TestCanonicalHashInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		g := GNP(12, 0.35, rng)
		perm := rng.Perm(g.Order())
		h := New(g.Order())
		for _, e := range g.Edges() {
			h.AddEdge(perm[e.U], perm[e.V])
		}
		if CanonicalHash(g) != CanonicalHash(h) {
			t.Fatal("hash not invariant under relabeling")
		}
	}
}

func TestCanonicalHashDistinguishes(t *testing.T) {
	// Different sizes and degree sequences must hash differently.
	if CanonicalHash(Cycle(6)) == CanonicalHash(Path(6)) {
		t.Error("C6 and P6 hash equal")
	}
	if CanonicalHash(Complete(5)) == CanonicalHash(Complete(6)) {
		t.Error("K5 and K6 hash equal")
	}
	if CanonicalHash(Star(5)) == CanonicalHash(Cycle(5)) {
		t.Error("Star5 and C5 hash equal")
	}
}
