package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestChimeraPaperSizes(t *testing.T) {
	v := Vesuvius()
	if v.Qubits() != 512 {
		t.Errorf("Vesuvius qubits = %d, want 512", v.Qubits())
	}
	d := DW2X()
	if d.Qubits() != 1152 {
		t.Errorf("DW2X qubits = %d, want 1152 (paper: 12-by-12 lattice)", d.Qubits())
	}
}

// The paper's stage-1 model uses NG = 8*M*N and
// EG = 4*(2*M*N - M - N) + 16*M*N for the C(M,N,4) hardware graph. Our
// generated topology must match those closed forms exactly.
func TestChimeraMatchesPaperFormulas(t *testing.T) {
	for _, c := range []Chimera{{2, 2, 4}, {8, 8, 4}, {12, 12, 4}, {3, 5, 4}} {
		g := c.Graph()
		ng := 8 * c.M * c.N
		eg := 4*(2*c.M*c.N-c.M-c.N) + 16*c.M*c.N
		if g.Order() != ng {
			t.Errorf("%v: order = %d, want NG = %d", c, g.Order(), ng)
		}
		if g.Size() != eg {
			t.Errorf("%v: size = %d, want EG = %d", c, g.Size(), eg)
		}
		if c.Couplers() != eg {
			t.Errorf("%v: Couplers() = %d, want %d", c, c.Couplers(), eg)
		}
	}
}

func TestChimeraDegreeBounds(t *testing.T) {
	// Paper §2.1: each qubit interacts with 6 neighbors (5 for edge qubits)
	// in C(M,N,4): 4 intra-cell + up to 2 inter-cell.
	g := Chimera{4, 4, 4}.Graph()
	min, max := math.MaxInt32, 0
	for v := 0; v < g.Order(); v++ {
		d := g.Degree(v)
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if min != 5 || max != 6 {
		t.Errorf("degree range = [%d,%d], want [5,6]", min, max)
	}
}

func TestChimeraIndexCoordinateRoundTrip(t *testing.T) {
	c := Chimera{3, 4, 4}
	for q := 0; q < c.Qubits(); q++ {
		r, col, s, k := c.Coordinate(q)
		if got := c.Index(r, col, s, k); got != q {
			t.Fatalf("round trip %d -> (%d,%d,%d,%d) -> %d", q, r, col, s, k, got)
		}
	}
}

func TestChimeraIndexPanics(t *testing.T) {
	c := Chimera{2, 2, 4}
	for _, bad := range [][4]int{{-1, 0, 0, 0}, {2, 0, 0, 0}, {0, 0, 2, 0}, {0, 0, 0, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Index%v did not panic", bad)
				}
			}()
			c.Index(bad[0], bad[1], bad[2], bad[3])
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("Coordinate(-1) did not panic")
		}
	}()
	c.Coordinate(-1)
}

func TestChimeraBipartiteWithinCell(t *testing.T) {
	c := Chimera{2, 2, 4}
	g := c.Graph()
	// Same-shore qubits in one cell are never adjacent.
	for k1 := 0; k1 < 4; k1++ {
		for k2 := k1 + 1; k2 < 4; k2++ {
			if g.HasEdge(c.Index(0, 0, 0, k1), c.Index(0, 0, 0, k2)) {
				t.Error("left-shore qubits adjacent within a cell")
			}
			if g.HasEdge(c.Index(0, 0, 1, k1), c.Index(0, 0, 1, k2)) {
				t.Error("right-shore qubits adjacent within a cell")
			}
		}
	}
	// Opposite shores fully coupled.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if !g.HasEdge(c.Index(1, 1, 0, i), c.Index(1, 1, 1, j)) {
				t.Error("missing intra-cell coupler")
			}
		}
	}
}

func TestChimeraInterCellCouplers(t *testing.T) {
	c := Chimera{3, 3, 4}
	g := c.Graph()
	// Vertical: left shore k couples to left shore k one row down.
	if !g.HasEdge(c.Index(0, 1, 0, 2), c.Index(1, 1, 0, 2)) {
		t.Error("missing vertical coupler")
	}
	if g.HasEdge(c.Index(0, 1, 0, 2), c.Index(1, 1, 0, 3)) {
		t.Error("vertical coupler crosses in-shore positions")
	}
	// Horizontal: right shore k couples to right shore k one column right.
	if !g.HasEdge(c.Index(1, 0, 1, 0), c.Index(1, 1, 1, 0)) {
		t.Error("missing horizontal coupler")
	}
	// No wraparound.
	if g.HasEdge(c.Index(2, 0, 0, 0), c.Index(0, 0, 0, 0)) {
		t.Error("unexpected vertical wraparound")
	}
}

func TestChimeraConnected(t *testing.T) {
	if !IsConnected(Chimera{4, 3, 4}.Graph()) {
		t.Error("chimera graph should be connected")
	}
}

func TestChimeraCellOf(t *testing.T) {
	c := Chimera{4, 4, 4}
	q := c.Index(2, 3, 1, 0)
	r, col := c.CellOf(q)
	if r != 2 || col != 3 {
		t.Errorf("CellOf = (%d,%d), want (2,3)", r, col)
	}
}

// Property: coordinate round-trips for random Chimera shapes.
func TestChimeraRoundTripProperty(t *testing.T) {
	f := func(m, n, q uint8) bool {
		c := Chimera{M: int(m%6) + 1, N: int(n%6) + 1, L: 4}
		qi := int(q) % c.Qubits()
		r, col, s, k := c.Coordinate(qi)
		return c.Index(r, col, s, k) == qi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
