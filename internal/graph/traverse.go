package graph

import "container/heap"

// BFS performs a breadth-first search from src and returns the distance (in
// edges) to every vertex; unreachable vertices get distance -1.
func BFS(g *Graph, src int) []int {
	dist := make([]int, g.Order())
	for i := range dist {
		dist[i] = -1
	}
	if !g.HasVertex(src) {
		return dist
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// Components returns the connected components of g as vertex lists, and a
// label slice mapping each vertex to its component index.
func Components(g *Graph) ([][]int, []int) {
	label := make([]int, g.Order())
	for i := range label {
		label[i] = -1
	}
	var comps [][]int
	for s := 0; s < g.Order(); s++ {
		if label[s] != -1 {
			continue
		}
		id := len(comps)
		var comp []int
		stack := []int{s}
		label[s] = id
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, u := range g.Neighbors(v) {
				if label[u] == -1 {
					label[u] = id
					stack = append(stack, u)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps, label
}

// IsConnected reports whether g is connected (vacuously true for n <= 1).
func IsConnected(g *Graph) bool {
	if g.Order() <= 1 {
		return true
	}
	comps, _ := Components(g)
	return len(comps) == 1
}

// ConnectedSubset reports whether the vertex subset s induces a connected
// subgraph of g. An empty subset is considered disconnected.
func ConnectedSubset(g *Graph, s []int) bool {
	if len(s) == 0 {
		return false
	}
	in := make(map[int]bool, len(s))
	for _, v := range s {
		in[v] = true
	}
	seen := map[int]bool{s[0]: true}
	stack := []int{s[0]}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range g.Neighbors(v) {
			if in[u] && !seen[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
	return len(seen) == len(in)
}

// Inf is the distance reported by Dijkstra for unreachable vertices.
const Inf = int(^uint(0) >> 2)

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	v    int
	dist int
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// Dijkstra computes single-source shortest paths from src with per-vertex
// weights (the cost of entering a vertex), as used by the Cai–Macready–Roy
// embedding heuristic. weight[v] must be >= 0; vertices with weight[v] ==
// Blocked are impassable. It returns dist (Inf when unreachable) and parent
// (-1 at roots/unreachable vertices).
//
// The source's own weight is not charged, matching CMR's "cost of reaching v
// from the root's component" formulation.
func Dijkstra(g *Graph, src int, weight []int) (dist, parent []int) {
	n := g.Order()
	dist = make([]int, n)
	parent = make([]int, n)
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
	}
	if !g.HasVertex(src) || weight[src] == Blocked {
		return
	}
	dist[src] = 0
	h := &pq{{v: src, dist: 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if it.dist > dist[it.v] {
			continue
		}
		for _, u := range g.Neighbors(it.v) {
			if weight[u] == Blocked {
				continue
			}
			nd := it.dist + weight[u]
			if nd < dist[u] {
				dist[u] = nd
				parent[u] = it.v
				heap.Push(h, pqItem{v: u, dist: nd})
			}
		}
	}
	return
}

// Blocked marks impassable vertices for Dijkstra.
const Blocked = -1

// PathTo reconstructs the path from the Dijkstra source to v using the parent
// slice, returned in source→v order. It returns nil if v was unreachable.
func PathTo(parent []int, v int, dist []int) []int {
	if dist[v] == Inf {
		return nil
	}
	var rev []int
	for x := v; x != -1; x = parent[x] {
		rev = append(rev, x)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Eccentricity returns the BFS eccentricity of v (max distance to any
// reachable vertex).
func Eccentricity(g *Graph, v int) int {
	max := 0
	for _, d := range BFS(g, v) {
		if d > max {
			max = d
		}
	}
	return max
}
