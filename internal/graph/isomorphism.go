package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
)

// CanonicalHash returns a hash that is invariant under vertex relabeling for
// the overwhelming majority of graphs (it is a 1-dimensional
// Weisfeiler–Leman color-refinement hash). Two isomorphic graphs always hash
// identically; non-isomorphic graphs collide only if they are 1-WL
// indistinguishable (e.g. some regular graphs). The offline embedding cache
// uses this as a fast lookup key and falls back to exact isomorphism
// checking on hash hits.
func CanonicalHash(g *Graph) string {
	n := g.Order()
	color := make([]uint64, n)
	for v := 0; v < n; v++ {
		color[v] = uint64(g.Degree(v))
	}
	// Refine up to n rounds or until stable.
	next := make([]uint64, n)
	for round := 0; round < n; round++ {
		changed := false
		for v := 0; v < n; v++ {
			ns := g.Neighbors(v)
			sig := make([]uint64, 0, len(ns)+1)
			for _, u := range ns {
				sig = append(sig, color[u])
			}
			sort.Slice(sig, func(i, j int) bool { return sig[i] < sig[j] })
			sig = append(sig, color[v])
			next[v] = hashUint64s(sig)
		}
		for v := 0; v < n; v++ {
			if next[v] != color[v] {
				changed = true
			}
			color[v] = next[v]
		}
		if !changed {
			break
		}
	}
	final := append([]uint64(nil), color...)
	sort.Slice(final, func(i, j int) bool { return final[i] < final[j] })
	final = append(final, uint64(n), uint64(g.Size()))
	h := sha256.New()
	buf := make([]byte, 8)
	for _, x := range final {
		binary.LittleEndian.PutUint64(buf, x)
		h.Write(buf)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func hashUint64s(xs []uint64) uint64 {
	// FNV-1a over the little-endian bytes.
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, x := range xs {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime
			x >>= 8
		}
	}
	return h
}

// Isomorphic reports whether g and h are isomorphic, using exhaustive
// backtracking with degree pruning. Intended for the small graphs (n ≲ 12)
// that the offline embedding cache stores; larger inputs still terminate but
// may be slow.
func Isomorphic(g, h *Graph) bool {
	if g.Order() != h.Order() || g.Size() != h.Size() {
		return false
	}
	n := g.Order()
	if n == 0 {
		return true
	}
	if !sameDegreeSequence(g, h) {
		return false
	}
	// Order g's vertices by descending degree for early pruning.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return g.Degree(order[i]) > g.Degree(order[j]) })

	mapping := make([]int, n) // g vertex -> h vertex
	used := make([]bool, n)
	for i := range mapping {
		mapping[i] = -1
	}

	var try func(idx int) bool
	try = func(idx int) bool {
		if idx == n {
			return true
		}
		v := order[idx]
		for w := 0; w < n; w++ {
			if used[w] || g.Degree(v) != h.Degree(w) {
				continue
			}
			ok := true
			for _, u := range g.Neighbors(v) {
				if mu := mapping[u]; mu != -1 && !h.HasEdge(w, mu) {
					ok = false
					break
				}
			}
			if ok {
				// Also require that mapped non-neighbors stay non-adjacent
				// (edge counts are equal, so edge preservation in one
				// direction plus a bijection suffices; check anyway for
				// earlier pruning).
				for prev := 0; prev < idx; prev++ {
					pv := order[prev]
					if !g.HasEdge(v, pv) && h.HasEdge(w, mapping[pv]) {
						ok = false
						break
					}
				}
			}
			if !ok {
				continue
			}
			mapping[v] = w
			used[w] = true
			if try(idx + 1) {
				return true
			}
			mapping[v] = -1
			used[w] = false
		}
		return false
	}
	return try(0)
}

func sameDegreeSequence(g, h *Graph) bool {
	dg := make([]int, g.Order())
	dh := make([]int, h.Order())
	for i := range dg {
		dg[i] = g.Degree(i)
		dh[i] = h.Degree(i)
	}
	sort.Ints(dg)
	sort.Ints(dh)
	for i := range dg {
		if dg[i] != dh[i] {
			return false
		}
	}
	return true
}

// FindIsomorphism returns a vertex bijection mapping g onto h, or nil if none
// exists. Same algorithmic caveats as Isomorphic.
func FindIsomorphism(g, h *Graph) []int {
	if g.Order() != h.Order() || g.Size() != h.Size() || !sameDegreeSequence(g, h) {
		return nil
	}
	n := g.Order()
	mapping := make([]int, n)
	used := make([]bool, n)
	for i := range mapping {
		mapping[i] = -1
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return g.Degree(order[i]) > g.Degree(order[j]) })

	var try func(idx int) bool
	try = func(idx int) bool {
		if idx == n {
			return true
		}
		v := order[idx]
		for w := 0; w < n; w++ {
			if used[w] || g.Degree(v) != h.Degree(w) {
				continue
			}
			ok := true
			for prev := 0; prev < idx; prev++ {
				pv := order[prev]
				if g.HasEdge(v, pv) != h.HasEdge(w, mapping[pv]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			mapping[v] = w
			used[w] = true
			if try(idx + 1) {
				return true
			}
			mapping[v] = -1
			used[w] = false
		}
		return false
	}
	if try(0) {
		return mapping
	}
	return nil
}
