package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmptyGraph(t *testing.T) {
	g := New(5)
	if g.Order() != 5 {
		t.Fatalf("Order = %d, want 5", g.Order())
	}
	if g.Size() != 0 {
		t.Fatalf("Size = %d, want 0", g.Size())
	}
	for v := 0; v < 5; v++ {
		if g.Degree(v) != 0 {
			t.Errorf("Degree(%d) = %d, want 0", v, g.Degree(v))
		}
	}
}

func TestZeroValueGraphUsable(t *testing.T) {
	var g Graph
	if g.Order() != 0 || g.Size() != 0 {
		t.Fatalf("zero graph not empty: %v", &g)
	}
	if g.HasEdge(0, 1) {
		t.Error("zero graph claims edge")
	}
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge {0,1} missing or not symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Error("spurious edge {0,2}")
	}
	if g.Size() != 2 {
		t.Errorf("Size = %d, want 2", g.Size())
	}
	if g.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d, want 2", g.Degree(1))
	}
}

func TestAddEdgeIgnoresSelfLoopsAndDuplicates(t *testing.T) {
	g := New(3)
	g.AddEdge(1, 1)
	if g.Size() != 0 {
		t.Error("self-loop was added")
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(0, 1)
	if g.Size() != 1 {
		t.Errorf("duplicate edges counted: Size = %d", g.Size())
	}
}

func TestAddEdgeGrowsVertexSet(t *testing.T) {
	g := New(1)
	g.AddEdge(0, 7)
	if g.Order() != 8 {
		t.Errorf("Order = %d, want 8", g.Order())
	}
}

func TestRemoveEdge(t *testing.T) {
	g := Complete(4)
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) {
		t.Error("edge {0,1} still present")
	}
	if g.Size() != 5 {
		t.Errorf("Size = %d, want 5", g.Size())
	}
	g.RemoveEdge(0, 1) // no-op
	if g.Size() != 5 {
		t.Errorf("double remove changed size: %d", g.Size())
	}
}

func TestRemoveVertexIsolates(t *testing.T) {
	g := Complete(4)
	g.RemoveVertex(2)
	if g.Degree(2) != 0 {
		t.Errorf("Degree(2) = %d after removal", g.Degree(2))
	}
	if g.Size() != 3 {
		t.Errorf("Size = %d, want 3 (K3 on {0,1,3})", g.Size())
	}
	if g.Order() != 4 {
		t.Errorf("Order changed: %d", g.Order())
	}
}

func TestEdgesSortedNormalized(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 1)
	g.AddEdge(2, 0)
	es := g.Edges()
	if len(es) != 2 {
		t.Fatalf("len(Edges) = %d", len(es))
	}
	if es[0] != (Edge{0, 2}) || es[1] != (Edge{1, 3}) {
		t.Errorf("Edges = %v", es)
	}
}

func TestEdgeNormalizeAndOther(t *testing.T) {
	e := Edge{5, 2}.Normalize()
	if e != (Edge{2, 5}) {
		t.Errorf("Normalize = %v", e)
	}
	if e.Other(2) != 5 || e.Other(5) != 2 {
		t.Error("Other endpoints wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Other with non-endpoint did not panic")
		}
	}()
	e.Other(9)
}

func TestCloneIndependence(t *testing.T) {
	g := Complete(4)
	c := g.Clone()
	c.RemoveEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Error("Clone shares storage with original")
	}
	if !g.Equal(g.Clone()) {
		t.Error("clone not Equal to original")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(5)
	sub, back := g.InducedSubgraph([]int{1, 3, 4})
	if sub.Order() != 3 || sub.Size() != 3 {
		t.Fatalf("induced K3 wrong: %v", sub)
	}
	if back[0] != 1 || back[1] != 3 || back[2] != 4 {
		t.Errorf("back map = %v", back)
	}
}

func TestFromAdjacencyRoundTrip(t *testing.T) {
	g := GNP(12, 0.4, rand.New(rand.NewSource(1)))
	h := FromAdjacency(g.AdjacencyMatrix())
	if !g.Equal(h) {
		t.Error("adjacency round trip mismatch")
	}
}

func TestGeneratorsCounts(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		n, m int
	}{
		{"K5", Complete(5), 5, 10},
		{"K1", Complete(1), 1, 0},
		{"C6", Cycle(6), 6, 6},
		{"C2-empty", Cycle(2), 2, 0},
		{"P4", Path(4), 4, 3},
		{"Star5", Star(5), 5, 4},
		{"Grid3x4", Grid(3, 4), 12, 17},
		{"K23", CompleteBipartite(2, 3), 5, 6},
	}
	for _, c := range cases {
		if c.g.Order() != c.n || c.g.Size() != c.m {
			t.Errorf("%s: got (n=%d,m=%d), want (%d,%d)", c.name, c.g.Order(), c.g.Size(), c.n, c.m)
		}
	}
}

func TestGNPExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if g := GNP(10, 0, rng); g.Size() != 0 {
		t.Errorf("GNP(10,0) has %d edges", g.Size())
	}
	if g := GNP(10, 1, rng); g.Size() != 45 {
		t.Errorf("GNP(10,1) has %d edges, want 45", g.Size())
	}
}

func TestGNMExactEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := GNM(10, 17, rng)
	if g.Size() != 17 {
		t.Errorf("GNM size = %d, want 17", g.Size())
	}
	// Clamp to max.
	g = GNM(4, 100, rng)
	if g.Size() != 6 {
		t.Errorf("GNM clamp = %d, want 6", g.Size())
	}
}

func TestRandomRegularishDegreeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := RandomRegularish(30, 3, rng)
	for v := 0; v < g.Order(); v++ {
		if g.Degree(v) > 3 {
			t.Fatalf("degree(%d) = %d exceeds bound", v, g.Degree(v))
		}
	}
	if g.Size() == 0 {
		t.Error("regularish graph has no edges")
	}
}

func TestBFSPath(t *testing.T) {
	g := Path(5)
	d := BFS(g, 0)
	for i := 0; i < 5; i++ {
		if d[i] != i {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], i)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	d := BFS(g, 0)
	if d[2] != -1 || d[3] != -1 {
		t.Errorf("unreachable distances: %v", d)
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	comps, label := Components(g)
	if len(comps) != 4 {
		t.Fatalf("components = %d, want 4 (two edges + two isolated)", len(comps))
	}
	if label[0] != label[1] || label[2] != label[3] || label[0] == label[2] {
		t.Errorf("labels wrong: %v", label)
	}
}

func TestIsConnected(t *testing.T) {
	if !IsConnected(Complete(6)) {
		t.Error("K6 not connected")
	}
	if !IsConnected(New(0)) || !IsConnected(New(1)) {
		t.Error("trivial graphs should be connected")
	}
	g := New(3)
	g.AddEdge(0, 1)
	if IsConnected(g) {
		t.Error("graph with isolated vertex reported connected")
	}
}

func TestConnectedSubset(t *testing.T) {
	g := Path(6)
	if !ConnectedSubset(g, []int{1, 2, 3}) {
		t.Error("contiguous path subset should be connected")
	}
	if ConnectedSubset(g, []int{0, 2}) {
		t.Error("gap subset should be disconnected")
	}
	if ConnectedSubset(g, nil) {
		t.Error("empty subset should be disconnected")
	}
	if !ConnectedSubset(g, []int{4}) {
		t.Error("singleton should be connected")
	}
}

func TestDijkstraUnitWeights(t *testing.T) {
	g := Cycle(6)
	w := make([]int, 6)
	for i := range w {
		w[i] = 1
	}
	dist, parent := Dijkstra(g, 0, w)
	if dist[3] != 3 {
		t.Errorf("dist[3] = %d, want 3", dist[3])
	}
	p := PathTo(parent, 3, dist)
	if len(p) != 4 || p[0] != 0 || p[3] != 3 {
		t.Errorf("path = %v", p)
	}
}

func TestDijkstraWeightedDetour(t *testing.T) {
	// 0-1-2 direct but expensive via 1; 0-3-4-2 cheap.
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 2)
	w := []int{1, 100, 1, 1, 1}
	dist, parent := Dijkstra(g, 0, w)
	if dist[2] != 3 {
		t.Errorf("dist[2] = %d, want 3 (detour)", dist[2])
	}
	p := PathTo(parent, 2, dist)
	want := []int{0, 3, 4, 2}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
}

func TestDijkstraBlocked(t *testing.T) {
	g := Path(3)
	w := []int{1, Blocked, 1}
	dist, _ := Dijkstra(g, 0, w)
	if dist[2] != Inf {
		t.Errorf("dist through blocked vertex = %d, want Inf", dist[2])
	}
	// Blocked source: everything unreachable.
	dist, _ = Dijkstra(g, 1, w)
	if dist[0] != Inf || dist[1] != Inf {
		t.Error("blocked source should reach nothing")
	}
}

func TestPathToUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	w := []int{1, 1, 1}
	dist, parent := Dijkstra(g, 0, w)
	if p := PathTo(parent, 2, dist); p != nil {
		t.Errorf("path to unreachable = %v", p)
	}
}

func TestEccentricity(t *testing.T) {
	if e := Eccentricity(Path(5), 0); e != 4 {
		t.Errorf("ecc = %d, want 4", e)
	}
	if e := Eccentricity(Path(5), 2); e != 2 {
		t.Errorf("center ecc = %d, want 2", e)
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Sets() != 5 {
		t.Fatalf("Sets = %d", uf.Sets())
	}
	if !uf.Union(0, 1) || !uf.Union(2, 3) {
		t.Error("first unions should merge")
	}
	if uf.Union(1, 0) {
		t.Error("repeat union should not merge")
	}
	if !uf.Connected(0, 1) || uf.Connected(0, 2) {
		t.Error("connectivity wrong")
	}
	uf.Union(1, 3)
	if !uf.Connected(0, 2) {
		t.Error("transitive connectivity wrong")
	}
	if uf.Sets() != 2 {
		t.Errorf("Sets = %d, want 2", uf.Sets())
	}
}

// Property: BFS distances obey the triangle rule |d(u)-d(v)| <= 1 across any
// edge of a connected random graph.
func TestBFSEdgeLipschitzProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := GNP(20, 0.3, rng)
		d := BFS(g, 0)
		for _, e := range g.Edges() {
			du, dv := d[e.U], d[e.V]
			if du == -1 || dv == -1 {
				continue
			}
			if du-dv > 1 || dv-du > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: union-find component count matches DFS component count.
func TestUnionFindMatchesComponents(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := GNP(25, 0.08, rng)
		uf := NewUnionFind(g.Order())
		for _, e := range g.Edges() {
			uf.Union(e.U, e.V)
		}
		comps, _ := Components(g)
		return uf.Sets() == len(comps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
