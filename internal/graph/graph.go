// Package graph provides the undirected-graph substrate used throughout the
// split-execution system: adjacency structures, the Chimera hardware topology
// of D-Wave-style quantum annealers, standard graph generators, shortest
// paths, connectivity, and minor-embedding validation primitives.
//
// Vertices are dense integers in [0, Order()). Edges are unordered pairs.
// All graphs in this package are simple (no self-loops, no multi-edges).
package graph

import (
	"fmt"
	"sort"
)

// Edge is an unordered pair of vertices. Normalized edges satisfy U < V.
type Edge struct {
	U, V int
}

// Normalize returns the edge with endpoints ordered so that U < V.
func (e Edge) Normalize() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Other returns the endpoint of e that is not v. It panics if v is not an
// endpoint of e.
func (e Edge) Other(v int) int {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %v", v, e))
}

// Graph is an undirected simple graph over vertices 0..n-1 stored as sorted
// adjacency lists. The zero value is an empty graph with no vertices.
type Graph struct {
	adj map[int][]int
	n   int
	m   int
}

// New returns an empty graph with n vertices and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{adj: make(map[int][]int, n), n: n}
}

// Order returns the number of vertices.
func (g *Graph) Order() int { return g.n }

// Size returns the number of edges.
func (g *Graph) Size() int { return g.m }

// HasVertex reports whether v is a vertex of g.
func (g *Graph) HasVertex(v int) bool { return v >= 0 && v < g.n }

// AddVertex grows the vertex set so that v is a valid vertex, returning the
// new order of the graph.
func (g *Graph) AddVertex(v int) int {
	if v >= g.n {
		g.n = v + 1
	}
	return g.n
}

// AddEdge inserts the undirected edge {u,v}. It is a no-op for self-loops and
// duplicate edges. Vertices are grown as needed.
func (g *Graph) AddEdge(u, v int) {
	if u == v || u < 0 || v < 0 {
		return
	}
	if g.HasEdge(u, v) {
		return
	}
	g.AddVertex(u)
	g.AddVertex(v)
	if g.adj == nil {
		g.adj = make(map[int][]int)
	}
	g.adj[u] = insertSorted(g.adj[u], v)
	g.adj[v] = insertSorted(g.adj[v], u)
	g.m++
}

// RemoveEdge deletes the undirected edge {u,v} if present.
func (g *Graph) RemoveEdge(u, v int) {
	if !g.HasEdge(u, v) {
		return
	}
	g.adj[u] = removeSorted(g.adj[u], v)
	g.adj[v] = removeSorted(g.adj[v], u)
	g.m--
}

// HasEdge reports whether the undirected edge {u,v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	if g.adj == nil {
		return false
	}
	a := g.adj[u]
	i := sort.SearchInts(a, v)
	return i < len(a) && a[i] == v
}

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted neighbor list of v. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Edges returns all edges, normalized and sorted lexicographically.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				es = append(es, Edge{U: u, V: v})
			}
		}
	}
	return es
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.m = g.m
	for v, ns := range g.adj {
		c.adj[v] = append([]int(nil), ns...)
	}
	return c
}

// MaxDegree returns the largest vertex degree in g (0 for edgeless graphs).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, ns := range g.adj {
		if len(ns) > max {
			max = len(ns)
		}
	}
	return max
}

// RemoveVertex deletes all edges incident to v. The vertex identifier itself
// remains valid (graphs use a dense vertex space), but becomes isolated.
func (g *Graph) RemoveVertex(v int) {
	for _, u := range append([]int(nil), g.adj[v]...) {
		g.RemoveEdge(u, v)
	}
}

// InducedSubgraph returns the subgraph induced by keep, relabeled to
// 0..len(keep)-1 in the order given, together with the mapping from new
// labels back to original vertices.
func (g *Graph) InducedSubgraph(keep []int) (*Graph, []int) {
	index := make(map[int]int, len(keep))
	for i, v := range keep {
		index[v] = i
	}
	sub := New(len(keep))
	for i, v := range keep {
		for _, u := range g.adj[v] {
			if j, ok := index[u]; ok && i < j {
				sub.AddEdge(i, j)
			}
		}
	}
	back := append([]int(nil), keep...)
	return sub, back
}

// String renders a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.n, g.m)
}

// Equal reports whether g and h have identical vertex counts and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || g.m != h.m {
		return false
	}
	for v, ns := range g.adj {
		hs := h.adj[v]
		if len(ns) != len(hs) {
			return false
		}
		for i := range ns {
			if ns[i] != hs[i] {
				return false
			}
		}
	}
	return true
}

// AdjacencyMatrix returns the dense 0/1 adjacency matrix of g.
func (g *Graph) AdjacencyMatrix() [][]float64 {
	a := make([][]float64, g.n)
	for i := range a {
		a[i] = make([]float64, g.n)
	}
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			a[u][v] = 1
		}
	}
	return a
}

// FromEdges builds a graph with n vertices from an edge list.
func FromEdges(n int, edges []Edge) *Graph {
	g := New(n)
	for _, e := range edges {
		g.AddEdge(e.U, e.V)
	}
	return g
}

// FromAdjacency builds a graph from a dense symmetric adjacency/weight
// matrix; any nonzero entry (i<j) becomes an edge.
func FromAdjacency(a [][]float64) *Graph {
	g := New(len(a))
	for i := range a {
		for j := i + 1; j < len(a[i]); j++ {
			if a[i][j] != 0 {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

func insertSorted(a []int, x int) []int {
	i := sort.SearchInts(a, x)
	a = append(a, 0)
	copy(a[i+1:], a[i:])
	a[i] = x
	return a
}

func removeSorted(a []int, x int) []int {
	i := sort.SearchInts(a, x)
	if i < len(a) && a[i] == x {
		return append(a[:i], a[i+1:]...)
	}
	return a
}
