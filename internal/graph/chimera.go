package graph

import "fmt"

// Chimera describes the C(M,N,L) hardware topology used by the D-Wave
// processor family: an M-by-N grid of unit cells, each a complete bipartite
// K_{L,L} graph. Within a cell the "left" shore couples to the "right" shore;
// left-shore qubits couple vertically to the cell below, right-shore qubits
// couple horizontally to the cell to the right.
//
// The paper's Vesuvius-generation processor is C(8,8,4) (512 qubits); the
// DW2X referenced in Fig. 6 is C(12,12,4) (1152 qubits).
type Chimera struct {
	M, N, L int
}

// Vesuvius is the 512-qubit C(8,8,4) topology shown in the paper's Fig. 3.
func Vesuvius() Chimera { return Chimera{M: 8, N: 8, L: 4} }

// DW2X is the 1152-qubit C(12,12,4) topology used in the paper's stage-1
// model (M=12, N=12, NG=8*M*N=1152).
func DW2X() Chimera { return Chimera{M: 12, N: 12, L: 4} }

// Qubits returns the total number of physical qubits, 2*L*M*N.
func (c Chimera) Qubits() int { return 2 * c.L * c.M * c.N }

// Couplers returns the total number of couplers (edges):
// intra-cell L*L per cell plus inter-cell L*(2*M*N - M - N).
// For L=4 this matches the paper's EG = 4*(2*M*N - M - N) + 16*M*N.
func (c Chimera) Couplers() int {
	intra := c.L * c.L * c.M * c.N
	inter := c.L * (2*c.M*c.N - c.M - c.N)
	return intra + inter
}

// Index returns the linear qubit index for cell (row, col), shore
// (0 = left/vertical, 1 = right/horizontal) and in-shore position k in [0,L).
func (c Chimera) Index(row, col, shore, k int) int {
	if row < 0 || row >= c.M || col < 0 || col >= c.N || shore < 0 || shore > 1 || k < 0 || k >= c.L {
		panic(fmt.Sprintf("graph: chimera coordinate out of range (%d,%d,%d,%d) for C(%d,%d,%d)",
			row, col, shore, k, c.M, c.N, c.L))
	}
	return ((row*c.N+col)*2+shore)*c.L + k
}

// Coordinate is the inverse of Index.
func (c Chimera) Coordinate(q int) (row, col, shore, k int) {
	if q < 0 || q >= c.Qubits() {
		panic(fmt.Sprintf("graph: qubit %d out of range for C(%d,%d,%d)", q, c.M, c.N, c.L))
	}
	k = q % c.L
	q /= c.L
	shore = q % 2
	q /= 2
	col = q % c.N
	row = q / c.N
	return
}

// Graph materializes the Chimera topology as a Graph.
func (c Chimera) Graph() *Graph {
	g := New(c.Qubits())
	for r := 0; r < c.M; r++ {
		for col := 0; col < c.N; col++ {
			// Intra-cell complete bipartite K_{L,L}.
			for i := 0; i < c.L; i++ {
				for j := 0; j < c.L; j++ {
					g.AddEdge(c.Index(r, col, 0, i), c.Index(r, col, 1, j))
				}
			}
			// Vertical couplers on the left shore.
			if r+1 < c.M {
				for k := 0; k < c.L; k++ {
					g.AddEdge(c.Index(r, col, 0, k), c.Index(r+1, col, 0, k))
				}
			}
			// Horizontal couplers on the right shore.
			if col+1 < c.N {
				for k := 0; k < c.L; k++ {
					g.AddEdge(c.Index(r, col, 1, k), c.Index(r, col+1, 1, k))
				}
			}
		}
	}
	return g
}

// CellOf returns the (row, col) of the unit cell containing qubit q.
func (c Chimera) CellOf(q int) (row, col int) {
	row, col, _, _ = c.Coordinate(q)
	return
}

// String implements fmt.Stringer.
func (c Chimera) String() string {
	return fmt.Sprintf("C(%d,%d,%d)[%d qubits, %d couplers]", c.M, c.N, c.L, c.Qubits(), c.Couplers())
}
