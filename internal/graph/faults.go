package graph

import (
	"math/rand"
	"sort"
)

// FaultModel describes fabrication faults in a hardware graph: qubits and
// couplers identified as defective during processor calibration must be
// deactivated before programming (paper §2.2). Faults break the Chimera
// symmetry and make minor embedding harder.
type FaultModel struct {
	DeadQubits   []int  // qubits removed from service
	DeadCouplers []Edge // couplers removed from service (normalized)
}

// RandomFaults draws a fault model in which each qubit fails independently
// with probability qubitRate and each coupler with probability couplerRate.
func RandomFaults(hw *Graph, qubitRate, couplerRate float64, rng *rand.Rand) FaultModel {
	var fm FaultModel
	for v := 0; v < hw.Order(); v++ {
		if rng.Float64() < qubitRate {
			fm.DeadQubits = append(fm.DeadQubits, v)
		}
	}
	for _, e := range hw.Edges() {
		if rng.Float64() < couplerRate {
			fm.DeadCouplers = append(fm.DeadCouplers, e.Normalize())
		}
	}
	return fm
}

// Apply returns a copy of hw with all faulty qubits and couplers removed.
// Dead qubits become isolated vertices (the dense vertex space is preserved
// so physical indices remain stable).
func (fm FaultModel) Apply(hw *Graph) *Graph {
	g := hw.Clone()
	for _, e := range fm.DeadCouplers {
		g.RemoveEdge(e.U, e.V)
	}
	for _, q := range fm.DeadQubits {
		g.RemoveVertex(q)
	}
	return g
}

// IsDeadQubit reports whether q is in the dead-qubit list.
func (fm FaultModel) IsDeadQubit(q int) bool {
	for _, d := range fm.DeadQubits {
		if d == q {
			return true
		}
	}
	return false
}

// Yield returns the fraction of qubits that survive the fault model in a
// hardware graph of the given order.
func (fm FaultModel) Yield(order int) float64 {
	if order == 0 {
		return 0
	}
	dead := make(map[int]bool, len(fm.DeadQubits))
	for _, q := range fm.DeadQubits {
		if q >= 0 && q < order {
			dead[q] = true
		}
	}
	return float64(order-len(dead)) / float64(order)
}

// Normalize sorts and deduplicates the fault lists in place.
func (fm *FaultModel) Normalize() {
	sort.Ints(fm.DeadQubits)
	fm.DeadQubits = dedupInts(fm.DeadQubits)
	for i, e := range fm.DeadCouplers {
		fm.DeadCouplers[i] = e.Normalize()
	}
	sort.Slice(fm.DeadCouplers, func(i, j int) bool {
		a, b := fm.DeadCouplers[i], fm.DeadCouplers[j]
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	fm.DeadCouplers = dedupEdges(fm.DeadCouplers)
}

func dedupInts(a []int) []int {
	out := a[:0]
	for i, x := range a {
		if i == 0 || x != a[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func dedupEdges(a []Edge) []Edge {
	out := a[:0]
	for i, e := range a {
		if i == 0 || e != a[i-1] {
			out = append(out, e)
		}
	}
	return out
}
