package graph

import (
	"fmt"
	"math/rand"
)

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// Cycle returns the cycle graph C_n (empty for n < 3).
func Cycle(n int) *Graph {
	g := New(n)
	if n < 3 {
		return g
	}
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// Path returns the path graph P_n.
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Star returns the star graph with one hub (vertex 0) and n-1 leaves.
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// Grid returns the rows×cols 2-D lattice graph.
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// CompleteBipartite returns K_{a,b} with the first a vertices on one shore.
func CompleteBipartite(a, b int) *Graph {
	g := New(a + b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			g.AddEdge(i, a+j)
		}
	}
	return g
}

// GNP returns an Erdős–Rényi random graph G(n,p) drawn from rng.
func GNP(n int, p float64, rng *rand.Rand) *Graph {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("graph: GNP probability %v out of [0,1]", p))
	}
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// GNM returns a uniform random graph with n vertices and exactly m edges
// (m is clamped to the number of possible edges).
func GNM(n, m int, rng *rand.Rand) *Graph {
	max := n * (n - 1) / 2
	if m > max {
		m = max
	}
	g := New(n)
	for g.Size() < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		g.AddEdge(u, v)
	}
	return g
}

// RandomRegularish returns a random graph where every vertex has degree at
// most d, built by a simple pairing heuristic. It is "regular-ish": useful as
// a bounded-degree workload generator, not a uniform sampler of d-regular
// graphs.
func RandomRegularish(n, d int, rng *rand.Rand) *Graph {
	g := New(n)
	if n < 2 || d < 1 {
		return g
	}
	attempts := 0
	for attempts < 20*n*d {
		u := rng.Intn(n)
		v := rng.Intn(n)
		attempts++
		if u == v || g.HasEdge(u, v) || g.Degree(u) >= d || g.Degree(v) >= d {
			continue
		}
		g.AddEdge(u, v)
	}
	return g
}
