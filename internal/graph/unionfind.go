package graph

// UnionFind is a disjoint-set forest with union by rank and path compression.
type UnionFind struct {
	parent []int
	rank   []int
	sets   int
}

// NewUnionFind returns a union-find structure over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int, n), rank: make([]int, n), sets: n}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the canonical representative of x's set.
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the sets containing x and y, returning true if they were
// previously distinct.
func (u *UnionFind) Union(x, y int) bool {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return false
	}
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = rx
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
	u.sets--
	return true
}

// Connected reports whether x and y are in the same set.
func (u *UnionFind) Connected(x, y int) bool { return u.Find(x) == u.Find(y) }

// Sets returns the current number of disjoint sets.
func (u *UnionFind) Sets() int { return u.sets }
