package graph

import (
	"fmt"
	"sort"
)

// VertexModel maps each logical vertex of an input graph G to the set of
// hardware vertices (its "chain" or subtree) that represent it under a minor
// embedding φ: G → H. Chains are stored sorted.
type VertexModel map[int][]int

// Clone deep-copies the vertex model.
func (vm VertexModel) Clone() VertexModel {
	c := make(VertexModel, len(vm))
	for k, v := range vm {
		c[k] = append([]int(nil), v...)
	}
	return c
}

// PhysicalQubits returns the total number of hardware vertices used across
// all chains (the size of φ(G)).
func (vm VertexModel) PhysicalQubits() int {
	n := 0
	for _, chain := range vm {
		n += len(chain)
	}
	return n
}

// MaxChainLength returns the length of the longest chain.
func (vm VertexModel) MaxChainLength() int {
	max := 0
	for _, chain := range vm {
		if len(chain) > max {
			max = len(chain)
		}
	}
	return max
}

// Chain returns the sorted chain for logical vertex v (nil if unmapped).
func (vm VertexModel) Chain(v int) []int { return vm[v] }

// OwnerMap returns a map from every used hardware vertex to the logical
// vertex whose chain contains it, or an error if two chains overlap.
func (vm VertexModel) OwnerMap() (map[int]int, error) {
	owner := make(map[int]int, vm.PhysicalQubits())
	// Iterate logical vertices in sorted order for deterministic errors.
	logical := make([]int, 0, len(vm))
	for v := range vm {
		logical = append(logical, v)
	}
	sort.Ints(logical)
	for _, v := range logical {
		for _, q := range vm[v] {
			if prev, ok := owner[q]; ok {
				return nil, fmt.Errorf("graph: chains for logical vertices %d and %d both use hardware vertex %d", prev, v, q)
			}
			owner[q] = v
		}
	}
	return owner, nil
}

// ValidateMinor checks that vm is a valid minor embedding of g into hw:
//  1. every vertex of g with at least one incident edge (and every vertex
//     when requireAll is set) is mapped to a non-empty chain,
//  2. chains are pairwise disjoint,
//  3. every chain induces a connected subgraph of hw,
//  4. for every edge {u,v} of g there is at least one hw edge between the
//     chains of u and v.
//
// It returns nil when the embedding is valid.
func ValidateMinor(g, hw *Graph, vm VertexModel, requireAll bool) error {
	for v := 0; v < g.Order(); v++ {
		chain := vm[v]
		if len(chain) == 0 {
			if requireAll || g.Degree(v) > 0 {
				return fmt.Errorf("graph: logical vertex %d has an empty chain", v)
			}
			continue
		}
		for _, q := range chain {
			if !hw.HasVertex(q) {
				return fmt.Errorf("graph: chain of %d uses nonexistent hardware vertex %d", v, q)
			}
		}
		if !ConnectedSubset(hw, chain) {
			return fmt.Errorf("graph: chain of logical vertex %d is not connected in hardware: %v", v, chain)
		}
	}
	owner, err := vm.OwnerMap()
	if err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if !chainsAdjacent(hw, vm[e.U], vm[e.V]) {
			return fmt.Errorf("graph: logical edge {%d,%d} has no hardware coupler between chains", e.U, e.V)
		}
	}
	_ = owner
	return nil
}

// chainsAdjacent reports whether any hw edge joins a vertex of a to one of b.
func chainsAdjacent(hw *Graph, a, b []int) bool {
	inB := make(map[int]bool, len(b))
	for _, q := range b {
		inB[q] = true
	}
	for _, q := range a {
		for _, u := range hw.Neighbors(q) {
			if inB[u] {
				return true
			}
		}
	}
	return false
}

// ChainEdges returns, for each logical vertex, the hardware edges internal to
// its chain (edges of a spanning structure within the chain's induced
// subgraph). These are the edges that receive the strong ferromagnetic
// coupling during parameter setting.
func ChainEdges(hw *Graph, vm VertexModel) map[int][]Edge {
	out := make(map[int][]Edge, len(vm))
	for v, chain := range vm {
		in := make(map[int]bool, len(chain))
		for _, q := range chain {
			in[q] = true
		}
		var es []Edge
		for _, q := range chain {
			for _, u := range hw.Neighbors(q) {
				if q < u && in[u] {
					es = append(es, Edge{U: q, V: u})
				}
			}
		}
		out[v] = es
	}
	return out
}

// ContractMinor contracts each chain of vm to a single vertex and returns the
// resulting graph over logical labels 0..len(vm)-1 (assuming vm maps the
// dense logical space). Used to verify that φ(G) contains G as a subgraph.
func ContractMinor(hw *Graph, vm VertexModel, logicalOrder int) (*Graph, error) {
	owner, err := vm.OwnerMap()
	if err != nil {
		return nil, err
	}
	g := New(logicalOrder)
	for _, e := range hw.Edges() {
		ou, okU := owner[e.U]
		ov, okV := owner[e.V]
		if okU && okV && ou != ov {
			g.AddEdge(ou, ov)
		}
	}
	return g, nil
}

// IsSubgraphOf reports whether every edge of g is also an edge of h (with
// identical labels) and g has no more vertices than h.
func IsSubgraphOf(g, h *Graph) bool {
	if g.Order() > h.Order() {
		return false
	}
	for _, e := range g.Edges() {
		if !h.HasEdge(e.U, e.V) {
			return false
		}
	}
	return true
}
