package qpuserver

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"github.com/splitexec/splitexec/internal/anneal"
	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/qubo"
)

func ferro(n int) *qubo.Ising {
	m := qubo.NewIsing(n)
	for i := 0; i+1 < n; i++ {
		m.SetCoupling(i, i+1, -1)
	}
	return m
}

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := NewServer(anneal.DW2Timings(), anneal.SamplerOptions{Sweeps: 128})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

func TestPackUnpackSpins(t *testing.T) {
	s := []int8{1, -1, -1, 1}
	round := UnpackSpins(PackSpins(s))
	for i := range s {
		if round[i] != s[i] {
			t.Fatalf("round trip: %v -> %v", s, round)
		}
	}
}

func TestProgramRequestRoundTrip(t *testing.T) {
	m := ferro(5)
	m.H[2] = 0.5
	m.Offset = 1.25
	back, err := DecodeProgram(ProgramRequest(m))
	if err != nil {
		t.Fatal(err)
	}
	if back.Dim() != 5 || back.Offset != 1.25 || back.H[2] != 0.5 {
		t.Errorf("decoded: %+v", back)
	}
	if back.Coupling(0, 1) != -1 {
		t.Errorf("coupling lost")
	}
	s := []int8{1, 1, 1, 1, 1}
	if math.Abs(m.Energy(s)-back.Energy(s)) > 1e-12 {
		t.Error("energies differ after round trip")
	}
}

func TestDecodeProgramValidation(t *testing.T) {
	if _, err := DecodeProgram(Request{Dim: -1}); err == nil {
		t.Error("negative dim accepted")
	}
	if _, err := DecodeProgram(Request{Dim: 2, H: map[int]float64{5: 1}}); err == nil {
		t.Error("out-of-range bias accepted")
	}
	if _, err := DecodeProgram(Request{Dim: 2, J: []CouplingTriple{{U: 0, V: 0, Val: 1}}}); err == nil {
		t.Error("self coupling accepted")
	}
	if _, err := DecodeProgram(Request{Dim: 2, J: []CouplingTriple{{U: 0, V: 7, Val: 1}}}); err == nil {
		t.Error("out-of-range coupling accepted")
	}
}

func TestMessageFraming(t *testing.T) {
	var buf bytes.Buffer
	want := Request{Op: OpExecute, Reads: 7, Seed: 42}
	if err := WriteMessage(&buf, want); err != nil {
		t.Fatal(err)
	}
	var got Request
	if err := ReadMessage(&buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.Op != want.Op || got.Reads != 7 || got.Seed != 42 {
		t.Errorf("got %+v", got)
	}
}

func TestMessageSizeLimit(t *testing.T) {
	// A forged huge length prefix must be rejected before allocation.
	r := strings.NewReader("\xff\xff\xff\xff")
	var v Request
	if err := ReadMessage(r, &v); err == nil {
		t.Error("oversized prefix accepted")
	}
}

func TestClientServerSolve(t *testing.T) {
	_, addr := startServer(t)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if cli.Programmed() {
		t.Error("fresh client claims program")
	}
	if _, err := cli.Execute(1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("Execute before Program succeeded")
	}

	m := ferro(8)
	if err := cli.Program(m); err != nil {
		t.Fatal(err)
	}
	set, err := cli.Execute(20, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 20 {
		t.Fatalf("samples = %d", set.Len())
	}
	best := set.Best()
	if best.Energy != -7 {
		t.Errorf("remote best energy = %v, want -7", best.Energy)
	}
	// Server-side accounting mirrors a local device.
	prog, exec := cli.QPUTime()
	if prog != anneal.DW2Timings().ProcessorInitialize() {
		t.Errorf("programming time = %v", prog)
	}
	if exec != anneal.DW2Timings().ExecutionTime(20) {
		t.Errorf("execution time = %v", exec)
	}
	if cli.NetworkTime() <= 0 {
		t.Error("network time not measured")
	}
}

func TestClientStatusAndReset(t *testing.T) {
	_, addr := startServer(t)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	st, err := cli.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Programmed {
		t.Error("fresh server programmed")
	}
	if err := cli.Program(ferro(3)); err != nil {
		t.Fatal(err)
	}
	st, err = cli.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Programmed {
		t.Error("server not programmed after Program")
	}
	if err := cli.Reset(); err != nil {
		t.Fatal(err)
	}
	st, err = cli.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Programmed || st.TotalReads != 0 {
		t.Errorf("reset incomplete: %+v", st)
	}
}

func TestServerHardwareValidation(t *testing.T) {
	srv := NewServer(anneal.DW2Timings(), anneal.SamplerOptions{Sweeps: 16})
	srv.Hardware = graph.Chimera{M: 1, N: 1, L: 4}.Graph()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Couplings 0-1 (same shore) are not Chimera couplers: reject.
	bad := qubo.NewIsing(8)
	bad.SetCoupling(0, 1, -1)
	if err := cli.Program(bad); err == nil {
		t.Error("non-coupler program accepted")
	}
	// 0-4 (left shore 0 to right shore 0) is a coupler: accept.
	good := qubo.NewIsing(8)
	good.SetCoupling(0, 4, -1)
	if err := cli.Program(good); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
	// Oversized program: reject.
	big := qubo.NewIsing(9)
	big.SetCoupling(0, 4, -1)
	if err := cli.Program(big); err == nil {
		t.Error("oversized program accepted")
	}
}

func TestServerSharedResourceContention(t *testing.T) {
	// The Fig. 1(b) behaviour: several hosts share one QPU; requests
	// serialize but all complete correctly.
	_, addr := startServer(t)
	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			cli, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			if err := cli.Program(ferro(6)); err != nil {
				errs <- err
				return
			}
			set, err := cli.Execute(5, rand.New(rand.NewSource(seed)))
			if err != nil {
				errs <- err
				return
			}
			if set.Len() != 5 {
				errs <- err
			}
		}(int64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

func TestClientDeterministicSeed(t *testing.T) {
	_, addr := startServer(t)
	run := func() float64 {
		cli, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		if err := cli.Program(ferro(10)); err != nil {
			t.Fatal(err)
		}
		set, err := cli.Execute(3, rand.New(rand.NewSource(99)))
		if err != nil {
			t.Fatal(err)
		}
		return set.Best().Energy
	}
	if run() != run() {
		t.Error("same client seed produced different remote results")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}
