package qpuserver

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"github.com/splitexec/splitexec/internal/qubo"
)

// The protocol surface is the part of the system an adversary can reach:
// these fuzz targets pin the invariant that malformed lengths, truncated
// frames and junk JSON error out and never panic, and the property tests
// pin Pack→Unpack and Encode→Decode as identities on valid inputs.

// FuzzUnpackSpins: any byte string decodes to a ±1 vector of the same
// length, and re-packing normalizes every nonzero byte to 1.
func FuzzUnpackSpins(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 255})
	f.Add(bytes.Repeat([]byte{1}, 64))
	f.Fuzz(func(t *testing.T, b []byte) {
		spins := UnpackSpins(b)
		if len(spins) != len(b) {
			t.Fatalf("length %d != input %d", len(spins), len(b))
		}
		for i, s := range spins {
			if s != -1 && s != 1 {
				t.Fatalf("spin %d = %d, want ±1", i, s)
			}
		}
		repacked := PackSpins(spins)
		for i := range b {
			want := byte(0)
			if b[i] != 0 {
				want = 1
			}
			if repacked[i] != want {
				t.Fatalf("byte %d: normalized to %d, want %d", i, repacked[i], want)
			}
		}
	})
}

// FuzzDecodeProgram: arbitrary JSON request payloads either decode into a
// structurally valid Ising model or error — never panic, never produce a
// model inconsistent with its declared dimension.
func FuzzDecodeProgram(f *testing.F) {
	valid, _ := json.Marshal(ProgramRequest(randomIsing(rand.New(rand.NewSource(1)), 6)))
	f.Add(valid)
	f.Add([]byte(`{"op":"program","dim":-1}`))
	f.Add([]byte(`{"op":"program","dim":4,"h":{"9":1}}`))
	f.Add([]byte(`{"op":"program","dim":4,"j":[{"U":0,"V":0,"Val":1}]}`))
	f.Add([]byte(`{"op":"program","dim":1e9}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, payload []byte) {
		var req Request
		if err := json.Unmarshal(payload, &req); err != nil {
			return // not a Request; DecodeProgram's contract starts at a Request
		}
		if req.Dim > 1<<16 {
			return // hostile allocation sizes are the server limit's job (MaxMessageBytes)
		}
		m, err := DecodeProgram(req)
		if err != nil {
			return
		}
		if m.Dim() != req.Dim {
			t.Fatalf("decoded dim %d != request dim %d", m.Dim(), req.Dim)
		}
		for _, e := range m.Edges() {
			if e.U < 0 || e.U >= m.Dim() || e.V < 0 || e.V >= m.Dim() || e.U == e.V {
				t.Fatalf("decoded model has out-of-range coupling (%d,%d)", e.U, e.V)
			}
		}
	})
}

// FuzzReadMessage: arbitrary byte streams — corrupt length prefixes,
// truncated frames, junk JSON — must error or decode cleanly, never panic,
// and never allocate past the message limit.
func FuzzReadMessage(f *testing.F) {
	frame := func(payload []byte) []byte {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
		return append(hdr[:], payload...)
	}
	f.Add(frame([]byte(`{"op":"status"}`)))
	f.Add(frame([]byte(`{`)))                      // truncated JSON
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})          // hostile length prefix
	f.Add([]byte{0, 0})                            // truncated header
	f.Add(frame([]byte(`{"op":"execute"}`))[:6])   // truncated body
	f.Add(append(frame([]byte(`{}`)), 0xAA, 0xBB)) // trailing garbage
	f.Fuzz(func(t *testing.T, stream []byte) {
		var req Request
		err := ReadMessage(bytes.NewReader(stream), &req)
		if err != nil {
			return
		}
		// A successful read implies a well-formed frame: re-encoding the
		// decoded value must itself frame cleanly.
		var buf bytes.Buffer
		if err := WriteMessage(&buf, req); err != nil {
			t.Fatalf("re-encode of decoded message failed: %v", err)
		}
	})
}

// randomIsing builds a random sparse Ising model on n spins.
func randomIsing(rng *rand.Rand, n int) *qubo.Ising {
	m := qubo.NewIsing(n)
	m.Offset = rng.NormFloat64()
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.7 {
			m.H[i] = rng.NormFloat64()
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.4 {
				m.SetCoupling(i, j, rng.NormFloat64())
			}
		}
	}
	return m
}

// TestPackUnpackProperty: Pack→Unpack is the identity on random ±1 vectors.
func TestPackUnpackProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(100)
		spins := make([]int8, n)
		for i := range spins {
			if rng.Intn(2) == 0 {
				spins[i] = -1
			} else {
				spins[i] = 1
			}
		}
		got := UnpackSpins(PackSpins(spins))
		if !reflect.DeepEqual(got, spins) {
			t.Fatalf("trial %d: round trip %v -> %v", trial, spins, got)
		}
	}
}

// TestProgramEncodeDecodeProperty: Encode→(JSON)→Decode reproduces random
// Ising models exactly, through the same marshaling path the wire uses.
func TestProgramEncodeDecodeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		m := randomIsing(rng, 1+rng.Intn(12))
		payload, err := json.Marshal(ProgramRequest(m))
		if err != nil {
			t.Fatalf("trial %d: marshal: %v", trial, err)
		}
		var req Request
		if err := json.Unmarshal(payload, &req); err != nil {
			t.Fatalf("trial %d: unmarshal: %v", trial, err)
		}
		got, err := DecodeProgram(req)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if got.Dim() != m.Dim() || got.Offset != m.Offset {
			t.Fatalf("trial %d: dim/offset mismatch", trial)
		}
		for i := 0; i < m.Dim(); i++ {
			if got.H[i] != m.H[i] {
				t.Fatalf("trial %d: bias %d: %v != %v", trial, i, got.H[i], m.H[i])
			}
			for j := i + 1; j < m.Dim(); j++ {
				if got.Coupling(i, j) != m.Coupling(i, j) {
					t.Fatalf("trial %d: coupling (%d,%d): %v != %v",
						trial, i, j, got.Coupling(i, j), m.Coupling(i, j))
				}
			}
		}
	}
}

// TestWriteReadMessageProperty: WriteMessage→ReadMessage is the identity on
// random requests, including when frames arrive one byte at a time.
func TestWriteReadMessageProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		req := ProgramRequest(randomIsing(rng, 1+rng.Intn(10)))
		req.Reads = rng.Intn(100)
		req.Seed = rng.Int63()
		var buf bytes.Buffer
		if err := WriteMessage(&buf, req); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		var got Request
		if err := ReadMessage(iotest(buf.Bytes()), &got); err != nil {
			t.Fatalf("trial %d: read: %v", trial, err)
		}
		// omitempty legitimately turns empty maps/slices into nil on the
		// wire; normalize before the exact comparison.
		if len(req.H) == 0 {
			req.H = nil
		}
		if len(got.H) == 0 {
			got.H = nil
		}
		if !reflect.DeepEqual(got, req) {
			t.Fatalf("trial %d: round trip\n  sent %+v\n  got  %+v", trial, req, got)
		}
	}
}

// iotest wraps a byte slice in a reader that returns one byte per Read,
// exercising the io.ReadFull paths of the framing.
func iotest(b []byte) io.Reader { return &oneByteReader{rest: b} }

type oneByteReader struct{ rest []byte }

func (r *oneByteReader) Read(p []byte) (int, error) {
	if len(r.rest) == 0 {
		return 0, io.EOF
	}
	p[0] = r.rest[0]
	r.rest = r.rest[1:]
	return 1, nil
}
