// Package qpuserver implements the client-server QPU interface of the
// paper's asymmetric architecture (Fig. 1a): "This loose architecture may be
// understood conceptually as a classical client requesting a response from a
// quantum server via a local area network interface." The paper notes the
// D-Wave QPUs support exactly this interface but leaves it unmodeled; this
// package provides it, so the split-execution pipeline can run with the QPU
// behind a real network boundary and the network contribution to stage
// timing can be measured (the paper predicts it is not the dominant cost —
// the server reports both its own QPU-model time and the client observes
// wall-clock round trips, making the comparison direct).
//
// The wire protocol is length-prefixed JSON over TCP: one request, one
// response per message, multiple messages per connection.
package qpuserver

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"github.com/splitexec/splitexec/internal/graph"
	"github.com/splitexec/splitexec/internal/qubo"
)

// MaxMessageBytes bounds a single protocol message (16 MiB), protecting the
// server from hostile or corrupt length prefixes.
const MaxMessageBytes = 16 << 20

// Op enumerates protocol operations.
type Op string

// Protocol operations.
const (
	OpProgram Op = "program" // load a hardware Ising program
	OpExecute Op = "execute" // run N reads, return samples
	OpStatus  Op = "status"  // query device state
	OpReset   Op = "reset"   // clear program and virtual clock
)

// Request is the client→server message.
type Request struct {
	Op Op `json:"op"`
	// Program payload (OpProgram).
	Dim    int              `json:"dim,omitempty"`
	H      map[int]float64  `json:"h,omitempty"`      // sparse biases
	J      []CouplingTriple `json:"j,omitempty"`      // sparse couplings
	Offset float64          `json:"offset,omitempty"` // energy offset
	// Execute payload (OpExecute).
	Reads int   `json:"reads,omitempty"`
	Seed  int64 `json:"seed,omitempty"`
}

// CouplingTriple is one sparse coupling entry.
type CouplingTriple struct {
	U, V int
	Val  float64
}

// Response is the server→client message.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`

	// Execute results.
	Samples  []SampleWire `json:"samples,omitempty"`
	ReadsRun int          `json:"readsRun,omitempty"`

	// Status / accounting (microseconds of modeled QPU time).
	Programmed    bool  `json:"programmed,omitempty"`
	ProgramTimeUS int64 `json:"programTimeUs,omitempty"`
	ExecuteTimeUS int64 `json:"executeTimeUs,omitempty"`
	TotalReads    int   `json:"totalReads,omitempty"`
}

// SampleWire is one readout on the wire: spins packed as bytes (0 → -1,
// 1 → +1) to keep messages compact.
type SampleWire struct {
	Spins  []byte  `json:"spins"`
	Energy float64 `json:"energy"`
}

// PackSpins converts ±1 spins to the wire encoding.
func PackSpins(s []int8) []byte {
	out := make([]byte, len(s))
	for i, v := range s {
		if v > 0 {
			out[i] = 1
		}
	}
	return out
}

// UnpackSpins inverts PackSpins.
func UnpackSpins(b []byte) []int8 {
	out := make([]int8, len(b))
	for i, v := range b {
		if v != 0 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}

// ProgramRequest encodes an Ising model as an OpProgram request.
func ProgramRequest(m *qubo.Ising) Request {
	req := Request{Op: OpProgram, Dim: m.Dim(), Offset: m.Offset, H: map[int]float64{}}
	for i, h := range m.H {
		if h != 0 {
			req.H[i] = h
		}
	}
	for _, e := range m.Edges() {
		req.J = append(req.J, CouplingTriple{U: e.U, V: e.V, Val: m.Coupling(e.U, e.V)})
	}
	return req
}

// DecodeProgram reconstructs the Ising model from an OpProgram request.
func DecodeProgram(req Request) (*qubo.Ising, error) {
	if req.Dim < 0 {
		return nil, fmt.Errorf("qpuserver: negative dim %d", req.Dim)
	}
	m := qubo.NewIsing(req.Dim)
	m.Offset = req.Offset
	for i, h := range req.H {
		if i < 0 || i >= req.Dim {
			return nil, fmt.Errorf("qpuserver: bias index %d out of range", i)
		}
		m.H[i] = h
	}
	for _, c := range req.J {
		if c.U < 0 || c.U >= req.Dim || c.V < 0 || c.V >= req.Dim || c.U == c.V {
			return nil, fmt.Errorf("qpuserver: bad coupling (%d,%d)", c.U, c.V)
		}
		m.SetCoupling(c.U, c.V, c.Val)
	}
	return m, nil
}

// WriteMessage frames v as length-prefixed JSON on w.
func WriteMessage(w io.Writer, v interface{}) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("qpuserver: encode: %w", err)
	}
	if len(payload) > MaxMessageBytes {
		return fmt.Errorf("qpuserver: message of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// ReadMessage reads one length-prefixed JSON message from r into v.
func ReadMessage(r io.Reader, v interface{}) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageBytes {
		return fmt.Errorf("qpuserver: message of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return err
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("qpuserver: decode: %w", err)
	}
	return nil
}

// validateProgramGraph optionally checks a program against a hardware
// topology: every coupling must be a real coupler.
func validateProgramGraph(m *qubo.Ising, hw *graph.Graph) error {
	if hw == nil {
		return nil
	}
	if m.Dim() > hw.Order() {
		return fmt.Errorf("qpuserver: program uses %d qubits, hardware has %d", m.Dim(), hw.Order())
	}
	for _, e := range m.Edges() {
		if !hw.HasEdge(e.U, e.V) {
			return fmt.Errorf("qpuserver: coupling (%d,%d) is not a hardware coupler", e.U, e.V)
		}
	}
	return nil
}
