package qpuserver

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/splitexec/splitexec/internal/anneal"
	"github.com/splitexec/splitexec/internal/qubo"
)

// Client is the host-side handle to a remote QPU. It mirrors the
// anneal.Device API (Program/Execute/QPUTime) so the split-execution
// pipeline can run against a networked processor, and additionally tracks
// the network round-trip time of every call so the interface cost the paper
// leaves unmodeled becomes measurable.
//
// Client is safe for concurrent use; calls serialize on the connection.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	timeout time.Duration // per-round-trip I/O deadline; 0 = none

	programmed bool
	dim        int

	netTime   time.Duration // cumulative round-trip wall time
	lastState Response      // most recent server accounting
}

// Dial connects to a QPU server.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 0)
}

// DialTimeout connects to a QPU server, bounding the dial and every
// subsequent round trip by timeout (0 disables both bounds). A hung or
// partitioned server then surfaces as a deadline error instead of wedging
// the caller forever — the failure mode a dispatch-service worker cannot
// afford.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("qpuserver: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, timeout: timeout}, nil
}

// SetTimeout bounds every subsequent round trip (write + read) by d; 0
// removes the bound. A timed-out round trip leaves the connection with an
// unread response in flight, so treat the client as broken after one.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// Close releases the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// roundTrip sends req and decodes the response, timing the exchange.
func (c *Client) roundTrip(req Request) (Response, error) {
	start := time.Now()
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(start.Add(c.timeout)); err != nil {
			return Response{}, fmt.Errorf("qpuserver: set deadline: %w", err)
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := WriteMessage(c.conn, req); err != nil {
		return Response{}, err
	}
	var resp Response
	if err := ReadMessage(c.conn, &resp); err != nil {
		return Response{}, err
	}
	c.netTime += time.Since(start)
	if !resp.OK {
		return resp, fmt.Errorf("qpuserver: server error: %s", resp.Error)
	}
	c.lastState = resp
	return resp, nil
}

// Program uploads a hardware Ising model to the remote device.
func (c *Client) Program(m *qubo.Ising) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.roundTrip(ProgramRequest(m)); err != nil {
		return err
	}
	c.programmed = true
	c.dim = m.Dim()
	return nil
}

// Programmed reports whether a program has been uploaded on this client.
func (c *Client) Programmed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.programmed
}

// Execute performs reads annealing repetitions remotely. The rng draws the
// seed forwarded to the server, preserving end-to-end determinism.
func (c *Client) Execute(reads int, rng *rand.Rand) (*anneal.SampleSet, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.programmed {
		return nil, fmt.Errorf("qpuserver: Execute before Program")
	}
	resp, err := c.roundTrip(Request{Op: OpExecute, Reads: reads, Seed: rng.Int63()})
	if err != nil {
		return nil, err
	}
	set := anneal.NewSampleSet(c.dim)
	for _, smp := range resp.Samples {
		spins := UnpackSpins(smp.Spins)
		if len(spins) != c.dim {
			return nil, fmt.Errorf("qpuserver: sample length %d != dim %d", len(spins), c.dim)
		}
		set.Add(spins, smp.Energy)
	}
	return set, nil
}

// QPUTime returns the server's modeled programming and execution time.
func (c *Client) QPUTime() (programming, execution time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.lastState.ProgramTimeUS) * time.Microsecond,
		time.Duration(c.lastState.ExecuteTimeUS) * time.Microsecond
}

// NetworkTime returns the cumulative wall-clock round-trip time of all
// calls — the measured quantum-classical interface cost.
func (c *Client) NetworkTime() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.netTime
}

// Status queries the server's device state.
func (c *Client) Status() (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.roundTrip(Request{Op: OpStatus})
}

// Reset clears the remote device.
func (c *Client) Reset() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.roundTrip(Request{Op: OpReset}); err != nil {
		return err
	}
	c.programmed = false
	c.dim = 0
	return nil
}
