package qpuserver

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/anneal"
)

func TestLogfNilIsSafe(t *testing.T) {
	s := NewServer(anneal.DW2Timings(), anneal.SamplerOptions{})
	s.logf("should not panic: %d", 1) // Logf unset
	var mu sync.Mutex
	var lines []string
	s.Logf = func(format string, args ...interface{}) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	s.logf("hello %s", "world")
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 || lines[0] != "hello world" {
		t.Fatalf("logf lines = %v", lines)
	}
}

func TestServeConnDropsGarbage(t *testing.T) {
	s := NewServer(anneal.DW2Timings(), anneal.SamplerOptions{})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A junk frame must make the server drop the connection, not crash.
	if _, err := conn.Write([]byte{0xff, 0xff, 0xff, 0xff, 'x'}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server answered a garbage frame")
	}
	// The server must still accept fresh, well-formed connections.
	c2, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Status(); err != nil {
		t.Fatalf("server unhealthy after garbage: %v", err)
	}
}

func TestListenAndLogServesUntilClose(t *testing.T) {
	s := NewServer(anneal.DW2Timings(), anneal.SamplerOptions{})
	done := make(chan error, 1)
	go func() { done <- s.ListenAndLog("127.0.0.1:0") }()
	// Wait for the listener to come up.
	deadline := time.Now().Add(2 * time.Second)
	var addr string
	for time.Now().Before(deadline) {
		if a := s.Addr(); a != nil {
			addr = a.String()
			break
		}
		time.Sleep(time.Millisecond)
	}
	if addr == "" {
		t.Fatal("listener never came up")
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Status(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("ListenAndLog did not return after Close")
	}
}

func TestListenAndLogBadAddr(t *testing.T) {
	s := NewServer(anneal.DW2Timings(), anneal.SamplerOptions{})
	if err := s.ListenAndLog("256.0.0.1:bad"); err == nil {
		t.Fatal("bad address accepted")
	}
}
