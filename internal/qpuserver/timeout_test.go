package qpuserver

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"

	"github.com/splitexec/splitexec/internal/anneal"
)

// silentListener accepts connections and never replies — the hung-server
// failure mode the client deadlines exist for.
func silentListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Hold the connection open, reading nothing, writing nothing.
			defer conn.Close()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

// TestClientTimeoutOnHungServer: a round trip against a server that accepts
// and never replies must fail with a deadline error within the configured
// bound, not hang forever.
func TestClientTimeoutOnHungServer(t *testing.T) {
	ln := silentListener(t)
	c, err := DialTimeout(ln.Addr().String(), 100*time.Millisecond)
	if err != nil {
		t.Fatalf("DialTimeout: %v", err)
	}
	defer c.Close()

	start := time.Now()
	_, err = c.Status()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Status against a silent server succeeded")
	}
	var netErr net.Error
	if !errors.Is(err, os.ErrDeadlineExceeded) && !(errors.As(err, &netErr) && netErr.Timeout()) {
		t.Fatalf("err = %v, want a deadline/timeout error", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, want ~100ms", elapsed)
	}
}

// TestClientSetTimeout: the bound can be added after Dial, and a zero bound
// leaves a fast round trip unimpeded.
func TestClientSetTimeout(t *testing.T) {
	ln := silentListener(t)
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	c.SetTimeout(50 * time.Millisecond)
	if _, err := c.Status(); err == nil {
		t.Fatal("Status against a silent server succeeded")
	}
}

// TestClientTimeoutRealServer: deadlines must not break the healthy path.
func TestClientTimeoutRealServer(t *testing.T) {
	srv := NewServer(anneal.DW2Timings(), anneal.SamplerOptions{Sweeps: 16})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("server listen: %v", err)
	}
	defer srv.Close()

	c, err := DialTimeout(addr.String(), 5*time.Second)
	if err != nil {
		t.Fatalf("DialTimeout: %v", err)
	}
	defer c.Close()
	resp, err := c.Status()
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if !resp.OK {
		t.Fatalf("status not OK: %+v", resp)
	}
}
