package qpuserver

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"

	"github.com/splitexec/splitexec/internal/anneal"
	"github.com/splitexec/splitexec/internal/graph"
)

// Server exposes one simulated QPU over TCP. Like the real device, the
// server is a serially shared resource: concurrent connections are
// accepted, but programming and execution serialize on the device mutex
// (the contention behaviour of the shared-resource architecture, Fig. 1b).
type Server struct {
	Timings anneal.Timings
	Opts    anneal.SamplerOptions
	// Hardware, when non-nil, rejects programs whose couplings are not
	// couplers of this graph.
	Hardware *graph.Graph
	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...interface{})

	mu     sync.Mutex
	device *anneal.Device

	lnMu sync.Mutex
	ln   net.Listener
	wg   sync.WaitGroup
}

// NewServer builds a server around a fresh device.
func NewServer(t anneal.Timings, opts anneal.SamplerOptions) *Server {
	return &Server{Timings: t, Opts: opts, device: anneal.NewDevice(t, opts)}
}

// SetReadWorkers bounds the device's concurrent readout workers (<= 1 runs
// reads serially). Execution results for a given request seed are identical
// at every worker count; only the server's wall-clock latency changes.
func (s *Server) SetReadWorkers(n int) {
	s.mu.Lock()
	s.device.Workers = n
	s.mu.Unlock()
}

// SetBitParallel switches the device's annealing kernel between the scalar
// reference path and the multi-spin-coded word kernel (64 replicas per
// uint64 word; see anneal.SamplerOptions.BitParallel). Takes effect on the
// next program request; results for a given request seed are identical
// either way, only the modeled device's throughput changes.
func (s *Server) SetBitParallel(on bool) {
	s.mu.Lock()
	s.Opts.BitParallel = on
	s.device.Opts.BitParallel = on
	s.mu.Unlock()
}

// Listen binds addr (e.g. "127.0.0.1:0") and serves until Close. It returns
// once the listener is bound; serving continues in the background.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

// Addr returns the bound listener address, or nil when not listening.
func (s *Server) Addr() net.Addr {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the listener and waits for in-flight connections to finish.
func (s *Server) Close() error {
	s.lnMu.Lock()
	ln := s.ln
	s.ln = nil
	s.lnMu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				s.logf("qpuserver: accept: %v", err)
			}
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	for {
		var req Request
		if err := ReadMessage(conn, &req); err != nil {
			return // EOF or protocol error: drop the connection
		}
		resp := s.handle(req)
		if err := WriteMessage(conn, &resp); err != nil {
			s.logf("qpuserver: write: %v", err)
			return
		}
	}
}

// handle executes one request against the shared device.
func (s *Server) handle(req Request) Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch req.Op {
	case OpProgram:
		m, err := DecodeProgram(req)
		if err != nil {
			return errResponse(err)
		}
		if err := validateProgramGraph(m, s.Hardware); err != nil {
			return errResponse(err)
		}
		s.device.Program(m)
		return s.statusLocked()
	case OpExecute:
		if req.Reads < 1 {
			return errResponse(fmt.Errorf("qpuserver: reads = %d", req.Reads))
		}
		rng := rand.New(rand.NewSource(req.Seed))
		set, err := s.device.Execute(req.Reads, rng)
		if err != nil {
			return errResponse(err)
		}
		resp := s.statusLocked()
		resp.ReadsRun = set.Len()
		resp.Samples = make([]SampleWire, 0, set.Len())
		for _, smp := range set.Samples {
			resp.Samples = append(resp.Samples, SampleWire{
				Spins:  PackSpins(smp.Spins),
				Energy: smp.Energy,
			})
		}
		return resp
	case OpStatus:
		return s.statusLocked()
	case OpReset:
		s.device.Reset()
		return s.statusLocked()
	}
	return errResponse(fmt.Errorf("qpuserver: unknown op %q", req.Op))
}

func (s *Server) statusLocked() Response {
	prog, exec := s.device.QPUTime()
	return Response{
		OK:            true,
		Programmed:    s.device.Programmed(),
		ProgramTimeUS: prog.Microseconds(),
		ExecuteTimeUS: exec.Microseconds(),
		TotalReads:    s.device.TotalReads(),
	}
}

func errResponse(err error) Response { return Response{OK: false, Error: err.Error()} }

// ListenAndLog is a convenience for cmd/qpud: bind, announce, serve forever.
func (s *Server) ListenAndLog(addr string) error {
	a, err := s.Listen(addr)
	if err != nil {
		return err
	}
	log.Printf("qpud: serving simulated QPU on %s", a)
	s.wg.Wait()
	return nil
}
