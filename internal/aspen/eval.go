package aspen

import (
	"fmt"
	"time"
)

// OverlapPolicy controls how resource times within one execute block
// combine.
type OverlapPolicy int

const (
	// Serial sums the resource times of a block (no overlap) — the
	// conservative default matching the paper's stage models.
	Serial OverlapPolicy = iota
	// Overlap takes the maximum resource time of a block (perfect overlap
	// of compute, memory and communication).
	Overlap
)

// EvalOptions configure application-model evaluation.
type EvalOptions struct {
	// HostSocket names the socket servicing flops/loads/stores. Empty
	// selects the first socket of the machine.
	HostSocket string
	// Policy selects Serial (default) or Overlap combination within blocks.
	Policy OverlapPolicy
	// Params override model parameters (the "Input Parameter" values).
	Params map[string]float64
}

// ResourceTime is the cost of one resource statement.
type ResourceTime struct {
	Verb    string
	Amount  float64 // quantity consumed (ops, bytes, µs, reads...)
	Seconds float64
	Socket  string // socket that serviced the request
}

// BlockTime is the cost of one execute block after count multiplication.
type BlockTime struct {
	Label     string
	Count     float64
	Resources []ResourceTime
	Seconds   float64
}

// KernelTime aggregates the blocks executed by one kernel invocation
// (including nested kernel calls).
type KernelTime struct {
	Name    string
	Blocks  []BlockTime
	Seconds float64
}

// Result is the evaluation of an application model on a machine.
type Result struct {
	Model   string
	Machine string
	Kernels []KernelTime // top-level kernels invoked from main, in order
	Params  Env          // final parameter environment
}

// TotalSeconds returns the predicted runtime in seconds.
func (r *Result) TotalSeconds() float64 {
	t := 0.0
	for _, k := range r.Kernels {
		t += k.Seconds
	}
	return t
}

// Total returns the predicted runtime as a duration (saturating).
func (r *Result) Total() time.Duration {
	return time.Duration(r.TotalSeconds() * float64(time.Second))
}

// ByVerb aggregates total seconds per resource verb.
func (r *Result) ByVerb() map[string]float64 {
	out := map[string]float64{}
	for _, k := range r.Kernels {
		for _, b := range k.Blocks {
			for _, res := range b.Resources {
				out[res.Verb] += res.Seconds * b.Count
			}
		}
	}
	return out
}

// Kernel returns the timing entry for the named top-level kernel, or nil.
func (r *Result) Kernel(name string) *KernelTime {
	for i := range r.Kernels {
		if r.Kernels[i].Name == name {
			return &r.Kernels[i]
		}
	}
	return nil
}

// Evaluate runs the application model against the machine. Execution starts
// at kernel "main"; each top-level statement of main contributes one entry
// to Result.Kernels (execute blocks in main appear as a kernel named
// "main").
func Evaluate(m *ModelDecl, machine *MachineSpec, opts EvalOptions) (*Result, error) {
	env, err := EvalParams(m, opts.Params)
	if err != nil {
		return nil, err
	}
	host := machine.Sockets[0]
	if opts.HostSocket != "" {
		host = machine.Socket(opts.HostSocket)
		if host == nil {
			return nil, fmt.Errorf("aspen: host socket %q not in machine %s", opts.HostSocket, machine.Name)
		}
	}
	ev := &evaluator{model: m, machine: machine, host: host, policy: opts.Policy, env: env}

	main := m.Kernel("main")
	if main == nil {
		return nil, fmt.Errorf("aspen: model %s has no kernel main", m.Name)
	}
	res := &Result{Model: m.Name, Machine: machine.Name, Params: env}
	for _, st := range main.Body {
		switch s := st.(type) {
		case *CallStmt:
			kt, err := ev.evalKernelCall(s.Name, map[string]bool{"main": true})
			if err != nil {
				return nil, err
			}
			res.Kernels = append(res.Kernels, *kt)
		default:
			kt := KernelTime{Name: "main"}
			if err := ev.evalStmt(st, &kt, map[string]bool{"main": true}); err != nil {
				return nil, err
			}
			res.Kernels = append(res.Kernels, kt)
		}
	}
	return res, nil
}

type evaluator struct {
	model   *ModelDecl
	machine *MachineSpec
	host    *SocketSpec
	policy  OverlapPolicy
	env     Env
}

func (ev *evaluator) evalKernelCall(name string, inProgress map[string]bool) (*KernelTime, error) {
	k := ev.model.Kernel(name)
	if k == nil {
		return nil, fmt.Errorf("aspen: model %s calls undefined kernel %q", ev.model.Name, name)
	}
	if inProgress[name] {
		return nil, fmt.Errorf("aspen: recursive kernel call to %q", name)
	}
	inProgress[name] = true
	defer delete(inProgress, name)

	kt := &KernelTime{Name: name}
	for _, st := range k.Body {
		if err := ev.evalStmt(st, kt, inProgress); err != nil {
			return nil, err
		}
	}
	return kt, nil
}

func (ev *evaluator) evalStmt(st Stmt, kt *KernelTime, inProgress map[string]bool) error {
	switch s := st.(type) {
	case *ExecuteStmt:
		bt, err := ev.evalExecute(s)
		if err != nil {
			return err
		}
		kt.Blocks = append(kt.Blocks, *bt)
		kt.Seconds += bt.Seconds
		return nil
	case *CallStmt:
		sub, err := ev.evalKernelCall(s.Name, inProgress)
		if err != nil {
			return err
		}
		kt.Blocks = append(kt.Blocks, sub.Blocks...)
		kt.Seconds += sub.Seconds
		return nil
	case *IterateStmt:
		count, err := EvalExpr(s.Count, ev.env)
		if err != nil {
			return err
		}
		if count < 0 {
			return fmt.Errorf("aspen: negative iterate count %g", count)
		}
		inner := &KernelTime{}
		for _, sub := range s.Body {
			if err := ev.evalStmt(sub, inner, inProgress); err != nil {
				return err
			}
		}
		for i := range inner.Blocks {
			inner.Blocks[i].Count *= count
			inner.Blocks[i].Seconds *= count
		}
		kt.Blocks = append(kt.Blocks, inner.Blocks...)
		kt.Seconds += inner.Seconds * count
		return nil
	case *ParStmt:
		// Branches run concurrently: the block costs the slowest branch,
		// but all resource consumption is recorded.
		slowest := 0.0
		for _, sub := range s.Body {
			branch := &KernelTime{}
			if err := ev.evalStmt(sub, branch, inProgress); err != nil {
				return err
			}
			kt.Blocks = append(kt.Blocks, branch.Blocks...)
			if branch.Seconds > slowest {
				slowest = branch.Seconds
			}
		}
		kt.Seconds += slowest
		return nil
	}
	return fmt.Errorf("aspen: unknown statement %T", st)
}

func (ev *evaluator) evalExecute(s *ExecuteStmt) (*BlockTime, error) {
	count, err := EvalExpr(s.Count, ev.env)
	if err != nil {
		return nil, err
	}
	if count < 0 {
		return nil, fmt.Errorf("aspen: negative execute count %g in block %q", count, s.Label)
	}
	bt := &BlockTime{Label: s.Label, Count: count}
	blockSeconds := 0.0
	maxSeconds := 0.0
	for _, r := range s.Resources {
		rt, err := ev.evalResource(r)
		if err != nil {
			return nil, err
		}
		bt.Resources = append(bt.Resources, rt)
		blockSeconds += rt.Seconds
		if rt.Seconds > maxSeconds {
			maxSeconds = rt.Seconds
		}
	}
	if ev.policy == Overlap {
		bt.Seconds = maxSeconds * count
	} else {
		bt.Seconds = blockSeconds * count
	}
	return bt, nil
}

func (ev *evaluator) evalResource(r *ResourceStmt) (ResourceTime, error) {
	amount, err := EvalExpr(r.Quantity, ev.env)
	if err != nil {
		return ResourceTime{}, fmt.Errorf("aspen: resource %s: %w", r.Verb, err)
	}
	if amount < 0 {
		return ResourceTime{}, fmt.Errorf("aspen: negative %s amount %g", r.Verb, amount)
	}
	bytes := amount
	if r.ElemSize != nil {
		es, err := EvalExpr(r.ElemSize, ev.env)
		if err != nil {
			return ResourceTime{}, fmt.Errorf("aspen: resource %s size: %w", r.Verb, err)
		}
		bytes = amount * es
	}

	switch r.Verb {
	case "flops":
		rate, err := ev.host.FlopsRate(r.Traits)
		if err != nil {
			return ResourceTime{}, err
		}
		return ResourceTime{Verb: r.Verb, Amount: amount, Seconds: amount / rate, Socket: ev.host.Name}, nil
	case "loads", "stores":
		bw, err := ev.host.MemoryBandwidth()
		if err != nil {
			return ResourceTime{}, err
		}
		return ResourceTime{Verb: r.Verb, Amount: bytes, Seconds: bytes / bw, Socket: ev.host.Name}, nil
	case "intracomm", "copyin", "copyout":
		sock := ev.linkSocket()
		if sock == nil {
			return ResourceTime{}, fmt.Errorf("aspen: no socket with a link for %s", r.Verb)
		}
		t, err := sock.LinkTime(bytes)
		if err != nil {
			return ResourceTime{}, err
		}
		return ResourceTime{Verb: r.Verb, Amount: bytes, Seconds: t, Socket: sock.Name}, nil
	case "seconds":
		return ResourceTime{Verb: r.Verb, Amount: amount, Seconds: amount}, nil
	case "milliseconds":
		return ResourceTime{Verb: r.Verb, Amount: amount, Seconds: amount * 1e-3}, nil
	case "microseconds":
		return ResourceTime{Verb: r.Verb, Amount: amount, Seconds: amount * 1e-6}, nil
	case "nanoseconds":
		return ResourceTime{Verb: r.Verb, Amount: amount, Seconds: amount * 1e-9}, nil
	}
	// Custom resource: find the socket defining it.
	sock := ev.machine.FindCustomResource(r.Verb)
	if sock == nil {
		return ResourceTime{}, fmt.Errorf("aspen: no socket defines resource %q", r.Verb)
	}
	t, err := sock.CustomResourceTime(r.Verb, amount)
	if err != nil {
		return ResourceTime{}, err
	}
	return ResourceTime{Verb: r.Verb, Amount: amount, Seconds: t, Socket: sock.Name}, nil
}

// linkSocket picks the socket whose link services intracomm: the first
// non-host socket with a link (the accelerator), else the host itself.
func (ev *evaluator) linkSocket() *SocketSpec {
	for _, s := range ev.machine.Sockets {
		if s != ev.host && s.Link != nil {
			return s
		}
	}
	if ev.host.Link != nil {
		return ev.host
	}
	return nil
}
