package aspen

import (
	"math"
	"strings"
	"testing"
)

// Round-trip property: Format(Parse(src)) must re-parse and evaluate to the
// same totals as the original for every shipped source.
func TestFormatRoundTripShippedSources(t *testing.T) {
	sources := map[string]string{"SimpleNode": SimpleNodeSource}
	for name, src := range StdLib {
		sources[name] = src
	}
	for name, src := range sources {
		f, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		formatted := Format(f)
		f2, err := Parse(formatted)
		if err != nil {
			t.Fatalf("%s: re-parse of formatted source: %v\n%s", name, err, formatted)
		}
		if len(f2.Sockets) != len(f.Sockets) || len(f2.Cores) != len(f.Cores) ||
			len(f2.Machines) != len(f.Machines) || len(f2.Models) != len(f.Models) {
			t.Errorf("%s: structure changed after format", name)
		}
	}
}

func TestFormatRoundTripModelEvaluation(t *testing.T) {
	src := `
model RT {
  param N = 6
  param Work = ceil(N^2 / 2) * log(N)
  data D as Array(N, 8)
  kernel k1 {
    execute blk [2] {
      flops [Work] as sp, simd
      loads [N] of size [8] from D
      stores [N*8] to D
    }
  }
  kernel main {
    k1
    iterate [3] { k1 }
    par {
      k1
      execute [1] { microseconds [50] }
    }
  }
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	mach, err := LoadSimpleNode()
	if err != nil {
		t.Fatal(err)
	}
	opts := EvalOptions{HostSocket: "intel_xeon_e5_2680"}
	r1, err := Evaluate(f.Models[0], mach, opts)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Parse(Format(f))
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, Format(f))
	}
	r2, err := Evaluate(f2.Models[0], mach, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.TotalSeconds()-r2.TotalSeconds()) > 1e-15 {
		t.Errorf("totals differ after round trip: %v vs %v", r1.TotalSeconds(), r2.TotalSeconds())
	}
}

func TestParSemantics(t *testing.T) {
	src := `
model P {
  kernel a { execute [1] { microseconds [100] } }
  kernel b { execute [1] { microseconds [30] } }
  kernel main {
    par {
      a
      b
      execute [1] { microseconds [70] }
    }
  }
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	mach, err := LoadSimpleNode()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(f.Models[0], mach, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Parallel branches: max(100, 30, 70) = 100 µs.
	if math.Abs(res.TotalSeconds()-100e-6) > 1e-15 {
		t.Errorf("par total = %v, want 100 µs", res.TotalSeconds())
	}
	// All branch resources are still recorded.
	if len(res.Kernels) != 1 || len(res.Kernels[0].Blocks) != 3 {
		t.Errorf("blocks recorded: %+v", res.Kernels)
	}
}

func TestParNested(t *testing.T) {
	src := `
model PN {
  kernel main {
    iterate [2] {
      par {
        execute [1] { microseconds [10] }
        execute [1] { microseconds [40] }
      }
    }
    par {
      iterate [5] { execute [1] { microseconds [3] } }
      execute [1] { microseconds [4] }
    }
  }
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	mach, err := LoadSimpleNode()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(f.Models[0], mach, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 2×max(10,40) + max(15,4) = 80 + 15 = 95 µs.
	if math.Abs(res.TotalSeconds()-95e-6) > 1e-15 {
		t.Errorf("nested par total = %v, want 95 µs", res.TotalSeconds())
	}
}

func TestFormatResourceClauses(t *testing.T) {
	f, err := Parse(Stage3ish)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(f)
	for _, frag := range []string{"of size", "to R", "as sp", "from In"} {
		if !strings.Contains(out, frag) {
			t.Errorf("formatted output missing %q:\n%s", frag, out)
		}
	}
}

// Stage3ish exercises every resource clause in one listing.
const Stage3ish = `
model S {
  data R as Array(4, 10)
  data In as Array(4, 10)
  kernel main {
    execute sort [1] {
      loads [4] of size [40] from In
      flops [8] as sp
      stores [4] to R
    }
  }
}
`
