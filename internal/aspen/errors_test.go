package aspen

import "testing"

// TestParseMalformedSources pins the parser's rejection of structurally
// broken inputs across every declaration family — the error paths a user
// hits when hand-editing model listings.
func TestParseMalformedSources(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"resource missing bracket", "model M { kernel main { execute [1] { flops 8 } } }"},
		{"resource unclosed bracket", "model M { kernel main { execute [1] { flops [8 } } }"},
		{"resource bad trait list", "model M { kernel main { execute [1] { flops [8] as sp, } } }"},
		{"resource missing to target", "model M { kernel main { execute [1] { stores [8] to } } }"},
		{"resource missing from target", "model M { kernel main { execute [1] { loads [8] from } } }"},
		{"execute unclosed block", "model M { kernel main { execute [1] { flops [8] as sp }"},
		{"kernel missing name", "model M { kernel { } }"},
		{"component missing name", "socket { }"},
		{"component missing brace", "socket S property x [1] }"},
		{"property missing bracket", "socket S { property x 1 }"},
		{"property missing name", "socket S { property [1] }"},
		{"resource def missing name", "core C { resource (n) [n] }"},
		{"resource def unclosed params", "core C { resource R(n [n] }"},
		{"resource def missing body", "core C { resource R(n) n }"},
		{"machine missing count bracket", "machine M { 1] N nodes }"},
		{"include missing path", "include\nmodel M { }"},
		{"param missing equals", "model M { param x 3 }"},
		{"expr unbalanced paren", "model M { param x = (1+2 }"},
		{"expr trailing operator", "model M { param x = 1+ }"},
		{"expr bad call", "model M { param x = log(1 }"},
		{"data missing as", "model M { data D Array(1,4) }"},
		{"truncated file", "model M { kernel main {"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: accepted %q", c.name, c.src)
		}
	}
}

// TestParseResourceTargets pins the accepted to/from/of/as clause grammar.
func TestParseResourceTargets(t *testing.T) {
	src := `model M {
  data In as Array(4, 4)
  data Out as Array(4, 4)
  kernel main {
    execute [1] {
      loads [16] from In
      stores [16] to Out
      flops [32] as sp, simd
      intracomm [16] as copyout
    }
  }
}`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := f.Models[0]
	block := m.Kernels[len(m.Kernels)-1].Body[0]
	exec, ok := block.(*ExecuteStmt)
	if !ok {
		t.Fatalf("statement is %T", block)
	}
	if len(exec.Resources) != 4 {
		t.Fatalf("resources = %d", len(exec.Resources))
	}
	if exec.Resources[0].From != "In" || exec.Resources[1].To != "Out" {
		t.Fatalf("targets: %+v %+v", exec.Resources[0], exec.Resources[1])
	}
	if len(exec.Resources[2].Traits) != 2 {
		t.Fatalf("traits: %v", exec.Resources[2].Traits)
	}
}
